/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC via clock_gettime: immune to wall-clock adjustment,
   nanosecond-granularity, and cheap enough to call once per span.  The
   OCaml side sees a single [int64] of nanoseconds since an arbitrary
   epoch; only differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
