module Json = Json
module Schemas = Schemas

external now_ns : unit -> int64 = "obs_monotonic_ns"

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled v = Atomic.set on v

type attr = [ `Int of int | `Float of float | `Str of string ]

module Span = struct
  type t = {
    name : string;
    start_ns : int64;
    end_ns : int64;
    attrs : (string * attr) list;
    children : t list;
  }

  let duration_ns s = Int64.sub s.end_ns s.start_ns
end

(* --- open-span stacks: one per domain, merged at snapshot time --- *)

type open_span = {
  oname : string;
  ostart : int64;
  mutable oattrs : (string * attr) list;   (* reversed *)
  mutable ochildren : Span.t list;         (* reversed *)
}

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let completed_mu = Mutex.create ()
let completed : Span.t list ref = ref []   (* reversed *)

(* The pop happens before [close_span], so the parent (if any) is the new
   top of this domain's stack. Root spans go to the global list; the
   mutex is taken once per root span, never per nested span. *)
let close_span os end_ns =
  let sp =
    {
      Span.name = os.oname;
      start_ns = os.ostart;
      end_ns;
      attrs = List.rev os.oattrs;
      children = List.rev os.ochildren;
    }
  in
  match !(Domain.DLS.get stack_key) with
  | parent :: _ -> parent.ochildren <- sp :: parent.ochildren
  | [] ->
    Mutex.lock completed_mu;
    completed := sp :: !completed;
    Mutex.unlock completed_mu

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let os =
      { oname = name; ostart = now_ns (); oattrs = List.rev attrs;
        ochildren = [] }
    in
    stack := os :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let end_ns = now_ns () in
        (match !stack with
        | top :: rest when top == os -> stack := rest
        | _ -> stack := List.filter (fun o -> o != os) !stack);
        close_span os end_ns)
      f
  end

let add_attr k v =
  if enabled () then
    match !(Domain.DLS.get stack_key) with
    | top :: _ -> top.oattrs <- (k, v) :: top.oattrs
    | [] -> ()

(* --- metrics --- *)

module Counter = struct
  (* Stripes indexed by domain id: concurrent bumps from different
     domains land in different cells, so there is no write contention in
     the common case; [value] merges the per-domain cells. *)
  let stripes = 64

  type t = { cells : int Atomic.t array }

  let create () = { cells = Array.init stripes (fun _ -> Atomic.make 0) }

  let add t n =
    if Atomic.get on then begin
      let i = (Domain.self () :> int) land (stripes - 1) in
      ignore (Atomic.fetch_and_add t.cells.(i) n)
    end

  let incr t = add t 1
  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
  let reset t = Array.iter (fun c -> Atomic.set c 0) t.cells
end

module Gauge = struct
  type t = { cell : float Atomic.t }

  let create () = { cell = Atomic.make 0.0 }
  let set t v = if Atomic.get on then Atomic.set t.cell v
  let value t = Atomic.get t.cell
  let reset t = Atomic.set t.cell 0.0
end

module Histogram = struct
  type t = {
    bounds : float array;
    counts : int Atomic.t array;  (* bounds + 1 cells; last = overflow *)
    nobs : int Atomic.t;
    sum : float Atomic.t;
  }

  let default_bounds =
    Array.init 14 (fun i -> 0.001 *. (3.0 ** float_of_int i))

  let create bounds =
    {
      bounds;
      counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
      nobs = Atomic.make 0;
      sum = Atomic.make 0.0;
    }

  let rec atomic_add_float a x =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

  let observe t x =
    if Atomic.get on then begin
      let nb = Array.length t.bounds in
      let i = ref 0 in
      while !i < nb && x > t.bounds.(!i) do
        incr i
      done;
      ignore (Atomic.fetch_and_add t.counts.(!i) 1);
      ignore (Atomic.fetch_and_add t.nobs 1);
      atomic_add_float t.sum x
    end

  type snap = {
    bounds : float array;
    counts : int array;
    count : int;
    sum : float;
  }

  let snap (t : t) =
    {
      bounds = Array.copy t.bounds;
      counts = Array.map Atomic.get t.counts;
      count = Atomic.get t.nobs;
      sum = Atomic.get t.sum;
    }

  (* Percentile estimate from the bucket counts (linear interpolation
     inside the bucket, Prometheus-style). The overflow bucket has no
     upper edge, so anything landing there reports the highest bound. *)
  let percentile (s : snap) q =
    if s.count = 0 then 0.0
    else begin
      let nb = Array.length s.bounds in
      let target = q *. float_of_int s.count in
      let i = ref 0 and cum = ref 0.0 in
      while
        !i < nb && !cum +. float_of_int s.counts.(!i) < target
      do
        cum := !cum +. float_of_int s.counts.(!i);
        incr i
      done;
      if !i >= nb then (if nb = 0 then 0.0 else s.bounds.(nb - 1))
      else begin
        let lower = if !i = 0 then 0.0 else s.bounds.(!i - 1) in
        let upper = s.bounds.(!i) in
        let in_bucket = float_of_int s.counts.(!i) in
        let frac =
          if in_bucket <= 0.0 then 1.0
          else Float.min 1.0 ((target -. !cum) /. in_bucket)
        in
        lower +. (frac *. (upper -. lower))
      end
    end

  let reset (t : t) =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.nobs 0;
    Atomic.set t.sum 0.0
end

(* --- process-global registry --- *)

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

let reg_mu = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let get_or_create name make classify =
  Mutex.lock reg_mu;
  let r =
    match Hashtbl.find_opt registry name with
    | Some m -> classify m
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      classify m
  in
  Mutex.unlock reg_mu;
  match r with
  | Some v -> v
  | None ->
    invalid_arg (Printf.sprintf "Obs: metric %S exists with another kind" name)

let counter name =
  get_or_create name
    (fun () -> C (Counter.create ()))
    (function C c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () -> G (Gauge.create ()))
    (function G g -> Some g | _ -> None)

let histogram ?(bounds = Histogram.default_bounds) name =
  get_or_create name
    (fun () -> H (Histogram.create bounds))
    (function H h -> Some h | _ -> None)

(* --- snapshot and export --- *)

type snapshot = {
  spans : Span.t list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.snap) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.lock completed_mu;
  let roots = List.rev !completed in
  Mutex.unlock completed_mu;
  let spans =
    List.stable_sort
      (fun (a : Span.t) (b : Span.t) -> Int64.compare a.start_ns b.start_ns)
      roots
  in
  Mutex.lock reg_mu;
  let metrics =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
    |> List.sort by_name
  in
  Mutex.unlock reg_mu;
  let pick f = List.filter_map (fun (name, m) -> f name m) metrics in
  {
    spans;
    counters =
      pick (fun n m ->
          match m with C c -> Some (n, Counter.value c) | _ -> None);
    gauges =
      pick (fun n m -> match m with G g -> Some (n, Gauge.value g) | _ -> None);
    histograms =
      pick (fun n m ->
          match m with H h -> Some (n, Histogram.snap h) | _ -> None);
  }

let reset () =
  Mutex.lock completed_mu;
  completed := [];
  Mutex.unlock completed_mu;
  Mutex.lock reg_mu;
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort by_name
  |> List.iter (fun (_, m) ->
         match m with
         | C c -> Counter.reset c
         | G g -> Gauge.reset g
         | H h -> Histogram.reset h);
  Mutex.unlock reg_mu

type span_agg = {
  calls : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

let aggregate_spans roots =
  let tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 32 in
  let rec visit (s : Span.t) =
    let d = Span.duration_ns s in
    let agg =
      match Hashtbl.find_opt tbl s.name with
      | None -> { calls = 1; total_ns = d; min_ns = d; max_ns = d }
      | Some a ->
        {
          calls = a.calls + 1;
          total_ns = Int64.add a.total_ns d;
          min_ns = Int64.min a.min_ns d;
          max_ns = Int64.max a.max_ns d;
        }
    in
    Hashtbl.replace tbl s.name agg;
    List.iter visit s.children
  in
  List.iter visit roots;
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) tbl []
  |> List.sort (fun (na, a) (nb, b) ->
         match Int64.compare b.total_ns a.total_ns with
         | 0 -> String.compare na nb  (* deterministic on ties *)
         | c -> c)

let attr_json : attr -> Json.t = function
  | `Int i -> Json.Int i
  | `Float f -> Json.Float f
  | `Str s -> Json.Str s

let rec span_json (s : Span.t) =
  let base =
    [
      ("name", Json.Str s.name);
      ("start_ns", Json.Int (Int64.to_int s.start_ns));
      ("dur_ns", Json.Int (Int64.to_int (Span.duration_ns s)));
    ]
  in
  let attrs =
    match s.attrs with
    | [] -> []
    | l -> [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) l)) ]
  in
  let children =
    match s.children with
    | [] -> []
    | l -> [ ("children", Json.List (List.map span_json l)) ]
  in
  Json.Obj (base @ attrs @ children)

let hist_json (h : Histogram.snap) =
  Json.Obj
    [
      ("bounds", Json.List (Array.to_list (Array.map (fun f -> Json.Float f) h.bounds)));
      ("counts", Json.List (Array.to_list (Array.map (fun i -> Json.Int i) h.counts)));
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("p50", Json.Float (Histogram.percentile h 0.50));
      ("p90", Json.Float (Histogram.percentile h 0.90));
      ("p99", Json.Float (Histogram.percentile h 0.99));
    ]

let trace_json (snap : snapshot) =
  Json.Obj
    [
      ("schema", Json.Str Schemas.trace);
      ("spans", Json.List (List.map span_json snap.spans));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) snap.histograms));
    ]

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (trace_json (snapshot ())));
      output_char oc '\n')

(* --- write-scope monitor -------------------------------------------- *)

module Scopemon = struct
  type violation = {
    domain_id : int;
    value : int;
    label : string;
  }

  let armed = Atomic.make false
  let mu = Mutex.create ()
  let captured : violation list ref = ref []

  type scope = {
    pred : (int -> bool) option;
    label : string;
  }

  let scope_key : scope Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { pred = None; label = "" })

  let arm () =
    Mutex.lock mu;
    captured := [];
    Mutex.unlock mu;
    Atomic.set armed true

  let disarm () =
    Atomic.set armed false;
    Domain.DLS.set scope_key { pred = None; label = "" }

  let set_scope ?(label = "") pred =
    Domain.DLS.set scope_key { pred; label }

  let clear_scope () = Domain.DLS.set scope_key { pred = None; label = "" }

  let record value =
    if Atomic.get armed then begin
      let s = Domain.DLS.get scope_key in
      match s.pred with
      | None -> ()
      | Some ok ->
        if not (ok value) then begin
          let v =
            {
              domain_id = (Domain.self () :> int);
              value;
              label = s.label;
            }
          in
          Mutex.lock mu;
          captured := v :: !captured;
          Mutex.unlock mu
        end
    end

  let violations () =
    Mutex.lock mu;
    let v = List.rev !captured in
    Mutex.unlock mu;
    v
end
