module Json = Json
module Schemas = Schemas

external now_ns : unit -> int64 = "obs_monotonic_ns"

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled v = Atomic.set on v

type attr = [ `Int of int | `Float of float | `Str of string ]

module Span = struct
  type t = {
    name : string;
    start_ns : int64;
    end_ns : int64;
    attrs : (string * attr) list;
    children : t list;
  }

  let duration_ns s = Int64.sub s.end_ns s.start_ns
end

(* --- open-span stacks: one per domain, merged at snapshot time --- *)

type open_span = {
  oname : string;
  ostart : int64;
  mutable oattrs : (string * attr) list;   (* reversed *)
  mutable ochildren : Span.t list;         (* reversed *)
}

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let completed_mu = Mutex.create ()
let completed : Span.t list ref = ref []   (* reversed *)

(* The pop happens before [close_span], so the parent (if any) is the new
   top of this domain's stack. Root spans go to the global list; the
   mutex is taken once per root span, never per nested span. *)
let close_span os end_ns =
  let sp =
    {
      Span.name = os.oname;
      start_ns = os.ostart;
      end_ns;
      attrs = List.rev os.oattrs;
      children = List.rev os.ochildren;
    }
  in
  match !(Domain.DLS.get stack_key) with
  | parent :: _ -> parent.ochildren <- sp :: parent.ochildren
  | [] ->
    Mutex.lock completed_mu;
    completed := sp :: !completed;
    Mutex.unlock completed_mu

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let os =
      { oname = name; ostart = now_ns (); oattrs = List.rev attrs;
        ochildren = [] }
    in
    stack := os :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let end_ns = now_ns () in
        (match !stack with
        | top :: rest when top == os -> stack := rest
        | _ -> stack := List.filter (fun o -> o != os) !stack);
        close_span os end_ns)
      f
  end

let add_attr k v =
  if enabled () then
    match !(Domain.DLS.get stack_key) with
    | top :: _ -> top.oattrs <- (k, v) :: top.oattrs
    | [] -> ()

(* --- rolling-window core (the write side of Obs.Window) ------------

   Time is cut into fixed-width buckets (epoch = now / bucket_ns); a
   windowed metric owns per-stripe ring buffers of [wbuckets] slots
   indexed by [epoch mod wbuckets], each slot holding that stripe's
   delta for one bucket. A writer finding its slot tagged with a stale
   epoch zeroes it and claims it; the slot then accumulates deltas with
   plain writes — one writer per stripe (the stripe is the writing
   domain's), so no write contention, mirroring the counter cells.
   Readers sum the slots whose epoch lies inside the requested horizon:
   the same merge-on-read idea as snapshots. A reader racing a bucket
   turnover may transiently misattribute that instant's bumps, but a
   horizon covering the whole recording period is exact once the
   writing domains are joined (the invariant the windowed-merge
   property test checks). Rings are preallocated or published through
   an atomic, so an enabled window adds no allocation to the metric hot
   paths; the one-time per-stripe ring allocation is cold. *)

module Wcore = struct
  let w_on = Atomic.make false

  (* bucket width; configurable before enabling (Window.configure) *)
  let bucket_ns = Atomic.make 1_000_000_000

  (* power of two; a horizon spans at most [wbuckets - 1] buckets *)
  let wbuckets = 64

  let epoch_at t_ns = Int64.to_int t_ns / Atomic.get bucket_ns
  let epoch_now () = epoch_at (now_ns ())

  (* counter ring: per-slot claim epoch + per-slot delta *)
  type cring = { ce : int Atomic.t array; cd : int array }

  let make_cring () =
    { ce = Array.init wbuckets (fun _ -> Atomic.make min_int);
      cd = Array.make wbuckets 0 }

  type wcounter = { crings : cring option Atomic.t array (* per stripe *) }

  let make_wcounter stripes =
    { crings = Array.init stripes (fun _ -> Atomic.make None) }

  let c_record (w : wcounter) i n =
    let r =
      match Atomic.get w.crings.(i) with
      | Some r -> r
      | None ->
        begin
          let r = make_cring () in
          Atomic.set w.crings.(i) (Some r);
          r
        end [@vm1.cold]
    in
    let e = epoch_now () in
    let s = e land (wbuckets - 1) in
    if Atomic.get r.ce.(s) <> e then begin
      r.cd.(s) <- 0;
      Atomic.set r.ce.(s) e
    end;
    r.cd.(s) <- r.cd.(s) + n

  let c_read (w : wcounter) ~e_start ~e_now =
    Array.fold_left
      (fun acc cell ->
        match Atomic.get cell with
        | None -> acc
        | Some r ->
          let sum = ref acc in
          for s = 0 to wbuckets - 1 do
            let e = Atomic.get r.ce.(s) in
            if e >= e_start && e <= e_now then sum := !sum + r.cd.(s)
          done;
          !sum)
      0 w.crings

  let c_reset (w : wcounter) =
    Array.iter (fun cell -> Atomic.set cell None) w.crings

  (* gauge ring: shared across domains, last write per bucket wins *)
  type wgauge = { ge : int Atomic.t array; gv : float Atomic.t array }

  let make_wgauge () =
    { ge = Array.init wbuckets (fun _ -> Atomic.make min_int);
      gv = Array.init wbuckets (fun _ -> Atomic.make 0.0) }

  let g_record (w : wgauge) v =
    let e = epoch_now () in
    let s = e land (wbuckets - 1) in
    Atomic.set w.gv.(s) v;
    Atomic.set w.ge.(s) e

  (* the value written in the newest in-horizon bucket, if any *)
  let g_read (w : wgauge) ~e_start ~e_now =
    let best = ref min_int and v = ref 0.0 in
    for s = 0 to wbuckets - 1 do
      let e = Atomic.get w.ge.(s) in
      if e >= e_start && e <= e_now && e > !best then begin
        best := e;
        v := Atomic.get w.gv.(s)
      end
    done;
    if !best = min_int then None else Some !v

  let g_reset (w : wgauge) =
    Array.iter (fun cell -> Atomic.set cell min_int) w.ge

  (* histogram ring: per-slot bucket-count deltas plus count/sum *)
  type hring = {
    he : int Atomic.t array;
    hd : int array array;  (* slot -> histogram-bucket deltas *)
    hn : int array;
    hs : float array;
  }

  let make_hring nb1 =
    { he = Array.init wbuckets (fun _ -> Atomic.make min_int);
      hd = Array.init wbuckets (fun _ -> Array.make nb1 0);
      hn = Array.make wbuckets 0;
      hs = Array.make wbuckets 0.0 }

  type whist = { hrings : hring option Atomic.t array (* per stripe *) }

  let make_whist stripes =
    { hrings = Array.init stripes (fun _ -> Atomic.make None) }

  let h_record (w : whist) ~nb1 i bucket x =
    let r =
      match Atomic.get w.hrings.(i) with
      | Some r -> r
      | None ->
        begin
          let r = make_hring nb1 in
          Atomic.set w.hrings.(i) (Some r);
          r
        end [@vm1.cold]
    in
    let e = epoch_now () in
    let s = e land (wbuckets - 1) in
    if Atomic.get r.he.(s) <> e then begin
      let d = r.hd.(s) in
      for k = 0 to Array.length d - 1 do
        d.(k) <- 0
      done;
      r.hn.(s) <- 0;
      r.hs.(s) <- 0.0;
      Atomic.set r.he.(s) e
    end;
    let d = r.hd.(s) in
    d.(bucket) <- d.(bucket) + 1;
    r.hn.(s) <- r.hn.(s) + 1;
    r.hs.(s) <- r.hs.(s) +. x

  let h_read (w : whist) ~nb1 ~e_start ~e_now =
    let counts = Array.make nb1 0 in
    let count = ref 0 and sum = ref 0.0 in
    Array.iter
      (fun cell ->
        match Atomic.get cell with
        | None -> ()
        | Some r ->
          for s = 0 to wbuckets - 1 do
            let e = Atomic.get r.he.(s) in
            if e >= e_start && e <= e_now then begin
              let d = r.hd.(s) in
              for k = 0 to nb1 - 1 do
                counts.(k) <- counts.(k) + d.(k)
              done;
              count := !count + r.hn.(s);
              sum := !sum +. r.hs.(s)
            end
          done)
      w.hrings;
    (counts, !count, !sum)

  let h_reset (w : whist) =
    Array.iter (fun cell -> Atomic.set cell None) w.hrings
end

(* --- metrics --- *)

module Counter = struct
  (* Stripes indexed by domain id: concurrent bumps from different
     domains land in different cells, so there is no write contention in
     the common case; [value] merges the per-domain cells. *)
  let stripes = 64

  type t = { cells : int Atomic.t array; w : Wcore.wcounter }

  let create () =
    { cells = Array.init stripes (fun _ -> Atomic.make 0);
      w = Wcore.make_wcounter stripes }

  let add t n =
    if Atomic.get on then begin
      let i = (Domain.self () :> int) land (stripes - 1) in
      if Atomic.get Wcore.w_on then Wcore.c_record t.w i n;
      ignore (Atomic.fetch_and_add t.cells.(i) n)
    end

  let incr t = add t 1
  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.cells;
    Wcore.c_reset t.w
end

module Gauge = struct
  type t = { cell : float Atomic.t; w : Wcore.wgauge }

  let create () = { cell = Atomic.make 0.0; w = Wcore.make_wgauge () }

  let set t v =
    if Atomic.get on then begin
      if Atomic.get Wcore.w_on then Wcore.g_record t.w v;
      Atomic.set t.cell v
    end

  let value t = Atomic.get t.cell

  let reset t =
    Atomic.set t.cell 0.0;
    Wcore.g_reset t.w
end

module Histogram = struct
  type t = {
    bounds : float array;
    counts : int Atomic.t array;  (* bounds + 1 cells; last = overflow *)
    nobs : int Atomic.t;
    sum : float Atomic.t;
    w : Wcore.whist;
  }

  let default_bounds =
    Array.init 14 (fun i -> 0.001 *. (3.0 ** float_of_int i))

  let create bounds =
    {
      bounds;
      counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
      nobs = Atomic.make 0;
      sum = Atomic.make 0.0;
      w = Wcore.make_whist Counter.stripes;
    }

  let rec atomic_add_float a x =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then atomic_add_float a x

  let observe t x =
    if Atomic.get on then begin
      let nb = Array.length t.bounds in
      let i = ref 0 in
      while !i < nb && x > t.bounds.(!i) do
        incr i
      done;
      if Atomic.get Wcore.w_on then begin
        let stripe = (Domain.self () :> int) land (Counter.stripes - 1) in
        Wcore.h_record t.w ~nb1:(nb + 1) stripe !i x
      end;
      ignore (Atomic.fetch_and_add t.counts.(!i) 1);
      ignore (Atomic.fetch_and_add t.nobs 1);
      atomic_add_float t.sum x
    end

  type snap = {
    bounds : float array;
    counts : int array;
    count : int;
    sum : float;
  }

  let snap (t : t) =
    {
      bounds = Array.copy t.bounds;
      counts = Array.map Atomic.get t.counts;
      count = Atomic.get t.nobs;
      sum = Atomic.get t.sum;
    }

  (* Percentile estimate from the bucket counts (linear interpolation
     inside the bucket, Prometheus-style). The overflow bucket has no
     upper edge, so anything landing there reports the highest bound.
     Total on any snap: an empty snap (or one with no bounds at all)
     has no quantiles, so the estimate is [nan] — callers that render
     must branch on [Float.is_nan] (the JSON exporter prints non-finite
     floats as [null]). *)
  let percentile (s : snap) q =
    if s.count = 0 then Float.nan
    else begin
      let nb = Array.length s.bounds in
      let target = q *. float_of_int s.count in
      let i = ref 0 and cum = ref 0.0 in
      while
        !i < nb && !cum +. float_of_int s.counts.(!i) < target
      do
        cum := !cum +. float_of_int s.counts.(!i);
        incr i
      done;
      if !i >= nb then (if nb = 0 then Float.nan else s.bounds.(nb - 1))
      else begin
        let lower = if !i = 0 then 0.0 else s.bounds.(!i - 1) in
        let upper = s.bounds.(!i) in
        let in_bucket = float_of_int s.counts.(!i) in
        let frac =
          if in_bucket <= 0.0 then 1.0
          else Float.min 1.0 ((target -. !cum) /. in_bucket)
        in
        lower +. (frac *. (upper -. lower))
      end
    end

  let reset (t : t) =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.nobs 0;
    Atomic.set t.sum 0.0;
    Wcore.h_reset t.w
end

(* --- process-global registry --- *)

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

let reg_mu = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let get_or_create name make classify =
  Mutex.lock reg_mu;
  let r =
    match Hashtbl.find_opt registry name with
    | Some m -> classify m
    | None ->
      let m = make () in
      Hashtbl.add registry name m;
      classify m
  in
  Mutex.unlock reg_mu;
  match r with
  | Some v -> v
  | None ->
    invalid_arg (Printf.sprintf "Obs: metric %S exists with another kind" name)

let counter name =
  get_or_create name
    (fun () -> C (Counter.create ()))
    (function C c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () -> G (Gauge.create ()))
    (function G g -> Some g | _ -> None)

let histogram ?(bounds = Histogram.default_bounds) name =
  get_or_create name
    (fun () -> H (Histogram.create bounds))
    (function H h -> Some h | _ -> None)

(* --- snapshot and export --- *)

type snapshot = {
  spans : Span.t list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Histogram.snap) list;
}

let by_name (a, _) (b, _) = String.compare a b

let sorted_metrics () =
  Mutex.lock reg_mu;
  let metrics =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
    |> List.sort by_name
  in
  Mutex.unlock reg_mu;
  metrics

let sort_roots roots =
  List.stable_sort
    (fun (a : Span.t) (b : Span.t) -> Int64.compare a.start_ns b.start_ns)
    roots

let snapshot_of_roots roots =
  let metrics = sorted_metrics () in
  let pick f = List.filter_map (fun (name, m) -> f name m) metrics in
  {
    spans = sort_roots roots;
    counters =
      pick (fun n m ->
          match m with C c -> Some (n, Counter.value c) | _ -> None);
    gauges =
      pick (fun n m -> match m with G g -> Some (n, Gauge.value g) | _ -> None);
    histograms =
      pick (fun n m ->
          match m with H h -> Some (n, Histogram.snap h) | _ -> None);
  }

let snapshot () =
  Mutex.lock completed_mu;
  let roots = List.rev !completed in
  Mutex.unlock completed_mu;
  snapshot_of_roots roots

(* --- incremental snapshots ------------------------------------------ *)

type cursor = { mutable seen_roots : int }

let cursor () = { seen_roots = 0 }

(* the newest-first prefix of [l], returned oldest-first *)
let rec take_rev n l acc =
  if n <= 0 then acc
  else match l with [] -> acc | x :: tl -> take_rev (n - 1) tl (x :: acc)

let snapshot_delta (c : cursor) =
  Mutex.lock completed_mu;
  let total = List.length !completed in
  let fresh = take_rev (total - c.seen_roots) !completed [] in
  Mutex.unlock completed_mu;
  c.seen_roots <- total;
  snapshot_of_roots fresh

let reset () =
  Mutex.lock completed_mu;
  completed := [];
  Mutex.unlock completed_mu;
  Mutex.lock reg_mu;
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort by_name
  |> List.iter (fun (_, m) ->
         match m with
         | C c -> Counter.reset c
         | G g -> Gauge.reset g
         | H h -> Histogram.reset h);
  Mutex.unlock reg_mu

(* --- rolling windows: the read side --------------------------------- *)

module Window = struct
  let enabled () = Atomic.get Wcore.w_on
  let set_enabled v = Atomic.set Wcore.w_on v

  let configure ~bucket_ns =
    Atomic.set Wcore.bucket_ns (max 1_000_000 bucket_ns)

  let max_horizon_ns () =
    Int64.of_int ((Wcore.wbuckets - 1) * Atomic.get Wcore.bucket_ns)

  type view = {
    v_now_ns : int64;
    v_horizon_ns : int64;
    v_counters : (string * int) list;
    v_gauges : (string * float option) list;
    v_histograms : (string * Histogram.snap) list;
  }

  let read ?now_ns:now ~horizon_ns () =
    let now = match now with Some t -> t | None -> now_ns () in
    let horizon_ns =
      if Int64.compare horizon_ns (max_horizon_ns ()) > 0 then
        max_horizon_ns ()
      else horizon_ns
    in
    let e_now = Wcore.epoch_at now in
    let e_start = Wcore.epoch_at (Int64.sub now horizon_ns) in
    let e_start = max e_start (e_now - (Wcore.wbuckets - 1)) in
    let metrics = sorted_metrics () in
    let pick f = List.filter_map (fun (name, m) -> f name m) metrics in
    {
      v_now_ns = now;
      v_horizon_ns = horizon_ns;
      v_counters =
        pick (fun n m ->
            match m with
            | C c -> Some (n, Wcore.c_read c.Counter.w ~e_start ~e_now)
            | _ -> None);
      v_gauges =
        pick (fun n m ->
            match m with
            | G g -> Some (n, Wcore.g_read g.Gauge.w ~e_start ~e_now)
            | _ -> None);
      v_histograms =
        pick (fun n m ->
            match m with
            | H h ->
              let nb1 = Array.length h.Histogram.bounds + 1 in
              let counts, count, sum =
                Wcore.h_read h.Histogram.w ~nb1 ~e_start ~e_now
              in
              Some
                ( n,
                  {
                    Histogram.bounds = Array.copy h.Histogram.bounds;
                    counts;
                    count;
                    sum;
                  } )
            | _ -> None);
    }
end

(* --- bounded ring --------------------------------------------------- *)

module Ring = struct
  type 'a t = {
    mu : Mutex.t;
    buf : 'a option array;
    mutable next : int;
    mutable len : int;
  }

  let create capacity =
    {
      mu = Mutex.create ();
      buf = Array.make (max 1 capacity) None;
      next = 0;
      len = 0;
    }

  let push t v =
    Mutex.lock t.mu;
    t.buf.(t.next) <- Some v;
    t.next <- (t.next + 1) mod Array.length t.buf;
    t.len <- min (Array.length t.buf) (t.len + 1);
    Mutex.unlock t.mu

  let length t =
    Mutex.lock t.mu;
    let n = t.len in
    Mutex.unlock t.mu;
    n

  let to_list t =
    Mutex.lock t.mu;
    let cap = Array.length t.buf in
    let out = ref [] in
    (* newest first while walking backwards, so the result is oldest
       first *)
    for k = 0 to t.len - 1 do
      match t.buf.((t.next - 1 - k + (2 * cap)) mod cap) with
      | Some v -> out := v :: !out
      | None -> ()
    done;
    Mutex.unlock t.mu;
    !out
end

type span_agg = {
  calls : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

let aggregate_spans roots =
  let tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 32 in
  let rec visit (s : Span.t) =
    let d = Span.duration_ns s in
    let agg =
      match Hashtbl.find_opt tbl s.name with
      | None -> { calls = 1; total_ns = d; min_ns = d; max_ns = d }
      | Some a ->
        {
          calls = a.calls + 1;
          total_ns = Int64.add a.total_ns d;
          min_ns = Int64.min a.min_ns d;
          max_ns = Int64.max a.max_ns d;
        }
    in
    Hashtbl.replace tbl s.name agg;
    List.iter visit s.children
  in
  List.iter visit roots;
  Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) tbl []
  |> List.sort (fun (na, a) (nb, b) ->
         match Int64.compare b.total_ns a.total_ns with
         | 0 -> String.compare na nb  (* deterministic on ties *)
         | c -> c)

let attr_json : attr -> Json.t = function
  | `Int i -> Json.Int i
  | `Float f -> Json.Float f
  | `Str s -> Json.Str s

let rec span_json (s : Span.t) =
  let base =
    [
      ("name", Json.Str s.name);
      ("start_ns", Json.Int (Int64.to_int s.start_ns));
      ("dur_ns", Json.Int (Int64.to_int (Span.duration_ns s)));
    ]
  in
  let attrs =
    match s.attrs with
    | [] -> []
    | l -> [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_json v)) l)) ]
  in
  let children =
    match s.children with
    | [] -> []
    | l -> [ ("children", Json.List (List.map span_json l)) ]
  in
  Json.Obj (base @ attrs @ children)

let hist_json (h : Histogram.snap) =
  Json.Obj
    [
      ("bounds", Json.List (Array.to_list (Array.map (fun f -> Json.Float f) h.bounds)));
      ("counts", Json.List (Array.to_list (Array.map (fun i -> Json.Int i) h.counts)));
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("p50", Json.Float (Histogram.percentile h 0.50));
      ("p90", Json.Float (Histogram.percentile h 0.90));
      ("p99", Json.Float (Histogram.percentile h 0.99));
    ]

let trace_json (snap : snapshot) =
  Json.Obj
    [
      ("schema", Json.Str Schemas.trace);
      ("spans", Json.List (List.map span_json snap.spans));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) snap.gauges));
      ("histograms", Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) snap.histograms));
    ]

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (trace_json (snapshot ())));
      output_char oc '\n')

(* --- write-scope monitor -------------------------------------------- *)

module Scopemon = struct
  type violation = {
    domain_id : int;
    value : int;
    label : string;
  }

  let armed = Atomic.make false
  let mu = Mutex.create ()
  let captured : violation list ref = ref []

  type scope = {
    pred : (int -> bool) option;
    label : string;
  }

  let scope_key : scope Domain.DLS.key =
    Domain.DLS.new_key (fun () -> { pred = None; label = "" })

  let arm () =
    Mutex.lock mu;
    captured := [];
    Mutex.unlock mu;
    Atomic.set armed true

  let disarm () =
    Atomic.set armed false;
    Domain.DLS.set scope_key { pred = None; label = "" }

  let set_scope ?(label = "") pred =
    Domain.DLS.set scope_key { pred; label }

  let clear_scope () = Domain.DLS.set scope_key { pred = None; label = "" }

  let record value =
    if Atomic.get armed then begin
      let s = Domain.DLS.get scope_key in
      match s.pred with
      | None -> ()
      | Some ok ->
        if not (ok value) then begin
          let v =
            {
              domain_id = (Domain.self () :> int);
              value;
              label = s.label;
            }
          in
          Mutex.lock mu;
          captured := v :: !captured;
          Mutex.unlock mu
        end
    end

  let violations () =
    Mutex.lock mu;
    let v = List.rev !captured in
    Mutex.unlock mu;
    v
end
