(** Minimal JSON value type with a printer and a parser.

    Self-contained so [Obs] stays dependency-free: the trace exporter
    prints with [to_string], and tests (plus the tier-1 smoke check)
    validate emitted traces with [parse]. Floats are printed with enough
    digits to round-trip exactly through [float_of_string]; non-finite
    floats, which JSON cannot represent, are printed as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [parse s] parses one JSON value (surrounding whitespace allowed).
    Numbers without [.], [e] or [E] become [Int]; all others [Float]. *)
val parse : string -> (t, string) result

(** [member key j] is the value bound to [key] when [j] is an [Obj]
    containing it. *)
val member : string -> t -> t option
