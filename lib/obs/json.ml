type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else begin
    (* shortest representation that round-trips through float_of_string *)
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    Buffer.add_string b s;
    if String.for_all (fun c -> c <> '.' && c <> 'e' && c <> 'E') s then
      Buffer.add_string b ".0"
  end

let to_string j =
  let b = Buffer.create 1024 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> add_float b f
    | Str s -> escape b s
    | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        l;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          go v)
        kvs;
      Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "bad \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           (* decode as Latin-1 for codes < 256, '?' otherwise: traces only
              escape control characters, which this covers exactly *)
           Buffer.add_char b (if code < 256 then Char.chr code else '?');
           pos := !pos + 4
         | _ -> fail "bad escape");
         advance ());
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let pair () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ pair () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := pair () :: !items;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !items)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Fail "trailing garbage");
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
