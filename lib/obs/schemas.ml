type id =
  | Trace
  | Lint
  | Lint_baseline
  | Route_profile
  | Bench_scaling
  | Trace_report
  | Jobs
  | Bench_load
  | Bench_manifest
  | Expt_matrix
  | Distopt_profile
  | Metrics
  | Health
  | Joblog

let all =
  [
    Trace;
    Lint;
    Lint_baseline;
    Route_profile;
    Bench_scaling;
    Trace_report;
    Jobs;
    Bench_load;
    Bench_manifest;
    Expt_matrix;
    Distopt_profile;
    Metrics;
    Health;
    Joblog;
  ]

let to_string = function
  | Trace -> "vm1dp-trace/1"
  | Lint -> "vm1dp-lint/2"
  | Lint_baseline -> "vm1dp-lint-baseline/1"
  | Route_profile -> "vm1dp-route-profile/1"
  | Bench_scaling -> "vm1dp-bench-scaling/1"
  | Trace_report -> "vm1dp-trace-report/1"
  | Jobs -> "vm1dp-jobs/1"
  | Bench_load -> "vm1dp-bench-load/1"
  | Bench_manifest -> "vm1dp-bench-manifest/1"
  | Expt_matrix -> "vm1dp-expt-matrix/1"
  | Distopt_profile -> "vm1dp-distopt-profile/1"
  | Metrics -> "vm1dp-metrics/1"
  | Health -> "vm1dp-health/1"
  | Joblog -> "vm1dp-joblog/1"

let of_string s = List.find_opt (fun id -> String.equal (to_string id) s) all
let trace = to_string Trace
let lint = to_string Lint
let lint_baseline = to_string Lint_baseline
let route_profile = to_string Route_profile
let bench_scaling = to_string Bench_scaling
let trace_report = to_string Trace_report
let jobs = to_string Jobs
let bench_load = to_string Bench_load
let bench_manifest = to_string Bench_manifest
let expt_matrix = to_string Expt_matrix
let distopt_profile = to_string Distopt_profile
let metrics = to_string Metrics
let health = to_string Health
let joblog = to_string Joblog
