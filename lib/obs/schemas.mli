(** Central registry of the JSON schema tags emitted by this repository.

    Every machine-readable artifact the flow writes carries a top-level
    ["schema"] field; the version tags used to be string literals
    scattered over the emitters, which made it impossible to check that
    a consumer and its producer agree. All tags now live here, and a
    test asserts that every emitter's ["schema"] field round-trips
    through {!of_string}. Bump a tag's [/N] suffix when its document
    shape changes incompatibly. *)

type id =
  | Trace          (** [Obs.trace_json]: spans + metrics ([--trace]) *)
  | Lint           (** [Lint.to_json]: the vm1lint v2 report (findings
                       with taint-chain witnesses and fingerprints) *)
  | Lint_baseline
      (** [Lint.baseline_json]: the committed ratchet baseline
          ([lint_baseline.json]) of known-debt finding fingerprints;
          [@lint] fails only on findings not in it *)
  | Route_profile  (** [bench route-profile]: router quality/profile *)
  | Bench_scaling  (** [bench scaling]: per-stage wall-clock vs --jobs *)
  | Trace_report   (** [Trace.Profile.to_json]: aggregated trace profile *)
  | Jobs
      (** the [vm1d] batch-service wire format: both the job requests a
          client sends and the replies the daemon streams back (one JSON
          object per line; full spec in PROTOCOL.md) *)
  | Bench_load
      (** [bench load]: daemon throughput/latency under N concurrent
          clients (the committed BENCH_vm1d.json) *)
  | Bench_manifest
      (** [Io.Manifest]: a benchmark manifest naming designs (generator
          specs or external DEF/LEF paths) and the arch/util/scale axes
          an experiment matrix sweeps *)
  | Expt_matrix
      (** [expt matrix]: the per-cell QoR report swept from a benchmark
          manifest (the committed test/matrix_golden.json) *)
  | Distopt_profile
      (** [bench distopt-profile]: window-solver profile — per-window
          solve-time percentiles, memo-cache hit rate, portfolio win
          counts (the committed bench/distopt_profile_baseline.json) *)
  | Metrics
      (** [Serve.Telemetry]: the admin-plane [metrics] reply —
          cumulative + windowed metric views with latency percentiles
          (spec in PROTOCOL.md, "The admin plane") *)
  | Health
      (** [Serve.Telemetry]: the admin-plane [health] reply —
          readiness, uptime, in-flight/queue depth, cache hit rates and
          GC stats (spec in PROTOCOL.md, "The admin plane") *)
  | Joblog
      (** [Serve.Telemetry]: one structured access-log record per
          completed job, written line-delimited to [vm1d --job-log]
          (spec in PROTOCOL.md, "The job log") *)

(** All tags, in declaration order. *)
val all : id list

val to_string : id -> string

(** [of_string s] recognises exactly the {!to_string} image. *)
val of_string : string -> id option

(** {1 Shorthands} — the [to_string] of each tag. *)

val trace : string
val lint : string
val lint_baseline : string
val route_profile : string
val bench_scaling : string
val trace_report : string
val jobs : string
val bench_load : string
val bench_manifest : string
val expt_matrix : string
val distopt_profile : string
val metrics : string
val health : string
val joblog : string
