(** Flow-wide observability: hierarchical spans, counters, gauges and
    histograms behind one process-global registry.

    Design constraints, in order:

    - {b Zero overhead when off.} Instrumentation is compiled in
      everywhere but every operation is a cheap branch on a disabled
      flag, so the uninstrumented flow is unchanged — bit-identical
      results, no allocation on the hot path.
    - {b Safe under [Domain]-parallel window solving.} All mutable state
      is either per-domain (the open-span stack, via [Domain.DLS]) or
      written through atomics (counter stripes, gauge cells, histogram
      buckets). [Dist_opt.solve_batch] can fan spans and counter bumps
      out over domains with no locking on the hot path; per-domain
      buffers are merged when a snapshot is taken, after the joins.
    - {b Zero dependencies.} Only the OCaml runtime and a 10-line C stub
      for [CLOCK_MONOTONIC]; the JSON exporter is [Json], in this
      library.

    Instrumentation never alters control flow: [with_span] re-raises the
    callback's exceptions after closing the span, and all recording is
    write-only until [snapshot]. *)

(** The JSON value type used by the trace exporter, re-exported so
    consumers can parse and inspect traces (see {!Json.parse}). *)
module Json : module type of Json

(** The schema-version tags of every machine-readable artifact the repo
    emits, re-exported so producers and consumers share one registry. *)
module Schemas : module type of Schemas

(** {1 Master switch} *)

(** [enabled ()] is the process-global instrumentation switch; initially
    [false]. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** {1 Clock} *)

(** [now_ns ()] is the monotonic clock in nanoseconds since an arbitrary
    epoch (only differences are meaningful). *)
val now_ns : unit -> int64

(** {1 Spans} *)

(** Attribute value attached to a span. *)
type attr = [ `Int of int | `Float of float | `Str of string ]

module Span : sig
  (** A completed span: one timed region, with the regions it enclosed
      as children. Spans opened on a spawned domain form their own roots
      (a child domain cannot see its parent's open stack). *)
  type t = {
    name : string;
    start_ns : int64;
    end_ns : int64;
    attrs : (string * attr) list;
    children : t list;  (** in opening order *)
  }

  val duration_ns : t -> int64
end

(** [with_span name f] times [f] as a span nested under the current
    domain's innermost open span (a root span when there is none).
    Exceptions from [f] close the span and re-raise. When disabled this
    is exactly [f ()]. *)
val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a

(** [add_attr key v] attaches an attribute to the innermost open span of
    the calling domain; no-op when disabled or outside any span. *)
val add_attr : string -> attr -> unit

(** {1 Metrics}

    Metrics are created through the registry functions below, which
    get-or-create by name, so instrumentation sites may either cache the
    handle or re-look it up. All update operations are domain-safe and
    no-ops while disabled. *)

module Counter : sig
  (** Monotonically increasing integer, striped over per-domain cells so
      concurrent bumps from parallel window solves do not contend; the
      stripes are summed at read time. *)
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  (** [value t] sums the per-domain stripes. Exact once the writing
      domains have been joined. *)
  val value : t -> int
end

module Gauge : sig
  (** Last-written float value (e.g. an overflow ratio after routing). *)
  type t

  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  (** Bucketed distribution of float observations. Bucket [i] counts
      observations [<= bounds.(i)]; one extra bucket counts the rest. *)
  type t

  val observe : t -> float -> unit

  type snap = {
    bounds : float array;
    counts : int array;  (** length = [Array.length bounds + 1] *)
    count : int;
    sum : float;
  }

  val snap : t -> snap

  (** [percentile s q] estimates the [q]-quantile ([0 < q <= 1]) from
      the bucket counts by linear interpolation within the bucket;
      observations in the overflow bucket report the highest bound.

      Total on every snap: an empty snap — or a degenerate one with no
      bounds — has no quantiles, and the estimate is [Float.nan].
      Renderers must branch on [Float.is_nan]; the JSON exporter prints
      non-finite floats as [null], so an empty histogram's p50/p90/p99
      serialise as [null] rather than a fake 0. The trace exporter
      emits p50/p90/p99 of every histogram next to the raw buckets. *)
  val percentile : snap -> float -> float
end

(** [counter name] gets or creates the counter [name]. *)
val counter : string -> Counter.t

(** [gauge name] gets or creates the gauge [name]. *)
val gauge : string -> Gauge.t

(** [histogram ?bounds name] gets or creates the histogram [name];
    [bounds] applies on creation only (default: 14 exponential buckets
    from 0.001 to ~8000, suiting milliseconds). *)
val histogram : ?bounds:float array -> string -> Histogram.t

(** {1 Snapshot and export} *)

type snapshot = {
  spans : Span.t list;  (** completed roots, all domains, by start time *)
  counters : (string * int) list;      (** sorted by name *)
  gauges : (string * float) list;      (** sorted by name *)
  histograms : (string * Histogram.snap) list;  (** sorted by name *)
}

(** [snapshot ()] merges every domain's completed spans and all metric
    values into one immutable view. Spans still open (or owned by
    un-joined domains mid-flight) are not included. *)
val snapshot : unit -> snapshot

(** {2 Incremental snapshots}

    A long-lived daemon scraped every few seconds must not re-walk its
    whole span history per scrape: a {!cursor} remembers how many root
    spans the caller has already consumed, and {!snapshot_delta} returns
    only the roots completed since — metric values are still cumulative
    (they are O(registry) to read, not O(history)). The scraper folds
    each delta into its own running aggregate (see [Serve.Telemetry]). *)

(** Consumption position in the completed-root-span history. Confine a
    cursor to one consumer; it is not safe to share between domains. *)
type cursor

(** A fresh cursor positioned before all history: the first
    [snapshot_delta] on it returns every completed root. *)
val cursor : unit -> cursor

(** [snapshot_delta c] is {!snapshot} restricted to the root spans
    completed since the previous call on [c] (metrics cumulative as
    always), advancing [c]. [reset] rewinds history; a cursor ahead of
    a reset history returns empty deltas until new roots complete. *)
val snapshot_delta : cursor -> snapshot

(** [reset ()] drops completed spans and zeroes every registered metric
    (rolling-window state included); handles stay valid. Open spans on
    other domains are unaffected. *)
val reset : unit -> unit

(** {1 Rolling windows}

    The cumulative metrics above answer "since start"; {!Window} makes
    the same counters, gauges and histograms answer "over the last N
    seconds" for a live daemon. The write side is a lock-free rolling
    layer: time is cut into fixed-width buckets, and every metric owns
    per-stripe ring buffers of per-bucket deltas (one writer per
    stripe — the writing domain's — exactly like the counter cells),
    merged on read the way snapshots merge per-domain state. Off by
    default; when off, the metric hot paths are unchanged. When on,
    recording stays allocation-free after a one-time cold per-stripe
    ring allocation, so enabling windows cannot shift the allocation
    gauges the perf gate bands.

    Accuracy contract: a read racing a bucket turnover may transiently
    misattribute that instant's bumps between adjacent buckets, but a
    horizon covering the whole recording period equals the cumulative
    value exactly once the writing domains are joined — the
    windowed ≡ merged-deltas invariant (property-tested across 1/2/4
    domains in [test_obs]). *)

module Window : sig
  (** Window recording is off by default; [vm1d] enables it when the
      admin plane is up. Enable before traffic: bumps recorded while
      off are visible to cumulative reads only. *)
  val enabled : unit -> bool

  val set_enabled : bool -> unit

  (** [configure ~bucket_ns] sets the bucket width (default 1s, clamped
      to >= 1ms). Call before {!set_enabled}: slots recorded under a
      different width read as stale, not wrong, but the transition
      empties the windows. *)
  val configure : bucket_ns:int -> unit

  (** Longest supported horizon: (ring length - 1) buckets. Reads are
      clamped to it. *)
  val max_horizon_ns : unit -> int64

  (** One windowed view over every registered metric, sorted by name
      like {!snapshot}. A windowed gauge is the value written in the
      newest bucket inside the horizon, or [None] when the gauge was
      not set inside it (a gauge is a level — fall back to
      {!Gauge.value}). A windowed histogram is an ordinary
      {!Histogram.snap} of the in-horizon observations, so
      {!Histogram.percentile} applies (and is [nan] on an empty
      window). *)
  type view = {
    v_now_ns : int64;
    v_horizon_ns : int64;  (** after clamping to [max_horizon_ns] *)
    v_counters : (string * int) list;
    v_gauges : (string * float option) list;
    v_histograms : (string * Histogram.snap) list;
  }

  (** [read ~horizon_ns ()] merges the per-stripe rings into the view
      for the last [horizon_ns] (including the partial current bucket
      and the partial bucket containing the horizon start). [now_ns]
      overrides the clock for tests: a far-future [now_ns] reads every
      slot as expired. *)
  val read : ?now_ns:int64 -> horizon_ns:int64 -> unit -> view
end

(** {1 Bounded ring}

    A small mutex-guarded ring of the most recent N values, for
    cross-domain recent-history buffers (the daemon's recent-job ring:
    the serve loop pushes, the admin domain reads). Not for hot paths —
    every operation takes the lock. *)

module Ring : sig
  type 'a t

  val create : int -> 'a t

  (** [push t v] appends [v], evicting the oldest value once the ring
      holds its capacity. *)
  val push : 'a t -> 'a -> unit

  val length : 'a t -> int

  (** Oldest first. *)
  val to_list : 'a t -> 'a list
end

(** Per-name span aggregate over a whole span forest. *)
type span_agg = {
  calls : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

(** [aggregate_spans roots] folds every span of the forest (children
    included) into per-name aggregates, sorted by descending total
    time. *)
val aggregate_spans : Span.t list -> (string * span_agg) list

(** [trace_json snap] is the machine-readable trace (schema documented
    in the README's "Measuring performance" section). *)
val trace_json : snapshot -> Json.t

(** [write_trace path] takes a snapshot and writes its JSON trace to
    [path]. *)
val write_trace : string -> unit

(** {1 Write-scope monitor}

    A lockset-style race detector for the one place the flow shares
    mutable state between domains: the routing grid during the
    region-sharded parallel pass. Each worker declares the scope it may
    legally write (its tile, as a predicate over an opaque int key — the
    router uses grid node ids); every instrumented write calls
    {!Scopemon.record}, and a write outside the caller's declared scope
    is captured as a violation. When disarmed (the default) the cost per
    write is one atomic load and branch. *)

module Scopemon : sig
  type violation = {
    domain_id : int;  (** the domain that performed the write *)
    value : int;      (** the key that was written *)
    label : string;   (** the writer's scope label, e.g. ["tile(2,3)"] *)
  }

  (** [arm ()] clears captured violations and enables recording
      process-wide. *)
  val arm : unit -> unit

  (** [disarm ()] stops recording (captured violations are kept until the
      next {!arm}) and clears the calling domain's scope. *)
  val disarm : unit -> unit

  (** [set_scope ?label pred] declares the calling domain's legal write
      scope; [None] means unrestricted (e.g. the sequential phase).
      Scopes are per-domain ([Domain.DLS]); a pool worker must set its
      scope inside the task body. *)
  val set_scope : ?label:string -> (int -> bool) option -> unit

  (** [clear_scope ()] is [set_scope None]. *)
  val clear_scope : unit -> unit

  (** [record key] checks [key] against the calling domain's scope; called
      by instrumented writers (grid commit/uncommit). No-op when
      disarmed. *)
  val record : int -> unit

  (** [violations ()] is the captured out-of-scope writes since the last
      {!arm}, in capture order. *)
  val violations : unit -> violation list
end
