(** [vm1lint]: a compiler-libs linter over this repository's own OCaml
    sources, enforcing the determinism and parallel-safety contract that
    keeps the flow byte-identical across [--jobs] (see ARCHITECTURE.md,
    "Invariants and how they are enforced").

    The linter is purely syntactic — it parses each [.ml] file with
    [compiler-libs] and pattern-matches the Parsetree; it never
    typechecks. Rules are therefore written to be conservative about
    idioms the repo has blessed (e.g. a [Hashtbl.fold] whose result is
    immediately piped into [List.sort] is the sanctioned collect-then-sort
    pattern and is not flagged).

    Suppression comments:
    - [(* vm1lint: allow RULE ... *)] anywhere in a file suppresses RULE
      for the whole file;
    - [(* vm1lint: allow-line RULE ... *)] suppresses RULE on the
      comment's own line;
    - [(* vm1lint: allow-next RULE ... *)] suppresses RULE on the line
      after the comment.
    Several rule names may be listed in one comment. Suppressed findings
    are still reported (as suppressed) so reviews can audit them.

    A small vetted allowlist ({!vetted}) records call sites that are
    deliberate, load-bearing exceptions (e.g. the shard-shared overflow
    cell in [lib/route/grid.ml]); vetted findings are reported separately
    and do not fail the lint, and unlike suppression comments they carry
    a central justification that [vm1lint --rules] prints. *)

type rule = {
  name : string;      (** kebab-case rule id, used in suppressions *)
  summary : string;   (** one-line description of the invariant *)
}

(** The rules, in reporting order. *)
val rules : rule list

type finding = {
  rule : string;
  file : string;  (** path as given to {!lint_file} *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, matching compiler conventions *)
  message : string;
}

type verdict =
  | Active      (** counts against the lint *)
  | Suppressed  (** silenced by a [vm1lint: allow*] comment *)
  | Vetted      (** on the central allowlist *)

type report = {
  findings : (verdict * finding) list;  (** in source order *)
  parse_error : string option;
      (** a file that does not parse is itself a finding *)
}

(** One vetted-allowlist entry: [rule] findings in files whose path ends
    with [path_suffix], on identifiers starting with [ident_prefix], are
    downgraded to {!Vetted}. *)
type vetted_site = {
  v_rule : string;
  path_suffix : string;
  ident_prefix : string;
  justification : string;
}

val vetted : vetted_site list

(** [lint_source ~path src] lints the source text [src]; [path] is used
    for reporting and for the path-scoped rules (a path containing
    [lib/exec/] or [lib/obs/] may use domain primitives, a path under
    [lib/] may not call [exit], ...). *)
val lint_source : path:string -> string -> report

(** [lint_file path] reads and lints one file. *)
val lint_file : string -> report

(** [ml_files_under paths] expands each path: a directory becomes all
    [.ml] files under it (recursively, sorted, [_build] and dot-dirs
    skipped); a file is kept as-is. *)
val ml_files_under : string list -> string list

(** Aggregate of a whole run, for the CLI and the tests. *)
type run = {
  files_scanned : int;
  reports : (string * report) list;  (** per file, in scan order *)
}

val run_paths : string list -> run

(** [active run] is the number of active (unsuppressed, unvetted)
    findings plus parse errors — the count that must be zero for
    [@lint] to pass. *)
val active : run -> int

(** [to_json run] is the machine-readable report, schema
    [vm1dp-lint/1] (documented in README, "Static analysis"). *)
val to_json : run -> Obs.Json.t

(** [pp_human ppf run] renders the human report: one line per finding,
    then a summary. *)
val pp_human : Format.formatter -> run -> unit
