(** [vm1lint] v2: a two-phase, whole-repo determinism and allocation
    analyzer over this repository's own OCaml sources, enforcing the
    contract that keeps the flow byte-identical across [--jobs] (see
    ARCHITECTURE.md, "Invariants and how they are enforced").

    Phase 1 parses each [.ml] file with [compiler-libs] and walks the
    Parsetree, building a call graph whose nodes are the named functions
    (any nesting depth, module path included — e.g. [Router.search.run])
    with per-function summaries: determinism taints introduced directly
    (wall-clock / environment / global-random reads, unsorted [Hashtbl]
    iteration, [Domain]/[Atomic] primitives), allocation sites (tuples,
    records, variants, closures, arrays, a curated table of allocating
    stdlib calls), outgoing calls, and the [@vm1.hot] / [@vm1.cold]
    annotations. Phase 2 resolves calls across files and propagates
    taints to fixpoint — a clock read three helpers deep flags the
    pure-library caller, with the full call chain as a witness — and
    reports allocation sites reachable from every [@vm1.hot] function
    ([@vm1.cold] on a binding or expression prunes amortized branches,
    e.g. a doubling realloc, from the walk).

    The analysis is syntactic (no typechecking): call resolution is a
    best-effort over module paths, [module M = Make (...)] aliases,
    library-wrapper prefixes ([Route.Bqueue.pop] = [Bqueue.pop]) and
    lexical scope, and resolves ambiguity to nothing rather than
    guessing. Named local functions are graph nodes, not closure
    allocations; anonymous [fun] is an allocation at its occurrence.
    Argument subtrees of [raise]/[failwith]/[invalid_arg]/[assert] are
    exempt from allocation accounting (error paths are not hot).

    Suppression comments ([(* vm1lint: allow RULE *)], [allow-line],
    [allow-next]) work as in v1 and also stop a primitive's taint from
    propagating, as does a {!vetted} allowlist hit. Every finding
    carries a stable {e fingerprint}; the committed ratchet baseline
    ([lint_baseline.json], schema [vm1dp-lint-baseline/1]) downgrades
    known-debt fingerprints to {!Baselined} so [@lint] fails only on
    {e new} findings, while {!run.stale} lists baseline entries that no
    longer fire (so fixing debt must shrink the baseline). *)

type rule = {
  name : string;      (** kebab-case rule id, used in suppressions *)
  summary : string;   (** one-line description of the invariant *)
}

(** The rules, in reporting order. *)
val rules : rule list

type finding = {
  rule : string;
  file : string;  (** normalized (backslashes, [./], [../] stripped) *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, matching compiler conventions *)
  message : string;
  fn : string;    (** containing function path, e.g. [Router.search.run];
                      for interprocedural findings, the flagged caller *)
  fingerprint : string;
      (** stable 12-hex-digit identity used by the ratchet baseline:
          local findings key on (rule, file, function, primitive,
          occurrence ordinal); interprocedural findings on (rule, file,
          function, sink primitive); hot-alloc findings on (file,
          function, allocation kind) — so moving a line does not churn
          the baseline, but a new offender does *)
  witness : (string * string * int) list;
      (** the taint chain as (function, file, line), from the flagged
          function down to the one containing the primitive; [[]] for
          local findings *)
}

type verdict =
  | Active      (** counts against the lint *)
  | Suppressed  (** silenced by a [vm1lint: allow*] comment *)
  | Vetted      (** on the central allowlist *)
  | Baselined   (** known debt: fingerprint in the ratchet baseline *)

type report = {
  findings : (verdict * finding) list;
      (** local findings in source order, then interprocedural findings
          in definition order, then hot-alloc findings *)
  parse_error : string option;
      (** a file that does not parse is itself a finding *)
}

(** One vetted-allowlist entry: [rule] findings in files whose path ends
    with [path_suffix], on primitives starting with [ident_prefix], are
    downgraded to {!Vetted} and their taint does not propagate. *)
type vetted_site = {
  v_rule : string;
  path_suffix : string;
  ident_prefix : string;
  justification : string;
}

val vetted : vetted_site list

(** {1 The ratchet baseline} *)

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_fn : string;
}

(** Fingerprint-keyed known debt, as loaded from [lint_baseline.json]. *)
type baseline = (string * baseline_entry) list

val empty_baseline : baseline

(** [load_baseline path] reads a [vm1dp-lint-baseline/1] file. *)
val load_baseline : string -> (baseline, string) result

(** {1 Running the analyzer} *)

type run = {
  files_scanned : int;
  functions : int;   (** call-graph nodes *)
  call_edges : int;  (** resolved call edges *)
  reports : (string * report) list;  (** per file, in scan order *)
  stale : (string * baseline_entry) list;
      (** baseline entries whose fingerprint no longer fires *)
}

(** [save_baseline path run] writes the run's Active + Baselined
    findings as the new baseline (the [--update-baseline] flow). *)
val save_baseline : string -> run -> unit

(** The baseline document for [run], schema [vm1dp-lint-baseline/1]. *)
val baseline_json : run -> Obs.Json.t

(** The Active + Baselined findings of [run] as baseline entries,
    sorted by fingerprint (what {!save_baseline} writes). *)
val baseline_entries : run -> baseline

(** [count run v] is the number of findings with verdict [v]. *)
val count : run -> verdict -> int

(** [run_sources sources] analyzes in-memory [(path, source)] pairs as
    one program — the test seam for multi-file taint fixtures. *)
val run_sources : ?baseline:baseline -> (string * string) list -> run

(** [lint_source ~path src] analyzes a single source buffer (calls
    within the file still propagate interprocedurally). *)
val lint_source : ?baseline:baseline -> path:string -> string -> report

(** [lint_file path] reads and lints one file. *)
val lint_file : string -> report

(** [ml_files_under paths] expands each path: a directory becomes all
    [.ml] files under it (recursively, sorted, [_build] and dot-dirs
    skipped); a file is kept as-is. *)
val ml_files_under : string list -> string list

val run_paths : ?baseline:baseline -> string list -> run

(** [active run] is the number of active (unsuppressed, unvetted,
    unbaselined) findings plus parse errors — the count that must be
    zero for [@lint] to pass. *)
val active : run -> int

(** [to_json run] is the machine-readable report, schema
    [vm1dp-lint/2] (documented in README, "Static analysis"). *)
val to_json : run -> Obs.Json.t

(** [pp_human ppf run] renders the human report: one line per finding
    (with fingerprint + witness chain when [explain]), stale-baseline
    notices, then a summary. *)
val pp_human : ?explain:bool -> Format.formatter -> run -> unit
