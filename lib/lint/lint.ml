(* vm1lint v2: a two-phase, whole-repo determinism / allocation analyzer.

   Phase 1 parses every .ml file and walks its Parsetree, building a call
   graph whose nodes are the named functions (any nesting depth, module
   path included) with a per-function summary: the determinism taints it
   introduces directly (wall-clock / env / global-random reads, unsorted
   Hashtbl iteration, Domain/Atomic primitives), the allocation sites in
   its body (tuples, records, variants, closures, arrays, a curated
   table of allocating stdlib calls), the calls it makes, and whether it
   is annotated [@vm1.hot] / [@vm1.cold].

   Phase 2 resolves calls across files (module paths, library-wrapper
   prefixes, `module M = Make (...)` aliases, lexical scope) and
   propagates taints to fixpoint, so a clock read three helpers deep
   still flags the pure-library caller — with the full call chain as a
   witness. It also walks the call graph from every [@vm1.hot] function
   and reports allocation sites reachable from it ([@vm1.cold] prunes
   amortized-growth branches from the walk).

   The analysis stays syntactic (no typechecking): call resolution is a
   best-effort over module paths and is deliberately conservative —
   ambiguous targets resolve to nothing rather than guessing. *)

type rule = {
  name : string;
  summary : string;
}

let rules =
  [
    { name = "hashtbl-order";
      summary =
        "Hashtbl.iter/fold/to_seq iterate in hash order; only the \
         collect-then-sort idiom (fold piped into List.sort) may feed \
         ordered output (propagates through callers)" };
    { name = "poly-compare";
      summary =
        "bare polymorphic compare/Hashtbl.hash; use Int.compare, \
         String.compare or a typed comparator" };
    { name = "phys-eq";
      summary =
        "physical equality (==/!=) on boxed values is \
         representation-dependent; reserved for lib/exec and lib/obs \
         identity checks" };
    { name = "domain-prims";
      summary =
        "Domain/Mutex/Condition/Atomic/Thread belong to lib/exec and \
         lib/obs; shared mutable state elsewhere must be vetted \
         explicitly (propagates through callers)" };
    { name = "global-random";
      summary =
        "global Random state (or make_self_init) is unseeded; use \
         Random.State with a deterministic seed (propagates through \
         callers)" };
    { name = "wall-clock";
      summary =
        "wall-clock reads (Sys.time, Unix.gettimeofday, ...) in pure \
         flow stages; timing belongs to lib/obs spans and the report \
         layer (propagates through callers)" };
    { name = "env-read";
      summary =
        "environment reads (Sys.getenv, Unix.environment, ...) make a \
         pure flow stage depend on ambient process state; read the \
         environment in binaries and pass values down (propagates \
         through callers)" };
    { name = "exit-in-lib";
      summary = "libraries must raise, not exit; exit is for binaries" };
    { name = "obj-magic";
      summary = "Obj.* defeats the type system and invites undefined \
                 behaviour" };
    { name = "readdir-unsorted";
      summary =
        "Sys.readdir order is filesystem-dependent; sort before use" };
    { name = "marshal";
      summary =
        "Marshal output is not stable across compiler versions or \
         sharing; use a textual format" };
    { name = "hot-alloc";
      summary =
        "allocation site reachable from a [@vm1.hot] function; hoist \
         the allocation, restructure, or mark the amortized branch \
         [@vm1.cold]" };
  ]

let rule_names = List.map (fun r -> r.name) rules

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  fn : string;
  fingerprint : string;
  witness : (string * string * int) list;
}

type verdict =
  | Active
  | Suppressed
  | Vetted
  | Baselined

type report = {
  findings : (verdict * finding) list;
  parse_error : string option;
}

type vetted_site = {
  v_rule : string;
  path_suffix : string;
  ident_prefix : string;
  justification : string;
}

let vetted =
  [
    { v_rule = "domain-prims";
      path_suffix = "lib/route/grid.ml";
      ident_prefix = "Atomic.";
      justification =
        "the overflow-edge total is the one cell the region-sharded \
         routing pass shares between domains; concurrent tiles commit \
         to disjoint edges and nets but bump this one atomic counter" };
    { v_rule = "domain-prims";
      path_suffix = "bench/main.ml";
      ident_prefix = "Domain.";
      justification =
        "the scaling benchmark reports Domain.recommended_domain_count \
         to size its --jobs sweep; it never spawns" };
  ]

(* --- path classification -------------------------------------------- *)

let norm_path p = String.map (fun c -> if c = '\\' then '/' else c) p

(* fingerprints must agree no matter where vm1lint was started from, so
   strip any ./ and ../ run-location prefixes *)
let rel_path p =
  let p = norm_path p in
  let rec strip p =
    if String.length p > 2 && String.sub p 0 2 = "./" then
      strip (String.sub p 2 (String.length p - 2))
    else if String.length p > 3 && String.sub p 0 3 = "../" then
      strip (String.sub p 3 (String.length p - 3))
    else p
  in
  strip p

let path_has p frag =
  let p = "/" ^ norm_path p in
  let lp = String.length p and lf = String.length frag in
  let rec go i = i + lf <= lp && (String.sub p i lf = frag || go (i + 1)) in
  go 0

let in_exec p = path_has p "/lib/exec/"
let in_obs p = path_has p "/lib/obs/"
let in_lib p = path_has p "/lib/"

(* stages allowed to read the clock (and the environment): obs owns it,
   exec schedules with it, report/bench/bin present wall times to humans *)
let clock_ok p =
  (not (in_lib p)) || in_obs p || in_exec p || path_has p "/lib/report/"

(* --- suppression comments ------------------------------------------- *)

type suppressions = {
  file_wide : (string, unit) Hashtbl.t;
  by_line : (int * string, unit) Hashtbl.t;
}

let is_rule_name s = List.mem s rule_names

let scan_suppressions src =
  let sup =
    { file_wide = Hashtbl.create 4; by_line = Hashtbl.create 4 }
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let marker = "vm1lint:" in
      let mlen = String.length marker in
      let len = String.length line in
      let rec find j =
        if j + mlen > len then ()
        else if String.sub line j mlen = marker then begin
          let rest = String.sub line (j + mlen) (len - j - mlen) in
          let words =
            String.split_on_char ' ' rest
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | mode :: args
            when mode = "allow" || mode = "allow-line" || mode = "allow-next"
            ->
            let rec take = function
              | w :: tl when is_rule_name w -> w :: take tl
              | _ -> []
            in
            List.iter
              (fun r ->
                match mode with
                | "allow" -> Hashtbl.replace sup.file_wide r ()
                | "allow-line" -> Hashtbl.replace sup.by_line (lineno, r) ()
                | _ -> Hashtbl.replace sup.by_line (lineno + 1, r) ())
              (take args)
          | _ -> ()
        end
        else find (j + 1)
      in
      find 0)
    lines;
  sup

let suppressed sup ~rule ~line =
  Hashtbl.mem sup.file_wide rule || Hashtbl.mem sup.by_line (line, rule)

(* --- Parsetree helpers ---------------------------------------------- *)

let flatten_lid lid = String.concat "." (Longident.flatten lid)

(* strip the Stdlib/Pervasives prefix so qualified and bare spellings of
   a stdlib identifier hit the same rule pattern *)
let canonical name =
  let strip pre n =
    let lp = String.length pre in
    if String.length n > lp && String.sub n 0 lp = pre then
      String.sub n lp (String.length n - lp)
    else n
  in
  strip "Stdlib." (strip "Pervasives." name)

let starts_with pre s =
  let lp = String.length pre in
  String.length s >= lp && String.sub s 0 lp = pre

let ends_with suf s =
  let ls = String.length suf and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suf

let head_module name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let sort_functions =
  [ "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.fast_sort";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort" ]

(* spans are character-offset ranges within the source buffer *)
type span = { s_lo : int; s_hi : int }

let span_of_loc (l : Location.t) =
  { s_lo = l.loc_start.pos_cnum; s_hi = l.loc_end.pos_cnum }

let inside outer inner = outer.s_lo <= inner.s_lo && inner.s_hi <= outer.s_hi

let mentions_sort (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ }
            when List.mem (canonical (flatten_lid txt)) sort_functions ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* The spans of every expression that flows into a sort — the sanctioned
   way for a hash-ordered fold result to become ordered output. Covers
   [List.sort cmp e], [e |> List.sort cmp] and [List.sort cmp @@ e]. A
   call site inside such a span also blocks an inherited hashtbl-order
   taint: the caller sorts whatever order the callee produced. *)
let collect_sorted_spans str =
  let spans = ref [] in
  let add (e : Parsetree.expression) =
    spans := span_of_loc e.pexp_loc :: !spans
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            let name = canonical (flatten_lid txt) in
            if List.mem name sort_functions then
              List.iter (fun (_, a) -> add a) args
            else if name = "|>" then begin
              match args with
              | [ (_, lhs); (_, rhs) ] when mentions_sort rhs -> add lhs
              | _ -> ()
            end
            else if name = "@@" then begin
              match args with
              | [ (_, f); (_, x) ] when mentions_sort f -> add x
              | _ -> ()
            end
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure it str;
  !spans

let hashtbl_iters = [ "Hashtbl.iter"; "MoreLabels.Hashtbl.iter" ]

let hashtbl_folds =
  [ "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "MoreLabels.Hashtbl.fold" ]

let wall_clock_calls =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime";
    "Unix.localtime"; "Unix.mktime" ]

let env_calls =
  [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv"; "Unix.unsafe_getenv";
    "Unix.environment"; "Unix.unsafe_environment" ]

(* stdlib calls that allocate on every invocation — the curated table
   behind the call:* hot-alloc kinds. Boxing conversions (Int64.of_int
   and friends) are here because they are the classic hidden allocation
   in OCaml hot loops. *)
let alloc_calls =
  [ "ref"; "incr"; "decr" ] @ [ "^"; "@" ]
  @ [ "Array.make"; "Array.init"; "Array.copy"; "Array.append";
      "Array.sub"; "Array.of_list"; "Array.to_list"; "Array.concat";
      "Array.map"; "Array.mapi"; "Array.make_matrix" ]
  @ [ "Bytes.create"; "Bytes.make"; "Bytes.copy"; "Bytes.sub";
      "Bytes.of_string"; "Bytes.to_string"; "Bytes.extend" ]
  @ [ "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes" ]
  @ [ "String.make"; "String.init"; "String.sub"; "String.concat";
      "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
      "String.lowercase_ascii"; "String.uppercase_ascii";
      "String.capitalize_ascii"; "String.trim" ]
  @ [ "List.map"; "List.mapi"; "List.rev_map"; "List.init"; "List.append";
      "List.rev"; "List.rev_append"; "List.concat"; "List.concat_map";
      "List.flatten"; "List.filter"; "List.filter_map"; "List.sort";
      "List.stable_sort"; "List.fast_sort"; "List.sort_uniq"; "List.merge";
      "List.split"; "List.combine"; "List.of_seq"; "List.partition" ]
  @ [ "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.find_opt";
      "Hashtbl.find_all"; "Hashtbl.fold" ]
  @ [ "Queue.create"; "Queue.push"; "Queue.add"; "Stack.create";
      "Stack.push" ]
  @ [ "Digest.string"; "Digest.bytes"; "Digest.substring"; "Digest.to_hex" ]
  @ [ "Printf.sprintf"; "Format.asprintf"; "Format.sprintf" ]
  @ [ "string_of_int"; "string_of_float"; "float_of_string";
      "int_of_string_opt"; "float_of_string_opt" ]
  @ [ "Int64.of_int"; "Int64.of_float"; "Int64.bits_of_float";
      "Int64.to_string"; "Int32.of_int"; "Nativeint.of_int" ]

(* calls whose argument subtree is error-construction: allocating the
   message of a raise/failwith is not a hot-path allocation *)
let raise_heads =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* the annotations the hot-alloc rule keys on *)
let hot_attr = "vm1.hot"
let cold_attr = "vm1.cold"

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = name)
    attrs

(* --- phase 1: the call graph ---------------------------------------- *)

(* a call edge, pre-resolution: [c_target] is a node id when the callee
   was resolved lexically during the walk, -1 when resolution is
   deferred to phase 2 (dotted names) *)
type call = {
  c_name : string;
  mutable c_target : int;
  c_sorted : bool;  (* call site flows into a sort *)
  c_cold : bool;    (* call site is inside a [@vm1.cold] subtree *)
}

type taint_src = {
  t_rule : string;
  t_prim : string;
}

type alloc_site = {
  a_kind : string;
  a_line : int;
  a_col : int;
}

type node = {
  n_id : int;
  n_path : string;  (* e.g. "Router.search.run" *)
  n_file : string;  (* rel_path of the defining file *)
  n_line : int;
  n_col : int;
  n_hot : bool;
  n_cold : bool;
  mutable n_taints : taint_src list;     (* direct, post-suppression *)
  mutable n_allocs : alloc_site list;    (* in source order *)
  mutable n_calls : call list;
}

(* a raw (pre-classification) finding; [prim] is the offending
   identifier / allocation kind, used by vetting and fingerprints *)
type raw = {
  r_rule : string;
  r_file : string;
  r_line : int;
  r_col : int;
  r_msg : string;
  r_fn : string;
  r_prim : string;
  r_witness : (string * string * int) list;
}

type file_ctx = {
  f_path : string;           (* as given *)
  f_rel : string;            (* rel_path *)
  f_sup : suppressions;
  f_aliases : (string * string) list;  (* module alias -> target path *)
  f_locals : raw list;       (* local findings, source order *)
  f_error : string option;
}

let module_name_of_file path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

let taint_rules =
  [ "wall-clock"; "env-read"; "global-random"; "hashtbl-order";
    "domain-prims" ]

(* may a taint of [rule] leave a function defined in [file]? A file that
   sanctions the primitive absorbs the taint: report/bench/bin may read
   clocks and environments, exec/obs own the domain primitives. *)
let taint_sanctioned rule file =
  match rule with
  | "wall-clock" | "env-read" -> clock_ok file
  | "domain-prims" -> in_exec file || in_obs file
  | _ -> false

(* is an inherited taint of [rule] worth a finding in [file]? (the same
   predicates the local rules use) *)
let taint_reportable rule file =
  match rule with
  | "wall-clock" | "env-read" -> not (clock_ok file)
  | "domain-prims" -> not (in_exec file || in_obs file)
  | _ -> true

let pat_vars p =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self q ->
          (match q.Parsetree.ppat_desc with
          | Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self q);
    }
  in
  it.pat it p;
  !acc

let binding_name (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let rec is_function (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, b) | Pexp_constraint (b, _) -> is_function b
  | _ -> false

(* Walk one file's structure, appending nodes to [nodes] (a reversed
   accumulator shared across files) and returning the file context. *)
let walk_file ~path ~sup ~nodes ~next_id str =
  let rel = rel_path path in
  let sorted_spans = collect_sorted_spans str in
  let in_sorted loc =
    let sp = span_of_loc loc in
    List.exists (fun outer -> inside outer sp) sorted_spans
  in
  let file_nodes = ref [] in
  let locals = ref [] in
  let aliases = ref [] in
  (* reversed context: innermost first; starts at the file module *)
  let ctx_stack = ref [ module_name_of_file path ] in
  (* lexical scope: (name, node id) with -2 marking a non-function
     binding that shadows any same-named function *)
  let scope = ref [] in
  let cur = ref None in
  let cold_depth = ref 0 in
  let exempt_depth = ref 0 in
  let fresh_node name (loc : Location.t) ~hot ~cold =
    let id = !next_id in
    incr next_id;
    let p = loc.loc_start in
    let n =
      {
        n_id = id;
        n_path = String.concat "." (List.rev (name :: !ctx_stack));
        n_file = rel;
        n_line = p.pos_lnum;
        n_col = p.pos_cnum - p.pos_bol;
        n_hot = hot;
        n_cold = cold;
        n_taints = [];
        n_allocs = [];
        n_calls = [];
      }
    in
    nodes := n :: !nodes;
    file_nodes := n :: !file_nodes;
    n
  in
  let emit ~rule ~loc ~message ~prim =
    let p = (loc : Location.t).loc_start in
    let fn =
      match !cur with
      | Some n -> n.n_path
      | None -> String.concat "." (List.rev !ctx_stack)
    in
    locals :=
      {
        r_rule = rule;
        r_file = rel;
        r_line = p.pos_lnum;
        r_col = p.pos_cnum - p.pos_bol;
        r_msg = message;
        r_fn = fn;
        r_prim = prim;
        r_witness = [];
      }
      :: !locals;
    (* taints feed phase 2 unless silenced at the source: a suppressed
       or vetted primitive must not re-surface through its callers *)
    match !cur with
    | Some n when List.mem rule taint_rules ->
      let vetted_here =
        List.exists
          (fun v ->
            v.v_rule = rule
            && ends_with v.path_suffix rel
            && starts_with v.ident_prefix prim)
          vetted
      in
      if
        (not (suppressed sup ~rule ~line:p.pos_lnum)) && not vetted_here
      then n.n_taints <- { t_rule = rule; t_prim = prim } :: n.n_taints
    | _ -> ()
  in
  let record_alloc (loc : Location.t) kind =
    match !cur with
    | Some n when !cold_depth = 0 && !exempt_depth = 0 ->
      let p = loc.loc_start in
      n.n_allocs <-
        { a_kind = kind; a_line = p.pos_lnum;
          a_col = p.pos_cnum - p.pos_bol }
        :: n.n_allocs
    | _ -> ()
  in
  let record_call loc name =
    match !cur with
    | None -> ()
    | Some n ->
      let entry =
        if String.contains name '.' then
          Some { c_name = name; c_target = -1;
                 c_sorted = in_sorted loc; c_cold = !cold_depth > 0 }
        else
          match List.assoc_opt name !scope with
          | Some id when id >= 0 ->
            Some { c_name = name; c_target = id;
                   c_sorted = in_sorted loc; c_cold = !cold_depth > 0 }
          | Some _ | None -> None
      in
      (match entry with
      | Some c -> n.n_calls <- c :: n.n_calls
      | None -> ())
  in
  let check_ident loc raw_name =
    let name = canonical raw_name in
    let head = head_module name in
    if List.mem name hashtbl_iters then
      emit ~rule:"hashtbl-order" ~loc ~prim:name
        ~message:
          (name
         ^ " visits entries in hash order; collect keys with a fold, sort, \
            then iterate")
    else if List.mem name hashtbl_folds && not (in_sorted loc) then
      emit ~rule:"hashtbl-order" ~loc ~prim:name
        ~message:
          (name
         ^ " result is in hash order and does not flow into a sort; use \
            the collect-then-sort idiom")
    else if name = "compare" || name = "Hashtbl.hash"
            || name = "Hashtbl.seeded_hash" then
      emit ~rule:"poly-compare" ~loc ~prim:name
        ~message:
          (name
         ^ " is polymorphic; use Int.compare/String.compare or a typed \
            comparator")
    else if (name = "==" || name = "!=") && not (in_exec rel || in_obs rel)
    then
      emit ~rule:"phys-eq" ~loc ~prim:name
        ~message:
          ("( " ^ name
         ^ " ) is physical equality; outside lib/exec and lib/obs use \
            structural equality or an explicit index")
    else if
      List.mem head
        [ "Domain"; "Mutex"; "Condition"; "Atomic"; "Thread"; "Semaphore" ]
      && not (in_exec rel || in_obs rel)
    then
      emit ~rule:"domain-prims" ~loc ~prim:name
        ~message:
          (name
         ^ " outside lib/exec and lib/obs; route parallelism through the \
            Exec pool or add a vetted-allowlist entry")
    else if
      starts_with "Random." name
      && ((not (starts_with "Random.State." name))
         || name = "Random.State.make_self_init")
    then
      emit ~rule:"global-random" ~loc ~prim:name
        ~message:
          (name
         ^ " is unseeded global randomness; use Random.State.make with a \
            deterministic seed")
    else if List.mem name wall_clock_calls && not (clock_ok rel) then
      emit ~rule:"wall-clock" ~loc ~prim:name
        ~message:
          (name
         ^ " in a pure flow stage; use Obs spans (Obs.now_ns) or move \
            timing to the report layer")
    else if List.mem name env_calls && not (clock_ok rel) then
      emit ~rule:"env-read" ~loc ~prim:name
        ~message:
          (name
         ^ " in a pure flow stage; read the environment in the binary \
            and pass the value down explicitly")
    else if name = "exit" && in_lib rel then
      emit ~rule:"exit-in-lib" ~loc ~prim:name
        ~message:"exit in a library; raise instead and let the binary decide"
    else if starts_with "Obj." name then
      emit ~rule:"obj-magic" ~loc ~prim:name ~message:(name ^ " is unsafe")
    else if name = "Sys.readdir" && not (in_sorted loc) then
      emit ~rule:"readdir-unsorted" ~loc ~prim:name
        ~message:
          "Sys.readdir order is filesystem-dependent; sort the result \
           before use"
    else if starts_with "Marshal." name then
      emit ~rule:"marshal" ~loc ~prim:name
        ~message:
          (name ^ " output is not stable; prefer a textual format")
  in
  let visit_ident loc raw_name =
    check_ident loc raw_name;
    let name = canonical raw_name in
    if List.mem name alloc_calls then record_alloc loc ("call:" ^ name);
    record_call loc name
  in
  let rec module_alias_target (m : Parsetree.module_expr) =
    match m.pmod_desc with
    | Pmod_ident { txt; _ } -> Some (flatten_lid txt)
    | Pmod_apply (f, _) -> module_alias_target f
    | Pmod_constraint (inner, _) -> module_alias_target inner
    | _ -> None
  in
  let it =
    let default = Ast_iterator.default_iterator in
    let rec spine_walk self (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_fun (_, dflt, pat, body) ->
        Option.iter (self.Ast_iterator.expr self) dflt;
        List.iter
          (fun v -> scope := (v, -2) :: !scope)
          (pat_vars pat);
        spine_walk self body
      | Pexp_newtype (_, body) | Pexp_constraint (body, _) ->
        spine_walk self body
      | Pexp_function cases ->
        List.iter
          (fun (c : Parsetree.case) ->
            let saved = !scope in
            List.iter
              (fun v -> scope := (v, -2) :: !scope)
              (pat_vars c.pc_lhs);
            Option.iter (self.Ast_iterator.expr self) c.pc_guard;
            self.Ast_iterator.expr self c.pc_rhs;
            scope := saved)
          cases
      | _ -> self.Ast_iterator.expr self e
    in
    let do_bindings self rf (vbs : Parsetree.value_binding list) =
      (* create nodes first so a rec group sees every sibling *)
      let with_nodes =
        List.map
          (fun vb ->
            match binding_name vb with
            | Some name when is_function vb.pvb_expr ->
              let hot = has_attr hot_attr vb.pvb_attributes in
              let cold = has_attr cold_attr vb.pvb_attributes in
              (vb, Some (name, fresh_node name vb.pvb_loc ~hot ~cold))
            | _ -> (vb, None))
          vbs
      in
      let bind_all () =
        List.iter
          (fun ((vb : Parsetree.value_binding), named) ->
            match named with
            | Some (name, n) -> scope := (name, n.n_id) :: !scope
            | None ->
              List.iter
                (fun v -> scope := (v, -2) :: !scope)
                (pat_vars vb.pvb_pat))
          with_nodes
      in
      if rf = Asttypes.Recursive then bind_all ();
      List.iter
        (fun ((vb : Parsetree.value_binding), named) ->
          match named with
          | Some (name, n) ->
            let cur_saved = !cur in
            let ctx_saved = !ctx_stack in
            let scope_saved = !scope in
            cur := Some n;
            ctx_stack := name :: !ctx_stack;
            if n.n_cold then incr cold_depth;
            spine_walk self vb.pvb_expr;
            if n.n_cold then decr cold_depth;
            scope := scope_saved;
            ctx_stack := ctx_saved;
            cur := cur_saved
          | None -> self.Ast_iterator.expr self vb.pvb_expr)
        with_nodes;
      if rf <> Asttypes.Recursive then bind_all ()
    in
    let expr self (ex : Parsetree.expression) =
      let cold_here = has_attr cold_attr ex.pexp_attributes in
      if cold_here then incr cold_depth;
      (match ex.pexp_desc with
      | Pexp_ident { txt; loc } -> visit_ident loc (flatten_lid txt)
      | Pexp_let (rf, vbs, body) ->
        let saved = !scope in
        do_bindings self rf vbs;
        self.Ast_iterator.expr self body;
        scope := saved
      | Pexp_fun _ | Pexp_function _ ->
        record_alloc ex.pexp_loc "closure";
        default.expr self ex
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
        when List.mem (canonical (flatten_lid txt)) raise_heads ->
        incr exempt_depth;
        List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args;
        decr exempt_depth
      | Pexp_assert e ->
        incr exempt_depth;
        self.Ast_iterator.expr self e;
        decr exempt_depth
      | Pexp_tuple _ ->
        record_alloc ex.pexp_loc "tuple";
        default.expr self ex
      | Pexp_record _ ->
        record_alloc ex.pexp_loc "record";
        default.expr self ex
      | Pexp_construct ({ txt; _ }, Some _) ->
        let kind =
          if flatten_lid txt = "::" then "list" else "variant"
        in
        record_alloc ex.pexp_loc kind;
        default.expr self ex
      | Pexp_variant (_, Some _) ->
        record_alloc ex.pexp_loc "variant";
        default.expr self ex
      | Pexp_array _ ->
        record_alloc ex.pexp_loc "array";
        default.expr self ex
      | Pexp_lazy _ ->
        record_alloc ex.pexp_loc "lazy";
        default.expr self ex
      | _ -> default.expr self ex);
      if cold_here then decr cold_depth
    in
    let structure_item self (si : Parsetree.structure_item) =
      match si.pstr_desc with
      | Pstr_value (rf, vbs) -> do_bindings self rf vbs
      | Pstr_module mb -> self.Ast_iterator.module_binding self mb
      | Pstr_recmodule mbs ->
        List.iter (self.Ast_iterator.module_binding self) mbs
      | _ -> default.structure_item self si
    in
    let module_binding self (mb : Parsetree.module_binding) =
      let name = Option.value mb.pmb_name.txt ~default:"_" in
      let rec unwrap (m : Parsetree.module_expr) =
        match m.pmod_desc with
        | Pmod_constraint (inner, _) -> unwrap inner
        | _ -> m
      in
      let m = unwrap mb.pmb_expr in
      match m.pmod_desc with
      | Pmod_ident { txt; _ } ->
        aliases := (name, flatten_lid txt) :: !aliases
      | _ ->
        (match m.pmod_desc with
        | Pmod_apply _ ->
          (match module_alias_target m with
          | Some tgt -> aliases := (name, tgt) :: !aliases
          | None -> ())
        | _ -> ());
        let ctx_saved = !ctx_stack in
        let scope_saved = !scope in
        ctx_stack := name :: !ctx_stack;
        self.Ast_iterator.module_expr self m;
        scope := scope_saved;
        ctx_stack := ctx_saved
    in
    { default with expr; structure_item; module_binding }
  in
  it.structure it str;
  (* restore source order in the accumulators *)
  List.iter
    (fun n ->
      n.n_taints <- List.rev n.n_taints;
      n.n_allocs <- List.rev n.n_allocs;
      n.n_calls <- List.rev n.n_calls)
    !file_nodes;
  {
    f_path = path;
    f_rel = rel;
    f_sup = sup;
    f_aliases = !aliases;
    f_locals = List.rev !locals;
    f_error = None;
  }

(* --- phase 2: resolution, taint fixpoint, hot-alloc reach ----------- *)

(* library-wrapper module names derived from the scanned file set: a
   file under lib/<d>/ is wrapped as <D>, so "Route.Bqueue.pop" and
   "Bqueue.pop" both name the node rooted at bqueue.ml *)
let wrapper_modules files =
  List.sort_uniq String.compare
    (List.filter_map
       (fun f ->
         let f = "/" ^ norm_path f in
         let rec find i =
           if i + 5 > String.length f then None
           else if String.sub f i 5 = "/lib/" then begin
             let rest = String.sub f (i + 5) (String.length f - i - 5) in
             match String.index_opt rest '/' with
             | Some j when j > 0 ->
               Some (String.capitalize_ascii (String.sub rest 0 j))
             | _ -> None
           end
           else find (i + 1)
         in
         find 0)
       files)

let resolve_calls (nodes : node array) (ctxs : file_ctx list) =
  let wrappers = wrapper_modules (List.map (fun c -> c.f_rel) ctxs) in
  let by_exact = Hashtbl.create 256 in
  Array.iter
    (fun n ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_exact n.n_path)
      in
      Hashtbl.replace by_exact n.n_path (n.n_id :: prev))
    nodes;
  let aliases_of = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace aliases_of c.f_rel c.f_aliases) ctxs;
  (* suffix lookups are indexed by the final path component, so the many
     unresolvable stdlib calls (List.map, ...) cost one probe each *)
  let last_comp s =
    match String.rindex_opt s '.' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  let by_last = Hashtbl.create 256 in
  Array.iter
    (fun n ->
      let k = last_comp n.n_path in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_last k) in
      Hashtbl.replace by_last k (n.n_id :: prev))
    nodes;
  let dir_of f = Filename.dirname f in
  let pick u cands =
    let file = nodes.(u).n_file in
    let dir = dir_of file in
    match List.filter (fun id -> nodes.(id).n_file = file) cands with
    | [ id ] -> id
    | _ :: _ -> -1
    | [] -> (
      match
        List.filter (fun id -> dir_of nodes.(id).n_file = dir) cands
      with
      | [ id ] -> id
      | _ :: _ -> -1
      | [] -> ( match cands with [ id ] -> id | _ -> -1 ))
  in
  let suffix_ids cand =
    let suf = "." ^ cand in
    Option.value ~default:[] (Hashtbl.find_opt by_last (last_comp cand))
    |> List.filter (fun id -> ends_with suf nodes.(id).n_path)
  in
  let edges = ref 0 in
  Array.iter
    (fun n ->
      let file_aliases =
        Option.value ~default:[] (Hashtbl.find_opt aliases_of n.n_file)
      in
      List.iter
        (fun c ->
          if c.c_target < 0 && String.contains c.c_name '.' then begin
            let name =
              let rec expand k nm =
                if k = 0 then nm
                else
                  let h = head_module nm in
                  match List.assoc_opt h file_aliases with
                  | Some repl when repl <> h ->
                    let tail =
                      String.sub nm (String.length h)
                        (String.length nm - String.length h)
                    in
                    expand (k - 1) (repl ^ tail)
                  | _ -> nm
              in
              expand 2 c.c_name
            in
            let cands = ref [ name ] in
            let h = head_module name in
            (if List.mem h wrappers then
               let stripped =
                 String.sub name
                   (String.length h + 1)
                   (String.length name - String.length h - 1)
               in
               if String.contains stripped '.' then
                 cands := !cands @ [ stripped ]);
            let rec try_cands = function
              | [] -> ()
              | cand :: tl -> (
                let exact =
                  Option.value ~default:[]
                    (Hashtbl.find_opt by_exact cand)
                in
                match exact with
                | [] -> (
                  match suffix_ids cand with
                  | [] -> try_cands tl
                  | ids ->
                    let id = pick n.n_id (List.sort Int.compare ids) in
                    if id >= 0 then c.c_target <- id else try_cands tl)
                | ids ->
                  let id = pick n.n_id (List.sort Int.compare ids) in
                  if id >= 0 then c.c_target <- id else try_cands tl)
            in
            try_cands !cands
          end;
          if c.c_target >= 0 then incr edges)
        n.n_calls)
    nodes;
  !edges

(* inherited taints: per node, rule -> (sink prim, chain of node ids
   from the first callee down to the node containing the primitive) *)
let propagate (nodes : node array) =
  let n = Array.length nodes in
  let inh = Array.make n [] in
  let direct_rules = Array.make n [] in
  Array.iteri
    (fun i nd ->
      direct_rules.(i) <-
        List.sort_uniq String.compare
          (List.map (fun t -> t.t_rule) nd.n_taints))
    nodes;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    Array.iteri
      (fun u nd ->
        List.iter
          (fun c ->
            if c.c_target >= 0 && c.c_target <> u then begin
              let v = c.c_target in
              let vfile = nodes.(v).n_file in
              let offer =
                List.map
                  (fun (t : taint_src) -> (t.t_rule, t.t_prim, [ v ]))
                  nodes.(v).n_taints
                @ List.map
                    (fun (r, (p, chain)) -> (r, p, v :: chain))
                    inh.(v)
              in
              List.iter
                (fun (rule, prim, chain) ->
                  if
                    (not (taint_sanctioned rule vfile))
                    && (not (rule = "hashtbl-order" && c.c_sorted))
                    && not (List.mem rule direct_rules.(u))
                  then
                    match List.assoc_opt rule inh.(u) with
                    | Some (_, old) when List.length old <= List.length chain
                      ->
                      ()
                    | Some _ ->
                      inh.(u) <-
                        (rule, (prim, chain))
                        :: List.remove_assoc rule inh.(u);
                      changed := true
                    | None ->
                      inh.(u) <- (rule, (prim, chain)) :: inh.(u);
                      changed := true)
                offer
            end)
          nd.n_calls)
      nodes
  done;
  inh

let witness_of nodes ids =
  List.map
    (fun id ->
      let n = nodes.(id) in
      (n.n_path, n.n_file, n.n_line))
    ids

let interproc_findings (nodes : node array) inh =
  let out = ref [] in
  Array.iteri
    (fun u nd ->
      let taints =
        List.sort (fun (a, _) (b, _) -> String.compare a b) inh.(u)
      in
      List.iter
        (fun (rule, (prim, chain)) ->
          if taint_reportable rule nd.n_file then begin
            let chain_paths =
              List.map (fun id -> nodes.(id).n_path) chain
            in
            let msg =
              nd.n_path ^ " reaches " ^ prim ^ " (" ^ rule ^ ") via "
              ^ String.concat " -> " chain_paths
            in
            out :=
              {
                r_rule = rule;
                r_file = nd.n_file;
                r_line = nd.n_line;
                r_col = nd.n_col;
                r_msg = msg;
                r_fn = nd.n_path;
                r_prim = prim;
                r_witness = witness_of nodes (u :: chain);
              }
              :: !out
          end)
        taints)
    nodes;
  List.rev !out

(* BFS the call graph from every [@vm1.hot] entry, skipping [@vm1.cold]
   nodes and call sites, and report each reached function's allocation
   sites aggregated per kind. Deduped across entries: the first hot
   entry (in node order, i.e. scan order) claims a (function, kind)
   pair, so fingerprints do not churn when a second entry gains a path
   to the same allocation. *)
let hot_alloc_findings (nodes : node array) =
  let emitted = Hashtbl.create 32 in
  let out = ref [] in
  Array.iter
    (fun h ->
      if h.n_hot && not h.n_cold then begin
        let parent = Hashtbl.create 64 in
        Hashtbl.replace parent h.n_id (-1);
        let q = Queue.create () in
        Queue.push h.n_id q;
        let order = ref [] in
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          order := u :: !order;
          let succs =
            List.filter_map
              (fun c ->
                if
                  c.c_target >= 0 && (not c.c_cold)
                  && not nodes.(c.c_target).n_cold
                then Some c.c_target
                else None)
              nodes.(u).n_calls
            |> List.sort_uniq Int.compare
          in
          List.iter
            (fun v ->
              if not (Hashtbl.mem parent v) then begin
                Hashtbl.replace parent v u;
                Queue.push v q
              end)
            succs
        done;
        let rec chain_to u =
          match Hashtbl.find_opt parent u with
          | Some p when p >= 0 -> u :: chain_to p
          | _ -> [ u ]
        in
        List.iter
          (fun u ->
            let f = nodes.(u) in
            let kinds =
              List.sort_uniq String.compare
                (List.map (fun a -> a.a_kind) f.n_allocs)
            in
            List.iter
              (fun kind ->
                if not (Hashtbl.mem emitted (f.n_path, kind)) then begin
                  Hashtbl.replace emitted (f.n_path, kind) ();
                  let sites =
                    List.filter (fun a -> a.a_kind = kind) f.n_allocs
                  in
                  let first = List.hd sites in
                  let via =
                    if u = h.n_id then ""
                    else
                      " via "
                      ^ String.concat " -> "
                          (List.map
                             (fun id -> nodes.(id).n_path)
                             (List.tl (List.rev (chain_to u))))
                  in
                  let msg =
                    Printf.sprintf
                      "%s allocation x%d in %s reachable from [@vm1.hot] \
                       %s%s; hoist it or mark the branch [@vm1.cold]"
                      kind (List.length sites) f.n_path h.n_path via
                  in
                  out :=
                    {
                      r_rule = "hot-alloc";
                      r_file = f.n_file;
                      r_line = first.a_line;
                      r_col = first.a_col;
                      r_msg = msg;
                      r_fn = f.n_path;
                      r_prim = kind;
                      r_witness = witness_of nodes (List.rev (chain_to u));
                    }
                    :: !out
                end)
              kinds)
          (List.rev !order)
      end)
    nodes;
  List.rev !out

(* --- fingerprints and the ratchet baseline -------------------------- *)

let fingerprint_key (r : raw) ~ordinal =
  match r.r_rule with
  | "hot-alloc" ->
    String.concat "|" [ "h"; r.r_file; r.r_fn; r.r_prim ]
  | _ when r.r_witness <> [] ->
    String.concat "|" [ "i"; r.r_rule; r.r_file; r.r_fn; r.r_prim ]
  | _ ->
    String.concat "|"
      [ "l"; r.r_rule; r.r_file; r.r_fn; r.r_prim; string_of_int ordinal ]

let fingerprint_of_key key =
  String.sub (Digest.to_hex (Digest.string key)) 0 12

type baseline_entry = {
  b_rule : string;
  b_file : string;
  b_fn : string;
}

type baseline = (string * baseline_entry) list

let empty_baseline : baseline = []

let baseline_of_json j =
  match Obs.Json.member "entries" j with
  | Some (Obs.Json.List es) ->
    let entry e =
      let str k =
        match Obs.Json.member k e with
        | Some (Obs.Json.Str s) -> Some s
        | _ -> None
      in
      match (str "fingerprint", str "rule", str "file", str "function") with
      | Some fp, Some r, Some f, Some fn ->
        Some (fp, { b_rule = r; b_file = f; b_fn = fn })
      | _ -> None
    in
    let parsed = List.filter_map entry es in
    if List.length parsed = List.length es then Ok parsed
    else Error "baseline: malformed entry"
  | _ -> Error "baseline: missing entries array"

let load_baseline path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | s -> (
    match Obs.Json.parse s with
    | Error msg -> Error ("baseline: " ^ msg)
    | Ok j -> baseline_of_json j)

(* --- runs ----------------------------------------------------------- *)

type run = {
  files_scanned : int;
  functions : int;
  call_edges : int;
  reports : (string * report) list;
  stale : (string * baseline_entry) list;
}

let classify_raw ~sup_of ~baseline (r : raw) ~ordinal : verdict * finding =
  let fingerprint = fingerprint_of_key (fingerprint_key r ~ordinal) in
  let f =
    {
      rule = r.r_rule;
      file = r.r_file;
      line = r.r_line;
      col = r.r_col;
      message = r.r_msg;
      fn = r.r_fn;
      fingerprint;
      witness = r.r_witness;
    }
  in
  let sup = sup_of r.r_file in
  let is_suppressed =
    match sup with
    | Some sup -> suppressed sup ~rule:r.r_rule ~line:r.r_line
    | None -> false
  in
  let is_vetted =
    r.r_witness = [] && r.r_rule <> "hot-alloc"
    && List.exists
         (fun v ->
           v.v_rule = r.r_rule
           && ends_with v.path_suffix r.r_file
           && starts_with v.ident_prefix r.r_prim)
         vetted
  in
  if is_suppressed then (Suppressed, f)
  else if is_vetted then (Vetted, f)
  else if List.mem_assoc fingerprint baseline then (Baselined, f)
  else (Active, f)

let run_sources ?(baseline = empty_baseline) sources =
  let nodes_acc = ref [] in
  let next_id = ref 0 in
  let ctxs =
    List.map
      (fun (path, src) ->
        let sup = scan_suppressions src in
        match
          let lexbuf = Lexing.from_string src in
          Location.init lexbuf path;
          Parse.implementation lexbuf
        with
        | exception e ->
          let msg =
            match e with
            | Syntaxerr.Error _ -> "syntax error"
            | e -> Printexc.to_string e
          in
          {
            f_path = path;
            f_rel = rel_path path;
            f_sup = sup;
            f_aliases = [];
            f_locals = [];
            f_error = Some msg;
          }
        | str -> walk_file ~path ~sup ~nodes:nodes_acc ~next_id str)
      sources
  in
  let nodes = Array.of_list (List.rev !nodes_acc) in
  let call_edges = resolve_calls nodes ctxs in
  let inh = propagate nodes in
  let inter = interproc_findings nodes inh in
  let hot = hot_alloc_findings nodes in
  let sup_tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace sup_tbl c.f_rel c.f_sup) ctxs;
  let sup_of rel = Hashtbl.find_opt sup_tbl rel in
  (* local-finding ordinals: occurrence index per (fn, rule, prim) *)
  let ordinals = Hashtbl.create 64 in
  let ordinal_of (r : raw) =
    let key = (r.r_fn, r.r_rule, r.r_prim) in
    let k = Option.value ~default:0 (Hashtbl.find_opt ordinals key) in
    Hashtbl.replace ordinals key (k + 1);
    k
  in
  let reports =
    List.map
      (fun c ->
        let locals =
          List.map
            (fun r -> classify_raw ~sup_of ~baseline r ~ordinal:(ordinal_of r))
            c.f_locals
        in
        let of_pool pool =
          List.filter_map
            (fun r ->
              if r.r_file = c.f_rel then
                Some (classify_raw ~sup_of ~baseline r ~ordinal:0)
              else None)
            pool
        in
        ( c.f_path,
          {
            findings = locals @ of_pool inter @ of_pool hot;
            parse_error = c.f_error;
          } ))
      ctxs
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, r) ->
      List.iter
        (fun (v, f) ->
          match v with
          | Active | Baselined -> Hashtbl.replace seen f.fingerprint ()
          | Suppressed | Vetted -> ())
        r.findings)
    reports;
  let stale =
    List.filter (fun (fp, _) -> not (Hashtbl.mem seen fp)) baseline
  in
  {
    files_scanned = List.length sources;
    functions = Array.length nodes;
    call_edges;
    reports;
    stale;
  }

let lint_source ?baseline ~path src =
  match (run_sources ?baseline [ (path, src) ]).reports with
  | [ (_, r) ] -> r
  | _ -> { findings = []; parse_error = Some "internal: no report" }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path = lint_source ~path (read_file path)

let rec ml_files_under paths =
  List.concat_map
    (fun p ->
      if Sys.is_directory p then begin
        let entries =
          List.sort String.compare (Array.to_list (Sys.readdir p))
        in
        let keep e =
          String.length e > 0 && e.[0] <> '.' && e.[0] <> '_'
        in
        entries
        |> List.filter keep
        |> List.map (Filename.concat p)
        |> List.filter (fun q ->
               Sys.is_directory q || Filename.check_suffix q ".ml")
        |> ml_files_under
      end
      else [ p ])
    paths

let run_paths ?baseline paths =
  let files = ml_files_under paths in
  run_sources ?baseline (List.map (fun f -> (f, read_file f)) files)

let count run verdict =
  List.fold_left
    (fun acc (_, r) ->
      acc
      + List.length (List.filter (fun (v, _) -> v = verdict) r.findings))
    0 run.reports

let parse_errors run =
  List.filter (fun (_, r) -> r.parse_error <> None) run.reports

let active run = count run Active + List.length (parse_errors run)

(* --- baseline emission ---------------------------------------------- *)

let baseline_entries run =
  let entries =
    List.concat_map
      (fun (_, r) ->
        List.filter_map
          (fun (v, f) ->
            match v with
            | Active | Baselined ->
              Some
                ( f.fingerprint,
                  { b_rule = f.rule; b_file = f.file; b_fn = f.fn } )
            | Suppressed | Vetted -> None)
          r.findings)
      run.reports
  in
  List.sort_uniq
    (fun (a, _) (b, _) -> String.compare a b)
    entries

let baseline_json run =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str Obs.Schemas.lint_baseline);
      ( "entries",
        Obs.Json.List
          (List.map
             (fun (fp, e) ->
               Obs.Json.Obj
                 [
                   ("fingerprint", Obs.Json.Str fp);
                   ("rule", Obs.Json.Str e.b_rule);
                   ("file", Obs.Json.Str e.b_file);
                   ("function", Obs.Json.Str e.b_fn);
                 ])
             (baseline_entries run)) );
    ]

let save_baseline path run =
  let oc = open_out_bin path in
  output_string oc (Obs.Json.to_string (baseline_json run));
  output_char oc '\n';
  close_out oc

(* --- output --------------------------------------------------------- *)

let witness_json w =
  Obs.Json.List
    (List.map
       (fun (fn, file, line) ->
         Obs.Json.Obj
           [
             ("function", Obs.Json.Str fn);
             ("file", Obs.Json.Str file);
             ("line", Obs.Json.Int line);
           ])
       w)

let finding_json (f : finding) =
  Obs.Json.Obj
    ([
       ("rule", Obs.Json.Str f.rule);
       ("file", Obs.Json.Str (norm_path f.file));
       ("line", Obs.Json.Int f.line);
       ("col", Obs.Json.Int f.col);
       ("function", Obs.Json.Str f.fn);
       ("fingerprint", Obs.Json.Str f.fingerprint);
       ("message", Obs.Json.Str f.message);
     ]
    @ if f.witness = [] then [] else [ ("witness", witness_json f.witness) ])

let to_json run =
  let by_verdict v =
    Obs.Json.List
      (List.concat_map
         (fun (_, r) ->
           List.filter_map
             (fun (v', f) -> if v' = v then Some (finding_json f) else None)
             r.findings)
         run.reports)
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str Obs.Schemas.lint);
      ("files_scanned", Obs.Json.Int run.files_scanned);
      ("functions", Obs.Json.Int run.functions);
      ("call_edges", Obs.Json.Int run.call_edges);
      ("active", Obs.Json.Int (active run));
      ("baselined", Obs.Json.Int (count run Baselined));
      ("findings", by_verdict Active);
      ("baselined_findings", by_verdict Baselined);
      ("suppressed", by_verdict Suppressed);
      ("vetted", by_verdict Vetted);
      ( "stale_baseline",
        Obs.Json.List
          (List.map
             (fun (fp, e) ->
               Obs.Json.Obj
                 [
                   ("fingerprint", Obs.Json.Str fp);
                   ("rule", Obs.Json.Str e.b_rule);
                   ("file", Obs.Json.Str e.b_file);
                   ("function", Obs.Json.Str e.b_fn);
                 ])
             run.stale) );
      ( "parse_errors",
        Obs.Json.List
          (List.map
             (fun (p, r) ->
               Obs.Json.Obj
                 [
                   ("file", Obs.Json.Str (norm_path p));
                   ( "message",
                     Obs.Json.Str (Option.value ~default:"" r.parse_error) );
                 ])
             (parse_errors run)) );
      ( "rules",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str r.name);
                   ("summary", Obs.Json.Str r.summary);
                 ])
             rules) );
    ]

let pp_human ?(explain = false) ppf run =
  List.iter
    (fun (path, r) ->
      (match r.parse_error with
      | Some msg -> Format.fprintf ppf "%s: cannot parse: %s@." path msg
      | None -> ());
      List.iter
        (fun (v, f) ->
          let tag =
            match v with
            | Active -> ""
            | Suppressed -> " (suppressed)"
            | Vetted -> " (vetted)"
            | Baselined -> " (baselined)"
          in
          Format.fprintf ppf "%s:%d:%d: [%s]%s %s@." f.file f.line f.col
            f.rule tag f.message;
          if explain then begin
            Format.fprintf ppf "    fingerprint %s@." f.fingerprint;
            List.iter
              (fun (fn, file, line) ->
                Format.fprintf ppf "    via %s (%s:%d)@." fn file line)
              f.witness
          end)
        r.findings)
    run.reports;
  List.iter
    (fun (fp, e) ->
      Format.fprintf ppf
        "stale baseline entry %s: [%s] %s in %s no longer fires; remove it \
         (vm1lint --update-baseline)@."
        fp e.b_rule e.b_fn e.b_file)
    run.stale;
  Format.fprintf ppf
    "vm1lint: %d files, %d functions, %d call edges, %d active, %d \
     baselined, %d suppressed, %d vetted, %d stale, %d parse errors@."
    run.files_scanned run.functions run.call_edges (count run Active)
    (count run Baselined) (count run Suppressed) (count run Vetted)
    (List.length run.stale)
    (List.length (parse_errors run))
