type rule = {
  name : string;
  summary : string;
}

let rules =
  [
    { name = "hashtbl-order";
      summary =
        "Hashtbl.iter/fold/to_seq iterate in hash order; only the \
         collect-then-sort idiom (fold piped into List.sort) may feed \
         ordered output" };
    { name = "poly-compare";
      summary =
        "bare polymorphic compare/Hashtbl.hash; use Int.compare, \
         String.compare or a typed comparator" };
    { name = "phys-eq";
      summary =
        "physical equality (==/!=) on boxed values is \
         representation-dependent; reserved for lib/exec and lib/obs \
         identity checks" };
    { name = "domain-prims";
      summary =
        "Domain/Mutex/Condition/Atomic/Thread belong to lib/exec and \
         lib/obs; shared mutable state elsewhere must be vetted \
         explicitly" };
    { name = "global-random";
      summary =
        "global Random state (or make_self_init) is unseeded; use \
         Random.State with a deterministic seed" };
    { name = "wall-clock";
      summary =
        "wall-clock reads (Sys.time, Unix.gettimeofday, ...) in pure \
         flow stages; timing belongs to lib/obs spans and the report \
         layer" };
    { name = "exit-in-lib";
      summary = "libraries must raise, not exit; exit is for binaries" };
    { name = "obj-magic";
      summary = "Obj.* defeats the type system and invites undefined \
                 behaviour" };
    { name = "readdir-unsorted";
      summary =
        "Sys.readdir order is filesystem-dependent; sort before use" };
    { name = "marshal";
      summary =
        "Marshal output is not stable across compiler versions or \
         sharing; use a textual format" };
  ]

let rule_names = List.map (fun r -> r.name) rules

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type verdict =
  | Active
  | Suppressed
  | Vetted

type report = {
  findings : (verdict * finding) list;
  parse_error : string option;
}

type vetted_site = {
  v_rule : string;
  path_suffix : string;
  ident_prefix : string;
  justification : string;
}

let vetted =
  [
    { v_rule = "domain-prims";
      path_suffix = "lib/route/grid.ml";
      ident_prefix = "Atomic.";
      justification =
        "the overflow-edge total is the one cell the region-sharded \
         routing pass shares between domains; concurrent tiles commit \
         to disjoint edges and nets but bump this one atomic counter" };
    { v_rule = "domain-prims";
      path_suffix = "bench/main.ml";
      ident_prefix = "Domain.";
      justification =
        "the scaling benchmark reports Domain.recommended_domain_count \
         to size its --jobs sweep; it never spawns" };
  ]

(* --- path classification -------------------------------------------- *)

let norm_path p = String.map (fun c -> if c = '\\' then '/' else c) p

let path_has p frag =
  let p = "/" ^ norm_path p in
  let lp = String.length p and lf = String.length frag in
  let rec go i = i + lf <= lp && (String.sub p i lf = frag || go (i + 1)) in
  go 0

let in_exec p = path_has p "/lib/exec/"
let in_obs p = path_has p "/lib/obs/"
let in_lib p = path_has p "/lib/"

(* stages allowed to read the clock: obs owns it, exec schedules with it,
   report/bench/bin present wall times to humans *)
let clock_ok p =
  (not (in_lib p)) || in_obs p || in_exec p || path_has p "/lib/report/"

(* --- suppression comments ------------------------------------------- *)

type suppressions = {
  file_wide : (string, unit) Hashtbl.t;
  by_line : (int * string, unit) Hashtbl.t;
}

let is_rule_name s = List.mem s rule_names

let scan_suppressions src =
  let sup =
    { file_wide = Hashtbl.create 4; by_line = Hashtbl.create 4 }
  in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let marker = "vm1lint:" in
      let mlen = String.length marker in
      let len = String.length line in
      let rec find j =
        if j + mlen > len then ()
        else if String.sub line j mlen = marker then begin
          let rest = String.sub line (j + mlen) (len - j - mlen) in
          let words =
            String.split_on_char ' ' rest
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun w -> w <> "")
          in
          match words with
          | mode :: args
            when mode = "allow" || mode = "allow-line" || mode = "allow-next"
            ->
            let rec take = function
              | w :: tl when is_rule_name w -> w :: take tl
              | _ -> []
            in
            List.iter
              (fun r ->
                match mode with
                | "allow" -> Hashtbl.replace sup.file_wide r ()
                | "allow-line" -> Hashtbl.replace sup.by_line (lineno, r) ()
                | _ -> Hashtbl.replace sup.by_line (lineno + 1, r) ())
              (take args)
          | _ -> ()
        end
        else find (j + 1)
      in
      find 0)
    lines;
  sup

let suppressed sup ~rule ~line =
  Hashtbl.mem sup.file_wide rule || Hashtbl.mem sup.by_line (line, rule)

(* --- Parsetree analysis --------------------------------------------- *)

let flatten_lid lid = String.concat "." (Longident.flatten lid)

(* strip the Stdlib/Pervasives prefix so qualified and bare spellings of
   a stdlib identifier hit the same rule pattern *)
let canonical name =
  let strip pre n =
    let lp = String.length pre in
    if String.length n > lp && String.sub n 0 lp = pre then
      String.sub n lp (String.length n - lp)
    else n
  in
  strip "Stdlib." (strip "Pervasives." name)

let starts_with pre s =
  let lp = String.length pre in
  String.length s >= lp && String.sub s 0 lp = pre

let head_module name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let sort_functions =
  [ "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.fast_sort";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort" ]

(* spans are character-offset ranges within the source buffer *)
type span = { s_lo : int; s_hi : int }

let span_of_loc (l : Location.t) =
  { s_lo = l.loc_start.pos_cnum; s_hi = l.loc_end.pos_cnum }

let inside outer inner = outer.s_lo <= inner.s_lo && inner.s_hi <= outer.s_hi

let mentions_sort (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ }
            when List.mem (canonical (flatten_lid txt)) sort_functions ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

(* Pass 1: the spans of every expression that flows into a sort — the
   sanctioned way for a hash-ordered fold result to become ordered
   output. Covers [List.sort cmp e], [e |> List.sort cmp] and
   [List.sort cmp @@ e]. *)
let collect_sorted_spans str =
  let spans = ref [] in
  let add (e : Parsetree.expression) =
    spans := span_of_loc e.pexp_loc :: !spans
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            let name = canonical (flatten_lid txt) in
            if List.mem name sort_functions then
              List.iter (fun (_, a) -> add a) args
            else if name = "|>" then begin
              match args with
              | [ (_, lhs); (_, rhs) ] when mentions_sort rhs -> add lhs
              | _ -> ()
            end
            else if name = "@@" then begin
              match args with
              | [ (_, f); (_, x) ] when mentions_sort f -> add x
              | _ -> ()
            end
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure it str;
  !spans

let hashtbl_iters = [ "Hashtbl.iter"; "MoreLabels.Hashtbl.iter" ]

let hashtbl_folds =
  [ "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "MoreLabels.Hashtbl.fold" ]

let wall_clock_calls =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Unix.gmtime";
    "Unix.localtime"; "Unix.mktime" ]

(* Pass 2: one finding per offending identifier occurrence. Matching on
   identifiers (not applications) also catches an offender passed as a
   function value. *)
let collect_findings ~path ~sorted_spans str =
  let out = ref [] in
  let emit ~rule ~loc ~message =
    let p = (loc : Location.t).loc_start in
    out :=
      {
        rule;
        file = path;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        message;
      }
      :: !out
  in
  let in_sorted loc =
    let sp = span_of_loc loc in
    List.exists (fun outer -> inside outer sp) sorted_spans
  in
  let check_ident loc raw =
    let name = canonical raw in
    let head = head_module name in
    if List.mem name hashtbl_iters then
      emit ~rule:"hashtbl-order" ~loc
        ~message:
          (name
         ^ " visits entries in hash order; collect keys with a fold, sort, \
            then iterate")
    else if List.mem name hashtbl_folds && not (in_sorted loc) then
      emit ~rule:"hashtbl-order" ~loc
        ~message:
          (name
         ^ " result is in hash order and does not flow into a sort; use \
            the collect-then-sort idiom")
    else if name = "compare" || name = "Hashtbl.hash"
            || name = "Hashtbl.seeded_hash" then
      emit ~rule:"poly-compare" ~loc
        ~message:
          (name
         ^ " is polymorphic; use Int.compare/String.compare or a typed \
            comparator")
    else if (name = "==" || name = "!=") && not (in_exec path || in_obs path)
    then
      emit ~rule:"phys-eq" ~loc
        ~message:
          ("( " ^ name
         ^ " ) is physical equality; outside lib/exec and lib/obs use \
            structural equality or an explicit index")
    else if
      List.mem head
        [ "Domain"; "Mutex"; "Condition"; "Atomic"; "Thread"; "Semaphore" ]
      && not (in_exec path || in_obs path)
    then
      emit ~rule:"domain-prims" ~loc
        ~message:
          (name
         ^ " outside lib/exec and lib/obs; route parallelism through the \
            Exec pool or add a vetted-allowlist entry")
    else if
      starts_with "Random." name
      && ((not (starts_with "Random.State." name))
         || name = "Random.State.make_self_init")
    then
      emit ~rule:"global-random" ~loc
        ~message:
          (name
         ^ " is unseeded global randomness; use Random.State.make with a \
            deterministic seed")
    else if List.mem name wall_clock_calls && not (clock_ok path) then
      emit ~rule:"wall-clock" ~loc
        ~message:
          (name
         ^ " in a pure flow stage; use Obs spans (Obs.now_ns) or move \
            timing to the report layer")
    else if name = "exit" && in_lib path then
      emit ~rule:"exit-in-lib" ~loc
        ~message:"exit in a library; raise instead and let the binary decide"
    else if starts_with "Obj." name then
      emit ~rule:"obj-magic" ~loc ~message:(name ^ " is unsafe")
    else if name = "Sys.readdir" && not (in_sorted loc) then
      emit ~rule:"readdir-unsorted" ~loc
        ~message:
          "Sys.readdir order is filesystem-dependent; sort the result \
           before use"
    else if starts_with "Marshal." name then
      emit ~rule:"marshal" ~loc
        ~message:
          (name ^ " output is not stable; prefer a textual format")
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.Parsetree.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident loc (flatten_lid txt)
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure it str;
  List.rev !out

(* --- entry points --------------------------------------------------- *)

let classify ~path ~sup (f : finding) =
  let vet =
    List.find_opt
      (fun v ->
        v.v_rule = f.rule
        && Filename.check_suffix (norm_path path) v.path_suffix
        && starts_with v.ident_prefix
             (* the ident is embedded at the front of the message *)
             f.message)
      vetted
  in
  if suppressed sup ~rule:f.rule ~line:f.line then (Suppressed, f)
  else match vet with Some _ -> (Vetted, f) | None -> (Active, f)

let lint_source ~path src =
  let sup = scan_suppressions src in
  match
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf path;
    Parse.implementation lexbuf
  with
  | exception e ->
    let msg =
      match e with
      | Syntaxerr.Error _ -> "syntax error"
      | e -> Printexc.to_string e
    in
    { findings = []; parse_error = Some msg }
  | str ->
    let sorted_spans = collect_sorted_spans str in
    let raw = collect_findings ~path ~sorted_spans str in
    { findings = List.map (classify ~path ~sup) raw; parse_error = None }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lint_file path = lint_source ~path (read_file path)

let rec ml_files_under paths =
  List.concat_map
    (fun p ->
      if Sys.is_directory p then begin
        (* vm1lint: allow-next readdir-unsorted *)
        let entries = Sys.readdir p in
        Array.sort String.compare entries;
        let keep e =
          String.length e > 0 && e.[0] <> '.' && e.[0] <> '_'
        in
        Array.to_list entries
        |> List.filter keep
        |> List.map (Filename.concat p)
        |> List.filter (fun q ->
               Sys.is_directory q || Filename.check_suffix q ".ml")
        |> ml_files_under
      end
      else [ p ])
    paths

type run = {
  files_scanned : int;
  reports : (string * report) list;
}

let run_paths paths =
  let files = ml_files_under paths in
  {
    files_scanned = List.length files;
    reports = List.map (fun f -> (f, lint_file f)) files;
  }

let count run verdict =
  List.fold_left
    (fun acc (_, r) ->
      acc
      + List.length (List.filter (fun (v, _) -> v = verdict) r.findings))
    0 run.reports

let parse_errors run =
  List.filter (fun (_, r) -> r.parse_error <> None) run.reports

let active run = count run Active + List.length (parse_errors run)

let finding_json (f : finding) =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.Str f.rule);
      ("file", Obs.Json.Str (norm_path f.file));
      ("line", Obs.Json.Int f.line);
      ("col", Obs.Json.Int f.col);
      ("message", Obs.Json.Str f.message);
    ]

let to_json run =
  let by_verdict v =
    Obs.Json.List
      (List.concat_map
         (fun (_, r) ->
           List.filter_map
             (fun (v', f) -> if v' = v then Some (finding_json f) else None)
             r.findings)
         run.reports)
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str Obs.Schemas.lint);
      ("files_scanned", Obs.Json.Int run.files_scanned);
      ("active", Obs.Json.Int (active run));
      ("findings", by_verdict Active);
      ("suppressed", by_verdict Suppressed);
      ("vetted", by_verdict Vetted);
      ( "parse_errors",
        Obs.Json.List
          (List.map
             (fun (p, r) ->
               Obs.Json.Obj
                 [
                   ("file", Obs.Json.Str (norm_path p));
                   ( "message",
                     Obs.Json.Str (Option.value ~default:"" r.parse_error) );
                 ])
             (parse_errors run)) );
      ( "rules",
        Obs.Json.List
          (List.map
             (fun r ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str r.name);
                   ("summary", Obs.Json.Str r.summary);
                 ])
             rules) );
    ]

let pp_human ppf run =
  List.iter
    (fun (path, r) ->
      (match r.parse_error with
      | Some msg -> Format.fprintf ppf "%s: cannot parse: %s@." path msg
      | None -> ());
      List.iter
        (fun (v, f) ->
          let tag =
            match v with
            | Active -> ""
            | Suppressed -> " (suppressed)"
            | Vetted -> " (vetted)"
          in
          Format.fprintf ppf "%s:%d:%d: [%s]%s %s@." f.file f.line f.col
            f.rule tag f.message)
        r.findings)
    run.reports;
  Format.fprintf ppf
    "vm1lint: %d files, %d active, %d suppressed, %d vetted, %d parse \
     errors@."
    run.files_scanned (count run Active) (count run Suppressed)
    (count run Vetted)
    (List.length (parse_errors run))
