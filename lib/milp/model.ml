type var = int

type vinfo = {
  name : string;
  lb : float;
  ub : float option;
  binary_ : bool;
}

type expr = {
  terms : (var * float) list;
  constant : float;
}

type constr = Cle of expr * expr | Cge of expr * expr | Ceq of expr * expr

type t = {
  mutable vars : vinfo list;  (* reversed *)
  mutable nvars : int;
  mutable constrs : constr list;  (* reversed *)
  mutable objective : expr;
}

let create () =
  { vars = []; nvars = 0; constrs = []; objective = { terms = []; constant = 0.0 } }

let add_var m info =
  let id = m.nvars in
  m.vars <- info :: m.vars;
  m.nvars <- m.nvars + 1;
  id

let continuous m ?(lb = 0.0) ?ub name =
  add_var m { name; lb; ub; binary_ = false }

let binary m name = add_var m { name; lb = 0.0; ub = Some 1.0; binary_ = true }
let num_vars m = m.nvars

let var_info m x = List.nth m.vars (m.nvars - 1 - x)
let var_name m x = (var_info m x).name
let var_index (x : var) = x
let is_binary m x = (var_info m x).binary_

let v x = { terms = [ (x, 1.0) ]; constant = 0.0 }
let term c x = { terms = [ (x, c) ]; constant = 0.0 }
let const c = { terms = []; constant = c }
let add a b = { terms = a.terms @ b.terms; constant = a.constant +. b.constant }

let scale k e =
  { terms = List.map (fun (x, c) -> (x, k *. c)) e.terms;
    constant = k *. e.constant }

let sub a b = add a (scale (-1.0) b)
let sum es = List.fold_left add (const 0.0) es
let add_le m a b = m.constrs <- Cle (a, b) :: m.constrs
let add_ge m a b = m.constrs <- Cge (a, b) :: m.constrs
let add_eq m a b = m.constrs <- Ceq (a, b) :: m.constrs
let set_objective m e = m.objective <- e

let eval e values =
  List.fold_left
    (fun acc (x, c) -> acc +. (c *. values.(x)))
    e.constant e.terms

let check m ?(tol = 1e-6) values =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if Array.length values <> m.nvars then
    say "assignment has %d values for %d variables" (Array.length values)
      m.nvars
  else begin
    let infos = Array.of_list (List.rev m.vars) in
    Array.iteri
      (fun x info ->
        let value = values.(x) in
        if value < info.lb -. tol then
          say "var %s = %g below lower bound %g" info.name value info.lb;
        (match info.ub with
        | Some u when value > u +. tol ->
          say "var %s = %g above upper bound %g" info.name value u
        | _ -> ());
        if info.binary_ && abs_float (value -. Float.round value) > tol then
          say "binary var %s = %g is not integral" info.name value)
      infos;
    List.iteri
      (fun i c ->
        let gap, rel =
          match c with
          | Cle (a, b) -> (eval a values -. eval b values, "<=")
          | Cge (a, b) -> (eval b values -. eval a values, ">=")
          | Ceq (a, b) -> (abs_float (eval a values -. eval b values), "=")
        in
        if gap > tol then
          say "constraint #%d (%s) violated by %g" i rel gap)
      (List.rev m.constrs)
  end;
  List.rev !problems

let binaries m =
  let acc = ref [] in
  for x = m.nvars - 1 downto 0 do
    if is_binary m x then acc := x :: !acc
  done;
  !acc

(* Compile to Lp.problem over shifted variables x' = x - lb >= 0. A
   difference expression (lhs - rhs) produces coefficient row [a] and a
   constant [k]; the row becomes a.x' rel (-k - a.lb). *)
let to_lp m ~fixed =
  let n = m.nvars in
  let infos = Array.of_list (List.rev m.vars) in
  let lbs = Array.map (fun i -> i.lb) infos in
  let row_of_expr e =
    let a = Array.make n 0.0 in
    List.iter (fun (x, c) -> a.(x) <- a.(x) +. c) e.terms;
    (* constant after shifting: e.constant + sum c*lb *)
    let k =
      List.fold_left (fun acc (x, c) -> acc +. (c *. lbs.(x))) e.constant e.terms
    in
    (a, k)
  in
  let rows = ref [] in
  let emit rel lhs rhs =
    let a, k = row_of_expr (sub lhs rhs) in
    (* a.x' + k rel 0 *)
    rows := (a, rel, -.k) :: !rows
  in
  List.iter
    (function
      | Cle (a, b) -> emit Lp.Le a b
      | Cge (a, b) -> emit Lp.Ge a b
      | Ceq (a, b) -> emit Lp.Eq a b)
    (List.rev m.constrs);
  (* upper bounds and fixings *)
  for x = 0 to n - 1 do
    (match infos.(x).ub with
    | Some u ->
      let a = Array.make n 0.0 in
      a.(x) <- 1.0;
      rows := (a, Lp.Le, u -. lbs.(x)) :: !rows
    | None -> ());
    match fixed x with
    | Some value ->
      let a = Array.make n 0.0 in
      a.(x) <- 1.0;
      rows := (a, Lp.Eq, value -. lbs.(x)) :: !rows
    | None -> ()
  done;
  let objective = Array.make n 0.0 in
  List.iter
    (fun (x, c) -> objective.(x) <- objective.(x) +. c)
    m.objective.terms;
  { Lp.ncols = n; objective; rows = List.rev !rows }

(* Recover original-space values from shifted LP values. *)
let recover m (values : float array) =
  let infos = Array.of_list (List.rev m.vars) in
  Array.mapi (fun x value -> value +. infos.(x).lb) values

(* Objective constant dropped by the LP (it only sees coefficients); add
   back for reporting. *)
let objective_constant m =
  let infos = Array.of_list (List.rev m.vars) in
  List.fold_left
    (fun acc (x, c) -> acc +. (c *. infos.(x).lb))
    m.objective.constant m.objective.terms
