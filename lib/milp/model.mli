(** MILP model builder: named variables (continuous with bounds, or
    binary), linear expressions, <=, >=, = constraints and a linear
    objective. Compiles to an [Lp.problem] for the relaxation; [Bnb]
    solves the integer problem. *)

type t
type var

type expr = {
  terms : (var * float) list;
  constant : float;
}

val create : unit -> t

(** [continuous m ?lb ?ub name] adds a continuous variable. [lb] defaults
    to 0, [ub] to unbounded. A negative [lb] is supported (the variable is
    shifted internally). *)
val continuous : t -> ?lb:float -> ?ub:float -> string -> var

(** [binary m name] adds a 0/1 variable. *)
val binary : t -> string -> var

val num_vars : t -> int
val var_name : t -> var -> string
val var_index : var -> int
val is_binary : t -> var -> bool

(** Expression constructors. *)

val v : var -> expr

val term : float -> var -> expr
val const : float -> expr
val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val scale : float -> expr -> expr
val sum : expr list -> expr

(** Constraints: [add_le m e1 e2] asserts e1 <= e2, etc. *)

val add_le : t -> expr -> expr -> unit

val add_ge : t -> expr -> expr -> unit
val add_eq : t -> expr -> expr -> unit

(** [set_objective m e] sets the objective to minimise. *)
val set_objective : t -> expr -> unit

(** [to_lp m ~fixed] compiles to an LP relaxation. [fixed] maps binary
    variable indices to forced values (used by branch and bound); pass
    [fun _ -> None] for the root relaxation. *)
val to_lp : t -> fixed:(int -> float option) -> Lp.problem

(** [eval m e values] evaluates an expression on an assignment indexed by
    variable index. *)
val eval : expr -> float array -> float

val binaries : t -> var list

(** [check m ?tol values] re-verifies an assignment against every variable
    bound, integrality marker and constraint in the model, independently of
    the solver; returns a human-readable description of each violation
    (empty = feasible within [tol], default [1e-6]). *)
val check : t -> ?tol:float -> float array -> string list

(** [recover m lp_values] maps a solution of [to_lp m] back to the
    original (unshifted) variable space. *)
val recover : t -> float array -> float array

(** Constant part of the objective, which the LP ignores; add to the LP
    objective value for reporting. *)
val objective_constant : t -> float
