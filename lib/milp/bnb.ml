type status = Optimal | Infeasible | Node_limit

type solution = {
  status : status;
  objective_value : float;
  values : float array;
  nodes_explored : int;
}

let int_tol = 1e-6

let solve ?(node_limit = 100_000) (m : Model.t) =
  let n = Model.num_vars m in
  let obj_const = Model.objective_constant m in
  let fixed = Array.make n None in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let limit_hit = ref false in
  let binaries = Array.of_list (List.map Model.var_index (Model.binaries m)) in
  let rec explore () =
    if !nodes >= node_limit then limit_hit := true
    else begin
      incr nodes;
      let lp = Model.to_lp m ~fixed:(fun x -> fixed.(x)) in
      let sol = Lp.solve lp in
      match sol.Lp.status with
      | Lp.Infeasible | Lp.Unbounded -> ()
      | Lp.IterLimit ->
        (* the relaxation did not converge: we have no sound bound, so we
           may neither prune nor trust the fractional point — branch on
           the first unfixed binary instead *)
        (match
           Array.find_opt (fun x -> fixed.(x) = None) binaries
         with
        | None -> ()
        | Some x ->
          fixed.(x) <- Some 0.0;
          explore ();
          fixed.(x) <- Some 1.0;
          explore ();
          fixed.(x) <- None)
      | Lp.Optimal ->
        let bound = sol.Lp.objective_value +. obj_const in
        (* tolerant pruning: the dense Big-M simplex can over- or
           under-shoot by a small relative error, so only prune when the
           bound is clearly no better than the incumbent *)
        let tolerance = 1e-6 *. (1.0 +. abs_float !incumbent_obj) in
        if bound < !incumbent_obj +. tolerance then begin
          (* find the most fractional binary *)
          let frac_var = ref (-1) in
          let frac_dist = ref 0.0 in
          Array.iter
            (fun x ->
              let value = sol.Lp.values.(x) in
              let d = abs_float (value -. Float.round value) in
              if d > int_tol && d > !frac_dist then begin
                frac_dist := d;
                frac_var := x
              end)
            binaries;
          if !frac_var < 0 then begin
            (* integral: new incumbent *)
            incumbent_obj := bound;
            incumbent := Some (Model.recover m sol.Lp.values)
          end
          else begin
            let x = !frac_var in
            let first = Float.round sol.Lp.values.(x) in
            let second = 1.0 -. first in
            fixed.(x) <- Some first;
            explore ();
            fixed.(x) <- Some second;
            explore ();
            fixed.(x) <- None
          end
        end
    end
  in
  explore ();
  Obs.Counter.incr (Obs.counter "bnb.solves");
  Obs.Counter.add (Obs.counter "bnb.nodes") !nodes;
  if !limit_hit then Obs.Counter.incr (Obs.counter "bnb.node_limit_hits");
  match !incumbent with
  | Some values ->
    {
      status = (if !limit_hit then Node_limit else Optimal);
      objective_value = !incumbent_obj;
      values;
      nodes_explored = !nodes;
    }
  | None ->
    {
      status = (if !limit_hit then Node_limit else Infeasible);
      objective_value = infinity;
      values = Array.make n 0.0;
      nodes_explored = !nodes;
    }
