let aes_closed ?scale ?(arch = Pdk.Cell_arch.Closed_m1) () =
  Flow.prepare ?scale Netlist.Designs.Aes arch

(* One pair of DistOpt calls (perturb then flip) with the given parameter
   set — the unit of work ExptA-1 measures. *)
let one_shot ?(mode = `Greedy) (p : Place.Placement.t) params ~bw_um ~lx ~ly =
  let tech = p.Place.Placement.tech in
  let bw_dbu = int_of_float (bw_um *. 1000.0) in
  let bw = max (2 * (lx + 4)) (bw_dbu / tech.Pdk.Tech.site_width) in
  let bh = max (2 * (ly + 1)) (bw_dbu / tech.Pdk.Tech.row_height) in
  let t0 = Unix.gettimeofday () in
  let base =
    {
      Vm1.Dist_opt.tx = 0;
      ty = 0;
      bw;
      bh;
      lx;
      ly;
      allow_flip = false;
      allow_move = true;
      mode;
      parallel = false;
      candidate_cost = None;
      wcache = None;
    }
  in
  ignore (Vm1.Dist_opt.run p params base);
  ignore
    (Vm1.Dist_opt.run p params
       { base with Vm1.Dist_opt.lx = 0; ly = 0; allow_flip = true; allow_move = false });
  Unix.gettimeofday () -. t0

module Fig5 = struct
  type point = {
    bw_um : float;
    lx : int;
    ly : int;
    rwl_um : float;
    runtime_s : float;
  }

  let configs =
    (* window-size sweep at the (4,1) perturbation, plus the perturbation
       sweep at the 20um window the paper reads its operating point from.
       The sweep starts below the paper's 5um because the scaled dies are
       a few tens of um wide: sub-die windows are where the
       quality-vs-runtime tradeoff is visible. *)
    List.map (fun bw -> (bw, 4, 1)) [ 1.25; 2.5; 5.0; 10.0; 20.0; 40.0 ]
    @ List.map (fun (lx, ly) -> (20.0, lx, ly)) [ (2, 1); (3, 1); (5, 1); (4, 0) ]

  let run ?scale ?mode () =
    List.map
      (fun (bw_um, lx, ly) ->
        let p = aes_closed ?scale () in
        let params = Vm1.Params.default p.Place.Placement.tech in
        let runtime_s = one_shot ?mode p params ~bw_um ~lx ~ly in
        let r = Route.Router.route p in
        let s = Route.Metrics.summarize r in
        { bw_um; lx; ly; rwl_um = s.Route.Metrics.rwl_um; runtime_s })
      configs

  let render points =
    let min_rwl =
      List.fold_left (fun acc pt -> min acc pt.rwl_um) infinity points
    in
    Table.render
      ~header:[ "bw=bh(um)"; "lx"; "ly"; "RWL(um)"; "RWL(norm)"; "runtime(s)" ]
      ~rows:
        (List.map
           (fun pt ->
             [
               Table.f1 pt.bw_um;
               Table.fi pt.lx;
               Table.fi pt.ly;
               Table.f1 pt.rwl_um;
               Table.f3 (pt.rwl_um /. min_rwl);
               Table.f2 pt.runtime_s;
             ])
           points)
end

module Fig6 = struct
  type point = {
    alpha : float;
    rwl_um : float;
    dm1 : int;
    alignments : int;
  }

  let default_alphas = [ 0.; 10.; 100.; 400.; 800.; 1200.; 2000.; 4000.; 6000. ]

  let run ?scale ?arch ?(mode = `Greedy) ?(alphas = default_alphas) () =
    List.map
      (fun alpha ->
        let p = aes_closed ?scale ?arch () in
        let params =
          { (Vm1.Params.default p.Place.Placement.tech) with Vm1.Params.alpha }
        in
        let config = { Vm1.Vm1_opt.default_config with Vm1.Vm1_opt.mode } in
        ignore (Vm1.Vm1_opt.run ~config params p);
        let r = Route.Router.route p in
        let s = Route.Metrics.summarize r in
        let counts = Vm1.Objective.counts params p in
        {
          alpha;
          rwl_um = s.Route.Metrics.rwl_um;
          dm1 = s.Route.Metrics.dm1;
          alignments = counts.Vm1.Objective.alignments;
        })
      alphas

  let render points =
    Table.render
      ~header:[ "alpha"; "RWL(um)"; "#dM1"; "#alignments" ]
      ~rows:
        (List.map
           (fun pt ->
             [
               Table.f1 pt.alpha;
               Table.f1 pt.rwl_um;
               Table.fi pt.dm1;
               Table.fi pt.alignments;
             ])
           points)
end

module Fig7 = struct
  type point = {
    sequence : int;
    rwl_um : float;
    runtime_s : float;
  }

  let run ?scale ?(mode = `Greedy) () =
    List.map
      (fun sequence ->
        let p = aes_closed ?scale () in
        let params = Vm1.Params.default p.Place.Placement.tech in
        let config =
          {
            Vm1.Vm1_opt.default_config with
            Vm1.Vm1_opt.sequence = Vm1.Params.sequence sequence;
            mode;
          }
        in
        let report = Vm1.Vm1_opt.run ~config params p in
        let r = Route.Router.route p in
        let s = Route.Metrics.summarize r in
        {
          sequence;
          rwl_um = s.Route.Metrics.rwl_um;
          runtime_s = report.Vm1.Vm1_opt.runtime_s;
        })
      [ 1; 2; 3; 4; 5 ]

  let render points =
    Table.render
      ~header:[ "sequence"; "RWL(um)"; "runtime(s)" ]
      ~rows:
        (List.map
           (fun pt ->
             [ Table.fi pt.sequence; Table.f1 pt.rwl_um; Table.f2 pt.runtime_s ])
           points)
end

module Table2 = struct
  let run ?scale ?(mode = `Greedy)
      ?(archs = [ Pdk.Cell_arch.Closed_m1; Pdk.Cell_arch.Open_m1 ])
      ?(designs = Netlist.Designs.all) () =
    let config = { Vm1.Vm1_opt.default_config with Vm1.Vm1_opt.mode } in
    List.concat_map
      (fun arch ->
        List.map (fun d -> Flow.run_comparison ?scale ~config d arch) designs)
      archs

  let render comparisons =
    let row (c : Flow.comparison) =
      let i = c.Flow.init and f = c.Flow.final in
      [
        c.design_name;
        Table.fi c.instances;
        Table.f1 c.alpha;
        Table.fi i.Flow.dm1;
        Table.fi f.Flow.dm1;
        Table.pct (float_of_int i.Flow.dm1) (float_of_int f.Flow.dm1);
        Table.f1 i.m1_wl_um;
        Table.f1 f.m1_wl_um;
        Table.pct i.m1_wl_um f.m1_wl_um;
        Table.fi i.via12;
        Table.fi f.via12;
        Table.pct (float_of_int i.via12) (float_of_int f.via12);
        Table.f1 i.hpwl_um;
        Table.f1 f.hpwl_um;
        Table.pct i.hpwl_um f.hpwl_um;
        Table.f1 i.rwl_um;
        Table.f1 f.rwl_um;
        Table.pct i.rwl_um f.rwl_um;
        Table.f3 i.wns_ns;
        Table.f3 f.wns_ns;
        Table.f3 i.power_mw;
        Table.f3 f.power_mw;
        Table.pct i.power_mw f.power_mw;
        Table.fi i.drvs;
        Table.fi f.drvs;
        Table.f1 c.opt_runtime_s;
      ]
    in
    Table.render
      ~header:
        [
          "design"; "#inst"; "alpha";
          "dM1:i"; "dM1:f"; "(d%)";
          "M1WL:i"; "M1WL:f"; "(d%)";
          "via12:i"; "via12:f"; "(d%)";
          "HPWL:i"; "HPWL:f"; "(d%)";
          "RWL:i"; "RWL:f"; "(d%)";
          "WNS:i"; "WNS:f";
          "P:i"; "P:f"; "(d%)";
          "DRV:i"; "DRV:f"; "rt(s)";
        ]
      ~rows:(List.map row comparisons)
end

module Fig8 = struct
  type point = {
    utilization : float;
    drvs_init : int;
    drvs_opt : int;
    dm1_init : int;
    dm1_opt : int;
  }

  let default_utils = [ 0.78; 0.80; 0.82; 0.84; 0.86; 0.88 ]

  (* The paper induces congestion hotspots by raising utilisation on a
     fixed technology. Our synthetic designs route comfortably on the
     full 6-layer stack, so the congestion experiment additionally limits
     the router to a 3-layer stack (M1-M3) — the regime where DRVs appear
     and grow with utilisation, matching the figure's premise. *)
  let congested_router = { Route.Router.default_config with layers = 3 }

  let run ?scale ?(mode = `Greedy) ?(utils = default_utils) () =
    List.map
      (fun utilization ->
        let p =
          Flow.prepare ?scale ~utilization Netlist.Designs.Aes
            Pdk.Cell_arch.Closed_m1
        in
        let params = Vm1.Params.default p.Place.Placement.tech in
        let init, clock_ps =
          Flow.evaluate ~router_config:congested_router params p
        in
        let config = { Vm1.Vm1_opt.default_config with Vm1.Vm1_opt.mode } in
        ignore (Vm1.Vm1_opt.run ~config params p);
        let final, _ =
          Flow.evaluate ~clock_ps ~router_config:congested_router params p
        in
        {
          utilization;
          drvs_init = init.Flow.drvs;
          drvs_opt = final.Flow.drvs;
          dm1_init = init.Flow.dm1;
          dm1_opt = final.Flow.dm1;
        })
      utils

  let render points =
    Table.render
      ~header:[ "util"; "#DRV orig"; "#DRV opt"; "#dM1 orig"; "#dM1 opt" ]
      ~rows:
        (List.map
           (fun pt ->
             [
               Printf.sprintf "%.0f%%" (pt.utilization *. 100.0);
               Table.fi pt.drvs_init;
               Table.fi pt.drvs_opt;
               Table.fi pt.dm1_init;
               Table.fi pt.dm1_opt;
             ])
           points)
end
