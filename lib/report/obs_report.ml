let ms ns = Int64.to_float ns /. 1e6

let span_table (spans : Obs.Span.t list) =
  match Obs.aggregate_spans spans with
  | [] -> []
  | aggs ->
    let rows =
      List.map
        (fun (name, (a : Obs.span_agg)) ->
          [
            name;
            Table.fi a.calls;
            Table.f2 (ms a.total_ns);
            Table.f3 (ms a.total_ns /. float_of_int a.calls);
            Table.f3 (ms a.min_ns);
            Table.f3 (ms a.max_ns);
          ])
        aggs
    in
    [
      "## spans\n"
      ^ Table.render
          ~header:[ "span"; "calls"; "total ms"; "mean ms"; "min ms"; "max ms" ]
          ~rows;
    ]

let counter_table = function
  | [] -> []
  | counters ->
    [
      "## counters\n"
      ^ Table.render ~header:[ "counter"; "value" ]
          ~rows:(List.map (fun (k, v) -> [ k; Table.fi v ]) counters);
    ]

let gauge_table = function
  | [] -> []
  | gauges ->
    [
      "## gauges\n"
      ^ Table.render ~header:[ "gauge"; "value" ]
          ~rows:(List.map (fun (k, v) -> [ k; Table.f2 v ]) gauges);
    ]

let hist_table = function
  | [] -> []
  | hists ->
    [
      "## histograms\n"
      ^ Table.render
          ~header:[ "histogram"; "count"; "mean"; "p50"; "p90"; "p99"; "sum" ]
          ~rows:
            (List.map
               (fun (k, (h : Obs.Histogram.snap)) ->
                 let mean =
                   if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
                 in
                 [
                   k; Table.fi h.count; Table.f2 mean;
                   Table.f2 (Obs.Histogram.percentile h 0.50);
                   Table.f2 (Obs.Histogram.percentile h 0.90);
                   Table.f2 (Obs.Histogram.percentile h 0.99);
                   Table.f2 h.sum;
                 ])
               hists);
    ]

(* Registered-but-never-touched metrics (instrumented code paths the run
   did not reach) render as noise, so only live values are shown. *)
let summary (snap : Obs.snapshot) =
  let sections =
    span_table snap.spans
    @ counter_table (List.filter (fun (_, v) -> v <> 0) snap.counters)
    @ gauge_table (List.filter (fun (_, v) -> v <> 0.0) snap.gauges)
    @ hist_table
        (List.filter
           (fun (_, (h : Obs.Histogram.snap)) -> h.count > 0)
           snap.histograms)
  in
  String.concat "\n" sections

let print snap = print_string (summary snap)
