(** Human-readable rendering of an [Obs] snapshot.

    The span table aggregates the whole span forest per name (calls,
    total/mean/min/max wall milliseconds, sorted by total time);
    counters, gauges and histograms follow as their own tables.
    Metrics that were registered but never updated, and sections with no
    data at all, are omitted — an uninstrumented run renders as the
    empty string. *)

(** [summary snap] renders every section of the snapshot with
    [Report.Table]. *)
val summary : Obs.snapshot -> string

(** [print snap] writes [summary snap] to stdout. *)
val print : Obs.snapshot -> unit
