type eval = {
  dm1 : int;
  m1_wl_um : float;
  via12 : int;
  hpwl_um : float;
  rwl_um : float;
  wns_ns : float;
  power_mw : float;
  drvs : int;
  alignments : int;
}

let prepare_placement ?(utilization = 0.75) ?(detailed = true) design =
  let p = Place.Placement.create design ~utilization in
  Place.Global.place p;
  (* the paper's input placements come out of a commercial flow whose
     own detailed placement has already converged; the HPWL-driven row
     DP stands in for that, so the vertical-M1 optimiser is not
     credited with generic wirelength cleanup *)
  if detailed then ignore (Place.Row_opt.optimize ~passes:2 p);
  p

let prepare ?(scale = 8) ?(utilization = 0.75) ?(detailed = true) name arch =
  Obs.with_span "flow.prepare" (fun () ->
      let design = Netlist.Designs.make ~scale name arch in
      prepare_placement ~utilization ~detailed design)

let evaluate ?clock_ps ?router_config (params : Vm1.Params.t)
    (p : Place.Placement.t) =
  Obs.with_span "flow.evaluate" (fun () ->
  let r = Route.Router.route ?config:router_config p in
  let s = Route.Metrics.summarize r in
  let net_lengths = Route.Metrics.net_lengths r in
  let timing = Sta.Timing.analyze ?clock_ps p.design ~net_lengths in
  let power = Sta.Power.analyze p.design ~net_lengths in
  let counts = Vm1.Objective.counts params p in
  ( {
      dm1 = s.Route.Metrics.dm1;
      m1_wl_um = s.m1_wl_um;
      via12 = s.via12;
      hpwl_um = s.hpwl_um;
      rwl_um = s.rwl_um;
      wns_ns = timing.Sta.Timing.wns_ns;
      power_mw = power.Sta.Power.total_mw;
      drvs = s.drvs;
      alignments = counts.Vm1.Objective.alignments;
    },
    timing.Sta.Timing.clock_ps ))

type comparison = {
  design_name : string;
  instances : int;
  alpha : float;
  init : eval;
  final : eval;
  opt_runtime_s : float;
}

let run_comparison ?scale ?utilization ?params ?config name arch =
  let p = prepare ?scale ?utilization name arch in
  let params =
    match params with Some ps -> ps | None -> Vm1.Params.default p.tech
  in
  let init, clock_ps = evaluate params p in
  let report = Vm1.Vm1_opt.run ?config params p in
  let final, _ = evaluate ~clock_ps params p in
  {
    design_name = p.design.Netlist.Design.name;
    instances = Place.Placement.num_instances p;
    alpha = params.Vm1.Params.alpha;
    init;
    final;
    opt_runtime_s = report.Vm1.Vm1_opt.runtime_s;
  }

let delta_pct a b = if abs_float a < 1e-12 then 0.0 else (b -. a) /. a *. 100.0

(* Timing-driven extension (paper future work (ii)): weight each net's
   HPWL by its STA criticality so the optimiser spends displacement on
   timing-relevant nets first. *)
let timing_driven_params ?(boost = 3.0) (params : Vm1.Params.t)
    (p : Place.Placement.t) =
  let r = Route.Router.route p in
  let lengths = Route.Metrics.net_lengths r in
  let crit = Sta.Timing.net_criticality p.design ~net_lengths:lengths in
  let weights = Array.map (fun c -> 1.0 +. (boost *. c *. c)) crit in
  { params with Vm1.Params.net_weights = Some weights }

(* Congestion-aware extension (future work (ii), second criterion): route
   once, build the tile congestion map, and tax candidates in hot tiles
   so the optimiser prefers alignments that do not pull cells into
   congested regions. *)
let congestion_cost ?(weight = 2000.0) ?(threshold = 0.6) ?router_config
    (p : Place.Placement.t) =
  let r = Route.Router.route ?config:router_config p in
  let map = Route.Congestion.of_result r in
  let tech = p.Place.Placement.tech in
  fun ~site ~row ->
    let x = (site * tech.Pdk.Tech.site_width) + (tech.Pdk.Tech.site_width / 2) in
    let y = (row * tech.Pdk.Tech.row_height) + (tech.Pdk.Tech.row_height / 2) in
    let c = Route.Congestion.at map ~x ~y in
    if c > threshold then weight *. (c -. threshold) else 0.0
