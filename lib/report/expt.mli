(** Drivers for every experiment in the paper's evaluation section. Each
    submodule regenerates one figure or table: a [run] function producing
    structured points and a [render] producing the rows the paper plots.
    Every [run] takes [?mode] — the window solver (the [expt --solver]
    flag; default greedy, the paper's configuration). See EXPERIMENTS.md
    for paper-vs-measured. *)

(** ExptA-1 / Fig. 5: routed wirelength and runtime vs window size and
    perturbation range (aes, ClosedM1, one DistOpt pair). *)
module Fig5 : sig
  type point = {
    bw_um : float;
    lx : int;
    ly : int;
    rwl_um : float;
    runtime_s : float;
  }

  val run : ?scale:int -> ?mode:Vm1.Scp_solver.mode -> unit -> point list
  val render : point list -> string
end

(** ExptA-2 / Fig. 6: routed wirelength and #dM1 vs alpha (aes; ClosedM1
    by default). The paper ran the same sweep on OpenM1 to select
    alpha = 1000 but omitted the data "due to the page limit" — pass
    [~arch:Pdk.Cell_arch.Open_m1] to regenerate it. *)
module Fig6 : sig
  type point = {
    alpha : float;
    rwl_um : float;
    dm1 : int;
    alignments : int;
  }

  val run :
    ?scale:int -> ?arch:Pdk.Cell_arch.t -> ?mode:Vm1.Scp_solver.mode ->
    ?alphas:float list -> unit -> point list

  val render : point list -> string
end

(** ExptA-3 / Fig. 7: routed wirelength and runtime for the five
    optimisation sequences. *)
module Fig7 : sig
  type point = {
    sequence : int;
    rwl_um : float;
    runtime_s : float;
  }

  val run : ?scale:int -> ?mode:Vm1.Scp_solver.mode -> unit -> point list
  val render : point list -> string
end

(** ExptB / Table 2: full before/after comparison for the four designs on
    both architectures. *)
module Table2 : sig
  val run :
    ?scale:int -> ?mode:Vm1.Scp_solver.mode -> ?archs:Pdk.Cell_arch.t list ->
    ?designs:Netlist.Designs.name list -> unit -> Flow.comparison list

  val render : Flow.comparison list -> string
end

(** ExptB-1 / Fig. 8: DRVs before/after optimisation and #dM1 vs
    utilisation (aes, ClosedM1). *)
module Fig8 : sig
  type point = {
    utilization : float;
    drvs_init : int;
    drvs_opt : int;
    dm1_init : int;
    dm1_opt : int;
  }

  val run :
    ?scale:int -> ?mode:Vm1.Scp_solver.mode -> ?utils:float list -> unit ->
    point list
  val render : point list -> string
end
