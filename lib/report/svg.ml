let scale = 9.0

let sx x = float_of_int x /. scale

(* y flipped: SVG grows downward, rows grow upward *)
let sy ~die_h y = float_of_int (die_h - y) /. scale

let header ~w ~h buf =
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
        height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
        <rect width=\"100%%\" height=\"100%%\" fill=\"#fafafa\"/>\n"
       (sx w) (float_of_int h /. scale) (sx w) (float_of_int h /. scale))

let footer buf = Buffer.add_string buf "</svg>\n"

let rect buf ~die_h ?(stroke = "none") ?(stroke_width = 0.3) ~fill
    (r : Geom.Rect.t) =
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
        fill=\"%s\" stroke=\"%s\" stroke-width=\"%.2f\"/>\n"
       (sx r.lx) (sy ~die_h r.hy)
       (sx (Geom.Rect.width r))
       (float_of_int (Geom.Rect.height r) /. scale)
       fill stroke stroke_width)

let line buf ~die_h ~color ~width (x1, y1) (x2, y2) =
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" \
        stroke=\"%s\" stroke-width=\"%.2f\" stroke-linecap=\"round\"/>\n"
       (sx x1) (sy ~die_h y1) (sx x2) (sy ~die_h y2) color width)

let kind_fill = function
  | Pdk.Stdcell.Dff -> "#b3cde3"
  | Pdk.Stdcell.Fill -> "#eeeeee"
  | Pdk.Stdcell.Inv | Pdk.Stdcell.Buf -> "#ccebc5"
  | _ -> "#fed9a6"

let draw_placement buf (p : Place.Placement.t) =
  let die_h = Geom.Rect.height p.die in
  rect buf ~die_h ~stroke:"#333333" ~stroke_width:0.6 ~fill:"none" p.die;
  for i = 0 to Place.Placement.num_instances p - 1 do
    let inst = p.design.Netlist.Design.instances.(i) in
    rect buf ~die_h ~stroke:"#888888" ~stroke_width:0.15
      ~fill:(kind_fill inst.master.Pdk.Stdcell.kind)
      (Place.Placement.instance_rect p i);
    (* pin marks *)
    List.iteri
      (fun k _ ->
        let pos =
          Place.Placement.pin_pos p { Netlist.Design.inst = i; pin = k }
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"0.6\" fill=\"#555555\"/>\n"
             (sx pos.Geom.Point.x)
             (sy ~die_h pos.Geom.Point.y)))
      inst.master.Pdk.Stdcell.pins
  done

let placement (p : Place.Placement.t) =
  let buf = Buffer.create (1 lsl 16) in
  header ~w:(Geom.Rect.width p.die) ~h:(Geom.Rect.height p.die) buf;
  draw_placement buf p;
  footer buf;
  Buffer.contents buf

let layer_color = function
  | 1 -> "#e41a1c"
  | 2 -> "#377eb8"
  | 3 -> "#4daf4a"
  | 4 -> "#984ea3"
  | 5 -> "#ff7f00"
  | _ -> "#a65628"

let routed (r : Route.Router.result) =
  let g = r.grid in
  let p = g.Route.Grid.placement in
  let die_h = Geom.Rect.height p.die in
  let buf = Buffer.create (1 lsl 18) in
  header ~w:(Geom.Rect.width p.die) ~h:die_h buf;
  draw_placement buf p;
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      Array.iter
        (fun (sn : Route.Router.subnet) ->
          Array.iter
            (fun c ->
              match Route.Router.edge_of_code c with
              | Route.Router.Wire n ->
                let l = Route.Grid.layer_of_node g n in
                let i = Route.Grid.i_of_node g n in
                let j = Route.Grid.j_of_node g n in
                let x = Route.Grid.track_x g i in
                let y = Route.Grid.track_y g j in
                let x2, y2 =
                  if Route.Grid.is_vertical_layer l then
                    (x, Route.Grid.track_y g (j + 1))
                  else (Route.Grid.track_x g (i + 1), y)
                in
                line buf ~die_h ~color:(layer_color l)
                  ~width:(0.5 +. (0.08 *. float_of_int l))
                  (x, y) (x2, y2)
              | Route.Router.Via n ->
                let i = Route.Grid.i_of_node g n in
                let j = Route.Grid.j_of_node g n in
                Buffer.add_string buf
                  (Printf.sprintf
                     "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"0.5\" \
                      fill=\"#000000\"/>\n"
                     (sx (Route.Grid.track_x g i))
                     (sy ~die_h (Route.Grid.track_y g j))))
            sn.path)
        nr.subnets)
    r.routes;
  footer buf;
  Buffer.contents buf

let congestion (r : Route.Router.result) =
  let g = r.grid in
  let p = g.Route.Grid.placement in
  let die_h = Geom.Rect.height p.die in
  let buf = Buffer.create (1 lsl 16) in
  header ~w:(Geom.Rect.width p.die) ~h:die_h buf;
  (* bin usage into 8x8-track tiles *)
  let tile = 8 in
  let tx = (g.Route.Grid.nx + tile - 1) / tile in
  let ty = (g.Route.Grid.ny + tile - 1) / tile in
  let used = Array.make_matrix tx ty 0 in
  let cap = Array.make_matrix tx ty 0 in
  let size = Route.Grid.node_count g in
  for n = 0 to size - 1 do
    if Route.Grid.has_wire_edge g n then begin
      let i = Route.Grid.i_of_node g n / tile in
      let j = Route.Grid.j_of_node g n / tile in
      if g.Route.Grid.wire_owner.(n) <> Route.Grid.blocked then begin
        cap.(i).(j) <- cap.(i).(j) + 1;
        used.(i).(j) <- used.(i).(j) + min 2 g.Route.Grid.wire_usage.(n)
      end
    end
  done;
  for i = 0 to tx - 1 do
    for j = 0 to ty - 1 do
      if cap.(i).(j) > 0 then begin
        let ratio = float_of_int used.(i).(j) /. float_of_int cap.(i).(j) in
        let level = int_of_float (255.0 *. Float.min 1.0 (ratio *. 2.0)) in
        let fill = Printf.sprintf "rgb(255,%d,%d)" (255 - level) (255 - level) in
        rect buf ~die_h ~fill
          (Geom.Rect.make
             ~lx:(i * tile * g.Route.Grid.pitch)
             ~ly:(j * tile * g.Route.Grid.pitch)
             ~hx:((i + 1) * tile * g.Route.Grid.pitch)
             ~hy:((j + 1) * tile * g.Route.Grid.pitch))
      end
    done
  done;
  rect buf ~die_h ~stroke:"#333333" ~stroke_width:0.6 ~fill:"none" p.die;
  footer buf;
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)
