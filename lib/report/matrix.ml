type cell = {
  cell_id : string;
  design_name : string;
  arch : Pdk.Cell_arch.t;
  util : float option;
  scale : int option;
  instances : int;
  init : Flow.eval;
  final : Flow.eval;
}

type report = {
  manifest_name : string;
  manifest_digest : string;
  cells : cell list;
}

(* one grid point, before running *)
type spec =
  | Gen of {
      s_id : string;
      name : Netlist.Designs.name;
      arch : Pdk.Cell_arch.t;
      util : float;
      scale : int;
    }
  | Ext of {
      s_id : string;
      def_path : string;
      lef_path : string option;
      arch : Pdk.Cell_arch.t;
    }

let specs_of_manifest (m : Io.Manifest.t) =
  List.concat_map
    (fun (e : Io.Manifest.entry) ->
      match e.Io.Manifest.source with
      | Io.Manifest.Generate name ->
        List.concat_map
          (fun arch ->
            List.concat_map
              (fun util ->
                List.map
                  (fun scale ->
                    Gen { s_id = e.Io.Manifest.e_id; name; arch; util; scale })
                  m.Io.Manifest.scales)
              m.Io.Manifest.utils)
          m.Io.Manifest.archs
      | Io.Manifest.External { def_path; lef_path; arch } ->
        [ Ext { s_id = e.Io.Manifest.e_id; def_path; lef_path; arch } ])
    m.Io.Manifest.entries

(* evaluate init, optimise (sequentially — the cell grid is the unit of
   parallelism), re-evaluate against the same clock *)
let run_pipeline p =
  let params = Vm1.Params.default p.Place.Placement.tech in
  let init, clock_ps = Flow.evaluate params p in
  let config =
    { Vm1.Vm1_opt.default_config with Vm1.Vm1_opt.parallel = false }
  in
  ignore (Vm1.Vm1_opt.run ~config params p);
  let final, _ = Flow.evaluate ~clock_ps params p in
  (init, final)

let run_cell = function
  | Gen { s_id; name; arch; util; scale } ->
    let design = Netlist.Designs.make ~scale name arch in
    let p = Flow.prepare_placement ~utilization:util design in
    let init, final = run_pipeline p in
    Ok
      {
        cell_id = Printf.sprintf "%s/%s/u%.2f/s%d" s_id
            (Pdk.Cell_arch.to_string arch) util scale;
        design_name = Netlist.Designs.to_string name;
        arch;
        util = Some util;
        scale = Some scale;
        instances = Netlist.Design.num_instances design;
        init;
        final;
      }
  | Ext { s_id; def_path; lef_path; arch } ->
    let lib =
      match lef_path with
      | Some path ->
        (match Io.Lef.parse_file path with
        | Ok lib -> Ok lib
        | Error e ->
          Error (Printf.sprintf "%s: %s" path (Io.Lex.error_to_string e)))
      | None -> Ok (Pdk.Libgen.generate (Pdk.Tech.default arch))
    in
    Result.bind lib (fun lib ->
        match Io.Def.read_file lib def_path with
        | Error msg -> Error (Printf.sprintf "%s: %s" def_path msg)
        | Ok (design, def) ->
          let p = Place.Placement.of_def design def in
          let init, final = run_pipeline p in
          Ok
            {
              cell_id = s_id ^ "/ext";
              design_name = design.Netlist.Design.name;
              arch = lib.Pdk.Libgen.tech.Pdk.Tech.arch;
              util = None;
              scale = None;
              instances = Netlist.Design.num_instances design;
              init;
              final;
            })

let run (m : Io.Manifest.t) =
  match Io.Manifest.digest m with
  | exception Sys_error msg -> Error msg
  | manifest_digest ->
    let specs = Array.of_list (specs_of_manifest m) in
    let results = Exec.parallel_map ~chunk:1 run_cell specs in
    let rec collect acc i =
      if i >= Array.length results then Ok (List.rev acc)
      else
        match results.(i) with
        | Ok c -> collect (c :: acc) (i + 1)
        | Error msg -> Error msg
    in
    Result.map
      (fun cells ->
        { manifest_name = m.Io.Manifest.m_name; manifest_digest; cells })
      (collect [] 0)

(* --- report forms ----------------------------------------------------- *)

let eval_json (e : Flow.eval) =
  Obs.Json.Obj
    [
      ("dm1", Obs.Json.Int e.Flow.dm1);
      ("m1_wl_um", Obs.Json.Float e.Flow.m1_wl_um);
      ("via12", Obs.Json.Int e.Flow.via12);
      ("hpwl_um", Obs.Json.Float e.Flow.hpwl_um);
      ("rwl_um", Obs.Json.Float e.Flow.rwl_um);
      ("wns_ns", Obs.Json.Float e.Flow.wns_ns);
      ("power_mw", Obs.Json.Float e.Flow.power_mw);
      ("drvs", Obs.Json.Int e.Flow.drvs);
      ("alignments", Obs.Json.Int e.Flow.alignments);
    ]

let cell_json (c : cell) =
  let open Obs.Json in
  Obj
    [
      ("id", Str c.cell_id);
      ("design", Str c.design_name);
      ("arch", Str (Pdk.Cell_arch.to_string c.arch));
      ("util", match c.util with Some u -> Float u | None -> Null);
      ("scale", match c.scale with Some s -> Int s | None -> Null);
      ("instances", Int c.instances);
      ("init", eval_json c.init);
      ("final", eval_json c.final);
      ( "delta_pct",
        Obj
          [
            ("hpwl", Float (Flow.delta_pct c.init.Flow.hpwl_um c.final.Flow.hpwl_um));
            ("rwl", Float (Flow.delta_pct c.init.Flow.rwl_um c.final.Flow.rwl_um));
            ("m1_wl", Float (Flow.delta_pct c.init.Flow.m1_wl_um c.final.Flow.m1_wl_um));
            ( "via12",
              Float
                (Flow.delta_pct
                   (float_of_int c.init.Flow.via12)
                   (float_of_int c.final.Flow.via12)) );
          ] );
    ]

let to_json (r : report) =
  let open Obs.Json in
  Obj
    [
      ("schema", Str Obs.Schemas.expt_matrix);
      ("manifest", Str r.manifest_name);
      ("manifest_digest", Str r.manifest_digest);
      ("cells", List (List.map cell_json r.cells));
    ]

let render (r : report) =
  let header =
    [ "cell"; "inst"; "dM1 i->f"; "via12 i->f"; "RWL um (d%)";
      "HPWL um (d%)"; "DRV i->f" ]
  in
  let rows =
    List.map
      (fun c ->
        [
          c.cell_id;
          Table.fi c.instances;
          Printf.sprintf "%d -> %d" c.init.Flow.dm1 c.final.Flow.dm1;
          Printf.sprintf "%d -> %d" c.init.Flow.via12 c.final.Flow.via12;
          Table.f1 c.final.Flow.rwl_um
          ^ " " ^ Table.pct c.init.Flow.rwl_um c.final.Flow.rwl_um;
          Table.f1 c.final.Flow.hpwl_um
          ^ " " ^ Table.pct c.init.Flow.hpwl_um c.final.Flow.hpwl_um;
          Printf.sprintf "%d -> %d" c.init.Flow.drvs c.final.Flow.drvs;
        ])
      r.cells
  in
  Printf.sprintf "matrix %s (%d cells, manifest %s)\n%s" r.manifest_name
    (List.length r.cells)
    (String.sub r.manifest_digest 0 12)
    (Table.render ~header ~rows)
