(** The end-to-end flow: generate -> place -> route -> evaluate ->
    optimise -> re-route -> evaluate. One [eval] carries every column of
    the paper's Table 2. *)

type eval = {
  dm1 : int;
  m1_wl_um : float;
  via12 : int;
  hpwl_um : float;
  rwl_um : float;
  wns_ns : float;
  power_mw : float;
  drvs : int;
  alignments : int;  (** placement-level potential dM1 pairs *)
}

(** [prepare ?scale ?utilization ?detailed name arch] generates the named
    design and produces a legal placement: global placement followed (by
    default) by HPWL-driven row-DP detailed placement, standing in for
    the converged commercial flow the paper starts from. Defaults: scale
    8, utilisation 0.75, detailed true. *)
val prepare :
  ?scale:int -> ?utilization:float -> ?detailed:bool ->
  Netlist.Designs.name -> Pdk.Cell_arch.t -> Place.Placement.t

(** [prepare_placement ?utilization ?detailed design] is the placement
    half of {!prepare} for an already-generated design — the entry the
    batch service uses so one cached netlist can seed many jobs. The
    result for a given design is identical to what {!prepare} would
    produce for the same inputs. *)
val prepare_placement :
  ?utilization:float -> ?detailed:bool -> Netlist.Design.t ->
  Place.Placement.t

(** [evaluate ?clock_ps ?router_config params p] routes the placement and
    computes all metrics. Pass the [clock_ps] captured from the initial
    evaluation when evaluating the optimised placement, so WNS is
    comparable. Returns the evaluation and the clock period used. *)
val evaluate :
  ?clock_ps:float -> ?router_config:Route.Router.config ->
  Vm1.Params.t -> Place.Placement.t -> eval * float

type comparison = {
  design_name : string;
  instances : int;
  alpha : float;
  init : eval;
  final : eval;
  opt_runtime_s : float;
}

(** [run_comparison ?scale ?utilization ?params ?config name arch] is the
    full Table-2 experiment for one design: evaluate the initial routed
    placement, run VM1Opt, re-route, evaluate again. *)
val run_comparison :
  ?scale:int -> ?utilization:float -> ?params:Vm1.Params.t ->
  ?config:Vm1.Vm1_opt.config -> Netlist.Designs.name -> Pdk.Cell_arch.t ->
  comparison

(** [delta_pct a b] is the relative change from [a] to [b] in percent. *)
val delta_pct : float -> float -> float

(** [timing_driven_params ?boost params p] routes the placement, computes
    per-net STA criticality and returns [params] with net weights
    [1 + boost * criticality^2] — the paper's future-work extension (ii)
    to the objective. *)
val timing_driven_params :
  ?boost:float -> Vm1.Params.t -> Place.Placement.t -> Vm1.Params.t

(** [congestion_cost ?weight ?threshold ?router_config p] routes the
    placement, builds the tile congestion map and returns the
    per-candidate penalty function for [Vm1.Vm1_opt.config.candidate_cost]
    — the congestion-aware objective extension. Tiles above [threshold]
    usage/capacity are taxed proportionally. *)
val congestion_cost :
  ?weight:float -> ?threshold:float -> ?router_config:Route.Router.config ->
  Place.Placement.t -> site:int -> row:int -> float
