(** The experiment matrix: sweep a benchmark manifest through the full
    flow and report QoR per cell ([vm1dp-expt-matrix/1]).

    A manifest's generator entries are crossed with every
    arch/utilisation/scale combination of its axes; external DEF entries
    contribute one cell each (their placement — and so their axes — are
    fixed by the file). Every cell runs the same pipeline as [vm1opt]:
    evaluate the initial routed placement, run VM1Opt, re-route,
    evaluate again.

    Cells are distributed over the exec pool ({!Exec.parallel_map}),
    with the in-cell optimiser forced sequential so the cell grid is the
    unit of parallelism; the report — including its JSON form — is
    byte-identical for every [--jobs] setting (the [@matrix-smoke] gate
    diffs it against a committed golden at jobs 1, 2 and 4). *)

type cell = {
  cell_id : string;  (** e.g. ["m0/closedm1/u0.70/s48"], ["smoke/ext"] *)
  design_name : string;
  arch : Pdk.Cell_arch.t;
  util : float option;   (** [None] for external cells *)
  scale : int option;    (** [None] for external cells *)
  instances : int;
  init : Flow.eval;
  final : Flow.eval;
}

type report = {
  manifest_name : string;
  manifest_digest : string;  (** {!Io.Manifest.digest} of the input *)
  cells : cell list;         (** entry-major, then arch/util/scale order *)
}

(** [run m] sweeps the manifest. [Error] carries the first failing
    cell's diagnostic (unreadable or unbindable external DEF/LEF). *)
val run : Io.Manifest.t -> (report, string) result

(** No timing fields: the JSON is a pure function of the manifest. *)
val to_json : report -> Obs.Json.t

val render : report -> string
