type config = {
  time_rel : float;
  time_abs_ns : int;
  gauge_rel : float;
  gauge_abs : float;
  alloc_rel : float;
  alloc_abs : float;
  ignore_prefixes : string list;
}

let default =
  {
    time_rel = 0.25;
    time_abs_ns = 50_000_000;
    gauge_rel = 0.10;
    gauge_abs = 0.5;
    alloc_rel = 0.15;
    alloc_abs = 1024.0;
    ignore_prefixes = [];
  }

(* The allocation gauges (ROADMAP item 1: minor words per window /
   subnet) get their own band: they are near-deterministic for a fixed
   code path but quantised by GC sampling, so the generic gauge band
   (tuned for ratios around 1.0) is both too loose relatively and too
   tight absolutely for word counts in the 10^3..10^6 range. *)
let is_alloc_gauge name =
  let sub = "minor_words" in
  let n = String.length name and m = String.length sub in
  let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
  at 0

type severity = Structure | Regression | Info

type issue = {
  severity : severity;
  what : string;
}

type verdict = {
  issues : issue list;
  pass : bool;
}

(* Aggregate a forest into the deterministic shape we gate on: per-name
   span counts and total times, and per-edge (parent;child) counts.
   Roots count as edges from the pseudo-parent "" so a span migrating
   between root and nested positions is a structure change. *)
type shape = {
  calls : (string, int) Hashtbl.t;
  totals : (string, int) Hashtbl.t;
  edges : (string, int) Hashtbl.t;
}

let bump tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some old -> Hashtbl.replace tbl k (old + v)
  | None -> Hashtbl.add tbl k v

let shape_of (t : Model.t) =
  let sh =
    {
      calls = Hashtbl.create 32;
      totals = Hashtbl.create 32;
      edges = Hashtbl.create 32;
    }
  in
  let rec visit parent (s : Model.span) =
    bump sh.calls s.name 1;
    bump sh.totals s.name s.dur_ns;
    bump sh.edges (parent ^ ";" ^ s.name) 1;
    List.iter (visit s.name) s.children
  in
  List.iter (visit "") t.spans;
  sh

(* Sorted union of the key sets of two string-keyed tables/assoc lists —
   every comparison below walks names in one deterministic order. *)
let sorted_keys_tbl a b =
  List.sort_uniq String.compare
    (Hashtbl.fold
       (fun k _ acc -> k :: acc)
       a
       (Hashtbl.fold (fun k _ acc -> k :: acc) b []))

let sorted_keys_assoc a b =
  List.sort_uniq String.compare (List.map fst a @ List.map fst b)

let within_band ~rel ~abs ~old ~cur =
  Float.abs (cur -. old) <= (Float.abs old *. rel) +. abs

let run config ~baseline ~current =
  let baseline = Model.prune ~prefixes:config.ignore_prefixes baseline in
  let current = Model.prune ~prefixes:config.ignore_prefixes current in
  let issues = ref [] in
  let add severity fmt =
    Printf.ksprintf (fun what -> issues := { severity; what } :: !issues) fmt
  in
  let old_sh = shape_of baseline and cur_sh = shape_of current in
  (* span name multiset: strict *)
  List.iter
    (fun name ->
      let o = Option.value ~default:0 (Hashtbl.find_opt old_sh.calls name)
      and c = Option.value ~default:0 (Hashtbl.find_opt cur_sh.calls name) in
      if o = 0 then add Structure "span %s: new (%d calls)" name c
      else if c = 0 then add Structure "span %s: disappeared (had %d calls)" name o
      else if o <> c then add Structure "span %s: calls %d -> %d" name o c)
    (sorted_keys_tbl old_sh.calls cur_sh.calls);
  (* parent->child edge multiset: strict *)
  List.iter
    (fun edge ->
      let o = Option.value ~default:0 (Hashtbl.find_opt old_sh.edges edge)
      and c = Option.value ~default:0 (Hashtbl.find_opt cur_sh.edges edge) in
      if o <> c then
        let pretty =
          match String.index_opt edge ';' with
          | Some 0 -> "root " ^ String.sub edge 1 (String.length edge - 1)
          | Some i ->
            Printf.sprintf "edge %s > %s" (String.sub edge 0 i)
              (String.sub edge (i + 1) (String.length edge - i - 1))
          | None -> edge
        in
        add Structure "%s: count %d -> %d" pretty o c)
    (sorted_keys_tbl old_sh.edges cur_sh.edges);
  (* per-name total time: tolerant, boundary-exact on the upper band *)
  List.iter
    (fun name ->
      match
        (Hashtbl.find_opt old_sh.totals name, Hashtbl.find_opt cur_sh.totals name)
      with
      | Some o, Some c ->
        let limit =
          (float_of_int o *. (1.0 +. config.time_rel))
          +. float_of_int config.time_abs_ns
        in
        if float_of_int c > limit then
          add Regression "span %s: total %dns -> %dns (limit %.0fns)" name o c
            limit
        else if
          float_of_int c
          < (float_of_int o /. (1.0 +. config.time_rel))
            -. float_of_int config.time_abs_ns
        then add Info "span %s: total %dns -> %dns (improved)" name o c
      | _ -> () (* presence differences already reported as Structure *))
    (sorted_keys_tbl old_sh.totals cur_sh.totals);
  (* counters: strict *)
  List.iter
    (fun name ->
      match
        ( List.assoc_opt name baseline.Model.counters,
          List.assoc_opt name current.Model.counters )
      with
      | Some o, Some c ->
        if o <> c then add Regression "counter %s: %d -> %d" name o c
      | None, Some c -> add Structure "counter %s: new (%d)" name c
      | Some o, None -> add Structure "counter %s: disappeared (was %d)" name o
      | None, None -> ())
    (sorted_keys_assoc baseline.Model.counters current.Model.counters);
  (* gauges: tolerant band *)
  List.iter
    (fun name ->
      match
        ( List.assoc_opt name baseline.Model.gauges,
          List.assoc_opt name current.Model.gauges )
      with
      | Some o, Some c ->
        let rel, abs =
          if is_alloc_gauge name then (config.alloc_rel, config.alloc_abs)
          else (config.gauge_rel, config.gauge_abs)
        in
        if not (within_band ~rel ~abs ~old:o ~cur:c) then
          add Regression "gauge %s: %g -> %g" name o c
      | None, Some c -> add Structure "gauge %s: new (%g)" name c
      | Some o, None -> add Structure "gauge %s: disappeared (was %g)" name o
      | None, None -> ())
    (sorted_keys_assoc baseline.Model.gauges current.Model.gauges);
  (* histograms: count strict, sum tolerant *)
  List.iter
    (fun name ->
      match
        ( List.assoc_opt name baseline.Model.histograms,
          List.assoc_opt name current.Model.histograms )
      with
      | Some (o : Model.hist), Some (c : Model.hist) ->
        if o.count <> c.count then
          add Regression "histogram %s: count %d -> %d" name o.count c.count;
        if
          not
            (within_band ~rel:config.gauge_rel ~abs:config.gauge_abs
               ~old:o.sum ~cur:c.sum)
        then add Regression "histogram %s: sum %g -> %g" name o.sum c.sum
      | None, Some _ -> add Structure "histogram %s: new" name
      | Some _, None -> add Structure "histogram %s: disappeared" name
      | None, None -> ())
    (sorted_keys_assoc baseline.Model.histograms current.Model.histograms);
  let issues = List.rev !issues in
  let pass =
    not
      (List.exists
         (fun i ->
           match i.severity with
           | Structure | Regression -> true
           | Info -> false)
         issues)
  in
  { issues; pass }
