type row = {
  name : string;
  calls : int;
  total_ns : int;
  self_ns : int;
  min_ns : int;
  max_ns : int;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
}

type acc = {
  mutable durs : int list;
  mutable self : int;
}

(* Nearest-rank percentile over the exact durations: element number
   ceil(q * n) of the sorted list (1-based). *)
let nearest_rank sorted n q =
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  let idx = min (n - 1) (max 0 (rank - 1)) in
  sorted.(idx)

let rows (t : Model.t) =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  Model.iter t (fun ~depth:_ s ->
      let child_ns =
        List.fold_left (fun a (c : Model.span) -> a + c.dur_ns) 0 s.children
      in
      let self = max 0 (s.dur_ns - child_ns) in
      match Hashtbl.find_opt tbl s.name with
      | Some a ->
        a.durs <- s.dur_ns :: a.durs;
        a.self <- a.self + self
      | None -> Hashtbl.add tbl s.name { durs = [ s.dur_ns ]; self });
  Hashtbl.fold
    (fun name a acc ->
      let durs = Array.of_list a.durs in
      Array.sort Int.compare durs;
      let n = Array.length durs in
      {
        name;
        calls = n;
        total_ns = Array.fold_left ( + ) 0 durs;
        self_ns = a.self;
        min_ns = durs.(0);
        max_ns = durs.(n - 1);
        p50_ns = nearest_rank durs n 0.50;
        p90_ns = nearest_rank durs n 0.90;
        p99_ns = nearest_rank durs n 0.99;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int.compare b.total_ns a.total_ns with
         | 0 -> String.compare a.name b.name
         | c -> c)

module J = Obs.Json

let row_json r =
  J.Obj
    [
      ("name", J.Str r.name);
      ("calls", J.Int r.calls);
      ("total_ns", J.Int r.total_ns);
      ("self_ns", J.Int r.self_ns);
      ("min_ns", J.Int r.min_ns);
      ("max_ns", J.Int r.max_ns);
      ("p50_ns", J.Int r.p50_ns);
      ("p90_ns", J.Int r.p90_ns);
      ("p99_ns", J.Int r.p99_ns);
    ]

let to_json (t : Model.t) =
  J.Obj
    [
      ("schema", J.Str Obs.Schemas.trace_report);
      ("wall_ns", J.Int (Model.wall_ns t));
      ("roots", J.Int (List.length t.spans));
      ("spans", J.List (List.map row_json (rows t)));
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) t.counters));
      ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) t.gauges));
      ( "histograms",
        J.Obj
          (List.map
             (fun (k, (h : Model.hist)) ->
               ( k,
                 J.Obj
                   [
                     ("count", J.Int h.count);
                     ("sum", J.Float h.sum);
                     ("p50", J.Float (Model.hist_percentile h 0.50));
                     ("p90", J.Float (Model.hist_percentile h 0.90));
                     ("p99", J.Float (Model.hist_percentile h 0.99));
                   ] ))
             t.histograms) );
    ]
