type window_row = {
  ix : int;
  iy : int;
  x0_dbu : int;
  y0_dbu : int;
  x1_dbu : int;
  y1_dbu : int;
  solves : int;
  moves : int;
  d_hpwl_dbu : int;
  d_align : int;
  d_overlap : int;
  overflow : int;
}

type heatmap = {
  tiles_x : int;
  tiles_y : int;
  tile_tracks : int;
  pitch_dbu : int;
  counts : int array;
}

type net_row = {
  net_id : int;
  overflow : int;
  failed_subnets : int;
}

type t = {
  windows : window_row list;
  heatmap : heatmap option;
  nets : net_row list;
}

(* "a:x b:y ..." — the id:count encoding of the route span's
   overflow_nets/failed_nets attrs. Unparsable fragments are skipped:
   attribution degrades, it never fails the tool. *)
let parse_pairs s =
  String.split_on_char ' ' s
  |> List.filter_map (fun tok ->
         match String.index_opt tok ':' with
         | Some i -> (
           match
             ( int_of_string_opt (String.sub tok 0 i),
               int_of_string_opt
                 (String.sub tok (i + 1) (String.length tok - i - 1)) )
           with
           | Some a, Some b -> Some (a, b)
           | _ -> None)
         | None -> None)

let parse_csv_ints s =
  String.split_on_char ',' s |> List.filter_map int_of_string_opt

let heatmap_of_span (s : Model.span) =
  match
    ( Model.attr_int s "heat_tiles_x",
      Model.attr_int s "heat_tiles_y",
      Model.attr_int s "heat_tile_tracks",
      Model.attr_int s "pitch_dbu",
      Model.attr_str s "heat_overflow" )
  with
  | Some tiles_x, Some tiles_y, Some tile_tracks, Some pitch_dbu, Some csv ->
    let counts = Array.of_list (parse_csv_ints csv) in
    if Array.length counts = tiles_x * tiles_y && tiles_x > 0 && tiles_y > 0
    then Some { tiles_x; tiles_y; tile_tracks; pitch_dbu; counts }
    else None
  | _ -> None

(* Heat counts of the tiles intersecting [x0,x1) x [y0,y1): the window's
   share of routing congestion. Tile (ti,tj) covers the DBU square of
   side tile_tracks * pitch at (ti,tj) * side. *)
let box_overflow (h : heatmap) ~x0 ~y0 ~x1 ~y1 =
  let side = h.tile_tracks * h.pitch_dbu in
  if side <= 0 then 0
  else begin
    let clamp lo hi v = min hi (max lo v) in
    let ti0 = clamp 0 (h.tiles_x - 1) (x0 / side)
    and ti1 = clamp 0 (h.tiles_x - 1) ((x1 - 1) / side)
    and tj0 = clamp 0 (h.tiles_y - 1) (y0 / side)
    and tj1 = clamp 0 (h.tiles_y - 1) ((y1 - 1) / side) in
    let acc = ref 0 in
    for tj = tj0 to tj1 do
      for ti = ti0 to ti1 do
        acc := !acc + h.counts.((tj * h.tiles_x) + ti)
      done
    done;
    !acc
  end

type wacc = {
  mutable a_ix : int;
  mutable a_iy : int;
  mutable a_solves : int;
  mutable a_moves : int;
  mutable a_hpwl : int;
  mutable a_align : int;
  mutable a_ov : int;
}

let compute (m : Model.t) =
  let windows : (string, wacc) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let last_route = ref None in
  Model.iter m (fun ~depth:_ s ->
      if String.equal s.name "route" then last_route := Some s
      else if String.equal s.name "distopt.window" then begin
        match
          ( Model.attr_int s "x0_dbu",
            Model.attr_int s "y0_dbu",
            Model.attr_int s "x1_dbu",
            Model.attr_int s "y1_dbu" )
        with
        | Some x0, Some y0, Some x1, Some y1 ->
          let key = Printf.sprintf "%d:%d:%d:%d" x0 y0 x1 y1 in
          let acc =
            match Hashtbl.find_opt windows key with
            | Some a -> a
            | None ->
              let a =
                {
                  a_ix = Option.value ~default:0 (Model.attr_int s "ix");
                  a_iy = Option.value ~default:0 (Model.attr_int s "iy");
                  a_solves = 0;
                  a_moves = 0;
                  a_hpwl = 0;
                  a_align = 0;
                  a_ov = 0;
                }
              in
              Hashtbl.add windows key a;
              order := (key, (x0, y0, x1, y1)) :: !order;
              a
          in
          let d k0 k1 =
            match (Model.attr_int s k0, Model.attr_int s k1) with
            | Some v0, Some v1 -> v1 - v0
            | _ -> 0
          in
          acc.a_solves <- acc.a_solves + 1;
          acc.a_moves <-
            acc.a_moves + Option.value ~default:0 (Model.attr_int s "moves");
          acc.a_hpwl <- acc.a_hpwl + d "hpwl0_dbu" "hpwl1_dbu";
          acc.a_align <- acc.a_align + d "align0" "align1";
          acc.a_ov <- acc.a_ov + d "ov0" "ov1"
        | _ -> ()
      end);
  let heatmap = Option.bind !last_route heatmap_of_span in
  let rows =
    List.sort
      (fun (_, (ax0, ay0, _, _)) (_, (bx0, by0, _, _)) ->
        match Int.compare ay0 by0 with
        | 0 -> Int.compare ax0 bx0
        | c -> c)
      !order
    |> List.map (fun (key, (x0, y0, x1, y1)) ->
           let a = Hashtbl.find windows key in
           {
             ix = a.a_ix;
             iy = a.a_iy;
             x0_dbu = x0;
             y0_dbu = y0;
             x1_dbu = x1;
             y1_dbu = y1;
             solves = a.a_solves;
             moves = a.a_moves;
             d_hpwl_dbu = a.a_hpwl;
             d_align = a.a_align;
             d_overlap = a.a_ov;
             overflow =
               (match heatmap with
               | Some h -> box_overflow h ~x0 ~y0 ~x1 ~y1
               | None -> 0);
           })
  in
  let nets =
    match !last_route with
    | None -> []
    | Some s ->
      let over =
        match Model.attr_str s "overflow_nets" with
        | Some v -> parse_pairs v
        | None -> []
      and failed =
        match Model.attr_str s "failed_nets" with
        | Some v -> parse_pairs v
        | None -> []
      in
      let tbl : (int, net_row) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (net_id, c) ->
          Hashtbl.replace tbl net_id
            { net_id; overflow = c; failed_subnets = 0 })
        over;
      List.iter
        (fun (net_id, c) ->
          match Hashtbl.find_opt tbl net_id with
          | Some r -> Hashtbl.replace tbl net_id { r with failed_subnets = c }
          | None ->
            Hashtbl.add tbl net_id
              { net_id; overflow = 0; failed_subnets = c })
        failed;
      List.sort
        (fun a b ->
          match Int.compare b.overflow a.overflow with
          | 0 -> Int.compare a.net_id b.net_id
          | c -> c)
        (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])
  in
  { windows = rows; heatmap; nets }

let density_scale = " .:-=+*#%@"

let render_heatmap (h : heatmap) =
  let maxc = Array.fold_left max 1 h.counts in
  let b = Buffer.create ((h.tiles_x + 3) * (h.tiles_y + 2)) in
  Buffer.add_string b
    (Printf.sprintf "congestion heatmap %dx%d tiles (%d tracks/tile, max %d)\n"
       h.tiles_x h.tiles_y h.tile_tracks
       (Array.fold_left max 0 h.counts));
  for tj = h.tiles_y - 1 downto 0 do
    Buffer.add_char b '|';
    for ti = 0 to h.tiles_x - 1 do
      let c = h.counts.((tj * h.tiles_x) + ti) in
      let ch =
        if c = 0 then density_scale.[0]
        else begin
          let idx = 1 + ((c - 1) * 8 / maxc) in
          density_scale.[min 9 idx]
        end
      in
      Buffer.add_char b ch
    done;
    Buffer.add_string b "|\n"
  done;
  Buffer.contents b

module J = Obs.Json

let window_json w =
  J.Obj
    [
      ("ix", J.Int w.ix);
      ("iy", J.Int w.iy);
      ("x0_dbu", J.Int w.x0_dbu);
      ("y0_dbu", J.Int w.y0_dbu);
      ("x1_dbu", J.Int w.x1_dbu);
      ("y1_dbu", J.Int w.y1_dbu);
      ("solves", J.Int w.solves);
      ("moves", J.Int w.moves);
      ("d_hpwl_dbu", J.Int w.d_hpwl_dbu);
      ("d_align", J.Int w.d_align);
      ("d_overlap", J.Int w.d_overlap);
      ("overflow", J.Int w.overflow);
    ]

let to_json t =
  J.Obj
    [
      ("windows", J.List (List.map window_json t.windows));
      ( "heatmap",
        match t.heatmap with
        | None -> J.Null
        | Some h ->
          J.Obj
            [
              ("tiles_x", J.Int h.tiles_x);
              ("tiles_y", J.Int h.tiles_y);
              ("tile_tracks", J.Int h.tile_tracks);
              ("pitch_dbu", J.Int h.pitch_dbu);
              ( "counts",
                J.List (Array.to_list (Array.map (fun c -> J.Int c) h.counts))
              );
            ] );
      ( "nets",
        J.List
          (List.map
             (fun n ->
               J.Obj
                 [
                   ("net_id", J.Int n.net_id);
                   ("overflow", J.Int n.overflow);
                   ("failed_subnets", J.Int n.failed_subnets);
                 ])
             t.nets) );
    ]
