type step = {
  name : string;
  depth : int;
  start_ns : int;
  end_ns : int;
  self_ns : int;
}

(* [walk spans ~depth ~lo ~hi] covers the interval (lo, hi] backward with
   spans of one sibling level, emitting steps into [out] and returning
   the covered total. Selection: among unused spans overlapping
   (lo, frontier), the one ending last — it bounded the frontier — with
   ties broken by later start, then lexicographically smaller name.
   Used-flags (not physical identity) retire spans, so duplicate values
   are handled and the walk terminates after at most one pick per span. *)
let rec walk (spans : Model.span list) ~depth ~lo ~hi out =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  let used = Array.make n false in
  let coverage = ref 0 in
  let cur = ref hi in
  let stop = ref false in
  while (not !stop) && !cur > lo do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      let s = arr.(i) in
      if (not used.(i)) && s.Model.start_ns < !cur && Model.end_ns s > lo
      then
        if !best < 0 then best := i
        else begin
          let b = arr.(!best) in
          let se = Model.end_ns s and be = Model.end_ns b in
          if
            se > be
            || (se = be
               && (s.start_ns > b.start_ns
                  || (s.start_ns = b.start_ns
                     && String.compare s.name b.name < 0)))
          then best := i
        end
    done;
    if !best < 0 then stop := true (* gap: unexplained at this level *)
    else begin
      used.(!best) <- true;
      let s = arr.(!best) in
      let seg_lo = max s.start_ns lo and seg_hi = min (Model.end_ns s) !cur in
      if seg_hi > seg_lo then begin
        let child_cov =
          walk s.children ~depth:(depth + 1) ~lo:seg_lo ~hi:seg_hi out
        in
        coverage := !coverage + (seg_hi - seg_lo);
        out :=
          {
            name = s.name;
            depth;
            start_ns = seg_lo;
            end_ns = seg_hi;
            self_ns = seg_hi - seg_lo - child_cov;
          }
          :: !out;
        cur := seg_lo
      end
      (* zero-width overlap: retire the span and rescan; never move the
         frontier for a span that covered nothing *)
    end
  done;
  !coverage

let compute (t : Model.t) =
  match t.spans with
  | [] -> []
  | s0 :: rest ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (s : Model.span) ->
          (min lo s.start_ns, max hi (Model.end_ns s)))
        (s0.Model.start_ns, Model.end_ns s0)
        rest
    in
    let out = ref [] in
    ignore (walk t.spans ~depth:0 ~lo ~hi out);
    List.sort
      (fun a b ->
        match Int.compare a.start_ns b.start_ns with
        | 0 -> (
          match Int.compare a.depth b.depth with
          | 0 -> String.compare a.name b.name
          | c -> c)
        | c -> c)
      !out

let total_ns steps = List.fold_left (fun a s -> a + s.self_ns) 0 steps
