type attr = [ `Int of int | `Float of float | `Str of string ]

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  attrs : (string * attr) list;
  children : span list;
}

type hist = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
}

type t = {
  spans : span list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

let end_ns s = s.start_ns + s.dur_ns

let attr_int s k =
  match List.assoc_opt k s.attrs with
  | Some (`Int i) -> Some i
  | Some (`Float f) -> Some (int_of_float f)
  | _ -> None

let attr_str s k =
  match List.assoc_opt k s.attrs with Some (`Str v) -> Some v | _ -> None

(* --- parsing -------------------------------------------------------- *)

module J = Obs.Json

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let as_int path = function
  | J.Int i -> i
  | J.Float f -> int_of_float f
  | _ -> bad "%s: expected a number" path

let as_float path = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> bad "%s: expected a number" path

let as_str path = function
  | J.Str s -> s
  | _ -> bad "%s: expected a string" path

let as_obj path = function
  | J.Obj kvs -> kvs
  | _ -> bad "%s: expected an object" path

let as_list path = function
  | J.List l -> l
  | _ -> bad "%s: expected an array" path

let parse_attr path = function
  | J.Int i -> `Int i
  | J.Float f -> `Float f
  | J.Str s -> `Str s
  | _ -> bad "%s: expected a number or string attribute" path

let field path kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> bad "%s: missing field %S" path k

let rec parse_span path j =
  let kvs = as_obj path j in
  let name = as_str (path ^ ".name") (field path kvs "name") in
  let path = path ^ ":" ^ name in
  {
    name;
    start_ns = as_int (path ^ ".start_ns") (field path kvs "start_ns");
    dur_ns = as_int (path ^ ".dur_ns") (field path kvs "dur_ns");
    attrs =
      (match List.assoc_opt "attrs" kvs with
      | None -> []
      | Some a ->
        List.map
          (fun (k, v) -> (k, parse_attr (path ^ ".attrs." ^ k) v))
          (as_obj (path ^ ".attrs") a));
    children =
      (match List.assoc_opt "children" kvs with
      | None -> []
      | Some c ->
        List.map (parse_span path) (as_list (path ^ ".children") c));
  }

let parse_hist path j =
  let kvs = as_obj path j in
  {
    bounds =
      Array.of_list
        (List.map
           (as_float (path ^ ".bounds"))
           (as_list (path ^ ".bounds") (field path kvs "bounds")));
    counts =
      Array.of_list
        (List.map
           (as_int (path ^ ".counts"))
           (as_list (path ^ ".counts") (field path kvs "counts")));
    count = as_int (path ^ ".count") (field path kvs "count");
    sum = as_float (path ^ ".sum") (field path kvs "sum");
  }

let of_json j =
  match
    let kvs = as_obj "trace" j in
    let schema = as_str "schema" (field "trace" kvs "schema") in
    if not (String.equal schema Obs.Schemas.trace) then
      bad "unsupported schema %S (want %S)" schema Obs.Schemas.trace;
    {
      spans =
        List.map (parse_span "spans")
          (as_list "spans" (field "trace" kvs "spans"));
      counters =
        List.map
          (fun (k, v) -> (k, as_int ("counters." ^ k) v))
          (as_obj "counters" (field "trace" kvs "counters"));
      gauges =
        List.map
          (fun (k, v) -> (k, as_float ("gauges." ^ k) v))
          (as_obj "gauges" (field "trace" kvs "gauges"));
      histograms =
        List.map
          (fun (k, v) -> (k, parse_hist ("histograms." ^ k) v))
          (as_obj "histograms" (field "trace" kvs "histograms"));
    }
  with
  | t -> Ok t
  | exception Bad m -> Error m

let of_string s =
  match J.parse s with
  | Error m -> Error ("bad JSON: " ^ m)
  | Ok j -> of_json j

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | s -> (
    match of_string s with
    | Ok t -> Ok t
    | Error m -> Error (Printf.sprintf "%s: %s" path m))

(* --- traversal ------------------------------------------------------ *)

let iter t f =
  let rec go depth s =
    f ~depth s;
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) t.spans

let wall_ns t =
  match t.spans with
  | [] -> 0
  | s0 :: rest ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) s -> (min lo s.start_ns, max hi (end_ns s)))
        (s0.start_ns, end_ns s0)
        rest
    in
    hi - lo

let prune ~prefixes t =
  match prefixes with
  | [] -> t
  | _ ->
    let drop name =
      List.exists (fun p -> String.starts_with ~prefix:p name) prefixes
    in
    let rec spans l =
      List.concat_map
        (fun s ->
          let children = spans s.children in
          if drop s.name then children else [ { s with children } ])
        l
    in
    let keep l = List.filter (fun (k, _) -> not (drop k)) l in
    {
      spans = spans t.spans;
      counters = keep t.counters;
      gauges = keep t.gauges;
      histograms = keep t.histograms;
    }

(* Mirrors [Obs.Histogram.percentile] bucket for bucket, so a report
   recomputed from a parsed trace agrees with the emitter's own p50/p90/
   p99 fields. *)
let hist_percentile (h : hist) q =
  if h.count = 0 then 0.0
  else begin
    let nb = Array.length h.bounds in
    let target = q *. float_of_int h.count in
    let i = ref 0 and cum = ref 0.0 in
    while !i < nb && !cum +. float_of_int h.counts.(!i) < target do
      cum := !cum +. float_of_int h.counts.(!i);
      incr i
    done;
    if !i >= nb then (if nb = 0 then 0.0 else h.bounds.(nb - 1))
    else begin
      let lower = if !i = 0 then 0.0 else h.bounds.(!i - 1) in
      let upper = h.bounds.(!i) in
      let in_bucket = float_of_int h.counts.(!i) in
      let frac =
        if in_bucket <= 0.0 then 1.0
        else Float.min 1.0 ((target -. !cum) /. in_bucket)
      in
      lower +. (frac *. (upper -. lower))
    end
  end
