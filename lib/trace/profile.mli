(** Aggregated per-span-name profile of a trace: call counts, total and
    self wall time, and exact-duration percentiles (computed from the
    recorded durations, not histogram buckets — every span carries its
    own [dur_ns], so no interpolation is needed). *)

type row = {
  name : string;
  calls : int;
  total_ns : int;   (** summed durations of all spans with this name *)
  self_ns : int;    (** total minus time covered by child spans *)
  min_ns : int;
  max_ns : int;
  p50_ns : int;     (** nearest-rank percentiles of the durations *)
  p90_ns : int;
  p99_ns : int;
}

(** [rows t] aggregates the whole forest, sorted by total time
    descending (ties broken by name, so output is deterministic). *)
val rows : Model.t -> row list

(** [to_json t] is the machine-readable report — schema
    [vm1dp-trace-report/1] ([Obs.Schemas.trace_report]): the profile rows
    plus the trace's counters, gauges and histogram summaries
    (count/sum/p50/p90/p99), all under the conventions above. *)
val to_json : Model.t -> Obs.Json.t
