(** Structural and timing diff of two traces — the engine behind the
    [@perf-gate] alias. The comparison is deliberately two-speed:

    - {b strict} on everything deterministic: the multiset of span names,
      the multiset of parent->child edges, counter values, histogram
      counts. Any change is a failure — these only move when the code's
      behaviour moves.
    - {b tolerant} on everything wall-clock: per-name total times and
      gauge/histogram-sum values compare within configurable relative +
      absolute bands, so machine noise never fails the gate.

    Nondeterministic scheduling spans (the [exec.] wrappers, whose
    nesting depends on which domain claimed a task first) are pruned
    via [ignore] before comparing; see [Model.prune]. *)

type config = {
  time_rel : float;     (** relative band on per-name total span time *)
  time_abs_ns : int;    (** absolute slack added on top, ns *)
  gauge_rel : float;    (** relative band on gauges and histogram sums *)
  gauge_abs : float;    (** absolute slack for gauges/sums *)
  alloc_rel : float;
  (** relative band on allocation gauges — any gauge whose name contains
      ["minor_words"] (e.g. [distopt.minor_words_per_window],
      [route.minor_words_per_subnet]); an allocation regression past
      this band fails the gate like a time regression would *)
  alloc_abs : float;    (** absolute slack for allocation gauges, words *)
  ignore_prefixes : string list;
}

(** 25% + 50ms on times, 10% + 0.5 on gauges, 15% + 1024 words on
    allocation gauges, nothing ignored. *)
val default : config

type severity =
  | Structure   (** span/counter/gauge sets differ — always fails *)
  | Regression  (** a strict value changed or a band was exceeded *)
  | Info        (** noteworthy but harmless, e.g. a big improvement *)

type issue = {
  severity : severity;
  what : string;  (** one deterministic human-readable line *)
}

type verdict = {
  issues : issue list;  (** deterministic order (sorted by name) *)
  pass : bool;          (** no [Structure], no [Regression] *)
}

(** [run config ~baseline ~current] prunes both traces and compares.
    The timing band is boundary-exact: a total of exactly
    [old * (1 + time_rel) + time_abs_ns] still passes; one nanosecond
    more fails. A trace always passes against itself. *)
val run : config -> baseline:Model.t -> current:Model.t -> verdict
