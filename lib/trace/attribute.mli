(** Per-window QoR attribution and congestion heatmap, computed entirely
    from the trace — the [distopt.window] spans carry window identity and
    before/after QoR attrs, the [route] span carries the tiled overflow
    map and the congested-net ids (see [Dist_opt.run] / [Route.Router]),
    so no design files are needed at analysis time.

    Windows are keyed by their DBU bounding box: DistOpt passes run with
    different grid offsets, so grid indices alone do not identify a
    region. All solves of the same box (across passes, across worker
    domains) fold into one row. *)

type window_row = {
  ix : int;           (** window-grid indices of the first solve seen *)
  iy : int;
  x0_dbu : int;       (** the window's bounding box — the grouping key *)
  y0_dbu : int;
  x1_dbu : int;
  y1_dbu : int;
  solves : int;       (** [distopt.window] spans folded into this row *)
  moves : int;
  d_hpwl_dbu : int;   (** summed HPWL delta; negative = improvement *)
  d_align : int;      (** dM1 alignments gained *)
  d_overlap : int;    (** OpenM1 overlap-sum delta *)
  overflow : int;     (** heat counts of tiles intersecting the box *)
}

type heatmap = {
  tiles_x : int;
  tiles_y : int;
  tile_tracks : int;  (** tile side length in routing tracks *)
  pitch_dbu : int;    (** track pitch; tile side = tile_tracks * pitch *)
  counts : int array; (** row-major [tiles_x * tiles_y] overflow counts *)
}

type net_row = {
  net_id : int;
  overflow : int;        (** edge occurrences on overflowed edges *)
  failed_subnets : int;
}

type t = {
  windows : window_row list;  (** sorted by (y0, x0) *)
  heatmap : heatmap option;   (** from the last [route] span, if any *)
  nets : net_row list;        (** sorted by overflow desc, then id *)
}

val compute : Model.t -> t

(** ASCII rendering of the heatmap, highest row first (chip orientation),
    one character per tile on the " .:-=+*#%@" density scale. *)
val render_heatmap : heatmap -> string

val to_json : t -> Obs.Json.t
