let self_ns (s : Model.span) =
  let child =
    List.fold_left (fun a (c : Model.span) -> a + c.dur_ns) 0 s.children
  in
  max 0 (s.dur_ns - child)

let folded (t : Model.t) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec visit stack (s : Model.span) =
    let stack =
      match stack with "" -> s.name | _ -> stack ^ ";" ^ s.name
    in
    let self = self_ns s in
    if self > 0 then begin
      match Hashtbl.find_opt tbl stack with
      | Some v -> Hashtbl.replace tbl stack (v + self)
      | None -> Hashtbl.add tbl stack self
    end;
    List.iter (visit stack) s.children
  in
  List.iter (visit "") t.spans;
  let lines =
    List.sort String.compare
      (Hashtbl.fold
         (fun stack v acc -> Printf.sprintf "%s %d" stack v :: acc)
         tbl [])
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

module J = Obs.Json

(* Greedy lane packing: roots sorted by start time go to the first lane
   whose previous occupant has already ended. Sequential runs collapse
   to one lane; k concurrently-live domains need exactly k. *)
let lanes roots =
  let roots =
    List.stable_sort
      (fun (a : Model.span) (b : Model.span) ->
        match Int.compare a.start_ns b.start_ns with
        | 0 -> (
          match Int.compare (Model.end_ns a) (Model.end_ns b) with
          | 0 -> String.compare a.name b.name
          | c -> c)
        | c -> c)
      roots
  in
  let lanes : (int * Model.span list) list ref = ref [] in
  List.iter
    (fun (s : Model.span) ->
      let rec place = function
        | [] -> [ (Model.end_ns s, [ s ]) ]
        | (last_end, members) :: rest when last_end <= s.Model.start_ns ->
          (Model.end_ns s, s :: members) :: rest
        | lane :: rest -> lane :: place rest
      in
      lanes := place !lanes)
    roots;
  List.map (fun (_, members) -> List.rev members) !lanes

let speedscope (t : Model.t) =
  (* frame table: unique span names, sorted *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Model.iter t (fun ~depth:_ s -> Hashtbl.replace seen s.name ());
  let names =
    List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  in
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.add index n i) names;
  let frame n = Hashtbl.find index n in
  let profile lane_idx members =
    let events = ref [] in
    let cursor = ref 0 in
    (* The cursor clamps every emitted timestamp to be monotone and every
       close to stay within its parent, so the profile stays valid even
       for hand-edited traces with sloppy nesting. *)
    let emit kind fr at =
      cursor := max !cursor at;
      events :=
        J.Obj [ ("type", J.Str kind); ("frame", J.Int fr); ("at", J.Int !cursor) ]
        :: !events
    in
    let rec visit ~hi (s : Model.span) =
      let fr = frame s.name in
      emit "O" fr s.start_ns;
      List.iter (visit ~hi:(min hi (Model.end_ns s))) s.children;
      emit "C" fr (min hi (Model.end_ns s))
    in
    List.iter (fun s -> visit ~hi:(Model.end_ns s) s) members;
    let start_v =
      match members with [] -> 0 | s :: _ -> s.Model.start_ns
    in
    J.Obj
      [
        ("type", J.Str "evented");
        ("name", J.Str (Printf.sprintf "lane %d" lane_idx));
        ("unit", J.Str "nanoseconds");
        ("startValue", J.Int start_v);
        ("endValue", J.Int !cursor);
        ("events", J.List (List.rev !events));
      ]
  in
  J.Obj
    [
      ("$schema", J.Str "https://www.speedscope.app/file-format-schema.json");
      ( "shared",
        J.Obj
          [
            ( "frames",
              J.List (List.map (fun n -> J.Obj [ ("name", J.Str n) ]) names) );
          ] );
      ("profiles", J.List (List.mapi profile (lanes t.spans)));
      ("name", J.Str "vm1dp trace");
      ("exporter", J.Str "vm1trace");
      ("activeProfileIndex", J.Int 0);
    ]
