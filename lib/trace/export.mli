(** Trace exporters for standard visualisers.

    [folded] is Brendan Gregg's folded-stack format (one
    ["root;child;leaf value"] line per unique stack, value = self time in
    ns), ready for [flamegraph.pl]. Lines are sorted, zero-self stacks
    dropped, so output is deterministic and minimal.

    [speedscope] is the {{:https://www.speedscope.app/}speedscope}
    evented JSON format. A single evented profile cannot hold overlapping
    roots, so parallel roots (worker-domain spans) are packed greedily
    into non-overlapping lanes and each lane becomes one profile — the
    timeline view then shows the domains side by side. *)

val folded : Model.t -> string

val speedscope : Model.t -> Obs.Json.t
