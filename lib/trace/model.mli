(** Parsed [vm1dp-trace/1] documents (see [Obs.write_trace]): the span
    forest plus the end-of-run counter/gauge/histogram snapshot. This is
    the input model of every analysis in [lib/trace]; parsing is strict
    about the schema tag and the field types so a regression gate never
    silently passes on a half-written file. *)

type attr = [ `Int of int | `Float of float | `Str of string ]

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  attrs : (string * attr) list;
  children : span list;  (** document order = start order per parent *)
}

type hist = {
  bounds : float array;  (** upper bounds, last is the overflow bucket *)
  counts : int array;
  count : int;
  sum : float;
}

type t = {
  spans : span list;  (** roots; spans opened on worker domains surface
                          here as their own roots *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

val end_ns : span -> int

(** Attribute lookup; [attr_int] also accepts a float-typed attribute by
    truncation, mirroring the leniency of [of_json] on numbers. *)
val attr_int : span -> string -> int option

val attr_str : span -> string -> string option

(** [of_json j] checks the [vm1dp-trace/1] schema tag and the shape of
    every field. Numbers are accepted as [Int] or [Float] wherever either
    can appear (JSON does not distinguish them). *)
val of_json : Obs.Json.t -> (t, string) result

val of_string : string -> (t, string) result

(** [load path] reads and parses the file; errors (unreadable file, bad
    JSON, wrong schema) come back as [Error] — callers decide the exit
    code. *)
val load : string -> (t, string) result

(** [iter t f] visits every span in pre-order with its depth (roots are
    depth 0). *)
val iter : t -> (depth:int -> span -> unit) -> unit

(** [wall_ns t] is the wall-clock extent of the forest:
    max end - min start over the roots, 0 for an empty forest. *)
val wall_ns : t -> int

(** [prune ~prefixes t] removes every span whose name starts with one of
    the prefixes, splicing its children into its place (they keep their
    own names and times), and drops counters/gauges/histograms matching
    the same prefixes. This is how analyses ignore the nondeterministic
    [exec.] scheduling spans: an [exec.task] wrapper disappears but the
    window solve it ran stays, reparented to wherever the wrapper sat. *)
val prune : prefixes:string list -> t -> t

(** [hist_percentile h q] interpolates the q-quantile from the bucket
    counts exactly like [Obs.Histogram.percentile]; 0 when empty. *)
val hist_percentile : hist -> float -> float
