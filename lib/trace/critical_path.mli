(** Wall-clock critical path through the span forest.

    The path explains the elapsed time of the run, not the sum of work:
    when DistOpt windows or router shards run on several [lib/exec]
    domains at once, their spans overlap in time and only the chain that
    actually bounded the finish line appears. The walk goes backward from
    the latest span end: at each level it picks the span still running at
    the current frontier that ends last, attributes the covered interval
    to it, descends into its children for refinement, and continues from
    that span's start — so parallel siblings hiding under a longer one
    contribute nothing, which is exactly the wall-clock semantics.

    Ties (identical end then start times) break by span name, so the
    result is deterministic for a given trace file. *)

type step = {
  name : string;
  depth : int;      (** nesting depth of the span (roots are 0) *)
  start_ns : int;   (** covered interval, clipped to the path segment *)
  end_ns : int;
  self_ns : int;    (** covered time not explained by deeper steps *)
}

(** [compute t] is the path in chronological order. The sum of [self_ns]
    over all steps ([total_ns]) is at most [Model.wall_ns t], and equals
    a root's duration when the forest is that single root — gaps between
    roots (idle time) are not attributed to any step. *)
val compute : Model.t -> step list

val total_ns : step list -> int
