module J = Obs.Json

(* --- job records --- *)

type job_record = {
  jr_seq : int;
  jr_id : string option;
  jr_source : string;
  jr_design : string option;
  jr_solver : string option;
  jr_status : string;
  jr_error_code : string option;
  jr_digest : string option;
  jr_cache : (string * bool) list;
  jr_queue_ms : float;
  jr_execute_ms : float;
}

let job_record_json r =
  J.Obj
    [
      ("schema", J.Str Obs.Schemas.joblog);
      ("seq", J.Int r.jr_seq);
      ("id", match r.jr_id with Some s -> J.Str s | None -> J.Null);
      ("source", J.Str r.jr_source);
      ("design", match r.jr_design with Some s -> J.Str s | None -> J.Null);
      ("solver", match r.jr_solver with Some s -> J.Str s | None -> J.Null);
      ("status", J.Str r.jr_status);
      ( "error_code",
        match r.jr_error_code with Some s -> J.Str s | None -> J.Null );
      ("digest", match r.jr_digest with Some s -> J.Str s | None -> J.Null);
      ("cache", J.Obj (List.map (fun (k, hit) -> (k, J.Bool hit)) r.jr_cache));
      ("queue_ms", J.Float r.jr_queue_ms);
      ("execute_ms", J.Float r.jr_execute_ms);
    ]

(* --- state --- *)

(* Per-span-name running totals, folded from snapshot deltas so a
   scrape is O(new spans), not O(history). *)
type span_tot = { mutable st_calls : int; mutable st_total_ns : int64 }

type t = {
  start_ns : int64;
  mutable seq : int;              (* serve-loop confined *)
  ring : job_record Obs.Ring.t;
  job_log : out_channel option;   (* serve-loop confined *)
  cursor : Obs.cursor;            (* admin-consumer confined *)
  span_aggs : (string, span_tot) Hashtbl.t;  (* admin-consumer confined *)
}

let default_ring_capacity = 64

let create ?(ring_capacity = default_ring_capacity) ?job_log () =
  {
    start_ns = Obs.now_ns ();
    seq = 0;
    ring = Obs.Ring.create ring_capacity;
    job_log;
    cursor = Obs.cursor ();
    span_aggs = Hashtbl.create 64;
  }

let close t = Option.iter close_out t.job_log

(* --- recording (serve loop side) --- *)

let ms_of_ns ns = Int64.to_float ns /. 1e6

let source_kind (job : Protocol.job) =
  match job.Protocol.source with
  | Protocol.Generated _ -> "generated"
  | Protocol.External (Protocol.Inline _) -> "external-inline"
  | Protocol.External (Protocol.Path _) -> "external-path"

let record_of_reply t ~queue_ns ~exec_ns (reply : Protocol.reply) =
  t.seq <- t.seq + 1;
  let jr_queue_ms = ms_of_ns queue_ns
  and jr_execute_ms = ms_of_ns exec_ns in
  match reply with
  | Protocol.Ok { job; result; artifacts; _ } ->
    {
      jr_seq = t.seq;
      jr_id = Some job.Protocol.id;
      jr_source = source_kind job;
      jr_design = Some result.Protocol.r_design;
      jr_solver =
        Option.map Vm1.Scp_solver.mode_to_string job.Protocol.solver;
      jr_status = "ok";
      jr_error_code = None;
      jr_digest = Some result.Protocol.digest;
      jr_cache = artifacts;
      jr_queue_ms;
      jr_execute_ms;
    }
  | Protocol.Err e ->
    {
      jr_seq = t.seq;
      jr_id = e.Protocol.err_id;
      jr_source = "invalid";
      jr_design = None;
      jr_solver = None;
      jr_status = "error";
      jr_error_code = Some (Protocol.error_code_string e.Protocol.code);
      jr_digest = None;
      jr_cache = [];
      jr_queue_ms;
      jr_execute_ms;
    }

let record_job t ~queue_ns ~exec_ns reply =
  let r = record_of_reply t ~queue_ns ~exec_ns reply in
  Obs.Ring.push t.ring r;
  match t.job_log with
  | None -> ()
  | Some oc ->
    output_string oc (J.to_string (job_record_json r));
    output_char oc '\n';
    flush oc

(* --- admin views (read-only over Obs; never bumps a metric) --- *)

let uptime_s t ~now = Int64.to_float (Int64.sub now t.start_ns) /. 1e9

let hist_json (s : Obs.Histogram.snap) =
  J.Obj
    [
      ("count", J.Int s.Obs.Histogram.count);
      ("sum", J.Float s.Obs.Histogram.sum);
      ("p50", J.Float (Obs.Histogram.percentile s 0.50));
      ("p90", J.Float (Obs.Histogram.percentile s 0.90));
      ("p99", J.Float (Obs.Histogram.percentile s 0.99));
    ]

let window_horizons_s = [ 10; 60 ]

let window_json horizon_s =
  let v =
    Obs.Window.read ~horizon_ns:(Int64.of_int (horizon_s * 1_000_000_000)) ()
  in
  J.Obj
    [
      ("horizon_s", J.Int horizon_s);
      ( "counters",
        J.Obj
          (List.map (fun (n, c) -> (n, J.Int c)) v.Obs.Window.v_counters) );
      ( "gauges",
        J.Obj
          (List.map
             (fun (n, g) ->
               (n, match g with Some x -> J.Float x | None -> J.Null))
             v.Obs.Window.v_gauges) );
      ( "histograms",
        J.Obj
          (List.map
             (fun (n, s) -> (n, hist_json s))
             v.Obs.Window.v_histograms) );
    ]

(* Fold spans completed since the previous scrape into the running
   per-name totals, then render every total. Hashtbl iteration order is
   unspecified, so the rows are collected and sorted by name. *)
let spans_json t =
  let delta = Obs.snapshot_delta t.cursor in
  List.iter
    (fun (name, agg) ->
      match Hashtbl.find_opt t.span_aggs name with
      | Some st ->
        st.st_calls <- st.st_calls + agg.Obs.calls;
        st.st_total_ns <- Int64.add st.st_total_ns agg.Obs.total_ns
      | None ->
        Hashtbl.add t.span_aggs name
          { st_calls = agg.Obs.calls; st_total_ns = agg.Obs.total_ns })
    (Obs.aggregate_spans delta.Obs.spans);
  J.Obj
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (Hashtbl.fold
          (fun name st acc ->
            ( name,
              J.Obj
                [
                  ("calls", J.Int st.st_calls);
                  ("total_ms", J.Float (ms_of_ns st.st_total_ns));
                ] )
            :: acc)
          t.span_aggs []))

let metrics_json t =
  let now = Obs.now_ns () in
  let snap = Obs.snapshot () in
  J.Obj
    [
      ("schema", J.Str Obs.Schemas.metrics);
      ("uptime_s", J.Float (uptime_s t ~now));
      ( "cumulative",
        J.Obj
          [
            ( "counters",
              J.Obj (List.map (fun (n, c) -> (n, J.Int c)) snap.Obs.counters)
            );
            ( "gauges",
              J.Obj (List.map (fun (n, g) -> (n, J.Float g)) snap.Obs.gauges)
            );
            ( "histograms",
              J.Obj
                (List.map (fun (n, s) -> (n, hist_json s)) snap.Obs.histograms)
            );
          ] );
      ( "windows",
        if Obs.Window.enabled () then
          J.List (List.map window_json window_horizons_s)
        else J.List [] );
      ("spans", spans_json t);
    ]

let counter_value name = Obs.Counter.value (Obs.counter name)

let rate_json hits misses =
  let total = hits + misses in
  (* nan prints as null: no traffic yet means no rate, not 0% *)
  let rate =
    if total = 0 then Float.nan else float_of_int hits /. float_of_int total
  in
  J.Obj
    [ ("hits", J.Int hits); ("misses", J.Int misses); ("hit_rate", J.Float rate) ]

let health_json t =
  let now = Obs.now_ns () in
  let stat = Gc.quick_stat () in
  let cache_hits = counter_value "serve.cache_hits"
  and cache_misses = counter_value "serve.cache_misses"
  and wcache_hits = counter_value "distopt.wcache_hits"
  and wcache_misses = counter_value "distopt.wcache_misses" in
  J.Obj
    [
      ("schema", J.Str Obs.Schemas.health);
      ("ready", J.Bool true);
      ("uptime_s", J.Float (uptime_s t ~now));
      ("jobs", J.Int (counter_value "serve.jobs"));
      ("errors", J.Int (counter_value "serve.errors"));
      ( "queue_depth",
        J.Float (Obs.Gauge.value (Obs.gauge "serve.queue_depth")) );
      ("pool_jobs", J.Int (Exec.jobs ()));
      ("artifact_cache", rate_json cache_hits cache_misses);
      ("wcache", rate_json wcache_hits wcache_misses);
      ( "gc",
        J.Obj
          [
            ("minor_words", J.Float stat.Gc.minor_words);
            ("promoted_words", J.Float stat.Gc.promoted_words);
            ("major_words", J.Float stat.Gc.major_words);
            ("minor_collections", J.Int stat.Gc.minor_collections);
            ("major_collections", J.Int stat.Gc.major_collections);
            ("heap_words", J.Int stat.Gc.heap_words);
          ] );
    ]

let jobs_json t =
  let recent = Obs.Ring.to_list t.ring in
  J.Obj
    [
      ("schema", J.Str Obs.Schemas.joblog);
      ("count", J.Int (List.length recent));
      ("recent", J.List (List.map job_record_json recent));
    ]

let handle t verb =
  match String.trim verb with
  | "metrics" -> metrics_json t
  | "health" -> health_json t
  | "jobs" -> jobs_json t
  | other ->
    J.Obj
      [
        ( "error",
          J.Str
            (Printf.sprintf "unknown admin verb %S (metrics|health|jobs)" other)
        );
      ]
