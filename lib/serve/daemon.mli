(** The batch-service loop: a stream of request lines in, a stream of
    reply lines out, jobs scheduled onto the [lib/exec] domain pool.

    Transport-agnostic on purpose: the loop pulls lines from a
    [next_line] thunk and pushes replies through [emit], so [bin/vm1d]
    can serve stdin/stdout and a Unix socket with the same code, and
    tests can serve from a string list with no processes involved.

    Scheduling and ordering:

    - Each parsed job is resolved against the artifact cache on the
      calling thread ({!Engine.prepare}), then submitted to the pool.
      Up to [max_in_flight] jobs run concurrently.
    - Replies are emitted in {e request order}, never completion order
      — a client can match replies to requests positionally, and the
      emitted stream for a given request stream is reproducible.
    - Lines that fail to parse become error replies in the same
      ordered stream; the loop never stops on them.
    - A job that requests a trace is a serialisation point: the loop
      drains in-flight jobs, runs the traced job inline, and only then
      resumes pipelining (so the trace contains that job's spans only).

    Observability (all no-ops unless [Obs.set_enabled]): counters
    [serve.jobs], [serve.errors] (plus [serve.cache_hits] /
    [serve.cache_misses] from {!Cache}), gauge [serve.queue_depth]
    (in-flight jobs), histogram [serve.job_latency_ms] (from
    {!Engine}). *)

(** Totals for one serve loop, for exit reporting. *)
type stats = {
  jobs : int;    (** request lines read *)
  ok : int;      (** ok replies emitted *)
  errors : int;  (** error replies emitted *)
}

(** [serve ?max_in_flight cache ~next_line ~emit ()] pulls request
    lines until [next_line] returns [None], emits one reply line per
    request via [emit] (no trailing newline; the caller frames), and
    returns the totals. [max_in_flight] bounds concurrently-running
    jobs (default [2 * Exec.jobs ()], min 2) — the submission loop
    awaits the oldest job once the bound is reached, which is the
    backpressure that keeps a fast client from queueing unboundedly.
    [default_solver] (the [vm1d --solver] flag) fills in the window
    solver for requests that omit the ["solver"] field; a request's own
    field always wins. [telemetry], when given, receives one
    {!Telemetry.record_job} per emitted reply, with the job's queue
    wait (submit to execution start) split from its execute time;
    recording happens on the serve loop at emission, so it never runs
    on the pool and cannot reorder replies. *)
val serve :
  ?max_in_flight:int ->
  ?default_solver:Vm1.Scp_solver.mode ->
  ?telemetry:Telemetry.t ->
  Cache.t ->
  next_line:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  stats
