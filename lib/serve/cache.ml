type outcome = Hit | Miss

(* One store per artifact type: a Hashtbl used strictly as a key-value
   map (find/replace only, never iterated — hash order can leak into
   nothing) plus plain hit/miss tallies. Single-domain by contract; see
   the .mli. *)
type 'a store = {
  table : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  libraries : Pdk.Libgen.t store;
  netlists : Netlist.Design.t store;
  placements : Place.Placement.t store;
  externals : Place.Placement.t store;
  skeletons : Route.Grid.skeleton store;
}

exception Rejected of string

let c_hits = Obs.counter "serve.cache_hits"
let c_misses = Obs.counter "serve.cache_misses"

let new_store () = { table = Hashtbl.create 16; hits = 0; misses = 0 }

let create () =
  {
    libraries = new_store ();
    netlists = new_store ();
    placements = new_store ();
    externals = new_store ();
    skeletons = new_store ();
  }

let lookup store key make =
  match Hashtbl.find_opt store.table key with
  | Some v ->
    store.hits <- store.hits + 1;
    Obs.Counter.incr c_hits;
    (v, Hit)
  | None ->
    store.misses <- store.misses + 1;
    Obs.Counter.incr c_misses;
    let v = make () in
    Hashtbl.replace store.table key v;
    (v, Miss)

let library t arch =
  lookup t.libraries
    (Pdk.Cell_arch.to_string arch)
    (fun () -> Pdk.Libgen.generate (Pdk.Tech.default arch))

let netlist_key ~name ~arch ~scale =
  Printf.sprintf "%s/%s/%d"
    (Netlist.Designs.to_string name)
    (Pdk.Cell_arch.to_string arch)
    scale

let netlist t ~lib ~name ~arch ~scale =
  lookup t.netlists (netlist_key ~name ~arch ~scale) (fun () ->
      Netlist.Designs.make ~lib ~scale name arch)

let placement t ~design ~name ~arch ~scale ~utilization =
  let key =
    Printf.sprintf "%s/u%.17g" (netlist_key ~name ~arch ~scale) utilization
  in
  lookup t.placements key (fun () ->
      Report.Flow.prepare_placement ~utilization design)

(* A rejected DEF counts as a miss but is never stored: only placements
   that survived binding and the legality oracle enter the table, so a
   hit can skip both. *)
let external_placement t ~lib ~arch ~def_text =
  let key =
    Pdk.Cell_arch.to_string arch ^ "/"
    ^ Digest.to_hex (Digest.string def_text)
  in
  match
    lookup t.externals key (fun () ->
        match Io.Def.read lib def_text with
        | Error msg -> raise (Rejected msg)
        | Stdlib.Ok (design, pl) -> (
          let p = Place.Placement.of_def design pl in
          match Place.Legalize.check p with
          | [] -> p
          | v :: _ -> raise (Rejected ("illegal placement: " ^ v))))
  with
  | pair -> Stdlib.Ok pair
  | exception Rejected msg -> Error msg

let grid_skeleton t p =
  lookup t.skeletons (Route.Grid.skeleton_key p) (fun () ->
      Route.Grid.skeleton p)

let stats t =
  [
    ("external", t.externals.hits, t.externals.misses);
    ("grid", t.skeletons.hits, t.skeletons.misses);
    ("library", t.libraries.hits, t.libraries.misses);
    ("netlist", t.netlists.hits, t.netlists.misses);
    ("placement", t.placements.hits, t.placements.misses);
  ]
