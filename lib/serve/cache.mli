(** Content-keyed caches for the immutable cross-job artifacts of the
    batch service.

    Every one-shot run of the flow pays four start-up costs that do not
    depend on anything a job may mutate: generating the standard-cell
    library of an architecture, generating a netlist, computing the
    converged input placement the optimiser starts from, and installing
    the power-grid blockage of the routing grid. A cache holds each of
    these keyed by the parameters that determine its content, so a
    daemon serving many jobs pays them once.

    The soundness argument has two halves, and both are load-bearing:

    - {b Cached artifacts are immutable.} Jobs never write into a
      design, a library or a skeleton, and the cached placement is a
      master copy that jobs duplicate ([Place.Placement.copy]) before
      touching. The per-job mutable state starts at the copy.
    - {b Generation is deterministic.} Every generator behind a cache
      is a pure function of the key, so a hit returns exactly what a
      miss would have computed — cold, warm and interleaved service are
      byte-identical (checked by [test/test_serve.ml] and the
      [bench load] gate).

    A cache is confined to the domain that owns it: the daemon resolves
    artifacts on the submitting thread {e before} a job fans out to the
    pool, which is what keeps this module free of locks (and of the
    [domain-prims] lint rule). Hits and misses are counted both per
    store ({!stats}) and in the [serve.cache_hits] / [serve.cache_misses]
    observability counters. *)

type t

(** Whether a lookup was served from the store. *)
type outcome = Hit | Miss

(** Raised internally when an external DEF fails binding or the
    legality oracle; {!external_placement} catches it and returns the
    message as [Error] — it never escapes this module. *)
exception Rejected of string

val create : unit -> t

(** [library t arch] is the generated standard-cell library for [arch],
    keyed by the architecture name. *)
val library : t -> Pdk.Cell_arch.t -> Pdk.Libgen.t * outcome

(** [netlist t ~lib ~name ~arch ~scale] is the generated design, keyed
    by (design name, architecture, scale) — the design seed is a fixed
    function of the name, so the key covers everything the generator
    reads. [lib] (from {!library}, same [arch]) is used only on a miss;
    passing the dependency in keeps each store's hit/miss tally at
    exactly one count per job. *)
val netlist :
  t -> lib:Pdk.Libgen.t -> name:Netlist.Designs.name ->
  arch:Pdk.Cell_arch.t -> scale:int -> Netlist.Design.t * outcome

(** [placement t ~design ~name ~arch ~scale ~utilization] is the
    prepared input placement ([Report.Flow.prepare_placement]: global
    place + row-DP baseline), keyed by the netlist key plus the
    utilisation. [design] (from {!netlist}, same key fields) is used
    only on a miss. The returned placement is the shared master —
    callers must [Place.Placement.copy] it and never mutate it. *)
val placement :
  t -> design:Netlist.Design.t -> name:Netlist.Designs.name ->
  arch:Pdk.Cell_arch.t -> scale:int -> utilization:float ->
  Place.Placement.t * outcome

(** [external_placement t ~lib ~arch ~def_text] is the placement of an
    external-DEF job, keyed by (architecture, MD5 of the DEF text): the
    text is ingested through [Io.Def.read] against [lib] (from
    {!library}, same [arch]), mapped onto a placement and checked by
    the legality oracle ([Place.Legalize.check]). [Error] — a parse,
    binding or legality failure, as a human-readable string — is the
    client's fault ([bad_request] on the wire) and is never cached: a
    rejected DEF counts as a miss and re-validates on every submission.
    The returned placement is a shared master — callers must
    [Place.Placement.copy] it and never mutate it. *)
val external_placement :
  t -> lib:Pdk.Libgen.t -> arch:Pdk.Cell_arch.t -> def_text:string ->
  (Place.Placement.t * outcome, string) Stdlib.result

(** [grid_skeleton t p] is the routing-grid blockage skeleton for [p]'s
    die, keyed by {!Route.Grid.skeleton_key} (die tracks, architecture,
    row structure, PDN) — placements of different designs that share a
    die size share the skeleton. *)
val grid_skeleton : t -> Place.Placement.t -> Route.Grid.skeleton * outcome

(** [stats t] is [(store, hits, misses)] per artifact store, in a fixed
    order: [external], [grid], [library], [netlist], [placement]. *)
val stats : t -> (string * int * int) list
