type artifacts = {
  master : Place.Placement.t;  (** shared, read-only: copy before use *)
  skeleton : Route.Grid.skeleton;
  resolved : (string * bool) list;  (** per-store outcome, for the reply *)
}

type prepared = {
  job : Protocol.job;
  art : (artifacts, Protocol.error) result;
  resolve_ns : int64;
}

let hit = function Cache.Hit -> true | Cache.Miss -> false

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let prepare cache (job : Protocol.job) =
  let t0 = Obs.now_ns () in
  let bad_request message =
    Error { Protocol.code = Protocol.Bad_request; message;
            err_id = Some job.id }
  in
  let art =
    match
      match job.source with
      | Protocol.Generated { design; scale; util } ->
        let lib, l_o = Cache.library cache job.arch in
        let netlist, n_o =
          Cache.netlist cache ~lib ~name:design ~arch:job.arch ~scale
        in
        let master, p_o =
          Cache.placement cache ~design:netlist ~name:design ~arch:job.arch
            ~scale ~utilization:util
        in
        let skeleton, g_o = Cache.grid_skeleton cache master in
        Ok
          {
            master;
            skeleton;
            resolved =
              [
                ("library", hit l_o);
                ("netlist", hit n_o);
                ("placement", hit p_o);
                ("grid", hit g_o);
              ];
          }
      | Protocol.External src -> (
        let def_text =
          match src with
          | Protocol.Inline text -> Ok text
          | Protocol.Path path -> (
            match read_whole_file path with
            | text -> Ok text
            | exception Sys_error msg ->
              bad_request (Printf.sprintf "cannot read \"def_path\": %s" msg))
        in
        match def_text with
        | Error _ as e -> e
        | Ok text -> (
          let lib, l_o = Cache.library cache job.arch in
          match
            Cache.external_placement cache ~lib ~arch:job.arch ~def_text:text
          with
          | Error msg -> bad_request ("DEF rejected: " ^ msg)
          | Ok (master, e_o) ->
            let skeleton, g_o = Cache.grid_skeleton cache master in
            Ok
              {
                master;
                skeleton;
                resolved =
                  [
                    ("library", hit l_o);
                    ("external", hit e_o);
                    ("grid", hit g_o);
                  ];
              }))
    with
    | a -> a
    | exception e ->
      Error
        {
          Protocol.code = Protocol.Internal;
          message = "artifact resolution failed: " ^ Printexc.to_string e;
          err_id = Some job.id;
        }
  in
  { job; art; resolve_ns = Int64.sub (Obs.now_ns ()) t0 }

(* Marshal-free placement fingerprint: coordinates and orientations in
   textual form, hashed. Covers exactly the job-mutable state, so equal
   digests mean the optimiser made identical decisions. *)
let placement_digest (p : Place.Placement.t) =
  let b = Buffer.create (8 * Array.length p.Place.Placement.xs) in
  Array.iter
    (fun x ->
      Buffer.add_string b (string_of_int x);
      Buffer.add_char b ',')
    p.Place.Placement.xs;
  Buffer.add_char b ';';
  Array.iter
    (fun y ->
      Buffer.add_string b (string_of_int y);
      Buffer.add_char b ',')
    p.Place.Placement.ys;
  Buffer.add_char b ';';
  Array.iter
    (fun o ->
      Buffer.add_string b (Geom.Orient.to_string o);
      Buffer.add_char b ',')
    p.Place.Placement.orients;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* One window memo-cache per worker domain. Like Cache, a Wcache is
   domain-confined mutable state; jobs execute on pool workers, so each
   worker warms and probes only its own instance. Warm entries carry
   across jobs: a repeated job replays its converged windows. Byte
   identity is unaffected (hit ≡ miss), so replies stay identical
   whichever worker — warm or cold — picks a job up. *)
let wcache_slot = Exec.Dls.create (fun () -> Vm1.Wcache.create ())

let run_flow (job : Protocol.job) (a : artifacts) =
  let q = Place.Placement.copy a.master in
  let params =
    let base = Vm1.Params.default q.Place.Placement.tech in
    match job.alpha with
    | Some alpha -> { base with Vm1.Params.alpha }
    | None -> base
  in
  let router_config =
    { Route.Router.default_config with grid_skeleton = Some a.skeleton }
  in
  let config =
    { Vm1.Vm1_opt.default_config with
      Vm1.Vm1_opt.sequence = Vm1.Params.sequence job.sequence;
      mode = (match job.solver with Some m -> m | None -> `Greedy);
      parallel = false;
      wcache = Vm1.Vm1_opt.Shared_wcache (Exec.Dls.get wcache_slot) }
  in
  let init, clock_ps = Report.Flow.evaluate ~router_config params q in
  let (_ : Vm1.Vm1_opt.report) = Vm1.Vm1_opt.run ~config params q in
  let final, _ = Report.Flow.evaluate ~clock_ps ~router_config params q in
  let r_scale, r_util =
    match job.source with
    | Protocol.Generated { scale; util; _ } -> (Some scale, Some util)
    | Protocol.External _ -> (None, None)
  in
  {
    (* For external jobs the placement's design carries the DEF's
       [DESIGN] name; for generated ones it equals the request field. *)
    Protocol.r_design = q.Place.Placement.design.Netlist.Design.name;
    r_arch = Pdk.Cell_arch.to_string job.arch;
    r_scale;
    r_util;
    r_alpha = params.Vm1.Params.alpha;
    r_sequence = job.sequence;
    instances = Place.Placement.num_instances q;
    init;
    final;
    digest = placement_digest q;
  }

(* The trace blob of a traced job: the root spans whose start lies
   inside the job's run, over the daemon's cumulative metrics. Traced
   jobs run drained and inline (see Daemon), so those roots belong to
   this job alone. *)
let with_job_trace f =
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  let t0 = Obs.now_ns () in
  let finish () =
    let snap = Obs.snapshot () in
    let job_spans =
      List.filter
        (fun (s : Obs.Span.t) -> Int64.compare s.Obs.Span.start_ns t0 >= 0)
        snap.Obs.spans
    in
    Obs.set_enabled was_enabled;
    Obs.trace_json { snap with Obs.spans = job_spans }
  in
  match f () with
  | v -> (v, finish ())
  | exception e ->
    Obs.set_enabled was_enabled;
    raise e

let h_latency = Obs.histogram "serve.job_latency_ms"

let execute { job; art; resolve_ns } =
  match art with
  | Error e -> Protocol.Err e
  | Ok a -> (
    let t0 = Obs.now_ns () in
    match
      if job.want_trace then
        let result, trace = with_job_trace (fun () -> run_flow job a) in
        (result, Some trace)
      else (run_flow job a, None)
    with
    | result, trace ->
      let latency_ms =
        Int64.to_float (Int64.add resolve_ns (Int64.sub (Obs.now_ns ()) t0))
        /. 1e6
      in
      Obs.Histogram.observe h_latency latency_ms;
      Protocol.Ok
        { job; result; artifacts = a.resolved; latency_ms; trace }
    | exception e ->
      Protocol.Err
        {
          Protocol.code = Protocol.Internal;
          message = Printexc.to_string e;
          err_id = Some job.id;
        })

let run cache job = execute (prepare cache job)
