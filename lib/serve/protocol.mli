(** Codec for the [vm1dp-jobs/1] wire format of the batch-optimization
    daemon ([bin/vm1d]).

    The format is line-delimited JSON: every request and every reply is
    one JSON object on one ['\n']-terminated line, tagged with the
    schema [Obs.Schemas.jobs]. The full field-by-field specification —
    framing, defaults, error replies, versioning rules — lives in
    PROTOCOL.md at the repository root; this module is its executable
    form, and the protocol tests in [test/test_serve.ml] hold the two
    together.

    Parsing is total: any line, however malformed, maps to either a
    {!job} or a structured {!error} that the daemon turns into an error
    reply — a bad request must never take the daemon down. *)

(** {1 Requests} *)

(** Where an external job's DEF text comes from: inline on the request
    line (["def"]) or a daemon-local file path (["def_path"]). *)
type def_source = Inline of string | Path of string

(** What the job optimises: a generated benchmark (the ["design"] /
    ["scale"] / ["util"] request fields) or an external placement
    ingested through the [Io.Def] codec. The two are mutually
    exclusive on the wire. *)
type source =
  | Generated of {
      design : Netlist.Designs.name;
      scale : int;   (** design-size divisor, >= 1; default 8 *)
      util : float;  (** placement utilisation in (0,1); default 0.75 *)
    }
  | External of def_source

(** One optimisation job, defaults already applied. *)
type job = {
  id : string;              (** client-chosen tag, echoed on the reply *)
  source : source;
  arch : Pdk.Cell_arch.t;   (** default ClosedM1; for external jobs, the
                                library the DEF is bound against *)
  alpha : float option;     (** alignment-weight override; default: paper *)
  sequence : int;           (** optimisation sequence 1..5; default 1 *)
  solver : Vm1.Scp_solver.mode option;
  (** window-solver override (the ["solver"] request field:
      [greedy|exact|anneal|auto|portfolio]); [None] defers to the
      daemon's default ([--solver], else greedy) *)
  want_trace : bool;        (** reply carries a [vm1dp-trace/1] blob *)
}

(** [generated_job ~id ?arch ?scale ?util ?alpha ?sequence ?want_trace
    design] builds a generated-benchmark job with the protocol's
    defaults — the shape every pre-external client sent. *)
val generated_job :
  id:string -> ?arch:Pdk.Cell_arch.t -> ?scale:int -> ?util:float ->
  ?alpha:float -> ?sequence:int -> ?solver:Vm1.Scp_solver.mode ->
  ?want_trace:bool -> Netlist.Designs.name -> job

(** {1 Errors} *)

(** Machine-readable failure class of an error reply. *)
type error_code =
  | Parse_error         (** the line is not a JSON object *)
  | Unsupported_schema  (** missing/unknown/non-jobs ["schema"] tag *)
  | Bad_request         (** well-formed, but a field is missing, of the
                            wrong type, or out of range *)
  | Internal            (** the job itself raised inside the daemon *)

(** The wire spelling of a code ([parse_error], [bad_request], ...). *)
val error_code_string : error_code -> string

(** A structured error reply: [err_id] is the request's [id] when it
    could still be extracted, so clients can correlate. *)
type error = {
  code : error_code;
  message : string;
  err_id : string option;
}

(** {1 Results} *)

(** The deterministic payload of a successful reply. Everything in here
    — including [digest], a placement fingerprint — is a pure function
    of the job parameters: the daemon's byte-identity contract (cold =
    warm = interleaved, at any [--jobs]) is checked over the
    {!result_json} serialisation of this record. *)
type result = {
  r_design : string;        (** generated name, or the DEF's [DESIGN] *)
  r_arch : string;
  r_scale : int option;     (** [None] (JSON [null]) for external jobs *)
  r_util : float option;    (** [None] (JSON [null]) for external jobs *)
  r_alpha : float;          (** the alpha actually used *)
  r_sequence : int;
  instances : int;
  init : Report.Flow.eval;  (** routed metrics before optimisation *)
  final : Report.Flow.eval; (** routed metrics after optimisation *)
  digest : string;          (** MD5 of the final placement (coordinates
                                and orientations, textual form) *)
}

(** {1 Replies} *)

(** A reply as the daemon sends it: [artifacts] lists each artifact
    cache consulted for the job as [(name, hit)], [latency_ms] is
    resolve + execution time (wall time of the job itself, not queue
    time), [trace] is present when the job asked for one. *)
type reply =
  | Ok of {
      job : job;
      result : result;
      artifacts : (string * bool) list;
      latency_ms : float;
      trace : Obs.Json.t option;
    }
  | Err of error

(** {1 Encoding} *)

(** [encode_job j] is the request line for [j] (no trailing newline). *)
val encode_job : job -> string

(** [result_json r] is the ["result"] member of an ok reply — the
    serialisation the byte-identity contract quantifies over. *)
val result_json : result -> Obs.Json.t

(** [encode_reply r] is the reply line (no trailing newline). *)
val encode_reply : reply -> string

(** {1 Decoding} *)

(** [parse_job line] applies defaults and validates every field. (The
    [Stdlib.result] spelling: {!type-result} names the reply payload in
    this module.) *)
val parse_job : string -> (job, error) Stdlib.result

(** A reply as a client sees it, structure only — used by the load
    generator and the tests; loose by design so it can also report on
    replies from a future daemon version. *)
type parsed_reply = {
  p_id : string option;
  p_status : string;                 (** ["ok"] or ["error"] *)
  p_result : Obs.Json.t option;      (** the ["result"] member, verbatim *)
  p_latency_ms : float option;
  p_cache : (string * bool) list;    (** artifact name -> was it a hit *)
  p_error_code : string option;
}

(** [parse_reply line] decodes one reply line; [Error] only when the
    line is not a [vm1dp-jobs/1] object with a ["status"]. *)
val parse_reply : string -> (parsed_reply, string) Stdlib.result
