(** Execution of one batch-service job: resolve shared artifacts, run
    the flow on private copies, report a deterministic result.

    The two-phase shape is the point of the module. {!prepare} runs on
    the submitting domain and is the only code that touches the
    {!Cache} — everything it hands over (library, netlist, master
    placement, grid skeleton) is immutable from then on. {!execute} is
    safe to run on a pool worker: it copies the master placement and
    mutates only that copy, so any number of jobs can be in flight at
    once and a job's result is independent of what runs next to it.

    [execute] never raises: a job that throws internally becomes a
    structured [internal] error reply, because one poisoned job must
    not take the daemon down. *)

(** A job with its shared artifacts resolved (or the error that
    resolution produced). *)
type prepared

(** [prepare cache job] resolves the job's artifacts through the cache
    on the calling domain. Never raises; resolution failures are
    carried inside the returned value and surface as error replies. *)
val prepare : Cache.t -> Protocol.job -> prepared

(** [execute p] runs the optimisation flow for a prepared job:
    copy the master placement, evaluate, [Vm1.Vm1_opt.run], re-evaluate,
    digest. The reply's [latency_ms] covers artifact resolution plus
    execution. When the job asked for a trace, observability is
    force-enabled around the run and the reply carries a
    [vm1dp-trace/1] blob of the job's root spans (see PROTOCOL.md for
    the isolation caveats); traced jobs are meant to run alone —
    the daemon drains in-flight work first. *)
val execute : prepared -> Protocol.reply

(** [run cache job] is [execute (prepare cache job)] — the one-call
    form used by tests and the load generator. *)
val run : Cache.t -> Protocol.job -> Protocol.reply
