module J = Obs.Json

type def_source = Inline of string | Path of string

type source =
  | Generated of {
      design : Netlist.Designs.name;
      scale : int;
      util : float;
    }
  | External of def_source

type job = {
  id : string;
  source : source;
  arch : Pdk.Cell_arch.t;
  alpha : float option;
  sequence : int;
  solver : Vm1.Scp_solver.mode option;
  want_trace : bool;
}

let generated_job ~id ?(arch = Pdk.Cell_arch.Closed_m1) ?(scale = 8)
    ?(util = 0.75) ?alpha ?(sequence = 1) ?solver ?(want_trace = false)
    design =
  { id; source = Generated { design; scale; util }; arch; alpha; sequence;
    solver; want_trace }

type error_code = Parse_error | Unsupported_schema | Bad_request | Internal

let error_code_string = function
  | Parse_error -> "parse_error"
  | Unsupported_schema -> "unsupported_schema"
  | Bad_request -> "bad_request"
  | Internal -> "internal"

type error = {
  code : error_code;
  message : string;
  err_id : string option;
}

type result = {
  r_design : string;
  r_arch : string;
  r_scale : int option;
  r_util : float option;
  r_alpha : float;
  r_sequence : int;
  instances : int;
  init : Report.Flow.eval;
  final : Report.Flow.eval;
  digest : string;
}

type reply =
  | Ok of {
      job : job;
      result : result;
      artifacts : (string * bool) list;
      latency_ms : float;
      trace : Obs.Json.t option;
    }
  | Err of error

(* --- encoding ------------------------------------------------------- *)

let encode_job j =
  let source_fields =
    match j.source with
    | Generated { design; scale; util } ->
      [
        ("design", J.Str (Netlist.Designs.to_string design));
        ("arch", J.Str (Pdk.Cell_arch.to_string j.arch));
        ("scale", J.Int scale);
        ("util", J.Float util);
      ]
    | External (Inline text) ->
      [
        ("def", J.Str text);
        ("arch", J.Str (Pdk.Cell_arch.to_string j.arch));
      ]
    | External (Path path) ->
      [
        ("def_path", J.Str path);
        ("arch", J.Str (Pdk.Cell_arch.to_string j.arch));
      ]
  in
  let fields =
    [ ("schema", J.Str Obs.Schemas.jobs); ("id", J.Str j.id) ]
    @ source_fields
    @ (match j.alpha with Some a -> [ ("alpha", J.Float a) ] | None -> [])
    @ [ ("sequence", J.Int j.sequence) ]
    @ (match j.solver with
      | Some m -> [ ("solver", J.Str (Vm1.Scp_solver.mode_to_string m)) ]
      | None -> [])
    @ if j.want_trace then [ ("trace", J.Bool true) ] else []
  in
  J.to_string (J.Obj fields)

let eval_json (e : Report.Flow.eval) =
  J.Obj
    [
      ("dm1", J.Int e.Report.Flow.dm1);
      ("m1_wl_um", J.Float e.m1_wl_um);
      ("via12", J.Int e.via12);
      ("hpwl_um", J.Float e.hpwl_um);
      ("rwl_um", J.Float e.rwl_um);
      ("wns_ns", J.Float e.wns_ns);
      ("power_mw", J.Float e.power_mw);
      ("drvs", J.Int e.drvs);
      ("alignments", J.Int e.alignments);
    ]

let result_json r =
  J.Obj
    [
      ("design", J.Str r.r_design);
      ("arch", J.Str r.r_arch);
      ("scale", (match r.r_scale with Some s -> J.Int s | None -> J.Null));
      ("util", (match r.r_util with Some u -> J.Float u | None -> J.Null));
      ("alpha", J.Float r.r_alpha);
      ("sequence", J.Int r.r_sequence);
      ("instances", J.Int r.instances);
      ("init", eval_json r.init);
      ("final", eval_json r.final);
      ("digest", J.Str r.digest);
    ]

let encode_reply = function
  | Ok { job; result; artifacts; latency_ms; trace } ->
    let cache =
      J.Obj
        (List.map
           (fun (name, hit) -> (name, J.Str (if hit then "hit" else "miss")))
           artifacts)
    in
    let fields =
      [
        ("schema", J.Str Obs.Schemas.jobs);
        ("id", J.Str job.id);
        ("status", J.Str "ok");
        ("result", result_json result);
        ("cache", cache);
        ("latency_ms", J.Float latency_ms);
      ]
      @ match trace with Some t -> [ ("trace", t) ] | None -> []
    in
    J.to_string (J.Obj fields)
  | Err e ->
    J.to_string
      (J.Obj
         [
           ("schema", J.Str Obs.Schemas.jobs);
           ( "id",
             match e.err_id with Some id -> J.Str id | None -> J.Null );
           ("status", J.Str "error");
           ( "error",
             J.Obj
               [
                 ("code", J.Str (error_code_string e.code));
                 ("message", J.Str e.message);
               ] );
         ])

(* --- request parsing ------------------------------------------------ *)

let fail ?id code fmt =
  Printf.ksprintf
    (fun message -> Error { code; message; err_id = id })
    fmt

(* Accept both Int and Float for numeric fields: JSON clients routinely
   print 0.75 as well as 1. *)
let as_float = function
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let ( let* ) = Result.bind

(* [design] selects a generated job; [def] (inline DEF text) or
   [def_path] (daemon-local file) an external one. Exactly one of the
   three must be present, and the generator axes (scale/util) are
   rejected on external jobs. *)
let parse_source ?id obj =
  let gen_axis name = J.member name obj <> None in
  match (J.member "design" obj, J.member "def" obj, J.member "def_path" obj) with
  | Some _, Some _, _ | Some _, _, Some _ ->
    fail ?id Bad_request
      "\"design\" and \"def\"/\"def_path\" are mutually exclusive"
  | _, Some _, Some _ ->
    fail ?id Bad_request "\"def\" and \"def_path\" are mutually exclusive"
  | None, None, None ->
    fail ?id Bad_request "missing \"design\", \"def\" or \"def_path\" field"
  | Some (J.Str d), None, None -> (
    match Netlist.Designs.of_string d with
    | None -> fail ?id Bad_request "unknown design %S (m0|aes|jpeg|vga)" d
    | Some design ->
      let* scale =
        match J.member "scale" obj with
        | None -> Stdlib.Ok 8
        | Some (J.Int n) when n >= 1 -> Stdlib.Ok n
        | Some _ -> fail ?id Bad_request "\"scale\" must be an integer >= 1"
      in
      let* util =
        match Option.map as_float (J.member "util" obj) with
        | None -> Stdlib.Ok 0.75
        | Some (Some u) when u > 0.0 && u < 1.0 -> Stdlib.Ok u
        | Some _ -> fail ?id Bad_request "\"util\" must be a number in (0,1)"
      in
      Stdlib.Ok (Generated { design; scale; util }))
  | Some _, None, None -> fail ?id Bad_request "\"design\" must be a string"
  | None, (Some _ as def), None | None, None, (Some _ as def) ->
    if gen_axis "scale" || gen_axis "util" then
      fail ?id Bad_request
        "\"scale\" and \"util\" apply only to generated jobs"
    else (
      match def with
      | Some (J.Str text) ->
        Stdlib.Ok
          (External
             (if J.member "def" obj <> None then Inline text else Path text))
      | _ ->
        fail ?id Bad_request "\"def\" and \"def_path\" must be strings")

let parse_job line =
  match J.parse line with
  | Error msg -> fail Parse_error "not a JSON line: %s" msg
  | Stdlib.Ok (J.Obj _ as obj) -> (
    let id =
      match J.member "id" obj with Some (J.Str s) -> Some s | _ -> None
    in
    match J.member "schema" obj with
    | None -> fail ?id Unsupported_schema "missing \"schema\" field"
    | Some (J.Str s) when not (String.equal s Obs.Schemas.jobs) ->
      fail ?id Unsupported_schema "schema %S is not %S" s Obs.Schemas.jobs
    | Some (J.Str _) -> (
      match id with
      | None -> fail Bad_request "missing or non-string \"id\" field"
      | Some id_s ->
        let id = Some id_s in
        let* source = parse_source ?id obj in
        let* arch =
          match J.member "arch" obj with
          | None -> Stdlib.Ok Pdk.Cell_arch.Closed_m1
          | Some (J.Str a) -> (
            match Pdk.Cell_arch.of_string a with
            | Some arch -> Stdlib.Ok arch
            | None ->
              fail ?id Bad_request "unknown arch %S (closedm1|openm1|conv12)" a)
          | Some _ -> fail ?id Bad_request "\"arch\" must be a string"
        in
        let* alpha =
          match Option.map as_float (J.member "alpha" obj) with
          | None -> Stdlib.Ok None
          | Some (Some a) when a > 0.0 -> Stdlib.Ok (Some a)
          | Some _ -> fail ?id Bad_request "\"alpha\" must be a number > 0"
        in
        let* sequence =
          match J.member "sequence" obj with
          | None -> Stdlib.Ok 1
          | Some (J.Int n) when n >= 1 && n <= 5 -> Stdlib.Ok n
          | Some _ ->
            fail ?id Bad_request "\"sequence\" must be an integer in 1..5"
        in
        let* solver =
          match J.member "solver" obj with
          | None -> Stdlib.Ok None
          | Some (J.Str s) -> (
            match Vm1.Scp_solver.mode_of_string s with
            | Some m -> Stdlib.Ok (Some m)
            | None ->
              fail ?id Bad_request
                "unknown solver %S (greedy|exact|anneal|auto|portfolio)" s)
          | Some _ -> fail ?id Bad_request "\"solver\" must be a string"
        in
        let* want_trace =
          match J.member "trace" obj with
          | None -> Stdlib.Ok false
          | Some (J.Bool b) -> Stdlib.Ok b
          | Some _ -> fail ?id Bad_request "\"trace\" must be a boolean"
        in
        Stdlib.Ok
          { id = id_s; source; arch; alpha; sequence; solver; want_trace })
    | Some _ -> fail ?id Unsupported_schema "\"schema\" must be a string")
  | Stdlib.Ok _ -> fail Parse_error "request line is not a JSON object"

(* --- reply parsing (client side) ------------------------------------ *)

type parsed_reply = {
  p_id : string option;
  p_status : string;
  p_result : Obs.Json.t option;
  p_latency_ms : float option;
  p_cache : (string * bool) list;
  p_error_code : string option;
}

let parse_reply line =
  match J.parse line with
  | Error msg -> Error ("not a JSON line: " ^ msg)
  | Stdlib.Ok (J.Obj _ as obj) -> (
    (match J.member "schema" obj with
    | Some (J.Str s) when String.equal s Obs.Schemas.jobs -> Stdlib.Ok ()
    | _ -> Error "missing vm1dp-jobs/1 schema tag")
    |> function
    | Error _ as e -> e
    | Stdlib.Ok () -> (
      match J.member "status" obj with
      | Some (J.Str status) ->
        Stdlib.Ok
          {
            p_id =
              (match J.member "id" obj with
              | Some (J.Str s) -> Some s
              | _ -> None);
            p_status = status;
            p_result = J.member "result" obj;
            p_latency_ms =
              Option.bind (J.member "latency_ms" obj) as_float;
            p_cache =
              (match J.member "cache" obj with
              | Some (J.Obj kvs) ->
                List.map
                  (fun (k, v) ->
                    (k, match v with J.Str "hit" -> true | _ -> false))
                  kvs
              | _ -> []);
            p_error_code =
              (match J.member "error" obj with
              | Some err -> (
                match J.member "code" err with
                | Some (J.Str c) -> Some c
                | _ -> None)
              | None -> None);
          }
      | _ -> Error "missing \"status\" field"))
  | Stdlib.Ok _ -> Error "reply line is not a JSON object"
