type stats = {
  jobs : int;
  ok : int;
  errors : int;
}

let c_jobs = Obs.counter "serve.jobs"
let c_errors = Obs.counter "serve.errors"
let g_depth = Obs.gauge "serve.queue_depth"

let serve ?max_in_flight ?default_solver ?telemetry cache ~next_line ~emit ()
    =
  (* applied after parsing so the per-request "solver" field still wins *)
  let apply_default (job : Protocol.job) =
    match (job.Protocol.solver, default_solver) with
    | None, Some _ -> { job with Protocol.solver = default_solver }
    | _ -> job
  in
  let cap =
    match max_in_flight with
    | Some n -> max 1 n
    | None -> max 2 (2 * Exec.jobs ())
  in
  (* in-flight replies, oldest first; emission order = request order.
     Each entry carries its submit timestamp, and the future yields
     (execution start, execution end, reply) so the flush side can
     split queue wait from execute time for the job log. *)
  let inflight :
      (int64 * (int64 * int64 * Protocol.reply) Exec.Future.t) Queue.t =
    Queue.create ()
  in
  let timed f () =
    let t_start = Obs.now_ns () in
    let reply = f () in
    (t_start, Obs.now_ns (), reply)
  in
  let jobs = ref 0 and ok = ref 0 and errors = ref 0 in
  let set_depth () =
    Obs.Gauge.set g_depth (float_of_int (Queue.length inflight))
  in
  let flush_one () =
    let t_submit, fut = Queue.pop inflight in
    let t_start, t_end, reply = Exec.Future.await fut in
    set_depth ();
    (match reply with
    | Protocol.Ok _ -> incr ok
    | Protocol.Err _ ->
      incr errors;
      Obs.Counter.incr c_errors);
    Option.iter
      (fun tel ->
        Telemetry.record_job tel
          ~queue_ns:(Int64.sub t_start t_submit)
          ~exec_ns:(Int64.sub t_end t_start)
          reply)
      telemetry;
    emit (Protocol.encode_reply reply)
  in
  let drain () =
    while not (Queue.is_empty inflight) do
      flush_one ()
    done
  in
  (* the submit stamp is taken by the caller *before* the future is
     created — a pool worker can start the job before the push lands,
     and queue_ns must never go negative *)
  let push t_submit fut =
    Queue.push (t_submit, fut) inflight;
    set_depth ();
    while Queue.length inflight > cap do
      flush_one ()
    done
  in
  let rec loop () =
    match next_line () with
    | None ->
      drain ();
      { jobs = !jobs; ok = !ok; errors = !errors }
    | Some line ->
      incr jobs;
      Obs.Counter.incr c_jobs;
      let t_submit = Obs.now_ns () in
      (match Result.map apply_default (Protocol.parse_job line) with
      | Error e ->
        push t_submit (Exec.Future.return (timed (fun () -> Protocol.Err e) ()))
      | Ok job when job.Protocol.want_trace ->
        (* serialisation point: the trace must contain this job's spans
           only, so nothing else may be running *)
        drain ();
        push t_submit
          (Exec.Future.return (timed (fun () -> Engine.run cache job) ()))
      | Ok job ->
        let prep = Engine.prepare cache job in
        push t_submit (Exec.submit (timed (fun () -> Engine.execute prep))));
      loop ()
  in
  loop ()
