type stats = {
  jobs : int;
  ok : int;
  errors : int;
}

let c_jobs = Obs.counter "serve.jobs"
let c_errors = Obs.counter "serve.errors"
let g_depth = Obs.gauge "serve.queue_depth"

let serve ?max_in_flight ?default_solver cache ~next_line ~emit () =
  (* applied after parsing so the per-request "solver" field still wins *)
  let apply_default (job : Protocol.job) =
    match (job.Protocol.solver, default_solver) with
    | None, Some _ -> { job with Protocol.solver = default_solver }
    | _ -> job
  in
  let cap =
    match max_in_flight with
    | Some n -> max 1 n
    | None -> max 2 (2 * Exec.jobs ())
  in
  (* in-flight replies, oldest first; emission order = request order *)
  let inflight : Protocol.reply Exec.Future.t Queue.t = Queue.create () in
  let jobs = ref 0 and ok = ref 0 and errors = ref 0 in
  let set_depth () =
    Obs.Gauge.set g_depth (float_of_int (Queue.length inflight))
  in
  let flush_one () =
    let reply = Exec.Future.await (Queue.pop inflight) in
    set_depth ();
    (match reply with
    | Protocol.Ok _ -> incr ok
    | Protocol.Err _ ->
      incr errors;
      Obs.Counter.incr c_errors);
    emit (Protocol.encode_reply reply)
  in
  let drain () =
    while not (Queue.is_empty inflight) do
      flush_one ()
    done
  in
  let push fut =
    Queue.push fut inflight;
    set_depth ();
    while Queue.length inflight > cap do
      flush_one ()
    done
  in
  let rec loop () =
    match next_line () with
    | None ->
      drain ();
      { jobs = !jobs; ok = !ok; errors = !errors }
    | Some line ->
      incr jobs;
      Obs.Counter.incr c_jobs;
      (match Result.map apply_default (Protocol.parse_job line) with
      | Error e -> push (Exec.Future.return (Protocol.Err e))
      | Ok job when job.Protocol.want_trace ->
        (* serialisation point: the trace must contain this job's spans
           only, so nothing else may be running *)
        drain ();
        push (Exec.Future.return (Engine.run cache job))
      | Ok job ->
        let prep = Engine.prepare cache job in
        push (Exec.submit (fun () -> Engine.execute prep)));
      loop ()
  in
  loop ()
