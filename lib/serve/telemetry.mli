(** The daemon's admin plane: live views over the flow's observability
    state, plus the structured per-job access log.

    One [Telemetry.t] lives alongside one {!Daemon.serve} loop. The
    serve loop calls {!record_job} as it emits each reply; an admin
    consumer (the [vm1d --admin-socket] accept loop, or a test calling
    {!handle} directly) renders the three admin verbs. The two sides
    touch disjoint state — the job ring is the only shared structure,
    and it is the locked {!Obs.Ring} — so neither blocks the other.

    The scrape-does-not-perturb invariant (ARCHITECTURE.md): {!handle}
    only {e reads} observability state. It bumps no counter, sets no
    gauge, opens no span, and never runs on the pool, so job replies
    are byte-identical whether or not anything is scraping — checked
    by [test_serve] in-process and by the [@telemetry-smoke] daemon
    run.

    Confinement: {!record_job} must be called from the serve loop only
    (it owns the sequence number and the log channel); {!handle} from
    one admin consumer at a time (it owns the span cursor). [vm1d]
    satisfies both by construction — one serve loop, one admin domain
    serving connections sequentially. *)

type t

(** One access-log record, as written to [--job-log] and returned by
    the [jobs] verb (wire spec: [vm1dp-joblog/1] in PROTOCOL.md).
    Every field except the two wall-clock spans is deterministic for a
    given request stream at any [--jobs]; tests mask [jr_queue_ms] /
    [jr_execute_ms] the way [@perf-gate] bands times. *)
type job_record = {
  jr_seq : int;                  (** daemon-side arrival index, from 1 *)
  jr_id : string option;         (** request id; [None] when unparseable *)
  jr_source : string;  (** [generated | external-inline | external-path
                           | invalid] *)
  jr_design : string option;
  jr_solver : string option;     (** solver actually requested, post
                                     [--solver] default *)
  jr_status : string;            (** [ok] or [error] *)
  jr_error_code : string option;
  jr_digest : string option;     (** result QoR digest *)
  jr_cache : (string * bool) list;  (** artifact cache outcomes *)
  jr_queue_ms : float;           (** submit → execution start *)
  jr_execute_ms : float;         (** execution start → reply ready *)
}

val job_record_json : job_record -> Obs.Json.t

(** [create ?ring_capacity ?job_log ()] — [ring_capacity] bounds the
    recent-job ring (default 64); [job_log] is an open channel that
    receives one [vm1dp-joblog/1] line per job, flushed per line. The
    caller opens the channel; {!close} closes it. *)
val create : ?ring_capacity:int -> ?job_log:out_channel -> unit -> t

val close : t -> unit

(** [record_job t ~queue_ns ~exec_ns reply] appends the reply's record
    to the ring and the job log. Serve-loop confined. *)
val record_job :
  t -> queue_ns:int64 -> exec_ns:int64 -> Protocol.reply -> unit

(** [handle t verb] renders one admin request — [metrics], [health] or
    [jobs] (PROTOCOL.md, "The admin plane") — as the reply document; an
    unknown verb yields an [{"error": ...}] object. Read-only and
    non-blocking with respect to the job pipeline. *)
val handle : t -> string -> Obs.Json.t
