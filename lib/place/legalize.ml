(* Two-stage legalisation.

   Stage 1 assigns each cell to a row: cells are processed in target-x
   order and greedily assigned to the row minimising displacement among
   rows with remaining site capacity, so no row is ever over-committed.

   Stage 2 packs each row left-to-right at max(edge, target), then a
   right-to-left clamp pushes the overhang back; because the row's total
   width fits, the clamp always succeeds and every x stays >= 0. *)

let legalize_impl (p : Placement.t) =
  let tech = p.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let n = Placement.num_instances p in
  let widths =
    Array.map
      (fun (inst : Netlist.Design.instance) ->
        inst.master.Pdk.Stdcell.width_sites)
      p.design.Netlist.Design.instances
  in
  let capacity = Array.make p.num_rows p.sites_per_row in
  let total =
    Array.fold_left ( + ) 0 widths
  in
  if total > p.num_rows * p.sites_per_row then
    failwith "Legalize.legalize: die is full";
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare p.xs.(a) p.xs.(b)) order;
  (* stage 1: row assignment *)
  let rows = Array.make p.num_rows [] in
  let assign i =
    let w = widths.(i) in
    let target_row = max 0 (min (p.num_rows - 1) (p.ys.(i) / rh)) in
    let best = ref (-1) in
    let best_cost = ref max_int in
    let consider r =
      if r >= 0 && r < p.num_rows && capacity.(r) >= w then begin
        let cost = abs (r - target_row) in
        if cost < !best_cost then begin
          best := r;
          best_cost := cost
        end
      end
    in
    consider target_row;
    let d = ref 1 in
    while !best < 0 && !d <= p.num_rows do
      consider (target_row - !d);
      consider (target_row + !d);
      incr d
    done;
    if !best < 0 then failwith "Legalize.legalize: die is full";
    capacity.(!best) <- capacity.(!best) - w;
    rows.(!best) <- i :: rows.(!best)
  in
  Array.iter assign order;
  (* stage 2: per-row packing; [rows.(r)] holds cells in reverse x order *)
  for r = 0 to p.num_rows - 1 do
    let cells = Array.of_list (List.rev rows.(r)) in
    let k = Array.length cells in
    let sites = Array.make k 0 in
    let edge = ref 0 in
    for idx = 0 to k - 1 do
      let i = cells.(idx) in
      let target = max 0 (min (p.xs.(i) / sw) (p.sites_per_row - widths.(i))) in
      let s = max !edge target in
      sites.(idx) <- s;
      edge := s + widths.(i)
    done;
    (* clamp overhang back from the right *)
    let bound = ref p.sites_per_row in
    for idx = k - 1 downto 0 do
      let i = cells.(idx) in
      if sites.(idx) + widths.(i) > !bound then sites.(idx) <- !bound - widths.(i);
      bound := sites.(idx)
    done;
    for idx = 0 to k - 1 do
      let i = cells.(idx) in
      Placement.move p i ~site:sites.(idx) ~row:r ~orient:p.orients.(i)
    done
  done

let legalize (p : Placement.t) =
  Obs.with_span "place.legalize" (fun () ->
      legalize_impl p;
      Obs.Counter.incr (Obs.counter "legalize.calls"))

let check (p : Placement.t) =
  let tech = p.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  for i = 0 to Placement.num_instances p - 1 do
    if p.xs.(i) mod sw <> 0 then report "instance %d: x %d off site grid" i p.xs.(i);
    if p.ys.(i) mod rh <> 0 then report "instance %d: y %d off row grid" i p.ys.(i);
    if not (Placement.inside_die p i) then report "instance %d: outside die" i
  done;
  let overlaps = Placement.overlap_count p in
  if overlaps > 0 then report "%d overlapping cell pairs" overlaps;
  List.rev !problems
