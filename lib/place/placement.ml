type t = {
  design : Netlist.Design.t;
  tech : Pdk.Tech.t;
  die : Geom.Rect.t;
  num_rows : int;
  sites_per_row : int;
  xs : int array;
  ys : int array;
  orients : Geom.Orient.t array;
}

let total_cell_area (design : Netlist.Design.t) tech =
  Array.fold_left
    (fun acc (inst : Netlist.Design.instance) ->
      acc + (inst.master.Pdk.Stdcell.width * tech.Pdk.Tech.row_height))
    0 design.instances

let create (design : Netlist.Design.t) ~utilization =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Placement.create: utilization must be in (0,1]";
  let tech = design.lib.Pdk.Libgen.tech in
  let area = float_of_int (total_cell_area design tech) /. utilization in
  let side = sqrt area in
  let num_rows =
    max 2 (int_of_float (Float.round (side /. float_of_int tech.row_height)))
  in
  let width_dbu = area /. float_of_int (num_rows * tech.row_height) in
  let sites_per_row =
    max 4 (int_of_float (ceil (width_dbu /. float_of_int tech.site_width)))
  in
  let die =
    Geom.Rect.make ~lx:0 ~ly:0
      ~hx:(sites_per_row * tech.site_width)
      ~hy:(num_rows * tech.row_height)
  in
  let n = Array.length design.instances in
  {
    design;
    tech;
    die;
    num_rows;
    sites_per_row;
    xs = Array.make n 0;
    ys = Array.make n 0;
    orients = Array.make n Geom.Orient.N;
  }

let copy t =
  {
    t with
    xs = Array.copy t.xs;
    ys = Array.copy t.ys;
    orients = Array.copy t.orients;
  }

let assign dst src =
  Array.blit src.xs 0 dst.xs 0 (Array.length src.xs);
  Array.blit src.ys 0 dst.ys 0 (Array.length src.ys);
  Array.blit src.orients 0 dst.orients 0 (Array.length src.orients)

let num_instances t = Array.length t.xs

let instance_rect t i =
  let m = t.design.Netlist.Design.instances.(i).master in
  Geom.Rect.make ~lx:t.xs.(i) ~ly:t.ys.(i)
    ~hx:(t.xs.(i) + m.Pdk.Stdcell.width)
    ~hy:(t.ys.(i) + m.Pdk.Stdcell.height)

let master_pin t (pr : Netlist.Design.pin_ref) =
  let m = t.design.Netlist.Design.instances.(pr.inst).master in
  (m, List.nth m.Pdk.Stdcell.pins pr.pin)

let pin_shapes t (pr : Netlist.Design.pin_ref) =
  let m, pin = master_pin t pr in
  Pdk.Stdcell.placed_pin_shapes m ~orient:t.orients.(pr.inst)
    ~origin:(Geom.Point.make t.xs.(pr.inst) t.ys.(pr.inst))
    pin

let pin_bbox t pr =
  let m, pin = master_pin t pr in
  Pdk.Stdcell.placed_pin_bbox m ~orient:t.orients.(pr.inst)
    ~origin:(Geom.Point.make t.xs.(pr.inst) t.ys.(pr.inst))
    pin

let pin_pos t pr = Geom.Rect.center (pin_bbox t pr)
let pin_x_interval t pr = Geom.Rect.x_span (pin_bbox t pr)
let row_of_inst t i = t.ys.(i) / t.tech.Pdk.Tech.row_height
let site_of_inst t i = t.xs.(i) / t.tech.Pdk.Tech.site_width

let move t i ~site ~row ~orient =
  t.xs.(i) <- site * t.tech.Pdk.Tech.site_width;
  t.ys.(i) <- row * t.tech.Pdk.Tech.row_height;
  t.orients.(i) <- orient

let inside_die t i =
  let r = instance_rect t i in
  r.Geom.Rect.lx >= t.die.Geom.Rect.lx
  && r.Geom.Rect.ly >= t.die.Geom.Rect.ly
  && r.Geom.Rect.hx <= t.die.Geom.Rect.hx
  && r.Geom.Rect.hy <= t.die.Geom.Rect.hy

let overlap_count t =
  (* sweep per row: cells sorted by x; overlap iff next cell starts before
     the previous ends *)
  let n = num_instances t in
  let by_row = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let r = row_of_inst t i in
    let prev = Option.value ~default:[] (Hashtbl.find_opt by_row r) in
    Hashtbl.replace by_row r (i :: prev)
  done;
  let count = ref 0 in
  Hashtbl.fold (fun r _ acc -> r :: acc) by_row []
  |> List.sort Int.compare
  |> List.iter (fun r ->
         let cells = Hashtbl.find by_row r in
         let sorted =
           List.sort (fun a b -> Int.compare t.xs.(a) t.xs.(b)) cells
         in
         let rec sweep = function
           | a :: (b :: _ as rest) ->
             let ra = instance_rect t a in
             if t.xs.(b) < ra.Geom.Rect.hx then incr count;
             sweep rest
           | [ _ ] | [] -> ()
         in
         sweep sorted);
  !count

let utilization t =
  let area = total_cell_area t.design t.tech in
  float_of_int area /. float_of_int (Geom.Rect.area t.die)

let to_def t =
  {
    Netlist.Def_io.die = t.die;
    xs = Array.copy t.xs;
    ys = Array.copy t.ys;
    orients = Array.copy t.orients;
  }

let of_def (design : Netlist.Design.t) (p : Netlist.Def_io.placement) =
  let tech = design.lib.Pdk.Libgen.tech in
  let num_rows = Geom.Rect.height p.die / tech.Pdk.Tech.row_height in
  let sites_per_row = Geom.Rect.width p.die / tech.Pdk.Tech.site_width in
  {
    design;
    tech;
    die = p.die;
    num_rows;
    sites_per_row;
    xs = Array.copy p.xs;
    ys = Array.copy p.ys;
    orients = Array.copy p.orients;
  }
