(* Per-cell piecewise-linear cost: moving pin p to absolute x costs
   sum over p's nets of the x-extent growth of the net's bounding box over
   the OTHER pins. Evaluated directly per candidate site; the DP is
   O(cells * sites) per row with O(pins) cost evaluation. *)

let cell_cost_table (p : Placement.t) row_cells i =
  ignore row_cells;
  let design = p.design in
  let inst = design.Netlist.Design.instances.(i) in
  let sw = p.tech.Pdk.Tech.site_width in
  let nsites = p.sites_per_row in
  let w = inst.master.Pdk.Stdcell.width_sites in
  (* pin x offsets (absolute pin x = site*sw + offset) and the x-interval
     of each pin's net over its other pins *)
  let terms = ref [] in
  List.iteri
    (fun k (_ : Pdk.Stdcell.pin) ->
      let nid = inst.pin_nets.(k) in
      if nid >= 0 && not design.nets.(nid).is_clock then begin
        let net = design.nets.(nid) in
        if Array.length net.pins >= 2 then begin
          let lo = ref max_int and hi = ref min_int in
          Array.iter
            (fun (pr : Netlist.Design.pin_ref) ->
              if not (pr.inst = i && pr.pin = k) then begin
                let pos = Placement.pin_pos p pr in
                if pos.Geom.Point.x < !lo then lo := pos.Geom.Point.x;
                if pos.Geom.Point.x > !hi then hi := pos.Geom.Point.x
              end)
            net.pins;
          if !lo <= !hi then begin
            let pin_ref = { Netlist.Design.inst = i; pin = k } in
            let cur = Placement.pin_pos p pin_ref in
            let offset = cur.Geom.Point.x - p.xs.(i) in
            terms := (offset, !lo, !hi) :: !terms
          end
        end
      end)
    inst.master.Pdk.Stdcell.pins;
  let terms = !terms in
  let cost = Array.make nsites max_int in
  for s = 0 to nsites - w do
    let x0 = s * sw in
    let c =
      List.fold_left
        (fun acc (offset, lo, hi) ->
          let px = x0 + offset in
          acc + max 0 (lo - px) + max 0 (px - hi))
        0 terms
    in
    cost.(s) <- c
  done;
  cost

(* summed HPWL of the nets touching [cells]; nets are visited in sorted id
   order so the sum is independent of hash-table layout *)
let cells_hpwl (p : Placement.t) cells =
  let nets = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      List.iter
        (fun nid -> Hashtbl.replace nets nid ())
        (Netlist.Design.nets_of_instance p.design i))
    cells;
  Hashtbl.fold (fun nid () acc -> nid :: acc) nets []
  |> List.sort Int.compare
  |> List.fold_left (fun acc nid -> acc + Hpwl.net p nid) 0

let optimize_row (p : Placement.t) ~row =
  let cells =
    let acc = ref [] in
    for i = Placement.num_instances p - 1 downto 0 do
      if Placement.row_of_inst p i = row then acc := i :: !acc
    done;
    List.sort (fun a b -> Int.compare p.xs.(a) p.xs.(b)) !acc
    |> Array.of_list
  in
  let k = Array.length cells in
  if k = 0 then 0
  else begin
    let nsites = p.sites_per_row in
    let widths =
      Array.map
        (fun i ->
          p.design.Netlist.Design.instances.(i).master.Pdk.Stdcell.width_sites)
        cells
    in
    let before = cells_hpwl p cells in
    let costs = Array.map (fun i -> cell_cost_table p cells i) cells in
    (* DP: f.(j).(s) = best cost of placing cells 0..j with cell j at site
       s; g is the running prefix minimum of the previous round *)
    let neg = -1 in
    let choice = Array.make_matrix k nsites neg in
    let prev_min = Array.make nsites max_int in
    let prev_arg = Array.make nsites neg in
    (* round 0 *)
    let cur = Array.make nsites max_int in
    for s = 0 to nsites - widths.(0) do
      if costs.(0).(s) < max_int then cur.(s) <- costs.(0).(s)
    done;
    let commit_round j cur =
      (* prefix-min of cur into prev_min/prev_arg *)
      let best = ref max_int and arg = ref neg in
      for s = 0 to nsites - 1 do
        if cur.(s) < !best then begin
          best := cur.(s);
          arg := s
        end;
        prev_min.(s) <- !best;
        prev_arg.(s) <- !arg;
        ignore j
      done
    in
    commit_round 0 cur;
    for j = 1 to k - 1 do
      let cur = Array.make nsites max_int in
      for s = 0 to nsites - widths.(j) do
        let limit = s - widths.(j - 1) in
        if limit >= 0 && prev_min.(limit) < max_int && costs.(j).(s) < max_int
        then begin
          cur.(s) <- prev_min.(limit) + costs.(j).(s);
          choice.(j).(s) <- prev_arg.(limit)
        end
      done;
      commit_round j cur
    done;
    (* pick the best end position of the last cell and walk back *)
    let last = k - 1 in
    let best_s = prev_arg.(nsites - 1) in
    if best_s < 0 then 0
    else begin
      let sites = Array.make k 0 in
      sites.(last) <- best_s;
      for j = last downto 1 do
        sites.(j - 1) <- choice.(j).(sites.(j))
      done;
      Array.iteri
        (fun j i ->
          Placement.move p i ~site:sites.(j) ~row ~orient:p.orients.(i))
        cells;
      let after = cells_hpwl p cells in
      before - after
    end
  end

let optimize ?(passes = 2) (p : Placement.t) =
  let total = ref 0 in
  for _ = 1 to passes do
    for row = 0 to p.num_rows - 1 do
      total := !total + optimize_row p ~row
    done
  done;
  !total
