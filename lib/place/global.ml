type config = {
  relax_passes : int;
  blend : float;
  float_iters : int;      (* free-floating quadratic iterations *)
  reassign_rounds : int;  (* relax -> slot-assign -> legalise rounds *)
}

let default_config =
  { relax_passes = 3; blend = 0.25; float_iters = 100; reassign_rounds = 3 }

(* Seed cells across rows in id order (serpentine): id-locality of the
   netlist becomes an initial spatial locality. Positions in float space,
   cell centres. *)
let seed (p : Placement.t) cx cy =
  let n = Placement.num_instances p in
  let widths =
    Array.map
      (fun (inst : Netlist.Design.instance) ->
        inst.master.Pdk.Stdcell.width_sites)
      p.design.Netlist.Design.instances
  in
  let total_sites = Array.fold_left ( + ) 0 widths in
  let stretch =
    float_of_int (p.num_rows * p.sites_per_row) /. float_of_int total_sites
  in
  let sw = float_of_int p.tech.Pdk.Tech.site_width in
  let rh = float_of_int p.tech.Pdk.Tech.row_height in
  let cursor = ref 0.0 in
  for i = 0 to n - 1 do
    let pos = int_of_float !cursor in
    let row = min (p.num_rows - 1) (pos / p.sites_per_row) in
    let along = pos mod p.sites_per_row in
    let site =
      if row land 1 = 0 then along else p.sites_per_row - 1 - along
    in
    cx.(i) <- (float_of_int site +. 0.5) *. sw;
    cy.(i) <- (float_of_int row +. 0.5) *. rh;
    cursor := !cursor +. (float_of_int widths.(i) *. stretch)
  done

(* One centroid-relaxation step over float positions: pull every cell
   toward the mean of its nets' centroids. *)
let centroid_step (p : Placement.t) cx cy blend =
  let design = p.design in
  let n = Placement.num_instances p in
  let nn = Netlist.Design.num_nets design in
  let ncx = Array.make nn 0.0 and ncy = Array.make nn 0.0 in
  let cnt = Array.make nn 0 in
  Array.iteri
    (fun nid (net : Netlist.Design.net) ->
      if not net.is_clock then
        Array.iter
          (fun (pr : Netlist.Design.pin_ref) ->
            ncx.(nid) <- ncx.(nid) +. cx.(pr.inst);
            ncy.(nid) <- ncy.(nid) +. cy.(pr.inst);
            cnt.(nid) <- cnt.(nid) + 1)
          net.pins)
    design.nets;
  for nid = 0 to nn - 1 do
    if cnt.(nid) > 0 then begin
      ncx.(nid) <- ncx.(nid) /. float_of_int cnt.(nid);
      ncy.(nid) <- ncy.(nid) /. float_of_int cnt.(nid)
    end
  done;
  for i = 0 to n - 1 do
    let nets = Netlist.Design.nets_of_instance design i in
    let usable =
      List.filter
        (fun nid -> (not design.nets.(nid).is_clock) && cnt.(nid) > 1)
        nets
    in
    match usable with
    | [] -> ()
    | _ ->
      let k = float_of_int (List.length usable) in
      let tx = List.fold_left (fun acc nid -> acc +. ncx.(nid)) 0.0 usable /. k in
      let ty = List.fold_left (fun acc nid -> acc +. ncy.(nid)) 0.0 usable /. k in
      cx.(i) <- cx.(i) +. (blend *. (tx -. cx.(i)));
      cy.(i) <- cy.(i) +. (blend *. (ty -. cy.(i)))
  done

(* Spreading: centroid iteration contracts the cloud toward dense blobs;
   rank-based spreading (grid warping) pushes each axis back toward a
   uniform distribution over the die while preserving relative order, so
   clusters keep their identity but density stays usable. [mix] is the
   fraction moved toward the uniform rank position. *)
let rescale ?(mix = 0.5) (p : Placement.t) cx cy =
  let n = Array.length cx in
  if n > 1 then begin
    let spread_axis arr extent =
      let order = Array.init n (fun i -> i) in
      Array.sort (fun a b -> Float.compare arr.(a) arr.(b)) order;
      let extent = float_of_int extent in
      Array.iteri
        (fun rank i ->
          let uniform =
            (float_of_int rank +. 0.5) /. float_of_int n *. extent
          in
          arr.(i) <- arr.(i) +. (mix *. (uniform -. arr.(i))))
        order
    in
    spread_axis cx (Geom.Rect.width p.die);
    spread_axis cy (Geom.Rect.height p.die)
  end

(* Slot assignment: convert float positions into a legal placement that
   preserves the cloud's relative order. Cells are sorted by y and dealt
   into rows up to each row's site capacity; within a row they are sorted
   by x and spread evenly. *)
let slot_assign (p : Placement.t) cx cy =
  let n = Placement.num_instances p in
  let widths =
    Array.map
      (fun (inst : Netlist.Design.instance) ->
        inst.master.Pdk.Stdcell.width_sites)
      p.design.Netlist.Design.instances
  in
  let total_sites = Array.fold_left ( + ) 0 widths in
  let per_row_target =
    float_of_int total_sites /. float_of_int p.num_rows
  in
  let by_y = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare cy.(a) cy.(b) with
      | 0 -> Float.compare cx.(a) cx.(b)
      | c -> c)
    by_y;
  let rows = Array.make p.num_rows [] in
  let row = ref 0 in
  let filled = ref 0.0 in
  Array.iter
    (fun i ->
      if
        !filled >= per_row_target *. float_of_int (!row + 1)
        && !row < p.num_rows - 1
      then incr row;
      rows.(!row) <- i :: rows.(!row);
      filled := !filled +. float_of_int widths.(i))
    by_y;
  let sw = float_of_int p.tech.Pdk.Tech.site_width in
  for r = 0 to p.num_rows - 1 do
    let cells = Array.of_list (List.rev rows.(r)) in
    Array.sort (fun a b -> Float.compare cx.(a) cx.(b)) cells;
    let row_sites = Array.fold_left (fun acc i -> acc + widths.(i)) 0 cells in
    let slack = max 0 (p.sites_per_row - row_sites) in
    let k = Array.length cells in
    let cursor = ref 0 in
    Array.iteri
      (fun idx i ->
        (* distribute free sites in proportion to the cell's float x *)
        let want = int_of_float (cx.(i) /. sw) - (widths.(i) / 2) in
        let lo = !cursor in
        let hi = !cursor + slack in
        let site = max lo (min hi (max lo want)) in
        let site = min site (p.sites_per_row - widths.(i)) in
        Placement.move p i ~site ~row:r ~orient:p.orients.(i);
        ignore idx;
        ignore k;
        cursor := site + widths.(i))
      cells
  done

let copy_coords (p : Placement.t) =
  (Array.copy p.xs, Array.copy p.ys, Array.copy p.orients)

let save_coords (p : Placement.t) (xs, ys, os) =
  Array.blit p.xs 0 xs 0 (Array.length xs);
  Array.blit p.ys 0 ys 0 (Array.length ys);
  Array.blit p.orients 0 os 0 (Array.length os)

let restore_coords (p : Placement.t) (xs, ys, os) =
  Array.blit xs 0 p.xs 0 (Array.length xs);
  Array.blit ys 0 p.ys 0 (Array.length ys);
  Array.blit os 0 p.orients 0 (Array.length os)

let place_impl config (p : Placement.t) =
  let n = Placement.num_instances p in
  let cx = Array.make n 0.0 and cy = Array.make n 0.0 in
  seed p cx cy;
  (* phase A: free-floating quadratic relaxation with periodic rescale *)
  for it = 1 to config.float_iters do
    centroid_step p cx cy 0.7;
    if it mod 3 = 0 || it = config.float_iters then rescale p cx cy
  done;
  (* phase B: order-preserving slot assignment *)
  slot_assign p cx cy;
  Legalize.legalize p;
  (* phase B': re-relax from the legal placement and re-assign, keeping
     the best round — each round lets clusters reform across the row
     structure the previous slot assignment imposed *)
  let best_b = copy_coords p in
  let best_b_hpwl = ref (Hpwl.total p) in
  for _ = 1 to config.reassign_rounds do
    for i = 0 to n - 1 do
      let c = Geom.Rect.center (Placement.instance_rect p i) in
      cx.(i) <- float_of_int c.Geom.Point.x;
      cy.(i) <- float_of_int c.Geom.Point.y
    done;
    for it = 1 to 12 do
      centroid_step p cx cy 0.6;
      if it mod 3 = 0 then rescale ~mix:0.4 p cx cy
    done;
    slot_assign p cx cy;
    Legalize.legalize p;
    let h = Hpwl.total p in
    if h < !best_b_hpwl then begin
      best_b_hpwl := h;
      save_coords p best_b
    end
  done;
  restore_coords p best_b;
  (* phase C: legalised refinement with a small blend; refinement can hurt
     after legalisation scrambles the relaxed order, so keep the best
     placement seen *)
  let best = copy_coords p in
  let best_hpwl = ref (Hpwl.total p) in
  for _ = 1 to config.relax_passes do
    for i = 0 to n - 1 do
      let c = Geom.Rect.center (Placement.instance_rect p i) in
      cx.(i) <- float_of_int c.Geom.Point.x;
      cy.(i) <- float_of_int c.Geom.Point.y
    done;
    centroid_step p cx cy config.blend;
    let rh = p.tech.Pdk.Tech.row_height in
    for i = 0 to n - 1 do
      let m = p.design.Netlist.Design.instances.(i).master in
      let x = int_of_float cx.(i) - (m.Pdk.Stdcell.width / 2) in
      let y = int_of_float cy.(i) - (m.Pdk.Stdcell.height / 2) in
      p.xs.(i) <- max 0 (min x (Geom.Rect.width p.die - m.Pdk.Stdcell.width));
      p.ys.(i) <- max 0 (min y ((p.num_rows - 1) * rh))
    done;
    Legalize.legalize p;
    let h = Hpwl.total p in
    if h < !best_hpwl then begin
      best_hpwl := h;
      save_coords p best
    end
  done;
  restore_coords p best

let place ?(config = default_config) (p : Placement.t) =
  Obs.with_span "place.global"
    ~attrs:[ ("instances", `Int (Placement.num_instances p)) ]
    (fun () ->
      place_impl config p;
      Obs.add_attr "hpwl_dbu" (`Int (Hpwl.total p)))
