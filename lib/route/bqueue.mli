(** Bucket ("dial") priority queue of integer payloads keyed by integer
    priority, for the A* open list.

    Router edge costs are small bounded integers (track pitch + layer
    surcharge + congestion penalty), so consecutive pop priorities move
    through a narrow, mostly increasing band. A bucket per priority with
    a cursor that only scans forward makes push and pop O(1) amortised —
    no comparisons, no sifting — which is why it replaces {!Heap} on the
    router hot path. {!Heap} remains for callers needing arbitrary,
    widely-spread priorities.

    The structure is exact, not merely monotone: a push below the last
    popped priority moves the cursor back, so pops always return the
    current minimum even under the slightly non-monotone priorities of
    weighted A* (where the inflated heuristic can make a successor's
    f-value dip below its parent's by a bounded amount). Ties pop in
    FIFO order within a bucket, so equal-cost nodes expand in the order
    discovered — the stable ordering routing quality was tuned against.

    Internals: a growable array of per-priority buckets indexed by
    [prio - origin] ([origin] latches on the first push after a clear),
    a one-bit-per-bucket occupancy bitmap so the pop scan skips 63 empty
    buckets per word, and a touched-bucket list so [clear] is
    proportional to the buckets used, not the priority range. *)

type t

(** [create ?capacity ()] allocates a queue with [capacity] initial
    buckets (default 1024); the bucket range grows on demand. *)
val create : ?capacity:int -> unit -> t

val is_empty : t -> bool

(** Number of queued entries. *)
val size : t -> int

(** Total pushes since creation (monotone; survives [clear]). *)
val pushes : t -> int

(** [prepare t ~origin] latches the priority mapped to bucket 0 of an
    empty, just-cleared queue. A caller that knows a lower bound on
    every priority it will push avoids the below-origin reallocation
    entirely — the dominant cost when seeds arrive in arbitrary
    priority order. Pushes below [origin] remain correct (they
    reallocate). No-op once a push or an earlier [prepare] has latched
    the origin. *)
val prepare : t -> origin:int -> unit

val push : t -> prio:int -> value:int -> unit

(** [pop t] removes and returns the value queued at the smallest
    priority; ties within a priority pop FIFO. The priority it was
    queued at is readable as {!last_prio} until the next pop — split
    off the return value so the A* pop loop allocates no pair.
    @raise Invalid_argument on an empty queue. *)
val pop : t -> int

(** Priority of the most recently popped entry (0 before any pop). *)
val last_prio : t -> int

(** [clear t] empties the queue in time proportional to the number of
    buckets touched since the previous clear, keeping allocations. *)
val clear : t -> unit
