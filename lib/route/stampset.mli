(** Generation-stamped set of small integers.

    [mem]/[add]/[clear] are O(1): membership is a stamp comparison
    against the current generation, and clearing just bumps the
    generation. Members are also kept in an insertion-ordered vector so
    the set can be iterated without touching the (large, mostly stale)
    stamp array — exactly what the router needs for the per-net tree
    node set, which previously was an [int list] with [List.mem]
    membership tests, quadratic in tree size. *)

type t

(** [create n] covers the domain [0 .. n-1]. *)
val create : int -> t

(** O(1); keeps the stamp array, drops the members. *)
val clear : t -> unit

val mem : t -> int -> bool

(** [add t x] inserts [x] unless already present. *)
val add : t -> int -> unit

val cardinal : t -> int

(** [iter t f] applies [f] to every member in insertion order. *)
val iter : t -> (int -> unit) -> unit
