type t = {
  placement : Place.Placement.t;
  nx : int;
  ny : int;
  nl : int;
  pitch : int;
  wire_owner : int array;
  wire_usage : int array;
  via_usage : int array;
  (* pin-access index: built once at of_placement time, replacing the
     per-call full-grid scan (kept below as [pin_access_scan]) *)
  pin_base : int array;
  mutable pin_access_off : int array;
  mutable pin_access_nodes : int array;
  (* overflow ledger, maintained by commit/uncommit *)
  wire_users : int list array;
  via_users : int list array;
  net_over : int array;
  overflow_edges : int Atomic.t;
}

let free = -1
let blocked = -2
let num_layers = 6

let node g ~layer ~i ~j = (((layer - 1) * g.ny) + j) * g.nx + i
let i_of_node g n = n mod g.nx
let j_of_node g n = n / g.nx mod g.ny
let layer_of_node g n = (n / (g.nx * g.ny)) + 1
let node_count g = g.nl * g.nx * g.ny
let track_x g i = (i * g.pitch) + (g.pitch / 2)
let track_y g j = (j * g.pitch) + (g.pitch / 2)

let clamp lo hi v = max lo (min hi v)

let x_to_track g x = clamp 0 (g.nx - 1) (x / g.pitch)
let y_to_track g y = clamp 0 (g.ny - 1) (y / g.pitch)
let is_vertical_layer l = l land 1 = 1

let has_wire_edge g n =
  let l = layer_of_node g n in
  if is_vertical_layer l then j_of_node g n < g.ny - 1
  else i_of_node g n < g.nx - 1

let wire_dest g n =
  let l = layer_of_node g n in
  if is_vertical_layer l then n + g.nx else n + 1

let has_via_edge g n = layer_of_node g n < g.nl
let via_dest g n = n + (g.nx * g.ny)

(* A wire edge is contaminated by a pin shape when the shape strictly
   overlaps the edge's span: another net running through would short with
   the pin metal. *)
let install_m1_shape g ~net (r : Geom.Rect.t) =
  let i_lo = max 0 ((r.lx - (g.pitch / 2) + g.pitch - 1) / g.pitch) in
  let rec find_tracks i acc =
    if i >= g.nx || track_x g i > r.hx then List.rev acc
    else find_tracks (i + 1) (i :: acc)
  in
  let tracks = find_tracks (max 0 i_lo) [] in
  List.iter
    (fun i ->
      for j = max 0 (y_to_track g r.ly - 1) to min (g.ny - 2) (y_to_track g r.hy + 1) do
        let ya = track_y g j and yb = track_y g (j + 1) in
        if max ya r.ly < min yb r.hy then begin
          let n = node g ~layer:1 ~i ~j in
          let owner = g.wire_owner.(n) in
          if owner = free then g.wire_owner.(n) <- net
          else if owner <> net then g.wire_owner.(n) <- blocked
        end
      done)
    tracks

(* Conventional 12-track: horizontal M1 power rails at every row boundary
   block the M1 edges crossing them. *)
let install_m1_rails g =
  let p = g.placement in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  for r = 0 to p.Place.Placement.num_rows do
    let y = r * rh in
    for i = 0 to g.nx - 1 do
      for j = max 0 (y_to_track g y - 2) to min (g.ny - 2) (y_to_track g y + 1) do
        let ya = track_y g j and yb = track_y g (j + 1) in
        if ya < y && y <= yb then
          g.wire_owner.(node g ~layer:1 ~i ~j) <- blocked
      done
    done
  done

(* 7.5-track ClosedM1/OpenM1 cells draw power from M2 rails running along
   every placement-row boundary (the paper's Fig. 1b); the M2 track nearest
   each boundary is lost to routing. *)
let install_m2_rails g =
  let p = g.placement in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  for r = 0 to p.Place.Placement.num_rows do
    let y = r * rh in
    let j = y_to_track g y in
    (* pick the track whose centre is nearest the boundary *)
    let j =
      if j + 1 < g.ny && abs (track_y g (j + 1) - y) < abs (track_y g j - y)
      then j + 1
      else j
    in
    for i = 0 to g.nx - 2 do
      g.wire_owner.(node g ~layer:2 ~i ~j) <- blocked
    done
  done

(* Power-distribution stripes on the upper layers: every [period]-th
   vertical M5 track and horizontal M6 track carries power straps. *)
let install_pdn_stripes g =
  let period = 8 in
  if g.nl >= 5 then
    for i = 0 to g.nx - 1 do
      if i mod period = 0 then
        for j = 0 to g.ny - 2 do
          g.wire_owner.(node g ~layer:5 ~i ~j) <- blocked
        done
    done;
  if g.nl >= 6 then
    for j = 0 to g.ny - 1 do
      if j mod period = 0 then
        for i = 0 to g.nx - 2 do
          g.wire_owner.(node g ~layer:6 ~i ~j) <- blocked
        done
    done

(* --- pin-access ----------------------------------------------------- *)

(* Reference implementation: full track scan per shape. Superseded by the
   precomputed index below; kept as the oracle the property tests compare
   the index against. *)
let pin_access_scan g (pr : Netlist.Design.pin_ref) =
  let p = g.placement in
  let shapes = Place.Placement.pin_shapes p pr in
  let nodes = ref [] in
  let add n = if not (List.mem n !nodes) then nodes := n :: !nodes in
  List.iter
    (fun (layer, (r : Geom.Rect.t)) ->
      match layer with
      | Pdk.Layer.M1 ->
        for i = 0 to g.nx - 1 do
          let x = track_x g i in
          if r.lx <= x && x <= r.hx then
            for j = 0 to g.ny - 1 do
              let y = track_y g j in
              if r.ly <= y && y <= r.hy then add (node g ~layer:1 ~i ~j)
            done
        done
      | Pdk.Layer.M0 ->
        let j = y_to_track g ((r.ly + r.hy) / 2) in
        for i = 0 to g.nx - 1 do
          let x = track_x g i in
          if r.lx <= x && x <= r.hx then add (node g ~layer:1 ~i ~j)
        done
      | Pdk.Layer.M2 | Pdk.Layer.M3 | Pdk.Layer.M4 -> ())
    shapes;
  if !nodes = [] then begin
    (* degenerate pin: fall back to the node nearest the pin centre *)
    let c = Place.Placement.pin_pos p pr in
    add
      (node g ~layer:1 ~i:(x_to_track g c.Geom.Point.x)
         ~j:(y_to_track g c.Geom.Point.y))
  end;
  !nodes

(* Track indices i with lo <= track_x(i) <= hi, by direct arithmetic on
   the pitch; returns an empty range (lo_i > hi_i) when no track fits.
   Works identically for y/tracks since both pitches agree. *)
let track_range g ~count lo hi =
  let half = g.pitch / 2 in
  let v = lo - half in
  let lo_i = if v <= 0 then 0 else (v + g.pitch - 1) / g.pitch in
  let w = hi - half in
  let hi_i = if w < 0 then -1 else min (count - 1) (w / g.pitch) in
  (lo_i, hi_i)

(* Arithmetic twin of [pin_access_scan]: same discovery order (i
   ascending, then j), same dedup, same degenerate fallback — only the
   O(nx*ny) track scan is replaced by track-range arithmetic. *)
let pin_access_compute g (pr : Netlist.Design.pin_ref) =
  let p = g.placement in
  let shapes = Place.Placement.pin_shapes p pr in
  let nodes = ref [] in
  let add n = if not (List.mem n !nodes) then nodes := n :: !nodes in
  List.iter
    (fun (layer, (r : Geom.Rect.t)) ->
      match layer with
      | Pdk.Layer.M1 ->
        let i_lo, i_hi = track_range g ~count:g.nx r.lx r.hx in
        let j_lo, j_hi = track_range g ~count:g.ny r.ly r.hy in
        for i = i_lo to i_hi do
          for j = j_lo to j_hi do
            add (node g ~layer:1 ~i ~j)
          done
        done
      | Pdk.Layer.M0 ->
        let j = y_to_track g ((r.ly + r.hy) / 2) in
        let i_lo, i_hi = track_range g ~count:g.nx r.lx r.hx in
        for i = i_lo to i_hi do
          add (node g ~layer:1 ~i ~j)
        done
      | Pdk.Layer.M2 | Pdk.Layer.M3 | Pdk.Layer.M4 -> ())
    shapes;
  if !nodes = [] then begin
    let c = Place.Placement.pin_pos p pr in
    add
      (node g ~layer:1 ~i:(x_to_track g c.Geom.Point.x)
         ~j:(y_to_track g c.Geom.Point.y))
  end;
  !nodes

let pin_index g (pr : Netlist.Design.pin_ref) =
  g.pin_base.(pr.Netlist.Design.inst) + pr.Netlist.Design.pin

let build_pin_index g =
  let design = g.placement.Place.Placement.design in
  let instances = design.Netlist.Design.instances in
  let total =
    Array.fold_left
      (fun acc (inst : Netlist.Design.instance) ->
        acc + List.length inst.master.Pdk.Stdcell.pins)
      0 instances
  in
  let off = Array.make (total + 1) 0 in
  let nodes = ref (Array.make (max 16 total) 0) in
  let fill = ref 0 in
  let push n =
    if !fill = Array.length !nodes then begin
      let a = Array.make (2 * !fill) 0 in
      Array.blit !nodes 0 a 0 !fill;
      nodes := a
    end;
    !nodes.(!fill) <- n;
    incr fill
  in
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (_ : Pdk.Stdcell.pin) ->
          let pi = g.pin_base.(i) + k in
          off.(pi) <- !fill;
          (* [pin_access_compute] prepends, so reverse back to discovery
             order for the flat store *)
          List.iter push
            (List.rev (pin_access_compute g { Netlist.Design.inst = i; pin = k })))
        inst.master.Pdk.Stdcell.pins)
    instances;
  off.(total) <- !fill;
  g.pin_access_off <- off;
  g.pin_access_nodes <- Array.sub !nodes 0 !fill

let c_pin_access_hits = Obs.counter "route.pin_access_hits"

let pin_access g pr =
  Obs.Counter.incr c_pin_access_hits;
  let pi = pin_index g pr in
  let acc = ref [] in
  (* prepend in discovery order = the scan's reversed-discovery list *)
  for k = g.pin_access_off.(pi) to g.pin_access_off.(pi + 1) - 1 do
    acc := g.pin_access_nodes.(k) :: !acc
  done;
  !acc

let pin_access_iter g pr f =
  Obs.Counter.incr c_pin_access_hits;
  let pi = pin_index g pr in
  for k = g.pin_access_off.(pi) to g.pin_access_off.(pi + 1) - 1 do
    f g.pin_access_nodes.(k)
  done

(* The blockage installed below is a pure function of the die and the
   architecture — never of cell positions — which is what makes the
   skeleton cache of lib/serve sound: two placements with equal
   [skeleton_key]s get byte-identical rail/PDN blockage. *)

let grid_dims (p : Place.Placement.t) =
  let pitch = p.Place.Placement.tech.Pdk.Tech.m2_pitch in
  let nx = max 2 (Geom.Rect.width p.die / pitch) in
  let ny = max 2 (Geom.Rect.height p.die / pitch) in
  (nx, ny, pitch)

type skeleton = {
  sk_key : string;
  sk_nl : int;
  sk_nx : int;
  sk_ny : int;
  sk_pitch : int;
  sk_owner : int array;
}

let skeleton_key ?(layers = num_layers) ?(pdn_stripes = true)
    (p : Place.Placement.t) =
  let tech = p.Place.Placement.tech in
  let nx, ny, pitch = grid_dims p in
  Printf.sprintf "%s/l%d/%dx%d/pitch%d/rows%d/rh%d/pdn%c"
    (Pdk.Cell_arch.to_string tech.Pdk.Tech.arch)
    layers nx ny pitch p.Place.Placement.num_rows tech.Pdk.Tech.row_height
    (if pdn_stripes then 'y' else 'n')

let make_bare ~layers (p : Place.Placement.t) =
  if layers < 2 || layers > num_layers then
    invalid_arg "Grid.of_placement: layers must be in 2..6";
  let nx, ny, pitch = grid_dims p in
  let size = layers * nx * ny in
  let design = p.Place.Placement.design in
  let instances = design.Netlist.Design.instances in
  let pin_base = Array.make (max 1 (Array.length instances)) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      pin_base.(i) <- !acc;
      acc := !acc + List.length inst.master.Pdk.Stdcell.pins)
    instances;
  {
    placement = p;
    nx;
    ny;
    nl = layers;
    pitch;
    wire_owner = Array.make size free;
    wire_usage = Array.make size 0;
    via_usage = Array.make size 0;
    pin_base;
    pin_access_off = [||];
    pin_access_nodes = [||];
    wire_users = Array.make size [];
    via_users = Array.make size [];
    net_over = Array.make (max 1 (Netlist.Design.num_nets design)) 0;
    overflow_edges = Atomic.make 0;
  }

let install_blockage g ~pdn_stripes =
  let tech = g.placement.Place.Placement.tech in
  if tech.Pdk.Tech.arch = Pdk.Cell_arch.Conventional12 then install_m1_rails g
  else install_m2_rails g;
  if pdn_stripes then install_pdn_stripes g

let skeleton ?(layers = num_layers) ?(pdn_stripes = true)
    (p : Place.Placement.t) =
  let g = make_bare ~layers p in
  install_blockage g ~pdn_stripes;
  {
    sk_key = skeleton_key ~layers ~pdn_stripes p;
    sk_nl = g.nl;
    sk_nx = g.nx;
    sk_ny = g.ny;
    sk_pitch = g.pitch;
    sk_owner = g.wire_owner;
  }

let of_placement ?(layers = num_layers) ?(pdn_stripes = true) ?skeleton
    (p : Place.Placement.t) =
  let g = make_bare ~layers p in
  (match skeleton with
  | Some s ->
    let key = skeleton_key ~layers ~pdn_stripes p in
    if not (String.equal s.sk_key key) then
      invalid_arg
        (Printf.sprintf
           "Grid.of_placement: skeleton built for %s used with %s" s.sk_key
           key);
    Array.blit s.sk_owner 0 g.wire_owner 0 (Array.length s.sk_owner)
  | None -> install_blockage g ~pdn_stripes);
  let instances = p.Place.Placement.design.Netlist.Design.instances in
  Array.iteri
    (fun inst_id (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (_ : Pdk.Stdcell.pin) ->
          let pr = { Netlist.Design.inst = inst_id; pin = k } in
          let net = inst.pin_nets.(k) in
          let shapes = Place.Placement.pin_shapes p pr in
          List.iter
            (fun (layer, r) ->
              if Pdk.Layer.equal layer Pdk.Layer.M1 then
                install_m1_shape g ~net:(if net >= 0 then net else blocked) r)
            shapes)
        inst.master.Pdk.Stdcell.pins)
    instances;
  build_pin_index g;
  g

(* --- overflow ledger ------------------------------------------------ *)

(* Usage transitions keep three views in sync: per-edge user lists (who
   occupies the edge), per-net counts of occurrences on overflowed edges
   (so "does this net cross congestion" is O(1) during rip-up), and the
   atomic total of overflowed edges (so [overflow_count] never scans).
   The atomic makes the total safe under the region-sharded initial
   routing pass, where concurrent tiles commit to disjoint nodes and
   disjoint nets but share this one cell. *)

let remove_one net l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: tl -> if x = net then List.rev_append acc tl else go (x :: acc) tl
  in
  go [] l

let commit_wire g ~net n =
  Obs.Scopemon.record n;
  let u = g.wire_usage.(n) + 1 in
  g.wire_usage.(n) <- u;
  let others = g.wire_users.(n) in
  g.wire_users.(n) <- net :: others;
  if u = 2 then begin
    Atomic.incr g.overflow_edges;
    g.net_over.(net) <- g.net_over.(net) + 1;
    List.iter (fun x -> g.net_over.(x) <- g.net_over.(x) + 1) others
  end
  else if u > 2 then g.net_over.(net) <- g.net_over.(net) + 1

let uncommit_wire g ~net n =
  Obs.Scopemon.record n;
  let u = g.wire_usage.(n) in
  g.wire_usage.(n) <- u - 1;
  g.wire_users.(n) <- remove_one net g.wire_users.(n);
  if u = 2 then begin
    Atomic.decr g.overflow_edges;
    g.net_over.(net) <- g.net_over.(net) - 1;
    List.iter (fun x -> g.net_over.(x) <- g.net_over.(x) - 1) g.wire_users.(n)
  end
  else if u > 2 then g.net_over.(net) <- g.net_over.(net) - 1

let commit_via g ~net n =
  Obs.Scopemon.record n;
  let u = g.via_usage.(n) + 1 in
  g.via_usage.(n) <- u;
  let others = g.via_users.(n) in
  g.via_users.(n) <- net :: others;
  if u = 2 then begin
    Atomic.incr g.overflow_edges;
    g.net_over.(net) <- g.net_over.(net) + 1;
    List.iter (fun x -> g.net_over.(x) <- g.net_over.(x) + 1) others
  end
  else if u > 2 then g.net_over.(net) <- g.net_over.(net) + 1

let uncommit_via g ~net n =
  Obs.Scopemon.record n;
  let u = g.via_usage.(n) in
  g.via_usage.(n) <- u - 1;
  g.via_users.(n) <- remove_one net g.via_users.(n);
  if u = 2 then begin
    Atomic.decr g.overflow_edges;
    g.net_over.(net) <- g.net_over.(net) - 1;
    List.iter (fun x -> g.net_over.(x) <- g.net_over.(x) - 1) g.via_users.(n)
  end
  else if u > 2 then g.net_over.(net) <- g.net_over.(net) - 1

let net_overflow g net = g.net_over.(net)
let overflow_count g = Atomic.get g.overflow_edges

(* Reference implementation of [overflow_count], scanning every edge;
   kept as the oracle the ledger is tested against. *)
let overflow_count_scan g =
  let count = ref 0 in
  let size = node_count g in
  for n = 0 to size - 1 do
    if has_wire_edge g n && g.wire_usage.(n) > 1 then incr count;
    if has_via_edge g n && g.via_usage.(n) > 1 then incr count
  done;
  !count

let clear_usage g =
  Array.fill g.wire_usage 0 (Array.length g.wire_usage) 0;
  Array.fill g.via_usage 0 (Array.length g.via_usage) 0;
  Array.fill g.wire_users 0 (Array.length g.wire_users) [];
  Array.fill g.via_users 0 (Array.length g.via_users) [];
  Array.fill g.net_over 0 (Array.length g.net_over) 0;
  Atomic.set g.overflow_edges 0
