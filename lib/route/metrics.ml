type summary = {
  dm1 : int;
  m1_wl_um : float;
  via12 : int;
  hpwl_um : float;
  rwl_um : float;
  drvs : int;
  failed : int;
}

let subnet_is_dm1 (r : Router.result) (sn : Router.subnet) =
  let g = r.grid in
  sn.routed
  && Array.length sn.path > 0
  &&
  let column = ref (-1) in
  Array.for_all
    (fun c ->
      match Router.edge_of_code c with
      | Router.Via _ -> false
      | Router.Wire n ->
        Grid.layer_of_node g n = 1
        &&
        let i = Grid.i_of_node g n in
        if !column < 0 then begin
          column := i;
          true
        end
        else !column = i)
    sn.path

let dm1_count r =
  Array.fold_left
    (fun acc (nr : Router.net_route) ->
      acc
      + Array.fold_left
          (fun a sn -> if subnet_is_dm1 r sn then a + 1 else a)
          0 nr.subnets)
    0 r.routes

let wire_stats (r : Router.result) =
  let g = r.grid in
  let total = ref 0 and m1 = ref 0 and via12 = ref 0 in
  Array.iter
    (fun (nr : Router.net_route) ->
      Array.iter
        (fun (sn : Router.subnet) ->
          Array.iter
            (fun c ->
              match Router.edge_of_code c with
              | Router.Wire n ->
                total := !total + g.Grid.pitch;
                if Grid.layer_of_node g n = 1 then m1 := !m1 + g.Grid.pitch
              | Router.Via n ->
                if Grid.layer_of_node g n = 1 then incr via12)
            sn.path)
        nr.subnets)
    r.routes;
  (!total, !m1, !via12)

let summarize (r : Router.result) =
  Obs.with_span "route.metrics" (fun () ->
      let total, m1, via12 = wire_stats r in
      let overflow = Grid.overflow_count r.grid in
      let dm1 = dm1_count r in
      Obs.Gauge.set (Obs.gauge "route.via12") (float_of_int via12);
      Obs.Gauge.set (Obs.gauge "route.dm1") (float_of_int dm1);
      Obs.Gauge.set (Obs.gauge "route.drvs")
        (float_of_int (overflow + r.failed_subnets));
      {
        dm1;
        m1_wl_um = float_of_int m1 /. 1000.0;
        via12;
        hpwl_um = Place.Hpwl.total_um r.grid.Grid.placement;
        rwl_um = float_of_int total /. 1000.0;
        drvs = overflow + r.failed_subnets;
        failed = r.failed_subnets;
      })

(* wirelength per metal layer, micrometres; index 0 unused, 1..nl are
   M1..M6 *)
let per_layer_wl_um (r : Router.result) =
  let g = r.grid in
  let wl = Array.make (Grid.num_layers + 1) 0 in
  Array.iter
    (fun (nr : Router.net_route) ->
      Array.iter
        (fun (sn : Router.subnet) ->
          Array.iter
            (fun c ->
              match Router.edge_of_code c with
              | Router.Wire n ->
                let l = Grid.layer_of_node g n in
                wl.(l) <- wl.(l) + g.Grid.pitch
              | Router.Via _ -> ())
            sn.path)
        nr.subnets)
    r.routes;
  Array.map (fun v -> float_of_int v /. 1000.0) wl

(* vias per layer boundary; index l counts vias between Ml and M(l+1) *)
let vias_per_boundary (r : Router.result) =
  let g = r.grid in
  let vias = Array.make Grid.num_layers 0 in
  Array.iter
    (fun (nr : Router.net_route) ->
      Array.iter
        (fun (sn : Router.subnet) ->
          Array.iter
            (fun c ->
              match Router.edge_of_code c with
              | Router.Via n ->
                let l = Grid.layer_of_node g n in
                vias.(l) <- vias.(l) + 1
              | Router.Wire _ -> ())
            sn.path)
        nr.subnets)
    r.routes;
  vias

let net_lengths (r : Router.result) =
  let g = r.grid in
  let design = g.Grid.placement.Place.Placement.design in
  let lengths = Array.make (Netlist.Design.num_nets design) 0 in
  Array.iter
    (fun (nr : Router.net_route) ->
      Array.iter
        (fun (sn : Router.subnet) ->
          Array.iter
            (fun c ->
              match Router.edge_of_code c with
              | Router.Wire _ ->
                lengths.(nr.net_id) <- lengths.(nr.net_id) + g.Grid.pitch
              | Router.Via _ -> ())
            sn.path)
        nr.subnets)
    r.routes;
  lengths

let pp_summary ppf s =
  Format.fprintf ppf
    "dm1=%d m1wl=%.1fum via12=%d hpwl=%.1fum rwl=%.1fum drvs=%d failed=%d"
    s.dm1 s.m1_wl_um s.via12 s.hpwl_um s.rwl_um s.drvs s.failed
