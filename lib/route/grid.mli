(** Track-level routing grid over layers M1..M6.

    Tracks sit at the real track pitch (vertical M1/M3 tracks at the
    placement-site pitch, horizontal M2/M4 tracks at the M2 pitch), so one
    wire per track edge is the physical capacity — an edge used twice is a
    routing DRV, which is how the congestion experiments count violations.

    Each layer only has edges along its preferred direction (odd layers
    M1/M3/M5 vertical, even layers M2/M4/M6 horizontal); adjacent layers
    are connected by via edges at every track crossing.

    Pin geometry from the placement becomes blockage-with-owner: M1 edges
    covered by a ClosedM1 (or conventional) pin are reserved for that pin's
    net — other nets cannot pass through, but the owner net can. The
    conventional 12-track architecture additionally blocks every M1 edge
    that crosses a row boundary (the horizontal M1 power rails), which is
    exactly why it cannot route inter-row M1. *)

type t = {
  placement : Place.Placement.t;
  nx : int;                (** vertical track count (x direction) *)
  ny : int;                (** horizontal track count (y direction) *)
  nl : int;                (** number of metal layers in this grid *)
  pitch : int;             (** track pitch in DBU, both directions *)
  wire_owner : int array;  (** per (layer,node): [free] / [blocked] / net id *)
  wire_usage : int array;  (** routes using the wire edge *)
  via_usage : int array;   (** routes using the via edge above the node *)
  pin_base : int array;    (** per instance: first flat pin index *)
  mutable pin_access_off : int array;
      (** pin-access index offsets, length total pins + 1 *)
  mutable pin_access_nodes : int array;
      (** access nodes of flat pin [p]: entries
          [pin_access_off.(p) .. pin_access_off.(p+1) - 1] *)
  wire_users : int list array;
      (** nets currently committed on the wire edge, one entry per
          committed occurrence (ledger) *)
  via_users : int list array;  (** same for via edges *)
  net_over : int array;
      (** per net: committed occurrences on overflowed edges (ledger) *)
  overflow_edges : int Atomic.t;
      (** total edges with usage > 1 (ledger; atomic because concurrent
          tiles of the sharded initial pass share it) *)
}

(** wire_owner value: unreserved. *)
val free : int

(** wire_owner value: hard blockage. *)
val blocked : int

(** 6: M1..M6, alternating vertical/horizontal preferred directions. *)
val num_layers : int

(** [node g ~layer ~i ~j] is the dense node index. [layer] is the metal
    index, 1..6. *)
val node : t -> layer:int -> i:int -> j:int -> int

val layer_of_node : t -> int -> int
val i_of_node : t -> int -> int
val j_of_node : t -> int -> int

(** [node_count g] is the total number of nodes (= size of the edge
    arrays; the wire edge at a node leads to the next node in the layer's
    preferred direction, the via edge leads to the same (i,j) one layer
    up). *)
val node_count : t -> int

(** [track_x g i] / [track_y g j] are the chip coordinates of track
    centres. *)
val track_x : t -> int -> int

val track_y : t -> int -> int

(** [x_to_track g x] is the nearest vertical-track index, clamped to the
    grid. *)
val x_to_track : t -> int -> int

val y_to_track : t -> int -> int

(** [is_vertical_layer l] is true for the odd (vertical) layers. *)
val is_vertical_layer : int -> bool

(** [has_wire_edge g n] is true when node [n] has a successor along its
    layer's preferred direction. *)
val has_wire_edge : t -> int -> bool

(** [wire_dest g n] is that successor node. *)
val wire_dest : t -> int -> int

(** [has_via_edge g n] is true when node [n] is on M1..M3 (via up). *)
val has_via_edge : t -> int -> bool

(** [via_dest g n] is the node one layer up at the same (i,j). *)
val via_dest : t -> int -> int

(** {1 Grid skeleton}

    The power-grid blockage (M1/M2 rails, M5/M6 PDN straps) is a pure
    function of the die size, the row structure and the architecture —
    never of cell positions — so it can be computed once and shared
    across every placement of the same die. The batch service
    ([lib/serve]) caches skeletons keyed by {!skeleton_key}; a one-shot
    run never needs them. *)

(** The placement-independent blockage of a grid: the [wire_owner]
    contents after rail/PDN installation and before any pin shape.
    Immutable once built — [of_placement] copies it into the fresh
    grid. *)
type skeleton = private {
  sk_key : string;      (** the {!skeleton_key} it was built for *)
  sk_nl : int;          (** layer count the skeleton covers *)
  sk_nx : int;
  sk_ny : int;
  sk_pitch : int;
  sk_owner : int array; (** blockage-only wire_owner, length nl*nx*ny *)
}

(** [skeleton_key ?layers ?pdn_stripes p] identifies the blockage
    content a grid for [p] needs: architecture, layer count, track
    counts, pitch, row structure and the PDN switch. Two placements
    with equal keys can share one {!skeleton}. *)
val skeleton_key : ?layers:int -> ?pdn_stripes:bool -> Place.Placement.t -> string

(** [skeleton ?layers ?pdn_stripes p] computes the shared blockage for
    [p]'s die by running exactly the installation [of_placement] would
    run, so building a grid from the result is byte-identical to
    building it from scratch. *)
val skeleton : ?layers:int -> ?pdn_stripes:bool -> Place.Placement.t -> skeleton

(** [of_placement ?layers ?pdn_stripes ?skeleton p] builds the grid and
    installs blockage: per-pin M1 blockage with net ownership; M1 power
    rails for the conventional architecture or M2 power rails along row
    boundaries for the 7.5-track architectures; and, when [pdn_stripes]
    (default true), periodic M5/M6 power straps. [layers] (2..6, default
    6) limits the routable stack. Passing a cached [skeleton] replaces
    the rail/PDN installation with an array copy; its key must equal
    [skeleton_key ?layers ?pdn_stripes p] (checked — raises
    [Invalid_argument] on a mismatched skeleton rather than building a
    wrong grid). Rebuild after the placement changes. *)
val of_placement :
  ?layers:int -> ?pdn_stripes:bool -> ?skeleton:skeleton ->
  Place.Placement.t -> t

(** [pin_access g pr] is the list of grid nodes at which a route may
    terminate for the given pin: on-M1 nodes along the pin segment for
    ClosedM1/conventional pins, on-M1 via-landing nodes over the M0
    segment for OpenM1 pins. Never empty for pins inside the die,
    duplicate-free. Served from the index precomputed at
    [of_placement] time; O(answer), not O(nx*ny). Bumps the
    [route.pin_access_hits] counter when observability is enabled. *)
val pin_access : t -> Netlist.Design.pin_ref -> int list

(** [pin_access_iter g pr f] applies [f] to each access node without
    allocating the list; the hot-path form of [pin_access]. *)
val pin_access_iter : t -> Netlist.Design.pin_ref -> (int -> unit) -> unit

(** Reference implementation of [pin_access]: the original full track
    scan over every shape. Quadratic in grid side — kept only as the
    oracle for property tests of the index. *)
val pin_access_scan : t -> Netlist.Design.pin_ref -> int list

(** {2 Usage commitment and the overflow ledger}

    All routed usage must flow through these four functions: besides the
    usage counters they maintain the overflow ledger (per-edge user
    lists, per-net overflow-occurrence counts, and the total overflowed
    edge count), which is what makes [overflow_count] O(1) and lets
    rip-up identify congested nets without rescanning every path.
    [net] is the committing net id (>= 0). *)

val commit_wire : t -> net:int -> int -> unit
val commit_via : t -> net:int -> int -> unit
val uncommit_wire : t -> net:int -> int -> unit
val uncommit_via : t -> net:int -> int -> unit

(** [net_overflow g net] is the number of [net]'s committed edge
    occurrences currently lying on overflowed edges; positive exactly
    when the net crosses congestion. O(1). *)
val net_overflow : t -> int -> int

(** [overflow_count g] is the number of wire and via edges whose usage
    exceeds capacity 1 — the DRV proxy. O(1), read from the ledger. *)
val overflow_count : t -> int

(** Reference implementation of [overflow_count], scanning every edge;
    kept as the test oracle for the ledger. *)
val overflow_count_scan : t -> int

(** [clear_usage g] zeroes all usage counters and the ledger. *)
val clear_usage : t -> unit
