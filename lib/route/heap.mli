(** Growable binary min-heap of integer payloads keyed by integer
    priority. The router's A* open list is now the {!Bqueue} dial
    queue, which exploits the small bounded edge costs; this heap
    remains for callers that need arbitrary, widely-spread priorities
    (and as the reference ordering the bucket queue is property-tested
    against). *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val size : t -> int
val push : t -> prio:int -> value:int -> unit

(** [pop h] removes and returns the (priority, value) pair with the
    smallest priority.
    @raise Invalid_argument on an empty heap. *)
val pop : t -> int * int

val clear : t -> unit
