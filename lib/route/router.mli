(** Capacity-aware detailed router.

    Every signal net is decomposed into 2-pin subnets by a Manhattan
    minimum spanning tree over its pin positions; subnets are routed with
    multi-source A* over the track grid (sources include the net's
    already-routed nodes, so routes reuse the growing tree). Costs are
    wirelength plus via cost plus a congestion penalty on overfull edges;
    rip-up-and-reroute passes with escalating penalty resolve overflow.

    Because A* is cost-optimal and a direct vertical M1 route is the
    cheapest possible connection (no vias onto M2, shortest length), the
    router exploits dM1 opportunities exactly when the placement makes
    them feasible — the behaviour the paper relies on from its commercial
    router. Set [use_dm1 = false] to forbid M1 inter-row routing and
    measure the ablation. *)

type config = {
  via_cost : int;          (** cost of one via, in DBU-equivalents *)
  overflow_penalty : int;  (** added cost per existing user of an edge *)
  ripup_passes : int;      (** max rip-up-and-reroute passes after the
                               initial routing pass *)
  search_margin : int;     (** A* window margin around the subnet bbox, tracks *)
  use_dm1 : bool;          (** when false, M1 edges crossing row boundaries
                               are treated as blocked *)
  astar_weight_pct : int;  (** heuristic inflation for weighted A*, percent;
                               100 = admissible/optimal, 125 = default *)
  m1_surcharge : int;      (** extra cost per M1 wire edge: M1 tracks are
                               partially consumed by pins, so the router
                               treats them as scarcer than upper layers;
                               short dM1 connections remain the cheapest
                               way to join aligned pins *)
  layers : int;            (** metal layers available to the router, 2..6 *)
  pdn_stripes : bool;      (** install power-distribution blockage *)
  shard_tracks : int;      (** tile side, in tracks, for the sharded
                               initial pass (clamped to >= 8). The tiling
                               is a fixed function of the grid — never of
                               [Exec.jobs] — so routing results are
                               byte-identical across pool sizes *)
  grid_skeleton : Grid.skeleton option;
      (** cached rail/PDN blockage to seed {!Grid.of_placement} with
          (see {!Grid.skeleton}); [None] recomputes it. Purely a
          construction shortcut — routing results are byte-identical
          either way *)
}

val default_config : config

type edge =
  | Wire of int  (** wire edge at node n: n -- successor in pref. dir. *)
  | Via of int   (** via edge at node n: n -- same (i,j) one layer up *)

(** [edge_of_code c] decodes one element of a [path] array: paths are
    stored packed (node index shifted left one, low bit set for vias),
    which halves the memory of an [edge list] and removes pointer
    chasing from commit/uncommit/metrics loops. *)
val edge_of_code : int -> edge

type subnet = {
  src : Netlist.Design.pin_ref;     (** pin at the MST edge's source *)
  dst : Netlist.Design.pin_ref;     (** pin at the MST edge's sink *)
  mutable path : int array;         (** packed grid edges of the found
                                        route (decode with
                                        {!edge_of_code}); empty when
                                        unrouted or when the pins share
                                        a grid node *)
  mutable routed : bool;            (** false only when A* failed *)
}

type net_route = {
  net_id : int;            (** design net id *)
  subnets : subnet array;  (** MST decomposition, in routing order *)
}

type result = {
  grid : Grid.t;                 (** the grid with final usage counts *)
  routes : net_route array;      (** one entry per signal net *)
  config : config;               (** configuration the run used *)
  mutable failed_subnets : int;  (** subnets with [routed = false] *)
}

(** [route ?config placement] routes all signal nets of the placement.

    The initial pass is region-sharded: the grid is cut into fixed
    [shard_tracks]-sized tiles, nets whose pin-access bounding box plus
    the first search margin fits inside one tile are routed concurrently
    on the shared [Exec] pool with searches clamped to their tile, and
    the remainder (tile-spanning nets plus any in-tile failure, rolled
    back first) is routed sequentially afterwards in the original order
    with full window escalation. Concurrent tiles touch disjoint usage
    cells and the tiling ignores [Exec.jobs], so results are
    byte-identical across [--jobs]. Rip-up passes stay sequential.

    Hot-path machinery: pin access nodes come from the index
    precomputed at [Grid.of_placement] time, the A* open list is the
    {!Bqueue} dial queue, the net's already-connected node set is a
    generation-stamped {!Stampset}, and rip-up passes consult the
    grid's overflow ledger ([Grid.net_overflow]) instead of rescanning
    every stored path — a pass with no congested net is skipped in
    O(nets).

    Emits observability when [Obs.enabled]: a [route] span with nested
    [route.initial] and per-pass [route.ripup] spans, the
    [route.subnets] / [route.subnet_attempts] / [route.ripup_nets] /
    [route.ripup_candidates] / [route.failed_subnets] /
    [route.shard_nets] / [route.deferred_nets] / [route.bq_pushes] /
    [route.pin_access_hits] counters and the [route.overflow_edges]
    gauge. *)
val route : ?config:config -> Place.Placement.t -> result
