type t = {
  stamp : int array;
  mutable gen : int;
  mutable items : int array;
  mutable n : int;
}

let create size =
  { stamp = Array.make (max 1 size) 0; gen = 1; items = Array.make 64 0; n = 0 }

let clear t =
  t.gen <- t.gen + 1;
  t.n <- 0

let mem t x = t.stamp.(x) = t.gen
let cardinal t = t.n

let add t x =
  if t.stamp.(x) <> t.gen then begin
    t.stamp.(x) <- t.gen;
    if t.n = Array.length t.items then begin
      let a = Array.make (2 * t.n) 0 in
      Array.blit t.items 0 a 0 t.n;
      t.items <- a
    end;
    t.items.(t.n) <- x;
    t.n <- t.n + 1
  end

let iter t f =
  for k = 0 to t.n - 1 do
    f t.items.(k)
  done
