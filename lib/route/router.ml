type config = {
  via_cost : int;
  overflow_penalty : int;
  ripup_passes : int;
  search_margin : int;
  use_dm1 : bool;
  astar_weight_pct : int;
  m1_surcharge : int;
  layers : int;
  pdn_stripes : bool;
  shard_tracks : int;
}

let default_config =
  {
    via_cost = 72;
    overflow_penalty = 600;
    ripup_passes = 2;
    search_margin = 16;
    use_dm1 = true;
    astar_weight_pct = 125;
    m1_surcharge = 6;
    layers = 6;
    pdn_stripes = true;
    shard_tracks = 64;
  }

(* Metric handles created once: the initial pass bumps these from
   worker domains, where a per-call registry lookup would contend on
   the registry lock. *)
let c_subnets = Obs.counter "route.subnets"
let c_subnet_attempts = Obs.counter "route.subnet_attempts"
let c_ripup_nets = Obs.counter "route.ripup_nets"
let c_failed_subnets = Obs.counter "route.failed_subnets"
let c_shard_nets = Obs.counter "route.shard_nets"
let c_deferred_nets = Obs.counter "route.deferred_nets"
let g_overflow = Obs.gauge "route.overflow_edges"

type edge =
  | Wire of int
  | Via of int

type subnet = {
  src : Netlist.Design.pin_ref;
  dst : Netlist.Design.pin_ref;
  mutable path : edge list;
  mutable routed : bool;
}

type net_route = {
  net_id : int;
  subnets : subnet array;
}

type result = {
  grid : Grid.t;
  routes : net_route array;
  config : config;
  mutable failed_subnets : int;
}

(* --- search context with generation-stamped per-node state --- *)

type ctx = {
  g : Grid.t;
  cfg : config;
  mutable penalty : int;  (** congestion penalty, escalated per RRR pass *)
  dist : int array;
  gen : int array;
  parent : int array;
  is_target : int array;  (* generation-stamped target marks *)
  tgen : int array;
  heap : Heap.t;
  mutable generation : int;
  row_tracks : int;       (* horizontal tracks per placement row *)
}

let make_ctx g cfg =
  let n = Grid.node_count g in
  let rh = g.Grid.placement.Place.Placement.tech.Pdk.Tech.row_height in
  {
    g;
    cfg;
    penalty = cfg.overflow_penalty;
    dist = Array.make n 0;
    gen = Array.make n 0;
    parent = Array.make n (-1);
    is_target = Array.make n 0;
    tgen = Array.make n 0;
    heap = Heap.create ~capacity:4096 ();
    generation = 0;
    row_tracks = max 1 (rh / g.Grid.pitch);
  }

(* When dM1 is disabled, forbid M1 wire edges that cross a placement-row
   boundary, confining M1 to intra-row jogs. *)
let m1_edge_allowed ctx n =
  ctx.cfg.use_dm1
  ||
  let g = ctx.g in
  let j = Grid.j_of_node g n in
  let y0 = Grid.track_y g j and y1 = Grid.track_y g (j + 1) in
  let rh = g.Grid.placement.Place.Placement.tech.Pdk.Tech.row_height in
  y0 / rh = (y1 - 1) / rh && y1 mod rh <> 0

let wire_cost ctx ~net n =
  let g = ctx.g in
  let owner = g.Grid.wire_owner.(n) in
  if owner = Grid.blocked || (owner >= 0 && owner <> net) then None
  else if Grid.layer_of_node g n = 1 && not (m1_edge_allowed ctx n) then None
  else begin
    let usage = g.Grid.wire_usage.(n) in
    let surcharge =
      if Grid.layer_of_node g n = 1 then ctx.cfg.m1_surcharge else 0
    in
    Some (g.Grid.pitch + surcharge + (usage * ctx.penalty))
  end

let via_cost ctx n =
  let usage = ctx.g.Grid.via_usage.(n) in
  Some (ctx.cfg.via_cost + (usage * ctx.penalty))

(* A*: multi-source (the net's current tree plus the source pin's access
   nodes) to the target pin's access nodes, within a window around the
   subnet bounding box. [clamp] (ilo, ihi, jlo, jhi) intersects every
   escalation window with a fixed rectangle; the sharded initial pass
   uses it to confine each tile's searches — reads and writes included —
   to that tile, which is what makes concurrent tiles independent. *)
let search ?clamp ctx ~net ~sources ~targets =
  let g = ctx.g in
  ctx.generation <- ctx.generation + 1;
  let gen = ctx.generation in
  Heap.clear ctx.heap;
  (* window *)
  let imin = ref max_int and imax = ref min_int in
  let jmin = ref max_int and jmax = ref min_int in
  let widen n =
    let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
    if i < !imin then imin := i;
    if i > !imax then imax := i;
    if j < !jmin then jmin := j;
    if j > !jmax then jmax := j
  in
  List.iter widen sources;
  List.iter widen targets;
  let ti_min = ref max_int and ti_max = ref min_int in
  let tj_min = ref max_int and tj_max = ref min_int in
  List.iter
    (fun n ->
      let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
      if i < !ti_min then ti_min := i;
      if i > !ti_max then ti_max := i;
      if j < !tj_min then tj_min := j;
      if j > !tj_max then tj_max := j;
      ctx.is_target.(n) <- 1;
      ctx.tgen.(n) <- gen)
    targets;
  let run margin =
    let ilo = max 0 (!imin - margin) and ihi = min (g.Grid.nx - 1) (!imax + margin) in
    let jlo = max 0 (!jmin - margin) and jhi = min (g.Grid.ny - 1) (!jmax + margin) in
    let ilo, ihi, jlo, jhi =
      match clamp with
      | None -> (ilo, ihi, jlo, jhi)
      | Some (ci0, ci1, cj0, cj1) ->
        (max ilo ci0, min ihi ci1, max jlo cj0, min jhi cj1)
    in
    let in_window n =
      let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
      i >= ilo && i <= ihi && j >= jlo && j <= jhi
    in
    let h n =
      let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
      let dx = max 0 (max (!ti_min - i) (i - !ti_max)) in
      let dy = max 0 (max (!tj_min - j) (j - !tj_max)) in
      (* weighted A*: inflating the admissible Manhattan bound trades a
         bounded amount of path optimality for much smaller search trees *)
      (dx + dy) * g.Grid.pitch * ctx.cfg.astar_weight_pct / 100
    in
    Heap.clear ctx.heap;
    ctx.generation <- ctx.generation + 1;
    let gen2 = ctx.generation in
    let relax ~from n cost =
      let nd = ctx.dist.(from) + cost in
      if ctx.gen.(n) <> gen2 || ctx.dist.(n) > nd then begin
        ctx.gen.(n) <- gen2;
        ctx.dist.(n) <- nd;
        ctx.parent.(n) <- from;
        Heap.push ctx.heap ~prio:(nd + h n) ~value:n
      end
    in
    List.iter
      (fun n ->
        ctx.gen.(n) <- gen2;
        ctx.dist.(n) <- 0;
        ctx.parent.(n) <- -1;
        Heap.push ctx.heap ~prio:(h n) ~value:n)
      sources;
    let found = ref (-1) in
    while !found < 0 && not (Heap.is_empty ctx.heap) do
      let d, u = Heap.pop ctx.heap in
      if ctx.gen.(u) = gen2 && d - h u <= ctx.dist.(u) then begin
        if ctx.tgen.(u) = gen && ctx.is_target.(u) = 1 then found := u
        else begin
          (* forward wire *)
          if Grid.has_wire_edge g u then begin
            let v = Grid.wire_dest g u in
            if in_window v then
              match wire_cost ctx ~net u with
              | Some c -> relax ~from:u v c
              | None -> ()
          end;
          (* backward wire *)
          let l = Grid.layer_of_node g u in
          let back =
            if Grid.is_vertical_layer l then
              if Grid.j_of_node g u > 0 then Some (u - g.Grid.nx) else None
            else if Grid.i_of_node g u > 0 then Some (u - 1)
            else None
          in
          (match back with
          | Some v when in_window v -> begin
            match wire_cost ctx ~net v with
            | Some c -> relax ~from:u v c
            | None -> ()
          end
          | Some _ | None -> ());
          (* via up *)
          if Grid.has_via_edge g u then begin
            let v = Grid.via_dest g u in
            match via_cost ctx u with
            | Some c -> relax ~from:u v c
            | None -> ()
          end;
          (* via down *)
          if l > 1 then begin
            let v = u - (g.Grid.nx * g.Grid.ny) in
            match via_cost ctx v with
            | Some c -> relax ~from:u v c
            | None -> ()
          end
        end
      end
    done;
    !found
  in
  let rec attempt margins =
    match margins with
    | [] -> None
    | m :: rest -> begin
      match run m with
      | -1 -> attempt rest
      | t -> Some t
    end
  in
  let whole = max g.Grid.nx g.Grid.ny in
  attempt [ ctx.cfg.search_margin; ctx.cfg.search_margin * 4; whole ]

(* Reconstruct the edge list from the parent chain ending at [t]. *)
let reconstruct ctx t =
  let g = ctx.g in
  let rec go node acc =
    let p = ctx.parent.(node) in
    if p < 0 then acc
    else begin
      let e =
        if p + (g.Grid.nx * g.Grid.ny) = node then Via p
        else if node + (g.Grid.nx * g.Grid.ny) = p then Via node
        else if Grid.has_wire_edge g p && Grid.wire_dest g p = node then Wire p
        else Wire node
      in
      go p (e :: acc)
    end
  in
  go t []

let commit g path =
  List.iter
    (function
      | Wire n -> g.Grid.wire_usage.(n) <- g.Grid.wire_usage.(n) + 1
      | Via n -> g.Grid.via_usage.(n) <- g.Grid.via_usage.(n) + 1)
    path

let uncommit g path =
  List.iter
    (function
      | Wire n -> g.Grid.wire_usage.(n) <- g.Grid.wire_usage.(n) - 1
      | Via n -> g.Grid.via_usage.(n) <- g.Grid.via_usage.(n) - 1)
    path

(* Nodes touched by a path (for growing the net's source set). *)
let path_nodes g path =
  List.concat_map
    (function
      | Wire n -> [ n; Grid.wire_dest g n ]
      | Via n -> [ n; Grid.via_dest g n ])
    path

(* Manhattan-MST decomposition of a net's pins (Prim). *)
let decompose (p : Place.Placement.t) (net : Netlist.Design.net) =
  let pins = net.pins in
  let k = Array.length pins in
  if k < 2 then [||]
  else begin
    let pos = Array.map (Place.Placement.pin_pos p) pins in
    let in_tree = Array.make k false in
    let best_d = Array.make k max_int in
    let best_src = Array.make k 0 in
    in_tree.(0) <- true;
    for v = 1 to k - 1 do
      best_d.(v) <- Geom.Point.manhattan pos.(0) pos.(v)
    done;
    let edges = ref [] in
    for _ = 1 to k - 1 do
      let u = ref (-1) in
      for v = 0 to k - 1 do
        if (not in_tree.(v)) && (!u < 0 || best_d.(v) < best_d.(!u)) then u := v
      done;
      let v = !u in
      in_tree.(v) <- true;
      edges := (best_src.(v), v) :: !edges;
      for w = 0 to k - 1 do
        if not in_tree.(w) then begin
          let d = Geom.Point.manhattan pos.(v) pos.(w) in
          if d < best_d.(w) then begin
            best_d.(w) <- d;
            best_src.(w) <- v
          end
        end
      done
    done;
    Array.of_list
      (List.rev_map
         (fun (a, b) ->
           { src = pins.(a); dst = pins.(b); path = []; routed = false })
         !edges)
  end

let route_subnet ?clamp ctx ~net ~tree_nodes subnet =
  let g = ctx.g in
  let src_access = Grid.pin_access g subnet.src in
  let dst_access = Grid.pin_access g subnet.dst in
  let sources = List.rev_append !tree_nodes src_access in
  (* trivial case: a source IS a target *)
  let direct =
    List.exists (fun s -> List.mem s dst_access) sources
  in
  if direct then begin
    subnet.path <- [];
    subnet.routed <- true;
    tree_nodes := List.rev_append dst_access !tree_nodes;
    true
  end
  else
    match search ?clamp ctx ~net ~sources ~targets:dst_access with
    | Some t ->
      let path = reconstruct ctx t in
      commit g path;
      subnet.path <- path;
      subnet.routed <- true;
      tree_nodes :=
        List.rev_append (path_nodes g path)
          (List.rev_append dst_access !tree_nodes);
      true
    | None ->
      subnet.path <- [];
      subnet.routed <- false;
      false

let path_overflows g path =
  List.exists
    (function
      | Wire n -> g.Grid.wire_usage.(n) > 1
      | Via n -> g.Grid.via_usage.(n) > 1)
    path

let route ?(config = default_config) (p : Place.Placement.t) =
  Obs.with_span "route" (fun () ->
  let g =
    Grid.of_placement ~layers:config.layers ~pdn_stripes:config.pdn_stripes p
  in
  let ctx = make_ctx g config in
  let design = p.Place.Placement.design in
  let signal = Netlist.Design.signal_nets design in
  (* shorter nets first: they have fewer detour options *)
  let order =
    List.sort
      (fun a b -> Int.compare (Place.Hpwl.net p a) (Place.Hpwl.net p b))
      signal
  in
  let routes =
    Array.of_list
      (List.map
         (fun nid -> { net_id = nid; subnets = decompose p design.nets.(nid) })
         order)
  in
  Obs.add_attr "nets" (`Int (Array.length routes));
  Obs.Counter.add c_subnets
    (Array.fold_left (fun acc nr -> acc + Array.length nr.subnets) 0 routes);
  (* Sequential semantics: attempt every subnet even after a failure (the
     rip-up passes may still fix the rest of the tree). *)
  let route_net_full ctx (nr : net_route) =
    let tree_nodes = ref [] in
    Array.iter
      (fun sn ->
        Obs.Counter.incr c_subnet_attempts;
        ignore (route_subnet ctx ~net:nr.net_id ~tree_nodes sn))
      nr.subnets
  in
  (* Tile-confined attempt for the sharded pass: on the first subnet that
     cannot be routed inside the tile, roll the whole net back and report
     it deferred, so the sequential phase retries it with full window
     escalation against the final phase-1 grid state. *)
  let route_net_clamped ~clamp ctx (nr : net_route) =
    let tree_nodes = ref [] in
    let ok = ref true in
    Array.iter
      (fun sn ->
        if !ok then begin
          Obs.Counter.incr c_subnet_attempts;
          if not (route_subnet ~clamp ctx ~net:nr.net_id ~tree_nodes sn) then
            ok := false
        end)
      nr.subnets;
    if not !ok then
      Array.iter
        (fun sn ->
          if sn.routed then begin
            uncommit g sn.path;
            sn.path <- [];
            sn.routed <- false
          end)
        nr.subnets;
    !ok
  in
  (* --- region-sharded initial pass ---------------------------------
     The routing grid is cut into fixed [shard_tracks]-sized tiles (the
     tiling depends only on the grid, never on [Exec.jobs], so results
     are byte-identical across pool sizes). A net is tile-local when
     every access node of every pin, padded by the first search margin,
     lands in one tile; tile-local nets route concurrently with searches
     clamped to their tile, so concurrent tasks touch disjoint usage
     cells. Everything else — nets spanning tiles, plus any net that
     failed inside its tile — is routed sequentially afterwards, in the
     original short-nets-first order, with the ordinary unclamped
     escalation. Rip-up stays fully sequential. *)
  let t = max 8 config.shard_tracks in
  let tiles_x = (g.Grid.nx + t - 1) / t in
  let tiles_y = (g.Grid.ny + t - 1) / t in
  let m = config.search_margin in
  let tile_of (nr : net_route) =
    let imin = ref max_int and imax = ref min_int in
    let jmin = ref max_int and jmax = ref min_int in
    Array.iter
      (fun pr ->
        List.iter
          (fun n ->
            let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
            if i < !imin then imin := i;
            if i > !imax then imax := i;
            if j < !jmin then jmin := j;
            if j > !jmax then jmax := j)
          (Grid.pin_access g pr))
      design.nets.(nr.net_id).pins;
    if !imin > !imax then None
    else begin
      let ilo = max 0 (!imin - m) and ihi = min (g.Grid.nx - 1) (!imax + m) in
      let jlo = max 0 (!jmin - m) and jhi = min (g.Grid.ny - 1) (!jmax + m) in
      if ilo / t = ihi / t && jlo / t = jhi / t then
        Some (((jlo / t) * tiles_x) + (ilo / t))
      else None
    end
  in
  let buckets = Array.make (tiles_x * tiles_y) [] in
  let seq_nets = ref [] in
  Array.iteri
    (fun k nr ->
      if Array.length nr.subnets > 0 then
        match tile_of nr with
        | Some ti -> buckets.(ti) <- k :: buckets.(ti)
        | None -> seq_nets := k :: !seq_nets)
    routes;
  let tile_jobs =
    let acc = ref [] in
    for ti = Array.length buckets - 1 downto 0 do
      match buckets.(ti) with
      | [] -> ()
      | l -> acc := (ti, Array.of_list (List.rev l)) :: !acc
    done;
    Array.of_list !acc
  in
  let n_local = Array.fold_left (fun a (_, ns) -> a + Array.length ns) 0 tile_jobs in
  Obs.with_span "route.initial"
    ~attrs:[ ("tiles", `Int (Array.length tile_jobs)); ("local_nets", `Int n_local) ]
    (fun () ->
      (* Tiles are grouped into contiguous runs so each pool task
         allocates one search context, not one per tile. The grouping
         only affects scheduling: contexts are generation-stamped, so
         reusing one across tiles cannot change any search result. *)
      let deferred =
        if Array.length tile_jobs = 0 then []
        else begin
          let njobs = Array.length tile_jobs in
          let ngroups = min njobs (max 1 (Exec.jobs () * 4)) in
          let groups =
            Array.init ngroups (fun gi ->
                let lo = gi * njobs / ngroups and hi = (gi + 1) * njobs / ngroups in
                Array.sub tile_jobs lo (hi - lo))
          in
          let per_group =
            Exec.parallel_map ~chunk:1
              (fun tiles ->
                let tctx = make_ctx g config in
                let dropped = ref [] in
                Array.iter
                  (fun (ti, nets) ->
                    let tx = ti mod tiles_x and ty = ti / tiles_x in
                    let clamp =
                      ( tx * t,
                        min (g.Grid.nx - 1) (((tx + 1) * t) - 1),
                        ty * t,
                        min (g.Grid.ny - 1) (((ty + 1) * t) - 1) )
                    in
                    Array.iter
                      (fun k ->
                        if not (route_net_clamped ~clamp tctx routes.(k)) then
                          dropped := k :: !dropped)
                      nets)
                  tiles;
                List.rev !dropped)
              groups
          in
          List.concat (Array.to_list per_group)
        end
      in
      let seq = List.sort Int.compare (List.rev_append !seq_nets deferred) in
      Obs.Counter.add c_shard_nets (n_local - List.length deferred);
      Obs.Counter.add c_deferred_nets (List.length seq);
      Obs.add_attr "sequential_nets" (`Int (List.length seq));
      List.iter (fun k -> route_net_full ctx routes.(k)) seq);
  (* rip-up and reroute nets crossing overflowed edges, with the
     congestion penalty escalating each pass *)
  for pass = 1 to config.ripup_passes do
    Obs.with_span "route.ripup" ~attrs:[ ("pass", `Int pass) ] (fun () ->
    ctx.penalty <- config.overflow_penalty * (pass + 1);
    let ripped = ref 0 in
    Array.iter
      (fun nr ->
        let congested =
          Array.exists (fun sn -> sn.routed && path_overflows g sn.path) nr.subnets
        in
        if congested then begin
          incr ripped;
          Array.iter
            (fun sn ->
              if sn.routed then begin
                uncommit g sn.path;
                sn.path <- [];
                sn.routed <- false
              end)
            nr.subnets;
          let tree_nodes = ref [] in
          Array.iter
            (fun sn ->
              Obs.Counter.incr c_subnet_attempts;
              ignore (route_subnet ctx ~net:nr.net_id ~tree_nodes sn))
            nr.subnets
        end)
      routes;
    Obs.Counter.add c_ripup_nets !ripped;
    Obs.add_attr "ripped_nets" (`Int !ripped))
  done;
  let failed_final =
    Array.fold_left
      (fun acc nr ->
        acc
        + Array.fold_left
            (fun a sn -> if sn.routed then a else a + 1)
            0 nr.subnets)
      0 routes
  in
  Obs.Counter.add c_failed_subnets failed_final;
  let overflow = Grid.overflow_count g in
  Obs.Gauge.set g_overflow (float_of_int overflow);
  Obs.add_attr "overflow_edges" (`Int overflow);
  Obs.add_attr "failed_subnets" (`Int failed_final);
  { grid = g; routes; config; failed_subnets = failed_final })
