type config = {
  via_cost : int;
  overflow_penalty : int;
  ripup_passes : int;
  search_margin : int;
  use_dm1 : bool;
  astar_weight_pct : int;
  m1_surcharge : int;
  layers : int;
  pdn_stripes : bool;
  shard_tracks : int;
  grid_skeleton : Grid.skeleton option;
}

let default_config =
  {
    via_cost = 72;
    overflow_penalty = 600;
    ripup_passes = 2;
    search_margin = 16;
    use_dm1 = true;
    astar_weight_pct = 125;
    m1_surcharge = 6;
    layers = 6;
    pdn_stripes = true;
    shard_tracks = 64;
    grid_skeleton = None;
  }

(* Metric handles created once: the initial pass bumps these from
   worker domains, where a per-call registry lookup would contend on
   the registry lock. *)
let c_subnets = Obs.counter "route.subnets"
let c_subnet_attempts = Obs.counter "route.subnet_attempts"
let c_ripup_nets = Obs.counter "route.ripup_nets"
let c_ripup_candidates = Obs.counter "route.ripup_candidates"
let c_failed_subnets = Obs.counter "route.failed_subnets"
let c_shard_nets = Obs.counter "route.shard_nets"
let c_deferred_nets = Obs.counter "route.deferred_nets"
let c_bq_pushes = Obs.counter "route.bq_pushes"
let g_overflow = Obs.gauge "route.overflow_edges"

(* Allocation-pressure gauge over the whole route span, normalized per
   subnet — the runtime complement to the structural hot-alloc lint on
   the A* loop. Coordinator-domain minor words only; the sharded pass's
   worker allocations are not counted (the hot path they run is the
   same code the coordinator's sequential phase measures). *)
let g_minor_words = Obs.gauge "route.minor_words_per_subnet"

type edge =
  | Wire of int
  | Via of int

(* Paths are stored packed: node index shifted left one, low bit set for
   via edges. Half the memory of an [edge list] and no pointer chasing
   when committing, un-committing or measuring. *)
let edge_of_code c = if c land 1 = 1 then Via (c lsr 1) else Wire (c lsr 1)
let wire_code n = n lsl 1
let via_code n = (n lsl 1) lor 1

type subnet = {
  src : Netlist.Design.pin_ref;
  dst : Netlist.Design.pin_ref;
  mutable path : int array;
  mutable routed : bool;
}

type net_route = {
  net_id : int;
  subnets : subnet array;
}

type result = {
  grid : Grid.t;
  routes : net_route array;
  config : config;
  mutable failed_subnets : int;
}

(* --- search context with generation-stamped per-node state --- *)

type ctx = {
  g : Grid.t;
  cfg : config;
  mutable penalty : int;  (** congestion penalty, escalated per RRR pass *)
  dist : int array;
  gen : int array;
  parent : int array;
  tgen : int array;       (* generation-stamped target marks *)
  fval : int array;       (* f = dist + h at the node's latest push;
                             lets the pop-acceptance test avoid
                             recomputing the heuristic *)
  bq : Bqueue.t;          (* A* open list: dial bucket queue *)
  tree : Stampset.t;      (* the current net's already-connected nodes *)
  mutable generation : int;
  (* per-search scratch lives in the context, not in refs, so [run]
     allocates nothing: a ref is a one-word heap block per search *)
  mutable s_hmin : int;   (* min heuristic over the seed set *)
  mutable s_found : int;  (* target hit by the current search, or -1 *)
}

let make_ctx g cfg =
  let n = Grid.node_count g in
  {
    g;
    cfg;
    penalty = cfg.overflow_penalty;
    dist = Array.make n 0;
    gen = Array.make n 0;
    parent = Array.make n (-1);
    tgen = Array.make n 0;
    fval = Array.make n 0;
    bq = Bqueue.create ~capacity:4096 ();
    tree = Stampset.create n;
    generation = 0;
    s_hmin = max_int;
    s_found = -1;
  }

(* When dM1 is disabled, forbid M1 wire edges that cross a placement-row
   boundary, confining M1 to intra-row jogs. [j] is the edge node's
   track row (the edge spans tracks [j] and [j + 1]). *)
let m1_edge_allowed ctx j =
  ctx.cfg.use_dm1
  ||
  let g = ctx.g in
  let y0 = Grid.track_y g j and y1 = Grid.track_y g (j + 1) in
  let rh = g.Grid.placement.Place.Placement.tech.Pdk.Tech.row_height in
  y0 / rh = (y1 - 1) / rh && y1 mod rh <> 0

(* All search costs are scaled by [cost_scale], and every wire edge pays
   one extra scaled unit. The +1 is a deterministic tie-break: among
   paths of equal unscaled cost (e.g. trading two vias for four wire
   edges), the search now strictly prefers the one with fewer wire
   edges, i.e. the shorter routed wirelength — instead of leaving the
   choice to open-list pop order. 1/[cost_scale] of a DBU per edge is
   far below any real cost difference, so non-ties are unaffected. *)
let cost_scale = 8

(* [l] and [j] are the edge node's layer and track row, already decoded
   by the caller (the expansion loop decodes each popped node once and
   derives neighbour coordinates arithmetically). Returns -1 for a
   blocked edge — an int sentinel instead of an option keeps the
   expansion loop allocation-free. *)
let wire_cost ctx ~net n l j =
  let g = ctx.g in
  let owner = g.Grid.wire_owner.(n) in
  if owner = Grid.blocked || (owner >= 0 && owner <> net) then -1
  else if l = 1 && not (m1_edge_allowed ctx j) then -1
  else begin
    let usage = g.Grid.wire_usage.(n) in
    let surcharge = if l = 1 then ctx.cfg.m1_surcharge else 0 in
    (cost_scale * (g.Grid.pitch + surcharge + (usage * ctx.penalty))) + 1
  end

let via_cost ctx n =
  cost_scale * (ctx.cfg.via_cost + (ctx.g.Grid.via_usage.(n) * ctx.penalty))

(* A*: multi-source (the net's current tree plus the source pin's access
   nodes) to the target pin's access nodes, within a window around the
   subnet bounding box. Targets were stamped with [tgen = tg] by the
   caller. [clamp] (ilo, ihi, jlo, jhi) intersects every escalation
   window with a fixed rectangle; the sharded initial pass uses it to
   confine each tile's searches — reads and writes included — to that
   tile, which is what makes concurrent tiles independent.

    Sources are seeded through the same generation stamp that relaxation
    uses, so the open list is seeded without duplicate nodes even when
    the tree and the source pin's access set overlap. *)
let search ?clamp ctx ~net ~tg ~src ~bbox ~tbox =
  let g = ctx.g in
  let imin, imax, jmin, jmax = bbox in
  let ti_min, ti_max, tj_min, tj_max = tbox in
  (* destructured once per search, not per escalation: [run] is
     [@vm1.hot] and must not rebuild the clamp tuple on every margin *)
  let ci0, ci1, cj0, cj1 =
    match clamp with None -> (0, max_int, 0, max_int) | Some c -> c
  in
  let[@vm1.hot] run margin =
    let ilo = max (max 0 (imin - margin)) ci0
    and ihi = min (min (g.Grid.nx - 1) (imax + margin)) ci1 in
    let jlo = max (max 0 (jmin - margin)) cj0
    and jhi = min (min (g.Grid.ny - 1) (jmax + margin)) cj1 in
    let nx = g.Grid.nx and ny = g.Grid.ny in
    let nxy = nx * ny in
    (* weighted A*: inflating the admissible Manhattan bound trades a
       bounded amount of path optimality for much smaller search trees *)
    let hnum = cost_scale * g.Grid.pitch * ctx.cfg.astar_weight_pct in
    let h2 i j =
      let dx = max 0 (max (ti_min - i) (i - ti_max)) in
      let dy = max 0 (max (tj_min - j) (j - tj_max)) in
      (dx + dy) * hnum / 100
    in
    let h n = h2 (n mod nx) (n / nx mod ny) in
    Bqueue.clear ctx.bq;
    ctx.generation <- ctx.generation + 1;
    let gen2 = ctx.generation in
    (* Latch the dial origin at a provable floor on every f-value this
       search can push. Seeds carry f = h(n); along any path the
       inflated heuristic drops by at most [weight/100] of the real cost
       paid, so f never sinks below [hmin * 100 / weight]. Latching
       there (minus slack for integer rounding) means the seeding
       pushes — which arrive in arbitrary priority order — never hit
       the below-origin reallocation path. *)
    ctx.s_hmin <- max_int;
    let scan_h n =
      let v = h n in
      if v < ctx.s_hmin then ctx.s_hmin <- v
    in
    Stampset.iter ctx.tree scan_h;
    Grid.pin_access_iter g src scan_h;
    if ctx.s_hmin < max_int then
      Bqueue.prepare ctx.bq
        ~origin:((ctx.s_hmin * 100 / ctx.cfg.astar_weight_pct) - 64);
    let relax ~from n vi vj cost =
      let nd = ctx.dist.(from) + cost in
      if ctx.gen.(n) <> gen2 || ctx.dist.(n) > nd then begin
        ctx.gen.(n) <- gen2;
        ctx.dist.(n) <- nd;
        ctx.parent.(n) <- from;
        let f = nd + h2 vi vj in
        ctx.fval.(n) <- f;
        Bqueue.push ctx.bq ~prio:f ~value:n
      end
    in
    let seed n =
      if ctx.gen.(n) <> gen2 then begin
        ctx.gen.(n) <- gen2;
        ctx.dist.(n) <- 0;
        ctx.parent.(n) <- -1;
        let f = h n in
        ctx.fval.(n) <- f;
        Bqueue.push ctx.bq ~prio:f ~value:n
      end
    in
    Stampset.iter ctx.tree seed;
    Grid.pin_access_iter g src seed;
    ctx.s_found <- -1;
    while ctx.s_found < 0 && not (Bqueue.is_empty ctx.bq) do
      let u = Bqueue.pop ctx.bq in
      let d = Bqueue.last_prio ctx.bq in
      (* [d <= fval.(u)] is the classic stale-entry test [d - h u <=
         dist.(u)] with both sides shifted by [h u], saving the
         heuristic recompute on every pop. *)
      if ctx.gen.(u) = gen2 && d <= ctx.fval.(u) then begin
        if ctx.tgen.(u) = tg then ctx.s_found <- u
        else begin
          (* Decode (i, j, layer) once; every neighbour differs from [u]
             by exactly one coordinate, so its coords — and the window
             test on them — come for free. [u] itself may lie outside
             the window (tree seeds do), so the test checks both
             neighbour coordinates. *)
          let i = u mod nx in
          let j = u / nx mod ny in
          let l = (u / nxy) + 1 in
          if l land 1 = 1 then begin
            (* vertical layer: wire edges along j *)
            if j < ny - 1 && i >= ilo && i <= ihi && j + 1 >= jlo && j + 1 <= jhi
            then begin
              let c = wire_cost ctx ~net u l j in
              if c >= 0 then relax ~from:u (u + nx) i (j + 1) c
            end;
            if j > 0 && i >= ilo && i <= ihi && j - 1 >= jlo && j - 1 <= jhi
            then begin
              let c = wire_cost ctx ~net (u - nx) l (j - 1) in
              if c >= 0 then relax ~from:u (u - nx) i (j - 1) c
            end
          end
          else begin
            (* horizontal layer: wire edges along i *)
            if i < nx - 1 && i + 1 >= ilo && i + 1 <= ihi && j >= jlo && j <= jhi
            then begin
              let c = wire_cost ctx ~net u l j in
              if c >= 0 then relax ~from:u (u + 1) (i + 1) j c
            end;
            if i > 0 && i - 1 >= ilo && i - 1 <= ihi && j >= jlo && j <= jhi
            then begin
              let c = wire_cost ctx ~net (u - 1) l j in
              if c >= 0 then relax ~from:u (u - 1) (i - 1) j c
            end
          end;
          (* via up *)
          if l < g.Grid.nl then relax ~from:u (u + nxy) i j (via_cost ctx u);
          (* via down *)
          if l > 1 then relax ~from:u (u - nxy) i j (via_cost ctx (u - nxy))
        end
      end
    done;
    ctx.s_found
  in
  let rec attempt margins =
    match margins with
    | [] -> None
    | m :: rest -> begin
      match run m with
      | -1 -> attempt rest
      | t -> Some t
    end
  in
  let whole = max g.Grid.nx g.Grid.ny in
  attempt [ ctx.cfg.search_margin; ctx.cfg.search_margin * 4; whole ]

(* Reconstruct the packed edge array from the parent chain ending at
   [t]: one counting walk, then one filling walk — no list, no rev. *)
let reconstruct ctx t =
  let g = ctx.g in
  let nxy = g.Grid.nx * g.Grid.ny in
  let len = ref 0 in
  let u = ref t in
  while ctx.parent.(!u) >= 0 do
    incr len;
    u := ctx.parent.(!u)
  done;
  let path = Array.make !len 0 in
  let u = ref t and k = ref (!len - 1) in
  while ctx.parent.(!u) >= 0 do
    let p = ctx.parent.(!u) in
    let code =
      if p + nxy = !u then via_code p
      else if !u + nxy = p then via_code !u
      else if Grid.has_wire_edge g p && Grid.wire_dest g p = !u then wire_code p
      else wire_code !u
    in
    path.(!k) <- code;
    decr k;
    u := p
  done;
  path

let commit g ~net path =
  Array.iter
    (fun c ->
      let n = c lsr 1 in
      if c land 1 = 1 then Grid.commit_via g ~net n
      else Grid.commit_wire g ~net n)
    path

let uncommit g ~net path =
  Array.iter
    (fun c ->
      let n = c lsr 1 in
      if c land 1 = 1 then Grid.uncommit_via g ~net n
      else Grid.uncommit_wire g ~net n)
    path

(* Grow the net's tree with the nodes the committed path touches. *)
let add_path_to_tree ctx path =
  let g = ctx.g in
  Array.iter
    (fun c ->
      let n = c lsr 1 in
      Stampset.add ctx.tree n;
      Stampset.add ctx.tree
        (if c land 1 = 1 then Grid.via_dest g n else Grid.wire_dest g n))
    path

(* Manhattan-MST decomposition of a net's pins (Prim). *)
let decompose (p : Place.Placement.t) (net : Netlist.Design.net) =
  let pins = net.pins in
  let k = Array.length pins in
  if k < 2 then [||]
  else begin
    let pos = Array.map (Place.Placement.pin_pos p) pins in
    let in_tree = Array.make k false in
    let best_d = Array.make k max_int in
    let best_src = Array.make k 0 in
    in_tree.(0) <- true;
    for v = 1 to k - 1 do
      best_d.(v) <- Geom.Point.manhattan pos.(0) pos.(v)
    done;
    let edges = ref [] in
    for _ = 1 to k - 1 do
      let u = ref (-1) in
      for v = 0 to k - 1 do
        if (not in_tree.(v)) && (!u < 0 || best_d.(v) < best_d.(!u)) then u := v
      done;
      let v = !u in
      in_tree.(v) <- true;
      edges := (best_src.(v), v) :: !edges;
      for w = 0 to k - 1 do
        if not in_tree.(w) then begin
          let d = Geom.Point.manhattan pos.(v) pos.(w) in
          if d < best_d.(w) then begin
            best_d.(w) <- d;
            best_src.(w) <- v
          end
        end
      done
    done;
    Array.of_list
      (List.rev_map
         (fun (a, b) ->
           { src = pins.(a); dst = pins.(b); path = [||]; routed = false })
         !edges)
  end

(* Route one MST edge against the net's growing tree (held in
   [ctx.tree]). Target stamping, the direct-connection test, and open
   list seeding all run on generation stamps — no list membership
   scans. *)
let route_subnet ?clamp ctx ~net subnet =
  let g = ctx.g in
  (* stamp the target pin's access nodes with a fresh generation and
     collect the target bounding box *)
  ctx.generation <- ctx.generation + 1;
  let tg = ctx.generation in
  let ti_min = ref max_int and ti_max = ref min_int in
  let tj_min = ref max_int and tj_max = ref min_int in
  Grid.pin_access_iter g subnet.dst (fun n ->
      let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
      if i < !ti_min then ti_min := i;
      if i > !ti_max then ti_max := i;
      if j < !tj_min then tj_min := j;
      if j > !tj_max then tj_max := j;
      ctx.tgen.(n) <- tg);
  (* trivial case: a source IS a target *)
  let direct = ref false in
  Stampset.iter ctx.tree (fun n -> if ctx.tgen.(n) = tg then direct := true);
  if not !direct then
    Grid.pin_access_iter g subnet.src (fun n ->
        if ctx.tgen.(n) = tg then direct := true);
  if !direct then begin
    subnet.path <- [||];
    subnet.routed <- true;
    Grid.pin_access_iter g subnet.dst (Stampset.add ctx.tree);
    true
  end
  else begin
    (* window bounding box over sources and targets *)
    let imin = ref !ti_min and imax = ref !ti_max in
    let jmin = ref !tj_min and jmax = ref !tj_max in
    let widen n =
      let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
      if i < !imin then imin := i;
      if i > !imax then imax := i;
      if j < !jmin then jmin := j;
      if j > !jmax then jmax := j
    in
    Stampset.iter ctx.tree widen;
    Grid.pin_access_iter g subnet.src widen;
    match
      search ?clamp ctx ~net ~tg ~src:subnet.src
        ~bbox:(!imin, !imax, !jmin, !jmax)
        ~tbox:(!ti_min, !ti_max, !tj_min, !tj_max)
    with
    | Some t ->
      let path = reconstruct ctx t in
      commit g ~net path;
      subnet.path <- path;
      subnet.routed <- true;
      Grid.pin_access_iter g subnet.dst (Stampset.add ctx.tree);
      add_path_to_tree ctx path;
      true
    | None ->
      subnet.path <- [||];
      subnet.routed <- false;
      false
  end

let route ?(config = default_config) (p : Place.Placement.t) =
  Obs.with_span "route" (fun () ->
  let mw0 = if Obs.enabled () then Gc.minor_words () else 0. in
  let g =
    Grid.of_placement ~layers:config.layers ~pdn_stripes:config.pdn_stripes
      ?skeleton:config.grid_skeleton p
  in
  let ctx = make_ctx g config in
  let design = p.Place.Placement.design in
  let signal = Netlist.Design.signal_nets design in
  (* shorter nets first: they have fewer detour options *)
  let order =
    List.sort
      (fun a b -> Int.compare (Place.Hpwl.net p a) (Place.Hpwl.net p b))
      signal
  in
  let routes =
    Array.of_list
      (List.map
         (fun nid -> { net_id = nid; subnets = decompose p design.nets.(nid) })
         order)
  in
  Obs.add_attr "nets" (`Int (Array.length routes));
  let total_subnets =
    Array.fold_left (fun acc nr -> acc + Array.length nr.subnets) 0 routes
  in
  Obs.Counter.add c_subnets total_subnets;
  (* Sequential semantics: attempt every subnet even after a failure (the
     rip-up passes may still fix the rest of the tree). *)
  let route_net_full ctx (nr : net_route) =
    Stampset.clear ctx.tree;
    Array.iter
      (fun sn ->
        Obs.Counter.incr c_subnet_attempts;
        ignore (route_subnet ctx ~net:nr.net_id sn))
      nr.subnets
  in
  (* Tile-confined attempt for the sharded pass: on the first subnet that
     cannot be routed inside the tile, roll the whole net back and report
     it deferred, so the sequential phase retries it with full window
     escalation against the final phase-1 grid state. *)
  let route_net_clamped ~clamp ctx (nr : net_route) =
    Stampset.clear ctx.tree;
    let ok = ref true in
    Array.iter
      (fun sn ->
        if !ok then begin
          Obs.Counter.incr c_subnet_attempts;
          if not (route_subnet ~clamp ctx ~net:nr.net_id sn) then ok := false
        end)
      nr.subnets;
    if not !ok then
      Array.iter
        (fun sn ->
          if sn.routed then begin
            uncommit g ~net:nr.net_id sn.path;
            sn.path <- [||];
            sn.routed <- false
          end)
        nr.subnets;
    !ok
  in
  (* --- region-sharded initial pass ---------------------------------
     The routing grid is cut into fixed [shard_tracks]-sized tiles (the
     tiling depends only on the grid, never on [Exec.jobs], so results
     are byte-identical across pool sizes). A net is tile-local when
     every access node of every pin, padded by the first search margin,
     lands in one tile; tile-local nets route concurrently with searches
     clamped to their tile, so concurrent tasks touch disjoint usage
     cells. Everything else — nets spanning tiles, plus any net that
     failed inside its tile — is routed sequentially afterwards, in the
     original short-nets-first order, with the ordinary unclamped
     escalation. Rip-up stays fully sequential. *)
  let t = max 8 config.shard_tracks in
  let tiles_x = (g.Grid.nx + t - 1) / t in
  let tiles_y = (g.Grid.ny + t - 1) / t in
  let m = config.search_margin in
  let tile_of (nr : net_route) =
    let imin = ref max_int and imax = ref min_int in
    let jmin = ref max_int and jmax = ref min_int in
    Array.iter
      (fun pr ->
        Grid.pin_access_iter g pr (fun n ->
            let i = Grid.i_of_node g n and j = Grid.j_of_node g n in
            if i < !imin then imin := i;
            if i > !imax then imax := i;
            if j < !jmin then jmin := j;
            if j > !jmax then jmax := j))
      design.nets.(nr.net_id).pins;
    if !imin > !imax then None
    else begin
      let ilo = max 0 (!imin - m) and ihi = min (g.Grid.nx - 1) (!imax + m) in
      let jlo = max 0 (!jmin - m) and jhi = min (g.Grid.ny - 1) (!jmax + m) in
      if ilo / t = ihi / t && jlo / t = jhi / t then
        Some (((jlo / t) * tiles_x) + (ilo / t))
      else None
    end
  in
  let buckets = Array.make (tiles_x * tiles_y) [] in
  let seq_nets = ref [] in
  Array.iteri
    (fun k nr ->
      if Array.length nr.subnets > 0 then
        match tile_of nr with
        | Some ti -> buckets.(ti) <- k :: buckets.(ti)
        | None -> seq_nets := k :: !seq_nets)
    routes;
  let tile_jobs =
    let acc = ref [] in
    for ti = Array.length buckets - 1 downto 0 do
      match buckets.(ti) with
      | [] -> ()
      | l -> acc := (ti, Array.of_list (List.rev l)) :: !acc
    done;
    Array.of_list !acc
  in
  let n_local = Array.fold_left (fun a (_, ns) -> a + Array.length ns) 0 tile_jobs in
  Obs.with_span "route.initial"
    ~attrs:[ ("tiles", `Int (Array.length tile_jobs)); ("local_nets", `Int n_local) ]
    (fun () ->
      (* Tiles are grouped into contiguous runs so each pool task
         allocates one search context, not one per tile. The grouping
         only affects scheduling: contexts are generation-stamped, so
         reusing one across tiles cannot change any search result. *)
      let deferred =
        if Array.length tile_jobs = 0 then []
        else begin
          let njobs = Array.length tile_jobs in
          let ngroups = min njobs (max 1 (Exec.jobs () * 4)) in
          let groups =
            Array.init ngroups (fun gi ->
                let lo = gi * njobs / ngroups and hi = (gi + 1) * njobs / ngroups in
                Array.sub tile_jobs lo (hi - lo))
          in
          let per_group =
            Exec.parallel_map ~chunk:1
              (fun tiles ->
                let tctx = make_ctx g config in
                let dropped = ref [] in
                Array.iter
                  (fun (ti, nets) ->
                    let tx = ti mod tiles_x and ty = ti / tiles_x in
                    let clamp =
                      ( tx * t,
                        min (g.Grid.nx - 1) (((tx + 1) * t) - 1),
                        ty * t,
                        min (g.Grid.ny - 1) (((ty + 1) * t) - 1) )
                    in
                    (* declare this worker's legal write region to the
                       scope monitor: every usage-cell write during a
                       clamped search must decode to a track inside the
                       tile (checked only while the monitor is armed) *)
                    let ci0, ci1, cj0, cj1 = clamp in
                    Obs.Scopemon.set_scope
                      ~label:(Printf.sprintf "tile(%d,%d)" tx ty)
                      (Some
                         (fun n ->
                           let i = Grid.i_of_node g n
                           and j = Grid.j_of_node g n in
                           ci0 <= i && i <= ci1 && cj0 <= j && j <= cj1));
                    Array.iter
                      (fun k ->
                        if not (route_net_clamped ~clamp tctx routes.(k)) then
                          dropped := k :: !dropped)
                      nets)
                  tiles;
                Obs.Scopemon.clear_scope ();
                Obs.Counter.add c_bq_pushes (Bqueue.pushes tctx.bq);
                List.rev !dropped)
              groups
          in
          List.concat (Array.to_list per_group)
        end
      in
      let seq = List.sort Int.compare (List.rev_append !seq_nets deferred) in
      Obs.Counter.add c_shard_nets (n_local - List.length deferred);
      Obs.Counter.add c_deferred_nets (List.length seq);
      Obs.add_attr "sequential_nets" (`Int (List.length seq));
      List.iter (fun k -> route_net_full ctx routes.(k)) seq);
  (* Rip-up and reroute nets crossing overflowed edges, with the
     congestion penalty escalating each pass. The overflow ledger makes
     the congestion test per net O(1) ([Grid.net_overflow]), so a pass
     over an uncongested design is a counter sweep, not a rescan of
     every path of every net; a pass with no candidates is skipped
     outright. *)
  for pass = 1 to config.ripup_passes do
    Obs.with_span "route.ripup" ~attrs:[ ("pass", `Int pass) ] (fun () ->
    ctx.penalty <- config.overflow_penalty * (pass + 1);
    let candidates = ref 0 in
    Array.iter
      (fun nr -> if Grid.net_overflow g nr.net_id > 0 then incr candidates)
      routes;
    Obs.Counter.add c_ripup_candidates !candidates;
    Obs.add_attr "candidates" (`Int !candidates);
    let ripped = ref 0 in
    if !candidates > 0 then
      Array.iter
        (fun nr ->
          if Grid.net_overflow g nr.net_id > 0 then begin
            incr ripped;
            Array.iter
              (fun sn ->
                if sn.routed then begin
                  uncommit g ~net:nr.net_id sn.path;
                  sn.path <- [||];
                  sn.routed <- false
                end)
              nr.subnets;
            route_net_full ctx nr
          end)
        routes;
    Obs.Counter.add c_ripup_nets !ripped;
    Obs.add_attr "ripped_nets" (`Int !ripped))
  done;
  let failed_final =
    Array.fold_left
      (fun acc nr ->
        acc
        + Array.fold_left
            (fun a sn -> if sn.routed then a else a + 1)
            0 nr.subnets)
      0 routes
  in
  Obs.Counter.add c_failed_subnets failed_final;
  Obs.Counter.add c_bq_pushes (Bqueue.pushes ctx.bq);
  let overflow = Grid.overflow_count g in
  Obs.Gauge.set g_overflow (float_of_int overflow);
  if Obs.enabled () && total_subnets > 0 then
    Obs.Gauge.set g_minor_words
      ((Gc.minor_words () -. mw0) /. float_of_int total_subnets);
  Obs.add_attr "overflow_edges" (`Int overflow);
  Obs.add_attr "failed_subnets" (`Int failed_final);
  (* Attribution payload for [vm1trace attribute]: a per-tile map of
     overflowed edges (the congestion heatmap, on the same fixed tiling
     as the sharded pass) plus the ids of congested and failed nets —
     the trace-side join keys for per-net QoR. Only computed while
     instrumentation is on; one O(nodes) sweep, far below routing cost. *)
  if Obs.enabled () then begin
    let heat = Array.make (tiles_x * tiles_y) 0 in
    let bump_tile n =
      let ti = min (tiles_x - 1) (Grid.i_of_node g n / t)
      and tj = min (tiles_y - 1) (Grid.j_of_node g n / t) in
      let k = (tj * tiles_x) + ti in
      heat.(k) <- heat.(k) + 1
    in
    for n = 0 to Grid.node_count g - 1 do
      if g.Grid.wire_usage.(n) > 1 then bump_tile n;
      if g.Grid.via_usage.(n) > 1 then bump_tile n
    done;
    let ints_to_str a =
      let b = Buffer.create (4 * Array.length a) in
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int v))
        a;
      Buffer.contents b
    in
    let pairs_to_str l =
      String.concat " "
        (List.map (fun (nid, c) -> Printf.sprintf "%d:%d" nid c) l)
    in
    let over_nets = ref [] in
    for nid = Array.length design.nets - 1 downto 0 do
      let c = Grid.net_overflow g nid in
      if c > 0 then over_nets := (nid, c) :: !over_nets
    done;
    let failed_nets = ref [] in
    Array.iter
      (fun nr ->
        let c =
          Array.fold_left
            (fun a sn -> if sn.routed then a else a + 1)
            0 nr.subnets
        in
        if c > 0 then failed_nets := (nr.net_id, c) :: !failed_nets)
      routes;
    let failed_nets =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) !failed_nets
    in
    Obs.add_attr "heat_tiles_x" (`Int tiles_x);
    Obs.add_attr "heat_tiles_y" (`Int tiles_y);
    Obs.add_attr "heat_tile_tracks" (`Int t);
    Obs.add_attr "pitch_dbu" (`Int g.Grid.pitch);
    Obs.add_attr "heat_overflow" (`Str (ints_to_str heat));
    Obs.add_attr "overflow_nets" (`Str (pairs_to_str !over_nets));
    Obs.add_attr "failed_nets" (`Str (pairs_to_str failed_nets))
  end;
  { grid = g; routes; config; failed_subnets = failed_final })
