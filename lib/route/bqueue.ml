type t = {
  mutable data : int array array;  (* data.(b): values queued at priority origin+b *)
  mutable len : int array;         (* fill of each bucket *)
  mutable head : int array;        (* next entry to pop; FIFO within a bucket *)
  mutable words : int array;       (* occupancy bitmap, [bpw] buckets per word *)
  mutable origin : int;            (* priority mapped to bucket 0 *)
  mutable cursor : int;            (* no occupied bucket strictly below this index *)
  mutable hi : int;                (* no occupied bucket strictly above this index *)
  mutable size : int;
  mutable touched : int array;     (* buckets that went 0 -> nonempty since clear *)
  mutable ntouched : int;
  mutable seeded : bool;           (* [origin] is valid *)
  mutable npush : int;
  mutable last : int;              (* priority of the last popped entry *)
}

let bpw = 63

(* Bit position of an isolated bit (a power of two), via a de Bruijn
   multiply — replaces a shift loop of up to [bpw] iterations on every
   pop. The table is built from the same multiply it serves, so the
   encoding cannot drift from the lookup. *)
let debruijn = 0x03f79d71b4ca8b09

let ctz_table =
  let t = Array.make 64 0 in
  for bit = 0 to 62 do
    t.(((1 lsl bit) * debruijn) lsr 57 land 63) <- bit
  done;
  t

let bit_index isolated = ctz_table.((isolated * debruijn) lsr 57 land 63)

(* Latching [origin] this far below the first push leaves room for the
   slightly-cheaper entries that typically follow it (seeding pushes
   arrive in arbitrary priority order), so the below-origin realloc
   path stays exceptional. *)
let origin_slack = 128

let create ?(capacity = 1024) () =
  let cap = max 64 capacity in
  {
    data = Array.make cap [||];
    len = Array.make cap 0;
    head = Array.make cap 0;
    words = Array.make ((cap + bpw - 1) / bpw) 0;
    origin = 0;
    cursor = 0;
    hi = 0;
    size = 0;
    touched = Array.make 64 0;
    ntouched = 0;
    seeded = false;
    npush = 0;
    last = 0;
  }

let is_empty t = t.size = 0
let size t = t.size
let pushes t = t.npush
let last_prio t = t.last

let note_touched t b =
  if t.ntouched = Array.length t.touched then
    begin
      let a = Array.make (2 * t.ntouched) 0 in
      Array.blit t.touched 0 a 0 t.ntouched;
      t.touched <- a
    end [@vm1.cold];
  t.touched.(t.ntouched) <- b;
  t.ntouched <- t.ntouched + 1

(* Reallocate so at least [nbuckets] bucket slots exist, shifting every
   live bucket up by [shift] slots (used to lower [origin]). [nbuckets]
   must be derived from [t.hi], the top of the occupied span — never
   from the current capacity, which would compound geometrically across
   calls. *)
let[@vm1.cold] realloc t ~nbuckets ~shift =
  let cap = ref (Array.length t.len) in
  while !cap < nbuckets do cap := !cap * 2 done;
  let data = Array.make !cap [||]
  and len = Array.make !cap 0
  and head = Array.make !cap 0 in
  let live = min (Array.length t.data) (!cap - shift) in
  Array.blit t.data 0 data shift live;
  Array.blit t.len 0 len shift live;
  Array.blit t.head 0 head shift live;
  let words = Array.make ((!cap + bpw - 1) / bpw) 0 in
  for b = 0 to !cap - 1 do
    if len.(b) > head.(b) then
      words.(b / bpw) <- words.(b / bpw) lor (1 lsl (b mod bpw))
  done;
  for k = 0 to t.ntouched - 1 do
    t.touched.(k) <- t.touched.(k) + shift
  done;
  t.data <- data;
  t.len <- len;
  t.head <- head;
  t.words <- words;
  t.origin <- t.origin - shift;
  t.cursor <- t.cursor + shift;
  t.hi <- t.hi + shift

let[@vm1.hot] prepare t ~origin =
  if not t.seeded then begin
    t.origin <- origin;
    t.seeded <- true;
    t.cursor <- 0;
    t.hi <- 0
  end

let[@vm1.hot] push t ~prio ~value =
  if not t.seeded then begin
    t.origin <- prio - origin_slack;
    t.seeded <- true;
    t.cursor <- 0;
    t.hi <- 0
  end;
  if prio < t.origin then
    realloc t
      ~nbuckets:(t.hi + 1 + (t.origin - prio) + 64)
      ~shift:(t.origin - prio + 64);
  let b = prio - t.origin in
  if b >= Array.length t.len then realloc t ~nbuckets:(b + 1) ~shift:0;
  let l = t.len.(b) in
  let bucket = t.data.(b) in
  let bucket =
    if l < Array.length bucket then bucket
    else
      begin
        let nb = Array.make (max 4 (2 * l)) 0 in
        Array.blit bucket 0 nb 0 l;
        t.data.(b) <- nb;
        nb
      end [@vm1.cold]
  in
  bucket.(l) <- value;
  t.len.(b) <- l + 1;
  if l = 0 then begin
    t.words.(b / bpw) <- t.words.(b / bpw) lor (1 lsl (b mod bpw));
    note_touched t b
  end;
  if b < t.cursor then t.cursor <- b;
  if b > t.hi then t.hi <- b;
  t.size <- t.size + 1;
  t.npush <- t.npush + 1

(* First occupied bucket at word [w] or above, given [cur] = word [w]'s
   occupancy masked below the cursor. Top-level and tail-recursive so
   the pop scan neither allocates a closure nor boxes scan state in
   refs — pop runs on the A* hot path and must be allocation-free. *)
let rec first_bucket words w cur =
  if cur <> 0 then (w * bpw) + bit_index (cur land (-cur))
  else first_bucket words (w + 1) words.(w + 1)

let[@vm1.hot] pop t =
  if t.size = 0 then invalid_arg "Bqueue.pop: empty";
  let w0 = t.cursor / bpw in
  let b =
    first_bucket t.words w0
      (t.words.(w0) land ((-1) lsl (t.cursor mod bpw)))
  in
  t.cursor <- b;
  let w = b / bpw in
  let low = 1 lsl (b mod bpw) in
  let h = t.head.(b) in
  let v = t.data.(b).(h) in
  if h + 1 = t.len.(b) then begin
    (* drained: reset so push's [l = 0] emptiness test stays valid *)
    t.head.(b) <- 0;
    t.len.(b) <- 0;
    t.words.(w) <- t.words.(w) land lnot low
  end
  else t.head.(b) <- h + 1;
  t.size <- t.size - 1;
  t.last <- t.origin + b;
  v

let[@vm1.hot] clear t =
  for k = 0 to t.ntouched - 1 do
    let b = t.touched.(k) in
    t.len.(b) <- 0;
    t.head.(b) <- 0;
    t.words.(b / bpw) <- t.words.(b / bpw) land lnot (1 lsl (b mod bpw))
  done;
  t.ntouched <- 0;
  t.size <- 0;
  t.cursor <- 0;
  t.hi <- 0;
  t.seeded <- false
