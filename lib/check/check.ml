let design d = Netlist.Design.validate d

(* Placement legality, recomputed from scratch: grid alignment per
   instance, die containment, and overlap by a row-bucketed sweep over a
   sorted index array (deliberately not [Placement.overlap_count]). *)
let placement (p : Place.Placement.t) =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let tech = p.Place.Placement.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let n = Place.Placement.num_instances p in
  for i = 0 to n - 1 do
    if p.xs.(i) mod sw <> 0 then
      say "instance %d: x %d off the site grid (pitch %d)" i p.xs.(i) sw;
    if p.ys.(i) mod rh <> 0 then
      say "instance %d: y %d off the row grid (pitch %d)" i p.ys.(i) rh;
    if not (Place.Placement.inside_die p i) then
      say "instance %d: outside the die" i
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      match
        Int.compare (Place.Placement.row_of_inst p a)
          (Place.Placement.row_of_inst p b)
      with
      | 0 -> Int.compare p.xs.(a) p.xs.(b)
      | c -> c)
    order;
  for k = 0 to n - 2 do
    let a = order.(k) and b = order.(k + 1) in
    if Place.Placement.row_of_inst p a = Place.Placement.row_of_inst p b then begin
      let ra = Place.Placement.instance_rect p a in
      if p.xs.(b) < ra.Geom.Rect.hx then
        say "instances %d and %d overlap in row %d" a b
          (Place.Placement.row_of_inst p a)
    end
  done;
  List.rev !problems

let windows (p : Place.Placement.t) ~tx ~ty ~bw ~bh =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let tech = p.Place.Placement.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let ws = Vm1.Window.partition p ~tx ~ty ~bw ~bh in
  let seen = Hashtbl.create 256 in
  Array.iteri
    (fun wi (w : Vm1.Window.t) ->
      List.iter
        (fun i ->
          (match Hashtbl.find_opt seen i with
          | Some wj ->
            say "instance %d movable in two windows (#%d and #%d)" i wj wi
          | None -> Hashtbl.add seen i wi);
          let r = Place.Placement.instance_rect p i in
          let wx0 = w.site_lo * sw and wx1 = (w.site_lo + w.bw) * sw in
          let wy0 = w.row_lo * rh and wy1 = (w.row_lo + w.bh) * rh in
          if
            r.Geom.Rect.lx < wx0 || r.Geom.Rect.hx > wx1
            || r.Geom.Rect.ly < wy0 || r.Geom.Rect.hy > wy1
          then
            say "instance %d not fully inside its window (%d,%d)" i w.ix w.iy)
        w.movable)
    ws;
  List.iteri
    (fun bi batch ->
      let k = Array.length batch in
      for a = 0 to k - 2 do
        for b = a + 1 to k - 1 do
          let wa : Vm1.Window.t = batch.(a) and wb : Vm1.Window.t = batch.(b) in
          if wa.site_lo < wb.site_lo + wb.bw && wb.site_lo < wa.site_lo + wa.bw
          then
            say "batch %d: windows (%d,%d) and (%d,%d) share a site span" bi
              wa.ix wa.iy wb.ix wb.iy;
          if wa.row_lo < wb.row_lo + wb.bh && wb.row_lo < wa.row_lo + wa.bh
          then
            say "batch %d: windows (%d,%d) and (%d,%d) share a row span" bi
              wa.ix wa.iy wb.ix wb.iy
        done
      done)
    (Vm1.Window.diagonal_batches ws);
  List.rev !problems

let objective_counts (params : Vm1.Params.t) (p : Place.Placement.t)
    (c : Vm1.Objective.counts) =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let design = p.Place.Placement.design and tech = p.tech in
  let is_open = tech.Pdk.Tech.arch = Pdk.Cell_arch.Open_m1 in
  let hpwl = ref 0 and alignments = ref 0 and overlap_sum = ref 0 in
  let weighted = ref 0.0 in
  List.iter
    (fun n ->
      let pins = design.Netlist.Design.nets.(n).pins in
      let lx = ref max_int and hx = ref min_int in
      let ly = ref max_int and hy = ref min_int in
      Array.iter
        (fun pr ->
          let pt = Place.Placement.pin_pos p pr in
          if pt.Geom.Point.x < !lx then lx := pt.Geom.Point.x;
          if pt.Geom.Point.x > !hx then hx := pt.Geom.Point.x;
          if pt.Geom.Point.y < !ly then ly := pt.Geom.Point.y;
          if pt.Geom.Point.y > !hy then hy := pt.Geom.Point.y)
        pins;
      let h = if !lx > !hx then 0 else !hx - !lx + (!hy - !ly) in
      hpwl := !hpwl + h;
      weighted :=
        !weighted +. (Vm1.Params.net_weight params n *. float_of_int h);
      let k = Array.length pins in
      for i = 0 to k - 2 do
        for j = i + 1 to k - 1 do
          if pins.(i).Netlist.Design.inst <> pins.(j).Netlist.Design.inst
          then begin
            let ga = Vm1.Align.of_placed p pins.(i) in
            let gb = Vm1.Align.of_placed p pins.(j) in
            if is_open then begin
              match Vm1.Align.overlap params tech ga gb with
              | true, o ->
                incr alignments;
                overlap_sum := !overlap_sum + o
              | false, _ -> ()
            end
            else if Vm1.Align.aligned params tech ga gb then incr alignments
          end
        done
      done)
    (Netlist.Design.signal_nets design);
  if !hpwl <> c.Vm1.Objective.hpwl_dbu then
    say "hpwl recount %d != reported %d" !hpwl c.Vm1.Objective.hpwl_dbu;
  if abs_float (!weighted -. c.weighted_hpwl) > 1e-6 *. (1.0 +. abs_float !weighted)
  then say "weighted hpwl recount %g != reported %g" !weighted c.weighted_hpwl;
  if !alignments <> c.alignments then
    say "alignment recount %d != reported %d" !alignments c.alignments;
  if !overlap_sum <> c.overlap_sum then
    say "overlap recount %d != reported %d" !overlap_sum c.overlap_sum;
  List.rev !problems

let milp_solution (wp : Vm1.Wproblem.t) (sol : Milp.Bnb.solution) =
  match sol.Milp.Bnb.status with
  | Milp.Bnb.Infeasible -> []
  | Milp.Bnb.Optimal | Milp.Bnb.Node_limit ->
    let built = Vm1.Formulate.build wp in
    Milp.Model.check built.Vm1.Formulate.model sol.Milp.Bnb.values

let route_result (r : Route.Router.result) =
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let g = r.Route.Router.grid in
  let size = Route.Grid.node_count g in
  let wire_use = Array.make size 0 and via_use = Array.make size 0 in
  let failed = ref 0 in
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      Array.iter
        (fun (sn : Route.Router.subnet) ->
          if not sn.routed then incr failed
          else
            Array.iter
              (fun code ->
                match Route.Router.edge_of_code code with
                | Route.Router.Wire n ->
                  wire_use.(n) <- wire_use.(n) + 1;
                  let owner = g.Route.Grid.wire_owner.(n) in
                  if owner = Route.Grid.blocked then
                    say "net %d routed through a blocked wire edge (node %d)"
                      nr.net_id n
                  else if owner <> Route.Grid.free && owner <> nr.net_id then
                    say
                      "net %d routed through an edge reserved for net %d \
                       (node %d)"
                      nr.net_id owner n
                | Route.Router.Via n -> via_use.(n) <- via_use.(n) + 1)
              sn.path)
        nr.subnets)
    r.routes;
  if !failed <> r.failed_subnets then
    say "failed-subnet recount %d != reported %d" !failed r.failed_subnets;
  let wire_bad = ref 0 and via_bad = ref 0 in
  for n = 0 to size - 1 do
    if wire_use.(n) <> g.wire_usage.(n) then incr wire_bad;
    if via_use.(n) <> g.via_usage.(n) then incr via_bad
  done;
  if !wire_bad > 0 then
    say "%d wire-edge usage cells differ from the path replay" !wire_bad;
  if !via_bad > 0 then
    say "%d via-edge usage cells differ from the path replay" !via_bad;
  let scan = Route.Grid.overflow_count_scan g in
  let ledger = Route.Grid.overflow_count g in
  if ledger <> scan then say "overflow ledger %d != full scan %d" ledger scan;
  let replayed = ref 0 in
  for n = 0 to size - 1 do
    if Route.Grid.has_wire_edge g n && wire_use.(n) > 1 then incr replayed;
    if Route.Grid.has_via_edge g n && via_use.(n) > 1 then incr replayed
  done;
  if !replayed <> scan then
    say "overflow replay %d != full scan %d" !replayed scan;
  (* Connectivity, per fully-routed net: union-find over grid nodes plus
     one virtual node per pin (a pin's access nodes all sit on the pin's
     own metal, so uniting them through the pin is sound — and makes the
     router's shared-access-node empty-path case count as connected). *)
  let design = g.placement.Place.Placement.design in
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      let all_routed =
        Array.for_all (fun (sn : Route.Router.subnet) -> sn.routed) nr.subnets
      in
      if all_routed && Array.length nr.subnets > 0 then begin
        let uf = Hashtbl.create 64 in
        let rec find x =
          match Hashtbl.find_opt uf x with
          | None -> x
          | Some px ->
            let r = find px in
            if r <> px then Hashtbl.replace uf x r;
            r
        in
        let union a b =
          let ra = find a and rb = find b in
          if ra <> rb then Hashtbl.replace uf ra rb
        in
        Array.iter
          (fun (sn : Route.Router.subnet) ->
            Array.iter
              (fun code ->
                match Route.Router.edge_of_code code with
                | Route.Router.Wire n -> union n (Route.Grid.wire_dest g n)
                | Route.Router.Via n -> union n (Route.Grid.via_dest g n))
              sn.path)
          nr.subnets;
        let pins = design.Netlist.Design.nets.(nr.net_id).pins in
        Array.iteri
          (fun k pr ->
            List.iter
              (fun n -> union (size + k) n)
              (Route.Grid.pin_access g pr))
          pins;
        if Array.length pins > 1 then begin
          let root = find size in
          Array.iteri
            (fun k _ ->
              if k > 0 && find (size + k) <> root then
                say "net %d: pin %d disconnected from pin 0" nr.net_id k)
            pins
        end
      end)
    r.routes;
  List.rev !problems

let shard_violations () =
  List.map
    (fun (v : Obs.Scopemon.violation) ->
      Printf.sprintf
        "domain %d wrote grid node %d outside its declared scope%s"
        v.domain_id v.value
        (if v.label = "" then "" else " " ^ v.label))
    (Obs.Scopemon.violations ())

type finding = {
  oracle : string;
  problems : string list;
}

(* MILP feasibility on one small extracted window: solve with the
   Formulate verify hook set, then re-verify the assignment explicitly. *)
let milp_window (params : Vm1.Params.t) (p : Place.Placement.t) ~bw ~bh =
  let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw ~bh in
  match Array.find_opt (fun (w : Vm1.Window.t) -> w.movable <> []) ws with
  | None -> []
  | Some w ->
    let movable = List.filteri (fun k _ -> k < 3) w.movable in
    let wp =
      Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo
        ~bw:w.bw ~bh:w.bh ~movable ~lx:2 ~ly:1 ~allow_flip:true
        ~allow_move:true
    in
    let saved = !Vm1.Formulate.verify in
    Vm1.Formulate.verify := true;
    let problems =
      match Vm1.Formulate.solve ~node_limit:500 wp with
      | sol -> milp_solution wp sol
      | exception Vm1.Formulate.Verify_failed ps ->
        List.map (fun s -> "solver assignment infeasible: " ^ s) ps
    in
    Vm1.Formulate.verify := saved;
    problems

let flow (params : Vm1.Params.t) (p : Place.Placement.t) =
  let findings = ref [] in
  let add oracle problems = findings := { oracle; problems } :: !findings in
  add "design" (design p.Place.Placement.design);
  add "placement" (placement p);
  let tech = p.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  (* window geometry of the default sequence's first step (20 um) *)
  let bw = max 16 (20_000 / sw) and bh = max 4 (20_000 / rh) in
  add "windows" (windows p ~tx:0 ~ty:0 ~bw ~bh);
  add "objective" (objective_counts params p (Vm1.Objective.counts params p));
  Obs.Scopemon.arm ();
  let r = Route.Router.route p in
  Obs.Scopemon.disarm ();
  add "shard-monitor" (shard_violations ());
  add "route" (route_result r);
  add "milp" (milp_window params p ~bw ~bh);
  List.rev !findings

let ok findings = List.for_all (fun f -> f.problems = []) findings

let pp_findings ppf findings =
  List.iter
    (fun f ->
      Format.fprintf ppf "%-14s %s@." f.oracle
        (if f.problems = [] then "ok"
         else Printf.sprintf "%d problem(s)" (List.length f.problems));
      List.iter (fun s -> Format.fprintf ppf "    %s@." s) f.problems)
    findings
