(** Flow sanitizer: stage-boundary oracles that re-verify each substrate's
    output independently of the code that produced it (the paper only
    compares legal placements, so every QoR claim rests on these
    invariants). Each oracle returns human-readable problem descriptions;
    an empty list means the stage output is sound. [vm1opt --check] runs
    {!flow}; the DRC tool and the negative-path tests call the oracles
    directly. See ARCHITECTURE.md, "Invariants and how they are
    enforced". *)

(** [design d] wraps [Netlist.Design.validate]: dangling pin references,
    out-of-range net ids, nets with duplicate pins. *)
val design : Netlist.Design.t -> string list

(** [placement p] re-verifies placement legality from scratch: every
    instance on the site and row grid, inside the die, and no two
    instances overlapping (independent row-sweep, not
    [Place.Placement.overlap_count]). *)
val placement : Place.Placement.t -> string list

(** [windows p ~tx ~ty ~bw ~bh] re-runs the window partition and checks
    Algorithm 2's correctness precondition: every movable instance lies
    fully inside its window, no instance is movable in two windows, and
    each diagonal batch has pairwise-disjoint site spans and row spans
    (disjoint x/y projections — the condition under which window
    delta-HPWLs add exactly and windows may solve in parallel). *)
val windows :
  Place.Placement.t -> tx:int -> ty:int -> bw:int -> bh:int -> string list

(** [objective_counts params p c] recomputes HPWL, weighted HPWL,
    alignment and overlap counts directly from pin positions (own pair
    enumeration, not [Vm1.Objective.counts]) and compares with [c]. *)
val objective_counts :
  Vm1.Params.t -> Place.Placement.t -> Vm1.Objective.counts -> string list

(** [milp_solution wp sol] rebuilds the window's MILP with
    [Vm1.Formulate.build] and re-verifies the branch-and-bound assignment
    against every constraint, bound and integrality marker
    ([Milp.Model.check]). Infeasible solutions are not checked. *)
val milp_solution : Vm1.Wproblem.t -> Milp.Bnb.solution -> string list

(** [route_result r] re-verifies a routing result against its grid:

    - usage replay: wire/via usage recomputed from the stored paths must
      equal the grid's usage arrays;
    - ownership: no committed wire edge on a blocked track or a track
      reserved for another net;
    - overflow ledger: [Grid.overflow_count] must equal the full-scan
      oracle and the replayed count;
    - failed-subnet accounting: the recount must equal
      [r.failed_subnets];
    - connectivity: for every fully-routed net, all pins lie in one
      connected component of the committed edges (pins sharing an access
      node count as connected, matching the router's empty-path case). *)
val route_result : Route.Router.result -> string list

(** [shard_violations ()] formats the write-scope monitor's captured
    out-of-tile writes ({!Obs.Scopemon.violations}) — non-empty means a
    domain of the sharded routing pass wrote a grid cell outside its
    declared tile. *)
val shard_violations : unit -> string list

type finding = {
  oracle : string;        (** oracle name, e.g. ["placement"] *)
  problems : string list; (** empty = passed *)
}

(** [flow params p] runs the whole sanitizer on a placed design: design
    and placement oracles, window partition (first step of the default
    sequence), objective recount, a routing run with the shard-write
    monitor armed (route + shard-monitor oracles), and the MILP
    feasibility re-verification on a small extracted window (with
    [Vm1.Formulate.verify] set for the solve). Returns one finding per
    oracle, in run order. *)
val flow : Vm1.Params.t -> Place.Placement.t -> finding list

(** [ok findings] is true when every oracle passed. *)
val ok : finding list -> bool

(** [pp_findings ppf findings] renders one line per oracle plus each
    problem indented. *)
val pp_findings : Format.formatter -> finding list -> unit
