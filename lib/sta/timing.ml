type result = {
  wns_ns : float;
  critical_ps : float;
  clock_ps : float;
}

let wire_cap_per_um = 0.20
let wire_res_per_um = 0.40
let setup_ps = 10.0

(* Shared computation: per-net arrival times and the critical path. *)
let arrivals (design : Netlist.Design.t) ~net_lengths =
  let nn = Netlist.Design.num_nets design in
  let ni = Netlist.Design.num_instances design in
  (* net loads *)
  let length_um n = float_of_int net_lengths.(n) /. 1000.0 in
  let sink_cap = Array.make nn 0.0 in
  Array.iteri
    (fun _ (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          match pin.dir with
          | Pdk.Stdcell.Input | Pdk.Stdcell.Clock ->
            let n = inst.pin_nets.(k) in
            if n >= 0 then
              sink_cap.(n) <- sink_cap.(n) +. inst.master.Pdk.Stdcell.cap_in
          | Pdk.Stdcell.Output -> ())
        inst.master.Pdk.Stdcell.pins)
    design.instances;
  let net_load n = sink_cap.(n) +. (wire_cap_per_um *. length_um n) in
  (* stage delay of a net given its driver master *)
  let stage_delay (m : Pdk.Stdcell.t) n =
    let wire_r = wire_res_per_um *. length_um n in
    let wire_c = wire_cap_per_um *. length_um n in
    m.intrinsic_delay
    +. (m.drive_res *. net_load n)
    +. (0.5 *. wire_r *. wire_c)
  in
  (* arrival per net; -1 = not yet known. PI nets (no driver) arrive at 0;
     flip-flop outputs launch at clk->q independent of their D input. *)
  let arrival = Array.make nn (-1.0) in
  Array.iteri
    (fun n (net : Netlist.Design.net) ->
      if net.is_clock then arrival.(n) <- 0.0
      else
        match Array.length net.pins with
        | 0 -> arrival.(n) <- 0.0
        | _ ->
          let d = net.pins.(0) in
          let m = Netlist.Design.instance_master design d.inst in
          let mp = List.nth m.Pdk.Stdcell.pins d.pin in
          if mp.Pdk.Stdcell.dir <> Pdk.Stdcell.Output then
            (* driverless: primary input *)
            arrival.(n) <- 0.0
          else if Pdk.Stdcell.is_sequential m then
            arrival.(n) <- stage_delay m n)
    design.nets;
  (* combinational instances in id order: every combinational input comes
     from a lower id (generator invariant), a flip-flop or a PI *)
  for i = 0 to ni - 1 do
    let inst = design.instances.(i) in
    let m = inst.master in
    if not (Pdk.Stdcell.is_sequential m) then begin
      let in_arrival = ref 0.0 in
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          if pin.Pdk.Stdcell.dir = Pdk.Stdcell.Input then begin
            let n = inst.pin_nets.(k) in
            if n >= 0 && arrival.(n) >= 0.0 then
              in_arrival := max !in_arrival arrival.(n)
          end)
        m.pins;
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          if pin.Pdk.Stdcell.dir = Pdk.Stdcell.Output then begin
            let n = inst.pin_nets.(k) in
            if n >= 0 then arrival.(n) <- !in_arrival +. stage_delay m n
          end)
        m.pins
    end
  done;
  (* capture at flip-flop D pins *)
  let critical = ref 0.0 in
  Array.iter
    (fun (inst : Netlist.Design.instance) ->
      let m = inst.master in
      if Pdk.Stdcell.is_sequential m then
        List.iteri
          (fun k (pin : Pdk.Stdcell.pin) ->
            if pin.Pdk.Stdcell.dir = Pdk.Stdcell.Input then begin
              let n = inst.pin_nets.(k) in
              if n >= 0 && arrival.(n) >= 0.0 then
                critical := max !critical (arrival.(n) +. setup_ps)
            end)
          m.pins)
    design.instances;
  (arrival, !critical)

let analyze ?clock_ps (design : Netlist.Design.t) ~net_lengths =
  Obs.with_span "sta.analyze" (fun () ->
      let _, critical = arrivals design ~net_lengths in
      let clock_ps =
        match clock_ps with Some c -> c | None -> critical *. 1.05
      in
      let slack = clock_ps -. critical in
      Obs.Gauge.set (Obs.gauge "sta.critical_ps") critical;
      Obs.Counter.incr (Obs.counter "sta.analyses");
      {
        wns_ns = Float.min 0.0 slack /. 1000.0;
        critical_ps = critical;
        clock_ps;
      })

(* Criticality of a net: how close the latest path through it runs to the
   clock period, in [0, 1]; 1 = on (or beyond) the critical path. A net's
   "path arrival" is approximated by its own arrival time plus the worst
   downstream margin being unknown — we use arrival / critical, the usual
   cheap proxy. *)
let net_criticality ?clock_ps (design : Netlist.Design.t) ~net_lengths =
  let arrival, critical = arrivals design ~net_lengths in
  let clock_ps =
    match clock_ps with Some c -> c | None -> critical *. 1.05
  in
  Array.map
    (fun a ->
      if a <= 0.0 || clock_ps <= 0.0 then 0.0
      else Float.min 1.0 (a /. clock_ps))
    arrival
