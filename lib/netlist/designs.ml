type name = M0 | Aes | Jpeg | Vga

let all = [ M0; Aes; Jpeg; Vga ]

let to_string = function
  | M0 -> "m0"
  | Aes -> "aes"
  | Jpeg -> "jpeg"
  | Vga -> "vga"

let of_string = function
  | "m0" -> Some M0
  | "aes" -> Some Aes
  | "jpeg" -> Some Jpeg
  | "vga" -> Some Vga
  | _ -> None

let paper_instances = function
  | M0 -> 9922
  | Aes -> 12345
  | Jpeg -> 54570
  | Vga -> 68606

let seed_of = function M0 -> 11 | Aes -> 23 | Jpeg -> 37 | Vga -> 41

(* Per-design netlist flavour: M0 is a CPU core (more sequential, shorter
   locality); jpeg/vga are streaming pipelines whose connectivity is
   dominated by stage-local wiring, so they carry fewer global
   connections. Calibrated so each design routes DRV-clean at the paper's
   75 % utilisation (Table 2) while congestion appears when utilisation
   rises (Fig. 8). *)
let tune name (c : Generator.config) =
  match name with
  | M0 -> { c with dff_fraction = 0.14; locality_window = 25 }
  | Aes -> { c with dff_fraction = 0.10; locality_window = 30 }
  | Jpeg ->
    { c with dff_fraction = 0.09; locality_window = 30; global_fraction = 0.015 }
  | Vga ->
    { c with dff_fraction = 0.10; locality_window = 28; global_fraction = 0.01 }

let make ?lib ?(scale = 8) name arch =
  if scale < 1 then invalid_arg "Designs.make: scale must be >= 1";
  let lib =
    match lib with
    | Some (l : Pdk.Libgen.t) ->
      if not (Pdk.Cell_arch.equal l.Pdk.Libgen.tech.Pdk.Tech.arch arch) then
        invalid_arg "Designs.make: library architecture does not match";
      l
    | None -> Pdk.Libgen.generate (Pdk.Tech.default arch)
  in
  let n = max 64 (paper_instances name / scale) in
  let config = tune name (Generator.default_config ~n_instances:n ~seed:(seed_of name)) in
  Generator.generate lib config ~name:(to_string name)
