(** The paper's four testcases as named synthetic designs.

    Instance counts follow Table 2 of the paper (M0 9922, aes 12345,
    jpeg 54570, vga 68606). A [scale] divisor produces proportionally
    smaller designs with the same statistics for fast runs; the default
    experiment scale is 8 (see DESIGN.md). Each (design, architecture,
    scale) triple is deterministic. *)

type name = M0 | Aes | Jpeg | Vga

val all : name list
val to_string : name -> string
val of_string : string -> name option

(** Paper instance count of a design at scale 1. *)
val paper_instances : name -> int

(** [make ?lib ?scale name arch] generates the design bound to a library
    for [arch]: the given [lib] (its architecture must match [arch] —
    raises [Invalid_argument] otherwise), or a freshly generated one.
    Passing a library lets callers that build many designs — the batch
    service's artifact cache above all — pay [Pdk.Libgen.generate] once
    per architecture; the generated netlist is identical either way.
    [scale] defaults to 8. *)
val make : ?lib:Pdk.Libgen.t -> ?scale:int -> name -> Pdk.Cell_arch.t -> Design.t
