(** The flat placement record exchanged between the placement substrate
    and the interchange codecs.

    [xs]/[ys]/[orients] are indexed by instance id and give each cell's
    lower-left corner and orientation; [die] is the placeable area. The
    DEF codec that reads and writes this record lives in [Io.Def]
    (lib/io) — this module only defines the type, so [Netlist] and
    [Place] need no dependency on the codec. *)

type placement = {
  die : Geom.Rect.t;
  xs : int array;          (** lower-left x per instance id *)
  ys : int array;          (** lower-left y per instance id *)
  orients : Geom.Orient.t array;
}
