type placement = {
  die : Geom.Rect.t;
  xs : int array;
  ys : int array;
  orients : Geom.Orient.t array;
}
