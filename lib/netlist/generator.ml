type config = {
  n_instances : int;
  seed : int;
  dff_fraction : float;
  pi_fraction : float;
  locality_window : int;
  global_fraction : float;
}

let default_config ~n_instances ~seed =
  {
    n_instances;
    seed;
    dff_fraction = 0.10;
    pi_fraction = 0.02;
    locality_window = 60;
    global_fraction = 0.03;
  }

(* Relative frequency of combinational masters in the generated cell mix,
   loosely following the profile of a synthesised control+datapath block. *)
let comb_weights =
  [
    ("INV_X1", 14); ("INV_X2", 6); ("INV_X4", 2);
    ("BUF_X1", 6); ("BUF_X2", 3);
    ("NAND2_X1", 18); ("NAND2_X2", 6);
    ("NOR2_X1", 12); ("NOR2_X2", 4);
    ("AOI21_X1", 8); ("OAI21_X1", 8);
    ("XOR2_X1", 6); ("MUX2_X1", 7);
  ]

let dff_weights = [ ("DFF_X1", 4); ("DFF_X2", 1) ]

let pick_weighted rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  let r = Random.State.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (name, w) :: rest -> if r < acc + w then name else go (acc + w) rest
  in
  go 0 weights

(* Geometric-ish positive offset with mean ~ [window]. *)
let sample_offset rng window =
  let u = Random.State.float rng 1.0 in
  let d = int_of_float (-.float_of_int window *. log (1.0 -. u)) in
  1 + min d (window * 8)

let generate (lib : Pdk.Libgen.t) config ~name =
  let rng = Random.State.make [| config.seed; 0x5eed |] in
  let n = config.n_instances in
  if n < 2 then invalid_arg "Generator.generate: need at least 2 instances";
  (* 1. choose masters *)
  let masters =
    Array.init n (fun _ ->
        let weights =
          if Random.State.float rng 1.0 < config.dff_fraction then dff_weights
          else comb_weights
        in
        Pdk.Libgen.find lib (pick_weighted rng weights))
  in
  let is_dff i = Pdk.Stdcell.is_sequential masters.(i) in
  let dff_ids =
    List.filter is_dff (List.init n (fun i -> i))
  in
  (* 2. net table: one net per instance output, plus PIs, plus clock *)
  let n_pi = max 8 (n / 100) in
  let net_names = ref [] in
  let net_count = ref 0 in
  let fresh_net name =
    let id = !net_count in
    incr net_count;
    net_names := name :: !net_names;
    id
  in
  let pi_nets = Array.init n_pi (fun i -> fresh_net (Printf.sprintf "pi%d" i)) in
  let clock_net =
    if dff_ids = [] then -1 else fresh_net "clk"
  in
  let out_net = Array.make n (-1) in
  Array.iteri
    (fun i (m : Pdk.Stdcell.t) ->
      match Pdk.Stdcell.output m with
      | Some _ -> out_net.(i) <- fresh_net (Printf.sprintf "n%d" i)
      | None -> ())
    masters;
  (* 3. connect input pins *)
  let pin_nets =
    Array.mapi
      (fun _ (m : Pdk.Stdcell.t) ->
        Array.make (List.length m.pins) (-1))
      masters
  in
  let choose_driver_net i =
    if Random.State.float rng 1.0 < config.pi_fraction || i = 0 then begin
      (* each primary input feeds a contiguous band of the design (an
         input cone), not random instances die-wide *)
      let band = i * n_pi / n in
      let jitter = Random.State.int rng 3 - 1 in
      pi_nets.(max 0 (min (n_pi - 1) (band + jitter)))
    end
    else if
      Random.State.float rng 1.0 < config.global_fraction && dff_ids <> []
    then begin
      (* a global connection from some flip-flop's output *)
      let k = List.nth dff_ids (Random.State.int rng (List.length dff_ids)) in
      if out_net.(k) >= 0 then out_net.(k) else pi_nets.(0)
    end
    else begin
      (* local backward connection: keeps the combinational core acyclic *)
      let rec try_pick attempts =
        if attempts = 0 then pi_nets.(Random.State.int rng n_pi)
        else
          let d = sample_offset rng config.locality_window in
          let j = i - d in
          if j >= 0 && out_net.(j) >= 0 then out_net.(j)
          else try_pick (attempts - 1)
      in
      try_pick 4
    end
  in
  Array.iteri
    (fun i (m : Pdk.Stdcell.t) ->
      List.iteri
        (fun k (p : Pdk.Stdcell.pin) ->
          match p.dir with
          | Pdk.Stdcell.Output ->
            pin_nets.(i).(k) <- out_net.(i)
          | Pdk.Stdcell.Clock ->
            pin_nets.(i).(k) <- clock_net
          | Pdk.Stdcell.Input ->
            pin_nets.(i).(k) <- choose_driver_net i)
        m.pins)
    masters;
  (* 4. build net pin lists, driver first *)
  let nn = !net_count in
  let sinks = Array.make nn [] in
  let drivers = Array.make nn None in
  Array.iteri
    (fun i m ->
      Array.iteri
        (fun k netid ->
          if netid >= 0 then begin
            let mp = List.nth m.Pdk.Stdcell.pins k in
            let pr = { Design.inst = i; pin = k } in
            if mp.Pdk.Stdcell.dir = Pdk.Stdcell.Output then
              drivers.(netid) <- Some pr
            else sinks.(netid) <- pr :: sinks.(netid)
          end)
        pin_nets.(i))
    masters;
  let names = Array.of_list (List.rev !net_names) in
  let nets =
    Array.init nn (fun nid ->
        let pins =
          match drivers.(nid) with
          | Some d -> Array.of_list (d :: List.rev sinks.(nid))
          | None -> Array.of_list (List.rev sinks.(nid))
        in
        { Design.net_name = names.(nid); pins; is_clock = nid = clock_net })
  in
  let instances =
    Array.init n (fun i ->
        {
          Design.inst_name = Printf.sprintf "u%d" i;
          master = masters.(i);
          pin_nets = pin_nets.(i);
        })
  in
  { Design.name; lib; instances; nets }
