(** Work-stealing domain-pool scheduler: the execution substrate under
    every parallel hot loop of the flow (DistOpt window batches, the
    region-sharded routing pass, the benchmark harness).

    Design constraints, in order:

    - {b One pool per process, spawned once.} Workers are persistent
      domains; after warm-up no [Domain.spawn] happens mid-run (the
      [exec.domain_spawns] counter proves it). Spawn-per-batch, which
      the first DistOpt implementation paid, is exactly what this
      library removes.
    - {b Deterministic results.} [parallel_map] and [parallel_for]
      write results by index, so the outcome is identical to the
      sequential loop for every pool size — callers rely on
      [--jobs N] being bit-identical to [--jobs 1].
    - {b Graceful degradation to sequential execution.} With
      [jobs () <= 1] nothing is spawned and everything runs inline. A
      task whose worker raised, whose deadline expired before it
      started, or that was cancelled is re-run sequentially by the
      awaiting caller: [Future.await] never crashes the pool and never
      hangs a join.
    - {b Work stealing, bounded injection.} Each worker owns a
      Chase–Lev deque ({!Deque}); idle workers steal. External
      submissions go through a bounded queue — a full queue blocks the
      submitter (backpressure) instead of growing without bound.

    Instrumented through [lib/obs] (all no-ops until [Obs.set_enabled]):
    counters [exec.tasks], [exec.steals], [exec.deadline_hits],
    [exec.domain_spawns]; gauges [exec.pool_size], [exec.queue_depth_max];
    span [exec.task] around each pool-executed task (a root span of its
    worker domain, see the span-forest notes in ARCHITECTURE.md). *)

(** The work-stealing deque the pool is built on, re-exported for
    direct use and for the deque unit/property tests. *)
module Deque : module type of Deque

(** {1 Pool configuration} *)

(** [jobs ()] is the target parallelism: the configured value, or
    [Domain.recommended_domain_count ()] when unset. The pool runs
    [jobs () - 1] worker domains; the submitting domain is the
    remaining unit of parallelism (it claims and runs tasks while
    awaiting). [1] means fully sequential, nothing spawned. *)
val jobs : unit -> int

(** [set_jobs n] sets the target parallelism (clamped to >= 1). If a
    pool of a different size is live it is shut down; the next parallel
    call respawns at the new size. *)
val set_jobs : int -> unit

(** [set_queue_capacity n] bounds the external submission queue
    (default 4096, clamped to >= 1); submitters block while it is full. *)
val set_queue_capacity : int -> unit

(** [shutdown ()] stops and joins the worker domains, if any. Pending
    pool tasks are not lost: their awaiters run them inline. Installed
    via [at_exit] automatically; call it directly to force a respawn or
    to make a clean point in tests. *)
val shutdown : unit -> unit

(** {1 Futures} *)

module Future : sig
  (** A handle on a submitted task (or a pure/derived value). *)
  type 'a t

  (** [await t] returns the task's value, claiming and running it
      inline if no worker got to it first — so [await] always makes
      progress, even with no pool. If the pool's run raised, hit its
      deadline, or was cancelled, the thunk is re-run sequentially by
      the caller (the sequential-fallback guarantee); an exception from
      that sequential run propagates. *)
  val await : 'a t -> 'a

  (** [poll t] is [Some v] once the value is available, without
      blocking or helping. *)
  val poll : 'a t -> 'a option

  (** [return v] is an already-completed future holding [v]; [await]
      and [poll] yield it immediately. *)
  val return : 'a -> 'a t

  (** [map f t] is a future for [f] applied to [t]'s value. [f] runs
      in the caller on every [await] (or successful [poll]) — it is not
      memoised, so it should be cheap and pure. *)
  val map : ('a -> 'b) -> 'a t -> 'b t

  (** [all ts] is a future for the values of [ts], in order. Awaiting
      it awaits each in turn (helping inline as usual); there is no
      early exit on failure. *)
  val all : 'a t list -> 'a list t

  (** [cancel t] reclaims a submitted task from the pool: [true] when
      it won (no worker will run it; [await] computes it inline),
      [false] when execution had already started or [t] is not a
      submitted task. *)
  val cancel : 'a t -> bool
end

(** [submit ?deadline_ns f] schedules [f] on the pool and returns its
    future. [deadline_ns] is an absolute [Obs.now_ns] timestamp: a
    worker that picks the task up past the deadline does not run it
    (counted in [exec.deadline_hits]); the awaiter runs it inline
    instead. With [jobs () <= 1] nothing is enqueued and [await] runs
    [f] inline. Thunks must tolerate being re-run when they raise (the
    fallback path); pure thunks and idempotent writes qualify. *)
val submit : ?deadline_ns:int64 -> (unit -> 'a) -> 'a Future.t

(** {1 Deterministic racing} *)

(** [race ?budget_ns thunks] runs the thunks as deadline-raced pool
    tasks and returns {e all} results, in submission order. The
    deadline ([budget_ns] after submission) bounds pool-side execution
    only: a worker that reaches a task past the deadline skips it, and
    the awaiting caller runs it inline — so every thunk still produces
    its result and the returned list is identical for every pool size,
    including [jobs () = 1] (fully sequential). Callers pick the winner
    from the complete result list with their own deterministic rule;
    wall-clock never decides an outcome, only where a thunk executes.
    Thunks must be independent (they may run concurrently) and, like
    all submitted tasks, tolerate a sequential re-run on the fallback
    path. *)
val race : ?budget_ns:int64 -> (unit -> 'a) list -> 'a list

(** {1 Domain-local slots} *)

(** One lazily-initialised value per domain: the confinement tool for
    per-domain caches used from pool workers (e.g. the window
    memo-cache of the batch service). [get] never shares a value
    across domains, so slot contents need no locking — the same
    domain-confinement argument as [Serve.Cache], extended to code
    that runs on the pool. *)
module Dls : sig
  type 'a slot

  (** [create init] declares a slot; [init] runs once per domain, on
      that domain's first [get]. *)
  val create : (unit -> 'a) -> 'a slot

  (** [get slot] is the calling domain's instance. *)
  val get : 'a slot -> 'a
end

(** {1 Deterministic data-parallel loops} *)

(** [parallel_map ?chunk f xs] is [Array.map f xs], computed in chunks
    across the pool. Results are written by index, so the output is
    identical for every [jobs] setting; [chunk] defaults to about four
    chunks per unit of parallelism. *)
val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_for ?chunk n body] runs [body i] for [i] in [0..n-1]
    across the pool ([chunk] consecutive indices per task, default 1 —
    suited to coarse tasks like window solves). The caller returns only
    after every index completed. [body] must be safe to run
    concurrently for distinct indices. *)
val parallel_for : ?chunk:int -> int -> (int -> unit) -> unit

(** {1 Background service domains}

    A long-running side loop (the daemon's admin plane) needs a domain
    of its own, outside the pool: pool tasks must stay short-lived or
    they starve job execution. [Bg] is the sanctioned wrapper — a
    spawned domain plus a cooperative stop flag. Unlike pool workers,
    a [Bg] spawn does not move [exec.domain_spawns]: that counter means
    "pool workers created" and is embedded in traced-job replies, which
    must be byte-identical whether or not a service domain is running. *)

module Bg : sig
  type t

  (** [spawn body] starts [body] on a fresh domain. [body] must poll
      [should_stop] at every blocking point (e.g. each select timeout)
      and return promptly once it reads [true]. *)
  val spawn : (should_stop:(unit -> bool) -> unit) -> t

  (** [stop t] raises the stop flag without waiting. *)
  val stop : t -> unit

  (** [join t] raises the stop flag and waits for the domain to
      return. Idempotent with [stop]; call exactly once. *)
  val join : t -> unit
end
