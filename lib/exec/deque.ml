(* Chase–Lev with every shared location atomic. OCaml atomics are
   sequentially consistent, which is stronger than the fences of the
   original paper, so the informal proof carries over directly:

   - [top] only ever increases, so the steal CAS has no ABA problem.
   - A slot is recycled only after [bottom] wraps a full capacity past
     it, which cannot happen while [top] still points at it (the owner
     grows first); grown-out buffers are never written again, so a
     thief that read a stale buffer pointer still sees the correct
     value for any index it can win the CAS for.
   - A thief reads [top], then [bottom], then the buffer: if the
     element at [top] was pushed into a grown buffer, the owner's
     [bottom] update (observed by the thief) came after the buffer
     swap, so the thief's buffer read sees the new array. *)

type 'a t = {
  top : int Atomic.t;                        (* thief end *)
  bottom : int Atomic.t;                     (* owner end *)
  buf : 'a option Atomic.t array Atomic.t;   (* capacity is a power of 2 *)
}

let min_capacity = 16

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = min_capacity) () =
  let cap = pow2 (max capacity 2) 2 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let slot a k = a.(k land (Array.length a - 1))

(* Owner only: copy the live range [top, bottom) into a buffer twice the
   size and publish it. The old buffer is left intact for stale
   thieves. *)
let grow t ~top:tp ~bottom:b a =
  let na = Array.init (2 * Array.length a) (fun _ -> Atomic.make None) in
  for k = tp to b - 1 do
    Atomic.set (slot na k) (Atomic.get (slot a k))
  done;
  Atomic.set t.buf na;
  na

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let a = Atomic.get t.buf in
  let a = if b - tp >= Array.length a then grow t ~top:tp ~bottom:b a else a in
  Atomic.set (slot a b) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let a = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* already empty: undo the reservation *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let v = Atomic.get (slot a b) in
    if b > tp then begin
      (* more than one element: slot b is unreachable to thieves *)
      Atomic.set (slot a b) None;
      v
    end
    else begin
      (* last element: race thieves for it via the top CAS *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        Atomic.set (slot a b) None;
        v
      end
      else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let a = Atomic.get t.buf in
    let v = Atomic.get (slot a tp) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)
