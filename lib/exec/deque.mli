(** Chase–Lev work-stealing deque.

    One {e owner} domain pushes and pops at the bottom (LIFO, cheap);
    any number of {e thief} domains steal from the top (FIFO). The
    classic lock-free algorithm (Chase & Lev, SPAA'05), expressed with
    OCaml's sequentially-consistent atomics: [top], [bottom], the buffer
    pointer and every cell are atomic, so the staleness arguments of the
    original paper hold without fences. The buffer grows geometrically;
    grown-out buffers are never written again, which is what makes a
    thief's possibly-stale buffer pointer safe to read through.

    Owner operations must all be called from the same domain; [steal]
    may be called from any domain, concurrently with everything. *)

(** A deque of ['a] tasks, owned by the domain that created it. *)
type 'a t

(** [create ()] is an empty deque (initial capacity [min_capacity]). *)
val create : ?capacity:int -> unit -> 'a t

(** [push t v] appends [v] at the owner end. Owner only. *)
val push : 'a t -> 'a -> unit

(** [pop t] removes the most recently pushed element (owner end), or
    [None] when the deque is empty. Owner only. *)
val pop : 'a t -> 'a option

(** [steal t] removes the oldest element (thief end), or [None] when
    the deque is empty {e or} the thief lost a race — callers treat
    both as "nothing to steal" and move on. Any domain. *)
val steal : 'a t -> 'a option

(** [size t] is a snapshot of the element count; exact for the owner,
    a lower-bound hint for other domains. *)
val size : 'a t -> int
