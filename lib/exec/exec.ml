module Deque = Deque

(* Metric handles are created once: bumps happen on worker domains and a
   per-call registry lookup would contend on the registry lock. *)
let c_tasks = Obs.counter "exec.tasks"
let c_steals = Obs.counter "exec.steals"
let c_deadline = Obs.counter "exec.deadline_hits"
let c_spawns = Obs.counter "exec.domain_spawns"
let g_pool_size = Obs.gauge "exec.pool_size"
let g_queue_max = Obs.gauge "exec.queue_depth_max"

(* --- tasks and their cells --- *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn
  | Skipped  (* deadline hit or cancelled before execution *)

type 'a cell = {
  thunk : unit -> 'a;
  state : 'a state Atomic.t;
  claimed : bool Atomic.t;  (* exactly one executor wins this CAS *)
  deadline_ns : int64 option;
  mu : Mutex.t;
  cond : Condition.t;  (* signalled on every state transition *)
}

type task = Task : 'a cell -> task

let resolve c st =
  Atomic.set c.state st;
  Mutex.lock c.mu;
  Condition.broadcast c.cond;
  Mutex.unlock c.mu

(* Pool-side execution: claim, check the deadline, run under a span.
   Exceptions land in the cell, never in the worker loop. *)
let run_task (Task c) =
  if Atomic.compare_and_set c.claimed false true then begin
    let expired =
      match c.deadline_ns with
      | Some d -> Int64.compare (Obs.now_ns ()) d > 0
      | None -> false
    in
    if expired then begin
      Obs.Counter.incr c_deadline;
      resolve c Skipped
    end
    else begin
      Obs.Counter.incr c_tasks;
      match Obs.with_span "exec.task" c.thunk with
      | v -> resolve c (Done v)
      | exception e -> resolve c (Failed e)
    end
  end

(* --- the pool --- *)

type pool = {
  n_workers : int;
  deques : task Deque.t array;  (* one per worker, stealable by all *)
  inj : task Queue.t;           (* external submissions; guarded by mu *)
  mu : Mutex.t;
  work_cond : Condition.t;      (* "there may be work" / shutdown *)
  space_cond : Condition.t;     (* the bounded injector has space *)
  mutable q_max : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let queue_capacity = Atomic.make 4096
let set_queue_capacity n = Atomic.set queue_capacity (max 1 n)
let requested_jobs = Atomic.make 0 (* 0 = auto *)
let auto_jobs = lazy (Domain.recommended_domain_count ())

let jobs () =
  let r = Atomic.get requested_jobs in
  if r > 0 then r else Lazy.force auto_jobs

let pool_mu = Mutex.create ()
let pool : pool option ref = ref None
let exit_hook = ref false

(* Worker identity of the calling domain, if any. *)
let self_key : (pool * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let has_work p =
  Queue.length p.inj > 0 || Array.exists (fun d -> Deque.size d > 0) p.deques

(* Move a small batch from the injector to [deque] (when the caller is
   a worker) so that other workers can steal their share; run the first
   task ourselves. *)
let take_injector p ~deque =
  Mutex.lock p.mu;
  if Queue.length p.inj = 0 then begin
    Mutex.unlock p.mu;
    None
  end
  else begin
    let first = Queue.pop p.inj in
    (match deque with
    | Some d ->
      let extra = min 3 (Queue.length p.inj) in
      for _ = 1 to extra do
        Deque.push d (Queue.pop p.inj)
      done;
      if extra > 0 then Condition.broadcast p.work_cond
    | None -> ());
    Condition.broadcast p.space_cond;
    Mutex.unlock p.mu;
    Some first
  end

let steal_cursor = Atomic.make 0

let try_steal p ~self =
  let n = Array.length p.deques in
  let start = Atomic.fetch_and_add steal_cursor 1 in
  let rec go k =
    if k >= n then None
    else begin
      let ix = (start + k) mod n in
      if Some ix = self then go (k + 1)
      else
        match Deque.steal p.deques.(ix) with
        | Some _ as t ->
          Obs.Counter.incr c_steals;
          t
        | None -> go (k + 1)
    end
  in
  go 0

let rec worker_loop p ix =
  match Deque.pop p.deques.(ix) with
  | Some t ->
    run_task t;
    worker_loop p ix
  | None -> (
    match take_injector p ~deque:(Some p.deques.(ix)) with
    | Some t ->
      run_task t;
      worker_loop p ix
    | None -> (
      match try_steal p ~self:(Some ix) with
      | Some t ->
        run_task t;
        worker_loop p ix
      | None ->
        Mutex.lock p.mu;
        if (not p.stop) && not (has_work p) then
          Condition.wait p.work_cond p.mu;
        let stop = p.stop in
        Mutex.unlock p.mu;
        if not stop then worker_loop p ix))

let make_pool n =
  let p =
    {
      n_workers = n;
      deques = Array.init n (fun _ -> Deque.create ());
      inj = Queue.create ();
      mu = Mutex.create ();
      work_cond = Condition.create ();
      space_cond = Condition.create ();
      q_max = 0;
      stop = false;
      domains = [];
    }
  in
  Obs.Gauge.set g_pool_size (float_of_int (n + 1));
  p.domains <-
    List.init n (fun ix ->
        Obs.Counter.incr c_spawns;
        Domain.spawn (fun () ->
            Domain.DLS.set self_key (Some (p, ix));
            worker_loop p ix));
  p

let teardown p =
  Mutex.lock p.mu;
  p.stop <- true;
  Condition.broadcast p.work_cond;
  Condition.broadcast p.space_cond;
  Mutex.unlock p.mu;
  List.iter Domain.join p.domains

let shutdown () =
  Mutex.lock pool_mu;
  let p = !pool in
  pool := None;
  Mutex.unlock pool_mu;
  match p with Some p -> teardown p | None -> ()

(* Only called with [jobs () > 1], so the pool always has >= 1 worker. *)
let get_pool () =
  Mutex.lock pool_mu;
  let target = jobs () - 1 in
  let p =
    match !pool with
    | Some p when p.n_workers = target -> p
    | other ->
      (match other with
      | Some stale ->
        pool := None;
        Mutex.unlock pool_mu;
        teardown stale;
        Mutex.lock pool_mu
      | None -> ());
      if not !exit_hook then begin
        exit_hook := true;
        at_exit shutdown
      end;
      let np = make_pool target in
      pool := Some np;
      np
  in
  Mutex.unlock pool_mu;
  p

let set_jobs n =
  let n = max 1 n in
  Atomic.set requested_jobs n;
  Mutex.lock pool_mu;
  let stale =
    match !pool with
    | Some p when p.n_workers <> n - 1 ->
      pool := None;
      Some p
    | _ -> None
  in
  Mutex.unlock pool_mu;
  match stale with Some p -> teardown p | None -> ()

(* --- submission --- *)

let enqueue p t =
  match Domain.DLS.get self_key with
  | Some (wp, ix) when wp == p ->
    (* nested submission from a worker: its own deque, no bound needed
       (the worker drains it itself; thieves help) *)
    Deque.push p.deques.(ix) t;
    Mutex.lock p.mu;
    Condition.broadcast p.work_cond;
    Mutex.unlock p.mu
  | _ ->
    Mutex.lock p.mu;
    while Queue.length p.inj >= Atomic.get queue_capacity && not p.stop do
      Condition.wait p.space_cond p.mu
    done;
    if not p.stop then begin
      Queue.push t p.inj;
      let len = Queue.length p.inj in
      if len > p.q_max then begin
        p.q_max <- len;
        Obs.Gauge.set g_queue_max (float_of_int len)
      end;
      Condition.signal p.work_cond
    end;
    (* on stop: leave the task unenqueued; its awaiter runs it inline *)
    Mutex.unlock p.mu

(* --- futures --- *)

(* The awaiting caller (a) races workers to claim-and-run unstarted
   tasks inline, which is what makes await deadlock-free with no pool
   at all, and (b) helps run other tasks while a worker holds its
   claim. Sequential fallback for Failed/Skipped lives here too. *)

let run_fallback (c : _ cell) =
  Mutex.lock c.mu;
  match Atomic.get c.state with
  | Done v ->
    (* another awaiter recomputed first *)
    Mutex.unlock c.mu;
    v
  | _ -> (
    match c.thunk () with
    | v ->
      Atomic.set c.state (Done v);
      Condition.broadcast c.cond;
      Mutex.unlock c.mu;
      v
    | exception e ->
      Mutex.unlock c.mu;
      raise e)

(* Help with one task from anywhere in the pool; false when idle. *)
let help_once () =
  Mutex.lock pool_mu;
  let p = !pool in
  Mutex.unlock pool_mu;
  match p with
  | None -> false
  | Some p -> (
    let own, self =
      match Domain.DLS.get self_key with
      | Some (wp, ix) when wp == p -> (Deque.pop p.deques.(ix), Some ix)
      | _ -> (None, None)
    in
    match own with
    | Some t ->
      run_task t;
      true
    | None -> (
      match take_injector p ~deque:None with
      | Some t ->
        run_task t;
        true
      | None -> (
        match try_steal p ~self with
        | Some t ->
          run_task t;
          true
        | None -> false)))

let rec await_cell c =
  match Atomic.get c.state with
  | Done v -> v
  | Failed _ | Skipped -> run_fallback c
  | Pending ->
    if Atomic.compare_and_set c.claimed false true then begin
      (* unstarted: run it inline, deadline irrelevant — the value is
         needed now *)
      Obs.Counter.incr c_tasks;
      match c.thunk () with
      | v ->
        resolve c (Done v);
        v
      | exception e ->
        resolve c (Failed e);
        raise e
    end
    else begin
      (* an executor holds the claim: help elsewhere, else sleep until
         the resolution broadcast *)
      if not (help_once ()) then begin
        Mutex.lock c.mu;
        (match Atomic.get c.state with
        | Pending -> Condition.wait c.cond c.mu
        | _ -> ());
        Mutex.unlock c.mu
      end;
      await_cell c
    end

module Future = struct
  type _ t =
    | Pure : 'a -> 'a t
    | Cell : 'a cell -> 'a t
    | Map : ('a -> 'b) * 'a t -> 'b t
    | All : 'a t list -> 'a list t

  let return v = Pure v
  let map f t = Map (f, t)
  let all ts = All ts

  let rec await : type a. a t -> a = function
    | Pure v -> v
    | Cell c -> await_cell c
    | Map (f, t) -> f (await t)
    | All ts -> List.map (fun t -> await t) ts

  let rec poll : type a. a t -> a option = function
    | Pure v -> Some v
    | Cell c -> (
      match Atomic.get c.state with Done v -> Some v | _ -> None)
    | Map (f, t) -> Option.map f (poll t)
    | All ts ->
      let vs = List.map (fun t -> poll t) ts in
      if List.for_all Option.is_some vs then Some (List.map Option.get vs)
      else None

  let cancel : type a. a t -> bool = function
    | Cell c ->
      if Atomic.compare_and_set c.claimed false true then begin
        resolve c Skipped;
        true
      end
      else false
    | Pure _ | Map _ | All _ -> false
end

let submit ?deadline_ns thunk =
  let c =
    {
      thunk;
      state = Atomic.make Pending;
      claimed = Atomic.make false;
      deadline_ns;
      mu = Mutex.create ();
      cond = Condition.create ();
    }
  in
  if jobs () > 1 then enqueue (get_pool ()) (Task c);
  Future.Cell c

(* --- deterministic racing --- *)

let race ?budget_ns thunks =
  let deadline_ns =
    Option.map (fun b -> Int64.add (Obs.now_ns ()) b) budget_ns
  in
  let futs = List.map (fun f -> submit ?deadline_ns f) thunks in
  List.map Future.await futs

(* --- domain-local slots --- *)

module Dls = struct
  type 'a slot = 'a Domain.DLS.key

  let create init = Domain.DLS.new_key init
  let get slot = Domain.DLS.get slot
end

(* --- deterministic loops --- *)

let parallel_for ?(chunk = 1) n body =
  if n > 0 then begin
    let chunk = max 1 chunk in
    if jobs () <= 1 || n <= chunk then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      let nchunks = (n + chunk - 1) / chunk in
      let futs =
        List.init nchunks (fun ci ->
            submit (fun () ->
                let hi = min n ((ci + 1) * chunk) - 1 in
                for i = ci * chunk to hi do
                  body i
                done))
      in
      List.iter Future.await futs
    end
  end

let parallel_map ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let j = jobs () in
    if j <= 1 || n = 1 then Array.map f xs
    else begin
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 ((n + (4 * j) - 1) / (4 * j))
      in
      let out = Array.make n None in
      parallel_for ~chunk n (fun i -> out.(i) <- Some (f xs.(i)));
      Array.map (function Some v -> v | None -> assert false) out
    end
  end

(* --- background service domains --- *)

module Bg = struct
  type t = { stop_flag : bool Atomic.t; dom : unit Domain.t }

  (* Deliberately does not bump exec.domain_spawns: that counter means
     "pool workers created" (a test asserts it never moves mid-run),
     and it is embedded in traced-job replies — a service domain for
     the admin plane must not perturb job payloads. *)
  let spawn body =
    let stop_flag = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          body ~should_stop:(fun () -> Atomic.get stop_flag))
    in
    { stop_flag; dom }

  let stop t = Atomic.set t.stop_flag true

  let join t =
    stop t;
    Domain.join t.dom
end
