(** Algorithm 1 (VM1Opt): the metaheuristic outer loop.

    For each input parameter set u of the queue U, iterate until the
    normalised objective improvement drops below theta:
    DistOpt with perturbation and no flipping, then DistOpt with flipping
    only, then shift the window grid so cells stuck at the previous
    iteration's window boundaries become optimisable. *)

(** Where the window memo-cache (see {!Wcache}) for a run comes from.
    [Fresh_wcache] (the default) creates a private cache per [run] —
    outer iterations re-encounter converged windows and replay them.
    [Shared_wcache] reuses a caller-owned cache across runs (the daemon
    keeps one per worker domain, warming across jobs); the caller owns
    domain confinement. [No_wcache] disables memoisation. Results are
    byte-identical under every policy (the hit ≡ miss invariant). *)
type wcache_policy =
  | No_wcache
  | Fresh_wcache
  | Shared_wcache of Wcache.t

type config = {
  sequence : Params.step list;
  mode : Scp_solver.mode;
  max_inner_iters : int;  (** safety bound on the while loop *)
  parallel : bool;        (** distribute window batches over domains *)
  candidate_cost : (site:int -> row:int -> float) option;
  (** static per-candidate penalty (the congestion-aware extension) *)
  wcache : wcache_policy;
}

val default_config : config

type iteration = {
  step_index : int;       (** which u in U *)
  objective : float;      (** after the iteration *)
  delta : float;          (** normalised improvement *)
  moves : int;
}

type report = {
  initial_objective : float;
  final_objective : float;
  iterations : iteration list;
  runtime_s : float;
}

(** [run ?config params p] optimises in place and reports the trajectory.
    Window sizes in the sequence are given in micrometres and converted
    to sites/rows against the placement's technology. *)
val run : ?config:config -> Params.t -> Place.Placement.t -> report
