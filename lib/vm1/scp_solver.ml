type mode = [ `Exact | `Greedy | `Anneal | `Auto | `Portfolio ]

let mode_to_string = function
  | `Exact -> "exact"
  | `Greedy -> "greedy"
  | `Anneal -> "anneal"
  | `Auto -> "auto"
  | `Portfolio -> "portfolio"

let mode_of_string = function
  | "exact" -> Some `Exact
  | "greedy" -> Some `Greedy
  | "anneal" -> Some `Anneal
  | "auto" -> Some `Auto
  | "portfolio" -> Some `Portfolio
  | _ -> None

type stats = {
  objective_before : float;
  objective_after : float;
  moves : int;
  passes : int;
}

let exact_limit = 1_000_000

let exact_search_space (t : Wproblem.t) =
  Array.fold_left
    (fun acc (c : Wproblem.cell) ->
      let k = Array.length c.cands in
      if acc > exact_limit then acc else acc * k)
    1 t.cells

let greedy ?(max_passes = 8) (t : Wproblem.t) =
  let before = Wproblem.objective t in
  let moves = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  let n = Array.length t.cells in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for cell = 0 to n - 1 do
      let c = t.cells.(cell) in
      let cur_gain = Wproblem.cell_pair_gain_at t ~cell ~cand:c.cur in
      (* the cell's own state is constant across its candidate scan
         (plans tested via plan_delta are reverted), so the cur-cost half
         of move_delta is hoisted out of the loop: same floats, half the
         local_cost walks *)
      let cur_cost = Wproblem.local_cost t ~cell ~cand:c.cur in
      let best_action = ref None in
      let best_delta = ref 0.0 in
      for cand = 0 to Array.length c.cands - 1 do
        if cand <> c.cur then begin
          if Wproblem.candidate_free t ~cell ~cand then begin
            let d = Wproblem.local_cost t ~cell ~cand -. cur_cost in
            if d < !best_delta -. 1e-9 then begin
              best_delta := d;
              best_action := Some (`Move cand)
            end
          end
          else if
            (* occupied: worth a ripple move only when it buys pair gain *)
            Wproblem.cell_pair_gain_at t ~cell ~cand > cur_gain +. 1e-9
          then begin
            match Wproblem.shove_plan t ~cell ~cand with
            | Some plan ->
              let d = Wproblem.plan_delta t plan in
              if d < !best_delta -. 1e-9 then begin
                best_delta := d;
                best_action := Some (`Plan plan)
              end
            | None -> ()
          end
        end
      done;
      match !best_action with
      | Some (`Move cand) ->
        Wproblem.apply t ~cell ~cand;
        incr moves;
        improved := true
      | Some (`Plan plan) ->
        Wproblem.apply_plan t plan;
        moves := !moves + List.length plan;
        improved := true
      | None -> ()
    done
  done;
  {
    objective_before = before;
    objective_after = Wproblem.objective t;
    moves = !moves;
    passes = !passes;
  }

let exact (t : Wproblem.t) =
  if exact_search_space t > exact_limit then
    invalid_arg "Scp_solver: window too large for exact search";
  let before = Wproblem.objective t in
  let n = Array.length t.cells in
  let saved = Array.map (fun (c : Wproblem.cell) -> c.cur) t.cells in
  let best_obj = ref before in
  let best_assign = Array.copy saved in
  (* lift every movable cell so that candidate feasibility is tested only
     against fixed blockage and already-assigned cells; otherwise a joint
     configuration where one cell takes another's vacated spot would be
     wrongly pruned *)
  for cell = 0 to n - 1 do
    Wproblem.lift t ~cell
  done;
  let rec go cell =
    if cell = n then begin
      let obj = Wproblem.objective t in
      if obj < !best_obj -. 1e-9 then begin
        best_obj := obj;
        Array.iteri
          (fun i (c : Wproblem.cell) -> best_assign.(i) <- c.cur)
          t.cells
      end
    end
    else begin
      let c = t.cells.(cell) in
      for cand = 0 to Array.length c.cands - 1 do
        if Wproblem.footprint_free_at t ~cell ~cand then begin
          Wproblem.set_cur t ~cell ~cand;
          Wproblem.drop t ~cell;
          go (cell + 1);
          Wproblem.lift t ~cell
        end
      done;
      Wproblem.set_cur t ~cell ~cand:saved.(cell)
    end
  in
  go 0;
  (* restore occupancy at the saved assignment, then apply the best one
     through the normal API *)
  for cell = 0 to n - 1 do
    Wproblem.set_cur t ~cell ~cand:saved.(cell);
    Wproblem.drop t ~cell
  done;
  Array.iteri (fun i cand -> Wproblem.apply t ~cell:i ~cand) best_assign;
  let moves =
    Array.fold_left
      (fun acc (c : Wproblem.cell) -> if c.cur <> 0 then acc + 1 else acc)
      0 t.cells
  in
  {
    objective_before = before;
    objective_after = Wproblem.objective t;
    moves;
    passes = 1;
  }

(* Simulated annealing on top of the greedy solution (the paper's
   future-work direction (iii)): random single-cell moves accepted by the
   Metropolis rule with a geometric cooling schedule, the best visited
   assignment kept, and a final greedy polish. Deterministic: the RNG is
   seeded from the problem shape. *)
let anneal ?max_passes (t : Wproblem.t) =
  let g_stats = greedy ?max_passes t in
  let n = Array.length t.cells in
  if n = 0 then g_stats
  else begin
    let rng = Random.State.make [| n; Array.length t.pairs; 0xa11ea1 |] in
    let best = Array.map (fun (c : Wproblem.cell) -> c.cur) t.cells in
    let best_obj = ref (Wproblem.objective t) in
    let current_obj = ref !best_obj in
    let temp = ref 400.0 in
    let iters = max 200 (40 * n) in
    let moves = ref 0 in
    for _ = 1 to iters do
      let cell = Random.State.int rng n in
      let c = t.cells.(cell) in
      let k = Array.length c.cands in
      if k > 1 then begin
        let cand = Random.State.int rng k in
        if cand <> c.cur && Wproblem.candidate_free t ~cell ~cand then begin
          let delta = Wproblem.move_delta t ~cell ~cand in
          let accept =
            delta < 0.0
            || Random.State.float rng 1.0 < exp (-.delta /. !temp)
          in
          if accept then begin
            Wproblem.apply t ~cell ~cand;
            incr moves;
            current_obj := !current_obj +. delta;
            if !current_obj < !best_obj -. 1e-9 then begin
              best_obj := !current_obj;
              Array.iteri
                (fun i (c : Wproblem.cell) -> best.(i) <- c.cur)
                t.cells
            end
          end
        end
      end;
      temp := !temp *. 0.999
    done;
    Array.iteri (fun i cand -> Wproblem.apply t ~cell:i ~cand) best;
    let polish = greedy ?max_passes t in
    {
      objective_before = g_stats.objective_before;
      objective_after = polish.objective_after;
      moves = g_stats.moves + !moves + polish.moves;
      passes = g_stats.passes + 1 + polish.passes;
    }
  end

(* --- the racing portfolio ---

   Every admissible solver runs on its own clone of the problem, raced
   on the shared Exec pool under a soft deadline. The deadline bounds
   where a racer executes, never whether (an expired task is run inline
   by the awaiter — the Exec.race contract), so the full result list is
   always available and the winner is a pure function of the problem:
   best objective, ties broken by the fixed rank order exact > greedy >
   anneal. That rule is what keeps `Portfolio byte-identical across
   --jobs. *)

let portfolio_budget_ns = 250_000_000L

(* exact joins the race only on windows where it is clearly cheap; the
   same bound `Auto uses to prefer it *)
let exact_admissible t =
  Array.length t.Wproblem.cells <= 6 && exact_search_space t <= 50_000

let c_win_exact = Obs.counter "distopt.portfolio_wins.exact"
let c_win_greedy = Obs.counter "distopt.portfolio_wins.greedy"
let c_win_anneal = Obs.counter "distopt.portfolio_wins.anneal"

let portfolio ?max_passes t =
  let racers =
    (if exact_admissible t then [ (c_win_exact, fun p -> exact p) ] else [])
    @ [
        (c_win_greedy, (fun p -> greedy ?max_passes p));
        (c_win_anneal, (fun p -> anneal ?max_passes p));
      ]
  in
  let entries =
    List.map
      (fun (win_counter, solver) ->
        let p = Wproblem.clone t in
        (win_counter, p, fun () -> solver p))
      racers
  in
  let results =
    Exec.race ~budget_ns:portfolio_budget_ns
      (List.map (fun (_, _, thunk) -> thunk) entries)
  in
  let best = ref None in
  List.iter2
    (fun (win_counter, p, _) (s : stats) ->
      match !best with
      | Some (_, _, (b : stats))
        when s.objective_after >= b.objective_after -> ()
      | _ -> best := Some (win_counter, p, s))
    entries results;
  match !best with
  | None -> greedy ?max_passes t (* unreachable: the racer list is nonempty *)
  | Some (win_counter, p, s) ->
    Obs.Counter.incr win_counter;
    Wproblem.set_assignment t (Wproblem.assignment p);
    s

let c_mode_greedy = Obs.counter "scp.mode.greedy"
let c_mode_exact = Obs.counter "scp.mode.exact"
let c_mode_anneal = Obs.counter "scp.mode.anneal"
let c_mode_portfolio = Obs.counter "scp.mode.portfolio"

let solve ?(mode = `Auto) ?max_passes t =
  let mode =
    match mode with
    | `Auto -> if exact_admissible t then `Exact else `Greedy
    | (`Greedy | `Exact | `Anneal | `Portfolio) as m -> m
  in
  match mode with
  | `Greedy ->
    Obs.Counter.incr c_mode_greedy;
    greedy ?max_passes t
  | `Exact ->
    Obs.Counter.incr c_mode_exact;
    exact t
  | `Anneal ->
    Obs.Counter.incr c_mode_anneal;
    anneal ?max_passes t
  | `Portfolio ->
    Obs.Counter.incr c_mode_portfolio;
    portfolio ?max_passes t
