type built = {
  model : Milp.Model.t;
  lambda : Milp.Model.var array array;
}

let big_g = 1.0e6

(* Linear expression for one geometric attribute of a pin: a constant for
   fixed pins, sum over candidates of (attribute * lambda) for movable. *)
let pin_expr (t : Wproblem.t) lambda (wp : Wproblem.wpin)
    (attr : Align.pin_geom -> int) =
  if wp.owner < 0 then Milp.Model.const (float_of_int (attr wp.fixed_geom))
  else begin
    let cell = t.cells.(wp.owner) in
    let terms =
      Array.to_list
        (Array.mapi
           (fun k geoms ->
             Milp.Model.term
               (float_of_int (attr geoms.(wp.pr.Netlist.Design.pin)))
               lambda.(wp.owner).(k))
           cell.geoms)
    in
    Milp.Model.sum terms
  end

(* The MILP is formulated in problem-relative coordinates: the minimum
   corner over every pin position (fixed and candidate) is subtracted from
   all geometry. The objective and every predicate are translation-
   invariant, and the smaller coefficient magnitudes keep the dense Big-M
   simplex numerically comfortable next to the big-G indicator rows. *)
let problem_origin (t : Wproblem.t) =
  let x0 = ref max_int and y0 = ref max_int in
  let see (g : Align.pin_geom) =
    if g.x_lo < !x0 then x0 := g.x_lo;
    if g.y < !y0 then y0 := g.y
  in
  Array.iter
    (fun (wnet : Wproblem.wnet) ->
      Array.iter
        (fun (wp : Wproblem.wpin) ->
          if wp.owner < 0 then see wp.fixed_geom
          else
            Array.iter
              (fun geoms -> see geoms.(wp.pr.Netlist.Design.pin))
              t.cells.(wp.owner).geoms)
        wnet.wpins)
    t.nets;
  if !x0 = max_int then (0, 0) else (!x0, !y0)

let build (t : Wproblem.t) =
  let m = Milp.Model.create () in
  let params = t.params in
  let tech = t.placement.Place.Placement.tech in
  let row_h = float_of_int tech.Pdk.Tech.row_height in
  let x0, y0 = problem_origin t in
  let ax g = g.Align.ax - x0 in
  let ay g = g.Align.y - y0 in
  let x_lo g = g.Align.x_lo - x0 in
  let x_hi g = g.Align.x_hi - x0 in
  (* lambda variables, constraint (5) *)
  let lambda =
    Array.mapi
      (fun c (cell : Wproblem.cell) ->
        Array.init (Array.length cell.cands) (fun k ->
            Milp.Model.binary m (Printf.sprintf "l_%d_%d" c k)))
      t.cells
  in
  Array.iter
    (fun lams ->
      Milp.Model.add_eq m
        (Milp.Model.sum (Array.to_list (Array.map Milp.Model.v lams)))
        (Milp.Model.const 1.0))
    lambda;
  (* constraint (9): site disjointness over the window grid *)
  let coverers = Hashtbl.create 256 in
  Array.iteri
    (fun c (cell : Wproblem.cell) ->
      Array.iteri
        (fun k (cand : Wproblem.candidate) ->
          for s = cand.site to cand.site + cell.width - 1 do
            let key = ((cand.row - t.row_lo) * t.bw) + (s - t.site_lo) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt coverers key) in
            Hashtbl.replace coverers key ((c, k) :: prev)
          done)
        cell.cands)
    t.cells;
  (* sorted keys, not hash order, so the constraint system is canonical *)
  Hashtbl.fold (fun key _ acc -> key :: acc) coverers []
  |> List.sort Int.compare
  |> List.iter (fun key ->
         match Hashtbl.find coverers key with
         | [] | [ _ ] -> ()
         | cover ->
           Milp.Model.add_le m
             (Milp.Model.sum
                (List.map (fun (c, k) -> Milp.Model.v lambda.(c).(k)) cover))
             (Milp.Model.const 1.0));
  (* per-net HPWL, constraints (2)-(3) *)
  let hpwl_terms = ref [] in
  Array.iteri
    (fun nidx (wnet : Wproblem.wnet) ->
      let xmin = Milp.Model.continuous m (Printf.sprintf "xmin_%d" nidx) in
      let xmax = Milp.Model.continuous m (Printf.sprintf "xmax_%d" nidx) in
      let ymin = Milp.Model.continuous m (Printf.sprintf "ymin_%d" nidx) in
      let ymax = Milp.Model.continuous m (Printf.sprintf "ymax_%d" nidx) in
      Array.iter
        (fun wp ->
          let px = pin_expr t lambda wp ax in
          let py = pin_expr t lambda wp ay in
          Milp.Model.add_ge m (Milp.Model.v xmax) px;
          Milp.Model.add_le m (Milp.Model.v xmin) px;
          Milp.Model.add_ge m (Milp.Model.v ymax) py;
          Milp.Model.add_le m (Milp.Model.v ymin) py)
        wnet.wpins;
      let w_n =
        Milp.Model.sum
          [
            Milp.Model.v xmax;
            Milp.Model.scale (-1.0) (Milp.Model.v xmin);
            Milp.Model.v ymax;
            Milp.Model.scale (-1.0) (Milp.Model.v ymin);
          ]
      in
      hpwl_terms :=
        Milp.Model.scale (params.Params.beta *. wnet.weight) w_n :: !hpwl_terms)
    t.nets;
  (* pair variables *)
  let gain_terms = ref [] in
  Array.iteri
    (fun pidx (a, b) ->
      let d = Milp.Model.binary m (Printf.sprintf "d_%d" pidx) in
      let one_minus_d =
        Milp.Model.sub (Milp.Model.const 1.0) (Milp.Model.v d)
      in
      let slack = Milp.Model.scale big_g one_minus_d in
      let py_a = pin_expr t lambda a ay in
      let py_b = pin_expr t lambda b ay in
      let dy = Milp.Model.sub py_a py_b in
      if not t.is_open then begin
        (* ClosedM1, constraint (4) *)
        let px_a = pin_expr t lambda a ax in
        let px_b = pin_expr t lambda b ax in
        let dx = Milp.Model.sub px_a px_b in
        Milp.Model.add_le m dx slack;
        Milp.Model.add_ge m dx (Milp.Model.scale (-1.0) slack);
        let reach =
          Milp.Model.const (float_of_int params.Params.closed_gamma *. row_h)
        in
        Milp.Model.add_le m dy (Milp.Model.add slack reach);
        Milp.Model.add_ge m dy
          (Milp.Model.scale (-1.0) (Milp.Model.add slack reach));
        gain_terms := Milp.Model.term (-.params.Params.alpha) d :: !gain_terms
      end
      else begin
        (* OpenM1, constraints (11)-(14) *)
        let av = Milp.Model.continuous m (Printf.sprintf "a_%d" pidx) in
        let bv = Milp.Model.continuous m (Printf.sprintf "b_%d" pidx) in
        let o = Milp.Model.continuous m (Printf.sprintf "o_%d" pidx) in
        let vpq = Milp.Model.binary m (Printf.sprintf "v_%d" pidx) in
        let lo_a = pin_expr t lambda a x_lo in
        let lo_b = pin_expr t lambda b x_lo in
        let hi_a = pin_expr t lambda a x_hi in
        let hi_b = pin_expr t lambda b x_hi in
        Milp.Model.add_ge m (Milp.Model.v av) lo_a;
        Milp.Model.add_ge m (Milp.Model.v av) lo_b;
        Milp.Model.add_le m (Milp.Model.v bv) hi_a;
        Milp.Model.add_le m (Milp.Model.v bv) hi_b;
        (* (12): |dy| > gamma*H forces v = 1 *)
        let g_v = Milp.Model.scale big_g (Milp.Model.v vpq) in
        let reach =
          Milp.Model.const (float_of_int params.Params.gamma *. row_h)
        in
        Milp.Model.add_le m dy (Milp.Model.add g_v reach);
        Milp.Model.add_ge m dy
          (Milp.Model.scale (-1.0) (Milp.Model.add g_v reach));
        (* (13) *)
        Milp.Model.add_le m (Milp.Model.v o)
          (Milp.Model.add
             (Milp.Model.sub (Milp.Model.sub (Milp.Model.v bv) (Milp.Model.v av))
                (Milp.Model.const (float_of_int params.Params.delta)))
             slack);
        Milp.Model.add_le m (Milp.Model.v o)
          (Milp.Model.scale big_g (Milp.Model.v d));
        Milp.Model.add_ge m (Milp.Model.v o) (Milp.Model.scale (-1.0) slack);
        (* (14) *)
        Milp.Model.add_le m
          (Milp.Model.add (Milp.Model.v d) (Milp.Model.v vpq))
          (Milp.Model.const 1.0);
        (* overlap must reach delta for d = 1: o >= 0 and o <= b-a-delta *)
        gain_terms :=
          Milp.Model.term (-.params.Params.alpha) d
          :: Milp.Model.term (-.params.Params.epsilon) o
          :: !gain_terms
      end)
    t.pairs;
  Milp.Model.set_objective m
    (Milp.Model.add (Milp.Model.sum !hpwl_terms) (Milp.Model.sum !gain_terms));
  { model = m; lambda }

let verify = ref false

exception Verify_failed of string list

let solve ?node_limit (t : Wproblem.t) =
  let { model; lambda } = build t in
  let sol = Milp.Bnb.solve ?node_limit model in
  (match sol.Milp.Bnb.status with
  | Milp.Bnb.Infeasible -> ()
  | Milp.Bnb.Optimal | Milp.Bnb.Node_limit ->
    if !verify then begin
      match Milp.Model.check model sol.Milp.Bnb.values with
      | [] -> ()
      | problems -> raise (Verify_failed problems)
    end;
    Array.iteri
      (fun c lams ->
        Array.iteri
          (fun k lam ->
            if sol.Milp.Bnb.values.(Milp.Model.var_index lam) > 0.5 then
              Wproblem.apply t ~cell:c ~cand:k)
          lams)
      lambda);
  sol
