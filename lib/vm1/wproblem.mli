(** A window subproblem of the detailed placement optimisation.

    Movable cells are those whose footprint lies fully inside the window;
    every movable cell carries its SCP candidate list — the (site, row,
    orientation) placements reachable within the perturbation range that
    stay inside the window and clear of fixed cells. Nets touching a
    movable cell contribute their full HPWL (fixed pins included, so the
    window's delta-HPWL is exact when concurrently-optimised windows have
    disjoint projections — the Fig. 4 argument). Pin pairs are
    pre-filtered to those that could satisfy the dM1 predicate under some
    candidate combination. *)

type candidate = {
  site : int;
  row : int;
  orient : Geom.Orient.t;
}

type cell = {
  inst : int;
  width : int;  (** sites *)
  cands : candidate array;  (** index 0 is the input position *)
  geoms : Align.pin_geom array array;  (** candidate -> master pin -> geometry *)
  cand_cost : float array;
  (** static per-candidate objective penalty; used by the
      congestion-aware extension to tax candidates in hot routing tiles *)
  mutable cur : int;
}

type wpin = {
  pr : Netlist.Design.pin_ref;
  owner : int;  (** movable cell index, or -1 when fixed *)
  fixed_geom : Align.pin_geom;  (** valid when [owner] = -1 *)
}

type wnet = {
  net_id : int;
  weight : float;  (** the per-net beta_n multiplier from [Params] *)
  wpins : wpin array;
}

type t = {
  placement : Place.Placement.t;
  params : Params.t;
  is_open : bool;
  site_lo : int;
  row_lo : int;
  bw : int;  (** window width, sites *)
  bh : int;  (** window height, rows *)
  cells : cell array;
  nets : wnet array;
  pairs : (wpin * wpin) array;
  cell_nets : int list array;   (** local net indices touching each cell *)
  cell_pairs : int list array;  (** pair indices touching each cell *)
  occ : Bytes.t;  (** bw x bh per-site occupant count (fixed + movable) *)
  fixed_occ : Bytes.t;  (** fixed blockage only *)
  cand_index : (int, int) Hashtbl.t array;  (** encoded candidate -> index *)
}

(** [row_index placement] buckets instance ids by their current row.
    Sharing one index across the windows of a batch (positions are
    stable until the batch commits) turns each window's fixed-occupancy
    scan from a full-design walk into a walk of its own rows. *)
val row_index : Place.Placement.t -> int list array

(** [extract ?candidate_cost ?rows placement params ~site_lo ~row_lo ~bw
    ~bh ~movable ~lx ~ly ~allow_flip ~allow_move] builds the subproblem.
    [movable] lists the instances fully inside the window; instances
    overlapping the window but not listed are treated as fixed blockage.
    [candidate_cost], when given, assigns each candidate a static
    objective penalty (e.g. congestion of its tile). [rows], when given,
    must be {!row_index} of the placement's current positions; the
    resulting problem is identical with or without it. *)
val extract :
  ?candidate_cost:(site:int -> row:int -> float) ->
  ?rows:int list array ->
  Place.Placement.t -> Params.t ->
  site_lo:int -> row_lo:int -> bw:int -> bh:int ->
  movable:int list -> lx:int -> ly:int ->
  allow_flip:bool -> allow_move:bool -> t

(** [pin_geom t wp] is the pin's geometry in the problem's current state. *)
val pin_geom : t -> wpin -> Align.pin_geom

(** [objective t] is the window-local objective:
    beta * sum HPWL(nets) - sum pair_gain(pairs). *)
val objective : t -> float

(** Window-local QoR counts at the problem's current assignment: summed
    HPWL over the window's nets (fixed pins included, so deltas are exact
    for diagonally-independent windows), satisfied dM1 pairs and the
    OpenM1 overlap sum — the per-window attribution data behind
    [vm1trace attribute]. *)
type qor = {
  hpwl_dbu : int;
  alignments : int;
  overlap_sum : int;
}

val qor : t -> qor

(** [candidate_free t ~cell ~cand] checks the candidate footprint against
    the occupancy map, ignoring the cell's own current footprint. *)
val candidate_free : t -> cell:int -> cand:int -> bool

(** [local_cost t ~cell ~cand] is the part of the objective [cell]
    influences if it sat at [cand] (its candidate penalty, its nets'
    weighted HPWL, minus its pairs' gain), everything else at its
    current position. [move_delta] is the difference of two of these;
    solvers scanning a cell's whole candidate list hoist the [cur] term
    out of the loop. *)
val local_cost : t -> cell:int -> cand:int -> float

(** [move_delta t ~cell ~cand] is the objective change if [cell] moved to
    [cand] with everything else at its current position. *)
val move_delta : t -> cell:int -> cand:int -> float

(** [apply t ~cell ~cand] moves the cell (updates occupancy and [cur]). *)
val apply : t -> cell:int -> cand:int -> unit

(** Multi-cell plans (ripple moves): a plan is a list of (cell, candidate)
    moves applied together. [shove_plan t ~cell ~cand] tries to make the
    (possibly occupied) candidate feasible by pushing same-row neighbours
    sideways within their own candidate sets — the coordinated moves the
    MILP finds natively. Returns the full plan (including the triggering
    move) or [None]. *)
val shove_plan : t -> cell:int -> cand:int -> (int * int) list option

(** [plan_delta t plan] is the objective change of applying the plan
    (evaluated by applying and reverting). *)
val plan_delta : t -> (int * int) list -> float

val apply_plan : t -> (int * int) list -> unit

(** [cell_pair_gain_at t ~cell ~cand] is the summed pair gain of the
    cell's incident pairs if it sat at [cand] — used to pick which
    occupied candidates deserve a shove attempt. *)
val cell_pair_gain_at : t -> cell:int -> cand:int -> float

(** [commit t] writes the current candidates back into the placement. *)
val commit : t -> unit

(** Raw occupancy primitives for exhaustive search: [lift]/[drop] remove
    or add a cell's current footprint; [footprint_free_at] checks a
    candidate against the occupancy as-is (no self-lifting); [set_cur]
    changes the chosen candidate without touching occupancy. Callers must
    keep occupancy consistent themselves. *)
val lift : t -> cell:int -> unit

val drop : t -> cell:int -> unit
val footprint_free_at : t -> cell:int -> cand:int -> bool
val set_cur : t -> cell:int -> cand:int -> unit

(** [assignment t] is the current candidate index of every cell — the
    window's solution vector. Candidate indices are translation-
    invariant (candidate generation order depends only on window-local
    geometry), which is what lets the memo-cache replay an assignment
    into any canonically-equal problem. *)
val assignment : t -> int array

(** [set_assignment t a] moves every cell to candidate [a.(i)] through
    {!apply}, keeping occupancy consistent.
    @raise Invalid_argument on an arity mismatch. *)
val set_assignment : t -> int array -> unit

(** [clone t] is an independently-solvable copy: private cell states and
    occupancy, shared immutable structure (candidates, geometries, nets,
    pairs, fixed blockage). Solver portfolios race clones of one
    extraction; clones must never be {!commit}ted (they share the
    placement with the original). *)
val clone : t -> t
