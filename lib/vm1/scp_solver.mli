(** Window solvers over the SCP candidate structure.

    [`Exact] is an exhaustive depth-first search over candidate
    assignments with occupancy pruning and incumbent pruning — optimal,
    and only usable when the product of candidate counts is small (it
    refuses otherwise). [`Greedy] is iterated coordinate descent: each
    pass scans cells and moves each to its best feasible candidate with
    the others fixed, until a pass finds no improving move. [`Auto] picks
    [`Exact] for tiny windows and [`Greedy] otherwise. [`Anneal] runs
    simulated annealing (Metropolis acceptance, geometric cooling, best
    assignment kept) on top of the greedy solution and polishes with a
    final greedy pass — the paper's future-work direction (iii);
    deterministic, never worse than [`Greedy] on the same problem.

    [`Portfolio] races the heterogeneous solvers against each other:
    [`Exact] (only when admissible by the [`Auto] bound), [`Greedy] and
    [`Anneal] each run on their own {!Wproblem.clone} as deadline-raced
    tasks on the shared [Exec] pool ([Exec.race]), and the winner —
    best [objective_after], ties broken by the fixed solver rank
    exact > greedy > anneal — is applied back to the input problem.
    Deadlines bound only {e where} a racer executes (expired tasks run
    inline in the awaiter), so the winner is a pure function of the
    problem and results are byte-identical across [--jobs]; never worse
    than [`Greedy] or [`Anneal] alone on the same window.

    Tests validate [`Exact] against the generic MILP formulation and
    measure the [`Greedy]-vs-[`Exact] gap on small windows. *)

type mode = [ `Exact | `Greedy | `Anneal | `Auto | `Portfolio ]

(** [mode_to_string] / [mode_of_string]: the CLI and wire names
    (["exact"], ["greedy"], ["anneal"], ["auto"], ["portfolio"]). *)
val mode_to_string : mode -> string

val mode_of_string : string -> mode option

type stats = {
  objective_before : float;  (** window objective at the input assignment *)
  objective_after : float;   (** window objective at the final assignment;
                                 never greater than [objective_before] *)
  moves : int;               (** cells whose final candidate differs from
                                 their input candidate *)
  passes : int;              (** coordinate-descent passes ([`Greedy]); 1
                                 for [`Exact] *)
}

(** [solve ?mode ?max_passes t] optimises the window problem in place (the
    problem's candidate choices change; call [Wproblem.commit] to write
    back into the placement).
    @raise Invalid_argument if [`Exact] is requested on a too-large
    window. *)
val solve : ?mode:mode -> ?max_passes:int -> Wproblem.t -> stats

(** [exact_search_space t] is the product of candidate counts, saturating
    at [max_int / 2]; [`Exact] accepts problems up to [exact_limit]. *)
val exact_search_space : Wproblem.t -> int

val exact_limit : int
