type wcache_policy =
  | No_wcache
  | Fresh_wcache
  | Shared_wcache of Wcache.t

type config = {
  sequence : Params.step list;
  mode : Scp_solver.mode;
  max_inner_iters : int;
  parallel : bool;
  candidate_cost : (site:int -> row:int -> float) option;
  wcache : wcache_policy;
}

let default_config =
  {
    sequence = Params.default_sequence;
    mode = `Greedy;
    max_inner_iters = 6;
    parallel = false;
    candidate_cost = None;
    wcache = Fresh_wcache;
  }

type iteration = {
  step_index : int;
  objective : float;
  delta : float;
  moves : int;
}

type report = {
  initial_objective : float;
  final_objective : float;
  iterations : iteration list;
  runtime_s : float;
}

let run ?(config = default_config) (params : Params.t)
    (p : Place.Placement.t) =
  Obs.with_span "vm1opt.run" (fun () ->
  let t_start = Obs.now_ns () in
  (* resolved once so every DistOpt pass of the whole run shares one
     cache: the grid shifts by half a window per iteration, so converged
     windows recur with identical content and replay instead of re-solve *)
  let wcache =
    match config.wcache with
    | No_wcache -> None
    | Fresh_wcache -> Some (Wcache.create ())
    | Shared_wcache c -> Some c
  in
  let tech = p.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let initial_objective = Objective.value params p in
  let iterations = ref [] in
  let tx = ref 0 and ty = ref 0 in
  List.iteri
    (fun step_index (u : Params.step) ->
      Obs.with_span "vm1opt.step"
        ~attrs:
          [ ("step_index", `Int step_index); ("bw_um", `Float u.bw_um);
            ("lx", `Int u.lx); ("ly", `Int u.ly) ]
        (fun () ->
      let bw_dbu = int_of_float (u.bw_um *. 1000.0) in
      let bw = max (2 * (u.lx + 4)) (bw_dbu / sw) in
      let bh = max (2 * (u.ly + 1)) (bw_dbu / rh) in
      let obj = ref (Objective.value params p) in
      let delta = ref infinity in
      let inner = ref 0 in
      while !delta >= params.Params.theta && !inner < config.max_inner_iters do
        incr inner;
        Obs.Counter.incr (Obs.counter "vm1opt.iterations");
        let pre_obj = !obj in
        (* perturbation pass: moves allowed, no flipping *)
        let s1 =
          Dist_opt.run p params
            {
              Dist_opt.tx = !tx;
              ty = !ty;
              bw;
              bh;
              lx = u.lx;
              ly = u.ly;
              allow_flip = false;
              allow_move = true;
              mode = config.mode;
              parallel = config.parallel;
              candidate_cost = config.candidate_cost;
              wcache;
            }
        in
        (* flipping pass: orientation only *)
        let s2 =
          Dist_opt.run p params
            {
              Dist_opt.tx = !tx;
              ty = !ty;
              bw;
              bh;
              lx = 0;
              ly = 0;
              allow_flip = true;
              allow_move = false;
              mode = config.mode;
              parallel = config.parallel;
              candidate_cost = config.candidate_cost;
              wcache;
            }
        in
        (* shift the window grid to free boundary cells next iteration *)
        tx := (!tx + (bw / 2)) mod bw;
        ty := (!ty + (bh / 2)) mod bh;
        obj := Objective.value params p;
        delta :=
          if abs_float pre_obj > 1e-9 then (pre_obj -. !obj) /. abs_float pre_obj
          else 0.0;
        iterations :=
          {
            step_index;
            objective = !obj;
            delta = !delta;
            moves = s1.Dist_opt.total_moves + s2.Dist_opt.total_moves;
          }
          :: !iterations
      done;
      Obs.add_attr "objective" (`Float !obj);
      Obs.add_attr "inner_iters" (`Int !inner)))
    config.sequence;
  let final_objective = Objective.value params p in
  Obs.Gauge.set (Obs.gauge "vm1opt.initial_objective") initial_objective;
  Obs.Gauge.set (Obs.gauge "vm1opt.final_objective") final_objective;
  {
    initial_objective;
    final_objective;
    iterations = List.rev !iterations;
    runtime_s =
      Int64.to_float (Int64.sub (Obs.now_ns ()) t_start) /. 1e9;
  })
