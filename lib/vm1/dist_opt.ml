type config = {
  tx : int;
  ty : int;
  bw : int;
  bh : int;
  lx : int;
  ly : int;
  allow_flip : bool;
  allow_move : bool;
  mode : Scp_solver.mode;
  parallel : bool;
  candidate_cost : (site:int -> row:int -> float) option;
  wcache : Wcache.t option;
}

type stats = {
  windows : int;
  batches : int;
  total_moves : int;
}

(* Windows of one diagonal batch have pairwise-disjoint projections, so
   their subproblems are independent: extraction reads the placement,
   solving touches only problem-internal state, committing writes disjoint
   cells. Extract and commit run sequentially; solving fans out over
   domains. The result is identical to the sequential order. *)
(* Metric handles are created once: window solves run on worker domains,
   and a per-call registry lookup would reintroduce lock contention
   there. Counter bumps and histogram observations are domain-safe. *)
let c_windows_solved = Obs.counter "scp.windows_solved"
let c_moves = Obs.counter "scp.moves"
let h_window_moves = Obs.histogram "distopt.window_moves"

(* Allocation-pressure gauge: minor words burned per window across a
   whole [run]. The hot-alloc lint (vm1lint) bounds what the annotated
   paths may allocate structurally; this gauge is the runtime check
   that the aggregate stays flat as designs scale. Coordinator-domain
   words only — worker-domain minor heaps are invisible to
   [Gc.minor_words] here, which is fine: extract/commit (the paths the
   lint ratchets) run on the coordinator. *)
let g_minor_words = Obs.gauge "distopt.minor_words_per_window"

(* Per-window attribution span: identifies the window (grid indices,
   site/row origin, DBU bounding box) and carries the before/after QoR
   counts [vm1trace attribute] joins on. The QoR recounts only run while
   instrumentation is on; results are unchanged either way. *)
let window_attrs (w : Window.t) problem =
  if not (Obs.enabled ()) then []
  else begin
    let tech = problem.Wproblem.placement.Place.Placement.tech in
    let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
    [
      ("ix", `Int w.Window.ix);
      ("iy", `Int w.Window.iy);
      ("site_lo", `Int w.Window.site_lo);
      ("row_lo", `Int w.Window.row_lo);
      ("x0_dbu", `Int (w.Window.site_lo * sw));
      ("y0_dbu", `Int (w.Window.row_lo * rh));
      ("x1_dbu", `Int ((w.Window.site_lo + w.Window.bw) * sw));
      ("y1_dbu", `Int ((w.Window.row_lo + w.Window.bh) * rh));
    ]
  end

let with_window_span (w : Window.t) problem f =
  Obs.with_span "distopt.window" ~attrs:(window_attrs w problem) (fun () ->
      let q0 =
        if Obs.enabled () then Some (Wproblem.qor problem) else None
      in
      let s : Scp_solver.stats = f () in
      (match q0 with
      | Some q0 ->
        let q1 = Wproblem.qor problem in
        Obs.add_attr "moves" (`Int s.Scp_solver.moves);
        Obs.add_attr "obj0" (`Float s.Scp_solver.objective_before);
        Obs.add_attr "obj1" (`Float s.Scp_solver.objective_after);
        Obs.add_attr "hpwl0_dbu" (`Int q0.Wproblem.hpwl_dbu);
        Obs.add_attr "hpwl1_dbu" (`Int q1.Wproblem.hpwl_dbu);
        Obs.add_attr "align0" (`Int q0.Wproblem.alignments);
        Obs.add_attr "align1" (`Int q1.Wproblem.alignments);
        Obs.add_attr "ov0" (`Int q0.Wproblem.overlap_sum);
        Obs.add_attr "ov1" (`Int q1.Wproblem.overlap_sum)
      | None -> ());
      s)

let solve_window (w : Window.t) problem ~mode =
  with_window_span w problem (fun () -> Scp_solver.solve ~mode problem)

(* A cache hit replays the memoised assignment instead of solving.
   Candidate indices are translation-invariant, so the replay lands each
   cell exactly where a fresh solve of this (canonically equal) problem
   would; the cached stats are the fresh solve's stats verbatim. The
   window span is emitted either way so traces keep full coverage. *)
let replay_window (w : Window.t) problem (entry : Wcache.entry) =
  with_window_span w problem (fun () ->
      Wproblem.set_assignment problem entry.Wcache.assignment;
      entry.Wcache.stats)

let solve_batch ~parallel ~mode ~wcache (batch : Window.t array) problems =
  let n = Array.length problems in
  let stats = Array.make n None in
  let record i (s : Scp_solver.stats) =
    Obs.Counter.incr c_windows_solved;
    Obs.Counter.add c_moves s.Scp_solver.moves;
    Obs.Histogram.observe h_window_moves (float_of_int s.Scp_solver.moves);
    stats.(i) <- Some s
  in
  let solve i = record i (solve_window batch.(i) problems.(i) ~mode) in
  (* Window solves fan out over the persistent Exec pool: the worker
     domains are spawned once per process, not once per batch, so the
     only Domain.spawn cost is warm-up (the exec.domain_spawns counter
     stays flat across batches). Per-index writes keep the result
     identical to the sequential order for every pool size. *)
  let solve_all ~parallel n solve =
    if (not parallel) || n <= 1 then
      for i = 0 to n - 1 do
        solve i
      done
    else Exec.parallel_for n solve
  in
  (match wcache with
  | None -> solve_all ~parallel n solve
  | Some cache ->
    (* The cache is domain-confined: keys, probes, replays and inserts
       all run on the coordinating domain; only the misses fan out. *)
    let keys = Array.map (Wcache.key ~mode) problems in
    let cached = Array.map (Wcache.find cache) keys in
    let miss_rev = ref [] in
    for i = 0 to n - 1 do
      match cached.(i) with
      | Some entry -> record i (replay_window batch.(i) problems.(i) entry)
      | None -> miss_rev := i :: !miss_rev
    done;
    let misses = Array.of_list (List.rev !miss_rev) in
    solve_all ~parallel (Array.length misses) (fun j -> solve misses.(j));
    Array.iter
      (fun i ->
        match stats.(i) with
        | Some s ->
          Wcache.add cache keys.(i)
            {
              Wcache.assignment = Wproblem.assignment problems.(i);
              stats = s;
            }
        | None -> ())
      misses);
  Array.fold_left
    (fun acc s ->
      match s with Some s -> acc + s.Scp_solver.moves | None -> acc)
    0 stats

let run (p : Place.Placement.t) (params : Params.t) (c : config) =
  Obs.with_span "distopt.run" (fun () ->
      let windows = Window.partition p ~tx:c.tx ~ty:c.ty ~bw:c.bw ~bh:c.bh in
      let batches = Window.diagonal_batches windows in
      Obs.add_attr "windows" (`Int (Array.length windows));
      Obs.add_attr "batches" (`Int (List.length batches));
      let mw0 = if Obs.enabled () then Gc.minor_words () else 0. in
      let total_moves = ref 0 in
      List.iter
        (fun batch ->
          Obs.with_span "distopt.batch"
            ~attrs:[ ("windows", `Int (Array.length batch)) ]
            (fun () ->
              let problems =
                Obs.with_span "distopt.extract" (fun () ->
                    (* one O(instances) bucketing shared by the whole
                       batch; rebuilt per batch because commits move
                       cells between batches *)
                    let rows = Wproblem.row_index p in
                    Array.map
                      (fun (w : Window.t) ->
                        Wproblem.extract ?candidate_cost:c.candidate_cost
                          ~rows p params ~site_lo:w.site_lo ~row_lo:w.row_lo
                          ~bw:w.bw ~bh:w.bh ~movable:w.movable ~lx:c.lx
                          ~ly:c.ly ~allow_flip:c.allow_flip
                          ~allow_move:c.allow_move)
                      batch)
              in
              let moves =
                Obs.with_span "distopt.solve" (fun () ->
                    let m =
                      solve_batch ~parallel:c.parallel ~mode:c.mode
                        ~wcache:c.wcache batch problems
                    in
                    Obs.add_attr "moves" (`Int m);
                    m)
              in
              total_moves := !total_moves + moves;
              Obs.with_span "distopt.commit" (fun () ->
                  Array.iter Wproblem.commit problems)))
        batches;
      if Obs.enabled () && Array.length windows > 0 then
        Obs.Gauge.set g_minor_words
          ((Gc.minor_words () -. mw0) /. float_of_int (Array.length windows));
      {
        windows = Array.length windows;
        batches = List.length batches;
        total_moves = !total_moves;
      })
