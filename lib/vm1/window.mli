(** Window partition of the layout and diagonally-independent batches
    (Section 4.1, Fig. 3).

    Windows form a grid of bw x bh (sites x rows) tiles, offset by (tx,
    ty) to expose cells left unoptimised at the previous iteration's
    window boundaries. A batch contains windows with pairwise-disjoint
    projections onto both axes — the condition under which per-window
    delta-HPWL values add up exactly (Fig. 4) and the windows could be
    solved in parallel. *)

type t = {
  ix : int;            (** window-grid column index *)
  iy : int;            (** window-grid row index *)
  site_lo : int;       (** leftmost site covered by the window *)
  row_lo : int;        (** bottom placement row covered by the window *)
  bw : int;            (** window width, sites *)
  bh : int;            (** window height, rows *)
  movable : int list;  (** instances fully inside this window *)
}

(** [partition p ~tx ~ty ~bw ~bh] tiles the die and assigns every
    instance: fully-contained instances become [movable] of their window;
    boundary-crossing instances are movable nowhere this iteration.
    Windows with no movable cells are dropped. *)
val partition :
  Place.Placement.t -> tx:int -> ty:int -> bw:int -> bh:int -> t array

(** [diagonal_batches ws] groups windows into batches with disjoint x and
    y projections; the number of batches is max of the window-grid
    dimensions (~ sqrt of the window count for a square grid). *)
val diagonal_batches : t array -> t array list
