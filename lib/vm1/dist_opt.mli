(** Algorithm 2 (DistOpt): partition the layout into windows, then
    process diagonally-independent batches, optimising every window of a
    batch independently — in parallel over OCaml domains when [parallel]
    is set, which is the paper's distributable optimisation. The
    placement is updated after each batch, so later batches see earlier
    solutions as boundary conditions. *)

type config = {
  tx : int;            (** window-grid x offset, sites *)
  ty : int;            (** window-grid y offset, rows *)
  bw : int;            (** window width, sites *)
  bh : int;            (** window height, rows *)
  lx : int;            (** max x displacement, sites *)
  ly : int;            (** max y displacement, rows *)
  allow_flip : bool;   (** the f flag of Algorithm 1 *)
  allow_move : bool;   (** when false, cells may only flip in place
                           (Algorithm 1's flip-only phase) *)
  mode : Scp_solver.mode;
  parallel : bool;     (** solve each diagonal batch's windows on the
                           shared [Exec] pool ([Exec.jobs] domains,
                           spawned once per process, never per batch);
                           deterministic (identical to the sequential
                           result) because window subproblems are
                           self-contained after extraction *)
  candidate_cost : (site:int -> row:int -> float) option;
  (** static per-candidate penalty (congestion-aware extension) *)
  wcache : Wcache.t option;
  (** memo-cache of solved windows, probed before every window solve
      (see {!Wcache}). Hits replay the cached assignment; misses solve
      and populate. The cache is touched only from the calling domain —
      probes/replays/inserts never run on pool workers — so any
      domain-confined instance is safe, and results are byte-identical
      with the cache on or off (the hit ≡ miss invariant). *)
}

type stats = {
  windows : int;      (** windows with at least one movable cell *)
  batches : int;      (** diagonally-independent batches processed *)
  total_moves : int;  (** accepted cell moves/flips, summed over windows *)
}

(** [run p params config] optimises in place. Emits observability when
    [Obs.enabled]: a [distopt.run] span with nested per-batch
    [distopt.batch] > [distopt.extract]/[distopt.solve]/[distopt.commit]
    spans, one [distopt.window] span per window solve carrying the
    window's identity (grid indices, site/row origin, DBU bounding box)
    and before/after QoR attrs (objective, HPWL, alignments, overlaps —
    the join keys and measures of [vm1trace attribute]),
    [scp.windows_solved] / [scp.moves] counters and the
    [distopt.window_moves] histogram — identical placement results with
    instrumentation on or off. Under [parallel], [distopt.window] spans
    solved on worker domains surface as their own roots. *)
val run : Place.Placement.t -> Params.t -> config -> stats
