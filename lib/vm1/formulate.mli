(** The paper's MILP formulation, built verbatim over a window problem.

    Variables: one binary lambda per (cell, candidate) — the SCP model of
    constraints (5)-(8); per-net continuous xmin/xmax/ymin/ymax bounded by
    every pin coordinate (constraints (2)-(3)); one binary d_pq per
    pre-filtered pin pair with the big-G alignment constraints (4) for
    ClosedM1, or the overlap system a/b/o_pq/v_pq of constraints
    (11)-(14) for OpenM1. Site-disjointness (constraint (9)) is emitted
    for every window site covered by at least two candidate footprints.

    Objective (1) / (10):
      minimize  -alpha sum d_pq [- epsilon sum o_pq] + sum beta_n w_n.

    Intended for validation and for small windows; the production flow
    uses [Scp_solver]. *)

type built = {
  model : Milp.Model.t;
  lambda : Milp.Model.var array array;  (** cell -> candidate *)
}

val build : Wproblem.t -> built

(** When set, every {!solve} re-verifies the branch-and-bound assignment
    against the full constraint system with [Milp.Model.check] before
    installing it, raising {!Verify_failed} on any violation. Enabled by
    [vm1opt --check] and the [Check] test oracles. *)
val verify : bool ref

exception Verify_failed of string list

(** [solve ?node_limit t] builds and solves the MILP, then installs the
    chosen candidates into the window problem (call [Wproblem.commit] to
    write back). Returns the branch-and-bound solution. *)
val solve : ?node_limit:int -> Wproblem.t -> Milp.Bnb.solution
