(** Memo-cache of solved window subproblems, keyed by canonical form.

    Detailed-placement outer iterations re-extract and re-solve many
    windows whose content did not change since the previous pass (the
    grid only shifts by half a window between perturbation passes, and
    most windows converge early). This cache short-circuits those
    solves: a window is reduced to a translation-invariant canonical
    form — cell widths, candidate lattices and pin geometries rebased to
    the window origin, candidate penalties, net weights and memberships,
    pair structure, fixed blockage, architecture parameters, and the
    solver mode — and content-hashed into a key. A hit replays the
    cached per-cell candidate assignment through {!Wproblem.set_assignment};
    candidate indices are themselves translation-invariant, so the
    replay lands each cell exactly where a fresh solve would.

    {b Hit ≡ miss invariant}: for canonically-equal problems, replaying
    a cached assignment and solving from scratch produce bit-identical
    assignments, objectives and committed placements. The key includes
    every input the deterministic solvers read (including float
    summation order, fixed by the serialized array orders), so this
    holds by construction; [test_properties] checks it, and
    [vm1opt --check] re-verifies cached windows against the MILP oracle
    like any other.

    {b Domain confinement}: like [Serve.Cache], a [t] is plain mutable
    state with no internal synchronisation — confine each instance to
    one domain ([Exec.Dls] gives the serve engine a per-worker cache).
    Probing sequentially from the coordinator and solving only the
    misses in parallel (what [Dist_opt] does) is also fine: the cache is
    never touched from pool workers.

    Eviction is LRU with a bounded entry count. Counters
    [distopt.wcache_hits] / [distopt.wcache_misses] and gauge
    [distopt.wcache_entries] report behaviour through [Obs]. *)

type t

type entry = {
  assignment : int array;  (** per-cell candidate index, window-local *)
  stats : Scp_solver.stats;  (** the stats of the original solve *)
}

val default_capacity : int
(** 4096 entries — a few MB for typical window sizes. *)

val create : ?capacity:int -> unit -> t

(** [key ~mode p] is the canonical content hash of the window problem
    under solver [mode]. Two problems get equal keys iff the
    deterministic solvers would trace identical trajectories on them —
    in particular a window and its uniformly-translated copy collide,
    while any difference in content, candidate clipping, per-candidate
    penalty, parameters or solver mode separates them. *)
val key : mode:Scp_solver.mode -> Wproblem.t -> string

(** [find t key] returns the cached entry and refreshes its recency, or
    [None]. Bumps the hit/miss counters. *)
val find : t -> string -> entry option

(** [add t key entry] inserts (or refreshes) the entry, evicting the
    least-recently-used one past capacity. *)
val add : t -> string -> entry -> unit

val length : t -> int

(** [stats t] is [(hits, misses)] over this instance's lifetime. *)
val stats : t -> int * int
