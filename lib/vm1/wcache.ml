(* Canonical-window memo-cache. See the .mli for the soundness argument;
   the implementation notes here are about the two delicate parts.

   Canonical form: the serialization below covers everything the window
   solvers read — candidate lattices, pin geometries, candidate
   penalties, net weights and memberships, pair structure, fixed
   blockage, the architecture parameters — with every coordinate rebased
   to the window origin (sites/rows relative to site_lo/row_lo, DBU
   relative to site_lo * site_width / row_lo * row_height). Pin geometry
   is affine in the cell origin, so a window and its (dx, dy)-translated
   copy serialize to identical bytes; anything that is NOT translation-
   invariant (e.g. a congestion-derived candidate_cost, or die-boundary
   clipping of the candidate lattice) shows up in the serialized content
   and keeps such windows apart. Array orders (cells, candidates, nets,
   pairs) are part of the canonical form on purpose: they fix the
   solvers' float-summation order, so key equality implies bit-identical
   solver trajectories.

   LRU: a doubly-linked recency list over the nodes of a Hashtbl. The
   table is only ever probed by key (find_opt/replace/remove) — eviction
   follows the list, not the table — so lookup results never depend on
   hash order. *)

type entry = {
  assignment : int array;
  stats : Scp_solver.stats;
}

type node = {
  n_key : string;
  n_entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* eviction end *)
  mutable hits : int;
  mutable misses : int;
}

(* Handles created once: serve-engine caches live on pool worker domains
   and a per-call registry lookup would contend on the registry lock. *)
let c_hits = Obs.counter "distopt.wcache_hits"
let c_misses = Obs.counter "distopt.wcache_misses"
let g_entries = Obs.gauge "distopt.wcache_entries"

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let length t = Hashtbl.length t.tbl
let stats t = (t.hits, t.misses)

let[@vm1.hot] unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let[@vm1.hot] push_front t n =
  n.next <- t.head;
  (match t.head with
  | Some h -> h.prev <- Some n
  | None -> t.tail <- Some n);
  t.head <- Some n

let[@vm1.hot] find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    t.hits <- t.hits + 1;
    Obs.Counter.incr c_hits;
    unlink t n;
    push_front t n;
    Some n.n_entry
  | None ->
    t.misses <- t.misses + 1;
    Obs.Counter.incr c_misses;
    None

let add t key entry =
  (match Hashtbl.find_opt t.tbl key with
  | Some old ->
    unlink t old;
    Hashtbl.remove t.tbl key
  | None -> ());
  let n = { n_key = key; n_entry = entry; prev = None; next = None } in
  push_front t n;
  Hashtbl.replace t.tbl key n;
  if Hashtbl.length t.tbl > t.capacity then begin
    match t.tail with
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.tbl lru.n_key
    | None -> ()
  end;
  Obs.Gauge.set g_entries (float_of_int (Hashtbl.length t.tbl))

(* --- the canonical key --- *)

(* Binary, fixed-width fields: keys are computed on the hot path (every
   window of every batch when a cache is attached), so the encoding
   avoids per-token string allocation. Fixed-width ints self-delimit;
   strings carry a length prefix. *)
let add_int b v = Buffer.add_int64_le b (Int64.of_int v)

(* exact bits, not a decimal rendering: two floats must collide only
   when they are the same double *)
let add_float b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let add_str b s =
  add_int b (String.length s);
  Buffer.add_string b s

let key ~mode (p : Wproblem.t) =
  let b = Buffer.create 4096 in
  let tech = p.Wproblem.placement.Place.Placement.tech in
  let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
  let x0 = p.Wproblem.site_lo * sw and y0 = p.Wproblem.row_lo * rh in
  let add_geom (g : Align.pin_geom) =
    add_int b (g.Align.ax - x0);
    add_int b (g.Align.x_lo - x0);
    add_int b (g.Align.x_hi - x0);
    add_int b (g.Align.y - y0)
  in
  (* The per-candidate geometry tables are a pure function of the master's
     local pin shapes, the tech pitches and the (serialized) candidate
     lattice — placed geometry is affine in the cell origin — so the
     master shapes stand in for them, one copy per cell instead of one
     geometry per candidate x pin. *)
  let add_master (m : Pdk.Stdcell.t) =
    add_str b m.Pdk.Stdcell.name;
    List.iter
      (fun (pin : Pdk.Stdcell.pin) ->
        List.iter
          (fun (layer, (r : Geom.Rect.t)) ->
            add_str b (Pdk.Layer.to_string layer);
            add_int b r.Geom.Rect.lx;
            add_int b r.Geom.Rect.ly;
            add_int b r.Geom.Rect.hx;
            add_int b r.Geom.Rect.hy)
          pin.Pdk.Stdcell.shapes)
      m.Pdk.Stdcell.pins
  in
  let add_wpin (wp : Wproblem.wpin) =
    add_int b wp.Wproblem.owner;
    add_int b wp.Wproblem.pr.Netlist.Design.pin;
    (* movable pins take their geometry from the candidate tables, which
       are serialized with the cells *)
    if wp.Wproblem.owner < 0 then add_geom wp.Wproblem.fixed_geom
  in
  Buffer.add_string b "wkey3";
  add_str b (Scp_solver.mode_to_string mode);
  add_int b (if p.Wproblem.is_open then 1 else 0);
  add_int b p.Wproblem.bw;
  add_int b p.Wproblem.bh;
  add_int b sw;
  add_int b rh;
  let params = p.Wproblem.params in
  add_float b params.Params.alpha;
  add_float b params.Params.beta;
  add_float b params.Params.epsilon;
  add_int b params.Params.gamma;
  add_int b params.Params.closed_gamma;
  add_int b params.Params.delta;
  add_int b (Array.length p.Wproblem.cells);
  let design = p.Wproblem.placement.Place.Placement.design in
  Array.iter
    (fun (c : Wproblem.cell) ->
      add_int b c.Wproblem.width;
      add_int b c.Wproblem.cur;
      add_master (Netlist.Design.instance_master design c.Wproblem.inst);
      add_int b (Array.length c.Wproblem.cands);
      Array.iter
        (fun (cand : Wproblem.candidate) ->
          add_int b (cand.Wproblem.site - p.Wproblem.site_lo);
          add_int b (cand.Wproblem.row - p.Wproblem.row_lo);
          add_str b (Geom.Orient.to_string cand.Wproblem.orient))
        c.Wproblem.cands;
      Array.iter (add_float b) c.Wproblem.cand_cost)
    p.Wproblem.cells;
  add_int b (Array.length p.Wproblem.nets);
  Array.iter
    (fun (wnet : Wproblem.wnet) ->
      add_float b wnet.Wproblem.weight;
      add_int b (Array.length wnet.Wproblem.wpins);
      Array.iter add_wpin wnet.Wproblem.wpins)
    p.Wproblem.nets;
  (* the pair prefilter is a deterministic function of the nets, the
     candidate geometry envelopes and the parameters — all serialized
     above — so the pair array needs no bytes of its own *)
  Buffer.add_bytes b p.Wproblem.fixed_occ;
  Digest.to_hex (Digest.string (Buffer.contents b))
