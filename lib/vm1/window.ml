type t = {
  ix : int;
  iy : int;
  site_lo : int;
  row_lo : int;
  bw : int;
  bh : int;
  movable : int list;
}

let partition (p : Place.Placement.t) ~tx ~ty ~bw ~bh =
  if bw <= 0 || bh <= 0 then invalid_arg "Window.partition: bad window size";
  let windows = Hashtbl.create 64 in
  let n = Place.Placement.num_instances p in
  for i = n - 1 downto 0 do
    let s = Place.Placement.site_of_inst p i in
    let r = Place.Placement.row_of_inst p i in
    let w =
      p.design.Netlist.Design.instances.(i).master.Pdk.Stdcell.width_sites
    in
    (* window index along x; offset tx shifts the grid left *)
    let ix_lo = (s + tx) / bw and ix_hi = (s + w - 1 + tx) / bw in
    let iy = (r + ty) / bh in
    if ix_lo = ix_hi then begin
      let key = (ix_lo, iy) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt windows key) in
      Hashtbl.replace windows key (i :: prev)
    end
  done;
  (* Traverse the tiles in sorted (iy, ix) order, not hash order: the
     window array (and with it batch assembly, extraction order and
     every downstream tie-break) must be byte-reproducible regardless
     of hash-table internals or pool size. *)
  let keys =
    Hashtbl.fold (fun key _ acc -> key :: acc) windows []
    |> List.sort (fun (axi, ayi) (bxi, byi) ->
           match Int.compare ayi byi with 0 -> Int.compare axi bxi | c -> c)
  in
  let result = ref [] in
  List.iter
    (fun ((ix, iy) as key) ->
      let movable = Hashtbl.find windows key in
      (* clip the window tile to the die *)
      let site_lo = max 0 ((ix * bw) - tx) in
      let site_hi = min (p.sites_per_row - 1) ((((ix + 1) * bw) - tx) - 1) in
      let row_lo = max 0 ((iy * bh) - ty) in
      let row_hi = min (p.num_rows - 1) ((((iy + 1) * bh) - ty) - 1) in
      if site_lo <= site_hi && row_lo <= row_hi then
        result :=
          {
            ix;
            iy;
            site_lo;
            row_lo;
            bw = site_hi - site_lo + 1;
            bh = row_hi - row_lo + 1;
            movable;
          }
          :: !result)
    keys;
  Array.of_list (List.rev !result)

let diagonal_batches (ws : t array) =
  if Array.length ws = 0 then []
  else begin
    let max_ix = Array.fold_left (fun acc w -> max acc w.ix) 0 ws in
    let max_iy = Array.fold_left (fun acc w -> max acc w.iy) 0 ws in
    let m = max (max_ix + 1) (max_iy + 1) in
    let batches = Array.make m [] in
    Array.iter
      (fun w ->
        let k = ((w.ix - w.iy) mod m + m) mod m in
        batches.(k) <- w :: batches.(k))
      ws;
    Array.to_list batches
    |> List.filter_map (fun batch ->
           match batch with [] -> None | _ -> Some (Array.of_list batch))
  end
