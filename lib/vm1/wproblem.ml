type candidate = {
  site : int;
  row : int;
  orient : Geom.Orient.t;
}

type cell = {
  inst : int;
  width : int;
  cands : candidate array;
  geoms : Align.pin_geom array array;
  cand_cost : float array;  (* static per-candidate penalty (congestion) *)
  mutable cur : int;
}

type wpin = {
  pr : Netlist.Design.pin_ref;
  owner : int;
  fixed_geom : Align.pin_geom;
}

type wnet = {
  net_id : int;
  weight : float;  (* beta_n / beta: the per-net multiplier *)
  wpins : wpin array;
}

type t = {
  placement : Place.Placement.t;
  params : Params.t;
  is_open : bool;
  site_lo : int;
  row_lo : int;
  bw : int;
  bh : int;
  cells : cell array;
  nets : wnet array;
  pairs : (wpin * wpin) array;
  cell_nets : int list array;
  cell_pairs : int list array;
  occ : Bytes.t;        (* per-site movable-cell count + fixed marks *)
  fixed_occ : Bytes.t;  (* fixed blockage only *)
  cand_index : (int, int) Hashtbl.t array;  (* encoded candidate -> index *)
}

(* --- occupancy helpers; coordinates are window-local. Occupancy is a
   per-site count so that transient overlap during multi-cell plan
   application stays consistent. --- *)

let occ_idx t ~site ~row = ((row - t.row_lo) * t.bw) + (site - t.site_lo)

let bump occ t ~site ~row ~width delta =
  for s = site to site + width - 1 do
    let i = occ_idx t ~site:s ~row in
    Bytes.set occ i (Char.chr (Char.code (Bytes.get occ i) + delta))
  done

let footprint_free occ t ~site ~row ~width =
  let rec go s =
    s >= site + width
    || (Bytes.get occ (occ_idx t ~site:s ~row) = '\000' && go (s + 1))
  in
  go site

let encode_cand t ~site ~row ~orient =
  let o = if Geom.Orient.is_flipped orient then 1 else 0 in
  ((((row - t.row_lo) * (t.bw + 1)) + (site - t.site_lo)) * 2) + o

(* --- extraction --- *)

(* Row-bucketed instance ids, for fixed-occupancy extraction. Built once
   per batch (positions are stable until the batch commits), it turns the
   per-window full-design walk into a walk of the window's own rows. *)
let row_index (p : Place.Placement.t) =
  let idx = Array.make p.num_rows [] in
  let n = Place.Placement.num_instances p in
  for i = n - 1 downto 0 do
    let r = Place.Placement.row_of_inst p i in
    if r >= 0 && r < p.num_rows then idx.(r) <- i :: idx.(r)
  done;
  idx

let[@vm1.hot] extract ?candidate_cost ?rows (p : Place.Placement.t) (params : Params.t)
    ~site_lo ~row_lo ~bw ~bh ~movable ~lx ~ly ~allow_flip ~allow_move =
  let design = p.design in
  let tech = p.tech in
  let movable = Array.of_list movable in
  let n_cells = Array.length movable in
  let cell_of_inst = Hashtbl.create (2 * n_cells) in
  Array.iteri (fun c i -> Hashtbl.replace cell_of_inst i c) movable;
  (* fixed occupancy: every instance footprint intersecting the window,
     except the movable ones *)
  let shell =
    {
      placement = p;
      params;
      is_open = tech.Pdk.Tech.arch = Pdk.Cell_arch.Open_m1;
      site_lo;
      row_lo;
      bw;
      bh;
      cells = [||];
      nets = [||];
      pairs = [||];
      cell_nets = [||];
      cell_pairs = [||];
      occ = Bytes.make (bw * bh) '\000';
      fixed_occ = Bytes.make (bw * bh) '\000';
      cand_index = [||];
    }
  in
  let fixed_occ = Bytes.make (bw * bh) '\000' in
  let site_hi = site_lo + bw - 1 and row_hi = row_lo + bh - 1 in
  let mark_fixed i r =
    if not (Hashtbl.mem cell_of_inst i) then begin
      let inst = design.Netlist.Design.instances.(i) in
      let s = Place.Placement.site_of_inst p i in
      let w = inst.master.Pdk.Stdcell.width_sites in
      let a = max s site_lo and b = min (s + w - 1) site_hi in
      if a <= b then bump fixed_occ shell ~site:a ~row:r ~width:(b - a + 1) 1
    end
  in
  (match rows with
  | Some idx ->
    (* occupancy bumps are additive, so visiting by row bucket instead of
       instance id leaves the resulting map identical *)
    for r = max 0 row_lo to min (Array.length idx - 1) row_hi do
      List.iter (fun i -> mark_fixed i r) idx.(r)
    done
  | None ->
    Array.iteri
      (fun i (_ : Netlist.Design.instance) ->
        let r = Place.Placement.row_of_inst p i in
        if r >= row_lo && r <= row_hi then mark_fixed i r)
      design.instances);
  (* candidate generation *)
  let make_cell c_idx inst_id =
    ignore c_idx;
    let inst = design.Netlist.Design.instances.(inst_id) in
    let w = inst.master.Pdk.Stdcell.width_sites in
    let s0 = Place.Placement.site_of_inst p inst_id in
    let r0 = Place.Placement.row_of_inst p inst_id in
    let o0 = p.orients.(inst_id) in
    let cands = ref [] in
    let try_cand site row orient =
      let duplicate = site = s0 && row = r0 && orient = o0 in
      if
        (not duplicate)
        && site >= site_lo
        && site + w - 1 <= site_hi
        && row >= row_lo && row <= row_hi
        && row >= 0
        && row < p.num_rows
        && site >= 0
        && site + w <= p.sites_per_row
        && footprint_free fixed_occ shell ~site ~row ~width:w
      then cands := { site; row; orient } :: !cands
    in
    let orients = if allow_flip then [ o0; Geom.Orient.flip_y o0 ] else [ o0 ] in
    let move_s = if allow_move then lx else 0 in
    let move_r = if allow_move then ly else 0 in
    List.iter
      (fun o ->
        for ds = -move_s to move_s do
          for dr = -move_r to move_r do
            try_cand (s0 + ds) (r0 + dr) o
          done
        done)
      orients;
    let cands =
      Array.of_list ({ site = s0; row = r0; orient = o0 } :: List.rev !cands)
    in
    let n_pins = List.length inst.master.Pdk.Stdcell.pins in
    (* placed pin geometry is affine in the cell origin, so the master's
       shape lists are walked once per orientation (at site/row 0) and
       every candidate's table is a translation of that base *)
    let locals =
      List.map
        (fun o ->
          ( o,
            Array.init n_pins (fun k ->
                Align.of_candidate p
                  { Netlist.Design.inst = inst_id; pin = k }
                  ~site:0 ~row:0 ~orient:o) ))
        orients
    in
    let sw = tech.Pdk.Tech.site_width and rh = tech.Pdk.Tech.row_height in
    let geoms =
      Array.map
        (fun (cand : candidate) ->
          let base =
            match
              List.find_opt
                (fun (o, _) -> Geom.Orient.equal o cand.orient)
                locals
            with
            | Some (_, a) -> a
            | None ->
              (* unreachable: candidates only use orientations from
                 [orients] *)
              Array.init n_pins (fun k ->
                  Align.of_candidate p
                    { Netlist.Design.inst = inst_id; pin = k }
                    ~site:0 ~row:0 ~orient:cand.orient)
          in
          let dx = cand.site * sw and dy = cand.row * rh in
          Array.map
            (fun (g : Align.pin_geom) ->
              {
                Align.ax = g.Align.ax + dx;
                x_lo = g.Align.x_lo + dx;
                x_hi = g.Align.x_hi + dx;
                y = g.Align.y + dy;
              })
            base)
        cands
    in
    let cand_cost =
      match candidate_cost with
      | None -> Array.make (Array.length cands) 0.0
      | Some f ->
        Array.map (fun (c : candidate) -> f ~site:c.site ~row:c.row) cands
    in
    { inst = inst_id; width = w; cands; geoms; cand_cost; cur = 0 }
  in
  let cells = Array.mapi make_cell movable in
  (* nets touching movable cells *)
  let net_set = Hashtbl.create 64 in
  Array.iter
    (fun cell ->
      List.iter
        (fun n ->
          let net = design.Netlist.Design.nets.(n) in
          if (not net.is_clock) && Array.length net.pins >= 2 then
            Hashtbl.replace net_set n ())
        (Netlist.Design.nets_of_instance design cell.inst))
    cells;
  let make_wpin (pr : Netlist.Design.pin_ref) =
    let owner =
      match Hashtbl.find_opt cell_of_inst pr.inst with
      | Some c -> c
      | None -> -1
    in
    let fixed_geom =
      if owner >= 0 then
        (* placeholder; geometry comes from the candidate table *)
        cells.(owner).geoms.(0).(pr.pin)
      else Align.of_placed p pr
    in
    { pr; owner; fixed_geom }
  in
  (* sorted, not hash-order: the net array fixes the float-summation
     order of the objective, which must be byte-reproducible *)
  let nets =
    Hashtbl.fold (fun n () acc -> n :: acc) net_set []
    |> List.sort Int.compare
    |> List.map (fun n ->
           let net = design.Netlist.Design.nets.(n) in
           {
             net_id = n;
             weight = Params.net_weight params n;
             wpins = Array.map make_wpin net.pins;
           })
    |> Array.of_list
  in
  (* pair prefilter: keep pairs that can satisfy the dM1 predicate under
     some candidate combination *)
  let tech_row = tech.Pdk.Tech.row_height in
  (* per-(cell, pin) candidate-geometry envelopes, computed once — the
     pair prefilter below consults them once per net pair instead of
     rescanning the whole candidate table each time *)
  let pin_range (cell : cell) pin =
    let axmin = ref max_int and axmax = ref min_int in
    let lomin = ref max_int and himax = ref min_int in
    let ymin = ref max_int and ymax = ref min_int in
    Array.iter
      (fun geoms ->
        let g = geoms.(pin) in
        if g.Align.ax < !axmin then axmin := g.Align.ax;
        if g.Align.ax > !axmax then axmax := g.Align.ax;
        if g.x_lo < !lomin then lomin := g.x_lo;
        if g.x_hi > !himax then himax := g.x_hi;
        if g.y < !ymin then ymin := g.y;
        if g.y > !ymax then ymax := g.y)
      cell.geoms;
    (!axmin, !axmax, !lomin, !himax, !ymin, !ymax)
  in
  let cell_pin_ranges =
    Array.map
      (fun (cell : cell) ->
        Array.init (Array.length cell.geoms.(0)) (pin_range cell))
      cells
  in
  let geom_range (wp : wpin) =
    if wp.owner < 0 then
      let g = wp.fixed_geom in
      (g.Align.ax, g.Align.ax, g.x_lo, g.x_hi, g.y, g.y)
    else cell_pin_ranges.(wp.owner).(wp.pr.pin)
  in
  let is_open = shell.is_open in
  let feasible_pair a b =
    let axmin_a, axmax_a, lomin_a, himax_a, ymin_a, ymax_a = geom_range a in
    let axmin_b, axmax_b, lomin_b, himax_b, ymin_b, ymax_b = geom_range b in
    let dy_min = max 0 (max (ymin_a - ymax_b) (ymin_b - ymax_a)) in
    if is_open then
      let max_ov = min himax_a himax_b - max lomin_a lomin_b in
      max_ov >= params.Params.delta
      && dy_min <= params.Params.gamma * tech_row
    else
      max axmin_a axmin_b <= min axmax_a axmax_b
      && dy_min <= params.Params.closed_gamma * tech_row
  in
  let pairs = ref [] in
  Array.iter
    (fun wnet ->
      let k = Array.length wnet.wpins in
      for i = 0 to k - 2 do
        for j = i + 1 to k - 1 do
          let a = wnet.wpins.(i) and b = wnet.wpins.(j) in
          if
            a.pr.inst <> b.pr.inst
            && (a.owner >= 0 || b.owner >= 0)
            && feasible_pair a b
          then pairs := (a, b) :: !pairs
        done
      done)
    nets;
  let pairs = Array.of_list !pairs in
  (* per-cell incidence *)
  let cell_nets = Array.make n_cells [] in
  Array.iteri
    (fun local wnet ->
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun wp ->
          if wp.owner >= 0 && not (Hashtbl.mem seen wp.owner) then begin
            Hashtbl.add seen wp.owner ();
            cell_nets.(wp.owner) <- local :: cell_nets.(wp.owner)
          end)
        wnet.wpins)
    nets;
  let cell_pairs = Array.make n_cells [] in
  Array.iteri
    (fun idx (a, b) ->
      if a.owner >= 0 then cell_pairs.(a.owner) <- idx :: cell_pairs.(a.owner);
      if b.owner >= 0 && b.owner <> a.owner then
        cell_pairs.(b.owner) <- idx :: cell_pairs.(b.owner))
    pairs;
  (* live occupancy = fixed + movable current footprints *)
  let occ = Bytes.copy fixed_occ in
  let cand_index =
    Array.map
      (fun (cell : cell) ->
        let h = Hashtbl.create (2 * Array.length cell.cands) in
        Array.iteri
          (fun k (cand : candidate) ->
            Hashtbl.replace h
              (encode_cand shell ~site:cand.site ~row:cand.row
                 ~orient:cand.orient)
              k)
          cell.cands;
        h)
      cells
  in
  let t =
    { shell with cells; nets; pairs; cell_nets; cell_pairs; occ; fixed_occ;
      cand_index }
  in
  Array.iter
    (fun cell ->
      let c = cell.cands.(cell.cur) in
      bump occ t ~site:c.site ~row:c.row ~width:cell.width 1)
    cells;
  t

(* --- evaluation --- *)

let pin_geom t (wp : wpin) =
  if wp.owner < 0 then wp.fixed_geom
  else begin
    let cell = t.cells.(wp.owner) in
    cell.geoms.(cell.cur).(wp.pr.pin)
  end

(* Geometry of a pin assuming [cell] sits at candidate [cand]; other cells
   at their current candidates. *)
let pin_geom_if t ~cell ~cand (wp : wpin) =
  if wp.owner >= 0 && wp.owner = cell then
    t.cells.(cell).geoms.(cand).(wp.pr.pin)
  else pin_geom t wp

(* Ref-free bounding-box walk: this runs once per (cell, candidate, net)
   in the solver inner loops, so the four int refs of the obvious
   formulation are a measurable allocation cost. *)
let net_hpwl_with t ~cell ~cand (wnet : wnet) =
  let wpins = wnet.wpins in
  let n = Array.length wpins in
  let rec go i xmin xmax ymin ymax =
    if i = n then xmax - xmin + (ymax - ymin)
    else begin
      let g = pin_geom_if t ~cell ~cand wpins.(i) in
      let ax = g.Align.ax and y = g.Align.y in
      go (i + 1)
        (if ax < xmin then ax else xmin)
        (if ax > xmax then ax else xmax)
        (if y < ymin then y else ymin)
        (if y > ymax then y else ymax)
    end
  in
  go 0 max_int min_int max_int min_int

let pair_gain_with t ~cell ~cand (a, b) =
  let tech = t.placement.Place.Placement.tech in
  Align.pair_gain t.params tech
    (pin_geom_if t ~cell ~cand a)
    (pin_geom_if t ~cell ~cand b)

(* Window-local QoR counts in the problem's current state; the same
   quantities Objective.counts reports globally, restricted to the
   window's nets and pre-filtered pairs. Used by Dist_opt to attach
   before/after attribution data to per-window trace spans. *)
type qor = {
  hpwl_dbu : int;
  alignments : int;
  overlap_sum : int;
}

let qor t =
  let hpwl = ref 0 in
  Array.iter
    (fun wnet -> hpwl := !hpwl + net_hpwl_with t ~cell:(-1) ~cand:0 wnet)
    t.nets;
  let tech = t.placement.Place.Placement.tech in
  let alignments = ref 0 and overlap_sum = ref 0 in
  Array.iter
    (fun (a, b) ->
      let ga = pin_geom t a and gb = pin_geom t b in
      if t.is_open then begin
        let d, o = Align.overlap t.params tech ga gb in
        if d then incr alignments;
        overlap_sum := !overlap_sum + o
      end
      else if Align.aligned t.params tech ga gb then incr alignments)
    t.pairs;
  { hpwl_dbu = !hpwl; alignments = !alignments; overlap_sum = !overlap_sum }

let objective t =
  let beta = t.params.Params.beta in
  let total = ref 0.0 in
  Array.iter (fun (c : cell) -> total := !total +. c.cand_cost.(c.cur)) t.cells;
  Array.iter
    (fun wnet ->
      total :=
        !total
        +. (beta *. wnet.weight
            *. float_of_int (net_hpwl_with t ~cell:(-1) ~cand:0 wnet)))
    t.nets;
  Array.iter
    (fun pair -> total := !total -. pair_gain_with t ~cell:(-1) ~cand:0 pair)
    t.pairs;
  !total

let candidate_free t ~cell ~cand =
  let c = t.cells.(cell) in
  let cur = c.cands.(c.cur) and next = c.cands.(cand) in
  (* lift own footprint, test, restore *)
  bump t.occ t ~site:cur.site ~row:cur.row ~width:c.width (-1);
  let ok = footprint_free t.occ t ~site:next.site ~row:next.row ~width:c.width in
  bump t.occ t ~site:cur.site ~row:cur.row ~width:c.width 1;
  ok

(* Folds rather than a float ref: the summation order (cand_cost, then
   nets in incidence order, then pairs) is unchanged, so the float
   result is bit-identical to the ref formulation. *)
let local_cost t ~cell ~cand =
  let beta = t.params.Params.beta in
  let acc =
    List.fold_left
      (fun acc nidx ->
        let wnet = t.nets.(nidx) in
        acc
        +. (beta *. wnet.weight
            *. float_of_int (net_hpwl_with t ~cell ~cand wnet)))
      t.cells.(cell).cand_cost.(cand)
      t.cell_nets.(cell)
  in
  List.fold_left
    (fun acc pidx -> acc -. pair_gain_with t ~cell ~cand t.pairs.(pidx))
    acc t.cell_pairs.(cell)

let move_delta t ~cell ~cand =
  let c = t.cells.(cell) in
  local_cost t ~cell ~cand -. local_cost t ~cell ~cand:c.cur

let apply t ~cell ~cand =
  let c = t.cells.(cell) in
  let cur = c.cands.(c.cur) and next = c.cands.(cand) in
  bump t.occ t ~site:cur.site ~row:cur.row ~width:c.width (-1);
  bump t.occ t ~site:next.site ~row:next.row ~width:c.width 1;
  c.cur <- cand

let commit t =
  Array.iter
    (fun c ->
      let cand = c.cands.(c.cur) in
      Place.Placement.move t.placement c.inst ~site:cand.site ~row:cand.row
        ~orient:cand.orient)
    t.cells

(* --- multi-cell plans (ripple moves) ---

   A plan is a list of (cell, candidate) moves applied together. Plans are
   how the solver reproduces the MILP's coordinated moves: to vacate a
   target footprint, same-row neighbours are pushed sideways within their
   own candidate sets (so every pushed cell still respects its
   perturbation range, the window bounds and fixed blockage). *)

let apply_plan t plan = List.iter (fun (cell, cand) -> apply t ~cell ~cand) plan

(* The affected nets/pairs come back as sorted id lists: the evaluation
   below sums floats, so visiting them in hash order would make the total
   depend on table layout. *)
let plan_affected t plan =
  let nets = Hashtbl.create 16 and pairs = Hashtbl.create 16 in
  List.iter
    (fun (cell, _) ->
      List.iter (fun n -> Hashtbl.replace nets n ()) t.cell_nets.(cell);
      List.iter (fun pi -> Hashtbl.replace pairs pi ()) t.cell_pairs.(cell))
    plan;
  let keys tbl =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort Int.compare
  in
  (keys nets, keys pairs)

let eval_affected t nets pairs cells_involved =
  let beta = t.params.Params.beta in
  let acc = ref 0.0 in
  List.iter
    (fun cell ->
      let c = t.cells.(cell) in
      acc := !acc +. c.cand_cost.(c.cur))
    cells_involved;
  List.iter
    (fun n ->
      let wnet = t.nets.(n) in
      acc :=
        !acc
        +. (beta *. wnet.weight
            *. float_of_int (net_hpwl_with t ~cell:(-1) ~cand:0 wnet)))
    nets;
  List.iter
    (fun pi -> acc := !acc -. pair_gain_with t ~cell:(-1) ~cand:0 t.pairs.(pi))
    pairs;
  !acc

let plan_delta t plan =
  let saved = List.map (fun (cell, _) -> (cell, t.cells.(cell).cur)) plan in
  let cells_involved = List.map fst plan in
  let nets, pairs = plan_affected t plan in
  let before = eval_affected t nets pairs cells_involved in
  apply_plan t plan;
  let after = eval_affected t nets pairs cells_involved in
  apply_plan t saved;
  after -. before

let max_plan_moves = 8

let shove_plan t ~cell ~cand =
  let c = t.cells.(cell) in
  let target = c.cands.(cand) in
  let row = target.row in
  let a = target.site and b = target.site + c.width in
  (* candidate lookup preserving a cell's current orientation and row *)
  let cand_at idx ~site =
    let cc = t.cells.(idx) in
    let orient = cc.cands.(cc.cur).orient in
    Hashtbl.find_opt t.cand_index.(idx) (encode_cand t ~site ~row ~orient)
  in
  (* movable cells currently in the target row, except the moving one *)
  let in_row = ref [] in
  Array.iteri
    (fun idx (cc : cell) ->
      if idx <> cell then begin
        let cur = cc.cands.(cc.cur) in
        if cur.row = row then in_row := (idx, cur.site, cc.width) :: !in_row
      end)
    t.cells;
  let asc = List.sort (fun (_, s1, _) (_, s2, _) -> Int.compare s1 s2) !in_row in
  let desc = List.rev asc in
  let moves = ref [ (cell, cand) ] in
  let count = ref 1 in
  let exception Fail in
  try
    (* left cascade: cells starting left of the target whose right edge
       intrudes past [required] slide left, nearest first *)
    let required = ref a in
    List.iter
      (fun (idx, site, width) ->
        if site < a && site + width > !required then begin
          let new_site = !required - width in
          incr count;
          if !count > max_plan_moves then raise Fail;
          match cand_at idx ~site:new_site with
          | Some k ->
            moves := (idx, k) :: !moves;
            required := new_site
          | None -> raise Fail
        end)
      desc;
    (* right cascade *)
    let required = ref b in
    List.iter
      (fun (idx, site, width) ->
        if site >= a && site < !required && site + width > a then begin
          let new_site = !required in
          incr count;
          if !count > max_plan_moves then raise Fail;
          match cand_at idx ~site:new_site with
          | Some k ->
            moves := (idx, k) :: !moves;
            required := new_site + width
          | None -> raise Fail
        end)
      asc;
    (* verify the final configuration is overlap-free by testing against
       occupancy with all planned cells lifted *)
    List.iter
      (fun (idx, _) ->
        let cc = t.cells.(idx) in
        let cur = cc.cands.(cc.cur) in
        bump t.occ t ~site:cur.site ~row:cur.row ~width:cc.width (-1))
      !moves;
    let ok =
      List.for_all
        (fun (idx, k) ->
          let cc = t.cells.(idx) in
          let nc = cc.cands.(k) in
          footprint_free t.occ t ~site:nc.site ~row:nc.row ~width:cc.width)
        !moves
      (* the planned footprints must also be mutually disjoint; test by
         marking incrementally *)
      &&
      let rec place = function
        | [] -> true
        | (idx, k) :: rest ->
          let cc = t.cells.(idx) in
          let nc = cc.cands.(k) in
          if footprint_free t.occ t ~site:nc.site ~row:nc.row ~width:cc.width
          then begin
            bump t.occ t ~site:nc.site ~row:nc.row ~width:cc.width 1;
            let r = place rest in
            bump t.occ t ~site:nc.site ~row:nc.row ~width:cc.width (-1);
            r
          end
          else false
      in
      place !moves
    in
    List.iter
      (fun (idx, _) ->
        let cc = t.cells.(idx) in
        let cur = cc.cands.(cc.cur) in
        bump t.occ t ~site:cur.site ~row:cur.row ~width:cc.width 1)
      !moves;
    if ok then Some !moves else None
  with Fail ->
    (* restore any lifted footprints is unnecessary here: Fail is raised
       only before the lifting phase *)
    None

(* Objective credit of [cell]'s pairs if it sat at [cand]: used to decide
   which blocked candidates are worth a shove attempt. *)
let cell_pair_gain_at t ~cell ~cand =
  List.fold_left
    (fun acc pi -> acc +. pair_gain_with t ~cell ~cand t.pairs.(pi))
    0.0 t.cell_pairs.(cell)

(* --- raw occupancy primitives for the exact search, which lifts every
   movable cell and re-places them one at a time --- *)

let lift t ~cell =
  let c = t.cells.(cell) in
  let cur = c.cands.(c.cur) in
  bump t.occ t ~site:cur.site ~row:cur.row ~width:c.width (-1)

let drop t ~cell =
  let c = t.cells.(cell) in
  let cur = c.cands.(c.cur) in
  bump t.occ t ~site:cur.site ~row:cur.row ~width:c.width 1

let footprint_free_at t ~cell ~cand =
  let c = t.cells.(cell) in
  let nc = c.cands.(cand) in
  footprint_free t.occ t ~site:nc.site ~row:nc.row ~width:c.width

let set_cur t ~cell ~cand = t.cells.(cell).cur <- cand

(* --- assignments and clones (the solver-portfolio substrate) --- *)

let assignment t = Array.map (fun (c : cell) -> c.cur) t.cells

let set_assignment t a =
  if Array.length a <> Array.length t.cells then
    invalid_arg "Wproblem.set_assignment: arity mismatch";
  (* apply keeps occupancy consistent; the per-site counts tolerate the
     transient overlap of moving cells one at a time *)
  Array.iteri
    (fun i cand -> if t.cells.(i).cur <> cand then apply t ~cell:i ~cand)
    a

let clone t =
  {
    t with
    cells = Array.map (fun (c : cell) -> { c with cur = c.cur }) t.cells;
    occ = Bytes.copy t.occ;
  }
