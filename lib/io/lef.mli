(** LEF-subset codec: the library half of the interchange subsystem.

    The subset carries exactly what {!Pdk.Libgen.t} holds: the site
    ([SITE core SIZE w BY h]), the routing layers with direction, pitch
    and offset ([LAYER]), the vertical-M1 technology rules the paper
    adds ([VM1RULES GAMMA g DELTA d] — a subset extension, as is
    [ARCH]), and the macros: kind/drive ([KIND]), footprint ([SIZE]),
    electrical model ([ELECTRICAL cap_in drive_res intrinsic_delay
    leakage]) and per-pin geometry ([PIN]/[PORT]/[LAYER]/[RECT]). All
    geometry is integer DBU ([UNITS DATABASE MICRONS 1000]), so
    round-trips are exact; the electrical floats are printed with
    enough digits to survive [float_of_string].

    Like {!Def}, parsing is total with positioned errors, and
    [emit]/[parse] are mutually inverse: [parse (emit lib)]
    reconstructs [lib] exactly, and [emit] of the result is
    byte-identical. *)

val parse : string -> (Pdk.Libgen.t, Lex.error) result

(** @raise Sys_error when the file cannot be read. *)
val parse_file : string -> (Pdk.Libgen.t, Lex.error) result

val emit : Pdk.Libgen.t -> string
val emit_file : string -> Pdk.Libgen.t -> unit
