(** DEF-subset codec: the design-exchange half of the interchange
    subsystem.

    The subset covers what the flow produces and consumes: [DESIGN],
    [UNITS], [DIEAREA], [ROW], [TRACKS], [COMPONENTS] (placed cells),
    [PINS] (die-boundary pins — parsed and preserved, not used by the
    flow, whose netlists have no primary IO), and [NETS] with a
    [+ USE SIGNAL/CLOCK] clause. All coordinates are integer DBU
    (1 DBU = 1 nm; [UNITS DISTANCE MICRONS 1000]).

    Parsing is total: {!parse} returns a structured {!Lex.error} with
    the exact line/column and the expected token instead of raising.
    Emission has a normal form, and [emit] and [parse] are mutually
    inverse on it: for any document [d] in the image of {!emit} (in
    particular the committed [*.def] examples and everything
    [vm1opt --dump] writes), [emit (parse d) = d] byte for byte — the
    round-trip fixed point checked by [test/test_io.ml]. *)

type component = {
  c_name : string;
  c_master : string;
  c_x : int;
  c_y : int;
  c_orient : Geom.Orient.t;
}

(** A die-boundary pin. [p_dir] is the DEF direction word ([INPUT],
    [OUTPUT], [INOUT]) — kept textual because the flow does not model
    primary IO; the codec only preserves it. *)
type io_pin = {
  p_name : string;
  p_net : string;
  p_dir : string;
  p_x : int;
  p_y : int;
  p_orient : Geom.Orient.t;
}

type net = {
  n_name : string;
  n_pins : (string * string) list;  (** (instance, pin) in net order *)
  n_is_clock : bool;                (** [+ USE CLOCK] *)
}

type row = {
  r_name : string;
  r_site : string;
  r_x : int;
  r_y : int;
  r_orient : Geom.Orient.t;
  r_count : int;   (** sites in the row ([DO count BY 1]) *)
  r_step : int;    (** site pitch ([STEP step 0]) *)
}

type axis = X | Y

type tracks = {
  t_axis : axis;
  t_start : int;
  t_count : int;
  t_step : int;
  t_layer : string;
}

type t = {
  design : string;
  dbu : int;  (** [UNITS DISTANCE MICRONS] — always 1000 when emitted *)
  die : Geom.Rect.t;
  rows : row list;
  tracks : tracks list;
  components : component array;
  io_pins : io_pin list;
  nets : net array;
}

(** {1 Codec} *)

val parse : string -> (t, Lex.error) result

(** [parse_file path] parses the file's contents.
    @raise Sys_error when the file cannot be read. *)
val parse_file : string -> (t, Lex.error) result

val emit : t -> string

(** {1 Mapping onto the flow's types} *)

(** [of_design d p] builds the document for a design and its placement:
    rows and tracks are derived from the library's technology and the
    die, components and nets from the design. *)
val of_design : Netlist.Design.t -> Netlist.Def_io.placement -> t

(** [to_design lib doc] binds the document against [lib]: masters are
    resolved by name, net pins by (instance, pin) name. Errors — wrong
    DBU, unknown master/instance/pin, duplicate instance — are
    human-readable strings (binding has no source position; syntax
    errors were already caught by {!parse}). *)
val to_design :
  Pdk.Libgen.t -> t -> (Netlist.Design.t * Netlist.Def_io.placement, string) result

(** {1 Convenience: the old [Netlist.Def_io] surface} *)

val write : Netlist.Design.t -> Netlist.Def_io.placement -> string
val write_file : string -> Netlist.Design.t -> Netlist.Def_io.placement -> unit

(** [read lib s] is [parse] followed by [to_design]; parse errors are
    rendered with {!Lex.error_to_string}. *)
val read :
  Pdk.Libgen.t -> string -> (Netlist.Design.t * Netlist.Def_io.placement, string) result

val read_file :
  Pdk.Libgen.t -> string -> (Netlist.Design.t * Netlist.Def_io.placement, string) result
