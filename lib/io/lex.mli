(** Tokenizer shared by the DEF and LEF subset parsers.

    Splits a source text into whitespace-separated words, treating the
    structural characters ['('], [')'] and [';'] as single-character
    tokens even when glued to a word, and skipping ['#'] line comments
    (the DEF/LEF comment convention). Every token carries its 1-based
    line and column, so parse failures can point at the exact source
    position.

    Parsing in this library is {e total}: the parsers never raise on
    malformed input; they return a structured {!error} — the same
    design as the [vm1dp-jobs/1] codec in [lib/serve/protocol.ml]. *)

type token = {
  text : string;
  line : int;  (** 1-based *)
  col : int;   (** 1-based column of the token's first character *)
}

(** A structured parse error: what the parser was looking for
    ([expected], e.g. [";"] or ["an integer"]) and what it found
    ([got] — a token's text, or ["end of input"]). *)
type error = {
  e_line : int;
  e_col : int;
  expected : string;
  got : string;
}

(** ["line L, col C: expected E, got G"]. *)
val error_to_string : error -> string

type t

val make : string -> t

(** [peek t] is the next token without consuming it. *)
val peek : t -> token option

(** [next t] consumes and returns the next token. *)
val next : t -> token option

(** [pos_after t] is the (line, col) just past the last consumed
    token — the position reported when input ends prematurely. *)
val pos_after : t -> int * int
