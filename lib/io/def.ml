type component = {
  c_name : string;
  c_master : string;
  c_x : int;
  c_y : int;
  c_orient : Geom.Orient.t;
}

type io_pin = {
  p_name : string;
  p_net : string;
  p_dir : string;
  p_x : int;
  p_y : int;
  p_orient : Geom.Orient.t;
}

type net = {
  n_name : string;
  n_pins : (string * string) list;
  n_is_clock : bool;
}

type row = {
  r_name : string;
  r_site : string;
  r_x : int;
  r_y : int;
  r_orient : Geom.Orient.t;
  r_count : int;
  r_step : int;
}

type axis = X | Y

type tracks = {
  t_axis : axis;
  t_start : int;
  t_count : int;
  t_step : int;
  t_layer : string;
}

type t = {
  design : string;
  dbu : int;
  die : Geom.Rect.t;
  rows : row list;
  tracks : tracks list;
  components : component array;
  io_pins : io_pin list;
  nets : net array;
}

(* --- emission -------------------------------------------------------- *)

let axis_string = function X -> "X" | Y -> "Y"

let emit (d : t) =
  let buf = Buffer.create (1 lsl 16) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "VERSION 5.8 ;\n";
  addf "DESIGN %s ;\n" d.design;
  addf "UNITS DISTANCE MICRONS %d ;\n" d.dbu;
  addf "DIEAREA ( %d %d ) ( %d %d ) ;\n" d.die.Geom.Rect.lx d.die.ly d.die.hx
    d.die.hy;
  List.iter
    (fun r ->
      addf "ROW %s %s %d %d %s DO %d BY 1 STEP %d 0 ;\n" r.r_name r.r_site
        r.r_x r.r_y
        (Geom.Orient.to_string r.r_orient)
        r.r_count r.r_step)
    d.rows;
  List.iter
    (fun t ->
      addf "TRACKS %s %d DO %d STEP %d LAYER %s ;\n" (axis_string t.t_axis)
        t.t_start t.t_count t.t_step t.t_layer)
    d.tracks;
  addf "COMPONENTS %d ;\n" (Array.length d.components);
  Array.iter
    (fun c ->
      addf "- %s %s + PLACED ( %d %d ) %s ;\n" c.c_name c.c_master c.c_x c.c_y
        (Geom.Orient.to_string c.c_orient))
    d.components;
  addf "END COMPONENTS\n";
  addf "PINS %d ;\n" (List.length d.io_pins);
  List.iter
    (fun p ->
      addf "- %s + NET %s + DIRECTION %s + PLACED ( %d %d ) %s ;\n" p.p_name
        p.p_net p.p_dir p.p_x p.p_y
        (Geom.Orient.to_string p.p_orient))
    d.io_pins;
  addf "END PINS\n";
  addf "NETS %d ;\n" (Array.length d.nets);
  Array.iter
    (fun n ->
      addf "- %s" n.n_name;
      List.iter (fun (inst, pin) -> addf " ( %s %s )" inst pin) n.n_pins;
      addf " + USE %s ;\n" (if n.n_is_clock then "CLOCK" else "SIGNAL"))
    d.nets;
  addf "END NETS\n";
  addf "END DESIGN\n";
  Buffer.contents buf

(* --- parsing --------------------------------------------------------- *)

exception E of Lex.error

let err_at (tok : Lex.token) ~expected =
  raise
    (E
       {
         Lex.e_line = tok.Lex.line;
         e_col = tok.Lex.col;
         expected;
         got = Printf.sprintf "%S" tok.Lex.text;
       })

let tok lx ~expected =
  match Lex.next lx with
  | Some t -> t
  | None ->
    let line, col = Lex.pos_after lx in
    raise (E { Lex.e_line = line; e_col = col; expected; got = "end of input" })

let expect lx kw =
  let t = tok lx ~expected:(Printf.sprintf "%S" kw) in
  if not (String.equal t.Lex.text kw) then
    err_at t ~expected:(Printf.sprintf "%S" kw)

let word lx ~expected = (tok lx ~expected).Lex.text

let int_tok lx ~expected =
  let t = tok lx ~expected in
  match int_of_string_opt t.Lex.text with
  | Some n -> n
  | None -> err_at t ~expected

let orient_tok lx =
  let expected = "an orientation (N|FN|S|FS)" in
  let t = tok lx ~expected in
  match t.Lex.text with
  | "N" -> Geom.Orient.N
  | "FN" -> Geom.Orient.FN
  | "S" -> Geom.Orient.S
  | "FS" -> Geom.Orient.FS
  | _ -> err_at t ~expected

let point lx =
  expect lx "(";
  let x = int_tok lx ~expected:"an integer x coordinate" in
  let y = int_tok lx ~expected:"an integer y coordinate" in
  expect lx ")";
  (x, y)

(* [- name master + PLACED ( x y ) orient ;] — "-" already consumed. *)
let component_entry lx =
  let c_name = word lx ~expected:"a component name" in
  let c_master = word lx ~expected:"a master name" in
  expect lx "+";
  let placed = tok lx ~expected:"\"PLACED\" or \"FIXED\"" in
  (match placed.Lex.text with
  | "PLACED" | "FIXED" -> ()
  | _ -> err_at placed ~expected:"\"PLACED\" or \"FIXED\"");
  let c_x, c_y = point lx in
  let c_orient = orient_tok lx in
  expect lx ";";
  { c_name; c_master; c_x; c_y; c_orient }

(* [- name + NET net + DIRECTION dir + PLACED ( x y ) orient ;] *)
let pin_entry lx =
  let p_name = word lx ~expected:"a pin name" in
  expect lx "+";
  expect lx "NET";
  let p_net = word lx ~expected:"a net name" in
  expect lx "+";
  expect lx "DIRECTION";
  let dir = tok lx ~expected:"a direction (INPUT|OUTPUT|INOUT)" in
  (match dir.Lex.text with
  | "INPUT" | "OUTPUT" | "INOUT" -> ()
  | _ -> err_at dir ~expected:"a direction (INPUT|OUTPUT|INOUT)");
  expect lx "+";
  expect lx "PLACED";
  let p_x, p_y = point lx in
  let p_orient = orient_tok lx in
  expect lx ";";
  { p_name; p_net; p_dir = dir.Lex.text; p_x; p_y; p_orient }

(* [- name ( inst pin )* [+ USE SIGNAL|CLOCK] ;] *)
let net_entry lx =
  let n_name = word lx ~expected:"a net name" in
  let rec pins acc =
    match Lex.peek lx with
    | Some { Lex.text = "("; _ } ->
      let inst, pin =
        expect lx "(";
        let inst = word lx ~expected:"an instance name" in
        let pin = word lx ~expected:"a pin name" in
        expect lx ")";
        (inst, pin)
      in
      pins ((inst, pin) :: acc)
    | _ -> List.rev acc
  in
  let n_pins = pins [] in
  let n_is_clock =
    match Lex.peek lx with
    | Some { Lex.text = "+"; _ } ->
      expect lx "+";
      expect lx "USE";
      let u = tok lx ~expected:"\"SIGNAL\" or \"CLOCK\"" in
      (match u.Lex.text with
      | "SIGNAL" -> false
      | "CLOCK" -> true
      | _ -> err_at u ~expected:"\"SIGNAL\" or \"CLOCK\"")
    | _ -> false
  in
  expect lx ";";
  { n_name; n_pins; n_is_clock }

(* [SECTION n ; - entry ... END SECTION], returning the entries and
   checking their number against the declared count (reported at the
   count token's position). *)
let section lx ~name ~entry =
  let count_tok = tok lx ~expected:"an entry count" in
  let declared =
    match int_of_string_opt count_tok.Lex.text with
    | Some n -> n
    | None -> err_at count_tok ~expected:"an entry count"
  in
  expect lx ";";
  let rec entries acc =
    let t = tok lx ~expected:(Printf.sprintf "\"-\" or \"END %s\"" name) in
    match t.Lex.text with
    | "-" -> entries (entry lx :: acc)
    | "END" ->
      expect lx name;
      List.rev acc
    | _ -> err_at t ~expected:(Printf.sprintf "\"-\" or \"END %s\"" name)
  in
  let es = entries [] in
  if List.length es <> declared then
    err_at count_tok
      ~expected:
        (Printf.sprintf "%d %s entries (found %d)" declared
           (String.lowercase_ascii name) (List.length es));
  es

let row_stmt lx =
  let r_name = word lx ~expected:"a row name" in
  let r_site = word lx ~expected:"a site name" in
  let r_x = int_tok lx ~expected:"an integer x coordinate" in
  let r_y = int_tok lx ~expected:"an integer y coordinate" in
  let r_orient = orient_tok lx in
  expect lx "DO";
  let r_count = int_tok lx ~expected:"a site count" in
  expect lx "BY";
  expect lx "1";
  expect lx "STEP";
  let r_step = int_tok lx ~expected:"a site step" in
  expect lx "0";
  expect lx ";";
  { r_name; r_site; r_x; r_y; r_orient; r_count; r_step }

let tracks_stmt lx =
  let axis_tok = tok lx ~expected:"\"X\" or \"Y\"" in
  let t_axis =
    match axis_tok.Lex.text with
    | "X" -> X
    | "Y" -> Y
    | _ -> err_at axis_tok ~expected:"\"X\" or \"Y\""
  in
  let t_start = int_tok lx ~expected:"an integer track origin" in
  expect lx "DO";
  let t_count = int_tok lx ~expected:"a track count" in
  expect lx "STEP";
  let t_step = int_tok lx ~expected:"a track step" in
  expect lx "LAYER";
  let t_layer = word lx ~expected:"a layer name" in
  expect lx ";";
  { t_axis; t_start; t_count; t_step; t_layer }

let parse src =
  let lx = Lex.make src in
  match
    expect lx "VERSION";
    ignore (word lx ~expected:"a version number");
    expect lx ";";
    expect lx "DESIGN";
    let design = word lx ~expected:"a design name" in
    expect lx ";";
    expect lx "UNITS";
    expect lx "DISTANCE";
    expect lx "MICRONS";
    let dbu = int_tok lx ~expected:"an integer DBU-per-micron factor" in
    expect lx ";";
    expect lx "DIEAREA";
    let lx_, ly_ = point lx in
    let hx_, hy_ = point lx in
    expect lx ";";
    let die = Geom.Rect.make ~lx:lx_ ~ly:ly_ ~hx:hx_ ~hy:hy_ in
    (* ROW and TRACKS statements, in any order *)
    let rows = ref [] and tracks = ref [] in
    let rec header () =
      match Lex.peek lx with
      | Some { Lex.text = "ROW"; _ } ->
        ignore (Lex.next lx);
        rows := row_stmt lx :: !rows;
        header ()
      | Some { Lex.text = "TRACKS"; _ } ->
        ignore (Lex.next lx);
        tracks := tracks_stmt lx :: !tracks;
        header ()
      | _ -> ()
    in
    header ();
    expect lx "COMPONENTS";
    let components =
      Array.of_list (section lx ~name:"COMPONENTS" ~entry:component_entry)
    in
    let io_pins =
      match Lex.peek lx with
      | Some { Lex.text = "PINS"; _ } ->
        ignore (Lex.next lx);
        section lx ~name:"PINS" ~entry:pin_entry
      | _ -> []
    in
    expect lx "NETS";
    let nets = Array.of_list (section lx ~name:"NETS" ~entry:net_entry) in
    expect lx "END";
    expect lx "DESIGN";
    (match Lex.peek lx with
    | None -> ()
    | Some t -> err_at t ~expected:"end of input");
    {
      design;
      dbu;
      die;
      rows = List.rev !rows;
      tracks = List.rev !tracks;
      components;
      io_pins;
      nets;
    }
  with
  | doc -> Ok doc
  | exception E e -> Error e

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse (read_whole_file path)

(* --- mapping --------------------------------------------------------- *)

let dbu_per_micron = 1000

let of_design (d : Netlist.Design.t) (p : Netlist.Def_io.placement) =
  let tech = d.lib.Pdk.Libgen.tech in
  let die = p.Netlist.Def_io.die in
  let width = Geom.Rect.width die and height = Geom.Rect.height die in
  let num_rows = height / tech.Pdk.Tech.row_height in
  let sites_per_row = width / tech.Pdk.Tech.site_width in
  let rows =
    List.init num_rows (fun r ->
        {
          r_name = Printf.sprintf "row_%d" r;
          r_site = "core";
          r_x = die.Geom.Rect.lx;
          r_y = die.Geom.Rect.ly + (r * tech.Pdk.Tech.row_height);
          r_orient = Geom.Orient.N;
          r_count = sites_per_row;
          r_step = tech.Pdk.Tech.site_width;
        })
  in
  let tracks =
    [
      {
        t_axis = Y;
        t_start = die.Geom.Rect.ly;
        t_count = height / tech.Pdk.Tech.m0_pitch;
        t_step = tech.Pdk.Tech.m0_pitch;
        t_layer = "M0";
      };
      {
        t_axis = X;
        t_start = die.Geom.Rect.lx + tech.Pdk.Tech.m1_offset;
        t_count = sites_per_row;
        t_step = tech.Pdk.Tech.site_width;
        t_layer = "M1";
      };
      {
        t_axis = Y;
        t_start = die.Geom.Rect.ly;
        t_count = height / tech.Pdk.Tech.m2_pitch;
        t_step = tech.Pdk.Tech.m2_pitch;
        t_layer = "M2";
      };
    ]
  in
  let components =
    Array.mapi
      (fun i (inst : Netlist.Design.instance) ->
        {
          c_name = inst.inst_name;
          c_master = inst.master.Pdk.Stdcell.name;
          c_x = p.Netlist.Def_io.xs.(i);
          c_y = p.Netlist.Def_io.ys.(i);
          c_orient = p.Netlist.Def_io.orients.(i);
        })
      d.instances
  in
  let nets =
    Array.map
      (fun (n : Netlist.Design.net) ->
        {
          n_name = n.net_name;
          n_pins =
            Array.to_list
              (Array.map
                 (fun (pr : Netlist.Design.pin_ref) ->
                   let inst = d.instances.(pr.inst) in
                   let mp = List.nth inst.master.Pdk.Stdcell.pins pr.pin in
                   (inst.inst_name, mp.Pdk.Stdcell.pin_name))
                 n.pins);
          n_is_clock = n.is_clock;
        })
      d.nets
  in
  {
    design = d.name;
    dbu = dbu_per_micron;
    die;
    rows;
    tracks;
    components;
    io_pins = [];
    nets;
  }

let to_design (lib : Pdk.Libgen.t) (doc : t) =
  match
    if doc.dbu <> dbu_per_micron then
      failwith
        (Printf.sprintf
           "UNITS DISTANCE MICRONS must be %d (1 DBU = 1 nm), got %d"
           dbu_per_micron doc.dbu);
    let ncomps = Array.length doc.components in
    let inst_index = Hashtbl.create ncomps in
    Array.iteri
      (fun i (c : component) ->
        if Hashtbl.mem inst_index c.c_name then
          failwith (Printf.sprintf "duplicate component %S" c.c_name);
        Hashtbl.replace inst_index c.c_name i)
      doc.components;
    let masters =
      Array.map
        (fun (c : component) ->
          match Pdk.Libgen.find_opt lib c.c_master with
          | Some m -> m
          | None ->
            failwith
              (Printf.sprintf "unknown master %S (component %S)" c.c_master
                 c.c_name))
        doc.components
    in
    let pin_nets =
      Array.map
        (fun (m : Pdk.Stdcell.t) -> Array.make (List.length m.pins) (-1))
        masters
    in
    let pin_index (m : Pdk.Stdcell.t) pname =
      let rec go k = function
        | [] ->
          failwith
            (Printf.sprintf "master %S has no pin %S" m.Pdk.Stdcell.name pname)
        | (p : Pdk.Stdcell.pin) :: rest ->
          if String.equal p.pin_name pname then k else go (k + 1) rest
      in
      go 0 m.Pdk.Stdcell.pins
    in
    let nets =
      Array.mapi
        (fun nid (n : net) ->
          let pin_refs =
            List.map
              (fun (iname, pname) ->
                let i =
                  match Hashtbl.find_opt inst_index iname with
                  | Some i -> i
                  | None ->
                    failwith
                      (Printf.sprintf "net %S references unknown component %S"
                         n.n_name iname)
                in
                let k = pin_index masters.(i) pname in
                pin_nets.(i).(k) <- nid;
                { Netlist.Design.inst = i; pin = k })
              n.n_pins
          in
          {
            Netlist.Design.net_name = n.n_name;
            pins = Array.of_list pin_refs;
            is_clock = n.n_is_clock;
          })
        doc.nets
    in
    let instances =
      Array.mapi
        (fun i (c : component) ->
          {
            Netlist.Design.inst_name = c.c_name;
            master = masters.(i);
            pin_nets = pin_nets.(i);
          })
        doc.components
    in
    let design = { Netlist.Design.name = doc.design; lib; instances; nets } in
    let placement =
      {
        Netlist.Def_io.die = doc.die;
        xs = Array.map (fun c -> c.c_x) doc.components;
        ys = Array.map (fun c -> c.c_y) doc.components;
        orients = Array.map (fun c -> c.c_orient) doc.components;
      }
    in
    (design, placement)
  with
  | v -> Ok v
  | exception Failure msg -> Error msg

(* --- the old Netlist.Def_io surface ---------------------------------- *)

let write d p = emit (of_design d p)

let write_file path d p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write d p))

let read lib s =
  match parse s with
  | Error e -> Error (Lex.error_to_string e)
  | Ok doc -> to_design lib doc

let read_file lib path = read lib (read_whole_file path)
