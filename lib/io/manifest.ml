type source =
  | Generate of Netlist.Designs.name
  | External of {
      def_path : string;
      lef_path : string option;
      arch : Pdk.Cell_arch.t;
    }

type entry = { e_id : string; source : source }

type t = {
  m_name : string;
  entries : entry list;
  archs : Pdk.Cell_arch.t list;
  utils : float list;
  scales : int list;
}

(* --- JSON ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let str ~what = function
  | Obs.Json.Str s -> Ok s
  | j -> Error (Printf.sprintf "%s: expected a string, got %s" what (Obs.Json.to_string j))

let field obj key ~what =
  match Obs.Json.member key obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing %S" what key)

let list_of ~what f = function
  | Obs.Json.List xs ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest ->
        let* v = f x in
        go (v :: acc) rest
    in
    go [] xs
  | j -> Error (Printf.sprintf "%s: expected a list, got %s" what (Obs.Json.to_string j))

let number ~what = function
  | Obs.Json.Int n -> Ok (float_of_int n)
  | Obs.Json.Float f -> Ok f
  | j -> Error (Printf.sprintf "%s: expected a number, got %s" what (Obs.Json.to_string j))

let int_of ~what = function
  | Obs.Json.Int n -> Ok n
  | j -> Error (Printf.sprintf "%s: expected an integer, got %s" what (Obs.Json.to_string j))

let arch_of_json ~what j =
  let* s = str ~what j in
  match Pdk.Cell_arch.of_string s with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "%s: unknown architecture %S" what s)

let entry_of_json j =
  let* id = Result.bind (field j "id" ~what:"design entry") (str ~what:"design id") in
  let what = Printf.sprintf "design %S" id in
  match Obs.Json.member "generate" j, Obs.Json.member "def" j with
  | Some _, Some _ ->
    Error (Printf.sprintf "%s: has both \"generate\" and \"def\"" what)
  | Some g, None ->
    let* s = str ~what:(what ^ ": \"generate\"") g in
    (match Netlist.Designs.of_string s with
    | Some name -> Ok { e_id = id; source = Generate name }
    | None -> Error (Printf.sprintf "%s: unknown generator design %S" what s))
  | None, Some d ->
    let* def_path = str ~what:(what ^ ": \"def\"") d in
    let* lef_path =
      match Obs.Json.member "lef" j with
      | None -> Ok None
      | Some l ->
        let* p = str ~what:(what ^ ": \"lef\"") l in
        Ok (Some p)
    in
    let* arch =
      match Obs.Json.member "arch" j with
      | None -> Ok Pdk.Cell_arch.Closed_m1
      | Some a -> arch_of_json ~what:(what ^ ": \"arch\"") a
    in
    Ok { e_id = id; source = External { def_path; lef_path; arch } }
  | None, None ->
    Error (Printf.sprintf "%s: needs \"generate\" or \"def\"" what)

let of_json j =
  let what = "manifest" in
  let* schema = Result.bind (field j "schema" ~what) (str ~what:"schema") in
  let* () =
    if String.equal schema Obs.Schemas.bench_manifest then Ok ()
    else
      Error
        (Printf.sprintf "manifest: schema %S, expected %S" schema
           Obs.Schemas.bench_manifest)
  in
  let* m_name = Result.bind (field j "name" ~what) (str ~what:"name") in
  let* entries =
    Result.bind (field j "designs" ~what) (list_of ~what:"designs" entry_of_json)
  in
  let* archs =
    Result.bind (field j "archs" ~what)
      (list_of ~what:"archs" (arch_of_json ~what:"archs"))
  in
  let* utils =
    Result.bind (field j "utils" ~what) (list_of ~what:"utils" (number ~what:"utils"))
  in
  let* scales =
    Result.bind (field j "scales" ~what)
      (list_of ~what:"scales" (int_of ~what:"scales"))
  in
  let* () =
    match entries with [] -> Error "manifest: no designs" | _ :: _ -> Ok ()
  in
  let* () =
    let seen = Hashtbl.create 7 in
    let rec dup = function
      | [] -> Ok ()
      | e :: rest ->
        if Hashtbl.mem seen e.e_id then
          Error (Printf.sprintf "manifest: duplicate design id %S" e.e_id)
        else begin
          Hashtbl.replace seen e.e_id ();
          dup rest
        end
    in
    dup entries
  in
  Ok { m_name; entries; archs; utils; scales }

let entry_to_json e =
  let open Obs.Json in
  match e.source with
  | Generate name ->
    Obj
      [
        ("id", Str e.e_id); ("generate", Str (Netlist.Designs.to_string name));
      ]
  | External { def_path; lef_path; arch } ->
    Obj
      (("id", Str e.e_id)
      :: ("def", Str def_path)
      :: (match lef_path with
         | Some p -> [ ("lef", Str p) ]
         | None -> [ ("arch", Str (Pdk.Cell_arch.to_string arch)) ]))

let to_json m =
  let open Obs.Json in
  Obj
    [
      ("schema", Str Obs.Schemas.bench_manifest);
      ("name", Str m.m_name);
      ("designs", List (List.map entry_to_json m.entries));
      ("archs", List (List.map (fun a -> Str (Pdk.Cell_arch.to_string a)) m.archs));
      ("utils", List (List.map (fun u -> Float u) m.utils));
      ("scales", List (List.map (fun s -> Int s) m.scales));
    ]

let parse s =
  let* j = Obs.Json.parse s in
  of_json j

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let* m = parse (read_whole_file path) in
  let dir = Filename.dirname path in
  let resolve p = if Filename.is_relative p then Filename.concat dir p else p in
  let entries =
    List.map
      (fun e ->
        match e.source with
        | Generate _ -> e
        | External x ->
          {
            e with
            source =
              External
                {
                  x with
                  def_path = resolve x.def_path;
                  lef_path = Option.map resolve x.lef_path;
                };
          })
      m.entries
  in
  Ok { m with entries }

(* external paths are replaced by their file-content digests, so the
   key does not depend on where the manifest (or the process) lives *)
let digest m =
  let file_key p = Digest.to_hex (Digest.string (read_whole_file p)) in
  let canon_entry e =
    match e.source with
    | Generate _ -> e
    | External x ->
      {
        e with
        source =
          External
            {
              x with
              def_path = file_key x.def_path;
              lef_path = Option.map file_key x.lef_path;
            };
      }
  in
  let canon = { m with entries = List.map canon_entry m.entries } in
  Digest.to_hex (Digest.string (Obs.Json.to_string (to_json canon)))
