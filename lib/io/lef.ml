(* Emission and parsing of the LEF subset. The emitter's normal form is
   what [parse] is tested against as a fixed point; the parser is
   whitespace-insensitive like any LEF reader. *)

exception E of Lex.error

let err_at (tok : Lex.token) ~expected =
  raise
    (E
       {
         Lex.e_line = tok.Lex.line;
         e_col = tok.Lex.col;
         expected;
         got = Printf.sprintf "%S" tok.Lex.text;
       })

let tok lx ~expected =
  match Lex.next lx with
  | Some t -> t
  | None ->
    let line, col = Lex.pos_after lx in
    raise (E { Lex.e_line = line; e_col = col; expected; got = "end of input" })

let expect lx kw =
  let t = tok lx ~expected:(Printf.sprintf "%S" kw) in
  if not (String.equal t.Lex.text kw) then
    err_at t ~expected:(Printf.sprintf "%S" kw)

let word lx ~expected = (tok lx ~expected).Lex.text

let int_tok lx ~expected =
  let t = tok lx ~expected in
  match int_of_string_opt t.Lex.text with
  | Some n -> n
  | None -> err_at t ~expected

let float_tok lx ~expected =
  let t = tok lx ~expected in
  match float_of_string_opt t.Lex.text with
  | Some f -> f
  | None -> err_at t ~expected

(* --- vocabulary ------------------------------------------------------ *)

let dir_to_string = function
  | Pdk.Stdcell.Input -> "INPUT"
  | Pdk.Stdcell.Output -> "OUTPUT"
  | Pdk.Stdcell.Clock -> "CLOCK"

let kind_to_string = function
  | Pdk.Stdcell.Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Fill -> "FILL"

let kind_of_string = function
  | "INV" -> Some Pdk.Stdcell.Inv
  | "BUF" -> Some Buf
  | "NAND2" -> Some Nand2
  | "NOR2" -> Some Nor2
  | "AND2" -> Some And2
  | "OR2" -> Some Or2
  | "AOI21" -> Some Aoi21
  | "OAI21" -> Some Oai21
  | "XOR2" -> Some Xor2
  | "XNOR2" -> Some Xnor2
  | "MUX2" -> Some Mux2
  | "DFF" -> Some Dff
  | "FILL" -> Some Fill
  | _ -> None

let layer_of_string = function
  | "M0" -> Some Pdk.Layer.M0
  | "M1" -> Some Pdk.Layer.M1
  | "M2" -> Some Pdk.Layer.M2
  | "M3" -> Some Pdk.Layer.M3
  | "M4" -> Some Pdk.Layer.M4
  | _ -> None

(* shortest float representation that survives float_of_string (the
   Obs.Json convention) *)
let float_str f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let dbu_per_micron = 1000

(* --- emission -------------------------------------------------------- *)

let emit (lib : Pdk.Libgen.t) =
  let t = lib.tech in
  let buf = Buffer.create (1 lsl 14) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "VERSION 5.8 ;\n";
  addf "ARCH %s ;\n" (Pdk.Cell_arch.to_string t.Pdk.Tech.arch);
  addf "UNITS DATABASE MICRONS %d ;\n" dbu_per_micron;
  addf "SITE core SIZE %d BY %d ;\n" t.Pdk.Tech.site_width t.Pdk.Tech.row_height;
  addf "LAYER M0 DIRECTION HORIZONTAL PITCH %d OFFSET 0 ;\n" t.Pdk.Tech.m0_pitch;
  addf "LAYER M1 DIRECTION VERTICAL PITCH %d OFFSET %d ;\n"
    t.Pdk.Tech.site_width t.Pdk.Tech.m1_offset;
  addf "LAYER M2 DIRECTION HORIZONTAL PITCH %d OFFSET 0 ;\n" t.Pdk.Tech.m2_pitch;
  addf "VM1RULES GAMMA %d DELTA %d ;\n" t.Pdk.Tech.gamma t.Pdk.Tech.delta;
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      addf "MACRO %s\n" c.name;
      addf "  KIND %s DRIVE %d ;\n" (kind_to_string c.kind) c.drive;
      addf "  SIZE %d BY %d ;\n" c.width c.height;
      addf "  ELECTRICAL %s %s %s %s ;\n" (float_str c.cap_in)
        (float_str c.drive_res)
        (float_str c.intrinsic_delay)
        (float_str c.leakage);
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          addf "  PIN %s\n" p.pin_name;
          addf "    DIRECTION %s ;\n" (dir_to_string p.dir);
          addf "    PORT\n";
          List.iter
            (fun (layer, (r : Geom.Rect.t)) ->
              addf "      LAYER %s ;\n" (Pdk.Layer.to_string layer);
              addf "      RECT %d %d %d %d ;\n" r.lx r.ly r.hx r.hy)
            p.shapes;
          addf "    END\n";
          addf "  END %s\n" p.pin_name)
        c.pins;
      addf "END %s\n" c.name)
    lib.cells;
  addf "END LIBRARY\n";
  Buffer.contents buf

let emit_file path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (emit lib))

(* --- parsing --------------------------------------------------------- *)

let port lx =
  expect lx "PORT";
  let shapes = ref [] in
  let current_layer = ref None in
  let rec go () =
    let t = tok lx ~expected:"\"LAYER\", \"RECT\" or \"END\"" in
    match t.Lex.text with
    | "LAYER" ->
      let lt = tok lx ~expected:"a layer name (M0..M4)" in
      (match layer_of_string lt.Lex.text with
      | Some l -> current_layer := Some l
      | None -> err_at lt ~expected:"a layer name (M0..M4)");
      expect lx ";";
      go ()
    | "RECT" ->
      let layer =
        match !current_layer with
        | Some l -> l
        | None -> err_at t ~expected:"\"LAYER\" before the first \"RECT\""
      in
      let a = int_tok lx ~expected:"an integer coordinate" in
      let b = int_tok lx ~expected:"an integer coordinate" in
      let c = int_tok lx ~expected:"an integer coordinate" in
      let d = int_tok lx ~expected:"an integer coordinate" in
      expect lx ";";
      shapes := (layer, Geom.Rect.make ~lx:a ~ly:b ~hx:c ~hy:d) :: !shapes;
      go ()
    | "END" -> List.rev !shapes
    | _ -> err_at t ~expected:"\"LAYER\", \"RECT\" or \"END\""
  in
  go ()

let pin lx =
  let name = word lx ~expected:"a pin name" in
  expect lx "DIRECTION";
  let dt = tok lx ~expected:"a direction (INPUT|OUTPUT|CLOCK)" in
  let dir =
    match dt.Lex.text with
    | "INPUT" -> Pdk.Stdcell.Input
    | "OUTPUT" -> Pdk.Stdcell.Output
    | "CLOCK" -> Pdk.Stdcell.Clock
    | _ -> err_at dt ~expected:"a direction (INPUT|OUTPUT|CLOCK)"
  in
  expect lx ";";
  let shapes = port lx in
  expect lx "END";
  expect lx name;
  { Pdk.Stdcell.pin_name = name; dir; shapes }

let macro lx (tech : Pdk.Tech.t) =
  let name = word lx ~expected:"a macro name" in
  expect lx "KIND";
  let kt = tok lx ~expected:"a cell kind (INV|BUF|NAND2|...)" in
  let kind =
    match kind_of_string kt.Lex.text with
    | Some k -> k
    | None -> err_at kt ~expected:"a cell kind (INV|BUF|NAND2|...)"
  in
  expect lx "DRIVE";
  let drive = int_tok lx ~expected:"an integer drive strength" in
  expect lx ";";
  expect lx "SIZE";
  let wt = tok lx ~expected:"an integer width" in
  let width =
    match int_of_string_opt wt.Lex.text with
    | Some w -> w
    | None -> err_at wt ~expected:"an integer width"
  in
  expect lx "BY";
  let height = int_tok lx ~expected:"an integer height" in
  expect lx ";";
  if width mod tech.Pdk.Tech.site_width <> 0 then
    err_at wt
      ~expected:
        (Printf.sprintf "a width divisible by the site width (%d)"
           tech.Pdk.Tech.site_width);
  expect lx "ELECTRICAL";
  let cap_in = float_tok lx ~expected:"a pin capacitance (fF)" in
  let drive_res = float_tok lx ~expected:"a drive resistance (kOhm)" in
  let intrinsic_delay = float_tok lx ~expected:"an intrinsic delay (ps)" in
  let leakage = float_tok lx ~expected:"a leakage power (nW)" in
  expect lx ";";
  let rec pins acc =
    let t = tok lx ~expected:"\"PIN\" or \"END\"" in
    match t.Lex.text with
    | "PIN" -> pins (pin lx :: acc)
    | "END" ->
      expect lx name;
      List.rev acc
    | _ -> err_at t ~expected:"\"PIN\" or \"END\""
  in
  let pins = pins [] in
  {
    Pdk.Stdcell.name;
    kind;
    drive;
    width_sites = width / tech.Pdk.Tech.site_width;
    width;
    height;
    pins;
    cap_in;
    drive_res;
    intrinsic_delay;
    leakage;
  }

let parse src =
  let lx = Lex.make src in
  match
    expect lx "VERSION";
    ignore (word lx ~expected:"a version number");
    expect lx ";";
    expect lx "ARCH";
    let at = tok lx ~expected:"an architecture (closedm1|openm1|conv12)" in
    let arch =
      match Pdk.Cell_arch.of_string at.Lex.text with
      | Some a -> a
      | None -> err_at at ~expected:"an architecture (closedm1|openm1|conv12)"
    in
    expect lx ";";
    expect lx "UNITS";
    expect lx "DATABASE";
    expect lx "MICRONS";
    let dt = tok lx ~expected:"an integer DBU-per-micron factor" in
    (match int_of_string_opt dt.Lex.text with
    | Some d when d = dbu_per_micron -> ()
    | _ ->
      err_at dt
        ~expected:(Printf.sprintf "%d (1 DBU = 1 nm)" dbu_per_micron));
    expect lx ";";
    expect lx "SITE";
    ignore (word lx ~expected:"a site name");
    expect lx "SIZE";
    let site_width = int_tok lx ~expected:"an integer site width" in
    expect lx "BY";
    let row_height = int_tok lx ~expected:"an integer row height" in
    expect lx ";";
    let base = Pdk.Tech.default arch in
    let m0_pitch = ref base.Pdk.Tech.m0_pitch in
    let m2_pitch = ref base.Pdk.Tech.m2_pitch in
    let m1_offset = ref base.Pdk.Tech.m1_offset in
    let rec layers () =
      match Lex.peek lx with
      | Some { Lex.text = "LAYER"; _ } ->
        ignore (Lex.next lx);
        let name = word lx ~expected:"a layer name" in
        expect lx "DIRECTION";
        let dt = tok lx ~expected:"\"HORIZONTAL\" or \"VERTICAL\"" in
        (match dt.Lex.text with
        | "HORIZONTAL" | "VERTICAL" -> ()
        | _ -> err_at dt ~expected:"\"HORIZONTAL\" or \"VERTICAL\"");
        expect lx "PITCH";
        let pitch = int_tok lx ~expected:"an integer pitch" in
        expect lx "OFFSET";
        let offset = int_tok lx ~expected:"an integer offset" in
        expect lx ";";
        (match name with
        | "M0" -> m0_pitch := pitch
        | "M1" -> m1_offset := offset
        | "M2" -> m2_pitch := pitch
        | _ -> ());
        layers ()
      | _ -> ()
    in
    layers ();
    expect lx "VM1RULES";
    expect lx "GAMMA";
    let gamma = int_tok lx ~expected:"an integer gamma (row span)" in
    expect lx "DELTA";
    let delta = int_tok lx ~expected:"an integer delta (overlap DBU)" in
    expect lx ";";
    let tech =
      {
        Pdk.Tech.arch;
        site_width;
        row_height;
        m0_pitch = !m0_pitch;
        m2_pitch = !m2_pitch;
        m1_offset = !m1_offset;
        gamma;
        delta;
      }
    in
    let rec macros acc =
      let t = tok lx ~expected:"\"MACRO\" or \"END LIBRARY\"" in
      match t.Lex.text with
      | "MACRO" -> macros (macro lx tech :: acc)
      | "END" ->
        expect lx "LIBRARY";
        List.rev acc
      | _ -> err_at t ~expected:"\"MACRO\" or \"END LIBRARY\""
    in
    let cells = macros [] in
    (match Lex.peek lx with
    | None -> ()
    | Some t -> err_at t ~expected:"end of input");
    { Pdk.Libgen.tech; cells }
  with
  | lib -> Ok lib
  | exception E e -> Error e

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse (read_whole_file path)
