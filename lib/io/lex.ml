type token = {
  text : string;
  line : int;
  col : int;
}

type error = {
  e_line : int;
  e_col : int;
  expected : string;
  got : string;
}

let error_to_string e =
  Printf.sprintf "line %d, col %d: expected %s, got %s" e.e_line e.e_col
    e.expected e.got

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
  mutable peeked : token option;
  mutable last_end : int * int;  (* (line, col) just past the last token *)
}

let make src = { src; off = 0; line = 1; col = 1; peeked = None; last_end = (1, 1) }

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false
let is_structural = function '(' | ')' | ';' -> true | _ -> false

let advance t =
  (if t.src.[t.off] = '\n' then begin
     t.line <- t.line + 1;
     t.col <- 1
   end
   else t.col <- t.col + 1);
  t.off <- t.off + 1

let rec skip_blank t =
  if t.off < String.length t.src then
    if is_space t.src.[t.off] then begin
      advance t;
      skip_blank t
    end
    else if t.src.[t.off] = '#' then begin
      while t.off < String.length t.src && t.src.[t.off] <> '\n' do
        advance t
      done;
      skip_blank t
    end

let scan t =
  skip_blank t;
  if t.off >= String.length t.src then None
  else begin
    let line = t.line and col = t.col in
    let start = t.off in
    if is_structural t.src.[t.off] then advance t
    else
      while
        t.off < String.length t.src
        && (not (is_space t.src.[t.off]))
        && not (is_structural t.src.[t.off])
      do
        advance t
      done;
    Some { text = String.sub t.src start (t.off - start); line; col }
  end

let peek t =
  match t.peeked with
  | Some _ as tok -> tok
  | None ->
    let tok = scan t in
    t.peeked <- tok;
    tok

let next t =
  match peek t with
  | None -> None
  | Some tok as r ->
    t.peeked <- None;
    t.last_end <- (tok.line, tok.col + String.length tok.text);
    r

let pos_after t = t.last_end
