(** Benchmark manifests ([vm1dp-bench-manifest/1]).

    A manifest names the designs an experiment matrix sweeps and the
    axes it sweeps them over. Designs come from two sources: the
    built-in generator ([{"generate": "m0"}], crossed with every
    arch/util/scale combination), or external DEF/LEF files
    ([{"def": "path"}], one matrix cell each — the placement is fixed,
    so the generator axes do not apply). Relative paths are resolved
    against the manifest file's directory at {!load} time.

    Example:
    {v
    { "schema": "vm1dp-bench-manifest/1",
      "name": "mini",
      "designs": [
        { "id": "m0", "generate": "m0" },
        { "id": "smoke", "def": "m0_smoke.def", "arch": "closedm1" } ],
      "archs": ["closedm1", "openm1"],
      "utils": [0.7, 0.8],
      "scales": [48] }
    v} *)

type source =
  | Generate of Netlist.Designs.name
  | External of {
      def_path : string;
      lef_path : string option;
          (** when absent, the external DEF is bound against the
              generated library for [arch] *)
      arch : Pdk.Cell_arch.t;
          (** ignored when [lef_path] is given — the LEF's [ARCH]
              statement governs *)
    }

type entry = { e_id : string; source : source }

type t = {
  m_name : string;
  entries : entry list;
  archs : Pdk.Cell_arch.t list;
  utils : float list;
  scales : int list;
}

val of_json : Obs.Json.t -> (t, string) result

(** [to_json m] re-emits the manifest; [of_json (to_json m) = Ok m]. *)
val to_json : t -> Obs.Json.t

val parse : string -> (t, string) result

(** [load path] parses the manifest file and resolves every relative
    [def]/[lef] path against [Filename.dirname path].
    @raise Sys_error when the file cannot be read. *)
val load : string -> (t, string) result

(** [digest m] is a content key over the manifest's JSON form with
    every external path replaced by a digest of the file's bytes — two
    manifests share a digest exactly when a matrix sweep over them is
    guaranteed to produce the same report, regardless of where the
    files live.
    @raise Sys_error when an external file cannot be read. *)
val digest : t -> string
