(* Standalone placement checker: reads a DEF-like dump (as written by
   vm1opt --dump or Netlist.Def_io), validates netlist integrity and
   placement legality, and reports the design's metrics; optionally
   routes it. *)

open Cmdliner

let def_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DEF"
         ~doc:"Placement dump produced by Netlist.Def_io.")

let arch =
  Arg.(value & opt string "closedm1" & info [ "arch"; "a" ]
         ~doc:"Cell architecture the dump was produced with.")

let do_route =
  Arg.(value & flag & info [ "route" ]
         ~doc:"Also route the design and report routing metrics.")

let run def_file arch do_route =
  match Pdk.Cell_arch.of_string arch with
  | None ->
    Printf.eprintf "unknown architecture %S\n" arch;
    exit 2
  | Some arch ->
    let lib = Pdk.Libgen.generate (Pdk.Tech.default arch) in
    let design, def = Netlist.Def_io.read_file lib def_file in
    print_endline (Netlist.Design.stats design);
    (match Netlist.Design.validate design with
     | [] -> print_endline "netlist: OK"
     | problems ->
       Printf.printf "netlist: %d problems\n" (List.length problems);
       List.iteri
         (fun i p -> if i < 10 then Printf.printf "  %s\n" p)
         problems);
    let p = Place.Placement.of_def design def in
    (match Place.Legalize.check p with
     | [] -> print_endline "placement: legal"
     | problems ->
       Printf.printf "placement: %d violations\n" (List.length problems);
       List.iteri
         (fun i v -> if i < 10 then Printf.printf "  %s\n" v)
         problems);
    Printf.printf "utilization: %.1f%%  HPWL: %.1f um\n"
      (100.0 *. Place.Placement.utilization p)
      (Place.Hpwl.total_um p);
    if do_route then begin
      let r = Route.Router.route p in
      Format.printf "routing: %a@." Route.Metrics.pp_summary
        (Route.Metrics.summarize r)
    end

let cmd =
  let doc = "validate and report on a placement dump" in
  Cmd.v (Cmd.info "drc" ~doc) Term.(const run $ def_file $ arch $ do_route)

let () = exit (Cmd.eval cmd)
