lib/vm1/params.mli: Pdk
