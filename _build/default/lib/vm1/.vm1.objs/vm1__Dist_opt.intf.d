lib/vm1/dist_opt.mli: Params Place Scp_solver
