lib/vm1/params.ml: Array Pdk Printf
