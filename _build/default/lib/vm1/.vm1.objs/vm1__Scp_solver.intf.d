lib/vm1/scp_solver.mli: Wproblem
