lib/vm1/objective.mli: Netlist Params Place
