lib/vm1/wproblem.ml: Align Array Bytes Char Geom Hashtbl Int List Netlist Params Pdk Place
