lib/vm1/objective.ml: Align Array List Netlist Params Pdk Place
