lib/vm1/dist_opt.ml: Array Atomic Domain List Params Place Scp_solver Window Wproblem
