lib/vm1/vm1_opt.mli: Params Place Scp_solver
