lib/vm1/wproblem.mli: Align Bytes Geom Hashtbl Netlist Params Place
