lib/vm1/formulate.mli: Milp Wproblem
