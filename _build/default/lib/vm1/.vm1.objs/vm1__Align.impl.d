lib/vm1/align.ml: Array Geom List Netlist Params Pdk Place
