lib/vm1/align.mli: Geom Netlist Params Pdk Place
