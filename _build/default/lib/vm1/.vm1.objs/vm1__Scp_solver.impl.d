lib/vm1/scp_solver.ml: Array List Random Wproblem
