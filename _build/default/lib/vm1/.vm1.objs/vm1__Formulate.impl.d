lib/vm1/formulate.ml: Align Array Hashtbl List Milp Netlist Option Params Pdk Place Printf Wproblem
