lib/vm1/window.mli: Place
