lib/vm1/vm1_opt.ml: Dist_opt List Objective Params Pdk Place Scp_solver Sys
