lib/vm1/window.ml: Array Hashtbl List Netlist Option Pdk Place
