(** Algorithm 2 (DistOpt): partition the layout into windows, then
    process diagonally-independent batches, optimising every window of a
    batch independently — in parallel over OCaml domains when [parallel]
    is set, which is the paper's distributable optimisation. The
    placement is updated after each batch, so later batches see earlier
    solutions as boundary conditions. *)

type config = {
  tx : int;            (** window-grid x offset, sites *)
  ty : int;            (** window-grid y offset, rows *)
  bw : int;            (** window width, sites *)
  bh : int;            (** window height, rows *)
  lx : int;            (** max x displacement, sites *)
  ly : int;            (** max y displacement, rows *)
  allow_flip : bool;   (** the f flag of Algorithm 1 *)
  allow_move : bool;
  mode : Scp_solver.mode;
  parallel : bool;     (** solve each diagonal batch's windows on multiple
                           domains; deterministic (identical to the
                           sequential result) because window subproblems
                           are self-contained after extraction *)
  candidate_cost : (site:int -> row:int -> float) option;
  (** static per-candidate penalty (congestion-aware extension) *)
}

type stats = {
  windows : int;
  batches : int;
  total_moves : int;
}

(** [run p params config] optimises in place. *)
val run : Place.Placement.t -> Params.t -> config -> stats
