type t = {
  alpha : float;
  beta : float;
  epsilon : float;
  gamma : int;
  closed_gamma : int;
  delta : int;
  theta : float;
  net_weights : float array option;
}

let default (tech : Pdk.Tech.t) =
  let alpha =
    match tech.arch with
    | Pdk.Cell_arch.Open_m1 -> 1000.0
    | Pdk.Cell_arch.Closed_m1 | Pdk.Cell_arch.Conventional12 -> 1200.0
  in
  {
    alpha;
    beta = 1.0;
    epsilon = 0.5;
    gamma = tech.gamma;
    closed_gamma = 1;
    delta = tech.delta;
    theta = 0.01;
    net_weights = None;
  }

type step = {
  bw_um : float;
  lx : int;
  ly : int;
}

let step bw_um lx ly = { bw_um; lx; ly }

let sequence = function
  | 1 -> [ step 20.0 4 1 ]
  | 2 -> [ step 10.0 3 1; step 10.0 4 0; step 20.0 4 0 ]
  | 3 -> [ step 10.0 3 1; step 20.0 3 1; step 20.0 3 0 ]
  | 4 -> [ step 10.0 3 1; step 20.0 3 0 ]
  | 5 -> [ step 10.0 3 1; step 10.0 3 0; step 20.0 3 1; step 20.0 3 0 ]
  | k -> invalid_arg (Printf.sprintf "Params.sequence: no sequence %d" k)

let default_sequence = sequence 1

let net_weight t nid =
  match t.net_weights with
  | Some w when nid >= 0 && nid < Array.length w -> w.(nid)
  | Some _ | None -> 1.0
