type counts = {
  hpwl_dbu : int;
  weighted_hpwl : float;
  alignments : int;
  overlap_sum : int;
}

let net_pairs (design : Netlist.Design.t) n =
  let pins = design.nets.(n).pins in
  let k = Array.length pins in
  let acc = ref [] in
  for i = 0 to k - 2 do
    for j = i + 1 to k - 1 do
      if pins.(i).inst <> pins.(j).inst then acc := (pins.(i), pins.(j)) :: !acc
    done
  done;
  !acc

let counts (params : Params.t) (p : Place.Placement.t) =
  let design = p.design in
  let tech = p.tech in
  let hpwl = ref 0 and alignments = ref 0 and overlap_sum = ref 0 in
  let weighted = ref 0.0 in
  let is_open = tech.arch = Pdk.Cell_arch.Open_m1 in
  List.iter
    (fun n ->
      let h = Place.Hpwl.net p n in
      hpwl := !hpwl + h;
      weighted := !weighted +. (Params.net_weight params n *. float_of_int h);
      List.iter
        (fun (a, b) ->
          let ga = Align.of_placed p a and gb = Align.of_placed p b in
          if is_open then begin
            let d, o = Align.overlap params tech ga gb in
            if d then begin
              incr alignments;
              overlap_sum := !overlap_sum + o
            end
          end
          else if Align.aligned params tech ga gb then incr alignments)
        (net_pairs design n))
    (Netlist.Design.signal_nets design);
  {
    hpwl_dbu = !hpwl;
    weighted_hpwl = !weighted;
    alignments = !alignments;
    overlap_sum = !overlap_sum;
  }

let value params p =
  let c = counts params p in
  (params.Params.beta *. c.weighted_hpwl)
  -. (params.Params.alpha *. float_of_int c.alignments)
  -. (params.Params.epsilon *. float_of_int c.overlap_sum)
