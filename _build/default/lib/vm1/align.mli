(** Pin-pair geometry predicates for direct vertical M1 routing: exact
    vertical alignment for ClosedM1 (the d_pq of constraint (4)) and
    x-projection overlap for OpenM1 (the d_pq / o_pq of constraints
    (11)-(14)). Shared by the global objective, the window solvers and the
    MILP formulation. *)

type pin_geom = {
  ax : int;    (** alignment x: centre of the pin's M1 track (ClosedM1) *)
  x_lo : int;  (** left edge of the pin's x-projection *)
  x_hi : int;  (** right edge of the pin's x-projection *)
  y : int;     (** pin y (bounding-box centre) *)
}

(** [of_placed p pr] is the geometry of pin [pr] at its current placement. *)
val of_placed : Place.Placement.t -> Netlist.Design.pin_ref -> pin_geom

(** [of_candidate p pr ~site ~row ~orient] is the geometry the pin would
    have if its owner cell were placed at (site, row) with [orient]. *)
val of_candidate :
  Place.Placement.t -> Netlist.Design.pin_ref ->
  site:int -> row:int -> orient:Geom.Orient.t -> pin_geom

(** [aligned params tech a b] — ClosedM1 d_pq: same M1 track and vertical
    distance within [closed_gamma] row heights. *)
val aligned : Params.t -> Pdk.Tech.t -> pin_geom -> pin_geom -> bool

(** [overlap params tech a b] — OpenM1: [(d_pq, o_pq)]. [d_pq] is true
    when the x-projections overlap by at least delta and the pins are
    within gamma row heights vertically; [o_pq] is the overlap length
    beyond delta (0 when [d_pq] is false). *)
val overlap : Params.t -> Pdk.Tech.t -> pin_geom -> pin_geom -> bool * int

(** [pair_gain params tech a b] is the objective credit of the pair:
    [alpha * d_pq + epsilon * o_pq] using the architecture's own
    predicate. *)
val pair_gain : Params.t -> Pdk.Tech.t -> pin_geom -> pin_geom -> float
