type pin_geom = {
  ax : int;
  x_lo : int;
  x_hi : int;
  y : int;
}

let of_bbox (r : Geom.Rect.t) =
  {
    ax = (r.lx + r.hx) / 2;
    x_lo = r.lx;
    x_hi = r.hx;
    y = (r.ly + r.hy) / 2;
  }

let master_pin (p : Place.Placement.t) (pr : Netlist.Design.pin_ref) =
  let m = p.design.Netlist.Design.instances.(pr.inst).master in
  (m, List.nth m.Pdk.Stdcell.pins pr.pin)

let of_placed p pr =
  let m, pin = master_pin p pr in
  of_bbox
    (Pdk.Stdcell.placed_pin_bbox m ~orient:p.orients.(pr.inst)
       ~origin:(Geom.Point.make p.xs.(pr.inst) p.ys.(pr.inst))
       pin)

let of_candidate (p : Place.Placement.t) pr ~site ~row ~orient =
  let m, pin = master_pin p pr in
  let tech = p.tech in
  let origin =
    Geom.Point.make (site * tech.Pdk.Tech.site_width)
      (row * tech.Pdk.Tech.row_height)
  in
  of_bbox (Pdk.Stdcell.placed_pin_bbox m ~orient ~origin pin)

let aligned (params : Params.t) (tech : Pdk.Tech.t) a b =
  a.ax = b.ax
  && a.y <> b.y
  && abs (a.y - b.y) <= params.closed_gamma * tech.row_height

let overlap (params : Params.t) (tech : Pdk.Tech.t) a b =
  let ov = min a.x_hi b.x_hi - max a.x_lo b.x_lo in
  if ov >= params.delta && abs (a.y - b.y) <= params.gamma * tech.row_height
  then (true, ov - params.delta)
  else (false, 0)

let pair_gain (params : Params.t) (tech : Pdk.Tech.t) a b =
  match tech.arch with
  | Pdk.Cell_arch.Open_m1 ->
    let d, o = overlap params tech a b in
    if d then params.alpha +. (params.epsilon *. float_of_int o) else 0.0
  | Pdk.Cell_arch.Closed_m1 | Pdk.Cell_arch.Conventional12 ->
    if aligned params tech a b then params.alpha else 0.0
