(** Parameters of the vertical-M1 detailed placement optimisation
    (Table 1 of the paper). *)

type t = {
  alpha : float;        (** weight of a direct-vertical-M1 pin alignment *)
  beta : float;         (** per-net HPWL weight (paper uses 1) *)
  epsilon : float;      (** weight of summed overlap lengths (OpenM1 only) *)
  gamma : int;          (** max rows a dM1 may span (OpenM1 constraint 12) *)
  closed_gamma : int;   (** row-span bound for a ClosedM1 alignment; the
                            paper's constraint (4) uses one row height *)
  delta : int;          (** min overlap length for an OpenM1 dM1, DBU *)
  theta : float;        (** convergence threshold of Algorithm 1 *)
  net_weights : float array option;
  (** optional per-net HPWL weights (the beta_n of objective (1)); [None]
      means every net weighs [beta]. The timing-driven extension (the
      paper's future work (ii)) fills this from STA criticality. *)
}

(** Paper defaults: alpha 1200 (ClosedM1) / 1000 (OpenM1), beta 1,
    gamma 3, closed_gamma 1, delta half a site, theta 1 %, uniform net
    weights. *)
val default : Pdk.Tech.t -> t

(** [net_weight t nid] is the multiplicative weight of net [nid]
    (1.0 when no table is installed). *)
val net_weight : t -> int -> float

(** One entry of the input parameter queue U of Algorithm 1: window size
    (square, in micrometres) and maximum displacement in sites / rows. *)
type step = {
  bw_um : float;
  lx : int;
  ly : int;
}

(** The five optimisation sequences evaluated in ExptA-3 (Fig. 7),
    1-indexed as in the paper. *)
val sequence : int -> step list

(** The preferred sequence selected by the paper: a single (20, 4, 1). *)
val default_sequence : step list
