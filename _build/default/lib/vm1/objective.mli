(** Global objective of the optimisation (equations (1) and (10)):

      beta * sum HPWL  -  alpha * #alignments  [- epsilon * sum overlaps]

    evaluated over all signal nets of a placement. The alignment count is
    the number of *potential* direct vertical M1 routes the placement
    offers — the router realises them after the fact. *)

type counts = {
  hpwl_dbu : int;        (** summed HPWL over signal nets, unweighted *)
  weighted_hpwl : float; (** sum of beta_n-weighted net HPWL *)
  alignments : int;      (** pin pairs satisfying the dM1 predicate *)
  overlap_sum : int;     (** summed o_pq (OpenM1; 0 for ClosedM1) *)
}

val counts : Params.t -> Place.Placement.t -> counts

(** [value params p] is the scalar objective (lower is better). *)
val value : Params.t -> Place.Placement.t -> float

(** [net_pairs design n] is the list of distinct-instance pin pairs of net
    [n] — the (p, q) pairs the formulation ranges over. *)
val net_pairs :
  Netlist.Design.t -> int -> (Netlist.Design.pin_ref * Netlist.Design.pin_ref) list
