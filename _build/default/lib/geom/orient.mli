(** Standard-cell placement orientations. Row-based placement only uses
    [N] (north) and [FN] (flipped about the y-axis); rows with inverted
    wells additionally use [S] and [FS]. Flipping about y is the "flip"
    degree of freedom of the paper's MILP (variable f_c). *)

type t = N | FN | S | FS

val flip_y : t -> t

(** [is_flipped o] is true for [FN] and [FS] — the orientations produced by
    mirroring about the vertical axis. *)
val is_flipped : t -> bool

(** [apply o ~cell_width ~cell_height rect] maps a rectangle given in the
    cell's local (N) frame into the frame of a cell placed with orientation
    [o], origin preserved at the cell's lower-left corner. *)
val apply : t -> cell_width:int -> cell_height:int -> Rect.t -> Rect.t

(** [apply_x o ~cell_width x] maps a local x coordinate. *)
val apply_x : t -> cell_width:int -> int -> int

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
