type t = { lx : int; ly : int; hx : int; hy : int }

let make ~lx ~ly ~hx ~hy = { lx; ly; hx; hy }

let of_points (a : Point.t) (b : Point.t) =
  { lx = min a.x b.x; ly = min a.y b.y; hx = max a.x b.x; hy = max a.y b.y }

let empty = { lx = 1; ly = 1; hx = 0; hy = 0 }
let is_empty r = r.lx > r.hx || r.ly > r.hy
let width r = if is_empty r then 0 else r.hx - r.lx
let height r = if is_empty r then 0 else r.hy - r.ly
let half_perimeter r = width r + height r
let area r = width r * height r
let center r = Point.make ((r.lx + r.hx) / 2) ((r.ly + r.hy) / 2)

let contains_point r (p : Point.t) =
  r.lx <= p.x && p.x <= r.hx && r.ly <= p.y && p.y <= r.hy

let overlaps a b =
  (not (is_empty a)) && (not (is_empty b))
  && a.lx <= b.hx && b.lx <= a.hx && a.ly <= b.hy && b.ly <= a.hy

let overlaps_strictly a b =
  (not (is_empty a)) && (not (is_empty b))
  && a.lx < b.hx && b.lx < a.hx && a.ly < b.hy && b.ly < a.hy

let intersect a b =
  { lx = max a.lx b.lx; ly = max a.ly b.ly;
    hx = min a.hx b.hx; hy = min a.hy b.hy }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else
    { lx = min a.lx b.lx; ly = min a.ly b.ly;
      hx = max a.hx b.hx; hy = max a.hy b.hy }

let expand r d =
  if is_empty r then r
  else { lx = r.lx - d; ly = r.ly - d; hx = r.hx + d; hy = r.hy + d }

let shift r (d : Point.t) =
  if is_empty r then r
  else { lx = r.lx + d.x; ly = r.ly + d.y; hx = r.hx + d.x; hy = r.hy + d.y }

let x_span r = if is_empty r then Interval.empty else Interval.make r.lx r.hx
let y_span r = if is_empty r then Interval.empty else Interval.make r.ly r.hy

let bbox_of_points = function
  | [] -> invalid_arg "Rect.bbox_of_points: empty list"
  | p :: ps ->
    let f acc q = union acc (of_points q q) in
    List.fold_left f (of_points p p) ps

let equal a b =
  (is_empty a && is_empty b)
  || (a.lx = b.lx && a.ly = b.ly && a.hx = b.hx && a.hy = b.hy)

let pp ppf r = Format.fprintf ppf "[%d,%d;%d,%d]" r.lx r.ly r.hx r.hy
