lib/geom/rect.ml: Format Interval List Point
