lib/geom/orient.mli: Format Rect
