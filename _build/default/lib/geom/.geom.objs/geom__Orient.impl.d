lib/geom/orient.ml: Format Rect
