type t = N | FN | S | FS

let flip_y = function N -> FN | FN -> N | S -> FS | FS -> S
let is_flipped = function FN | FS -> true | N | S -> false

let apply o ~cell_width ~cell_height (r : Rect.t) =
  if Rect.is_empty r then r
  else
    let mirror_x (r : Rect.t) =
      Rect.make ~lx:(cell_width - r.hx) ~hx:(cell_width - r.lx) ~ly:r.ly
        ~hy:r.hy
    in
    let mirror_y (r : Rect.t) =
      Rect.make ~lx:r.lx ~hx:r.hx ~ly:(cell_height - r.hy)
        ~hy:(cell_height - r.ly)
    in
    match o with
    | N -> r
    | FN -> mirror_x r
    | S -> mirror_y (mirror_x r)
    | FS -> mirror_y r

let apply_x o ~cell_width x =
  match o with N | FS -> x | FN | S -> cell_width - x

let equal a b = a = b
let to_string = function N -> "N" | FN -> "FN" | S -> "S" | FS -> "FS"
let pp ppf o = Format.pp_print_string ppf (to_string o)
