(** Axis-aligned integer rectangles, half-open in neither axis: a rect is the
    closed region [lx,hx] x [ly,hy]. A rect with [lx > hx] or [ly > hy] is
    empty. *)

type t = { lx : int; ly : int; hx : int; hy : int }

val make : lx:int -> ly:int -> hx:int -> hy:int -> t

(** [of_points a b] is the bounding box of the two points. *)
val of_points : Point.t -> Point.t -> t

val empty : t
val is_empty : t -> bool
val width : t -> int
val height : t -> int

(** [half_perimeter r] is [width r + height r], the HPWL contribution of a
    bounding box. *)
val half_perimeter : t -> int

val area : t -> int
val center : t -> Point.t
val contains_point : t -> Point.t -> bool

(** [overlaps a b] is true when the closed regions share at least one
    point. *)
val overlaps : t -> t -> bool

(** [overlaps_strictly a b] is true when the open interiors intersect, i.e.
    edge-abutting rects do not count. *)
val overlaps_strictly : t -> t -> bool

val intersect : t -> t -> t
val union : t -> t -> t

(** [expand r d] grows the rect by [d] on every side. *)
val expand : t -> int -> t

val shift : t -> Point.t -> t
val x_span : t -> Interval.t
val y_span : t -> Interval.t

(** [bbox_of_points pts] is the minimum bounding box of a non-empty list of
    points.
    @raise Invalid_argument on the empty list. *)
val bbox_of_points : Point.t list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
