(** Closed integer intervals [lo, hi]. An interval with [lo > hi] is empty. *)

type t = { lo : int; hi : int }

val make : int -> int -> t

(** [of_unordered a b] is the interval spanning [a] and [b] regardless of
    their order. *)
val of_unordered : int -> int -> t

val empty : t
val is_empty : t -> bool

(** [length i] is [hi - lo], i.e. the geometric extent; 0 for a point
    interval and negative values are clamped to 0 for empty intervals. *)
val length : t -> int

val contains : t -> int -> bool

(** [overlap a b] is the length of the intersection of [a] and [b], or a
    negative number giving minus the gap between them when disjoint. *)
val overlap : t -> t -> int

val intersect : t -> t -> t
val union : t -> t -> t
val shift : t -> int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
