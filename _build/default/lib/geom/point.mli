(** Integer points in database units (1 DBU = 1 nm). *)

type t = { x : int; y : int }

val make : int -> int -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [manhattan a b] is the L1 distance between [a] and [b]. *)
val manhattan : t -> t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
