type t = { lo : int; hi : int }

let make lo hi = { lo; hi }
let of_unordered a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let empty = { lo = 1; hi = 0 }
let is_empty i = i.lo > i.hi
let length i = if is_empty i then 0 else i.hi - i.lo
let contains i v = i.lo <= v && v <= i.hi
let overlap a b = min a.hi b.hi - max a.lo b.lo
let intersect a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let shift i d = if is_empty i then i else { lo = i.lo + d; hi = i.hi + d }
let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)
let pp ppf i = Format.fprintf ppf "[%d,%d]" i.lo i.hi
