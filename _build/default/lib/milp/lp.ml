type relation = Le | Ge | Eq

type problem = {
  ncols : int;
  objective : float array;
  rows : (float array * relation * float) list;
}

type status = Optimal | Infeasible | Unbounded | IterLimit

type solution = {
  status : status;
  objective_value : float;
  values : float array;
}

let eps = 1e-9

(* Two-phase dense primal simplex. Phase 1 minimises the sum of
   artificial variables with unit costs — no big-M constants, so reduced
   costs keep full precision; phase 2 re-installs the real objective with
   artificial columns banned from entering the basis. *)
let solve ?(iter_limit = 20_000) (p : problem) =
  let rows = Array.of_list p.rows in
  let m = Array.length rows in
  let n = p.ncols in
  (* normalise to b >= 0 *)
  let rows =
    Array.map
      (fun (a, rel, b) ->
        if b < 0.0 then
          let a' = Array.map (fun v -> -.v) a in
          let rel' = match rel with Le -> Ge | Ge -> Le | Eq -> Eq in
          (a', rel', -.b)
        else (Array.copy a, rel, b))
      rows
  in
  let n_slack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_art =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let art_start = n + n_slack in
  let width = n + n_slack + n_art + 1 in
  let t = Array.make_matrix (m + 1) width 0.0 in
  let basis = Array.make m (-1) in
  let slack_cursor = ref n in
  let art_cursor = ref art_start in
  Array.iteri
    (fun r (a, rel, b) ->
      Array.blit a 0 t.(r) 0 (min n (Array.length a));
      t.(r).(width - 1) <- b;
      match rel with
      | Le ->
        t.(r).(!slack_cursor) <- 1.0;
        basis.(r) <- !slack_cursor;
        incr slack_cursor
      | Ge ->
        t.(r).(!slack_cursor) <- -1.0;
        incr slack_cursor;
        t.(r).(!art_cursor) <- 1.0;
        basis.(r) <- !art_cursor;
        incr art_cursor
      | Eq ->
        t.(r).(!art_cursor) <- 1.0;
        basis.(r) <- !art_cursor;
        incr art_cursor)
    rows;
  let pivot r c =
    let pv = t.(r).(c) in
    for j = 0 to width - 1 do
      t.(r).(j) <- t.(r).(j) /. pv
    done;
    for i = 0 to m do
      if i <> r && abs_float t.(i).(c) > eps then begin
        let f = t.(i).(c) in
        for j = 0 to width - 1 do
          t.(i).(j) <- t.(i).(j) -. (f *. t.(r).(j))
        done
      end
    done;
    basis.(r) <- c
  in
  let iters = ref 0 in
  let bland_after = iter_limit / 2 in
  (* runs the simplex loop on the current objective row; [allowed c] gates
     entering columns. Returns the termination status. *)
  let run_simplex allowed =
    let result = ref Optimal in
    (try
       while true do
         incr iters;
         if !iters > iter_limit then begin
           result := IterLimit;
           raise Exit
         end;
         let col = ref (-1) in
         if !iters > bland_after then begin
           (try
              for j = 0 to width - 2 do
                if allowed j && t.(m).(j) < -.eps then begin
                  col := j;
                  raise Exit
                end
              done
            with Exit -> ())
         end
         else begin
           let best = ref (-.eps) in
           for j = 0 to width - 2 do
             if allowed j && t.(m).(j) < !best then begin
               best := t.(m).(j);
               col := j
             end
           done
         end;
         if !col < 0 then raise Exit (* optimal for this objective *);
         let row = ref (-1) in
         let best_ratio = ref infinity in
         for i = 0 to m - 1 do
           if t.(i).(!col) > eps then begin
             let ratio = t.(i).(width - 1) /. t.(i).(!col) in
             if
               ratio < !best_ratio -. eps
               || (ratio < !best_ratio +. eps
                   && (!row < 0 || basis.(i) < basis.(!row)))
             then begin
               best_ratio := ratio;
               row := i
             end
           end
         done;
         if !row < 0 then begin
           result := Unbounded;
           raise Exit
         end;
         pivot !row !col
       done
     with Exit -> ());
    !result
  in
  let install_objective costs =
    (* row m = costs, reduced by the basic rows *)
    Array.fill t.(m) 0 width 0.0;
    Array.iteri (fun j c -> t.(m).(j) <- c) costs;
    for r = 0 to m - 1 do
      let cb = if basis.(r) < Array.length costs then costs.(basis.(r)) else 0.0 in
      if abs_float cb > eps then
        for j = 0 to width - 1 do
          t.(m).(j) <- t.(m).(j) -. (cb *. t.(r).(j))
        done
    done
  in
  let status = ref Optimal in
  (* phase 1: minimise the artificial sum (skippable when there are no
     artificial variables) *)
  if n_art > 0 then begin
    let phase1_costs = Array.make (width - 1) 0.0 in
    for j = art_start to art_start + n_art - 1 do
      phase1_costs.(j) <- 1.0
    done;
    install_objective phase1_costs;
    (match run_simplex (fun _ -> true) with
    | Optimal ->
      (* phase-1 value = -t.(m).(width-1); infeasible when positive *)
      if -.t.(m).(width - 1) > 1e-7 then status := Infeasible
    | Unbounded ->
      (* the phase-1 objective is bounded below by 0; unbounded signals a
         numerical breakdown — report iteration trouble *)
      status := IterLimit
    | IterLimit -> status := IterLimit
    | Infeasible -> assert false)
  end;
  (* between phases: drive artificial variables out of the basis so
     phase-2 pivots cannot push them positive again. A row whose
     non-artificial entries are all zero is redundant; its artificial
     stays basic at level 0 and no later pivot can touch the row. *)
  if !status = Optimal && n_art > 0 then
    for r = 0 to m - 1 do
      if basis.(r) >= art_start then begin
        let c = ref (-1) in
        for j = 0 to art_start - 1 do
          if !c < 0 && abs_float t.(r).(j) > 1e-7 then c := j
        done;
        if !c >= 0 then pivot r !c
      end
    done;
  (* phase 2: the real objective, artificial columns banned *)
  if !status = Optimal then begin
    let phase2_costs = Array.make (width - 1) 0.0 in
    Array.blit p.objective 0 phase2_costs 0 n;
    install_objective phase2_costs;
    let allowed j = j < art_start in
    status := run_simplex allowed
  end;
  let values = Array.make n 0.0 in
  for r = 0 to m - 1 do
    if basis.(r) < n then values.(basis.(r)) <- t.(r).(width - 1)
  done;
  let objective_value =
    match !status with
    | Optimal ->
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (p.objective.(j) *. values.(j))
      done;
      !acc
    | Infeasible | Unbounded | IterLimit -> nan
  in
  { status = !status; objective_value; values }
