(** Branch-and-bound MILP solver over [Model] with LP-relaxation bounds.

    Depth-first with the LP-suggested branch explored first; prunes on
    bound against the incumbent. A node limit makes it an anytime solver:
    with the limit hit, the best incumbent found so far is returned with
    status [Node_limit] (mirroring the role a CPLEX time limit plays in
    the paper's flow). *)

type status = Optimal | Infeasible | Node_limit

type solution = {
  status : status;
  objective_value : float;       (** meaningful unless [Infeasible] *)
  values : float array;          (** original variable space *)
  nodes_explored : int;
}

(** [solve ?node_limit m] minimises the model's objective with all binary
    variables integral. *)
val solve : ?node_limit:int -> Model.t -> solution
