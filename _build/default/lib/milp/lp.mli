(** Dense primal simplex for linear programs in the form

      minimize c.x  subject to  A x (<= | = | >=) b,  x >= 0.

    Two-phase method (phase 1 minimises the artificial-variable sum, so
    no big-M constants pollute the reduced costs), largest-coefficient
    pivoting with a Bland's-rule fallback to guarantee termination.
    Intended for
    the window-sized MILPs of the detailed-placement formulation (hundreds
    of rows/columns); not a large-scale solver. *)

type relation = Le | Ge | Eq

type problem = {
  ncols : int;
  objective : float array;            (** length ncols *)
  rows : (float array * relation * float) list;
}

type status = Optimal | Infeasible | Unbounded | IterLimit

type solution = {
  status : status;
  objective_value : float;
  values : float array;
}

(** [solve ?iter_limit p] minimises the objective. *)
val solve : ?iter_limit:int -> problem -> solution
