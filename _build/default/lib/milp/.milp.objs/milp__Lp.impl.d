lib/milp/lp.ml: Array
