lib/milp/model.ml: Array List Lp
