lib/milp/bnb.mli: Model
