lib/milp/model.mli: Lp
