lib/milp/lp.mli:
