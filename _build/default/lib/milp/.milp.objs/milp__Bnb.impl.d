lib/milp/bnb.ml: Array Float List Lp Model
