let net_bbox (p : Placement.t) n =
  let net = p.design.Netlist.Design.nets.(n) in
  Array.fold_left
    (fun acc pr ->
      let pos = Placement.pin_pos p pr in
      Geom.Rect.union acc (Geom.Rect.of_points pos pos))
    Geom.Rect.empty net.pins

let net p n =
  if Netlist.Design.net_degree p.Placement.design n < 2 then 0
  else Geom.Rect.half_perimeter (net_bbox p n)

let total p =
  List.fold_left
    (fun acc n -> acc + net p n)
    0
    (Netlist.Design.signal_nets p.Placement.design)

let total_um p = float_of_int (total p) /. 1000.0
