(** Tetris-style row legalisation.

    Cells are processed in order of target x; each is assigned to the row
    minimising displacement from its target position, packed against the
    row's current right edge and snapped to the site grid. The result is a
    legal placement: site-aligned, row-aligned, no overlaps, inside the
    die. *)

(** [legalize p] legalises in place, using the current coordinates as
    targets.
    @raise Failure if the die cannot accommodate the cells. *)
val legalize : Placement.t -> unit

(** [check p] returns human-readable legality violations (empty = legal):
    off-grid coordinates, cells outside the die, overlapping cells. *)
val check : Placement.t -> string list
