(** Global placement: quadratic-style relaxation in float space
    (centroid pull with periodic rescaling to counter contraction),
    order-preserving slot assignment into rows, then a few legalised
    refinement passes. Deterministic. The result is a legal,
    locality-preserving placement — the starting point the paper obtains
    from the commercial P&R tool. *)

type config = {
  relax_passes : int;      (** legalised refinement rounds *)
  blend : float;           (** refinement step toward the centroid *)
  float_iters : int;       (** free-floating quadratic iterations *)
  reassign_rounds : int;   (** relax -> slot-assign -> legalise rounds *)
}

val default_config : config

(** [place ?config p] runs global placement in place; the result passes
    [Legalize.check]. *)
val place : ?config:config -> Placement.t -> unit
