(** Half-perimeter wirelength over pin positions. *)

(** [net_bbox p n] is the bounding box of all pin positions of net [n]. *)
val net_bbox : Placement.t -> int -> Geom.Rect.t

(** [net p n] is the HPWL of net [n] in DBU. Nets with fewer than two pins
    have HPWL 0. *)
val net : Placement.t -> int -> int

(** [total p] is the summed HPWL of all signal nets (clock and dangling
    nets excluded, matching the paper's reporting). *)
val total : Placement.t -> int

(** [total_um p] is [total p] converted to micrometres. *)
val total_um : Placement.t -> float
