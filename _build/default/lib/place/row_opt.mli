(** Classical HPWL-driven ordered single-row detailed placement with free
    sites, solved optimally per row by dynamic programming (after Kahng,
    Tucker and Zelikovsky, ASPDAC 1999 — the first related-work category
    the paper contrasts itself against).

    Cells keep their left-to-right order within the row; the DP
    distributes the row's free sites to minimise the summed HPWL of all
    incident nets, with every other row fixed. This is the "traditional
    wirelength-driven detailed placement" baseline: it reduces HPWL and
    routed wirelength but is blind to vertical M1 alignment. *)

(** [optimize_row p ~row] optimally re-spaces the cells of [row] (order
    preserved). Returns the HPWL improvement in DBU (>= 0). *)
val optimize_row : Placement.t -> row:int -> int

(** [optimize ?passes p] sweeps all rows [passes] times (default 2).
    Returns the total HPWL improvement in DBU. The placement stays
    legal. *)
val optimize : ?passes:int -> Placement.t -> int
