(** Placement database: per-instance lower-left coordinates and
    orientations over a row/site grid. Coordinates are mutable (detailed
    placement perturbs them in place); use [copy] to snapshot.

    Invariants maintained by the legaliser and required by the router and
    the vertical-M1 optimiser: x is a multiple of the site width, y is a
    multiple of the row height, and cells within a row do not overlap. *)

type t = {
  design : Netlist.Design.t;
  tech : Pdk.Tech.t;
  die : Geom.Rect.t;
  num_rows : int;
  sites_per_row : int;
  xs : int array;
  ys : int array;
  orients : Geom.Orient.t array;
}

(** [create design ~utilization] sizes a near-square die for the given row
    utilisation and returns a placement with every cell at the origin
    (illegal; run the global placer + legaliser next). *)
val create : Netlist.Design.t -> utilization:float -> t

val copy : t -> t

(** [assign dst src] copies coordinates and orientations of [src] into
    [dst] (same design). *)
val assign : t -> t -> unit

val num_instances : t -> int

(** [instance_rect t i] is the footprint of instance [i]. *)
val instance_rect : t -> int -> Geom.Rect.t

(** [pin_pos t pr] is the centre of the pin's bounding box in chip
    coordinates, the point used for HPWL and routing. *)
val pin_pos : t -> Netlist.Design.pin_ref -> Geom.Point.t

(** [pin_shapes t pr] is the pin's placed physical shapes. *)
val pin_shapes : t -> Netlist.Design.pin_ref -> (Pdk.Layer.t * Geom.Rect.t) list

(** [pin_x_interval t pr] is the x-projection of the pin's placed bounding
    box (the interval whose overlap drives OpenM1 dM1 feasibility). *)
val pin_x_interval : t -> Netlist.Design.pin_ref -> Geom.Interval.t

val row_of_inst : t -> int -> int
val site_of_inst : t -> int -> int

(** [move t i ~site ~row ~orient] places instance [i]'s lower-left corner
    at the given site/row. No legality check. *)
val move : t -> int -> site:int -> row:int -> orient:Geom.Orient.t -> unit

(** [inside_die t i] is true when instance [i]'s footprint lies within the
    core area. *)
val inside_die : t -> int -> bool

(** [overlap_count t] is the number of pairs of cells whose footprints
    overlap strictly (0 for a legal placement). O(n log n). *)
val overlap_count : t -> int

(** [utilization t] is total cell area / core area. *)
val utilization : t -> float

val to_def : t -> Netlist.Def_io.placement
val of_def : Netlist.Design.t -> Netlist.Def_io.placement -> t
