lib/place/row_opt.ml: Array Geom Hashtbl Hpwl Int List Netlist Pdk Placement
