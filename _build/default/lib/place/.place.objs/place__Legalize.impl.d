lib/place/legalize.ml: Array Int List Netlist Pdk Placement Printf
