lib/place/placement.ml: Array Float Geom Hashtbl Int List Netlist Option Pdk
