lib/place/hpwl.mli: Geom Placement
