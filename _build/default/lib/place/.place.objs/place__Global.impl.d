lib/place/global.ml: Array Float Geom Hpwl Legalize List Netlist Pdk Placement
