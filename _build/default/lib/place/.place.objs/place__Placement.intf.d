lib/place/placement.mli: Geom Netlist Pdk
