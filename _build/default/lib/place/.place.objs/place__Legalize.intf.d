lib/place/legalize.mli: Placement
