lib/place/hpwl.ml: Array Geom List Netlist Placement
