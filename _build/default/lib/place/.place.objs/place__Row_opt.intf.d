lib/place/row_opt.mli: Placement
