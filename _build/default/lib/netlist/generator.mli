(** Seeded synthetic netlist generator.

    The optimisation and routing substrates consume only netlist
    *statistics* — instance count, cell mix, fanout distribution and
    logical locality — so the generator is calibrated to produce
    synthesised-design-like netlists: a configurable flip-flop fraction, a
    geometric fanout distribution, and id-locality of connections (which
    global placement converts into spatial locality, mimicking the
    clustered netlists Design Compiler emits).

    Combinational edges always point from a lower instance id to a higher
    one, so the combinational core is acyclic and the STA substrate can
    levelise it; flip-flop outputs and primary inputs are timing launch
    points. *)

type config = {
  n_instances : int;
  seed : int;
  dff_fraction : float;       (** fraction of instances that are flip-flops *)
  pi_fraction : float;        (** probability an input pin ties to a PI net *)
  locality_window : int;      (** mean id distance of a connection *)
  global_fraction : float;    (** probability a connection ignores locality *)
}

(** Defaults: 10 % flip-flops, 2 % PI connections, locality window 60,
    3 % global connections. *)
val default_config : n_instances:int -> seed:int -> config

(** [generate lib config ~name] builds a design bound to [lib]. The result
    always passes [Design.validate]. *)
val generate : Pdk.Libgen.t -> config -> name:string -> Design.t
