type pin_ref = { inst : int; pin : int }

type instance = {
  inst_name : string;
  master : Pdk.Stdcell.t;
  pin_nets : int array;
}

type net = {
  net_name : string;
  pins : pin_ref array;
  is_clock : bool;
}

type t = {
  name : string;
  lib : Pdk.Libgen.t;
  instances : instance array;
  nets : net array;
}

let num_instances t = Array.length t.instances
let num_nets t = Array.length t.nets

let signal_nets t =
  let acc = ref [] in
  for n = Array.length t.nets - 1 downto 0 do
    let net = t.nets.(n) in
    if (not net.is_clock) && Array.length net.pins >= 2 then acc := n :: !acc
  done;
  !acc

let instance_master t i = t.instances.(i).master

let pin_master_pin t pr =
  List.nth (instance_master t pr.inst).pins pr.pin

let nets_of_instance t i =
  let inst = t.instances.(i) in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun n ->
      if n >= 0 && not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        acc := n :: !acc
      end)
    inst.pin_nets;
  List.rev !acc

let net_degree t n = Array.length t.nets.(n).pins

let validate t =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let ni = num_instances t and nn = num_nets t in
  Array.iteri
    (fun i inst ->
      let npins = List.length inst.master.Pdk.Stdcell.pins in
      if Array.length inst.pin_nets <> npins then
        report "instance %d: pin_nets length %d <> master pins %d" i
          (Array.length inst.pin_nets) npins;
      Array.iteri
        (fun p n ->
          if n >= nn then report "instance %d pin %d: net %d out of range" i p n;
          if n >= 0 then begin
            let net = t.nets.(n) in
            let found =
              Array.exists (fun pr -> pr.inst = i && pr.pin = p) net.pins
            in
            if not found then
              report "instance %d pin %d: net %d does not list it back" i p n
          end)
        inst.pin_nets)
    t.instances;
  Array.iteri
    (fun n net ->
      let drivers = ref 0 in
      Array.iter
        (fun pr ->
          if pr.inst < 0 || pr.inst >= ni then
            report "net %d: instance %d out of range" n pr.inst
          else begin
            let master = instance_master t pr.inst in
            let npins = List.length master.Pdk.Stdcell.pins in
            if pr.pin < 0 || pr.pin >= npins then
              report "net %d: pin index %d out of range for %s" n pr.pin
                master.Pdk.Stdcell.name
            else begin
              let mp = List.nth master.Pdk.Stdcell.pins pr.pin in
              if mp.Pdk.Stdcell.dir = Pdk.Stdcell.Output then incr drivers;
              if t.instances.(pr.inst).pin_nets.(pr.pin) <> n then
                report "net %d: instance %d pin %d points to net %d" n pr.inst
                  pr.pin
                  t.instances.(pr.inst).pin_nets.(pr.pin)
            end
          end)
        net.pins;
      if !drivers > 1 then report "net %d: %d drivers" n !drivers)
    t.nets;
  List.rev !problems

let stats t =
  let nsig = List.length (signal_nets t) in
  let total_pins =
    Array.fold_left (fun acc net -> acc + Array.length net.pins) 0 t.nets
  in
  Printf.sprintf "%s: %d instances, %d nets (%d signal), %.2f pins/net" t.name
    (num_instances t) (num_nets t) nsig
    (if num_nets t = 0 then 0.0
     else float_of_int total_pins /. float_of_int (num_nets t))
