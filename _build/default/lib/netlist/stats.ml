let fanout_histogram (d : Design.t) =
  let hist = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let fanout = Design.net_degree d n - 1 in
      Hashtbl.replace hist fanout
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist fanout)))
    (Design.signal_nets d);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let average_fanout (d : Design.t) =
  let nets = Design.signal_nets d in
  match nets with
  | [] -> 0.0
  | _ ->
    let total =
      List.fold_left (fun acc n -> acc + Design.net_degree d n - 1) 0 nets
    in
    float_of_int total /. float_of_int (List.length nets)

let logic_depth (d : Design.t) =
  (* generated combinational edges point from lower to higher instance id,
     so a single id-ordered pass computes the longest chain *)
  let n = Design.num_instances d in
  let depth = Array.make n 0 in
  for i = 0 to n - 1 do
    let inst = d.instances.(i) in
    let m = inst.Design.master in
    if not (Pdk.Stdcell.is_sequential m) then begin
      let best = ref 0 in
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          if pin.Pdk.Stdcell.dir = Pdk.Stdcell.Input then begin
            let nid = inst.Design.pin_nets.(k) in
            if nid >= 0 && Array.length d.nets.(nid).Design.pins > 0 then begin
              let drv = d.nets.(nid).Design.pins.(0) in
              let dm = Design.instance_master d drv.Design.inst in
              let is_comb_driver =
                (List.nth dm.Pdk.Stdcell.pins drv.Design.pin).Pdk.Stdcell.dir
                = Pdk.Stdcell.Output
                && (not (Pdk.Stdcell.is_sequential dm))
                && drv.Design.inst < i
              in
              if is_comb_driver then best := max !best depth.(drv.Design.inst)
            end
          end)
        m.Pdk.Stdcell.pins;
      depth.(i) <- !best + 1
    end
  done;
  Array.fold_left max 0 depth

let pin_count (d : Design.t) =
  Array.fold_left
    (fun acc (net : Design.net) -> acc + Array.length net.Design.pins)
    0 d.nets

let report (d : Design.t) =
  Printf.sprintf
    "%s: %d instances, %d signal nets, avg fanout %.2f, logic depth %d, %d pins"
    d.Design.name (Design.num_instances d)
    (List.length (Design.signal_nets d))
    (average_fanout d) (logic_depth d) (pin_count d)
