(** Compact DEF-like text interchange for a design plus a placement.

    The format carries the die area, one COMPONENTS line per instance
    (name, master, x, y, orientation) and one NETS line per net. It
    round-trips exactly: [read lib (write d p)] reconstructs the same
    connectivity and placement. *)

type placement = {
  die : Geom.Rect.t;
  xs : int array;          (** lower-left x per instance id *)
  ys : int array;          (** lower-left y per instance id *)
  orients : Geom.Orient.t array;
}

val write : Design.t -> placement -> string
val write_file : string -> Design.t -> placement -> unit

(** [read lib s] parses a dump produced by [write]. Masters are resolved in
    [lib].
    @raise Failure on malformed input. *)
val read : Pdk.Libgen.t -> string -> Design.t * placement

val read_file : Pdk.Libgen.t -> string -> Design.t * placement
