lib/netlist/generator.ml: Array Design List Pdk Printf Random
