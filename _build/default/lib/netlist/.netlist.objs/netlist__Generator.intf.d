lib/netlist/generator.mli: Design Pdk
