lib/netlist/def_io.mli: Design Geom Pdk
