lib/netlist/design.mli: Pdk
