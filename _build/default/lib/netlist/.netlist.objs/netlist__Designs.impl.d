lib/netlist/designs.ml: Generator Pdk
