lib/netlist/stats.mli: Design
