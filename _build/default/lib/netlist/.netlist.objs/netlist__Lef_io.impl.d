lib/netlist/lef_io.ml: Buffer Fun Geom List Pdk Printf String
