lib/netlist/stats.ml: Array Design Hashtbl Int List Option Pdk Printf
