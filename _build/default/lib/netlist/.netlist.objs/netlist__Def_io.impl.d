lib/netlist/def_io.ml: Array Buffer Design Fun Geom Hashtbl List Pdk Printf String
