lib/netlist/lef_io.mli: Pdk
