lib/netlist/design.ml: Array Hashtbl List Pdk Printf
