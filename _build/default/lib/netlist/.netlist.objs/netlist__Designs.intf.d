lib/netlist/designs.mli: Design Pdk
