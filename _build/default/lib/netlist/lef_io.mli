(** Compact LEF-like text dump of a generated library: site, per-macro
    size, pin directions and shapes, and the electrical model (as PROPERTY
    lines, so the dump is self-contained). Round-trips against [read]. *)

val write : Pdk.Libgen.t -> string
val write_file : string -> Pdk.Libgen.t -> unit

(** [read s] reconstructs the library.
    @raise Failure on malformed input. *)
val read : string -> Pdk.Libgen.t

val read_file : string -> Pdk.Libgen.t
