type placement = {
  die : Geom.Rect.t;
  xs : int array;
  ys : int array;
  orients : Geom.Orient.t array;
}

let orient_of_string = function
  | "N" -> Geom.Orient.N
  | "FN" -> Geom.Orient.FN
  | "S" -> Geom.Orient.S
  | "FS" -> Geom.Orient.FS
  | s -> failwith (Printf.sprintf "Def_io: bad orientation %S" s)

let write (d : Design.t) (p : placement) =
  let buf = Buffer.create (1 lsl 16) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "VERSION 1\n";
  addf "DESIGN %s\n" d.name;
  addf "DIEAREA %d %d %d %d\n" p.die.Geom.Rect.lx p.die.ly p.die.hx p.die.hy;
  addf "COMPONENTS %d\n" (Array.length d.instances);
  Array.iteri
    (fun i (inst : Design.instance) ->
      addf "- %s %s PLACED %d %d %s\n" inst.inst_name
        inst.master.Pdk.Stdcell.name p.xs.(i) p.ys.(i)
        (Geom.Orient.to_string p.orients.(i)))
    d.instances;
  addf "END COMPONENTS\n";
  addf "NETS %d\n" (Array.length d.nets);
  Array.iter
    (fun (net : Design.net) ->
      addf "- %s%s" net.net_name (if net.is_clock then " CLOCK" else "");
      Array.iter
        (fun (pr : Design.pin_ref) ->
          let inst = d.instances.(pr.inst) in
          let mp = List.nth inst.master.Pdk.Stdcell.pins pr.pin in
          addf " ( %s %s )" inst.inst_name mp.Pdk.Stdcell.pin_name)
        net.pins;
      addf "\n")
    d.nets;
  addf "END NETS\n";
  addf "END DESIGN\n";
  Buffer.contents buf

let write_file path d p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write d p))

let tokens_of_line line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let read (lib : Pdk.Libgen.t) s =
  let lines = String.split_on_char '\n' s in
  let design_name = ref "" in
  let die = ref Geom.Rect.empty in
  let comps = ref [] and ncomps = ref 0 in
  let nets = ref [] and nnets = ref 0 in
  let mode = ref `Top in
  let fail line msg = failwith (Printf.sprintf "Def_io: %s in %S" msg line) in
  List.iter
    (fun line ->
      match (tokens_of_line line, !mode) with
      | [], _ -> ()
      | [ "VERSION"; _ ], `Top -> ()
      | [ "DESIGN"; n ], `Top -> design_name := n
      | [ "DIEAREA"; a; b; c; d ], `Top ->
        die :=
          Geom.Rect.make ~lx:(int_of_string a) ~ly:(int_of_string b)
            ~hx:(int_of_string c) ~hy:(int_of_string d)
      | [ "COMPONENTS"; n ], `Top ->
        ncomps := int_of_string n;
        mode := `Components
      | [ "END"; "COMPONENTS" ], `Components -> mode := `Top
      | "-" :: name :: master :: "PLACED" :: x :: y :: [ o ], `Components ->
        comps :=
          (name, master, int_of_string x, int_of_string y, orient_of_string o)
          :: !comps
      | [ "NETS"; n ], `Top ->
        nnets := int_of_string n;
        mode := `Nets
      | [ "END"; "NETS" ], `Nets -> mode := `Top
      | "-" :: name :: rest, `Nets ->
        let is_clock, rest =
          match rest with
          | "CLOCK" :: tl -> (true, tl)
          | _ -> (false, rest)
        in
        let rec parse_pins acc = function
          | [] -> List.rev acc
          | "(" :: inst :: pin :: ")" :: tl -> parse_pins ((inst, pin) :: acc) tl
          | _ -> fail line "bad pin list"
        in
        nets := (name, is_clock, parse_pins [] rest) :: !nets
      | [ "END"; "DESIGN" ], `Top -> ()
      | _, _ -> fail line "unexpected line"
    )
    lines;
  let comps = Array.of_list (List.rev !comps) in
  let nets_raw = Array.of_list (List.rev !nets) in
  if Array.length comps <> !ncomps then failwith "Def_io: COMPONENTS count mismatch";
  if Array.length nets_raw <> !nnets then failwith "Def_io: NETS count mismatch";
  let inst_index = Hashtbl.create (Array.length comps) in
  Array.iteri
    (fun i (name, _, _, _, _) -> Hashtbl.replace inst_index name i)
    comps;
  let masters =
    Array.map (fun (_, mname, _, _, _) -> Pdk.Libgen.find lib mname) comps
  in
  let pin_nets =
    Array.map
      (fun (m : Pdk.Stdcell.t) -> Array.make (List.length m.pins) (-1))
      masters
  in
  let pin_index master_pins pname =
    let rec go k = function
      | [] -> failwith (Printf.sprintf "Def_io: unknown pin %s" pname)
      | (p : Pdk.Stdcell.pin) :: rest ->
        if String.equal p.pin_name pname then k else go (k + 1) rest
    in
    go 0 master_pins
  in
  let nets =
    Array.mapi
      (fun nid (name, is_clock, pins) ->
        let pin_refs =
          List.map
            (fun (iname, pname) ->
              let i =
                match Hashtbl.find_opt inst_index iname with
                | Some i -> i
                | None -> failwith (Printf.sprintf "Def_io: unknown instance %s" iname)
              in
              let k = pin_index masters.(i).Pdk.Stdcell.pins pname in
              pin_nets.(i).(k) <- nid;
              { Design.inst = i; pin = k })
            pins
        in
        { Design.net_name = name; pins = Array.of_list pin_refs; is_clock })
      nets_raw
  in
  let instances =
    Array.mapi
      (fun i (name, _, _, _, _) ->
        { Design.inst_name = name; master = masters.(i); pin_nets = pin_nets.(i) })
      comps
  in
  let design =
    { Design.name = !design_name; lib; instances; nets }
  in
  let placement =
    {
      die = !die;
      xs = Array.map (fun (_, _, x, _, _) -> x) comps;
      ys = Array.map (fun (_, _, _, y, _) -> y) comps;
      orients = Array.map (fun (_, _, _, _, o) -> o) comps;
    }
  in
  (design, placement)

let read_file lib path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      read lib (really_input_string ic n))
