let dir_to_string = function
  | Pdk.Stdcell.Input -> "INPUT"
  | Pdk.Stdcell.Output -> "OUTPUT"
  | Pdk.Stdcell.Clock -> "CLOCK"

let dir_of_string = function
  | "INPUT" -> Pdk.Stdcell.Input
  | "OUTPUT" -> Pdk.Stdcell.Output
  | "CLOCK" -> Pdk.Stdcell.Clock
  | s -> failwith (Printf.sprintf "Lef_io: bad direction %S" s)

let kind_to_string = function
  | Pdk.Stdcell.Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Fill -> "FILL"

let kind_of_string = function
  | "INV" -> Pdk.Stdcell.Inv
  | "BUF" -> Buf
  | "NAND2" -> Nand2
  | "NOR2" -> Nor2
  | "AND2" -> And2
  | "OR2" -> Or2
  | "AOI21" -> Aoi21
  | "OAI21" -> Oai21
  | "XOR2" -> Xor2
  | "XNOR2" -> Xnor2
  | "MUX2" -> Mux2
  | "DFF" -> Dff
  | "FILL" -> Fill
  | s -> failwith (Printf.sprintf "Lef_io: bad kind %S" s)

let layer_of_string s =
  match s with
  | "M0" -> Pdk.Layer.M0
  | "M1" -> Pdk.Layer.M1
  | "M2" -> Pdk.Layer.M2
  | "M3" -> Pdk.Layer.M3
  | "M4" -> Pdk.Layer.M4
  | _ -> failwith (Printf.sprintf "Lef_io: bad layer %S" s)

let write (lib : Pdk.Libgen.t) =
  let t = lib.tech in
  let buf = Buffer.create (1 lsl 14) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "LIBRARY %s\n" (Pdk.Cell_arch.to_string t.arch);
  addf "TECH %d %d %d %d %d %d %d\n" t.site_width t.row_height t.m0_pitch
    t.m2_pitch t.m1_offset t.gamma t.delta;
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      addf "MACRO %s %s %d %d\n" c.name (kind_to_string c.kind) c.drive
        c.width_sites;
      addf "PROPERTY %.4f %.4f %.4f %.4f\n" c.cap_in c.drive_res
        c.intrinsic_delay c.leakage;
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          addf "PIN %s %s\n" p.pin_name (dir_to_string p.dir);
          List.iter
            (fun (layer, (r : Geom.Rect.t)) ->
              addf "RECT %s %d %d %d %d\n" (Pdk.Layer.to_string layer) r.lx
                r.ly r.hx r.hy)
            p.shapes;
          addf "END PIN\n")
        c.pins;
      addf "END MACRO\n")
    lib.cells;
  addf "END LIBRARY\n";
  Buffer.contents buf

let write_file path lib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write lib))

let read s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter_map (fun l ->
           let toks =
             String.split_on_char ' ' l |> List.filter (fun t -> t <> "")
           in
           if toks = [] then None else Some toks)
  in
  let arch = ref Pdk.Cell_arch.Closed_m1 in
  let tech = ref (Pdk.Tech.default Pdk.Cell_arch.Closed_m1) in
  let cells = ref [] in
  (* mutable per-macro parse state *)
  let cur_macro = ref None in
  let cur_props = ref (0.0, 0.0, 0.0, 0.0) in
  let cur_pins = ref [] in
  let cur_pin = ref None in
  let cur_shapes = ref [] in
  let finish_pin () =
    match !cur_pin with
    | None -> ()
    | Some (name, dir) ->
      cur_pins :=
        { Pdk.Stdcell.pin_name = name; dir; shapes = List.rev !cur_shapes }
        :: !cur_pins;
      cur_pin := None;
      cur_shapes := []
  in
  let finish_macro () =
    match !cur_macro with
    | None -> ()
    | Some (name, kind, drive, width_sites) ->
      let cap_in, drive_res, intrinsic_delay, leakage = !cur_props in
      let t = !tech in
      cells :=
        {
          Pdk.Stdcell.name;
          kind;
          drive;
          width_sites;
          width = width_sites * t.site_width;
          height = t.row_height;
          pins = List.rev !cur_pins;
          cap_in;
          drive_res;
          intrinsic_delay;
          leakage;
        }
        :: !cells;
      cur_macro := None;
      cur_pins := []
  in
  List.iter
    (fun toks ->
      match toks with
      | [ "LIBRARY"; a ] -> begin
        match Pdk.Cell_arch.of_string a with
        | Some v ->
          arch := v;
          tech := Pdk.Tech.default v
        | None -> failwith (Printf.sprintf "Lef_io: bad arch %S" a)
      end
      | [ "TECH"; sw; rh; m0; m2; m1o; g; d ] ->
        tech :=
          {
            Pdk.Tech.arch = !arch;
            site_width = int_of_string sw;
            row_height = int_of_string rh;
            m0_pitch = int_of_string m0;
            m2_pitch = int_of_string m2;
            m1_offset = int_of_string m1o;
            gamma = int_of_string g;
            delta = int_of_string d;
          }
      | [ "MACRO"; name; kind; drive; ws ] ->
        cur_macro :=
          Some (name, kind_of_string kind, int_of_string drive, int_of_string ws)
      | [ "PROPERTY"; a; b; c; d ] ->
        cur_props :=
          (float_of_string a, float_of_string b, float_of_string c,
           float_of_string d)
      | [ "PIN"; name; dir ] -> cur_pin := Some (name, dir_of_string dir)
      | [ "RECT"; layer; lx; ly; hx; hy ] ->
        cur_shapes :=
          ( layer_of_string layer,
            Geom.Rect.make ~lx:(int_of_string lx) ~ly:(int_of_string ly)
              ~hx:(int_of_string hx) ~hy:(int_of_string hy) )
          :: !cur_shapes
      | [ "END"; "PIN" ] -> finish_pin ()
      | [ "END"; "MACRO" ] -> finish_macro ()
      | [ "END"; "LIBRARY" ] -> ()
      | _ ->
        failwith
          (Printf.sprintf "Lef_io: unexpected line %S" (String.concat " " toks)))
    lines;
  { Pdk.Libgen.tech = !tech; cells = List.rev !cells }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      read (really_input_string ic n))
