(** Design database: instances bound to library masters, and nets
    connecting (instance, pin) pairs. Instances and nets are identified by
    dense integer ids so downstream substrates (placement, routing, MILP
    formulation) can use flat arrays.

    The clock net, when present, is marked special: commercial flows route
    the clock with a dedicated clock router, so the detailed-routing
    metrics of the paper (RWL, #via12, M1 WL, DRVs) cover signal nets
    only. We follow that convention. *)

type pin_ref = { inst : int; pin : int }
(** [pin] indexes into the master's [pins] list of instance [inst]. *)

type instance = {
  inst_name : string;
  master : Pdk.Stdcell.t;
  pin_nets : int array;  (** net id per master pin index; -1 = unconnected *)
}

type net = {
  net_name : string;
  pins : pin_ref array;  (** driver first when the net has one *)
  is_clock : bool;
}

type t = {
  name : string;
  lib : Pdk.Libgen.t;
  instances : instance array;
  nets : net array;
}

val num_instances : t -> int
val num_nets : t -> int

(** [signal_nets t] is the ids of nets with >= 2 pins that are not the
    clock — the nets that participate in routing and HPWL. *)
val signal_nets : t -> int list

(** [instance_master t i] is the master of instance [i]. *)
val instance_master : t -> int -> Pdk.Stdcell.t

(** [pin_master_pin t pr] resolves a pin reference to its master pin. *)
val pin_master_pin : t -> pin_ref -> Pdk.Stdcell.pin

(** [nets_of_instance t i] is the distinct ids of nets touching instance
    [i]. *)
val nets_of_instance : t -> int -> int list

(** [net_degree t n] is the number of pins on net [n]. *)
val net_degree : t -> int -> int

(** [validate t] checks referential integrity: every pin reference is in
    range, pin_nets and net pin lists agree, and each net has at most one
    driver. Returns the list of human-readable problems (empty = valid). *)
val validate : t -> string list

(** [stats t] is a one-line summary (instances, nets, average degree). *)
val stats : t -> string
