(** Structural statistics of a design: the quantities the synthetic
    generator is calibrated against (see DESIGN.md) and the knobs that
    drive placement/routing difficulty. *)

(** [fanout_histogram d] maps signal-net fanout (sink count) to the
    number of nets with that fanout, ascending. *)
val fanout_histogram : Design.t -> (int * int) list

(** [average_fanout d] is the mean sink count over signal nets. *)
val average_fanout : Design.t -> float

(** [logic_depth d] is the longest combinational chain (in cells) from a
    launch point (primary input or flip-flop output) to a capture point;
    well-defined because generated combinational edges are acyclic. *)
val logic_depth : Design.t -> int

(** [pin_count d] is the total number of connected pins. *)
val pin_count : Design.t -> int

(** [report d] is a human-readable one-paragraph summary. *)
val report : Design.t -> string
