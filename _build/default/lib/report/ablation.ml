let sample_windows ?(scale = 32) ?(windows = 8) () =
  let p = Flow.prepare ~scale Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1 in
  let params = Vm1.Params.default p.Place.Placement.tech in
  let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
  let small =
    Array.to_list ws
    |> List.filter (fun (w : Vm1.Window.t) ->
           let k = List.length w.movable in
           k >= 2 && k <= 4)
  in
  let selected = List.filteri (fun i _ -> i < windows) small in
  (p, params, selected)

let extract p params (w : Vm1.Window.t) =
  Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo ~bw:w.bw
    ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:false
    ~allow_move:true

module Solver_ladder = struct
  type point = {
    solver : string;
    total_objective : float;
    runtime_s : float;
    optimal_gap : float;
  }

  let run ?scale ?windows () =
    let p, params, ws = sample_windows ?scale ?windows () in
    let measure name solve =
      let t0 = Unix.gettimeofday () in
      let total =
        List.fold_left
          (fun acc w ->
            let prob = extract p params w in
            solve prob;
            acc +. Vm1.Wproblem.objective prob)
          0.0 ws
      in
      (name, total, Unix.gettimeofday () -. t0)
    in
    let results =
      [
        measure "greedy" (fun prob ->
            ignore (Vm1.Scp_solver.solve ~mode:`Greedy prob));
        measure "anneal" (fun prob ->
            ignore (Vm1.Scp_solver.solve ~mode:`Anneal prob));
        measure "exact" (fun prob ->
            ignore (Vm1.Scp_solver.solve ~mode:`Exact prob));
        measure "milp" (fun prob ->
            ignore (Vm1.Formulate.solve ~node_limit:50_000 prob));
      ]
    in
    let optimum =
      List.assoc "exact" (List.map (fun (n, v, _) -> (n, v)) results)
    in
    List.map
      (fun (solver, total_objective, runtime_s) ->
        { solver; total_objective; runtime_s;
          optimal_gap = total_objective -. optimum })
      results

  let render points =
    Table.render
      ~header:[ "solver"; "objective"; "gap vs optimal"; "runtime(s)" ]
      ~rows:
        (List.map
           (fun pt ->
             [
               pt.solver;
               Table.f1 pt.total_objective;
               Table.f1 pt.optimal_gap;
               Printf.sprintf "%.4f" pt.runtime_s;
             ])
           points)
end

module No_dm1 = struct
  type point = {
    label : string;
    dm1 : int;
    rwl_um : float;
    via12 : int;
  }

  let run ?(scale = 16) () =
    let p = Flow.prepare ~scale Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1 in
    let params = Vm1.Params.default p.Place.Placement.tech in
    ignore (Vm1.Vm1_opt.run params p);
    let with_dm1 = Route.Metrics.summarize (Route.Router.route p) in
    let without =
      Route.Metrics.summarize
        (Route.Router.route
           ~config:{ Route.Router.default_config with use_dm1 = false }
           p)
    in
    [
      { label = "router with dM1";
        dm1 = with_dm1.Route.Metrics.dm1;
        rwl_um = with_dm1.rwl_um;
        via12 = with_dm1.via12 };
      { label = "router without dM1";
        dm1 = without.Route.Metrics.dm1;
        rwl_um = without.rwl_um;
        via12 = without.via12 };
    ]

  let render points =
    Table.render
      ~header:[ "configuration"; "#dM1"; "RWL(um)"; "#via12" ]
      ~rows:
        (List.map
           (fun pt ->
             [ pt.label; Table.fi pt.dm1; Table.f1 pt.rwl_um; Table.fi pt.via12 ])
           points)
end

module Baseline_dp = struct
  type point = {
    label : string;
    hpwl_um : float;
    rwl_um : float;
    dm1 : int;
    via12 : int;
  }

  let measure label p =
    let s = Route.Metrics.summarize (Route.Router.route p) in
    {
      label;
      hpwl_um = s.Route.Metrics.hpwl_um;
      rwl_um = s.rwl_um;
      dm1 = s.dm1;
      via12 = s.via12;
    }

  let run ?(scale = 16) () =
    let raw =
      Flow.prepare ~scale ~detailed:false Netlist.Designs.Aes
        Pdk.Cell_arch.Closed_m1
    in
    let dp = Place.Placement.copy raw in
    ignore (Place.Row_opt.optimize ~passes:2 dp);
    let vm1 = Place.Placement.copy dp in
    let params = Vm1.Params.default vm1.Place.Placement.tech in
    ignore (Vm1.Vm1_opt.run params vm1);
    [
      measure "global placement only" raw;
      measure "+ HPWL row DP (traditional detailed placement)" dp;
      measure "+ vertical-M1-aware optimisation (this work)" vm1;
    ]

  let render points =
    Table.render
      ~header:[ "placement"; "HPWL(um)"; "RWL(um)"; "#dM1"; "#via12" ]
      ~rows:
        (List.map
           (fun pt ->
             [
               pt.label;
               Table.f1 pt.hpwl_um;
               Table.f1 pt.rwl_um;
               Table.fi pt.dm1;
               Table.fi pt.via12;
             ])
           points)
end

module Congestion_term = struct
  type point = {
    label : string;
    drvs : int;
    dm1 : int;
    rwl_um : float;
  }

  (* Run in the congested regime (3-layer stack) with and without the
     congestion term in the objective. *)
  let run ?(scale = 16) ?(utilization = 0.84) () =
    let router = { Route.Router.default_config with layers = 3 } in
    let measure label p =
      let s = Route.Metrics.summarize (Route.Router.route ~config:router p) in
      { label; drvs = s.Route.Metrics.drvs; dm1 = s.dm1; rwl_um = s.rwl_um }
    in
    let base =
      Flow.prepare ~scale ~utilization Netlist.Designs.Aes
        Pdk.Cell_arch.Closed_m1
    in
    let params = Vm1.Params.default base.Place.Placement.tech in
    let plain = Place.Placement.copy base in
    ignore (Vm1.Vm1_opt.run params plain);
    let aware = Place.Placement.copy base in
    let cost = Flow.congestion_cost ~router_config:router aware in
    let config =
      { Vm1.Vm1_opt.default_config with
        Vm1.Vm1_opt.candidate_cost = Some cost }
    in
    ignore (Vm1.Vm1_opt.run ~config params aware);
    [
      measure "initial" base;
      measure "vm1opt" plain;
      measure "vm1opt + congestion term" aware;
    ]

  let render points =
    Table.render
      ~header:[ "configuration"; "#DRV"; "#dM1"; "RWL(um)" ]
      ~rows:
        (List.map
           (fun pt ->
             [ pt.label; Table.fi pt.drvs; Table.fi pt.dm1; Table.f1 pt.rwl_um ])
           points)
end
