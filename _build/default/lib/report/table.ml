let render ~header ~rows =
  let all = header :: rows in
  let ncols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  emit
    (List.init (List.length header) (fun i -> String.make widths.(i) '-'));
  List.iter emit rows;
  Buffer.contents buf

let to_csv ~header ~rows =
  let escape s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let fi = string_of_int
let f1 = Printf.sprintf "%.1f"
let f2 = Printf.sprintf "%.2f"
let f3 = Printf.sprintf "%.3f"

let pct a b =
  if abs_float a < 1e-12 then "(0.0)"
  else Printf.sprintf "(%+.1f)" ((b -. a) /. a *. 100.0)
