(** SVG renderings of placements, routed results and congestion maps.

    Scale: 1 SVG user unit per 9 DBU, y flipped so row 0 is at the
    bottom. Output is self-contained SVG 1.1 text. *)

(** [placement p] draws the die, rows and cell footprints (flip-flops,
    combinational cells and their pins are distinguishable by colour). *)
val placement : Place.Placement.t -> string

(** [routed r] overlays the routed wires on the placement, one colour per
    metal layer, vias as dots. *)
val routed : Route.Router.result -> string

(** [congestion r] draws a heatmap of wire-edge usage (white = idle, red
    = overflowed). *)
val congestion : Route.Router.result -> string

val write_file : string -> string -> unit
