lib/report/ablation.mli:
