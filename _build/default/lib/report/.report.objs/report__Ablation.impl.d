lib/report/ablation.ml: Array Flow List Netlist Pdk Place Printf Route Table Unix Vm1
