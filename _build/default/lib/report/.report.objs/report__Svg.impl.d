lib/report/svg.ml: Array Buffer Float Fun Geom List Netlist Pdk Place Printf Route
