lib/report/expt.mli: Flow Netlist Pdk
