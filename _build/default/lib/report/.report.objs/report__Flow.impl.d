lib/report/flow.ml: Array Netlist Pdk Place Route Sta Vm1
