lib/report/svg.mli: Place Route
