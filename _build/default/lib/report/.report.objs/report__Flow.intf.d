lib/report/flow.mli: Netlist Pdk Place Route Vm1
