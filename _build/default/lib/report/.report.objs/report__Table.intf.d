lib/report/table.mli:
