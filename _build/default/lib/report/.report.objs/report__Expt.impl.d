lib/report/expt.ml: Flow List Netlist Pdk Place Printf Route Table Unix Vm1
