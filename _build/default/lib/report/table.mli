(** Fixed-width ASCII tables and CSV output for experiment reports. *)

(** [render ~header ~rows] pads every column to its widest entry. *)
val render : header:string list -> rows:string list list -> string

val to_csv : header:string list -> rows:string list list -> string

(** Formatting helpers used across experiment tables. *)

val fi : int -> string

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string

(** [pct a b] formats the relative change from [a] to [b] as e.g.
    ["(-6.4)"]. *)
val pct : float -> float -> string
