(** The three standard-cell architectures studied by the paper (Fig. 1).

    - [Conventional12]: 12-track cells with horizontal M1 power rails. The
      rails block inter-row M1 routing entirely, so pin access requires M2.
    - [Closed_m1]: 7.5-track cells with 1D vertical M1 pins on the site
      grid (M1 pin pitch = placement-site width). Power is pushed to cell
      boundaries and M2, so inter-row M1 routing is possible, but only when
      two pins are exactly vertically aligned.
    - [Open_m1]: 7.5-track cells whose pins are horizontal M0 segments; M1
      is "open" above the cells and a direct vertical M1 route exists
      whenever two pins' x-projections overlap sufficiently. *)

type t = Conventional12 | Closed_m1 | Open_m1

(** [allows_inter_row_m1 a] is true when the architecture leaves M1 open
    between rows (Closed_m1 and Open_m1). *)
val allows_inter_row_m1 : t -> bool

(** Number of routing tracks the cell template spans vertically. *)
val track_count : t -> float

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
