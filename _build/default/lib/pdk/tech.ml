type t = {
  arch : Cell_arch.t;
  site_width : int;
  row_height : int;
  m0_pitch : int;
  m2_pitch : int;
  m1_offset : int;
  gamma : int;
  delta : int;
}

let default arch =
  let site_width = 36 in
  let m2_pitch = 36 in
  let tracks = Cell_arch.track_count arch in
  let row_height = int_of_float (tracks *. float_of_int m2_pitch) in
  {
    arch;
    site_width;
    row_height;
    m0_pitch = 27;
    m2_pitch;
    m1_offset = site_width / 2;
    gamma = 3;
    delta = site_width / 2;
  }

let m1_track_x t i = (i * t.site_width) + t.m1_offset

let m1_track_of_x t x =
  let rel = x - t.m1_offset in
  if rel mod t.site_width <> 0 || rel < 0 then
    invalid_arg (Printf.sprintf "Tech.m1_track_of_x: %d not on track" x)
  else rel / t.site_width

let is_on_m1_track t x =
  let rel = x - t.m1_offset in
  rel >= 0 && rel mod t.site_width = 0

let row_y t r = r * t.row_height

let pp ppf t =
  Format.fprintf ppf "tech{%a site=%d row=%d gamma=%d delta=%d}" Cell_arch.pp
    t.arch t.site_width t.row_height t.gamma t.delta
