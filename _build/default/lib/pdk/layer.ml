type t = M0 | M1 | M2 | M3 | M4

type direction = Horizontal | Vertical

let direction = function
  | M0 -> Horizontal
  | M1 -> Vertical
  | M2 -> Horizontal
  | M3 -> Vertical
  | M4 -> Horizontal

let index = function M0 -> 0 | M1 -> 1 | M2 -> 2 | M3 -> 3 | M4 -> 4

let of_index = function
  | 0 -> M0
  | 1 -> M1
  | 2 -> M2
  | 3 -> M3
  | 4 -> M4
  | i -> invalid_arg (Printf.sprintf "Layer.of_index: %d" i)

let all = [ M0; M1; M2; M3; M4 ]
let routing = [ M1; M2; M3; M4 ]
let equal a b = a = b
let compare a b = Int.compare (index a) (index b)
let to_string = function
  | M0 -> "M0"
  | M1 -> "M1"
  | M2 -> "M2"
  | M3 -> "M3"
  | M4 -> "M4"

let pp ppf l = Format.pp_print_string ppf (to_string l)
