type pin_dir = Input | Output | Clock

type pin = {
  pin_name : string;
  dir : pin_dir;
  shapes : (Layer.t * Geom.Rect.t) list;
}

type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Aoi21
  | Oai21
  | Xor2
  | Xnor2
  | Mux2
  | Dff
  | Fill

type t = {
  name : string;
  kind : kind;
  drive : int;
  width_sites : int;
  width : int;
  height : int;
  pins : pin list;
  cap_in : float;
  drive_res : float;
  intrinsic_delay : float;
  leakage : float;
}

let find_pin t name =
  match List.find_opt (fun p -> String.equal p.pin_name name) t.pins with
  | Some p -> p
  | None ->
    invalid_arg (Printf.sprintf "Stdcell.find_pin: %s has no pin %s" t.name name)

let inputs t = List.filter (fun p -> p.dir = Input) t.pins
let output t = List.find_opt (fun p -> p.dir = Output) t.pins
let clock t = List.find_opt (fun p -> p.dir = Clock) t.pins
let is_sequential t = t.kind = Dff

let pin_bbox p =
  List.fold_left
    (fun acc (_, r) -> Geom.Rect.union acc r)
    Geom.Rect.empty p.shapes

let placed_pin_shapes t ~orient ~origin pin =
  let place (layer, r) =
    let local =
      Geom.Orient.apply orient ~cell_width:t.width ~cell_height:t.height r
    in
    (layer, Geom.Rect.shift local origin)
  in
  List.map place pin.shapes

let placed_pin_bbox t ~orient ~origin pin =
  List.fold_left
    (fun acc (_, r) -> Geom.Rect.union acc r)
    Geom.Rect.empty
    (placed_pin_shapes t ~orient ~origin pin)

let pp ppf t =
  Format.fprintf ppf "%s(w=%d sites, %d pins)" t.name t.width_sites
    (List.length t.pins)
