(** Standard-cell masters.

    A master carries its physical footprint (width in sites, height = one
    row), per-pin geometry in the cell's local north frame, and the small
    electrical model used by the STA and power substrates. Pin geometry is
    what the vertical-M1 optimisation consumes: for ClosedM1 masters every
    signal pin is a 1D vertical M1 segment centred on an M1 track (track
    pitch = site width); for OpenM1 masters every pin is a horizontal M0
    segment whose x-projection defines overlap-based dM1 feasibility. *)

type pin_dir = Input | Output | Clock

type pin = {
  pin_name : string;
  dir : pin_dir;
  shapes : (Layer.t * Geom.Rect.t) list;  (** local N frame *)
}

type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Aoi21
  | Oai21
  | Xor2
  | Xnor2
  | Mux2
  | Dff
  | Fill

type t = {
  name : string;
  kind : kind;
  drive : int;            (** drive strength, e.g. 1/2/4 for X1/X2/X4 *)
  width_sites : int;
  width : int;            (** DBU *)
  height : int;           (** DBU, one row *)
  pins : pin list;
  cap_in : float;         (** input pin capacitance, fF *)
  drive_res : float;      (** output drive resistance, kOhm *)
  intrinsic_delay : float;(** intrinsic delay, ps *)
  leakage : float;        (** leakage power, nW *)
}

val find_pin : t -> string -> pin

(** Pins in declaration order filtered by direction. [Clock] pins are not
    included in [inputs]. *)
val inputs : t -> pin list

val output : t -> pin option
val clock : t -> pin option
val is_sequential : t -> bool

(** [pin_bbox p] is the bounding box of all shapes of [p] (local frame). *)
val pin_bbox : pin -> Geom.Rect.t

(** [placed_pin_shapes master ~orient ~origin pin] maps the pin's shapes
    into chip coordinates for a cell placed with lower-left corner at
    [origin] and orientation [orient]. *)
val placed_pin_shapes :
  t -> orient:Geom.Orient.t -> origin:Geom.Point.t -> pin ->
  (Layer.t * Geom.Rect.t) list

(** [placed_pin_bbox master ~orient ~origin pin] is the bounding box of the
    placed shapes. *)
val placed_pin_bbox :
  t -> orient:Geom.Orient.t -> origin:Geom.Point.t -> pin -> Geom.Rect.t

val pp : Format.formatter -> t -> unit
