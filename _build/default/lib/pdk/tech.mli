(** Technology parameters of the modelled 7nm-class node. All geometry is
    in DBU (1 DBU = 1 nm). The M1 pitch equals the placement-site width, as
    the paper's ClosedM1 library requires (vertical pin alignment then
    coincides with site alignment). *)

type t = {
  arch : Cell_arch.t;
  site_width : int;         (** placement site width = M1 (vertical) pitch *)
  row_height : int;         (** standard-cell row height *)
  m0_pitch : int;           (** horizontal M0 track pitch within a row *)
  m2_pitch : int;           (** horizontal M2 track pitch *)
  m1_offset : int;          (** x offset of the first M1 track (track center
                                within a site) *)
  gamma : int;              (** max rows a direct vertical M1 route spans *)
  delta : int;              (** min x-overlap (DBU) for an OpenM1 dM1 *)
}

(** [default arch] is the default 7nm-class technology for the given cell
    architecture: 36 nm site width / M1 pitch, 270 nm rows for the 7.5-track
    architectures (432 nm for conventional 12-track), gamma = 3, delta =
    half a site. *)
val default : Cell_arch.t -> t

(** [m1_track_x t i] is the x coordinate of M1 track [i]. *)
val m1_track_x : t -> int -> int

(** [m1_track_of_x t x] is the M1 track index whose center is at [x].
    @raise Invalid_argument if [x] is not on an M1 track center. *)
val m1_track_of_x : t -> int -> int

(** [is_on_m1_track t x] is true when [x] lies on an M1 track center. *)
val is_on_m1_track : t -> int -> bool

(** [row_y t r] is the bottom y coordinate of row [r]. *)
val row_y : t -> int -> int

val pp : Format.formatter -> t -> unit
