type t = Conventional12 | Closed_m1 | Open_m1

let allows_inter_row_m1 = function
  | Conventional12 -> false
  | Closed_m1 | Open_m1 -> true

let track_count = function
  | Conventional12 -> 12.0
  | Closed_m1 | Open_m1 -> 7.5

let equal a b = a = b

let to_string = function
  | Conventional12 -> "conv12"
  | Closed_m1 -> "closedm1"
  | Open_m1 -> "openm1"

let of_string = function
  | "conv12" | "conventional12" -> Some Conventional12
  | "closedm1" | "closed_m1" -> Some Closed_m1
  | "openm1" | "open_m1" -> Some Open_m1
  | _ -> None

let pp ppf a = Format.pp_print_string ppf (to_string a)
