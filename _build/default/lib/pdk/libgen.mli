(** Generator for the 7nm-class standard-cell libraries used in the
    experiments. One library per cell architecture; masters share names,
    logical pins and electrical models across architectures so the same
    netlist can be bound to any of the three libraries — only the pin
    geometry differs (vertical M1 pins for ClosedM1, horizontal M0 pins for
    OpenM1, M1 pins under power rails for the conventional template). *)

type t = {
  tech : Tech.t;
  cells : Stdcell.t list;
}

(** [generate tech] builds the full library for [tech.arch]. *)
val generate : Tech.t -> t

val find : t -> string -> Stdcell.t
val find_opt : t -> string -> Stdcell.t option

(** Combinational masters (everything except flip-flops and fillers). *)
val combinational : t -> Stdcell.t list

val sequential : t -> Stdcell.t list
val fillers : t -> Stdcell.t list
