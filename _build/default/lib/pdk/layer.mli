(** Routing layers of the modelled sub-10nm back-end-of-line stack.

    M0 is the complementary local-interconnect layer below M1 used by the
    OpenM1 cell architecture for pin shapes; M1..M4 are routing layers with
    alternating preferred directions (M1 vertical, as required for direct
    vertical M1 routing). *)

type t = M0 | M1 | M2 | M3 | M4

type direction = Horizontal | Vertical

val direction : t -> direction

(** Index in the stack: M0 -> 0 ... M4 -> 4. *)
val index : t -> int

val of_index : int -> t
val all : t list

(** Routing layers available to the detailed router (M1..M4). *)
val routing : t list

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
