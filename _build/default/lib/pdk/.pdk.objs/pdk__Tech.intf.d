lib/pdk/tech.mli: Cell_arch Format
