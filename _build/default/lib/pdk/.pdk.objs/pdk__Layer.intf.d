lib/pdk/layer.mli: Format
