lib/pdk/stdcell.mli: Format Geom Layer
