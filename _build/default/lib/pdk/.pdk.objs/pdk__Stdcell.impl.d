lib/pdk/stdcell.ml: Format Geom Layer List Printf String
