lib/pdk/layer.ml: Format Int Printf
