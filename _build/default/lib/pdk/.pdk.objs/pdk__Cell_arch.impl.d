lib/pdk/cell_arch.ml: Format
