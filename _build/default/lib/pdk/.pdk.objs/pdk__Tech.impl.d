lib/pdk/tech.ml: Cell_arch Format Printf
