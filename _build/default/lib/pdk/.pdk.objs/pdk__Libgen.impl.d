lib/pdk/libgen.ml: Cell_arch Geom Layer List Printf Stdcell String Tech
