lib/pdk/libgen.mli: Stdcell Tech
