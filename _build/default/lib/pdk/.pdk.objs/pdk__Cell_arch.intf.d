lib/pdk/cell_arch.mli: Format
