type t = {
  tech : Tech.t;
  cells : Stdcell.t list;
}

(* Logical cell specifications shared by all architectures: kind, drive,
   width in sites, and per-pin placement hints. [track] is the M1 track a
   pin occupies in ClosedM1/conventional templates; [span] is the inclusive
   site range its M0 segment covers in OpenM1. *)
type pin_spec = {
  ps_name : string;
  ps_dir : Stdcell.pin_dir;
  track : int;
  span : int * int;
}

type cell_spec = {
  cs_kind : Stdcell.kind;
  cs_drive : int;
  cs_width : int;
  cs_pins : pin_spec list;
}

let input name track span = { ps_name = name; ps_dir = Stdcell.Input; track; span }
let output name track span = { ps_name = name; ps_dir = Stdcell.Output; track; span }
let clock name track span = { ps_name = name; ps_dir = Stdcell.Clock; track; span }

let specs : cell_spec list =
  [
    { cs_kind = Fill; cs_drive = 1; cs_width = 1; cs_pins = [] };
    { cs_kind = Fill; cs_drive = 2; cs_width = 2; cs_pins = [] };
    { cs_kind = Fill; cs_drive = 4; cs_width = 4; cs_pins = [] };
    { cs_kind = Inv; cs_drive = 1; cs_width = 2;
      cs_pins = [ input "A" 0 (0, 0); output "ZN" 1 (1, 1) ] };
    { cs_kind = Inv; cs_drive = 2; cs_width = 3;
      cs_pins = [ input "A" 0 (0, 1); output "ZN" 2 (1, 2) ] };
    { cs_kind = Inv; cs_drive = 4; cs_width = 4;
      cs_pins = [ input "A" 1 (0, 1); output "ZN" 3 (2, 3) ] };
    { cs_kind = Buf; cs_drive = 1; cs_width = 3;
      cs_pins = [ input "A" 0 (0, 1); output "Z" 2 (1, 2) ] };
    { cs_kind = Buf; cs_drive = 2; cs_width = 4;
      cs_pins = [ input "A" 1 (0, 1); output "Z" 3 (2, 3) ] };
    { cs_kind = Nand2; cs_drive = 1; cs_width = 3;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 1 (1, 2); output "ZN" 2 (1, 2) ] };
    { cs_kind = Nand2; cs_drive = 2; cs_width = 4;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 2 (1, 2); output "ZN" 3 (2, 3) ] };
    { cs_kind = Nor2; cs_drive = 1; cs_width = 3;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 2 (1, 2); output "ZN" 1 (0, 2) ] };
    { cs_kind = Nor2; cs_drive = 2; cs_width = 4;
      cs_pins =
        [ input "A1" 1 (0, 1); input "A2" 3 (2, 3); output "ZN" 2 (1, 3) ] };
    { cs_kind = Aoi21; cs_drive = 1; cs_width = 4;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 1 (1, 2); input "B" 2 (2, 3);
          output "ZN" 3 (1, 3) ] };
    { cs_kind = Oai21; cs_drive = 1; cs_width = 4;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 2 (1, 2); input "B" 1 (2, 3);
          output "ZN" 3 (1, 3) ] };
    { cs_kind = Xor2; cs_drive = 1; cs_width = 5;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 2 (1, 3); output "Z" 4 (3, 4) ] };
    { cs_kind = And2; cs_drive = 1; cs_width = 4;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 1 (1, 2); output "Z" 3 (2, 3) ] };
    { cs_kind = Or2; cs_drive = 1; cs_width = 4;
      cs_pins =
        [ input "A1" 0 (0, 1); input "A2" 2 (1, 2); output "Z" 3 (2, 3) ] };
    { cs_kind = Xnor2; cs_drive = 1; cs_width = 5;
      cs_pins =
        [ input "A1" 1 (0, 1); input "A2" 3 (1, 3); output "ZN" 4 (3, 4) ] };
    { cs_kind = Mux2; cs_drive = 1; cs_width = 5;
      cs_pins =
        [ input "D0" 0 (0, 1); input "D1" 1 (1, 2); input "S" 3 (2, 3);
          output "Z" 4 (3, 4) ] };
    { cs_kind = Dff; cs_drive = 1; cs_width = 8;
      cs_pins =
        [ input "D" 1 (0, 2); clock "CK" 3 (3, 4); output "Q" 6 (5, 7) ] };
    { cs_kind = Dff; cs_drive = 2; cs_width = 9;
      cs_pins =
        [ input "D" 1 (0, 2); clock "CK" 4 (3, 5); output "Q" 7 (6, 8) ] };
  ]

let kind_name = function
  | Stdcell.Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Fill -> "FILL"

let master_name kind drive = Printf.sprintf "%s_X%d" (kind_name kind) drive

(* Electrical model: a coarse linear model scaled by drive strength. Values
   are in the right ballpark for a 7nm-class node and only need to be
   self-consistent, since the experiments report deltas. *)
let electrical kind drive =
  let d = float_of_int drive in
  let base_cap, base_delay, base_leak =
    match kind with
    | Stdcell.Inv -> (0.7, 4.0, 1.0)
    | Buf -> (0.7, 7.0, 1.4)
    | Nand2 | Nor2 -> (0.9, 6.0, 1.6)
    | And2 | Or2 -> (0.9, 7.5, 1.8)
    | Aoi21 | Oai21 -> (1.0, 8.0, 2.0)
    | Xor2 | Xnor2 -> (1.3, 11.0, 2.8)
    | Mux2 -> (1.2, 10.0, 2.6)
    | Dff -> (1.1, 22.0, 4.5)
    | Fill -> (0.0, 0.0, 0.2)
  in
  (base_cap *. d, 1.6 /. d, base_delay, base_leak *. d)

(* ClosedM1 pin shape: a 1D vertical M1 segment centred on its M1 track,
   spanning the interior of the row (clear of the boundary power hookup). *)
let closed_m1_shape (tech : Tech.t) track =
  let x = Tech.m1_track_x tech track in
  let half = tech.site_width / 4 in
  let y_margin = tech.row_height / 5 in
  ( Layer.M1,
    Geom.Rect.make ~lx:(x - half) ~hx:(x + half) ~ly:y_margin
      ~hy:(tech.row_height - y_margin) )

(* Conventional 12-track pin shape: also a vertical M1 segment, but the row
   has horizontal M1 power rails at top and bottom, so the pin is confined
   to the middle of the row and inter-row M1 routing is impossible. *)
let conventional_shape (tech : Tech.t) track =
  let x = Tech.m1_track_x tech track in
  let half = tech.site_width / 4 in
  let rail = tech.row_height / 4 in
  ( Layer.M1,
    Geom.Rect.make ~lx:(x - half) ~hx:(x + half) ~ly:rail
      ~hy:(tech.row_height - rail) )

(* OpenM1 pin shape: a horizontal M0 segment on an M0 track, spanning the
   given inclusive site range. The x-projection of this segment is what the
   overlap-based dM1 feasibility test uses. *)
let open_m1_shape (tech : Tech.t) ~pin_index (a, b) =
  let track = 2 + pin_index in
  let y = (track * tech.m0_pitch) + (tech.m0_pitch / 2) in
  let inset = tech.site_width / 8 in
  let lx = (a * tech.site_width) + inset in
  let hx = ((b + 1) * tech.site_width) - inset in
  (Layer.M0, Geom.Rect.make ~lx ~hx ~ly:(y - 7) ~hy:(y + 7))

let make_master (tech : Tech.t) spec =
  let width = spec.cs_width * tech.site_width in
  let pin_of_spec i ps =
    let shape =
      match tech.arch with
      | Cell_arch.Closed_m1 -> closed_m1_shape tech ps.track
      | Cell_arch.Conventional12 -> conventional_shape tech ps.track
      | Cell_arch.Open_m1 -> open_m1_shape tech ~pin_index:i ps.span
    in
    { Stdcell.pin_name = ps.ps_name; dir = ps.ps_dir; shapes = [ shape ] }
  in
  let cap_in, drive_res, intrinsic_delay, leakage =
    electrical spec.cs_kind spec.cs_drive
  in
  {
    Stdcell.name = master_name spec.cs_kind spec.cs_drive;
    kind = spec.cs_kind;
    drive = spec.cs_drive;
    width_sites = spec.cs_width;
    width;
    height = tech.row_height;
    pins = List.mapi pin_of_spec spec.cs_pins;
    cap_in;
    drive_res;
    intrinsic_delay;
    leakage;
  }

let generate tech = { tech; cells = List.map (make_master tech) specs }

let find_opt t name =
  List.find_opt (fun (c : Stdcell.t) -> String.equal c.name name) t.cells

let find t name =
  match find_opt t name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Libgen.find: no master %s" name)

let combinational t =
  List.filter
    (fun (c : Stdcell.t) -> c.kind <> Stdcell.Dff && c.kind <> Stdcell.Fill)
    t.cells

let sequential t =
  List.filter (fun (c : Stdcell.t) -> c.kind = Stdcell.Dff) t.cells

let fillers t =
  List.filter (fun (c : Stdcell.t) -> c.kind = Stdcell.Fill) t.cells
