(** Static timing analysis over the combinational core.

    Gate delay follows a linear model: intrinsic delay plus drive
    resistance times load capacitance; load capacitance is the sum of
    sink input capacitances plus wire capacitance from the routed length
    of the driven net. Launch points are primary-input nets and flip-flop
    outputs; capture points are flip-flop D pins. The netlist generator
    guarantees the combinational core is acyclic, so arrival times
    propagate in topological order.

    The paper reports WNS with designs meeting timing (WNS ~ 0); the
    clock period here is chosen per-design the same way (critical path of
    the initial placement plus margin), so WNS deltas reflect wirelength
    deltas, as in Table 2. *)

type result = {
  wns_ns : float;       (** worst negative slack (0 when timing is met) *)
  critical_ps : float;  (** critical path delay, ps *)
  clock_ps : float;     (** clock period used, ps *)
}

(** Wire capacitance per micrometre of routed wire, fF. *)
val wire_cap_per_um : float

(** Wire resistance per micrometre, kOhm (used for an Elmore-style wire
    delay term). *)
val wire_res_per_um : float

(** [analyze ?clock_ps design ~net_lengths] runs STA. [net_lengths] is
    routed length per net id in DBU (from [Route.Metrics.net_lengths]).
    When [clock_ps] is omitted, the period is set to the measured
    critical path plus 5 %, i.e. the design just meets timing. *)
val analyze :
  ?clock_ps:float -> Netlist.Design.t -> net_lengths:int array -> result

(** [net_criticality ?clock_ps design ~net_lengths] is a per-net timing
    criticality in [0, 1] (arrival time of the net relative to the clock
    period): the input to the timing-driven placement extension (the
    paper's future work (ii)). *)
val net_criticality :
  ?clock_ps:float -> Netlist.Design.t -> net_lengths:int array -> float array
