(** Power model: dynamic switching power over net capacitances (sink pin
    caps plus wire cap from routed length) plus cell leakage. Matches the
    paper's behaviour where total power moves fractionally with routed
    wirelength. *)

type result = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
}

(** Supply voltage, V. *)
val vdd : float

val frequency_ghz : float

(** Switching activity factor for signal nets. *)
val activity : float

(** [analyze design ~net_lengths] with routed net lengths in DBU. *)
val analyze : Netlist.Design.t -> net_lengths:int array -> result
