type result = {
  dynamic_mw : float;
  leakage_mw : float;
  total_mw : float;
}

let vdd = 0.7
let frequency_ghz = 1.0
let activity = 0.12
let clock_activity = 1.0

let analyze (design : Netlist.Design.t) ~net_lengths =
  let nn = Netlist.Design.num_nets design in
  let sink_cap = Array.make nn 0.0 in
  Array.iter
    (fun (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          match pin.Pdk.Stdcell.dir with
          | Pdk.Stdcell.Input | Pdk.Stdcell.Clock ->
            let n = inst.pin_nets.(k) in
            if n >= 0 then
              sink_cap.(n) <- sink_cap.(n) +. inst.master.Pdk.Stdcell.cap_in
          | Pdk.Stdcell.Output -> ())
        inst.master.Pdk.Stdcell.pins)
    design.instances;
  (* dynamic: a * C * V^2 * f; C in fF, f in GHz -> uW; sum in mW *)
  let dynamic = ref 0.0 in
  Array.iteri
    (fun n (net : Netlist.Design.net) ->
      let wire_cap =
        Timing.wire_cap_per_um *. (float_of_int net_lengths.(n) /. 1000.0)
      in
      let c = sink_cap.(n) +. wire_cap in
      let a = if net.is_clock then clock_activity else activity in
      dynamic := !dynamic +. (a *. c *. vdd *. vdd *. frequency_ghz))
    design.nets;
  let dynamic_mw = !dynamic /. 1000.0 in
  let leakage_nw =
    Array.fold_left
      (fun acc (inst : Netlist.Design.instance) ->
        acc +. inst.master.Pdk.Stdcell.leakage)
      0.0 design.instances
  in
  let leakage_mw = leakage_nw /. 1.0e6 in
  { dynamic_mw; leakage_mw; total_mw = dynamic_mw +. leakage_mw }
