lib/sta/power.mli: Netlist
