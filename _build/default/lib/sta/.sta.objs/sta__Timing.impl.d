lib/sta/timing.ml: Array Float List Netlist Pdk
