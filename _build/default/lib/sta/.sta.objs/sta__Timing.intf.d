lib/sta/timing.mli: Netlist
