lib/sta/power.ml: Array List Netlist Pdk Timing
