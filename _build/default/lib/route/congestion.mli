(** Tile-based congestion map extracted from a routed result.

    The die is divided into square tiles of [tile_tracks] tracks; each
    tile records the ratio of wire-edge usage to non-blocked capacity.
    The map feeds the congestion-aware placement objective (the paper's
    future-work direction (ii)): candidates in hot tiles are penalised. *)

type t = {
  tile_tracks : int;
  pitch : int;   (** track pitch, DBU *)
  tx : int;      (** tiles in x *)
  ty : int;      (** tiles in y *)
  ratio : float array;  (** row-major usage/capacity per tile *)
}

(** [of_result ?tile_tracks r] builds the map (default 8-track tiles). *)
val of_result : ?tile_tracks:int -> Router.result -> t

(** [at map ~x ~y] is the congestion ratio of the tile containing the DBU
    coordinate (clamped to the die). *)
val at : t -> x:int -> y:int -> float

(** [overflow_ratio map] is the fraction of tiles with ratio > 1. *)
val overflow_ratio : t -> float

val pp : Format.formatter -> t -> unit
