(** Post-routing metrics: the columns of the paper's Table 2 and the DRV
    counts of Figure 8. *)

type summary = {
  dm1 : int;          (** direct vertical M1 routes (single-segment M1) *)
  m1_wl_um : float;   (** total M1 wirelength, micrometres *)
  via12 : int;        (** vias between M1 and M2 *)
  hpwl_um : float;    (** placement HPWL, micrometres *)
  rwl_um : float;     (** total routed wirelength, micrometres *)
  drvs : int;         (** overflowed edges + unrouted subnets *)
  failed : int;       (** unrouted subnets *)
}

(** [subnet_is_dm1 r sn] is true when the subnet is routed as one vertical
    M1 segment (all wire edges on M1 in a single column, no vias to M2). *)
val subnet_is_dm1 : Router.result -> Router.subnet -> bool

val dm1_count : Router.result -> int

(** [summarize r] computes all metrics from the routed result. *)
val summarize : Router.result -> summary

(** [per_layer_wl_um r] is the wirelength per metal layer in micrometres;
    index 0 is unused, indices 1..6 are M1..M6. *)
val per_layer_wl_um : Router.result -> float array

(** [vias_per_boundary r] counts vias per layer boundary; index l is the
    number of vias between Ml and M(l+1) (so index 1 equals the via12
    column of Table 2). *)
val vias_per_boundary : Router.result -> int array

(** [net_lengths r] is the routed wirelength in DBU per net id (0 for
    unrouted or non-signal nets); used by the timing and power models. *)
val net_lengths : Router.result -> int array

val pp_summary : Format.formatter -> summary -> unit
