type t = {
  mutable prios : int array;
  mutable values : int array;
  mutable len : int;
}

let create ?(capacity = 256) () =
  { prios = Array.make capacity 0; values = Array.make capacity 0; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let grow h =
  let cap = Array.length h.prios in
  let prios = Array.make (cap * 2) 0 and values = Array.make (cap * 2) 0 in
  Array.blit h.prios 0 prios 0 h.len;
  Array.blit h.values 0 values 0 h.len;
  h.prios <- prios;
  h.values <- values

let push h ~prio ~value =
  if h.len = Array.length h.prios then grow h;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.prios.(!i) <- prio;
  h.values.(!i) <- value;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.prios.(parent) > h.prios.(!i) then begin
      let tp = h.prios.(parent) and tv = h.values.(parent) in
      h.prios.(parent) <- h.prios.(!i);
      h.values.(parent) <- h.values.(!i);
      h.prios.(!i) <- tp;
      h.values.(!i) <- tv;
      i := parent
    end
    else continue_ := false
  done

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop: empty";
  let prio = h.prios.(0) and value = h.values.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.prios.(0) <- h.prios.(h.len);
    h.values.(0) <- h.values.(h.len);
    (* sift down *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && h.prios.(l) < h.prios.(!smallest) then smallest := l;
      if r < h.len && h.prios.(r) < h.prios.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tp = h.prios.(!smallest) and tv = h.values.(!smallest) in
        h.prios.(!smallest) <- h.prios.(!i);
        h.values.(!smallest) <- h.values.(!i);
        h.prios.(!i) <- tp;
        h.values.(!i) <- tv;
        i := !smallest
      end
      else continue_ := false
    done
  end;
  (prio, value)

let clear h = h.len <- 0
