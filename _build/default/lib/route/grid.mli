(** Track-level routing grid over layers M1..M6.

    Tracks sit at the real track pitch (vertical M1/M3 tracks at the
    placement-site pitch, horizontal M2/M4 tracks at the M2 pitch), so one
    wire per track edge is the physical capacity — an edge used twice is a
    routing DRV, which is how the congestion experiments count violations.

    Each layer only has edges along its preferred direction (odd layers
    M1/M3/M5 vertical, even layers M2/M4/M6 horizontal); adjacent layers
    are connected by via edges at every track crossing.

    Pin geometry from the placement becomes blockage-with-owner: M1 edges
    covered by a ClosedM1 (or conventional) pin are reserved for that pin's
    net — other nets cannot pass through, but the owner net can. The
    conventional 12-track architecture additionally blocks every M1 edge
    that crosses a row boundary (the horizontal M1 power rails), which is
    exactly why it cannot route inter-row M1. *)

type t = {
  placement : Place.Placement.t;
  nx : int;                (** vertical track count (x direction) *)
  ny : int;                (** horizontal track count (y direction) *)
  nl : int;                (** number of metal layers in this grid *)
  pitch : int;             (** track pitch in DBU, both directions *)
  wire_owner : int array;  (** per (layer,node): [free] / [blocked] / net id *)
  wire_usage : int array;  (** routes using the wire edge *)
  via_usage : int array;   (** routes using the via edge above the node *)
}

(** wire_owner value: unreserved. *)
val free : int

(** wire_owner value: hard blockage. *)
val blocked : int

(** 6: M1..M6, alternating vertical/horizontal preferred directions. *)
val num_layers : int

(** [node g ~layer ~i ~j] is the dense node index. [layer] is the metal
    index, 1..6. *)
val node : t -> layer:int -> i:int -> j:int -> int

val layer_of_node : t -> int -> int
val i_of_node : t -> int -> int
val j_of_node : t -> int -> int

(** [node_count g] is the total number of nodes (= size of the edge
    arrays; the wire edge at a node leads to the next node in the layer's
    preferred direction, the via edge leads to the same (i,j) one layer
    up). *)
val node_count : t -> int

(** [track_x g i] / [track_y g j] are the chip coordinates of track
    centres. *)
val track_x : t -> int -> int

val track_y : t -> int -> int

(** [x_to_track g x] is the nearest vertical-track index, clamped to the
    grid. *)
val x_to_track : t -> int -> int

val y_to_track : t -> int -> int

(** [is_vertical_layer l] is true for the odd (vertical) layers. *)
val is_vertical_layer : int -> bool

(** [has_wire_edge g n] is true when node [n] has a successor along its
    layer's preferred direction. *)
val has_wire_edge : t -> int -> bool

(** [wire_dest g n] is that successor node. *)
val wire_dest : t -> int -> int

(** [has_via_edge g n] is true when node [n] is on M1..M3 (via up). *)
val has_via_edge : t -> int -> bool

(** [via_dest g n] is the node one layer up at the same (i,j). *)
val via_dest : t -> int -> int

(** [of_placement ?layers ?pdn_stripes p] builds the grid and installs
    blockage: per-pin M1 blockage with net ownership; M1 power rails for
    the conventional architecture or M2 power rails along row boundaries
    for the 7.5-track architectures; and, when [pdn_stripes] (default
    true), periodic M5/M6 power straps. [layers] (2..6, default 6) limits
    the routable stack. Rebuild after the placement changes. *)
val of_placement : ?layers:int -> ?pdn_stripes:bool -> Place.Placement.t -> t

(** [pin_access g pr] is the list of grid nodes at which a route may
    terminate for the given pin: on-M1 nodes along the pin segment for
    ClosedM1/conventional pins, on-M1 via-landing nodes over the M0
    segment for OpenM1 pins. Never empty for pins inside the die. *)
val pin_access : t -> Netlist.Design.pin_ref -> int list

(** [overflow_count g] is the number of wire and via edges whose usage
    exceeds capacity 1 — the DRV proxy. *)
val overflow_count : t -> int

(** [clear_usage g] zeroes all usage counters. *)
val clear_usage : t -> unit
