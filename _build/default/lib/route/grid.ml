type t = {
  placement : Place.Placement.t;
  nx : int;
  ny : int;
  nl : int;
  pitch : int;
  wire_owner : int array;
  wire_usage : int array;
  via_usage : int array;
}

let free = -1
let blocked = -2
let num_layers = 6

let node g ~layer ~i ~j = (((layer - 1) * g.ny) + j) * g.nx + i
let i_of_node g n = n mod g.nx
let j_of_node g n = n / g.nx mod g.ny
let layer_of_node g n = (n / (g.nx * g.ny)) + 1
let node_count g = g.nl * g.nx * g.ny
let track_x g i = (i * g.pitch) + (g.pitch / 2)
let track_y g j = (j * g.pitch) + (g.pitch / 2)

let clamp lo hi v = max lo (min hi v)

let x_to_track g x = clamp 0 (g.nx - 1) (x / g.pitch)
let y_to_track g y = clamp 0 (g.ny - 1) (y / g.pitch)
let is_vertical_layer l = l land 1 = 1

let has_wire_edge g n =
  let l = layer_of_node g n in
  if is_vertical_layer l then j_of_node g n < g.ny - 1
  else i_of_node g n < g.nx - 1

let wire_dest g n =
  let l = layer_of_node g n in
  if is_vertical_layer l then n + g.nx else n + 1

let has_via_edge g n = layer_of_node g n < g.nl
let via_dest g n = n + (g.nx * g.ny)

(* A wire edge is contaminated by a pin shape when the shape strictly
   overlaps the edge's span: another net running through would short with
   the pin metal. *)
let install_m1_shape g ~net (r : Geom.Rect.t) =
  let i_lo = max 0 ((r.lx - (g.pitch / 2) + g.pitch - 1) / g.pitch) in
  let rec find_tracks i acc =
    if i >= g.nx || track_x g i > r.hx then List.rev acc
    else find_tracks (i + 1) (i :: acc)
  in
  let tracks = find_tracks (max 0 i_lo) [] in
  List.iter
    (fun i ->
      for j = max 0 (y_to_track g r.ly - 1) to min (g.ny - 2) (y_to_track g r.hy + 1) do
        let ya = track_y g j and yb = track_y g (j + 1) in
        if max ya r.ly < min yb r.hy then begin
          let n = node g ~layer:1 ~i ~j in
          let owner = g.wire_owner.(n) in
          if owner = free then g.wire_owner.(n) <- net
          else if owner <> net then g.wire_owner.(n) <- blocked
        end
      done)
    tracks

(* Conventional 12-track: horizontal M1 power rails at every row boundary
   block the M1 edges crossing them. *)
let install_m1_rails g =
  let p = g.placement in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  for r = 0 to p.Place.Placement.num_rows do
    let y = r * rh in
    for i = 0 to g.nx - 1 do
      for j = max 0 (y_to_track g y - 2) to min (g.ny - 2) (y_to_track g y + 1) do
        let ya = track_y g j and yb = track_y g (j + 1) in
        if ya < y && y <= yb then
          g.wire_owner.(node g ~layer:1 ~i ~j) <- blocked
      done
    done
  done

(* 7.5-track ClosedM1/OpenM1 cells draw power from M2 rails running along
   every placement-row boundary (the paper's Fig. 1b); the M2 track nearest
   each boundary is lost to routing. *)
let install_m2_rails g =
  let p = g.placement in
  let rh = p.Place.Placement.tech.Pdk.Tech.row_height in
  for r = 0 to p.Place.Placement.num_rows do
    let y = r * rh in
    let j = max 0 (min (g.ny - 1) ((y - (g.pitch / 2) + (g.pitch / 2)) / g.pitch)) in
    (* pick the track whose centre is nearest the boundary *)
    let j =
      if j + 1 < g.ny && abs (track_y g (j + 1) - y) < abs (track_y g j - y)
      then j + 1
      else j
    in
    for i = 0 to g.nx - 2 do
      g.wire_owner.(node g ~layer:2 ~i ~j) <- blocked
    done
  done

(* Power-distribution stripes on the upper layers: every [period]-th
   vertical M5 track and horizontal M6 track carries power straps. *)
let install_pdn_stripes g =
  let period = 8 in
  if g.nl >= 5 then
    for i = 0 to g.nx - 1 do
      if i mod period = 0 then
        for j = 0 to g.ny - 2 do
          g.wire_owner.(node g ~layer:5 ~i ~j) <- blocked
        done
    done;
  if g.nl >= 6 then
    for j = 0 to g.ny - 1 do
      if j mod period = 0 then
        for i = 0 to g.nx - 2 do
          g.wire_owner.(node g ~layer:6 ~i ~j) <- blocked
        done
    done

let of_placement ?(layers = num_layers) ?(pdn_stripes = true)
    (p : Place.Placement.t) =
  if layers < 2 || layers > num_layers then
    invalid_arg "Grid.of_placement: layers must be in 2..6";
  let tech = p.Place.Placement.tech in
  let pitch = tech.Pdk.Tech.m2_pitch in
  let nx = max 2 (Geom.Rect.width p.die / pitch) in
  let ny = max 2 (Geom.Rect.height p.die / pitch) in
  let size = layers * nx * ny in
  let g =
    {
      placement = p;
      nx;
      ny;
      nl = layers;
      pitch;
      wire_owner = Array.make size free;
      wire_usage = Array.make size 0;
      via_usage = Array.make size 0;
    }
  in
  if tech.Pdk.Tech.arch = Pdk.Cell_arch.Conventional12 then install_m1_rails g
  else install_m2_rails g;
  if pdn_stripes then install_pdn_stripes g;
  let design = p.Place.Placement.design in
  Array.iteri
    (fun inst_id (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (_ : Pdk.Stdcell.pin) ->
          let pr = { Netlist.Design.inst = inst_id; pin = k } in
          let net = inst.pin_nets.(k) in
          let shapes = Place.Placement.pin_shapes p pr in
          List.iter
            (fun (layer, r) ->
              if Pdk.Layer.equal layer Pdk.Layer.M1 then
                install_m1_shape g ~net:(if net >= 0 then net else blocked) r)
            shapes)
        inst.master.Pdk.Stdcell.pins)
    design.Netlist.Design.instances;
  g

let pin_access g (pr : Netlist.Design.pin_ref) =
  let p = g.placement in
  let shapes = Place.Placement.pin_shapes p pr in
  let nodes = ref [] in
  let add n = if not (List.mem n !nodes) then nodes := n :: !nodes in
  List.iter
    (fun (layer, (r : Geom.Rect.t)) ->
      match layer with
      | Pdk.Layer.M1 ->
        for i = 0 to g.nx - 1 do
          let x = track_x g i in
          if r.lx <= x && x <= r.hx then
            for j = 0 to g.ny - 1 do
              let y = track_y g j in
              if r.ly <= y && y <= r.hy then add (node g ~layer:1 ~i ~j)
            done
        done
      | Pdk.Layer.M0 ->
        let j = y_to_track g ((r.ly + r.hy) / 2) in
        for i = 0 to g.nx - 1 do
          let x = track_x g i in
          if r.lx <= x && x <= r.hx then add (node g ~layer:1 ~i ~j)
        done
      | Pdk.Layer.M2 | Pdk.Layer.M3 | Pdk.Layer.M4 -> ())
    shapes;
  if !nodes = [] then begin
    (* degenerate pin: fall back to the node nearest the pin centre *)
    let c = Place.Placement.pin_pos p pr in
    add
      (node g ~layer:1 ~i:(x_to_track g c.Geom.Point.x)
         ~j:(y_to_track g c.Geom.Point.y))
  end;
  !nodes

let overflow_count g =
  let count = ref 0 in
  let size = node_count g in
  for n = 0 to size - 1 do
    if has_wire_edge g n && g.wire_usage.(n) > 1 then incr count;
    if has_via_edge g n && g.via_usage.(n) > 1 then incr count
  done;
  !count

let clear_usage g =
  Array.fill g.wire_usage 0 (Array.length g.wire_usage) 0;
  Array.fill g.via_usage 0 (Array.length g.via_usage) 0
