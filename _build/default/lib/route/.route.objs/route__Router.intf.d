lib/route/router.mli: Grid Netlist Place
