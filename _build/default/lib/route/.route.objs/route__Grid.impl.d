lib/route/grid.ml: Array Geom List Netlist Pdk Place
