lib/route/metrics.ml: Array Format Grid List Netlist Place Router
