lib/route/heap.ml: Array
