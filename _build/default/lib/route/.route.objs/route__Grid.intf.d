lib/route/grid.mli: Netlist Place
