lib/route/congestion.ml: Array Format Grid Router
