lib/route/congestion.mli: Format Router
