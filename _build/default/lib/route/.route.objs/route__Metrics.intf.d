lib/route/metrics.mli: Format Router
