lib/route/router.ml: Array Geom Grid Heap Int List Netlist Pdk Place
