lib/route/heap.mli:
