(** Capacity-aware detailed router.

    Every signal net is decomposed into 2-pin subnets by a Manhattan
    minimum spanning tree over its pin positions; subnets are routed with
    multi-source A* over the track grid (sources include the net's
    already-routed nodes, so routes reuse the growing tree). Costs are
    wirelength plus via cost plus a congestion penalty on overfull edges;
    rip-up-and-reroute passes with escalating penalty resolve overflow.

    Because A* is cost-optimal and a direct vertical M1 route is the
    cheapest possible connection (no vias onto M2, shortest length), the
    router exploits dM1 opportunities exactly when the placement makes
    them feasible — the behaviour the paper relies on from its commercial
    router. Set [use_dm1 = false] to forbid M1 inter-row routing and
    measure the ablation. *)

type config = {
  via_cost : int;          (** cost of one via, in DBU-equivalents *)
  overflow_penalty : int;  (** added cost per existing user of an edge *)
  ripup_passes : int;
  search_margin : int;     (** A* window margin around the subnet bbox, tracks *)
  use_dm1 : bool;          (** when false, M1 edges crossing row boundaries
                               are treated as blocked *)
  astar_weight_pct : int;  (** heuristic inflation for weighted A*, percent;
                               100 = admissible/optimal, 125 = default *)
  m1_surcharge : int;      (** extra cost per M1 wire edge: M1 tracks are
                               partially consumed by pins, so the router
                               treats them as scarcer than upper layers;
                               short dM1 connections remain the cheapest
                               way to join aligned pins *)
  layers : int;            (** metal layers available to the router, 2..6 *)
  pdn_stripes : bool;      (** install power-distribution blockage *)
}

val default_config : config

type edge =
  | Wire of int  (** wire edge at node n: n -- successor in pref. dir. *)
  | Via of int   (** via edge at node n: n -- same (i,j) one layer up *)

type subnet = {
  src : Netlist.Design.pin_ref;
  dst : Netlist.Design.pin_ref;
  mutable path : edge list;
  mutable routed : bool;
}

type net_route = {
  net_id : int;
  subnets : subnet array;
}

type result = {
  grid : Grid.t;
  routes : net_route array;
  config : config;
  mutable failed_subnets : int;
}

(** [route ?config placement] routes all signal nets of the placement. *)
val route : ?config:config -> Place.Placement.t -> result
