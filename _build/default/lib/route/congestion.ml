type t = {
  tile_tracks : int;
  pitch : int;
  tx : int;
  ty : int;
  ratio : float array;
}

let of_result ?(tile_tracks = 8) (r : Router.result) =
  let g = r.Router.grid in
  let tx = (g.Grid.nx + tile_tracks - 1) / tile_tracks in
  let ty = (g.Grid.ny + tile_tracks - 1) / tile_tracks in
  let used = Array.make (tx * ty) 0 in
  let cap = Array.make (tx * ty) 0 in
  let size = Grid.node_count g in
  for n = 0 to size - 1 do
    if Grid.has_wire_edge g n then begin
      let idx =
        ((Grid.j_of_node g n / tile_tracks) * tx)
        + (Grid.i_of_node g n / tile_tracks)
      in
      if g.Grid.wire_owner.(n) <> Grid.blocked then begin
        cap.(idx) <- cap.(idx) + 1;
        used.(idx) <- used.(idx) + g.Grid.wire_usage.(n)
      end
    end
  done;
  let ratio =
    Array.init (tx * ty) (fun i ->
        if cap.(i) = 0 then 0.0 else float_of_int used.(i) /. float_of_int cap.(i))
  in
  { tile_tracks; pitch = g.Grid.pitch; tx; ty; ratio }

let at t ~x ~y =
  let clamp lo hi v = max lo (min hi v) in
  let i = clamp 0 (t.tx - 1) (x / (t.pitch * t.tile_tracks)) in
  let j = clamp 0 (t.ty - 1) (y / (t.pitch * t.tile_tracks)) in
  t.ratio.((j * t.tx) + i)

let overflow_ratio t =
  let over = Array.fold_left (fun acc r -> if r > 1.0 then acc + 1 else acc) 0 t.ratio in
  float_of_int over /. float_of_int (max 1 (Array.length t.ratio))

let pp ppf t =
  let maxr = Array.fold_left max 0.0 t.ratio in
  Format.fprintf ppf "congestion{%dx%d tiles, max %.2f, overflow %.1f%%}" t.tx
    t.ty maxr (100.0 *. overflow_ratio t)
