(* Tests for the reporting layer: table rendering, CSV, flow helpers. *)

let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let test_render_alignment () =
  let out =
    Report.Table.render ~header:[ "a"; "long" ] ~rows:[ [ "xx"; "y" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
   | h :: sep :: row :: _ ->
     checkb "header and row same width" true
       (String.length h = String.length row);
     checkb "separator dashes" true (String.contains sep '-')
   | _ -> Alcotest.fail "expected three lines");
  checkb "contains all cells" true
    (List.for_all
       (fun cell ->
         (* each cell appears in the output *)
         let re = Str.regexp_string cell in
         (try ignore (Str.search_forward re out 0); true with Not_found -> false))
       [ "a"; "long"; "xx"; "y" ])

let test_csv_escaping () =
  let out =
    Report.Table.to_csv ~header:[ "x" ] ~rows:[ [ "has,comma" ]; [ "plain" ] ]
  in
  checks "csv" "x\n\"has,comma\"\nplain\n" out

let test_number_formats () =
  checks "fi" "42" (Report.Table.fi 42);
  checks "f1" "3.1" (Report.Table.f1 3.14159);
  checks "f3" "3.142" (Report.Table.f3 3.14159);
  checks "pct up" "(+10.0)" (Report.Table.pct 10.0 11.0);
  checks "pct down" "(-50.0)" (Report.Table.pct 10.0 5.0);
  checks "pct zero base" "(0.0)" (Report.Table.pct 0.0 5.0)

let test_delta_pct () =
  checkf "delta" 10.0 (Report.Flow.delta_pct 100.0 110.0);
  checkf "zero base" 0.0 (Report.Flow.delta_pct 0.0 5.0)

let test_prepare_legal () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_evaluate_consistent_clock () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let params = Vm1.Params.default p.Place.Placement.tech in
  let e1, clock = Report.Flow.evaluate params p in
  let e2, clock2 = Report.Flow.evaluate ~clock_ps:clock params p in
  checkf "same clock when passed" clock clock2;
  checkb "same dm1 on re-evaluation" true (e1.Report.Flow.dm1 = e2.Report.Flow.dm1)

(* --- svg --- *)

let test_svg_placement_wellformed () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let svg = Report.Svg.placement p in
  checkb "opens svg" true (String.length svg > 100);
  checkb "has xmlns" true
    (try ignore (Str.search_forward (Str.regexp_string "xmlns") svg 0); true
     with Not_found -> false);
  checkb "closes svg" true
    (try ignore (Str.search_forward (Str.regexp_string "</svg>") svg 0); true
     with Not_found -> false);
  (* one rect per instance at least (plus die + pins) *)
  let rects = ref 0 in
  let idx = ref 0 in
  (try
     while true do
       idx := Str.search_forward (Str.regexp_string "<rect") svg !idx + 1;
       incr rects
     done
   with Not_found -> ());
  checkb "a rect per instance" true
    (!rects > Place.Placement.num_instances p)

let test_svg_routed_and_congestion () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let r = Route.Router.route p in
  let routed = Report.Svg.routed r in
  checkb "routed has lines" true
    (try ignore (Str.search_forward (Str.regexp_string "<line") routed 0); true
     with Not_found -> false);
  let heat = Report.Svg.congestion r in
  checkb "congestion has tiles" true
    (try ignore (Str.search_forward (Str.regexp_string "rgb(255,") heat 0); true
     with Not_found -> false)

(* --- ablations --- *)

let test_solver_ladder_ordering () =
  let points = Report.Ablation.Solver_ladder.run ~scale:32 ~windows:4 () in
  let find name =
    List.find (fun (pt : Report.Ablation.Solver_ladder.point) -> pt.solver = name) points
  in
  let greedy = find "greedy" and anneal = find "anneal" in
  let exact = find "exact" and milp = find "milp" in
  checkb "exact is the optimum" true (exact.optimal_gap = 0.0);
  checkb "milp matches exact" true (abs_float milp.optimal_gap < 0.5);
  checkb "anneal no worse than greedy" true
    (anneal.total_objective <= greedy.total_objective +. 1e-6);
  checkb "greedy gap nonnegative" true (greedy.optimal_gap >= -1e-6)

let test_no_dm1_ablation () =
  let points = Report.Ablation.No_dm1.run ~scale:32 () in
  match points with
  | [ with_dm1; without ] ->
    checkb "dM1 only with the mechanism" true
      (with_dm1.Report.Ablation.No_dm1.dm1 > 0
       && without.Report.Ablation.No_dm1.dm1 = 0);
    checkb "dM1 saves vias" true
      (with_dm1.Report.Ablation.No_dm1.via12
       <= without.Report.Ablation.No_dm1.via12)
  | _ -> Alcotest.fail "expected two points"

let test_baseline_dp_ablation () =
  let points = Report.Ablation.Baseline_dp.run ~scale:32 () in
  match points with
  | [ raw; dp; vm1 ] ->
    checkb "DP reduces HPWL" true
      (dp.Report.Ablation.Baseline_dp.hpwl_um
       <= raw.Report.Ablation.Baseline_dp.hpwl_um);
    checkb "vm1 creates far more dM1 than DP" true
      (vm1.Report.Ablation.Baseline_dp.dm1
       > 2 * dp.Report.Ablation.Baseline_dp.dm1)
  | _ -> Alcotest.fail "expected three points"

(* --- congestion map --- *)

let test_congestion_map () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let r = Route.Router.route p in
  let map = Route.Congestion.of_result r in
  checkb "ratios in [0, 3]" true
    (Array.for_all (fun x -> x >= 0.0 && x < 3.0) map.Route.Congestion.ratio);
  (* the map reflects usage: the total must be positive after routing *)
  checkb "some usage" true
    (Array.exists (fun x -> x > 0.0) map.Route.Congestion.ratio);
  (* clamping: out-of-die queries do not raise *)
  checkb "clamped" true (Route.Congestion.at map ~x:(-100) ~y:(max_int / 2) >= 0.0)

let test_congestion_cost_plumbing () =
  let p = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  let cost = Report.Flow.congestion_cost ~weight:10.0 ~threshold:0.0 p in
  (* threshold 0 taxes every used tile, so some candidate cost is positive *)
  let found = ref false in
  for site = 0 to p.Place.Placement.sites_per_row - 1 do
    for row = 0 to p.Place.Placement.num_rows - 1 do
      if cost ~site ~row > 0.0 then found := true
    done
  done;
  checkb "cost map active" true !found;
  (* an optimisation run with the cost installed stays legal *)
  let params = Vm1.Params.default p.Place.Placement.tech in
  let config =
    { Vm1.Vm1_opt.default_config with Vm1.Vm1_opt.candidate_cost = Some cost }
  in
  ignore (Vm1.Vm1_opt.run ~config params p);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render alignment" `Quick test_render_alignment;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "number formats" `Quick test_number_formats;
        ] );
      ( "flow",
        [
          Alcotest.test_case "delta pct" `Quick test_delta_pct;
          Alcotest.test_case "prepare legal" `Quick test_prepare_legal;
          Alcotest.test_case "evaluate clock" `Quick test_evaluate_consistent_clock;
        ] );
      ( "svg",
        [
          Alcotest.test_case "placement svg" `Quick test_svg_placement_wellformed;
          Alcotest.test_case "routed + congestion svg" `Quick test_svg_routed_and_congestion;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "solver ladder" `Slow test_solver_ladder_ordering;
          Alcotest.test_case "no-dm1 router" `Quick test_no_dm1_ablation;
          Alcotest.test_case "dp baseline" `Quick test_baseline_dp_ablation;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "map" `Quick test_congestion_map;
          Alcotest.test_case "cost plumbing" `Quick test_congestion_cost_plumbing;
        ] );
    ]
