(* Tests for the PDK: technology parameters, cell architectures and the
   generated standard-cell libraries. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let closed_tech = Pdk.Tech.default Pdk.Cell_arch.Closed_m1
let open_tech = Pdk.Tech.default Pdk.Cell_arch.Open_m1
let conv_tech = Pdk.Tech.default Pdk.Cell_arch.Conventional12
let closed_lib = Pdk.Libgen.generate closed_tech
let open_lib = Pdk.Libgen.generate open_tech
let conv_lib = Pdk.Libgen.generate conv_tech

(* --- Layer --- *)

let test_layer_directions () =
  checkb "M1 vertical" true (Pdk.Layer.direction Pdk.Layer.M1 = Pdk.Layer.Vertical);
  checkb "M2 horizontal" true
    (Pdk.Layer.direction Pdk.Layer.M2 = Pdk.Layer.Horizontal);
  checkb "M0 horizontal" true
    (Pdk.Layer.direction Pdk.Layer.M0 = Pdk.Layer.Horizontal);
  checkb "M3 vertical" true (Pdk.Layer.direction Pdk.Layer.M3 = Pdk.Layer.Vertical)

let test_layer_index_roundtrip () =
  List.iter
    (fun l -> checkb "roundtrip" true (Pdk.Layer.of_index (Pdk.Layer.index l) = l))
    Pdk.Layer.all;
  Alcotest.check_raises "bad index" (Invalid_argument "Layer.of_index: 9")
    (fun () -> ignore (Pdk.Layer.of_index 9))

(* --- Cell_arch --- *)

let test_arch_strings () =
  List.iter
    (fun a ->
      checkb "roundtrip" true
        (Pdk.Cell_arch.of_string (Pdk.Cell_arch.to_string a) = Some a))
    [ Pdk.Cell_arch.Conventional12; Pdk.Cell_arch.Closed_m1; Pdk.Cell_arch.Open_m1 ];
  checkb "unknown" true (Pdk.Cell_arch.of_string "bogus" = None)

let test_arch_inter_row_m1 () =
  checkb "conv blocks" false
    (Pdk.Cell_arch.allows_inter_row_m1 Pdk.Cell_arch.Conventional12);
  checkb "closed allows" true
    (Pdk.Cell_arch.allows_inter_row_m1 Pdk.Cell_arch.Closed_m1);
  checkb "open allows" true
    (Pdk.Cell_arch.allows_inter_row_m1 Pdk.Cell_arch.Open_m1)

(* --- Tech --- *)

let test_tech_dimensions () =
  check "site width" 36 closed_tech.Pdk.Tech.site_width;
  check "7.5-track row" 270 closed_tech.Pdk.Tech.row_height;
  check "12-track row" 432 conv_tech.Pdk.Tech.row_height;
  check "gamma" 3 closed_tech.Pdk.Tech.gamma;
  checkb "m1 pitch = site width (ClosedM1 requirement)" true
    (closed_tech.Pdk.Tech.site_width = 36)

let test_tech_tracks () =
  check "track 0" 18 (Pdk.Tech.m1_track_x closed_tech 0);
  check "track 5" (5 * 36 + 18) (Pdk.Tech.m1_track_x closed_tech 5);
  check "track_of_x" 5 (Pdk.Tech.m1_track_of_x closed_tech (5 * 36 + 18));
  checkb "on track" true (Pdk.Tech.is_on_m1_track closed_tech 18);
  checkb "off track" false (Pdk.Tech.is_on_m1_track closed_tech 19);
  check "row y" (3 * 270) (Pdk.Tech.row_y closed_tech 3)

(* --- Library shape invariants --- *)

let test_extended_kinds_present () =
  List.iter
    (fun name ->
      checkb (name ^ " present") true (Pdk.Libgen.find_opt closed_lib name <> None))
    [ "AND2_X1"; "OR2_X1"; "XNOR2_X1" ]

let test_library_complete () =
  check "same cell count across archs" (List.length closed_lib.cells)
    (List.length open_lib.cells);
  check "same cell count conv" (List.length closed_lib.cells)
    (List.length conv_lib.cells);
  checkb "has INV_X1" true (Pdk.Libgen.find_opt closed_lib "INV_X1" <> None);
  checkb "has DFF_X1" true (Pdk.Libgen.find_opt closed_lib "DFF_X1" <> None);
  checkb "no bogus" true (Pdk.Libgen.find_opt closed_lib "NAND9_X9" = None);
  Alcotest.check_raises "find raises" (Invalid_argument "Libgen.find: no master FOO")
    (fun () -> ignore (Pdk.Libgen.find closed_lib "FOO"))

let test_library_partitions () =
  let n_comb = List.length (Pdk.Libgen.combinational closed_lib) in
  let n_seq = List.length (Pdk.Libgen.sequential closed_lib) in
  let n_fill = List.length (Pdk.Libgen.fillers closed_lib) in
  check "partition covers library" (List.length closed_lib.cells)
    (n_comb + n_seq + n_fill);
  check "two flop drives" 2 n_seq;
  check "three fillers" 3 n_fill

let test_master_geometry lib () =
  let tech = lib.Pdk.Libgen.tech in
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      checkb "width consistent" true (c.width = c.width_sites * tech.site_width);
      check "height = row" tech.row_height c.height;
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          let bb = Pdk.Stdcell.pin_bbox p in
          checkb
            (Printf.sprintf "%s.%s inside cell" c.name p.pin_name)
            true
            (bb.Geom.Rect.lx >= 0 && bb.Geom.Rect.hx <= c.width
             && bb.Geom.Rect.ly >= 0 && bb.Geom.Rect.hy <= c.height))
        c.pins)
    lib.Pdk.Libgen.cells

let test_closed_pins_on_m1_tracks () =
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          List.iter
            (fun (layer, r) ->
              checkb "ClosedM1 pin on M1" true (Pdk.Layer.equal layer Pdk.Layer.M1);
              let cx = (r.Geom.Rect.lx + r.Geom.Rect.hx) / 2 in
              checkb
                (Printf.sprintf "%s.%s centred on track" c.name p.pin_name)
                true
                (Pdk.Tech.is_on_m1_track closed_tech cx);
              checkb "1D vertical (taller than wide)" true
                (Geom.Rect.height r > Geom.Rect.width r))
            p.shapes)
        c.pins)
    closed_lib.cells

let test_open_pins_on_m0 () =
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          List.iter
            (fun (layer, r) ->
              checkb "OpenM1 pin on M0" true (Pdk.Layer.equal layer Pdk.Layer.M0);
              checkb "horizontal (wider than tall)" true
                (Geom.Rect.width r > Geom.Rect.height r))
            p.shapes)
        c.pins)
    open_lib.cells

let test_distinct_pin_tracks_closed () =
  (* within a ClosedM1 master, no two pins share an M1 track *)
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      let tracks =
        List.concat_map
          (fun (p : Pdk.Stdcell.pin) ->
            List.map
              (fun (_, r) -> (r.Geom.Rect.lx + r.Geom.Rect.hx) / 2)
              p.shapes)
          c.pins
      in
      let sorted = List.sort_uniq Int.compare tracks in
      check (c.name ^ " distinct tracks") (List.length tracks) (List.length sorted))
    closed_lib.cells

let test_electrical_scaling () =
  let x1 = Pdk.Libgen.find closed_lib "INV_X1" in
  let x4 = Pdk.Libgen.find closed_lib "INV_X4" in
  checkb "bigger drive, lower resistance" true
    (x4.Pdk.Stdcell.drive_res < x1.Pdk.Stdcell.drive_res);
  checkb "bigger drive, higher cap" true
    (x4.Pdk.Stdcell.cap_in > x1.Pdk.Stdcell.cap_in);
  checkb "bigger drive, higher leakage" true
    (x4.Pdk.Stdcell.leakage > x1.Pdk.Stdcell.leakage)

let test_pin_accessors () =
  let nand = Pdk.Libgen.find closed_lib "NAND2_X1" in
  check "two inputs" 2 (List.length (Pdk.Stdcell.inputs nand));
  checkb "has output" true (Pdk.Stdcell.output nand <> None);
  checkb "no clock" true (Pdk.Stdcell.clock nand = None);
  checkb "not sequential" false (Pdk.Stdcell.is_sequential nand);
  let dff = Pdk.Libgen.find closed_lib "DFF_X1" in
  checkb "dff sequential" true (Pdk.Stdcell.is_sequential dff);
  checkb "dff has clock" true (Pdk.Stdcell.clock dff <> None);
  checks "find_pin" "ZN" (Pdk.Stdcell.find_pin nand "ZN").Pdk.Stdcell.pin_name;
  Alcotest.check_raises "find_pin raises"
    (Invalid_argument "Stdcell.find_pin: NAND2_X1 has no pin Q") (fun () ->
      ignore (Pdk.Stdcell.find_pin nand "Q"))

let test_placed_pin_shapes () =
  let inv = Pdk.Libgen.find closed_lib "INV_X1" in
  let pin = Pdk.Stdcell.find_pin inv "A" in
  let origin = Geom.Point.make 720 540 in
  let placed =
    Pdk.Stdcell.placed_pin_bbox inv ~orient:Geom.Orient.N ~origin pin
  in
  let local = Pdk.Stdcell.pin_bbox pin in
  check "x shifted" (local.Geom.Rect.lx + 720) placed.Geom.Rect.lx;
  check "y shifted" (local.Geom.Rect.ly + 540) placed.Geom.Rect.ly;
  (* flipping about y keeps the pin inside the cell and on a track *)
  let flipped =
    Pdk.Stdcell.placed_pin_bbox inv ~orient:Geom.Orient.FN ~origin pin
  in
  checkb "flipped inside cell" true
    (flipped.Geom.Rect.lx >= 720 && flipped.Geom.Rect.hx <= 720 + inv.width);
  let cx = (flipped.Geom.Rect.lx + flipped.Geom.Rect.hx) / 2 in
  checkb "flipped still on track" true (Pdk.Tech.is_on_m1_track closed_tech cx)

let test_flip_preserves_track_alignment_all_masters () =
  (* the FN orientation must keep every ClosedM1 pin on the M1 track grid,
     otherwise the flip degree of freedom would break alignment *)
  List.iter
    (fun (c : Pdk.Stdcell.t) ->
      List.iter
        (fun (p : Pdk.Stdcell.pin) ->
          let bb =
            Pdk.Stdcell.placed_pin_bbox c ~orient:Geom.Orient.FN
              ~origin:Geom.Point.zero p
          in
          let cx = (bb.Geom.Rect.lx + bb.Geom.Rect.hx) / 2 in
          checkb
            (Printf.sprintf "%s.%s" c.name p.pin_name)
            true
            (Pdk.Tech.is_on_m1_track closed_tech cx))
        c.pins)
    closed_lib.cells

let () =
  Alcotest.run "pdk"
    [
      ( "layer",
        [
          Alcotest.test_case "directions" `Quick test_layer_directions;
          Alcotest.test_case "index roundtrip" `Quick test_layer_index_roundtrip;
        ] );
      ( "cell_arch",
        [
          Alcotest.test_case "strings" `Quick test_arch_strings;
          Alcotest.test_case "inter-row M1" `Quick test_arch_inter_row_m1;
        ] );
      ( "tech",
        [
          Alcotest.test_case "dimensions" `Quick test_tech_dimensions;
          Alcotest.test_case "tracks" `Quick test_tech_tracks;
        ] );
      ( "library",
        [
          Alcotest.test_case "complete" `Quick test_library_complete;
          Alcotest.test_case "extended kinds" `Quick test_extended_kinds_present;
          Alcotest.test_case "partitions" `Quick test_library_partitions;
          Alcotest.test_case "geometry closed" `Quick (test_master_geometry closed_lib);
          Alcotest.test_case "geometry open" `Quick (test_master_geometry open_lib);
          Alcotest.test_case "geometry conv" `Quick (test_master_geometry conv_lib);
          Alcotest.test_case "closed pins on tracks" `Quick test_closed_pins_on_m1_tracks;
          Alcotest.test_case "open pins on M0" `Quick test_open_pins_on_m0;
          Alcotest.test_case "distinct pin tracks" `Quick test_distinct_pin_tracks_closed;
          Alcotest.test_case "electrical scaling" `Quick test_electrical_scaling;
        ] );
      ( "stdcell",
        [
          Alcotest.test_case "pin accessors" `Quick test_pin_accessors;
          Alcotest.test_case "placed pin shapes" `Quick test_placed_pin_shapes;
          Alcotest.test_case "flip keeps track alignment" `Quick
            test_flip_preserves_track_alignment_all_masters;
        ] );
    ]
