(* Smoke coverage for the experiment drivers at tiny scale: each driver
   must run, produce self-consistent points, and render. *)

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let test_fig6_driver () =
  let points = Report.Expt.Fig6.run ~scale:32 ~alphas:[ 0.0; 1200.0 ] () in
  check "two points" 2 (List.length points);
  (match points with
   | [ zero; high ] ->
     checkb "alpha=1200 finds more alignments" true
       (high.Report.Expt.Fig6.alignments >= zero.Report.Expt.Fig6.alignments);
     checkb "dm1 tracks alignments" true (high.Report.Expt.Fig6.dm1 > 0)
   | _ -> Alcotest.fail "expected two points");
  checkb "renders" true
    (String.length (Report.Expt.Fig6.render points) > 0)

let test_fig7_driver () =
  let points = Report.Expt.Fig7.run ~scale:32 () in
  check "five sequences" 5 (List.length points);
  List.iter
    (fun (pt : Report.Expt.Fig7.point) ->
      checkb "positive rwl" true (pt.rwl_um > 0.0);
      checkb "nonnegative runtime" true (pt.runtime_s >= 0.0))
    points

let test_fig8_driver () =
  let points = Report.Expt.Fig8.run ~scale:32 ~utils:[ 0.80; 0.88 ] () in
  check "two points" 2 (List.length points);
  List.iter
    (fun (pt : Report.Expt.Fig8.point) ->
      checkb "optimiser never adds DRVs" true (pt.drvs_opt <= pt.drvs_init);
      checkb "dm1 grows" true (pt.dm1_opt >= pt.dm1_init))
    points

let test_table2_driver () =
  let rows =
    Report.Expt.Table2.run ~scale:32 ~archs:[ Pdk.Cell_arch.Closed_m1 ]
      ~designs:[ Netlist.Designs.M0 ] ()
  in
  check "one row" 1 (List.length rows);
  let c = List.hd rows in
  checkb "dm1 increases" true
    (c.Report.Flow.final.Report.Flow.dm1 >= c.Report.Flow.init.Report.Flow.dm1);
  checkb "renders" true (String.length (Report.Expt.Table2.render rows) > 0)

let test_fig5_driver () =
  let points = Report.Expt.Fig5.run ~scale:32 () in
  checkb "several points" true (List.length points >= 6);
  List.iter
    (fun (pt : Report.Expt.Fig5.point) ->
      checkb "positive rwl" true (pt.rwl_um > 0.0))
    points;
  (* the render normalises against the best point *)
  let rendered = Report.Expt.Fig5.render points in
  checkb "contains normalised column" true
    (String.length rendered > 0)

let () =
  Alcotest.run "expt"
    [
      ( "drivers",
        [
          Alcotest.test_case "fig5" `Slow test_fig5_driver;
          Alcotest.test_case "fig6" `Quick test_fig6_driver;
          Alcotest.test_case "fig7" `Quick test_fig7_driver;
          Alcotest.test_case "fig8" `Slow test_fig8_driver;
          Alcotest.test_case "table2" `Quick test_table2_driver;
        ] );
    ]
