(* Tests for the timing and power models. *)

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1)

(* hand-built chain: PI -> INV -> INV -> DFF.D, with clock on DFF.CK *)
let chain () =
  let inv = Pdk.Libgen.find lib "INV_X1" in
  let dff = Pdk.Libgen.find lib "DFF_X1" in
  (* nets: 0 = pi, 1 = inv0 out, 2 = inv1 out, 3 = clk *)
  let instances =
    [|
      { Netlist.Design.inst_name = "i0"; master = inv; pin_nets = [| 0; 1 |] };
      { Netlist.Design.inst_name = "i1"; master = inv; pin_nets = [| 1; 2 |] };
      { Netlist.Design.inst_name = "f"; master = dff; pin_nets = [| 2; 3; -1 |] };
    |]
  in
  let nets =
    [|
      { Netlist.Design.net_name = "pi";
        pins = [| { Netlist.Design.inst = 0; pin = 0 } |]; is_clock = false };
      { Netlist.Design.net_name = "n1";
        pins =
          [| { Netlist.Design.inst = 0; pin = 1 };
             { Netlist.Design.inst = 1; pin = 0 } |];
        is_clock = false };
      { Netlist.Design.net_name = "n2";
        pins =
          [| { Netlist.Design.inst = 1; pin = 1 };
             { Netlist.Design.inst = 2; pin = 0 } |];
        is_clock = false };
      { Netlist.Design.net_name = "clk";
        pins = [| { Netlist.Design.inst = 2; pin = 1 } |]; is_clock = true };
    |]
  in
  { Netlist.Design.name = "chain"; lib; instances; nets }

let test_chain_arrival_hand_computed () =
  let d = chain () in
  let lengths = Array.make 4 0 in
  let r = Sta.Timing.analyze d ~net_lengths:lengths in
  (* with zero wire length: stage = intrinsic + drive_res * sink_cap *)
  let inv = Pdk.Libgen.find lib "INV_X1" in
  let dff = Pdk.Libgen.find lib "DFF_X1" in
  let stage1 =
    inv.Pdk.Stdcell.intrinsic_delay
    +. (inv.Pdk.Stdcell.drive_res *. inv.Pdk.Stdcell.cap_in)
  in
  let stage2 =
    inv.Pdk.Stdcell.intrinsic_delay
    +. (inv.Pdk.Stdcell.drive_res *. dff.Pdk.Stdcell.cap_in)
  in
  checkf "critical path" (stage1 +. stage2 +. 10.0) r.Sta.Timing.critical_ps

let test_wirelength_slows_path () =
  let d = chain () in
  let short = Sta.Timing.analyze d ~net_lengths:(Array.make 4 0) in
  let long = Sta.Timing.analyze d ~net_lengths:[| 0; 50000; 50000; 0 |] in
  checkb "longer wires, longer path" true
    (long.Sta.Timing.critical_ps > short.Sta.Timing.critical_ps)

let test_auto_clock_meets_timing () =
  let d = chain () in
  let r = Sta.Timing.analyze d ~net_lengths:(Array.make 4 0) in
  checkf "wns is zero at auto clock" 0.0 r.Sta.Timing.wns_ns

let test_fixed_clock_violates () =
  let d = chain () in
  let r = Sta.Timing.analyze ~clock_ps:5.0 d ~net_lengths:(Array.make 4 0) in
  checkb "tight clock gives negative wns" true (r.Sta.Timing.wns_ns < 0.0)

let test_generated_design_sta () =
  let design =
    Netlist.Generator.generate lib
      (Netlist.Generator.default_config ~n_instances:400 ~seed:11)
      ~name:"t"
  in
  let lengths = Array.make (Netlist.Design.num_nets design) 1000 in
  let r = Sta.Timing.analyze design ~net_lengths:lengths in
  checkb "positive critical path" true (r.Sta.Timing.critical_ps > 0.0);
  checkf "meets timing at auto clock" 0.0 r.Sta.Timing.wns_ns

(* --- power --- *)

let test_power_positive_and_monotonic () =
  let d = chain () in
  let p0 = Sta.Power.analyze d ~net_lengths:(Array.make 4 0) in
  let p1 = Sta.Power.analyze d ~net_lengths:[| 10000; 10000; 10000; 0 |] in
  checkb "positive" true (p0.Sta.Power.total_mw > 0.0);
  checkb "monotonic in wirelength" true
    (p1.Sta.Power.total_mw > p0.Sta.Power.total_mw);
  checkf "total = dyn + leak" p0.Sta.Power.total_mw
    (p0.Sta.Power.dynamic_mw +. p0.Sta.Power.leakage_mw)

let test_power_leakage_scales_with_cells () =
  let mk n =
    Netlist.Generator.generate lib
      (Netlist.Generator.default_config ~n_instances:n ~seed:3)
      ~name:"t"
  in
  let small = mk 100 and big = mk 800 in
  let p_small =
    Sta.Power.analyze small ~net_lengths:(Array.make (Netlist.Design.num_nets small) 0)
  in
  let p_big =
    Sta.Power.analyze big ~net_lengths:(Array.make (Netlist.Design.num_nets big) 0)
  in
  checkb "leakage grows" true
    (p_big.Sta.Power.leakage_mw > p_small.Sta.Power.leakage_mw)

let () =
  Alcotest.run "sta"
    [
      ( "timing",
        [
          Alcotest.test_case "hand-computed chain" `Quick test_chain_arrival_hand_computed;
          Alcotest.test_case "wire slows path" `Quick test_wirelength_slows_path;
          Alcotest.test_case "auto clock meets" `Quick test_auto_clock_meets_timing;
          Alcotest.test_case "tight clock violates" `Quick test_fixed_clock_violates;
          Alcotest.test_case "generated design" `Quick test_generated_design_sta;
        ] );
      ( "power",
        [
          Alcotest.test_case "positive, monotonic" `Quick test_power_positive_and_monotonic;
          Alcotest.test_case "leakage scales" `Quick test_power_leakage_scales_with_cells;
        ] );
    ]
