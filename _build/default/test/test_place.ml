(* Tests for placement: die sizing, legalisation, HPWL, global placement. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1)

let design ?(n = 300) ?(seed = 5) () =
  Netlist.Generator.generate lib
    (Netlist.Generator.default_config ~n_instances:n ~seed)
    ~name:"t"

let fresh ?(n = 300) ?(utilization = 0.75) () =
  Place.Placement.create (design ~n ()) ~utilization

(* --- Placement DB --- *)

let test_create_die_sizing () =
  let p = fresh () in
  let u = Place.Placement.utilization p in
  checkb "utilization near target" true (u > 0.65 && u <= 0.85);
  checkb "die roughly square" true
    (let w = float_of_int (Geom.Rect.width p.die) in
     let h = float_of_int (Geom.Rect.height p.die) in
     w /. h > 0.5 && w /. h < 2.0);
  check "rows consistent" (Geom.Rect.height p.die)
    (p.num_rows * p.tech.Pdk.Tech.row_height)

let test_create_rejects_bad_util () =
  let d = design () in
  Alcotest.check_raises "zero util"
    (Invalid_argument "Placement.create: utilization must be in (0,1]")
    (fun () -> ignore (Place.Placement.create d ~utilization:0.0))

let test_move_and_accessors () =
  let p = fresh () in
  Place.Placement.move p 3 ~site:10 ~row:2 ~orient:Geom.Orient.FN;
  check "x" (10 * 36) p.xs.(3);
  check "y" (2 * 270) p.ys.(3);
  check "site" 10 (Place.Placement.site_of_inst p 3);
  check "row" 2 (Place.Placement.row_of_inst p 3);
  checkb "orient" true (Geom.Orient.equal p.orients.(3) Geom.Orient.FN);
  let r = Place.Placement.instance_rect p 3 in
  check "rect lx" (10 * 36) r.Geom.Rect.lx;
  check "rect height" 270 (Geom.Rect.height r)

let test_copy_assign_independent () =
  let p = fresh () in
  Place.Global.place p;
  let q = Place.Placement.copy p in
  Place.Placement.move p 0 ~site:1 ~row:1 ~orient:Geom.Orient.N;
  checkb "copy unaffected" true (q.xs.(0) <> p.xs.(0) || q.ys.(0) <> p.ys.(0) ||
                                 (q.xs.(0) = p.xs.(0) && q.ys.(0) = p.ys.(0) &&
                                  Place.Placement.site_of_inst p 0 = 1));
  Place.Placement.assign p q;
  check "assign restores x" q.xs.(0) p.xs.(0);
  check "assign restores y" q.ys.(0) p.ys.(0)

let test_pin_pos_on_track () =
  let p = fresh () in
  Place.Global.place p;
  (* every ClosedM1 pin centre must sit on the M1 track grid *)
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k _ ->
          let pos = Place.Placement.pin_pos p { Netlist.Design.inst = i; pin = k } in
          checkb "pin x on track" true
            (Pdk.Tech.is_on_m1_track p.tech pos.Geom.Point.x))
        inst.master.Pdk.Stdcell.pins)
    p.design.Netlist.Design.instances

let test_overlap_count_detects () =
  let p = fresh () in
  Place.Global.place p;
  check "legal has no overlap" 0 (Place.Placement.overlap_count p);
  (* force one overlap *)
  let s0 = Place.Placement.site_of_inst p 0 and r0 = Place.Placement.row_of_inst p 0 in
  Place.Placement.move p 1 ~site:s0 ~row:r0 ~orient:Geom.Orient.N;
  checkb "overlap detected" true (Place.Placement.overlap_count p > 0)

(* --- Legalize --- *)

let all_at p x y =
  Array.iteri (fun i _ -> p.Place.Placement.xs.(i) <- x; p.Place.Placement.ys.(i) <- y)
    p.Place.Placement.xs

let test_legalize_from_origin () =
  let p = fresh () in
  all_at p 0 0;
  Place.Legalize.legalize p;
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_legalize_from_center () =
  let p = fresh () in
  all_at p (Geom.Rect.width p.die / 2) (Geom.Rect.height p.die / 2);
  Place.Legalize.legalize p;
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_legalize_from_corner () =
  let p = fresh () in
  all_at p (Geom.Rect.width p.die) (Geom.Rect.height p.die);
  Place.Legalize.legalize p;
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_legalize_high_util () =
  let p = fresh ~utilization:0.92 () in
  all_at p 0 0;
  Place.Legalize.legalize p;
  Alcotest.(check (list string)) "legal at 92%" [] (Place.Legalize.check p)

let test_legalize_idempotent_when_legal () =
  let p = fresh () in
  Place.Global.place p;
  let before = Array.copy p.xs in
  Place.Legalize.legalize p;
  (* already-legal placements should not move much: displacement bounded by
     a few sites on average *)
  let total_disp = ref 0 in
  Array.iteri (fun i x -> total_disp := !total_disp + abs (x - before.(i))) p.xs;
  let avg = float_of_int !total_disp /. float_of_int (Array.length p.xs) in
  checkb "small average displacement" true (avg < 3.0 *. 36.0)

let test_check_reports_offgrid () =
  let p = fresh () in
  Place.Global.place p;
  p.xs.(0) <- p.xs.(0) + 1;
  checkb "offgrid reported" true
    (List.exists
       (fun s -> String.length s > 0)
       (Place.Legalize.check p));
  p.xs.(0) <- p.xs.(0) - 1

(* --- Hpwl --- *)

let test_hpwl_two_pin_net () =
  (* build a 2-instance design by hand and verify HPWL against geometry *)
  let inv = Pdk.Libgen.find lib "INV_X1" in
  let mk name =
    { Netlist.Design.inst_name = name; master = inv; pin_nets = [| 0; 0 |] }
  in
  let d =
    {
      Netlist.Design.name = "pair";
      lib;
      instances = [| mk "a"; mk "b" |];
      nets =
        [|
          {
            Netlist.Design.net_name = "n";
            pins =
              [|
                { Netlist.Design.inst = 0; pin = 1 };
                { Netlist.Design.inst = 1; pin = 0 };
              |];
            is_clock = false;
          };
        |];
    }
  in
  let p = Place.Placement.create d ~utilization:0.3 in
  Place.Placement.move p 0 ~site:0 ~row:0 ~orient:Geom.Orient.N;
  Place.Placement.move p 1 ~site:4 ~row:1 ~orient:Geom.Orient.N;
  let pos0 = Place.Placement.pin_pos p { Netlist.Design.inst = 0; pin = 1 } in
  let pos1 = Place.Placement.pin_pos p { Netlist.Design.inst = 1; pin = 0 } in
  check "hpwl matches pin geometry"
    (abs (pos0.Geom.Point.x - pos1.Geom.Point.x)
     + abs (pos0.Geom.Point.y - pos1.Geom.Point.y))
    (Place.Hpwl.net p 0);
  checkb "total positive" true (Place.Hpwl.total p > 0)

let test_hpwl_single_pin_zero () =
  let d = design () in
  let p = Place.Placement.create d ~utilization:0.75 in
  Place.Global.place p;
  (* dangling nets (degree < 2) contribute nothing *)
  Array.iteri
    (fun nid (net : Netlist.Design.net) ->
      if Array.length net.pins < 2 then check "dangling zero" 0 (Place.Hpwl.net p nid))
    d.nets

(* --- Global --- *)

let test_global_improves_hpwl () =
  let p = fresh ~n:600 () in
  (* seed-only baseline: run with 0 relax passes *)
  let q = Place.Placement.copy p in
  Place.Global.place ~config:{ Place.Global.default_config with relax_passes = 0; float_iters = 0; reassign_rounds = 0 } q;
  let seeded = Place.Hpwl.total q in
  Place.Global.place p;
  let relaxed = Place.Hpwl.total p in
  checkb "relaxation does not hurt much" true
    (float_of_int relaxed < 1.1 *. float_of_int seeded);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_global_deterministic () =
  let p1 = fresh () and p2 = fresh () in
  Place.Global.place p1;
  Place.Global.place p2;
  Alcotest.(check (array int)) "same xs" p1.xs p2.xs;
  Alcotest.(check (array int)) "same ys" p1.ys p2.ys

(* --- row DP baseline --- *)

let test_row_opt_improves_and_legal () =
  let p = fresh ~n:500 () in
  Place.Global.place p;
  let before = Place.Hpwl.total p in
  let gain = Place.Row_opt.optimize ~passes:2 p in
  let after = Place.Hpwl.total p in
  checkb "reported gain nonnegative" true (gain >= 0);
  checkb "hpwl not worse" true (after <= before);
  Alcotest.(check (list string)) "legal" [] (Place.Legalize.check p)

let test_row_opt_preserves_order () =
  let p = fresh ~n:400 () in
  Place.Global.place p;
  let order_of_row row =
    let cells = ref [] in
    for i = Place.Placement.num_instances p - 1 downto 0 do
      if Place.Placement.row_of_inst p i = row then cells := i :: !cells
    done;
    List.sort (fun a b -> Int.compare p.xs.(a) p.xs.(b)) !cells
  in
  let before = List.init p.num_rows order_of_row in
  ignore (Place.Row_opt.optimize ~passes:1 p);
  let after = List.init p.num_rows order_of_row in
  checkb "left-right order preserved per row" true (before = after)

let test_row_opt_single_row_optimal_monotone () =
  (* intra-row nets couple the cells, so one DP pass is not a fixpoint;
     repeated passes must converge to zero gain quickly *)
  let p = fresh ~n:300 () in
  Place.Global.place p;
  let rec converge tries =
    if tries = 0 then Alcotest.fail "row DP did not converge"
    else if Place.Row_opt.optimize_row p ~row:2 <= 0 then ()
    else converge (tries - 1)
  in
  converge 10;
  checkb "no gain at fixpoint" true (Place.Row_opt.optimize_row p ~row:2 <= 0)

(* --- def conversion --- *)

let test_to_from_def () =
  let p = fresh () in
  Place.Global.place p;
  let def = Place.Placement.to_def p in
  let q = Place.Placement.of_def p.design def in
  Alcotest.(check (array int)) "xs" p.xs q.xs;
  Alcotest.(check (array int)) "ys" p.ys q.ys;
  check "rows" p.num_rows q.num_rows;
  check "sites" p.sites_per_row q.sites_per_row

let () =
  Alcotest.run "place"
    [
      ( "placement",
        [
          Alcotest.test_case "die sizing" `Quick test_create_die_sizing;
          Alcotest.test_case "bad util" `Quick test_create_rejects_bad_util;
          Alcotest.test_case "move/accessors" `Quick test_move_and_accessors;
          Alcotest.test_case "copy/assign" `Quick test_copy_assign_independent;
          Alcotest.test_case "pins on tracks" `Quick test_pin_pos_on_track;
          Alcotest.test_case "overlap detection" `Quick test_overlap_count_detects;
        ] );
      ( "legalize",
        [
          Alcotest.test_case "from origin" `Quick test_legalize_from_origin;
          Alcotest.test_case "from center" `Quick test_legalize_from_center;
          Alcotest.test_case "from corner" `Quick test_legalize_from_corner;
          Alcotest.test_case "high utilization" `Quick test_legalize_high_util;
          Alcotest.test_case "near-idempotent" `Quick test_legalize_idempotent_when_legal;
          Alcotest.test_case "reports off-grid" `Quick test_check_reports_offgrid;
        ] );
      ( "hpwl",
        [
          Alcotest.test_case "two-pin net" `Quick test_hpwl_two_pin_net;
          Alcotest.test_case "dangling zero" `Quick test_hpwl_single_pin_zero;
        ] );
      ( "global",
        [
          Alcotest.test_case "improves hpwl" `Quick test_global_improves_hpwl;
          Alcotest.test_case "deterministic" `Quick test_global_deterministic;
        ] );
      ( "row_opt",
        [
          Alcotest.test_case "improves and legal" `Quick test_row_opt_improves_and_legal;
          Alcotest.test_case "preserves order" `Quick test_row_opt_preserves_order;
          Alcotest.test_case "converged after one pass" `Quick
            test_row_opt_single_row_optimal_monotone;
        ] );
      ( "def",
        [ Alcotest.test_case "to/from def" `Quick test_to_from_def ] );
    ]
