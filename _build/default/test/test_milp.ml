(* Tests for the LP simplex and the branch-and-bound MILP solver. *)

let checkf = Alcotest.(check (float 1e-4))
let checkb = Alcotest.(check bool)

module M = Milp.Model

(* --- raw LP --- *)

let test_lp_basic_max () =
  (* min -x - 2y st x + y <= 4, x <= 3, y <= 2 -> x=2(slack), y=2: obj -6 *)
  let p =
    {
      Milp.Lp.ncols = 2;
      objective = [| -1.0; -2.0 |];
      rows =
        [
          ([| 1.0; 1.0 |], Milp.Lp.Le, 4.0);
          ([| 1.0; 0.0 |], Milp.Lp.Le, 3.0);
          ([| 0.0; 1.0 |], Milp.Lp.Le, 2.0);
        ];
    }
  in
  let s = Milp.Lp.solve p in
  checkb "optimal" true (s.Milp.Lp.status = Milp.Lp.Optimal);
  checkf "objective" (-6.0) s.objective_value;
  checkf "y at bound" 2.0 s.values.(1)

let test_lp_equality () =
  (* min x + y st x + y = 5, x >= 2  -> obj 5 *)
  let p =
    {
      Milp.Lp.ncols = 2;
      objective = [| 1.0; 1.0 |];
      rows =
        [
          ([| 1.0; 1.0 |], Milp.Lp.Eq, 5.0);
          ([| 1.0; 0.0 |], Milp.Lp.Ge, 2.0);
        ];
    }
  in
  let s = Milp.Lp.solve p in
  checkb "optimal" true (s.Milp.Lp.status = Milp.Lp.Optimal);
  checkf "objective" 5.0 s.objective_value

let test_lp_infeasible () =
  let p =
    {
      Milp.Lp.ncols = 1;
      objective = [| 1.0 |];
      rows =
        [ ([| 1.0 |], Milp.Lp.Le, 1.0); ([| 1.0 |], Milp.Lp.Ge, 2.0) ];
    }
  in
  let s = Milp.Lp.solve p in
  checkb "infeasible" true (s.Milp.Lp.status = Milp.Lp.Infeasible)

let test_lp_unbounded () =
  let p =
    { Milp.Lp.ncols = 1; objective = [| -1.0 |]; rows = [ ([| -1.0 |], Milp.Lp.Le, 0.0) ] }
  in
  let s = Milp.Lp.solve p in
  checkb "unbounded" true (s.Milp.Lp.status = Milp.Lp.Unbounded)

let test_lp_negative_rhs () =
  (* row with negative rhs gets normalised: x >= 1 written as -x <= -1 *)
  let p =
    { Milp.Lp.ncols = 1; objective = [| 1.0 |]; rows = [ ([| -1.0 |], Milp.Lp.Le, -1.0) ] }
  in
  let s = Milp.Lp.solve p in
  checkb "optimal" true (s.Milp.Lp.status = Milp.Lp.Optimal);
  checkf "x = 1" 1.0 s.values.(0)

(* --- model building --- *)

let test_model_bounds_and_shift () =
  let m = M.create () in
  let a = M.continuous m ~lb:(-5.0) "a" in
  let b = M.continuous m ~ub:10.0 "b" in
  M.add_eq m (M.add (M.v a) (M.v b)) (M.const 3.0);
  M.set_objective m (M.add (M.v a) (M.scale 0.5 (M.v b)));
  let s = Milp.Bnb.solve m in
  checkb "optimal" true (s.Milp.Bnb.status = Milp.Bnb.Optimal);
  checkf "a at lower bound" (-5.0) s.values.(M.var_index a);
  checkf "b" 8.0 s.values.(M.var_index b);
  checkf "objective" (-1.0) s.objective_value

let test_model_eval () =
  let m = M.create () in
  let x = M.continuous m "x" in
  let e = M.add (M.term 3.0 x) (M.const 1.0) in
  checkf "eval" 7.0 (M.eval e [| 2.0 |])

let test_model_names () =
  let m = M.create () in
  let x = M.binary m "flag" in
  Alcotest.(check string) "name" "flag" (M.var_name m x);
  checkb "is binary" true (M.is_binary m x);
  let y = M.continuous m "cont" in
  checkb "not binary" false (M.is_binary m y);
  Alcotest.(check int) "binaries" 1 (List.length (M.binaries m))

(* --- branch and bound --- *)

let test_bnb_knapsack () =
  (* max 3a+4b+2c st a+b+c <= 2 -> a,b: obj -7 *)
  let m = M.create () in
  let a = M.binary m "a" and b = M.binary m "b" and c = M.binary m "c" in
  M.add_le m (M.sum [ M.v a; M.v b; M.v c ]) (M.const 2.0);
  M.set_objective m (M.sum [ M.term (-3.0) a; M.term (-4.0) b; M.term (-2.0) c ]);
  let s = Milp.Bnb.solve m in
  checkf "objective" (-7.0) s.objective_value;
  checkf "a" 1.0 s.values.(M.var_index a);
  checkf "b" 1.0 s.values.(M.var_index b);
  checkf "c" 0.0 s.values.(M.var_index c)

let test_bnb_integrality_matters () =
  (* max x + y st 2x + 2y <= 3 over binaries: LP gives 1.5, ILP gives 1 *)
  let m = M.create () in
  let x = M.binary m "x" and y = M.binary m "y" in
  M.add_le m (M.sum [ M.term 2.0 x; M.term 2.0 y ]) (M.const 3.0);
  M.set_objective m (M.sum [ M.term (-1.0) x; M.term (-1.0) y ]);
  let s = Milp.Bnb.solve m in
  checkf "ILP optimum is 1" (-1.0) s.objective_value

let test_bnb_infeasible () =
  let m = M.create () in
  let x = M.binary m "x" in
  M.add_ge m (M.v x) (M.const 2.0);
  M.set_objective m (M.v x);
  let s = Milp.Bnb.solve m in
  checkb "infeasible" true (s.Milp.Bnb.status = Milp.Bnb.Infeasible)

let test_bnb_assignment () =
  (* 3x3 assignment problem with known optimum *)
  let cost = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  let m = M.create () in
  let x =
    Array.init 3 (fun i ->
        Array.init 3 (fun j -> M.binary m (Printf.sprintf "x%d%d" i j)))
  in
  for i = 0 to 2 do
    M.add_eq m (M.sum (Array.to_list (Array.map M.v x.(i)))) (M.const 1.0);
    M.add_eq m (M.sum (List.init 3 (fun j -> M.v x.(j).(i)))) (M.const 1.0)
  done;
  M.set_objective m
    (M.sum
       (List.concat
          (List.init 3 (fun i ->
               List.init 3 (fun j -> M.term cost.(i).(j) x.(i).(j))))));
  let s = Milp.Bnb.solve m in
  checkb "optimal" true (s.Milp.Bnb.status = Milp.Bnb.Optimal);
  checkf "assignment optimum" 5.0 s.objective_value

(* brute force verification on random small binary programs *)
let prop_bnb_matches_brute_force =
  let gen =
    QCheck2.Gen.(
      let coef = int_range (-5) 5 in
      let n = 4 in
      let row = array_size (return n) coef in
      triple (array_size (return n) coef) (array_size (return 3) row)
        (array_size (return 3) (int_range 1 8)))
  in
  QCheck2.Test.make ~name:"bnb matches brute force on random 0/1 programs"
    ~count:60 gen
    (fun (obj, rows, rhs) ->
      let n = Array.length obj in
      let m = M.create () in
      let xs = Array.init n (fun i -> M.binary m (Printf.sprintf "x%d" i)) in
      Array.iteri
        (fun r row ->
          M.add_le m
            (M.sum (List.init n (fun j -> M.term (float_of_int row.(j)) xs.(j))))
            (M.const (float_of_int rhs.(r))))
        rows;
      M.set_objective m
        (M.sum (List.init n (fun j -> M.term (float_of_int obj.(j)) xs.(j))));
      let s = Milp.Bnb.solve m in
      (* brute force *)
      let best = ref infinity in
      for mask = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun j -> (mask lsr j) land 1) in
        let feasible =
          Array.for_all
            (fun r ->
              let lhs = ref 0 in
              Array.iteri (fun j c -> lhs := !lhs + (c * x.(j)))
                (rows.(r) : int array);
              !lhs <= rhs.(r))
            (Array.init (Array.length rows) (fun i -> i))
        in
        if feasible then begin
          let v = ref 0 in
          Array.iteri (fun j c -> v := !v + (c * x.(j))) obj;
          if float_of_int !v < !best then best := float_of_int !v
        end
      done;
      match s.Milp.Bnb.status with
      | Milp.Bnb.Optimal -> abs_float (s.objective_value -. !best) < 1e-6
      | Milp.Bnb.Infeasible -> !best = infinity
      | Milp.Bnb.Node_limit -> true)

(* random LPs: whenever the solver claims Optimal, the returned point must
   satisfy every constraint and nonnegativity *)
let prop_lp_solutions_feasible =
  let gen =
    QCheck2.Gen.(
      let coef = int_range (-4) 4 in
      let n = 3 in
      triple
        (array_size (return n) (int_range (-3) 3))
        (array_size (return 4) (array_size (return n) coef))
        (array_size (return 4) (int_range 0 10)))
  in
  QCheck2.Test.make ~name:"LP optimal solutions are feasible" ~count:120 gen
    (fun (obj, rows, rhs) ->
      let p =
        {
          Milp.Lp.ncols = Array.length obj;
          objective = Array.map float_of_int obj;
          rows =
            Array.to_list
              (Array.mapi
                 (fun r row ->
                   ( Array.map float_of_int row,
                     (if r mod 2 = 0 then Milp.Lp.Le else Milp.Lp.Ge),
                     float_of_int rhs.(r) ))
                 rows);
        }
      in
      let s = Milp.Lp.solve p in
      match s.Milp.Lp.status with
      | Milp.Lp.Optimal ->
        Array.for_all (fun x -> x >= -1e-6) s.values
        && List.for_all
             (fun (a, rel, b) ->
               let lhs = ref 0.0 in
               Array.iteri (fun j c -> lhs := !lhs +. (c *. s.values.(j))) a;
               match rel with
               | Milp.Lp.Le -> !lhs <= b +. 1e-6
               | Milp.Lp.Ge -> !lhs >= b -. 1e-6
               | Milp.Lp.Eq -> abs_float (!lhs -. b) < 1e-6)
             p.rows
      | Milp.Lp.Infeasible | Milp.Lp.Unbounded | Milp.Lp.IterLimit -> true)

(* BnB solutions are integral on all binaries and feasible in the model *)
let prop_bnb_solutions_integral =
  QCheck2.Test.make ~name:"BnB solutions are integral and feasible" ~count:60
    QCheck2.Gen.(pair (array_size (return 4) (int_range (-5) 5)) (int_range 1 6))
    (fun (obj, cap) ->
      let m = M.create () in
      let xs =
        Array.init (Array.length obj) (fun i ->
            M.binary m (Printf.sprintf "x%d" i))
      in
      M.add_le m
        (M.sum (Array.to_list (Array.map M.v xs)))
        (M.const (float_of_int cap));
      M.set_objective m
        (M.sum
           (List.init (Array.length obj) (fun j ->
                M.term (float_of_int obj.(j)) xs.(j))));
      let s = Milp.Bnb.solve m in
      match s.Milp.Bnb.status with
      | Milp.Bnb.Optimal ->
        Array.for_all
          (fun x ->
            let v = s.values.(M.var_index x) in
            abs_float (v -. Float.round v) < 1e-6)
          xs
        &&
        let total =
          Array.fold_left (fun acc x -> acc +. s.values.(M.var_index x)) 0.0 xs
        in
        total <= float_of_int cap +. 1e-6
      | _ -> false)

let test_bnb_node_limit () =
  let m = M.create () in
  let xs = Array.init 12 (fun i -> M.binary m (Printf.sprintf "x%d" i)) in
  (* an awkward parity-ish constraint set to force branching *)
  M.add_le m
    (M.sum (Array.to_list (Array.map (fun x -> M.term 2.0 x) xs)))
    (M.const 11.0);
  M.set_objective m
    (M.sum (Array.to_list (Array.map (fun x -> M.term (-1.0) x) xs)));
  let s = Milp.Bnb.solve ~node_limit:3 m in
  checkb "bounded nodes" true (s.Milp.Bnb.nodes_explored <= 3)

let () =
  Alcotest.run "milp"
    [
      ( "lp",
        [
          Alcotest.test_case "basic" `Quick test_lp_basic_max;
          Alcotest.test_case "equality" `Quick test_lp_equality;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
        ] );
      ( "model",
        [
          Alcotest.test_case "bounds and shift" `Quick test_model_bounds_and_shift;
          Alcotest.test_case "eval" `Quick test_model_eval;
          Alcotest.test_case "names" `Quick test_model_names;
        ] );
      ( "bnb",
        [
          Alcotest.test_case "knapsack" `Quick test_bnb_knapsack;
          Alcotest.test_case "integrality" `Quick test_bnb_integrality_matters;
          Alcotest.test_case "infeasible" `Quick test_bnb_infeasible;
          Alcotest.test_case "assignment" `Quick test_bnb_assignment;
          Alcotest.test_case "node limit" `Quick test_bnb_node_limit;
          QCheck_alcotest.to_alcotest prop_bnb_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_lp_solutions_feasible;
          QCheck_alcotest.to_alcotest prop_bnb_solutions_integral;
        ] );
    ]
