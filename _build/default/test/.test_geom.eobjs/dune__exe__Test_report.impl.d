test/test_report.ml: Alcotest Array List Netlist Pdk Place Report Route Str String Vm1
