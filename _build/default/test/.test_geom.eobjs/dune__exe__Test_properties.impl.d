test/test_properties.ml: Alcotest Array Geom List Netlist Pdk Place Printf QCheck2 QCheck_alcotest Random Route Sta Vm1
