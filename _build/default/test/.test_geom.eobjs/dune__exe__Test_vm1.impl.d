test/test_vm1.ml: Alcotest Array Geom Hashtbl List Milp Netlist Pdk Place Printf Vm1
