test/test_geom.ml: Alcotest Geom List QCheck2 QCheck_alcotest
