test/test_route.ml: Alcotest Array Geom Int List Netlist Pdk Place QCheck2 QCheck_alcotest Route
