test/test_pdk.ml: Alcotest Geom Int List Pdk Printf
