test/test_pdk.mli:
