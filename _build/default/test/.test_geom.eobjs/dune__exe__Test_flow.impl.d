test/test_flow.ml: Alcotest Lazy Netlist Pdk Place Report Vm1
