test/test_netlist.ml: Alcotest Array Geom Int List Netlist Pdk Printf String
