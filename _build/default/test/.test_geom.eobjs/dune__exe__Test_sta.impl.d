test/test_sta.ml: Alcotest Array Netlist Pdk Sta
