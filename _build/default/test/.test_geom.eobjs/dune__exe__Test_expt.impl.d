test/test_expt.ml: Alcotest List Netlist Pdk Report String
