test/test_milp.ml: Alcotest Array Float List Milp Printf QCheck2 QCheck_alcotest
