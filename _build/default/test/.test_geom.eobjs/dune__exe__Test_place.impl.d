test/test_place.ml: Alcotest Array Geom Int List Netlist Pdk Place String
