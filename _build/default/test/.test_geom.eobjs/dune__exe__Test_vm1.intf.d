test/test_vm1.mli:
