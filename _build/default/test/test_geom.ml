(* Unit and property tests for the geometry kernel. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Point --- *)

let test_point_ops () =
  let a = Geom.Point.make 3 4 and b = Geom.Point.make (-1) 2 in
  check "add x" 2 (Geom.Point.add a b).Geom.Point.x;
  check "add y" 6 (Geom.Point.add a b).Geom.Point.y;
  check "sub x" 4 (Geom.Point.sub a b).Geom.Point.x;
  check "sub y" 2 (Geom.Point.sub a b).Geom.Point.y;
  check "neg x" (-3) (Geom.Point.neg a).Geom.Point.x;
  check "manhattan" 6 (Geom.Point.manhattan a b);
  checkb "equal refl" true (Geom.Point.equal a a);
  checkb "equal diff" false (Geom.Point.equal a b);
  check "compare eq" 0 (Geom.Point.compare a a)

let test_point_zero () =
  checkb "zero + a = a" true
    (Geom.Point.equal (Geom.Point.add Geom.Point.zero (Geom.Point.make 5 7))
       (Geom.Point.make 5 7));
  check "manhattan to self" 0 (Geom.Point.manhattan Geom.Point.zero Geom.Point.zero)

(* --- Interval --- *)

let test_interval_basic () =
  let i = Geom.Interval.make 2 10 in
  check "length" 8 (Geom.Interval.length i);
  checkb "contains lo" true (Geom.Interval.contains i 2);
  checkb "contains hi" true (Geom.Interval.contains i 10);
  checkb "not contains" false (Geom.Interval.contains i 11);
  checkb "empty is empty" true (Geom.Interval.is_empty Geom.Interval.empty);
  check "empty length" 0 (Geom.Interval.length Geom.Interval.empty)

let test_interval_of_unordered () =
  let i = Geom.Interval.of_unordered 9 3 in
  check "lo" 3 i.Geom.Interval.lo;
  check "hi" 9 i.Geom.Interval.hi

let test_interval_overlap () =
  let a = Geom.Interval.make 0 10 and b = Geom.Interval.make 5 20 in
  check "overlap positive" 5 (Geom.Interval.overlap a b);
  let c = Geom.Interval.make 15 20 in
  check "overlap negative is minus gap" (-5) (Geom.Interval.overlap a c);
  check "overlap symmetric" (Geom.Interval.overlap a b) (Geom.Interval.overlap b a)

let test_interval_set_ops () =
  let a = Geom.Interval.make 0 10 and b = Geom.Interval.make 5 20 in
  checkb "intersect" true
    (Geom.Interval.equal (Geom.Interval.intersect a b) (Geom.Interval.make 5 10));
  checkb "union" true
    (Geom.Interval.equal (Geom.Interval.union a b) (Geom.Interval.make 0 20));
  checkb "union with empty" true
    (Geom.Interval.equal (Geom.Interval.union a Geom.Interval.empty) a);
  checkb "shift" true
    (Geom.Interval.equal (Geom.Interval.shift a 3) (Geom.Interval.make 3 13))

(* --- Rect --- *)

let test_rect_basic () =
  let r = Geom.Rect.make ~lx:1 ~ly:2 ~hx:5 ~hy:10 in
  check "width" 4 (Geom.Rect.width r);
  check "height" 8 (Geom.Rect.height r);
  check "half perimeter" 12 (Geom.Rect.half_perimeter r);
  check "area" 32 (Geom.Rect.area r);
  checkb "contains center" true (Geom.Rect.contains_point r (Geom.Rect.center r));
  checkb "empty" true (Geom.Rect.is_empty Geom.Rect.empty);
  check "empty width" 0 (Geom.Rect.width Geom.Rect.empty)

let test_rect_overlap () =
  let a = Geom.Rect.make ~lx:0 ~ly:0 ~hx:10 ~hy:10 in
  let b = Geom.Rect.make ~lx:10 ~ly:0 ~hx:20 ~hy:10 in
  checkb "edge abut overlaps (closed)" true (Geom.Rect.overlaps a b);
  checkb "edge abut not strict" false (Geom.Rect.overlaps_strictly a b);
  let c = Geom.Rect.make ~lx:5 ~ly:5 ~hx:15 ~hy:15 in
  checkb "strict overlap" true (Geom.Rect.overlaps_strictly a c);
  let d = Geom.Rect.make ~lx:11 ~ly:11 ~hx:12 ~hy:12 in
  checkb "disjoint" false (Geom.Rect.overlaps a d)

let test_rect_bbox () =
  let pts = [ Geom.Point.make 3 7; Geom.Point.make (-1) 2; Geom.Point.make 5 0 ] in
  let bb = Geom.Rect.bbox_of_points pts in
  checkb "bbox" true
    (Geom.Rect.equal bb (Geom.Rect.make ~lx:(-1) ~ly:0 ~hx:5 ~hy:7));
  Alcotest.check_raises "empty bbox raises"
    (Invalid_argument "Rect.bbox_of_points: empty list") (fun () ->
      ignore (Geom.Rect.bbox_of_points []))

let test_rect_expand_shift () =
  let r = Geom.Rect.make ~lx:2 ~ly:2 ~hx:4 ~hy:4 in
  checkb "expand" true
    (Geom.Rect.equal (Geom.Rect.expand r 2)
       (Geom.Rect.make ~lx:0 ~ly:0 ~hx:6 ~hy:6));
  checkb "shift" true
    (Geom.Rect.equal (Geom.Rect.shift r (Geom.Point.make 1 (-1)))
       (Geom.Rect.make ~lx:3 ~ly:1 ~hx:5 ~hy:3))

(* --- Orient --- *)

let test_orient_flip () =
  checkb "N flips to FN" true (Geom.Orient.flip_y Geom.Orient.N = Geom.Orient.FN);
  checkb "FN flips to N" true (Geom.Orient.flip_y Geom.Orient.FN = Geom.Orient.N);
  checkb "S flips to FS" true (Geom.Orient.flip_y Geom.Orient.S = Geom.Orient.FS);
  checkb "is_flipped FN" true (Geom.Orient.is_flipped Geom.Orient.FN);
  checkb "is_flipped N" false (Geom.Orient.is_flipped Geom.Orient.N)

let test_orient_apply () =
  (* a 100x200 cell with a pin at [10,20]x[30,40] *)
  let r = Geom.Rect.make ~lx:10 ~ly:30 ~hx:20 ~hy:40 in
  let fn = Geom.Orient.apply Geom.Orient.FN ~cell_width:100 ~cell_height:200 r in
  checkb "FN mirrors x" true
    (Geom.Rect.equal fn (Geom.Rect.make ~lx:80 ~ly:30 ~hx:90 ~hy:40));
  let fs = Geom.Orient.apply Geom.Orient.FS ~cell_width:100 ~cell_height:200 r in
  checkb "FS mirrors y" true
    (Geom.Rect.equal fs (Geom.Rect.make ~lx:10 ~ly:160 ~hx:20 ~hy:170));
  let n = Geom.Orient.apply Geom.Orient.N ~cell_width:100 ~cell_height:200 r in
  checkb "N is identity" true (Geom.Rect.equal n r)

let test_orient_apply_x () =
  check "N keeps x" 10 (Geom.Orient.apply_x Geom.Orient.N ~cell_width:100 10);
  check "FN mirrors x" 90 (Geom.Orient.apply_x Geom.Orient.FN ~cell_width:100 10)

(* --- properties --- *)

let point_gen =
  QCheck2.Gen.map2 Geom.Point.make
    (QCheck2.Gen.int_range (-1000) 1000)
    (QCheck2.Gen.int_range (-1000) 1000)

let rect_gen = QCheck2.Gen.map2 Geom.Rect.of_points point_gen point_gen

let prop_manhattan_triangle =
  QCheck2.Test.make ~name:"manhattan satisfies triangle inequality" ~count:500
    (QCheck2.Gen.triple point_gen point_gen point_gen)
    (fun (a, b, c) ->
      Geom.Point.manhattan a c
      <= Geom.Point.manhattan a b + Geom.Point.manhattan b c)

let prop_union_contains =
  QCheck2.Test.make ~name:"rect union contains both" ~count:500
    (QCheck2.Gen.pair rect_gen rect_gen)
    (fun (a, b) ->
      let u = Geom.Rect.union a b in
      Geom.Rect.contains_point u (Geom.Rect.center a)
      && Geom.Rect.contains_point u (Geom.Rect.center b))

let prop_intersect_subset =
  QCheck2.Test.make ~name:"rect intersection within union" ~count:500
    (QCheck2.Gen.pair rect_gen rect_gen)
    (fun (a, b) ->
      let i = Geom.Rect.intersect a b in
      Geom.Rect.is_empty i
      ||
      let u = Geom.Rect.union a b in
      Geom.Rect.contains_point u (Geom.Rect.center i))

let prop_orient_involution =
  QCheck2.Test.make ~name:"FN applied twice is identity" ~count:500 rect_gen
    (fun r ->
      let r =
        Geom.Rect.make
          ~lx:(abs r.Geom.Rect.lx mod 100)
          ~ly:(abs r.Geom.Rect.ly mod 100)
          ~hx:((abs r.Geom.Rect.lx mod 100) + 5)
          ~hy:((abs r.Geom.Rect.ly mod 100) + 5)
      in
      let once = Geom.Orient.apply Geom.Orient.FN ~cell_width:200 ~cell_height:200 r in
      let twice = Geom.Orient.apply Geom.Orient.FN ~cell_width:200 ~cell_height:200 once in
      Geom.Rect.equal twice r)

let prop_hpwl_union_superadditive =
  QCheck2.Test.make
    ~name:"half-perimeter of union >= max of parts" ~count:500
    (QCheck2.Gen.pair rect_gen rect_gen)
    (fun (a, b) ->
      let u = Geom.Rect.union a b in
      Geom.Rect.half_perimeter u >= Geom.Rect.half_perimeter a
      && Geom.Rect.half_perimeter u >= Geom.Rect.half_perimeter b)

let prop_interval_overlap_symmetric =
  QCheck2.Test.make ~name:"interval overlap symmetric" ~count:500
    (QCheck2.Gen.quad
       (QCheck2.Gen.int_range (-100) 100) (QCheck2.Gen.int_range (-100) 100)
       (QCheck2.Gen.int_range (-100) 100) (QCheck2.Gen.int_range (-100) 100))
    (fun (a, b, c, d) ->
      let i = Geom.Interval.of_unordered a b in
      let j = Geom.Interval.of_unordered c d in
      Geom.Interval.overlap i j = Geom.Interval.overlap j i)

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "ops" `Quick test_point_ops;
          Alcotest.test_case "zero" `Quick test_point_zero;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basic" `Quick test_interval_basic;
          Alcotest.test_case "of_unordered" `Quick test_interval_of_unordered;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
          Alcotest.test_case "set ops" `Quick test_interval_set_ops;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basic" `Quick test_rect_basic;
          Alcotest.test_case "overlap" `Quick test_rect_overlap;
          Alcotest.test_case "bbox" `Quick test_rect_bbox;
          Alcotest.test_case "expand/shift" `Quick test_rect_expand_shift;
        ] );
      ( "orient",
        [
          Alcotest.test_case "flip" `Quick test_orient_flip;
          Alcotest.test_case "apply" `Quick test_orient_apply;
          Alcotest.test_case "apply_x" `Quick test_orient_apply_x;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_manhattan_triangle;
            prop_union_contains;
            prop_intersect_subset;
            prop_orient_involution;
            prop_hpwl_union_superadditive;
            prop_interval_overlap_symmetric;
          ] );
    ]
