(* Quickstart: generate a small ClosedM1 design, place it, route it,
   run the vertical-M1 detailed placement optimisation, re-route, and
   print the before/after metrics.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. a 7nm-class ClosedM1 library and a synthetic design calibrated to
     the paper's "aes" testcase, scaled down 16x for a fast demo *)
  let placement =
    Report.Flow.prepare ~scale:16 Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1
  in
  print_endline (Netlist.Design.stats placement.Place.Placement.design);

  (* 2. paper-default parameters: alpha = 1200, beta = 1, gamma = 3 *)
  let params = Vm1.Params.default placement.Place.Placement.tech in

  (* 3. route the initial placement and measure *)
  let init, clock_ps = Report.Flow.evaluate params placement in
  Printf.printf "initial : #dM1 %4d  RWL %8.1f um  #via12 %5d  DRVs %d\n"
    init.Report.Flow.dm1 init.Report.Flow.rwl_um init.Report.Flow.via12
    init.Report.Flow.drvs;

  (* 4. Algorithm 1 (VM1Opt) with the preferred sequence (20um, lx=4, ly=1) *)
  let report = Vm1.Vm1_opt.run params placement in
  Printf.printf "optimiser: objective %.0f -> %.0f in %d iterations (%.2fs)\n"
    report.Vm1.Vm1_opt.initial_objective report.Vm1.Vm1_opt.final_objective
    (List.length report.Vm1.Vm1_opt.iterations)
    report.Vm1.Vm1_opt.runtime_s;

  (* 5. re-route and compare — more direct vertical M1 routes, shorter
     routed wirelength, fewer M1->M2 vias *)
  let final, _ = Report.Flow.evaluate ~clock_ps params placement in
  Printf.printf "final   : #dM1 %4d  RWL %8.1f um  #via12 %5d  DRVs %d\n"
    final.Report.Flow.dm1 final.Report.Flow.rwl_um final.Report.Flow.via12
    final.Report.Flow.drvs;
  Printf.printf "deltas  : #dM1 %+.0f%%  RWL %+.1f%%  #via12 %+.1f%%\n"
    (Report.Flow.delta_pct (float_of_int init.Report.Flow.dm1)
       (float_of_int final.Report.Flow.dm1))
    (Report.Flow.delta_pct init.Report.Flow.rwl_um final.Report.Flow.rwl_um)
    (Report.Flow.delta_pct
       (float_of_int init.Report.Flow.via12)
       (float_of_int final.Report.Flow.via12))
