(* Congestion relief at high utilisation (the Fig. 8 story): tighter dies
   induce routing DRVs; direct vertical M1 routing moves traffic off the
   congested layers and removes a substantial fraction of them.

   Our synthetic designs route comfortably on the full 6-layer stack, so
   this experiment stresses the router with a 3-layer stack (M1-M3) —
   the regime where utilisation sweeps produce DRV growth.

   Run with: dune exec examples/congestion_relief.exe *)

let () =
  print_endline "aes ClosedM1 @ 1/16 scale, 3-layer stack, utilisation sweep:";
  print_endline "util   #DRV orig  #DRV opt   #dM1 orig  #dM1 opt";
  let router = { Route.Router.default_config with layers = 3 } in
  List.iter
    (fun utilization ->
      let p =
        Report.Flow.prepare ~scale:16 ~utilization Netlist.Designs.Aes
          Pdk.Cell_arch.Closed_m1
      in
      let params = Vm1.Params.default p.Place.Placement.tech in
      let init, clock_ps =
        Report.Flow.evaluate ~router_config:router params p
      in
      ignore (Vm1.Vm1_opt.run params p);
      let final, _ =
        Report.Flow.evaluate ~clock_ps ~router_config:router params p
      in
      Printf.printf "%.0f%%   %9d  %8d   %9d  %8d\n%!"
        (utilization *. 100.0) init.Report.Flow.drvs final.Report.Flow.drvs
        init.Report.Flow.dm1 final.Report.Flow.dm1)
    [ 0.78; 0.84; 0.90 ]
