(* Driving the MILP formulation directly (Section 3 of the paper).

   This example cuts one window out of a placed design, builds the exact
   MILP of constraints (1)-(9) over it — SCP lambda variables, per-net
   HPWL bounding variables, big-G alignment indicators — solves it with
   the bundled branch-and-bound, and cross-checks the result against
   exhaustive search over the same window.

   Run with: dune exec examples/milp_window.exe *)

let () =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1) in
  let design =
    Netlist.Generator.generate lib
      (Netlist.Generator.default_config ~n_instances:150 ~seed:42)
      ~name:"demo"
  in
  let p = Place.Placement.create design ~utilization:0.7 in
  Place.Global.place p;
  let params = Vm1.Params.default p.Place.Placement.tech in

  (* pick a small window with a handful of movable cells *)
  let windows = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
  let w =
    Array.to_list windows
    |> List.filter (fun (w : Vm1.Window.t) ->
           let k = List.length w.movable in
           k >= 2 && k <= 4)
    |> List.hd
  in
  Printf.printf "window at site %d row %d: %d movable cells\n" w.site_lo
    w.row_lo (List.length w.movable);

  let extract () =
    Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo ~bw:w.bw
      ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:true
      ~allow_move:true
  in

  (* the MILP path *)
  let prob = extract () in
  Printf.printf "problem: %d nets, %d feasible dM1 pairs, %d candidates total\n"
    (Array.length prob.Vm1.Wproblem.nets)
    (Array.length prob.Vm1.Wproblem.pairs)
    (Array.fold_left
       (fun acc (c : Vm1.Wproblem.cell) -> acc + Array.length c.cands)
       0 prob.Vm1.Wproblem.cells);
  let built = Vm1.Formulate.build prob in
  Printf.printf "MILP: %d variables (%d binary)\n"
    (Milp.Model.num_vars built.Vm1.Formulate.model)
    (List.length (Milp.Model.binaries built.Vm1.Formulate.model));
  let before = Vm1.Wproblem.objective prob in
  let sol = Vm1.Formulate.solve ~node_limit:50_000 prob in
  Printf.printf "branch-and-bound: %d nodes, status %s\n"
    sol.Milp.Bnb.nodes_explored
    (match sol.Milp.Bnb.status with
     | Milp.Bnb.Optimal -> "optimal"
     | Milp.Bnb.Node_limit -> "node limit (best incumbent)"
     | Milp.Bnb.Infeasible -> "infeasible");
  let milp_obj = Vm1.Wproblem.objective prob in
  Printf.printf "window objective: %.0f -> %.0f\n" before milp_obj;

  (* cross-check against exhaustive search on a fresh copy *)
  let prob2 = extract () in
  let stats = Vm1.Scp_solver.solve ~mode:`Exact prob2 in
  Printf.printf "exhaustive optimum: %.0f (%s)\n"
    stats.Vm1.Scp_solver.objective_after
    (if abs_float (stats.Vm1.Scp_solver.objective_after -. milp_obj) < 0.5
     then "MILP agrees" else "MISMATCH");
  ()
