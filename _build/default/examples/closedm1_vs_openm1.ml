(* The paper's central contrast (Sections 1.1 and 5.2): the same netlist
   bound to the ClosedM1 and OpenM1 cell architectures behaves very
   differently under vertical-M1-aware detailed placement.

   - ClosedM1 pins are 1D vertical M1 segments: a dM1 needs *exact* track
     alignment, so the initial placement offers few; the optimiser
     multiplies them several-fold.
   - OpenM1 pins are horizontal M0 segments: any sufficient x-overlap
     allows a dM1, so many exist before optimisation and the relative
     gain is smaller.

   Run with: dune exec examples/closedm1_vs_openm1.exe *)

let run arch =
  let c = Report.Flow.run_comparison ~scale:16 Netlist.Designs.Aes arch in
  let i = c.Report.Flow.init and f = c.Report.Flow.final in
  let dm1_delta =
    if i.Report.Flow.dm1 = 0 then "   n/a "
    else
      Printf.sprintf "%+6.1f%%"
        (Report.Flow.delta_pct
           (float_of_int i.Report.Flow.dm1)
           (float_of_int f.Report.Flow.dm1))
  in
  Printf.printf
    "%-9s  #dM1 %4d -> %4d (%s)   RWL %8.1f -> %8.1f um (%+5.2f%%)\n"
    (Pdk.Cell_arch.to_string arch) i.Report.Flow.dm1 f.Report.Flow.dm1
    dm1_delta i.Report.Flow.rwl_um f.Report.Flow.rwl_um
    (Report.Flow.delta_pct i.Report.Flow.rwl_um f.Report.Flow.rwl_um);
  (i, f)

let () =
  print_endline "aes @ 1/16 scale, utilisation 75%:";
  let ci, cf = run Pdk.Cell_arch.Closed_m1 in
  let oi, _of_ = run Pdk.Cell_arch.Open_m1 in
  (* the conventional 12-track architecture cannot route inter-row M1 at
     all: its horizontal M1 power rails block every crossing (Fig. 1a) *)
  let conv_i, conv_f = run Pdk.Cell_arch.Conventional12 in
  assert (conv_i.Report.Flow.dm1 = 0 && conv_f.Report.Flow.dm1 = 0);
  print_newline ();
  Printf.printf
    "OpenM1 starts with %.1fx the dM1 of ClosedM1 (pin overlap is easy);\n"
    (float_of_int oi.Report.Flow.dm1 /. float_of_int (max 1 ci.Report.Flow.dm1));
  Printf.printf
    "ClosedM1 gains %.1fx from optimisation (alignment must be created).\n"
    (float_of_int cf.Report.Flow.dm1 /. float_of_int (max 1 ci.Report.Flow.dm1))
