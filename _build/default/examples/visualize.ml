(* Render a placed-and-routed design as SVG: placement map, routed wires
   coloured by layer, and a congestion heatmap.

   Run with: dune exec examples/visualize.exe
   Output: vm1dp_placement.svg, vm1dp_routed.svg, vm1dp_congestion.svg *)

let () =
  let p =
    Report.Flow.prepare ~scale:32 Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p.Place.Placement.tech in
  ignore (Vm1.Vm1_opt.run params p);
  let r = Route.Router.route p in
  Report.Svg.write_file "vm1dp_placement.svg" (Report.Svg.placement p);
  Report.Svg.write_file "vm1dp_routed.svg" (Report.Svg.routed r);
  Report.Svg.write_file "vm1dp_congestion.svg" (Report.Svg.congestion r);
  let s = Route.Metrics.summarize r in
  Format.printf "wrote vm1dp_{placement,routed,congestion}.svg (%a)@."
    Route.Metrics.pp_summary s
