(* ASCII rendering of the modelled cell architectures (the paper's Fig. 1)
   and of a direct vertical M1 route between two stacked inverters
   (Fig. 2a). Useful for eyeballing the pin geometry the optimiser and
   router reason about.

   Run with: dune exec examples/render_layout.exe *)

let cell_canvas (master : Pdk.Stdcell.t) =
  (* one character per 9nm in x, per 27nm in y; y axis grows upward *)
  let sx = 9 and sy = 27 in
  let w = master.width / sx and h = master.height / sy in
  let canvas = Array.make_matrix h w '.' in
  List.iter
    (fun (pin : Pdk.Stdcell.pin) ->
      let tag = pin.pin_name.[0] in
      List.iter
        (fun ((layer : Pdk.Layer.t), (r : Geom.Rect.t)) ->
          let mark = match layer with Pdk.Layer.M0 -> Char.lowercase_ascii tag | _ -> tag in
          for y = r.ly / sy to min (h - 1) ((r.hy - 1) / sy) do
            for x = r.lx / sx to min (w - 1) ((r.hx - 1) / sx) do
              canvas.(y).(x) <- mark
            done
          done)
        pin.shapes)
    master.pins;
  canvas

let print_canvas canvas =
  for y = Array.length canvas - 1 downto 0 do
    print_string "  ";
    Array.iter print_char canvas.(y);
    print_newline ()
  done

let show arch name =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default arch) in
  let master = Pdk.Libgen.find lib name in
  Printf.printf "%s %s (%d sites x %d nm; uppercase = M1 pins, lowercase = M0 pins)\n"
    (Pdk.Cell_arch.to_string arch) name master.width_sites master.height;
  print_canvas (cell_canvas master);
  print_newline ()

(* Fig. 2(a): two ClosedM1 inverters in adjacent rows with aligned pins,
   connected by one vertical M1 segment *)
let show_dm1 () =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1) in
  let inv = Pdk.Libgen.find lib "INV_X1" in
  print_endline
    "Direct vertical M1 route (|): lower INV's ZN aligned with upper INV's A";
  let sx = 9 and sy = 27 in
  let rows = 2 in
  let w = (inv.width + (2 * 36)) / sx in
  let h = rows * inv.height / sy in
  let canvas = Array.make_matrix h w '.' in
  let draw ~origin_x ~row (pin : Pdk.Stdcell.pin) =
    List.iter
      (fun (_, (r : Geom.Rect.t)) ->
        for y = (r.ly + (row * inv.height)) / sy
            to min (h - 1) ((r.hy - 1 + (row * inv.height)) / sy) do
          for x = (r.lx + origin_x) / sx to min (w - 1) ((r.hx - 1 + origin_x) / sx) do
            canvas.(y).(x) <- pin.pin_name.[0]
          done
        done)
      pin.shapes
  in
  (* lower INV at site 0, upper INV shifted one site left so that upper A
     (track 0) aligns with lower ZN (track 1) *)
  List.iter (draw ~origin_x:0 ~row:0) inv.pins;
  List.iter (draw ~origin_x:36 ~row:1) inv.pins;
  (* the connecting M1 segment runs through the gap between the pins *)
  let zn = Pdk.Stdcell.find_pin inv "ZN" in
  let track_x =
    match zn.shapes with
    | (_, r) :: _ -> (r.Geom.Rect.lx + r.Geom.Rect.hx) / 2
    | [] -> assert false
  in
  let x = track_x / sx in
  for y = 0 to h - 1 do
    if canvas.(y).(x) = '.' then canvas.(y).(x) <- '|'
  done;
  print_canvas canvas;
  print_newline ()

let () =
  show Pdk.Cell_arch.Conventional12 "INV_X1";
  show Pdk.Cell_arch.Closed_m1 "INV_X1";
  show Pdk.Cell_arch.Open_m1 "INV_X1";
  show Pdk.Cell_arch.Closed_m1 "NAND2_X1";
  show Pdk.Cell_arch.Open_m1 "DFF_X1";
  show_dm1 ()
