(* Timing-driven vertical-M1 placement (the paper's future work (ii)).

   The baseline objective weighs every net's HPWL equally (beta = 1). The
   extension weights each net by its STA criticality, so the optimiser
   prefers to spend cell displacement on nets whose slack matters. Under
   a tight clock this trades a little total wirelength for better WNS.

   Run with: dune exec examples/timing_driven.exe *)

let () =
  let run label make_params =
    let p =
      Report.Flow.prepare ~scale:16 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1
    in
    let base = Vm1.Params.default p.Place.Placement.tech in
    (* fix a clock slightly tighter than the initial critical path *)
    let r0 = Route.Router.route p in
    let lengths = Route.Metrics.net_lengths r0 in
    let t0 = Sta.Timing.analyze p.design ~net_lengths:lengths in
    let clock_ps = t0.Sta.Timing.critical_ps *. 0.98 in
    let params = make_params base p in
    ignore (Vm1.Vm1_opt.run params p);
    let r1 = Route.Router.route p in
    let lengths1 = Route.Metrics.net_lengths r1 in
    let t1 = Sta.Timing.analyze ~clock_ps p.design ~net_lengths:lengths1 in
    let s1 = Route.Metrics.summarize r1 in
    Printf.printf "%-14s WNS %+0.4f ns   RWL %8.1f um   #dM1 %d\n%!" label
      t1.Sta.Timing.wns_ns s1.Route.Metrics.rwl_um s1.Route.Metrics.dm1
  in
  run "baseline" (fun base _ -> base);
  run "timing-driven" (fun base p ->
      Report.Flow.timing_driven_params ~boost:4.0 base p)
