(* Where does the wirelength go? Per-layer breakdown before and after the
   vertical-M1 optimisation: dM1 absorbs short vertical hops on M1 and
   the M2 access traffic (and its vias) shrinks.

   Run with: dune exec examples/layer_usage.exe *)

let breakdown label r =
  let wl = Route.Metrics.per_layer_wl_um r in
  let vias = Route.Metrics.vias_per_boundary r in
  Printf.printf "%-8s" label;
  for l = 1 to Route.Grid.num_layers do
    Printf.printf "  M%d %7.1f" l wl.(l)
  done;
  Printf.printf "   via12 %d via23 %d\n%!" vias.(1) vias.(2)

let () =
  let p =
    Report.Flow.prepare ~scale:16 Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p.Place.Placement.tech in
  print_endline "aes ClosedM1 @ 1/16 scale: wirelength per layer (um)";
  breakdown "initial" (Route.Router.route p);
  ignore (Vm1.Vm1_opt.run params p);
  breakdown "optimised" (Route.Router.route p)
