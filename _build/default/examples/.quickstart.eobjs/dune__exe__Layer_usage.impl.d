examples/layer_usage.ml: Array Netlist Pdk Place Printf Report Route Vm1
