examples/visualize.ml: Format Netlist Pdk Place Report Route Vm1
