examples/congestion_relief.ml: List Netlist Pdk Place Printf Report Route Vm1
