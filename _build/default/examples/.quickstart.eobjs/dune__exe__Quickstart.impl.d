examples/quickstart.ml: List Netlist Pdk Place Printf Report Vm1
