examples/closedm1_vs_openm1.ml: Netlist Pdk Printf Report
