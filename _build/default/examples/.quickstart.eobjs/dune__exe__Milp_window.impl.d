examples/milp_window.ml: Array List Milp Netlist Pdk Place Printf Vm1
