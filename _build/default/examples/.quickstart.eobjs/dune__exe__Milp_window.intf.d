examples/milp_window.mli:
