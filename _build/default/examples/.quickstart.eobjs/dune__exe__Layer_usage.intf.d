examples/layer_usage.mli:
