examples/closedm1_vs_openm1.mli:
