examples/quickstart.mli:
