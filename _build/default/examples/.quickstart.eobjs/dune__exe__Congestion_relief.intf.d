examples/congestion_relief.mli:
