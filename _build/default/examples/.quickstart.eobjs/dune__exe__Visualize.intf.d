examples/visualize.mli:
