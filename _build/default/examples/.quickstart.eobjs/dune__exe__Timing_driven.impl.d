examples/timing_driven.ml: Netlist Pdk Place Printf Report Route Sta Vm1
