examples/render_layout.ml: Array Char Geom List Pdk Printf String
