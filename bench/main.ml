(* Benchmark harness.

   Two halves:

   1. Regeneration: prints every table and figure of the paper's
      evaluation section (Fig. 5, Fig. 6, Fig. 7, Table 2, Fig. 8) at the
      configured scale, via the same Report.Expt drivers the expt CLI
      uses.

   2. Microbenchmarks: one Bechamel Test.make per table/figure measuring
      the representative kernel behind it, plus ablation benches for the
      design choices called out in DESIGN.md (greedy vs exact vs MILP
      window solver; dM1-aware routing on/off).

   Run with: dune exec bench/main.exe            (both halves)
             dune exec bench/main.exe -- tables  (regeneration only)
             dune exec bench/main.exe -- micro   (microbenchmarks only)

   The regeneration scale defaults to 16 (instance counts 1/16 of the
   paper's); set e.g. VM1DP_BENCH_SCALE=8 for larger runs. *)

open Bechamel
open Toolkit

let scale =
  match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
  | Some s -> int_of_string s
  | None -> 16

(* --- regeneration --- *)

let regenerate () =
  Printf.printf "# Regenerating paper tables/figures at scale 1/%d\n\n%!" scale;
  Printf.printf "## ExptA-1 (Fig. 5): RWL and runtime vs window size\n%!";
  print_string (Report.Expt.Fig5.render (Report.Expt.Fig5.run ~scale ()));
  Printf.printf "\n## ExptA-2 (Fig. 6): RWL and #dM1 vs alpha\n%!";
  print_string (Report.Expt.Fig6.render (Report.Expt.Fig6.run ~scale ()));
  Printf.printf "\n## ExptA-3 (Fig. 7): optimisation sequences\n%!";
  print_string (Report.Expt.Fig7.render (Report.Expt.Fig7.run ~scale ()));
  Printf.printf "\n## ExptB (Table 2): ClosedM1 and OpenM1 designs\n%!";
  print_string (Report.Expt.Table2.render (Report.Expt.Table2.run ~scale ()));
  Printf.printf "\n## ExptB-1 (Fig. 8): DRVs vs utilisation\n%!";
  print_string (Report.Expt.Fig8.render (Report.Expt.Fig8.run ~scale ()));
  print_newline ()

(* --- microbenchmark fixtures (built once, outside the timed region) --- *)

let bench_scale = 32

let fixture arch =
  let p = Report.Flow.prepare ~scale:bench_scale Netlist.Designs.Aes arch in
  let params = Vm1.Params.default p.Place.Placement.tech in
  (p, params)

let closed_fixture = lazy (fixture Pdk.Cell_arch.Closed_m1)
let open_fixture = lazy (fixture Pdk.Cell_arch.Open_m1)

let tiny_window_fixture =
  lazy
    (let p, params = Lazy.force closed_fixture in
     let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
     let w =
       Array.to_list ws
       |> List.filter (fun (w : Vm1.Window.t) ->
              let k = List.length w.movable in
              k >= 2 && k <= 4)
       |> List.hd
     in
     (p, params, w))

let extract_tiny () =
  let p, params, w = Lazy.force tiny_window_fixture in
  Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo ~bw:w.bw
    ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:false ~allow_move:true

(* Fig. 5 kernel: one DistOpt pair over a 20um window grid. *)
let bench_fig5 =
  Test.make ~name:"fig5/distopt_20um_window_pass"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore
           (Vm1.Dist_opt.run q params
              {
                Vm1.Dist_opt.tx = 0;
                ty = 0;
                bw = 555;
                bh = 74;
                lx = 4;
                ly = 1;
                allow_flip = false;
                allow_move = true;
                mode = `Greedy;
                parallel = false;
                candidate_cost = None;
                wcache = None;
              })))

(* Fig. 6 kernel: the full VM1Opt metaheuristic at the selected alpha. *)
let bench_fig6 =
  Test.make ~name:"fig6/vm1opt_alpha1200"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Vm1_opt.run params q)))

(* Fig. 7 kernel: the longest optimisation sequence (number 5). *)
let bench_fig7 =
  Test.make ~name:"fig7/vm1opt_sequence5"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         let config =
           { Vm1.Vm1_opt.default_config with
             Vm1.Vm1_opt.sequence = Vm1.Params.sequence 5 }
         in
         ignore (Vm1.Vm1_opt.run ~config params q)))

(* Table 2 kernels: routing + metrics on both architectures. *)
let bench_table2_closed =
  Test.make ~name:"table2/route_and_metrics_closedm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

let bench_table2_open =
  Test.make ~name:"table2/route_and_metrics_openm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force open_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

(* Fig. 8 kernel: DRV counting on a congested die. *)
let congested_fixture =
  lazy
    (Report.Flow.prepare ~scale:bench_scale ~utilization:0.86
       Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1)

let bench_fig8 =
  Test.make ~name:"fig8/route_congested_util86"
    (Staged.stage (fun () ->
         let p = Lazy.force congested_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

(* Ablation: window solver quality ladder (greedy vs exact vs MILP). *)
let bench_ablation_greedy =
  Test.make ~name:"ablation/window_solver_greedy"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Greedy (extract_tiny ()))))

let bench_ablation_exact =
  Test.make ~name:"ablation/window_solver_exact"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Exact (extract_tiny ()))))

let bench_ablation_milp =
  Test.make ~name:"ablation/window_solver_milp"
    (Staged.stage (fun () ->
         ignore (Vm1.Formulate.solve ~node_limit:5_000 (extract_tiny ()))))

let bench_ablation_anneal =
  Test.make ~name:"ablation/window_solver_anneal"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Anneal (extract_tiny ()))))

(* Ablation: the router with dM1 exploitation disabled. *)
let bench_ablation_no_dm1 =
  Test.make ~name:"ablation/route_without_dm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore
           (Route.Router.route
              ~config:{ Route.Router.default_config with use_dm1 = false }
              p)))

(* Distributable optimisation: sequential vs domain-parallel batches. *)
let distopt_cfg parallel =
  {
    Vm1.Dist_opt.tx = 0;
    ty = 0;
    bw = 40;
    bh = 6;
    lx = 3;
    ly = 1;
    allow_flip = false;
    allow_move = true;
    mode = `Greedy;
    parallel;
    candidate_cost = None;
    wcache = None;
  }

let bench_distopt_sequential =
  Test.make ~name:"ablation/distopt_sequential"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Dist_opt.run q params (distopt_cfg false))))

let bench_distopt_parallel =
  Test.make ~name:"ablation/distopt_parallel_domains"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Dist_opt.run q params (distopt_cfg true))))

(* Substrate kernels, for tracking the flow's building blocks. *)
let bench_global_place =
  Test.make ~name:"substrate/global_place"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         Place.Global.place q))

let bench_legalize =
  Test.make ~name:"substrate/legalize"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         Place.Legalize.legalize q))

let bench_hpwl =
  Test.make ~name:"substrate/hpwl_total"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore (Place.Hpwl.total p)))

let bench_objective =
  Test.make ~name:"substrate/objective_counts"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         ignore (Vm1.Objective.counts params p)))

let benchmarks =
  Test.make_grouped ~name:"vm1dp"
    [
      bench_fig5; bench_fig6; bench_fig7;
      bench_table2_closed; bench_table2_open; bench_fig8;
      bench_ablation_greedy; bench_ablation_exact; bench_ablation_milp;
      bench_ablation_anneal;
      bench_ablation_no_dm1;
      bench_distopt_sequential; bench_distopt_parallel;
      bench_global_place; bench_legalize; bench_hpwl; bench_objective;
    ]

let run_micro () =
  print_endline "# Microbenchmarks (Bechamel; ns per run, OLS estimate)";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name stats acc ->
        let est =
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.sprintf "%14.0f" est
          | _ -> "            n/a"
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-48s %s ns/run\n" name est)
    rows

(* --- scaling mode: per-stage wall-clock vs --jobs, on the jpeg
   testcase, emitted as machine-readable BENCH_vm1dp.json. The same
   placement and routing problem is solved once per pool size; besides
   the timings the report records whether every run produced the same
   bytes as --jobs 1, which is the executor's determinism contract. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Explicit field-by-field serialization (not [Marshal]): every byte in
   the digest is a value the determinism contract actually covers, and
   the encoding cannot drift with the runtime's representation of
   closures-free-but-shared structure. Fixed-width ints self-delimit. *)
let digest_int b v = Buffer.add_int64_le b (Int64.of_int v)

let placement_digest (p : Place.Placement.t) =
  let b = Buffer.create 65536 in
  Array.iter (digest_int b) p.Place.Placement.xs;
  Array.iter (digest_int b) p.Place.Placement.ys;
  Array.iter
    (fun o -> Buffer.add_string b (Geom.Orient.to_string o))
    p.Place.Placement.orients;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

let route_digest (r : Route.Router.result) =
  let b = Buffer.create 65536 in
  Array.iter
    (fun (nr : Route.Router.net_route) ->
      digest_int b nr.Route.Router.net_id;
      Array.iter
        (fun (sn : Route.Router.subnet) ->
          digest_int b sn.Route.Router.src.Netlist.Design.inst;
          digest_int b sn.src.Netlist.Design.pin;
          digest_int b sn.dst.Netlist.Design.inst;
          digest_int b sn.dst.Netlist.Design.pin;
          digest_int b (if sn.routed then 1 else 0);
          digest_int b (Array.length sn.path);
          Array.iter (digest_int b) sn.path)
        nr.Route.Router.subnets)
    r.Route.Router.routes;
  digest_int b r.Route.Router.failed_subnets;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

let scaling_distopt_cfg = distopt_cfg true

let run_scaling ~out ~scaling_scale ~jobs_list () =
  Printf.printf "# Scaling with --jobs (jpeg at scale 1/%d)\n%!" scaling_scale;
  let p0 =
    Report.Flow.prepare ~scale:scaling_scale Netlist.Designs.Jpeg
      Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p0.Place.Placement.tech in
  let run_at jobs =
    Exec.set_jobs jobs;
    let q = Place.Placement.copy p0 in
    (* coordinator-domain GC pressure per row: scaling that shifts work
       to workers shows up here as falling minor words, and a speedup
       that stalls while minor words stay flat is not allocation-bound *)
    let gc0 = Gc.quick_stat () in
    let _, distopt_s =
      time (fun () -> Vm1.Dist_opt.run q params scaling_distopt_cfg)
    in
    let r, route_s = time (fun () -> Route.Router.route q) in
    let gc1 = Gc.quick_stat () in
    Printf.printf "  jobs=%d  distopt %.3fs  route %.3fs\n%!" jobs distopt_s
      route_s;
    ((jobs, distopt_s, route_s, placement_digest q ^ route_digest r), (gc0, gc1))
  in
  let rows = List.map run_at jobs_list in
  let (_, base_d, base_r, base_digest), _ =
    match rows with row1 :: _ -> row1 | [] -> assert false
  in
  let base_total = base_d +. base_r in
  let module J = Obs.Json in
  let cores = Domain.recommended_domain_count () in
  let row_json ((jobs, d, r, digest), ((gc0 : Gc.stat), (gc1 : Gc.stat))) =
    J.Obj
      [
        ("jobs", J.Int jobs);
        (* a row asking for more domains than the machine has cores is
           expected to slow down, not speed up — mark it so a 1-CPU
           "slowdown" in a committed BENCH_vm1dp.json is self-explaining *)
        ("cores", J.Int cores);
        ("oversubscribed", J.Bool (jobs > cores));
        ("distopt_s", J.Float d);
        ("route_s", J.Float r);
        ("total_s", J.Float (d +. r));
        ("speedup_distopt", J.Float (base_d /. d));
        ("speedup_route", J.Float (base_r /. r));
        ("speedup_total", J.Float (base_total /. (d +. r)));
        ("identical_to_jobs1", J.Bool (String.equal digest base_digest));
        ( "gc",
          J.Obj
            [
              ("minor_words", J.Float (gc1.minor_words -. gc0.minor_words));
              ("major_words", J.Float (gc1.major_words -. gc0.major_words));
              ( "minor_collections",
                J.Int (gc1.minor_collections - gc0.minor_collections) );
              ( "major_collections",
                J.Int (gc1.major_collections - gc0.major_collections) );
            ] );
      ]
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.bench_scaling);
        ("design", J.Str "jpeg");
        ("scale", J.Int scaling_scale);
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("rows", J.List (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out;
  if
    not
      (List.for_all
         (fun ((_, _, _, d), _) -> String.equal d base_digest)
         rows)
  then begin
    prerr_endline "bench: scaling runs diverged from --jobs 1";
    exit 1
  end

(* --- route-profile mode: one observability-enabled route of the jpeg
   testcase, reporting per-phase span durations, hot-path counters and
   the routing quality numbers as machine-readable JSON. The
   @route-bench-smoke alias runs this at a small scale and gates quality
   (failed subnets, overflowed edges) against a checked-in baseline;
   timings are recorded but not gated, since CI wall-clock is noisy. *)

let run_route_profile ~out ~profile_scale () =
  Printf.printf "# Route profile (jpeg at scale 1/%d)\n%!" profile_scale;
  let p =
    Report.Flow.prepare ~scale:profile_scale Netlist.Designs.Jpeg
      Pdk.Cell_arch.Closed_m1
  in
  Obs.set_enabled true;
  Obs.reset ();
  let r, route_s = time (fun () -> Route.Router.route p) in
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  let s = Route.Metrics.summarize r in
  let overflow = Route.Grid.overflow_count r.Route.Router.grid in
  Printf.printf "  route %.3fs  failed=%d overflow=%d rwl=%.1fum dm1=%d\n%!"
    route_s r.Route.Router.failed_subnets overflow s.Route.Metrics.rwl_um
    s.Route.Metrics.dm1;
  let module J = Obs.Json in
  let span_json (name, (a : Obs.span_agg)) =
    J.Obj
      [
        ("name", J.Str name);
        ("calls", J.Int a.calls);
        ("total_ms", J.Float (Int64.to_float a.total_ns /. 1e6));
      ]
  in
  let route_counters =
    List.filter
      (fun (n, _) -> String.starts_with ~prefix:"route." n)
      snap.Obs.counters
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.route_profile);
        ("design", J.Str "jpeg");
        ("scale", J.Int profile_scale);
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("route_s", J.Float route_s);
        ("failed_subnets", J.Int r.Route.Router.failed_subnets);
        ("overflow_edges", J.Int overflow);
        ("rwl_um", J.Float s.Route.Metrics.rwl_um);
        ("dm1", J.Int s.Route.Metrics.dm1);
        ( "spans",
          J.List (List.map span_json (Obs.aggregate_spans snap.Obs.spans)) );
        ( "counters",
          J.Obj (List.map (fun (n, v) -> (n, J.Int v)) route_counters) );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out

(* --- load mode: drive the batch service (lib/serve, the engine behind
   bin/vm1d) in-process with N concurrent clients and emit a
   machine-readable vm1dp-bench-load/1 report. Three scenarios per pool
   size: a cold-then-warm double pass over the spec list on a fresh
   artifact cache, and an interleaved run where N clients' request
   streams are multiplexed round-robin. Every reply is classified by its
   cache outcome (warm = every artifact hit); the report records p50/p99
   latency and throughput for the interleaved run, cold-vs-warm medians,
   and whether every occurrence of a spec — cold, warm or interleaved,
   at any --jobs — produced byte-identical result payloads. The
   @serve-bench-smoke alias gates those invariants via check_vm1d.exe;
   refresh the committed baseline with:
     VM1DP_BENCH_SCALE=32 dune exec bench/main.exe -- load --out BENCH_vm1d.json *)

let load_specs load_scale =
  let spec ~id ?util ?alpha ?sequence () =
    Serve.Protocol.generated_job ~id ~scale:load_scale ?util ?alpha
      ?sequence Netlist.Designs.M0
  in
  [
    (* three distinct placements (cold resolves), one alpha/sequence
       variant that shares every artifact with s2 *)
    spec ~id:"s1" ~util:0.70 ();
    spec ~id:"s2" ();
    spec ~id:"s3" ~util:0.80 ();
    spec ~id:"s4" ~alpha:600. ~sequence:2 ();
  ]

let drive_serve cache lines =
  let remaining = ref lines in
  let replies = ref [] in
  let next_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some l
  in
  let emit line = replies := line :: !replies in
  let stats = Serve.Daemon.serve cache ~next_line ~emit () in
  (stats, List.rev !replies)

type load_reply = {
  lr_id : string;
  lr_latency_ms : float;
  lr_warm : bool; (* every artifact cache was hit *)
  lr_result : string; (* canonical result payload bytes *)
}

let parse_load_reply line =
  match Serve.Protocol.parse_reply line with
  | Error msg -> failwith ("bench load: unreadable reply: " ^ msg)
  | Ok r -> (
    match
      ( r.Serve.Protocol.p_status,
        r.Serve.Protocol.p_id,
        r.Serve.Protocol.p_result,
        r.Serve.Protocol.p_latency_ms )
    with
    | "ok", Some id, Some result, Some ms ->
      {
        lr_id = id;
        lr_latency_ms = ms;
        lr_warm =
          r.Serve.Protocol.p_cache <> []
          && List.for_all snd r.Serve.Protocol.p_cache;
        lr_result = Obs.Json.to_string result;
      }
    | _ -> failwith ("bench load: error reply: " ^ line))

(* Round-robin multiplex of [clients] request streams, each a rotation
   of the spec list (client i leads with spec i), as a socket daemon
   fed by concurrent submitters would see them. *)
let interleave ~clients specs =
  let n = List.length specs in
  let arr = Array.of_list specs in
  List.concat
    (List.init n (fun k ->
         List.init clients (fun i -> arr.((i + k) mod n))))

let median_ms = function
  | [] -> 0.
  | l ->
    let a = Array.of_list (List.sort Float.compare l) in
    a.(Array.length a / 2)

let percentile_ms q l =
  match List.sort Float.compare l with
  | [] -> 0.
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) rank))

(* --- distopt-profile mode: two observability-enabled DistOpt passes of
   the jpeg testcase through the `Portfolio solver with one shared
   window cache — a cold pass that fills it and a warm pass that replays
   from it — reporting per-window solve-time percentiles, the cache hit
   rate, portfolio win counts and the resulting placement QoR as
   machine-readable JSON. The warm pass starts from the same input
   placement, so the hit ≡ miss invariant makes its result byte-identical
   to the cold pass; the run itself enforces that (exit 1 on divergence).
   The @distopt-bench-smoke alias runs this at a small scale and gates
   moves/windows/objective against a checked-in baseline; timings are
   recorded but not gated, since CI wall-clock is noisy. Refresh with:
     VM1DP_BENCH_SCALE=4 dune exec bench/main.exe -- distopt-profile \
       --out bench/distopt_profile_baseline.json *)

let run_distopt_profile ~out ~profile_scale () =
  Printf.printf "# DistOpt profile (jpeg at scale 1/%d)\n%!" profile_scale;
  let p0 =
    Report.Flow.prepare ~scale:profile_scale Netlist.Designs.Jpeg
      Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p0.Place.Placement.tech in
  let cache = Vm1.Wcache.create () in
  let cfg =
    { scaling_distopt_cfg with
      Vm1.Dist_opt.mode = `Portfolio;
      parallel = false;
      wcache = Some cache }
  in
  Obs.set_enabled true;
  Obs.reset ();
  let q_cold = Place.Placement.copy p0 in
  let stats_cold, cold_s = time (fun () -> Vm1.Dist_opt.run q_cold params cfg) in
  let q_warm = Place.Placement.copy p0 in
  let stats_warm, warm_s = time (fun () -> Vm1.Dist_opt.run q_warm params cfg) in
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  let hit_is_miss =
    String.equal (placement_digest q_cold) (placement_digest q_warm)
    && stats_cold.Vm1.Dist_opt.total_moves = stats_warm.Vm1.Dist_opt.total_moves
  in
  let hits, misses = Vm1.Wcache.stats cache in
  let obj = Vm1.Objective.counts params q_cold in
  (* individual distopt.window spans, cold and warm passes together *)
  let window_ms =
    let rec go acc (s : Obs.Span.t) =
      let acc = List.fold_left go acc s.Obs.Span.children in
      if String.equal s.Obs.Span.name "distopt.window" then
        (Int64.to_float (Obs.Span.duration_ns s) /. 1e6) :: acc
      else acc
    in
    List.fold_left go [] snap.Obs.spans
  in
  let counter name =
    match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> 0
  in
  let win_of solver = counter ("distopt.portfolio_wins." ^ solver) in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf
    "  cold %.3fs  warm %.3fs  windows=%d moves=%d  cache %d/%d hits  wins \
     exact=%d greedy=%d anneal=%d\n%!"
    cold_s warm_s stats_cold.Vm1.Dist_opt.windows
    stats_cold.Vm1.Dist_opt.total_moves hits (hits + misses) (win_of "exact")
    (win_of "greedy") (win_of "anneal");
  let module J = Obs.Json in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.distopt_profile);
        ("design", J.Str "jpeg");
        ("scale", J.Int profile_scale);
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("solver", J.Str "portfolio");
        ("distopt_cold_s", J.Float cold_s);
        ("distopt_warm_s", J.Float warm_s);
        ("windows", J.Int stats_cold.Vm1.Dist_opt.windows);
        ("batches", J.Int stats_cold.Vm1.Dist_opt.batches);
        ("moves", J.Int stats_cold.Vm1.Dist_opt.total_moves);
        ("hpwl_dbu", J.Int obj.Vm1.Objective.hpwl_dbu);
        ("alignments", J.Int obj.Vm1.Objective.alignments);
        ( "window_solve_ms",
          J.Obj
            [
              ("n", J.Int (List.length window_ms));
              ("p50", J.Float (percentile_ms 0.5 window_ms));
              ("p90", J.Float (percentile_ms 0.9 window_ms));
              ("p99", J.Float (percentile_ms 0.99 window_ms));
            ] );
        ( "wcache",
          J.Obj
            [
              ("hits", J.Int hits);
              ("misses", J.Int misses);
              ("hit_rate", J.Float hit_rate);
              ("entries", J.Int (Vm1.Wcache.length cache));
            ] );
        ( "portfolio_wins",
          J.Obj
            [
              ("exact", J.Int (win_of "exact"));
              ("greedy", J.Int (win_of "greedy"));
              ("anneal", J.Int (win_of "anneal"));
            ] );
        ("hit_is_miss", J.Bool hit_is_miss);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out;
  if not hit_is_miss then begin
    prerr_endline "bench: warm-cache replay diverged from the cold pass";
    exit 1
  end

let run_load ~out ~load_scale ~clients ~jobs_list () =
  Printf.printf "# Batch-service load (m0 at scale 1/%d, %d clients)\n%!"
    load_scale clients;
  Obs.set_enabled true;
  Obs.reset ();
  let specs = load_specs load_scale in
  let encode = List.map Serve.Protocol.encode_job in
  (* spec id -> result payload bytes of its first occurrence; any later
     occurrence that differs breaks the byte-identity contract *)
  let results : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let identical = ref true in
  let record r =
    match Hashtbl.find_opt results r.lr_id with
    | None -> Hashtbl.add results r.lr_id r.lr_result
    | Some prior ->
      if not (String.equal prior r.lr_result) then identical := false
  in
  let total_errors = ref 0 in
  (* pooled across every pool size: per-row cold/warm medians are
     recorded but the gated verdict uses the pooled medians — at high
     oversubscription a single row's 3-sample cold median is too noisy
     to gate on *)
  let all_cold_ms = ref [] and all_warm_ms = ref [] in
  let module J = Obs.Json in
  let run_at jobs =
    Exec.set_jobs jobs;
    (* scenario 1+2: fresh cache, double pass — first occurrences cold,
       everything after warm *)
    let cache = Serve.Cache.create () in
    let stats, replies = drive_serve cache (encode (specs @ specs)) in
    total_errors := !total_errors + stats.Serve.Daemon.errors;
    let rs = List.map parse_load_reply replies in
    List.iter record rs;
    let latencies sel = List.filter_map sel rs in
    let cold_ms =
      latencies (fun r -> if r.lr_warm then None else Some r.lr_latency_ms)
    in
    let warm_ms =
      latencies (fun r -> if r.lr_warm then Some r.lr_latency_ms else None)
    in
    (* scenario 3: fresh cache, N interleaved clients *)
    let cache2 = Serve.Cache.create () in
    let stream = encode (interleave ~clients specs) in
    let (istats, ireplies), wall_s = time (fun () -> drive_serve cache2 stream) in
    total_errors := !total_errors + istats.Serve.Daemon.errors;
    let irs = List.map parse_load_reply ireplies in
    List.iter record irs;
    let ilat = List.map (fun r -> r.lr_latency_ms) irs in
    all_cold_ms := cold_ms @ !all_cold_ms;
    all_warm_ms := warm_ms @ !all_warm_ms;
    let cold_p50 = median_ms cold_ms and warm_p50 = median_ms warm_ms in
    let warm_below_cold = warm_p50 < cold_p50 in
    let throughput = float_of_int (List.length irs) /. wall_s in
    Printf.printf
      "  jobs=%d  cold p50 %.1fms  warm p50 %.1fms  interleaved p50 %.1fms \
       p99 %.1fms  %.1f jobs/s\n%!"
      jobs cold_p50 warm_p50 (percentile_ms 0.5 ilat)
      (percentile_ms 0.99 ilat) throughput;
    J.Obj
      [
        ("jobs", J.Int jobs);
        ( "cold_ms",
          J.Obj
            [ ("n", J.Int (List.length cold_ms)); ("p50", J.Float cold_p50) ]
        );
        ( "warm_ms",
          J.Obj
            [ ("n", J.Int (List.length warm_ms)); ("p50", J.Float warm_p50) ]
        );
        ( "interleaved",
          J.Obj
            [
              ("n", J.Int (List.length irs));
              ("wall_s", J.Float wall_s);
              ("throughput_jobs_per_s", J.Float throughput);
              ("p50_ms", J.Float (percentile_ms 0.5 ilat));
              ("p99_ms", J.Float (percentile_ms 0.99 ilat));
            ] );
        ("warm_below_cold", J.Bool warm_below_cold);
      ]
  in
  let rows = List.map run_at jobs_list in
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  let counter name =
    match List.assoc_opt name snap.Obs.counters with Some v -> v | None -> 0
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.bench_load);
        ("design", J.Str "m0");
        ("scale", J.Int load_scale);
        ("clients", J.Int clients);
        ("specs", J.Int (List.length specs));
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("serve_jobs", J.Int (counter "serve.jobs"));
        ("serve_cache_hits", J.Int (counter "serve.cache_hits"));
        ("serve_cache_misses", J.Int (counter "serve.cache_misses"));
        ("errors", J.Int !total_errors);
        ("byte_identical", J.Bool !identical);
        ("cold_p50_ms", J.Float (median_ms !all_cold_ms));
        ("warm_p50_ms", J.Float (median_ms !all_warm_ms));
        ( "warm_below_cold",
          J.Bool (median_ms !all_warm_ms < median_ms !all_cold_ms) );
        (* the service-level objective the daemon is operated against
           (README "Operating the daemon"): every job answered, results
           byte-identical, with the pooled warm p99 recorded as the
           latency datum an operator alerts on. check_vm1d gates on
           "pass". *)
        ( "slo",
          (let served = counter "serve.jobs" in
           let availability =
             if served = 0 then Float.nan
             else 1.0 -. (float_of_int !total_errors /. float_of_int served)
           in
           J.Obj
             [
               ("availability", J.Float availability);
               ("availability_target", J.Float 1.0);
               ("warm_p99_ms", J.Float (percentile_ms 0.99 !all_warm_ms));
               ("byte_identical", J.Bool !identical);
               ("pass", J.Bool (!total_errors = 0 && !identical));
             ]) );
        ("rows", J.List rows);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out;
  if !total_errors > 0 || not !identical then begin
    prerr_endline "bench: load run violated the service contract";
    exit 1
  end

(* --trace/--metrics mirror the vm1opt/expt flags so benchmark runs emit
   the same comparable JSON; see README "Measuring performance". The
   trace is written for the regeneration half only — Bechamel's timed
   loops must not pay instrumentation costs, so obs is switched off
   before the microbenchmarks run. *)
let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse (mode, trace, metrics, jobs, out, clients) = function
    | [] -> Some (mode, trace, metrics, jobs, out, clients)
    | "--trace" :: file :: rest ->
      parse (mode, Some file, metrics, jobs, out, clients) rest
    | "--metrics" :: rest -> parse (mode, trace, true, jobs, out, clients) rest
    | "--jobs" :: n :: rest -> begin
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        parse (mode, trace, metrics, Some n, out, clients) rest
      | _ -> None
    end
    | "--clients" :: n :: rest -> begin
      match int_of_string_opt n with
      | Some n when n >= 1 -> parse (mode, trace, metrics, jobs, out, n) rest
      | _ -> None
    end
    | "--out" :: file :: rest ->
      parse (mode, trace, metrics, jobs, file, clients) rest
    | ( ("tables" | "micro" | "scaling" | "route-profile" | "distopt-profile"
        | "load") as m )
      :: rest ->
      parse (Some m, trace, metrics, jobs, out, clients) rest
    | _ -> None
  in
  match parse (None, None, false, None, "BENCH_vm1dp.json", 4) args with
  | None ->
    prerr_endline
      "usage: main.exe [tables|micro|scaling|route-profile|distopt-profile|\
       load] [--trace FILE] [--metrics] [--jobs N] [--clients N] [--out FILE]";
    exit 1
  | Some (mode, trace, metrics, jobs, out, clients) ->
    if trace <> None || metrics then Obs.set_enabled true;
    (match jobs with Some n -> Exec.set_jobs n | None -> ());
    let finish () =
      (match trace with
       | Some path ->
         (try
            Obs.write_trace path;
            Printf.printf "(wrote %s)\n%!" path
          with Sys_error msg ->
            Printf.eprintf "bench: cannot write trace: %s\n%!" msg;
            exit 1)
       | None -> ());
      if metrics then Report.Obs_report.print (Obs.snapshot ());
      Obs.set_enabled false
    in
    (match mode with
    | Some "tables" ->
      regenerate ();
      finish ()
    | Some "micro" ->
      finish ();
      run_micro ()
    | Some "scaling" ->
      let scaling_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      run_scaling ~out ~scaling_scale ~jobs_list:[ 1; 2; 4 ] ();
      finish ()
    | Some "route-profile" ->
      let profile_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      let out =
        if out = "BENCH_vm1dp.json" then "route_profile.json" else out
      in
      run_route_profile ~out ~profile_scale ()
    | Some "distopt-profile" ->
      let profile_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      let out =
        if out = "BENCH_vm1dp.json" then "distopt_profile.json" else out
      in
      run_distopt_profile ~out ~profile_scale ()
    | Some "load" ->
      let load_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      let out = if out = "BENCH_vm1dp.json" then "BENCH_vm1d.json" else out in
      run_load ~out ~load_scale ~clients ~jobs_list:[ 1; 2; 4 ] ();
      finish ()
    | _ ->
      regenerate ();
      finish ();
      run_micro ())
