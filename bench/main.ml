(* Benchmark harness.

   Two halves:

   1. Regeneration: prints every table and figure of the paper's
      evaluation section (Fig. 5, Fig. 6, Fig. 7, Table 2, Fig. 8) at the
      configured scale, via the same Report.Expt drivers the expt CLI
      uses.

   2. Microbenchmarks: one Bechamel Test.make per table/figure measuring
      the representative kernel behind it, plus ablation benches for the
      design choices called out in DESIGN.md (greedy vs exact vs MILP
      window solver; dM1-aware routing on/off).

   Run with: dune exec bench/main.exe            (both halves)
             dune exec bench/main.exe -- tables  (regeneration only)
             dune exec bench/main.exe -- micro   (microbenchmarks only)

   The regeneration scale defaults to 16 (instance counts 1/16 of the
   paper's); set e.g. VM1DP_BENCH_SCALE=8 for larger runs. *)

open Bechamel
open Toolkit

let scale =
  match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
  | Some s -> int_of_string s
  | None -> 16

(* --- regeneration --- *)

let regenerate () =
  Printf.printf "# Regenerating paper tables/figures at scale 1/%d\n\n%!" scale;
  Printf.printf "## ExptA-1 (Fig. 5): RWL and runtime vs window size\n%!";
  print_string (Report.Expt.Fig5.render (Report.Expt.Fig5.run ~scale ()));
  Printf.printf "\n## ExptA-2 (Fig. 6): RWL and #dM1 vs alpha\n%!";
  print_string (Report.Expt.Fig6.render (Report.Expt.Fig6.run ~scale ()));
  Printf.printf "\n## ExptA-3 (Fig. 7): optimisation sequences\n%!";
  print_string (Report.Expt.Fig7.render (Report.Expt.Fig7.run ~scale ()));
  Printf.printf "\n## ExptB (Table 2): ClosedM1 and OpenM1 designs\n%!";
  print_string (Report.Expt.Table2.render (Report.Expt.Table2.run ~scale ()));
  Printf.printf "\n## ExptB-1 (Fig. 8): DRVs vs utilisation\n%!";
  print_string (Report.Expt.Fig8.render (Report.Expt.Fig8.run ~scale ()));
  print_newline ()

(* --- microbenchmark fixtures (built once, outside the timed region) --- *)

let bench_scale = 32

let fixture arch =
  let p = Report.Flow.prepare ~scale:bench_scale Netlist.Designs.Aes arch in
  let params = Vm1.Params.default p.Place.Placement.tech in
  (p, params)

let closed_fixture = lazy (fixture Pdk.Cell_arch.Closed_m1)
let open_fixture = lazy (fixture Pdk.Cell_arch.Open_m1)

let tiny_window_fixture =
  lazy
    (let p, params = Lazy.force closed_fixture in
     let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
     let w =
       Array.to_list ws
       |> List.filter (fun (w : Vm1.Window.t) ->
              let k = List.length w.movable in
              k >= 2 && k <= 4)
       |> List.hd
     in
     (p, params, w))

let extract_tiny () =
  let p, params, w = Lazy.force tiny_window_fixture in
  Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo ~bw:w.bw
    ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:false ~allow_move:true

(* Fig. 5 kernel: one DistOpt pair over a 20um window grid. *)
let bench_fig5 =
  Test.make ~name:"fig5/distopt_20um_window_pass"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore
           (Vm1.Dist_opt.run q params
              {
                Vm1.Dist_opt.tx = 0;
                ty = 0;
                bw = 555;
                bh = 74;
                lx = 4;
                ly = 1;
                allow_flip = false;
                allow_move = true;
                mode = `Greedy;
                parallel = false;
                candidate_cost = None;
              })))

(* Fig. 6 kernel: the full VM1Opt metaheuristic at the selected alpha. *)
let bench_fig6 =
  Test.make ~name:"fig6/vm1opt_alpha1200"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Vm1_opt.run params q)))

(* Fig. 7 kernel: the longest optimisation sequence (number 5). *)
let bench_fig7 =
  Test.make ~name:"fig7/vm1opt_sequence5"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         let config =
           { Vm1.Vm1_opt.default_config with
             Vm1.Vm1_opt.sequence = Vm1.Params.sequence 5 }
         in
         ignore (Vm1.Vm1_opt.run ~config params q)))

(* Table 2 kernels: routing + metrics on both architectures. *)
let bench_table2_closed =
  Test.make ~name:"table2/route_and_metrics_closedm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

let bench_table2_open =
  Test.make ~name:"table2/route_and_metrics_openm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force open_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

(* Fig. 8 kernel: DRV counting on a congested die. *)
let congested_fixture =
  lazy
    (Report.Flow.prepare ~scale:bench_scale ~utilization:0.86
       Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1)

let bench_fig8 =
  Test.make ~name:"fig8/route_congested_util86"
    (Staged.stage (fun () ->
         let p = Lazy.force congested_fixture in
         ignore (Route.Metrics.summarize (Route.Router.route p))))

(* Ablation: window solver quality ladder (greedy vs exact vs MILP). *)
let bench_ablation_greedy =
  Test.make ~name:"ablation/window_solver_greedy"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Greedy (extract_tiny ()))))

let bench_ablation_exact =
  Test.make ~name:"ablation/window_solver_exact"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Exact (extract_tiny ()))))

let bench_ablation_milp =
  Test.make ~name:"ablation/window_solver_milp"
    (Staged.stage (fun () ->
         ignore (Vm1.Formulate.solve ~node_limit:5_000 (extract_tiny ()))))

let bench_ablation_anneal =
  Test.make ~name:"ablation/window_solver_anneal"
    (Staged.stage (fun () ->
         ignore (Vm1.Scp_solver.solve ~mode:`Anneal (extract_tiny ()))))

(* Ablation: the router with dM1 exploitation disabled. *)
let bench_ablation_no_dm1 =
  Test.make ~name:"ablation/route_without_dm1"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore
           (Route.Router.route
              ~config:{ Route.Router.default_config with use_dm1 = false }
              p)))

(* Distributable optimisation: sequential vs domain-parallel batches. *)
let distopt_cfg parallel =
  {
    Vm1.Dist_opt.tx = 0;
    ty = 0;
    bw = 40;
    bh = 6;
    lx = 3;
    ly = 1;
    allow_flip = false;
    allow_move = true;
    mode = `Greedy;
    parallel;
    candidate_cost = None;
  }

let bench_distopt_sequential =
  Test.make ~name:"ablation/distopt_sequential"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Dist_opt.run q params (distopt_cfg false))))

let bench_distopt_parallel =
  Test.make ~name:"ablation/distopt_parallel_domains"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         ignore (Vm1.Dist_opt.run q params (distopt_cfg true))))

(* Substrate kernels, for tracking the flow's building blocks. *)
let bench_global_place =
  Test.make ~name:"substrate/global_place"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         Place.Global.place q))

let bench_legalize =
  Test.make ~name:"substrate/legalize"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         let q = Place.Placement.copy p in
         Place.Legalize.legalize q))

let bench_hpwl =
  Test.make ~name:"substrate/hpwl_total"
    (Staged.stage (fun () ->
         let p, _ = Lazy.force closed_fixture in
         ignore (Place.Hpwl.total p)))

let bench_objective =
  Test.make ~name:"substrate/objective_counts"
    (Staged.stage (fun () ->
         let p, params = Lazy.force closed_fixture in
         ignore (Vm1.Objective.counts params p)))

let benchmarks =
  Test.make_grouped ~name:"vm1dp"
    [
      bench_fig5; bench_fig6; bench_fig7;
      bench_table2_closed; bench_table2_open; bench_fig8;
      bench_ablation_greedy; bench_ablation_exact; bench_ablation_milp;
      bench_ablation_anneal;
      bench_ablation_no_dm1;
      bench_distopt_sequential; bench_distopt_parallel;
      bench_global_place; bench_legalize; bench_hpwl; bench_objective;
    ]

let run_micro () =
  print_endline "# Microbenchmarks (Bechamel; ns per run, OLS estimate)";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] benchmarks in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name stats acc ->
        let est =
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.sprintf "%14.0f" est
          | _ -> "            n/a"
        in
        (name, est) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-48s %s ns/run\n" name est)
    rows

(* --- scaling mode: per-stage wall-clock vs --jobs, on the jpeg
   testcase, emitted as machine-readable BENCH_vm1dp.json. The same
   placement and routing problem is solved once per pool size; besides
   the timings the report records whether every run produced the same
   bytes as --jobs 1, which is the executor's determinism contract. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* vm1lint: allow marshal -- the digests below only compare runs within a
   single process (cross-jobs determinism check); cross-version stability
   of the byte format is irrelevant here. *)
let placement_digest (p : Place.Placement.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (p.Place.Placement.xs, p.ys, p.orients) []))

let route_digest (r : Route.Router.result) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (r.Route.Router.routes, r.Route.Router.failed_subnets)
          []))

let scaling_distopt_cfg = distopt_cfg true

let run_scaling ~out ~scaling_scale ~jobs_list () =
  Printf.printf "# Scaling with --jobs (jpeg at scale 1/%d)\n%!" scaling_scale;
  let p0 =
    Report.Flow.prepare ~scale:scaling_scale Netlist.Designs.Jpeg
      Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p0.Place.Placement.tech in
  let run_at jobs =
    Exec.set_jobs jobs;
    let q = Place.Placement.copy p0 in
    let _, distopt_s =
      time (fun () -> Vm1.Dist_opt.run q params scaling_distopt_cfg)
    in
    let r, route_s = time (fun () -> Route.Router.route q) in
    Printf.printf "  jobs=%d  distopt %.3fs  route %.3fs\n%!" jobs distopt_s
      route_s;
    (jobs, distopt_s, route_s, placement_digest q ^ route_digest r)
  in
  let rows = List.map run_at jobs_list in
  let _, base_d, base_r, base_digest =
    match rows with row1 :: _ -> row1 | [] -> assert false
  in
  let base_total = base_d +. base_r in
  let module J = Obs.Json in
  let row_json (jobs, d, r, digest) =
    J.Obj
      [
        ("jobs", J.Int jobs);
        ("distopt_s", J.Float d);
        ("route_s", J.Float r);
        ("total_s", J.Float (d +. r));
        ("speedup_distopt", J.Float (base_d /. d));
        ("speedup_route", J.Float (base_r /. r));
        ("speedup_total", J.Float (base_total /. (d +. r)));
        ("identical_to_jobs1", J.Bool (String.equal digest base_digest));
      ]
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.bench_scaling);
        ("design", J.Str "jpeg");
        ("scale", J.Int scaling_scale);
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("rows", J.List (List.map row_json rows));
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out;
  if not (List.for_all (fun (_, _, _, d) -> String.equal d base_digest) rows)
  then begin
    prerr_endline "bench: scaling runs diverged from --jobs 1";
    exit 1
  end

(* --- route-profile mode: one observability-enabled route of the jpeg
   testcase, reporting per-phase span durations, hot-path counters and
   the routing quality numbers as machine-readable JSON. The
   @route-bench-smoke alias runs this at a small scale and gates quality
   (failed subnets, overflowed edges) against a checked-in baseline;
   timings are recorded but not gated, since CI wall-clock is noisy. *)

let run_route_profile ~out ~profile_scale () =
  Printf.printf "# Route profile (jpeg at scale 1/%d)\n%!" profile_scale;
  let p =
    Report.Flow.prepare ~scale:profile_scale Netlist.Designs.Jpeg
      Pdk.Cell_arch.Closed_m1
  in
  Obs.set_enabled true;
  Obs.reset ();
  let r, route_s = time (fun () -> Route.Router.route p) in
  let snap = Obs.snapshot () in
  Obs.set_enabled false;
  let s = Route.Metrics.summarize r in
  let overflow = Route.Grid.overflow_count r.Route.Router.grid in
  Printf.printf "  route %.3fs  failed=%d overflow=%d rwl=%.1fum dm1=%d\n%!"
    route_s r.Route.Router.failed_subnets overflow s.Route.Metrics.rwl_um
    s.Route.Metrics.dm1;
  let module J = Obs.Json in
  let span_json (name, (a : Obs.span_agg)) =
    J.Obj
      [
        ("name", J.Str name);
        ("calls", J.Int a.calls);
        ("total_ms", J.Float (Int64.to_float a.total_ns /. 1e6));
      ]
  in
  let route_counters =
    List.filter
      (fun (n, _) -> String.starts_with ~prefix:"route." n)
      snap.Obs.counters
  in
  let doc =
    J.Obj
      [
        ("schema", J.Str Obs.Schemas.route_profile);
        ("design", J.Str "jpeg");
        ("scale", J.Int profile_scale);
        ("cpus", J.Int (Domain.recommended_domain_count ()));
        ("route_s", J.Float route_s);
        ("failed_subnets", J.Int r.Route.Router.failed_subnets);
        ("overflow_edges", J.Int overflow);
        ("rwl_um", J.Float s.Route.Metrics.rwl_um);
        ("dm1", J.Int s.Route.Metrics.dm1);
        ( "spans",
          J.List (List.map span_json (Obs.aggregate_spans snap.Obs.spans)) );
        ( "counters",
          J.Obj (List.map (fun (n, v) -> (n, J.Int v)) route_counters) );
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string doc);
      output_char oc '\n');
  Printf.printf "(wrote %s)\n%!" out

(* --trace/--metrics mirror the vm1opt/expt flags so benchmark runs emit
   the same comparable JSON; see README "Measuring performance". The
   trace is written for the regeneration half only — Bechamel's timed
   loops must not pay instrumentation costs, so obs is switched off
   before the microbenchmarks run. *)
let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse (mode, trace, metrics, jobs, out) = function
    | [] -> Some (mode, trace, metrics, jobs, out)
    | "--trace" :: file :: rest -> parse (mode, Some file, metrics, jobs, out) rest
    | "--metrics" :: rest -> parse (mode, trace, true, jobs, out) rest
    | "--jobs" :: n :: rest -> begin
      match int_of_string_opt n with
      | Some n when n >= 1 -> parse (mode, trace, metrics, Some n, out) rest
      | _ -> None
    end
    | "--out" :: file :: rest -> parse (mode, trace, metrics, jobs, file) rest
    | ("tables" | "micro" | "scaling" | "route-profile") as m :: rest ->
      parse (Some m, trace, metrics, jobs, out) rest
    | _ -> None
  in
  match parse (None, None, false, None, "BENCH_vm1dp.json") args with
  | None ->
    prerr_endline
      "usage: main.exe [tables|micro|scaling|route-profile] [--trace FILE] \
       [--metrics] [--jobs N] [--out FILE]";
    exit 1
  | Some (mode, trace, metrics, jobs, out) ->
    if trace <> None || metrics then Obs.set_enabled true;
    (match jobs with Some n -> Exec.set_jobs n | None -> ());
    let finish () =
      (match trace with
       | Some path ->
         (try
            Obs.write_trace path;
            Printf.printf "(wrote %s)\n%!" path
          with Sys_error msg ->
            Printf.eprintf "bench: cannot write trace: %s\n%!" msg;
            exit 1)
       | None -> ());
      if metrics then Report.Obs_report.print (Obs.snapshot ());
      Obs.set_enabled false
    in
    (match mode with
    | Some "tables" ->
      regenerate ();
      finish ()
    | Some "micro" ->
      finish ();
      run_micro ()
    | Some "scaling" ->
      let scaling_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      run_scaling ~out ~scaling_scale ~jobs_list:[ 1; 2; 4 ] ();
      finish ()
    | Some "route-profile" ->
      let profile_scale =
        match Sys.getenv_opt "VM1DP_BENCH_SCALE" with
        | Some s -> int_of_string s
        | None -> 16
      in
      let out =
        if out = "BENCH_vm1dp.json" then "route_profile.json" else out
      in
      run_route_profile ~out ~profile_scale ()
    | _ ->
      regenerate ();
      finish ();
      run_micro ())
