(* DistOpt-profile regression gate for the @distopt-bench-smoke alias.

   Usage: check_distopt_profile.exe BASELINE.json CURRENT.json

   Both files follow the vm1dp-distopt-profile/1 schema emitted by
   [main.exe distopt-profile]. The gated quantities are the deterministic
   ones — moves, windows, HPWL, alignments are a pure function of the
   design and scale, so any drift is a real behaviour change — plus the
   run's own invariants: the warm-cache replay must be byte-identical to
   the cold pass (hit_is_miss) and the warm pass must actually hit the
   cache. Wall-clock and percentile fields are printed for the log but
   never gated; CI machines are too noisy for that. *)

let read_json path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.parse text with
  | Ok j -> j
  | Error msg ->
    Printf.eprintf "check_distopt_profile: %s: bad JSON: %s\n" path msg;
    exit 2

let get_int path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Int v) -> v
  | _ ->
    Printf.eprintf "check_distopt_profile: %s: missing int field %S\n" path
      key;
    exit 2

let get_float path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Float v) -> v
  | Some (Obs.Json.Int v) -> float_of_int v
  | _ ->
    Printf.eprintf "check_distopt_profile: %s: missing float field %S\n" path
      key;
    exit 2

let get_bool path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Bool v) -> v
  | _ ->
    Printf.eprintf "check_distopt_profile: %s: missing bool field %S\n" path
      key;
    exit 2

let get_obj path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Obj _ as o) -> o
  | _ ->
    Printf.eprintf "check_distopt_profile: %s: missing object field %S\n" path
      key;
    exit 2

let () =
  let base_path, cur_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline
        "usage: check_distopt_profile.exe BASELINE.json CURRENT.json";
      exit 2
  in
  let base = read_json base_path and cur = read_json cur_path in
  (match (Obs.Json.member "schema" base, Obs.Json.member "schema" cur) with
  | Some (Obs.Json.Str b), Some (Obs.Json.Str c)
    when String.equal b Obs.Schemas.distopt_profile
         && String.equal c Obs.Schemas.distopt_profile -> ()
  | _ ->
    prerr_endline "check_distopt_profile: schema mismatch";
    exit 2);
  Printf.printf "distopt cold_s: baseline %.3f, current %.3f (informational)\n"
    (get_float base_path base "distopt_cold_s")
    (get_float cur_path cur "distopt_cold_s");
  Printf.printf "distopt warm_s: baseline %.3f, current %.3f (informational)\n"
    (get_float base_path base "distopt_warm_s")
    (get_float cur_path cur "distopt_warm_s");
  let bad = ref false in
  let gate_int key =
    let b = get_int base_path base key and c = get_int cur_path cur key in
    Printf.printf "%s: baseline %d, current %d\n" key b c;
    if c <> b then begin
      Printf.eprintf "REGRESSION: %s %d <> baseline %d\n" key c b;
      bad := true
    end
  in
  gate_int "windows";
  gate_int "moves";
  gate_int "hpwl_dbu";
  gate_int "alignments";
  if not (get_bool cur_path cur "hit_is_miss") then begin
    prerr_endline "REGRESSION: warm-cache replay diverged (hit_is_miss false)";
    bad := true
  end;
  let wcache = get_obj cur_path cur "wcache" in
  let hits = get_int cur_path wcache "hits" in
  Printf.printf "wcache hits: %d (hit_rate %.2f)\n" hits
    (get_float cur_path wcache "hit_rate");
  if hits = 0 then begin
    prerr_endline "REGRESSION: warm pass never hit the window cache";
    bad := true
  end;
  if !bad then exit 1;
  print_endline "distopt profile OK"
