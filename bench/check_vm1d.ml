(* Batch-service load gate for the @serve-bench-smoke alias.

   Usage: check_vm1d.exe REPORT.json [REPORT.json ...]

   Each file follows the vm1dp-bench-load/1 schema emitted by
   [main.exe load]. Unlike the route-profile gate this one compares
   nothing against a baseline — the properties it checks are the
   service's hard contract, absolute in any report (including the
   committed BENCH_vm1d.json):

   - no error replies ([errors] = 0);
   - the artifact cache was exercised ([serve_cache_hits] > 0);
   - warm jobs (every artifact hit) were strictly faster than cold jobs
     at every pool size ([warm_below_cold]);
   - every occurrence of a spec — cold, warm or interleaved, at any
     --jobs — produced byte-identical results ([byte_identical]).

   Latency and throughput numbers are printed for the log but never
   gated: CI machines are too noisy for that. *)

let read_json path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.parse text with
  | Ok j -> j
  | Error msg ->
    Printf.eprintf "check_vm1d: %s: bad JSON: %s\n" path msg;
    exit 2

let get_int path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Int v) -> v
  | _ ->
    Printf.eprintf "check_vm1d: %s: missing int field %S\n" path key;
    exit 2

let get_bool path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Bool v) -> v
  | _ ->
    Printf.eprintf "check_vm1d: %s: missing bool field %S\n" path key;
    exit 2

let get_float j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Float v) -> v
  | Some (Obs.Json.Int v) -> float_of_int v
  | _ -> nan

let check path =
  let j = read_json path in
  (match Obs.Json.member "schema" j with
  | Some (Obs.Json.Str s) when String.equal s Obs.Schemas.bench_load -> ()
  | _ ->
    Printf.eprintf "check_vm1d: %s: not a %s report\n" path
      Obs.Schemas.bench_load;
    exit 2);
  Printf.printf "%s: %d jobs, cache %d hits / %d misses\n" path
    (get_int path j "serve_jobs")
    (get_int path j "serve_cache_hits")
    (get_int path j "serve_cache_misses");
  (match Obs.Json.member "rows" j with
  | Some (Obs.Json.List rows) ->
    List.iter
      (fun row ->
        let inter =
          match Obs.Json.member "interleaved" row with
          | Some i -> i
          | None -> Obs.Json.Obj []
        in
        Printf.printf
          "  jobs=%d  cold p50 %.1fms  warm p50 %.1fms  p99 %.1fms  %.1f \
           jobs/s (informational)\n"
          (get_int path row "jobs")
          (get_float
             (match Obs.Json.member "cold_ms" row with
             | Some c -> c
             | None -> Obs.Json.Obj [])
             "p50")
          (get_float
             (match Obs.Json.member "warm_ms" row with
             | Some w -> w
             | None -> Obs.Json.Obj [])
             "p50")
          (get_float inter "p99_ms")
          (get_float inter "throughput_jobs_per_s"))
      rows
  | _ -> ());
  let bad = ref false in
  let require name ok =
    if not ok then begin
      Printf.eprintf "VIOLATION: %s: %s\n" path name;
      bad := true
    end
  in
  require "error replies present (errors != 0)" (get_int path j "errors" = 0);
  require "no cache hits (serve_cache_hits = 0)"
    (get_int path j "serve_cache_hits" > 0);
  require "warm jobs not faster than cold (warm_below_cold)"
    (get_bool path j "warm_below_cold");
  require "results not byte-identical across runs (byte_identical)"
    (get_bool path j "byte_identical");
  (* the SLO verdict, when the report carries one (added with the
     telemetry subsystem; absent from older reports, which are still
     fully gated by the hard-contract checks above) *)
  (match Obs.Json.member "slo" j with
  | Some slo ->
    Printf.printf
      "  slo: availability %.3f (target %.3f), warm p99 %.1fms \
       (informational)\n"
      (get_float slo "availability")
      (get_float slo "availability_target")
      (get_float slo "warm_p99_ms");
    require "SLO violated (slo.pass)" (get_bool path slo "pass")
  | None -> ());
  !bad

let () =
  let paths =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as paths) -> paths
    | _ ->
      prerr_endline "usage: check_vm1d.exe REPORT.json [REPORT.json ...]";
      exit 2
  in
  let bad = List.exists Fun.id (List.map check paths) in
  if bad then exit 1;
  print_endline "batch-service load OK"
