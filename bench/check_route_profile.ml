(* Route-profile regression gate for the @route-bench-smoke alias.

   Usage: check_route_profile.exe BASELINE.json CURRENT.json

   Both files follow the vm1dp-route-profile/1 schema emitted by
   [main.exe route-profile]. The gate fails (exit 1) when the current
   run's quality regresses past the checked-in baseline: more failed
   subnets or more overflowed edges. Wall-clock (route_s) is printed for
   the log but never gated — CI machines are too noisy for that. *)

let read_json path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.parse text with
  | Ok j -> j
  | Error msg ->
    Printf.eprintf "check_route_profile: %s: bad JSON: %s\n" path msg;
    exit 2

let get_int path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Int v) -> v
  | _ ->
    Printf.eprintf "check_route_profile: %s: missing int field %S\n" path key;
    exit 2

let get_float path j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Float v) -> v
  | Some (Obs.Json.Int v) -> float_of_int v
  | _ ->
    Printf.eprintf "check_route_profile: %s: missing float field %S\n" path key;
    exit 2

let () =
  let base_path, cur_path =
    match Sys.argv with
    | [| _; b; c |] -> (b, c)
    | _ ->
      prerr_endline "usage: check_route_profile.exe BASELINE.json CURRENT.json";
      exit 2
  in
  let base = read_json base_path and cur = read_json cur_path in
  (match (Obs.Json.member "schema" base, Obs.Json.member "schema" cur) with
  | Some (Obs.Json.Str b), Some (Obs.Json.Str c)
    when String.equal b Obs.Schemas.route_profile
         && String.equal c Obs.Schemas.route_profile -> ()
  | _ ->
    prerr_endline "check_route_profile: schema mismatch";
    exit 2);
  let failed_b = get_int base_path base "failed_subnets"
  and failed_c = get_int cur_path cur "failed_subnets"
  and over_b = get_int base_path base "overflow_edges"
  and over_c = get_int cur_path cur "overflow_edges" in
  Printf.printf "route_s: baseline %.3f, current %.3f (informational)\n"
    (get_float base_path base "route_s")
    (get_float cur_path cur "route_s");
  Printf.printf "failed_subnets: baseline %d, current %d\n" failed_b failed_c;
  Printf.printf "overflow_edges: baseline %d, current %d\n" over_b over_c;
  let bad = ref false in
  if failed_c > failed_b then begin
    Printf.eprintf "REGRESSION: failed_subnets %d > baseline %d\n" failed_c
      failed_b;
    bad := true
  end;
  if over_c > over_b then begin
    Printf.eprintf "REGRESSION: overflow_edges %d > baseline %d\n" over_c
      over_b;
    bad := true
  end;
  if !bad then exit 1;
  print_endline "route profile OK"
