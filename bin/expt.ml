(* Experiment driver: regenerates each figure/table of the paper's
   evaluation section (see DESIGN.md section 4 for the index). *)

open Cmdliner

let scale =
  Arg.(value & opt int 16 & info [ "scale" ]
         ~doc:"Design-size divisor vs the paper's instance counts (1 = full). \
               At 16 every design routes DRV-clean at 75 % utilisation in \
               minutes; larger designs (8 and below) take much longer and \
               the biggest testcases develop congestion hotspots.")

let banner name = Printf.printf "=== %s ===\n%!" name

let solver_conv =
  let parse s =
    match Vm1.Scp_solver.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown solver %S (greedy|exact|anneal|auto|portfolio)"
             s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Vm1.Scp_solver.mode_to_string m)
  in
  Arg.conv (parse, print)

let write_csv csv_prefix name header rows =
  match csv_prefix with
  | None -> ()
  | Some prefix ->
    let path = Printf.sprintf "%s%s.csv" prefix name in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Report.Table.to_csv ~header ~rows));
    Printf.printf "(wrote %s)\n%!" path

let run_matrix manifest out =
  match manifest with
  | None ->
    Printf.eprintf "expt: matrix needs --manifest FILE\n";
    exit 1
  | Some path ->
    (match Io.Manifest.load path with
    | Error msg ->
      Printf.eprintf "expt: %s: %s\n" path msg;
      exit 1
    | Ok m ->
      (match Report.Matrix.run m with
      | Error msg ->
        Printf.eprintf "expt: matrix: %s\n" msg;
        exit 1
      | Ok r ->
        print_string (Report.Matrix.render r);
        (match out with
         | Some path ->
           let oc = open_out path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               output_string oc (Obs.Json.to_string (Report.Matrix.to_json r));
               output_char oc '\n');
           Printf.printf "(wrote %s)\n%!" path
         | None -> ())))

let run_one scale solver csv_prefix manifest out = function
  | "a1" | "fig5" ->
    banner "ExptA-1 (Fig. 5): window size and perturbation range";
    let points = Report.Expt.Fig5.run ~scale ~mode:solver () in
    print_string (Report.Expt.Fig5.render points);
    write_csv csv_prefix "fig5"
      [ "bw_um"; "lx"; "ly"; "rwl_um"; "runtime_s" ]
      (List.map
         (fun (pt : Report.Expt.Fig5.point) ->
           [ string_of_float pt.bw_um; string_of_int pt.lx;
             string_of_int pt.ly; string_of_float pt.rwl_um;
             string_of_float pt.runtime_s ])
         points)
  | "a2" | "fig6" ->
    banner "ExptA-2 (Fig. 6): alpha sensitivity";
    let points = Report.Expt.Fig6.run ~scale ~mode:solver () in
    print_string (Report.Expt.Fig6.render points);
    write_csv csv_prefix "fig6"
      [ "alpha"; "rwl_um"; "dm1"; "alignments" ]
      (List.map
         (fun (pt : Report.Expt.Fig6.point) ->
           [ string_of_float pt.alpha; string_of_float pt.rwl_um;
             string_of_int pt.dm1; string_of_int pt.alignments ])
         points)
  | "a3" | "fig7" ->
    banner "ExptA-3 (Fig. 7): optimisation sequences";
    let points = Report.Expt.Fig7.run ~scale ~mode:solver () in
    print_string (Report.Expt.Fig7.render points);
    write_csv csv_prefix "fig7"
      [ "sequence"; "rwl_um"; "runtime_s" ]
      (List.map
         (fun (pt : Report.Expt.Fig7.point) ->
           [ string_of_int pt.sequence; string_of_float pt.rwl_um;
             string_of_float pt.runtime_s ])
         points)
  | "b1" ->
    banner "ExptB-1 (Table 2, ClosedM1)";
    print_string
      (Report.Expt.Table2.render
         (Report.Expt.Table2.run ~scale ~mode:solver
            ~archs:[ Pdk.Cell_arch.Closed_m1 ] ()))
  | "b2" ->
    banner "ExptB-2 (Table 2, OpenM1)";
    print_string
      (Report.Expt.Table2.render
         (Report.Expt.Table2.run ~scale ~mode:solver
            ~archs:[ Pdk.Cell_arch.Open_m1 ] ()))
  | "table2" ->
    banner "ExptB (Table 2, both architectures)";
    print_string
      (Report.Expt.Table2.render
         (Report.Expt.Table2.run ~scale ~mode:solver ()))
  | "fig8" ->
    banner "ExptB-1 (Fig. 8): DRVs vs utilisation";
    let points = Report.Expt.Fig8.run ~scale ~mode:solver () in
    print_string (Report.Expt.Fig8.render points);
    write_csv csv_prefix "fig8"
      [ "utilization"; "drvs_init"; "drvs_opt"; "dm1_init"; "dm1_opt" ]
      (List.map
         (fun (pt : Report.Expt.Fig8.point) ->
           [ string_of_float pt.utilization; string_of_int pt.drvs_init;
             string_of_int pt.drvs_opt; string_of_int pt.dm1_init;
             string_of_int pt.dm1_opt ])
         points)
  | "a2-openm1" | "fig6-openm1" ->
    banner "ExptA-2 on OpenM1 (the sweep the paper omitted for space)";
    print_string
      (Report.Expt.Fig6.render
         (Report.Expt.Fig6.run ~scale ~arch:Pdk.Cell_arch.Open_m1
            ~mode:solver ()))
  | "matrix" ->
    banner "Experiment matrix (benchmark-manifest sweep)";
    run_matrix manifest out
  | "ablation" ->
    banner "Ablation: window-solver ladder (greedy/anneal/exact/MILP)";
    print_string
      (Report.Ablation.Solver_ladder.render
         (Report.Ablation.Solver_ladder.run ()));
    banner "Ablation: routing with dM1 disabled";
    print_string (Report.Ablation.No_dm1.render (Report.Ablation.No_dm1.run ~scale ()));
    banner "Ablation: HPWL-only DP baseline vs vertical-M1-aware";
    print_string
      (Report.Ablation.Baseline_dp.render (Report.Ablation.Baseline_dp.run ~scale ()));
    banner "Ablation: congestion-aware objective term (3-layer stack)";
    print_string
      (Report.Ablation.Congestion_term.render
         (Report.Ablation.Congestion_term.run ~scale ()))
  | other -> Printf.eprintf "unknown experiment %S\n" other

let experiments =
  Arg.(value & pos_all string [ "a1"; "a2"; "a3"; "table2"; "fig8" ]
       & info [] ~docv:"EXPT"
           ~doc:"Experiments to run:                a1|a2|a2-openm1|a3|b1|b2|table2|fig8|ablation|matrix.")

let manifest =
  Arg.(value & opt (some file) None & info [ "manifest" ]
         ~doc:"Benchmark manifest (vm1dp-bench-manifest/1 JSON) the                $(b,matrix) experiment sweeps." ~docv:"FILE")

let out =
  Arg.(value & opt (some string) None & info [ "out" ]
         ~doc:"Write the $(b,matrix) report (vm1dp-expt-matrix/1 JSON)                to $(docv)." ~docv:"FILE")

let solver =
  Arg.(value & opt solver_conv `Greedy & info [ "solver" ]
         ~doc:"Window solver for the optimisation passes: greedy, exact,                anneal, auto, or portfolio (deadline-raced portfolio with a                deterministic winner).")

let csv_prefix =
  Arg.(value & opt (some string) None & info [ "csv" ]
         ~doc:"Also write each experiment's data as PREFIX<expt>.csv.")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Write a JSON trace of the whole experiment batch to $(docv),                so runs are comparable across commits." ~docv:"FILE")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the observability summary tables after the experiments.")

let jobs =
  Arg.(value & opt int 0 & info [ "jobs" ]
         ~doc:"Size of the shared domain pool (caller + workers) for the                parallel phases. 0 picks the recommended domain count.                Results are byte-identical for every value." ~docv:"N")

let run scale solver csv_prefix trace metrics jobs manifest out experiments =
  if trace <> None || metrics then Obs.set_enabled true;
  if jobs > 0 then Exec.set_jobs jobs;
  List.iter (run_one scale solver csv_prefix manifest out) experiments;
  (match trace with
   | Some path ->
     (try
        Obs.write_trace path;
        Printf.printf "(wrote %s)\n%!" path
      with Sys_error msg ->
        Printf.eprintf "expt: cannot write trace: %s\n%!" msg;
        exit 1)
   | None -> ());
  if metrics then Report.Obs_report.print (Obs.snapshot ())

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "expt" ~doc)
    Term.(const run $ scale $ solver $ csv_prefix $ trace $ metrics $ jobs
          $ manifest $ out $ experiments)

let () = exit (Cmd.eval cmd)
