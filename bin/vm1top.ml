(* vm1top: live report over a vm1d admin endpoint. Polls the admin
   socket's `metrics` (and `health`) verbs — or reads a saved
   vm1dp-metrics/1 file — and renders throughput, latency percentiles,
   cache hit rates, per-stage span rates and the allocation gauges.
   One-shot by default; --watch refreshes in place. See README
   "Operating the daemon". *)

open Cmdliner
module J = Obs.Json

let socket_path =
  Arg.(value & opt (some string) None & info [ "socket"; "s" ]
         ~doc:"Poll the vm1d admin socket at $(docv) (the daemon's \
               --admin-socket path)." ~docv:"PATH")

let from_file =
  Arg.(value & opt (some string) None & info [ "from" ]
         ~doc:"Render a saved vm1dp-metrics/1 document from $(docv) \
               instead of polling a socket (no health line, no rates)."
         ~docv:"FILE")

let watch =
  Arg.(value & opt float 0.0 & info [ "watch"; "w" ]
         ~doc:"Refresh every $(docv) seconds until interrupted \
               (0 = render once and exit). Socket mode only." ~docv:"SECS")

let top_spans =
  Arg.(value & opt int 8 & info [ "spans" ]
         ~doc:"Show the $(docv) busiest span names (0 hides the table)."
         ~docv:"N")

(* --- JSON access --- *)

let mem path j =
  List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path

let num = function
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | _ -> None

let fnum path j = num (mem path j)
let inum path j = match mem path j with Some (J.Int i) -> Some i | _ -> None

let fmt_opt fmt = function Some v -> Printf.sprintf fmt v | None -> "-"

(* --- data sources --- *)

let scrape path verbs =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.connect sock (Unix.ADDR_UNIX path)
       with Unix.Unix_error (err, _, _) ->
         Printf.eprintf "vm1top: cannot connect to %s: %s\n%!" path
           (Unix.error_message err);
         exit 1);
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      List.map
        (fun verb ->
          Out_channel.output_string oc (verb ^ "\n");
          Out_channel.flush oc;
          match In_channel.input_line ic with
          | None ->
            Printf.eprintf "vm1top: admin endpoint closed mid-scrape\n%!";
            exit 1
          | Some line -> (
            match J.parse line with
            | Ok j -> j
            | Error e ->
              Printf.eprintf "vm1top: bad admin reply: %s\n%!" e;
              exit 1))
        verbs)

let load_file path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match J.parse text with
  | Ok j -> j
  | Error e ->
    Printf.eprintf "vm1top: %s: %s\n%!" path e;
    exit 1

(* --- rendering --- *)

let buf_addf b fmt = Printf.ksprintf (Buffer.add_string b) fmt

let window_with_horizon h metrics =
  match mem [ "windows" ] metrics with
  | Some (J.List ws) ->
    List.find_opt (fun w -> inum [ "horizon_s" ] w = Some h) ws
  | _ -> None

let latency_line label node =
  match node with
  | Some n when inum [ "count" ] n <> Some 0 ->
    Printf.sprintf "  latency ms (%s): p50 %s  p90 %s  p99 %s  (n=%s)" label
      (fmt_opt "%.1f" (fnum [ "p50" ] n))
      (fmt_opt "%.1f" (fnum [ "p90" ] n))
      (fmt_opt "%.1f" (fnum [ "p99" ] n))
      (fmt_opt "%d" (inum [ "count" ] n))
  | _ -> Printf.sprintf "  latency ms (%s): no samples" label

let rate_line name node =
  let h = fnum [ "hits" ] node and m = fnum [ "misses" ] node in
  match (h, m) with
  | Some h, Some m when h +. m > 0.0 ->
    Printf.sprintf "%s %.1f%% (%g/%g)" name (100.0 *. h /. (h +. m)) h (h +. m)
  | _ -> Printf.sprintf "%s -" name

let span_rows metrics =
  match mem [ "spans" ] metrics with
  | Some (J.Obj rows) ->
    List.filter_map
      (fun (name, v) ->
        match (inum [ "calls" ] v, fnum [ "total_ms" ] v) with
        | Some c, Some t -> Some (name, c, t)
        | _ -> None)
      rows
  | _ -> []

(* prev = (uptime_s, span rows) from the previous poll, for rates *)
let render ~top_spans ~prev metrics health =
  let b = Buffer.create 1024 in
  let uptime = fnum [ "uptime_s" ] metrics in
  let jobs_cum = inum [ "cumulative"; "counters"; "serve.jobs" ] metrics in
  let errors_cum = inum [ "cumulative"; "counters"; "serve.errors" ] metrics in
  buf_addf b "vm1d · uptime %s s · jobs %s (%s errors) · queue depth %s\n"
    (fmt_opt "%.1f" uptime) (fmt_opt "%d" jobs_cum) (fmt_opt "%d" errors_cum)
    (fmt_opt "%.0f"
       (match health with
        | Some h -> fnum [ "queue_depth" ] h
        | None -> fnum [ "cumulative"; "gauges"; "serve.queue_depth" ] metrics));
  (* throughput and latency, per window when the daemon has windows on *)
  let windowed = ref false in
  List.iter
    (fun h ->
      match window_with_horizon h metrics with
      | None -> ()
      | Some w ->
        windowed := true;
        let label = Printf.sprintf "last %ds" h in
        buf_addf b "  throughput (%s): %s job/s\n" label
          (fmt_opt "%.2f"
             (Option.map
                (fun j -> j /. float_of_int h)
                (fnum [ "counters"; "serve.jobs" ] w)));
        buf_addf b "%s\n"
          (latency_line label
             (mem [ "histograms"; "serve.job_latency_ms" ] w)))
    [ 10; 60 ];
  if not !windowed then begin
    buf_addf b "  throughput (cumulative): %s job/s\n"
      (fmt_opt "%.2f"
         (match (jobs_cum, uptime) with
          | Some j, Some u when u > 0.0 -> Some (float_of_int j /. u)
          | _ -> None));
    buf_addf b "%s\n"
      (latency_line "cumulative"
         (mem [ "cumulative"; "histograms"; "serve.job_latency_ms" ] metrics))
  end;
  (* cache hit rates from the cumulative counters *)
  let counter name = fnum [ "cumulative"; "counters"; name ] metrics in
  let pair hits misses =
    J.Obj
      [
        ("hits", J.Float (Option.value ~default:0.0 (counter hits)));
        ("misses", J.Float (Option.value ~default:0.0 (counter misses)));
      ]
  in
  buf_addf b "  caches: %s   %s\n"
    (rate_line "artifact" (pair "serve.cache_hits" "serve.cache_misses"))
    (rate_line "wcache" (pair "distopt.wcache_hits" "distopt.wcache_misses"));
  buf_addf b "  alloc: minor words/window %s   minor words/subnet %s\n"
    (fmt_opt "%.0f"
       (fnum [ "cumulative"; "gauges"; "distopt.minor_words_per_window" ]
          metrics))
    (fmt_opt "%.0f"
       (fnum [ "cumulative"; "gauges"; "route.minor_words_per_subnet" ]
          metrics));
  (* busiest spans, with call rates against the previous poll *)
  let rows = span_rows metrics in
  if top_spans > 0 && rows <> [] then begin
    let by_total =
      List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) rows
    in
    let shown = List.filteri (fun i _ -> i < top_spans) by_total in
    buf_addf b "  %-36s %10s %12s %10s\n" "span" "calls" "total ms" "calls/s";
    List.iter
      (fun (name, calls, total) ->
        let rate =
          match (prev, uptime) with
          | Some (prev_uptime, prev_rows), Some u when u > prev_uptime -> (
            let dt = u -. prev_uptime in
            match
              List.find_opt (fun (n, _, _) -> String.equal n name) prev_rows
            with
            | Some (_, pc, _) ->
              Printf.sprintf "%.1f" (float_of_int (calls - pc) /. dt)
            | None -> Printf.sprintf "%.1f" (float_of_int calls /. dt))
          | _ -> "-"
        in
        buf_addf b "  %-36s %10d %12.1f %10s\n" name calls total rate)
      shown
  end;
  (Buffer.contents b, (uptime, rows))

let run socket_path from_file watch top_spans =
  match (socket_path, from_file) with
  | None, None | Some _, Some _ ->
    Printf.eprintf "vm1top: pass exactly one of --socket or --from\n%!";
    exit 2
  | None, Some file ->
    let text, _ = render ~top_spans ~prev:None (load_file file) None in
    print_string text
  | Some path, None ->
    if watch <= 0.0 then begin
      match scrape path [ "metrics"; "health" ] with
      | [ metrics; health ] ->
        let text, _ = render ~top_spans ~prev:None metrics (Some health) in
        print_string text
      | _ -> assert false
    end
    else begin
      let prev = ref None in
      while true do
        (match scrape path [ "metrics"; "health" ] with
        | [ metrics; health ] ->
          let text, state =
            render ~top_spans ~prev:!prev metrics (Some health)
          in
          (* clear screen + home, like top(1) *)
          print_string "\027[2J\027[H";
          print_string text;
          flush stdout;
          prev :=
            (match state with
             | Some u, rows -> Some (u, rows)
             | None, _ -> !prev)
        | _ -> assert false);
        Unix.sleepf watch
      done
    end

let cmd =
  let doc = "live telemetry report for the vm1d batch daemon" in
  Cmd.v (Cmd.info "vm1top" ~doc)
    Term.(const run $ socket_path $ from_file $ watch $ top_spans)

let () = exit (Cmd.eval cmd)
