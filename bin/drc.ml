(* Standalone placement checker: reads a DEF file (as written by
   vm1opt --dump or Io.Def), validates netlist integrity and
   placement legality through the lib/check oracles, and reports the
   design's metrics; optionally routes it and re-verifies the routing
   result.

   Exit status: 0 = clean, 1 = problems found, 2 = usage/read error. *)

open Cmdliner

let def_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DEF"
         ~doc:"DEF file produced by vm1opt --dump (the Io.Def subset).")

let arch =
  Arg.(value & opt string "closedm1" & info [ "arch"; "a" ]
         ~doc:"Cell architecture the DEF was produced with (ignored              when --lef is given).")

let lef_file =
  Arg.(value & opt (some file) None & info [ "lef" ]
         ~doc:"Bind the DEF against this LEF library instead of the              generated library for --arch.")

let do_route =
  Arg.(value & flag & info [ "route" ]
         ~doc:"Also route the design, report routing metrics and re-verify              the result (usage replay, ownership, overflow ledger,              connectivity).")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ]
         ~doc:"Print every problem instead of the first 10 per section.")

let print_problems ~verbose problems =
  let n = List.length problems in
  List.iteri
    (fun i p ->
      if verbose || i < 10 then Printf.printf "  %s\n" p
      else if i = 10 then
        Printf.printf "  ... %d more (use --verbose to see all)\n" (n - 10))
    problems

let run def_file arch lef_file do_route verbose =
  let lib =
    match lef_file with
    | Some path ->
      (match Io.Lef.parse_file path with
      | Ok lib -> Ok lib
      | Error e ->
        Error (Printf.sprintf "%s: %s" path (Io.Lex.error_to_string e)))
    | None ->
      (match Pdk.Cell_arch.of_string arch with
      | Some arch -> Ok (Pdk.Libgen.generate (Pdk.Tech.default arch))
      | None -> Error (Printf.sprintf "unknown architecture %S" arch))
  in
  match lib with
  | Error msg ->
    Printf.eprintf "drc: %s\n" msg;
    2
  | Ok lib ->
    (match Io.Def.read_file lib def_file with
    | Error msg ->
      Printf.eprintf "drc: cannot read %s: %s\n" def_file msg;
      2
    | Ok (design, def) ->
      let bad = ref false in
      let section name problems =
        match problems with
        | [] -> Printf.printf "%s: OK\n" name
        | _ ->
          bad := true;
          Printf.printf "%s: %d problems\n" name (List.length problems);
          print_problems ~verbose problems
      in
      print_endline (Netlist.Design.stats design);
      section "netlist" (Check.design design);
      let p = Place.Placement.of_def design def in
      section "placement" (Check.placement p);
      Printf.printf "utilization: %.1f%%  HPWL: %.1f um\n"
        (100.0 *. Place.Placement.utilization p)
        (Place.Hpwl.total_um p);
      if do_route then begin
        let r = Route.Router.route p in
        Format.printf "routing: %a@." Route.Metrics.pp_summary
          (Route.Metrics.summarize r);
        section "route" (Check.route_result r)
      end;
      if !bad then 1 else 0)

let cmd =
  let doc = "validate and report on a placement DEF" in
  Cmd.v (Cmd.info "drc" ~doc)
    Term.(const run $ def_file $ arch $ lef_file $ do_route $ verbose)

let () = exit (Cmd.eval' cmd)
