(* Command-line driver for the full flow on one design: generate, place,
   route, evaluate, optimise, re-route, evaluate, and report the Table-2
   row. Optionally dumps before/after placements in the DEF-like format. *)

open Cmdliner

let design_conv =
  let parse s =
    match Netlist.Designs.of_string s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown design %S (m0|aes|jpeg|vga)" s))
  in
  let print ppf d = Format.pp_print_string ppf (Netlist.Designs.to_string d) in
  Arg.conv (parse, print)

let arch_conv =
  let parse s =
    match Pdk.Cell_arch.of_string s with
    | Some a -> Ok a
    | None ->
      Error (`Msg (Printf.sprintf "unknown arch %S (closedm1|openm1|conv12)" s))
  in
  Arg.conv (parse, Pdk.Cell_arch.pp)

let design =
  Arg.(value & opt design_conv Netlist.Designs.Aes & info [ "design"; "d" ]
         ~doc:"Design: m0, aes, jpeg or vga.")

let arch =
  Arg.(value & opt arch_conv Pdk.Cell_arch.Closed_m1 & info [ "arch"; "a" ]
         ~doc:"Cell architecture: closedm1, openm1 or conv12.")

let scale =
  Arg.(value & opt int 8 & info [ "scale" ]
         ~doc:"Design-size divisor vs the paper's instance counts (1 = full).")

let utilization =
  Arg.(value & opt float 0.75 & info [ "util" ] ~doc:"Placement utilisation.")

let alpha =
  Arg.(value & opt (some float) None & info [ "alpha" ]
         ~doc:"Override the alignment weight alpha.")

let sequence =
  Arg.(value & opt int 1 & info [ "sequence" ]
         ~doc:"Optimisation sequence 1-5 (ExptA-3).")

let solver_conv =
  let parse s =
    match Vm1.Scp_solver.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown solver %S (greedy|exact|anneal|auto|portfolio)"
             s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Vm1.Scp_solver.mode_to_string m)
  in
  Arg.conv (parse, print)

let solver =
  Arg.(value & opt solver_conv `Greedy & info [ "solver" ]
         ~doc:"Window solver: greedy, exact, anneal, auto, or portfolio                (deadline-raced exact/greedy/anneal with a deterministic                winner; byte-identical across --jobs).")

let dump_prefix =
  Arg.(value & opt (some string) None & info [ "dump" ]
         ~doc:"Write PREFIX.init.def and PREFIX.opt.def placement dumps.")

let svg_prefix =
  Arg.(value & opt (some string) None & info [ "svg" ]
         ~doc:"Write PREFIX.{placement,routed,congestion}.svg of the final                layout.")

let parallel =
  Arg.(value & flag & info [ "parallel"; "j" ]
         ~doc:"Solve diagonally-independent windows on multiple domains                (the paper's distributable optimisation); results are                identical to the sequential run.")

let jobs =
  Arg.(value & opt int 0 & info [ "jobs" ]
         ~doc:"Size of the shared domain pool used by --parallel and the                sharded routing pass (caller + workers). 0 picks the                recommended domain count. Results are byte-identical for                every value." ~docv:"N")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Write a JSON trace (spans, counters, gauges, histograms) of                the run to $(docv). Instrumentation never changes the                placement result." ~docv:"FILE")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the observability summary tables (per-span timing,                counters, gauges) after the run.")

let check =
  Arg.(value & flag & info [ "check" ]
         ~doc:"After optimising, run the flow sanitizer (lib/check): design                and placement legality, window diagonal-independence,                objective recount, a routing run with the shard-write                monitor armed, and MILP feasibility re-verification on a                sample window. Non-zero exit on any violation.")

let run design arch scale utilization alpha sequence solver dump_prefix
    svg_prefix parallel jobs trace metrics check =
  if trace <> None || metrics then Obs.set_enabled true;
  if jobs > 0 then Exec.set_jobs jobs;
  let p = Report.Flow.prepare ~scale ~utilization design arch in
  let params =
    let base = Vm1.Params.default p.Place.Placement.tech in
    match alpha with
    | Some a -> { base with Vm1.Params.alpha = a }
    | None -> base
  in
  Printf.printf "%s\n%!" (Netlist.Design.stats p.Place.Placement.design);
  (match dump_prefix with
   | Some prefix ->
     Io.Def.write_file (prefix ^ ".init.def") p.design
       (Place.Placement.to_def p)
   | None -> ());
  let init, clock_ps = Report.Flow.evaluate params p in
  let config =
    { Vm1.Vm1_opt.default_config with
      Vm1.Vm1_opt.sequence = Vm1.Params.sequence sequence;
      mode = solver;
      parallel }
  in
  let report = Vm1.Vm1_opt.run ~config params p in
  let final, _ = Report.Flow.evaluate ~clock_ps params p in
  (match dump_prefix with
   | Some prefix ->
     Io.Def.write_file (prefix ^ ".opt.def") p.design
       (Place.Placement.to_def p)
   | None -> ());
  (match svg_prefix with
   | Some prefix ->
     let r = Route.Router.route p in
     Report.Svg.write_file (prefix ^ ".placement.svg") (Report.Svg.placement p);
     Report.Svg.write_file (prefix ^ ".routed.svg") (Report.Svg.routed r);
     Report.Svg.write_file (prefix ^ ".congestion.svg") (Report.Svg.congestion r)
   | None -> ());
  let comparison =
    {
      Report.Flow.design_name = p.design.Netlist.Design.name;
      instances = Place.Placement.num_instances p;
      alpha = params.Vm1.Params.alpha;
      init;
      final;
      opt_runtime_s = report.Vm1.Vm1_opt.runtime_s;
    }
  in
  print_string (Report.Expt.Table2.render [ comparison ]);
  (match trace with
   | Some path ->
     (try
        Obs.write_trace path;
        Printf.printf "(wrote %s)\n%!" path
      with Sys_error msg ->
        Printf.eprintf "vm1opt: cannot write trace: %s\n%!" msg;
        exit 1)
   | None -> ());
  if metrics then Report.Obs_report.print (Obs.snapshot ());
  if check then begin
    print_endline "flow sanitizer:";
    let findings = Check.flow params p in
    Check.pp_findings Format.std_formatter findings;
    if not (Check.ok findings) then exit 1
  end

let cmd =
  let doc = "vertical M1 routing-aware detailed placement, end to end" in
  Cmd.v (Cmd.info "vm1opt" ~doc)
    Term.(const run $ design $ arch $ scale $ utilization $ alpha $ sequence
          $ solver $ dump_prefix $ svg_prefix $ parallel $ jobs $ trace
          $ metrics $ check)

let () = exit (Cmd.eval cmd)
