(* Offline trace analytics over vm1dp-trace/1 files (see lib/trace):
     report        aggregated per-span profile + counters/gauges/histograms
     critical-path the wall-clock chain that bounded the run
     diff          regression gate between two traces (tolerance bands)
     flame         folded-stack / speedscope export
     attribute     per-window QoR table + congestion heatmap + net rows

   Exit status mirrors drc: 0 = clean, 1 = regression found (diff only),
   2 = unreadable input / usage error. *)

open Cmdliner

(* plain string, not Arg.file: a missing file must flow through
   Model.load so every unreadable input exits 2, not cmdliner's 124 *)
let trace_file ~docv n =
  Arg.(required & pos n (some string) None & info [] ~docv
         ~doc:"Trace file written by --trace (vm1dp-trace/1 JSON).")

let json_flag =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit machine-readable JSON instead of tables.")

let ignore_prefixes =
  Arg.(value & opt_all string [] & info [ "ignore" ] ~docv:"PREFIX"
         ~doc:"Drop spans/metrics whose name starts with $(docv) before              analyzing (children are spliced into the parent). Repeatable.              Use $(b,--ignore exec.) to hide the nondeterministic              scheduling wrappers.")

let out_file =
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
         ~doc:"Write output to $(docv) instead of stdout.")

let load path =
  match Trace.Model.load path with
  | Ok t -> Ok t
  | Error msg ->
    Printf.eprintf "vm1trace: %s\n" msg;
    Error 2

let with_out out f =
  match out with
  | None -> f stdout
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let ms ns = float_of_int ns /. 1e6

(* --- report --------------------------------------------------------- *)

let print_report oc (t : Trace.Model.t) ~top =
  let rows = Trace.Profile.rows t in
  let rows =
    match top with 0 -> rows | n -> List.filteri (fun i _ -> i < n) rows
  in
  Printf.fprintf oc "wall %.3f ms, %d roots\n\n" (ms (Trace.Model.wall_ns t))
    (List.length t.spans);
  Printf.fprintf oc "%-28s %8s %12s %12s %10s %10s %10s\n" "span" "calls"
    "total ms" "self ms" "p50 ms" "p90 ms" "p99 ms";
  List.iter
    (fun (r : Trace.Profile.row) ->
      Printf.fprintf oc "%-28s %8d %12.3f %12.3f %10.3f %10.3f %10.3f\n"
        r.name r.calls (ms r.total_ns) (ms r.self_ns) (ms r.p50_ns)
        (ms r.p90_ns) (ms r.p99_ns))
    rows;
  if t.counters <> [] then begin
    Printf.fprintf oc "\n%-40s %12s\n" "counter" "value";
    List.iter
      (fun (k, v) -> Printf.fprintf oc "%-40s %12d\n" k v)
      t.counters
  end;
  if t.gauges <> [] then begin
    Printf.fprintf oc "\n%-40s %12s\n" "gauge" "value";
    List.iter
      (fun (k, v) -> Printf.fprintf oc "%-40s %12g\n" k v)
      t.gauges
  end;
  if t.histograms <> [] then begin
    Printf.fprintf oc "\n%-32s %8s %10s %10s %10s %10s\n" "histogram" "count"
      "sum" "p50" "p90" "p99";
    List.iter
      (fun (k, (h : Trace.Model.hist)) ->
        Printf.fprintf oc "%-32s %8d %10g %10g %10g %10g\n" k h.count h.sum
          (Trace.Model.hist_percentile h 0.50)
          (Trace.Model.hist_percentile h 0.90)
          (Trace.Model.hist_percentile h 0.99))
      t.histograms
  end

let top_arg =
  Arg.(value & opt int 0 & info [ "top" ] ~docv:"N"
         ~doc:"Show only the $(docv) hottest spans (0 = all).")

let run_report file json ignores top out =
  match load file with
  | Error e -> e
  | Ok t ->
    let t = Trace.Model.prune ~prefixes:ignores t in
    with_out out (fun oc ->
        if json then
          output_string oc (Obs.Json.to_string (Trace.Profile.to_json t) ^ "\n")
        else print_report oc t ~top);
    0

(* --- critical-path -------------------------------------------------- *)

let run_critical_path file json ignores out =
  match load file with
  | Error e -> e
  | Ok t ->
    let t = Trace.Model.prune ~prefixes:ignores t in
    let steps = Trace.Critical_path.compute t in
    with_out out (fun oc ->
        if json then begin
          let step (s : Trace.Critical_path.step) =
            Obs.Json.Obj
              [
                ("name", Obs.Json.Str s.name);
                ("depth", Obs.Json.Int s.depth);
                ("start_ns", Obs.Json.Int s.start_ns);
                ("end_ns", Obs.Json.Int s.end_ns);
                ("self_ns", Obs.Json.Int s.self_ns);
              ]
          in
          output_string oc
            (Obs.Json.to_string
               (Obs.Json.Obj
                  [
                    ( "total_ns",
                      Obs.Json.Int (Trace.Critical_path.total_ns steps) );
                    ("steps", Obs.Json.List (List.map step steps));
                  ])
            ^ "\n")
        end
        else begin
          Printf.fprintf oc
            "critical path: %.3f ms of %.3f ms wall (%d steps)\n"
            (ms (Trace.Critical_path.total_ns steps))
            (ms (Trace.Model.wall_ns t))
            (List.length steps);
          List.iter
            (fun (s : Trace.Critical_path.step) ->
              Printf.fprintf oc "%s%-*s %10.3f ms  (self %.3f ms)\n"
                (String.concat ""
                   (List.init s.depth (fun _ -> "  ")))
                (max 1 (30 - (2 * s.depth)))
                s.name
                (ms (s.end_ns - s.start_ns))
                (ms s.self_ns))
            steps
        end);
    0

(* --- diff ----------------------------------------------------------- *)

let time_rel =
  Arg.(value & opt float Trace.Diff.default.time_rel
       & info [ "time-rel" ] ~docv:"FRAC"
           ~doc:"Relative tolerance on per-span total time.")

let time_abs_ms =
  Arg.(value & opt float 50.0 & info [ "time-abs-ms" ] ~docv:"MS"
         ~doc:"Absolute slack on per-span total time, milliseconds.")

let gauge_rel =
  Arg.(value & opt float Trace.Diff.default.gauge_rel
       & info [ "gauge-rel" ] ~docv:"FRAC"
           ~doc:"Relative tolerance on gauges and histogram sums.")

let gauge_abs =
  Arg.(value & opt float Trace.Diff.default.gauge_abs
       & info [ "gauge-abs" ] ~docv:"X"
           ~doc:"Absolute slack on gauges and histogram sums.")

let alloc_rel =
  Arg.(value & opt float Trace.Diff.default.alloc_rel
       & info [ "alloc-rel" ] ~docv:"FRAC"
           ~doc:"Relative tolerance on allocation gauges (any gauge whose              name contains minor_words); an allocation regression past              the band fails the diff.")

let alloc_abs =
  Arg.(value & opt float Trace.Diff.default.alloc_abs
       & info [ "alloc-abs" ] ~docv:"WORDS"
           ~doc:"Absolute slack on allocation gauges, in words.")

let run_diff baseline current json ignores time_rel time_abs_ms gauge_rel
    gauge_abs alloc_rel alloc_abs =
  match (load baseline, load current) with
  | Error e, _ | _, Error e -> e
  | Ok b, Ok c ->
    let config =
      {
        Trace.Diff.time_rel;
        time_abs_ns = int_of_float (time_abs_ms *. 1e6);
        gauge_rel;
        gauge_abs;
        alloc_rel;
        alloc_abs;
        ignore_prefixes = ignores;
      }
    in
    let v = Trace.Diff.run config ~baseline:b ~current:c in
    let sev_str = function
      | Trace.Diff.Structure -> "structure"
      | Trace.Diff.Regression -> "regression"
      | Trace.Diff.Info -> "info"
    in
    if json then
      print_string
        (Obs.Json.to_string
           (Obs.Json.Obj
              [
                ("pass", Obs.Json.Bool v.pass);
                ( "issues",
                  Obs.Json.List
                    (List.map
                       (fun (i : Trace.Diff.issue) ->
                         Obs.Json.Obj
                           [
                             ("severity", Obs.Json.Str (sev_str i.severity));
                             ("what", Obs.Json.Str i.what);
                           ])
                       v.issues) );
              ])
        ^ "\n")
    else begin
      List.iter
        (fun (i : Trace.Diff.issue) ->
          Printf.printf "%-10s %s\n" (sev_str i.severity) i.what)
        v.issues;
      Printf.printf "%s: %s vs %s (%d issues)\n"
        (if v.pass then "PASS" else "FAIL")
        baseline current (List.length v.issues)
    end;
    if v.pass then 0 else 1

(* --- flame ---------------------------------------------------------- *)

let flame_format =
  Arg.(value & opt (enum [ ("folded", `Folded); ("speedscope", `Speedscope) ])
         `Folded
       & info [ "format"; "f" ] ~docv:"FMT"
           ~doc:"Output format: $(b,folded) (flamegraph.pl input) or              $(b,speedscope) (JSON for speedscope.app).")

let run_flame file format ignores out =
  match load file with
  | Error e -> e
  | Ok t ->
    let t = Trace.Model.prune ~prefixes:ignores t in
    with_out out (fun oc ->
        match format with
        | `Folded -> output_string oc (Trace.Export.folded t)
        | `Speedscope ->
          output_string oc
            (Obs.Json.to_string (Trace.Export.speedscope t) ^ "\n"));
    0

(* --- attribute ------------------------------------------------------ *)

let print_attribute oc (a : Trace.Attribute.t) =
  (match a.heatmap with
  | Some h -> output_string oc (Trace.Attribute.render_heatmap h)
  | None -> output_string oc "no route span with a heatmap in this trace\n");
  if a.windows <> [] then begin
    Printf.fprintf oc "\n%4s %4s %6s %6s %10s %8s %8s %9s\n" "ix" "iy"
      "solves" "moves" "dHPWL" "dAlign" "dOvl" "overflow";
    List.iter
      (fun (w : Trace.Attribute.window_row) ->
        Printf.fprintf oc "%4d %4d %6d %6d %10d %8d %8d %9d\n" w.ix w.iy
          w.solves w.moves w.d_hpwl_dbu w.d_align w.d_overlap w.overflow)
      a.windows
  end
  else
    output_string oc
      "no distopt.window spans in this trace (record with --trace and an\n\
       instrumented DistOpt run)\n";
  if a.nets <> [] then begin
    Printf.fprintf oc "\n%8s %10s %8s\n" "net" "overflow" "failed";
    List.iter
      (fun (n : Trace.Attribute.net_row) ->
        Printf.fprintf oc "%8d %10d %8d\n" n.net_id n.overflow
          n.failed_subnets)
      a.nets
  end

let run_attribute file json out =
  match load file with
  | Error e -> e
  | Ok t ->
    let a = Trace.Attribute.compute t in
    with_out out (fun oc ->
        if json then
          output_string oc
            (Obs.Json.to_string (Trace.Attribute.to_json a) ^ "\n")
        else print_attribute oc a);
    0

(* --- command wiring -------------------------------------------------- *)

let report_cmd =
  Cmd.v
    (Cmd.info "report" ~doc:"aggregated per-span profile of a trace")
    Term.(const run_report $ trace_file ~docv:"TRACE" 0 $ json_flag
          $ ignore_prefixes $ top_arg $ out_file)

let critical_path_cmd =
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:"the wall-clock chain of spans that bounded the run")
    Term.(const run_critical_path $ trace_file ~docv:"TRACE" 0 $ json_flag
          $ ignore_prefixes $ out_file)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:"compare two traces; exit 1 when the second regresses")
    Term.(const run_diff $ trace_file ~docv:"BASELINE" 0
          $ trace_file ~docv:"CURRENT" 1 $ json_flag $ ignore_prefixes
          $ time_rel $ time_abs_ms $ gauge_rel $ gauge_abs $ alloc_rel
          $ alloc_abs)

let flame_cmd =
  Cmd.v
    (Cmd.info "flame" ~doc:"export folded stacks or speedscope JSON")
    Term.(const run_flame $ trace_file ~docv:"TRACE" 0 $ flame_format
          $ ignore_prefixes $ out_file)

let attribute_cmd =
  Cmd.v
    (Cmd.info "attribute"
       ~doc:"per-window QoR table, congestion heatmap and congested nets")
    Term.(const run_attribute $ trace_file ~docv:"TRACE" 0 $ json_flag
          $ out_file)

let cmd =
  Cmd.group
    (Cmd.info "vm1trace" ~doc:"analyze vm1dp-trace/1 trace files")
    [ report_cmd; critical_path_cmd; diff_cmd; flame_cmd; attribute_cmd ]

let () = exit (Cmd.eval' cmd)
