(* vm1d: the batch-optimization daemon. Serves a stream of vm1dp-jobs/1
   request lines — from stdin (default) or a Unix socket — scheduling
   jobs onto the shared domain pool and streaming replies back in
   request order. Immutable artifacts (cell libraries, netlists, input
   placements, grid skeletons) are cached across jobs for the lifetime
   of the process; see PROTOCOL.md for the wire format and README
   "Running the batch service" for usage. *)

open Cmdliner

let socket_path =
  Arg.(value & opt (some string) None & info [ "socket"; "s" ]
         ~doc:"Listen on a Unix-domain socket at $(docv) instead of serving \
               stdin. Connections are served one at a time, each to EOF; \
               every connection shares the process-wide artifact cache. \
               The socket file is removed on clean shutdown." ~docv:"PATH")

let accept_limit =
  Arg.(value & opt int 0 & info [ "accept-limit" ]
         ~doc:"With --socket: exit after serving $(docv) connections \
               (0 = serve forever). Lets tests and scripts run a bounded \
               daemon." ~docv:"N")

let jobs =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ]
         ~doc:"Size of the shared domain pool (caller + workers) jobs are \
               scheduled onto. 0 picks the recommended domain count. \
               Results are byte-identical for every value." ~docv:"N")

let max_in_flight =
  Arg.(value & opt int 0 & info [ "max-in-flight" ]
         ~doc:"Maximum jobs running or queued at once; the reader blocks \
               on the oldest job beyond this (backpressure). 0 picks \
               2 * jobs." ~docv:"N")

let solver_conv =
  let parse s =
    match Vm1.Scp_solver.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown solver %S (greedy|exact|anneal|auto|portfolio)"
             s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Vm1.Scp_solver.mode_to_string m)
  in
  Arg.conv (parse, print)

let solver =
  Arg.(value & opt (some solver_conv) None & info [ "solver" ]
         ~doc:"Default window solver for requests that omit the \"solver\" \
               field: greedy, exact, anneal, auto, or portfolio. A \
               request's own field always wins." ~docv:"MODE")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Write a JSON trace of the daemon's whole service period to \
               $(docv) on exit (enables observability for the run)."
         ~docv:"FILE")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the observability summary tables (serve.* counters, \
               queue-depth gauge, latency histogram) to stderr on exit.")

let admin_socket =
  Arg.(value & opt (some string) None & info [ "admin-socket" ]
         ~doc:"Serve the admin plane on a Unix-domain socket at $(docv): \
               one verb per line (metrics, health, jobs), one JSON reply \
               line each (see PROTOCOL.md, \"The admin plane\"). Runs on \
               its own domain and only reads observability state, so \
               scraping never blocks or perturbs the job pipeline. \
               Enables observability and rolling windows. vm1top renders \
               this endpoint." ~docv:"PATH")

let job_log =
  Arg.(value & opt (some string) None & info [ "job-log" ]
         ~doc:"Append one vm1dp-joblog/1 JSON line per completed job to \
               $(docv) (request id, source, solver, queue/execute spans, \
               cache outcomes, QoR digest, error class), flushed per \
               line. Enables observability." ~docv:"FILE")

let serve_channel cache ~max_in_flight ~default_solver ~telemetry ic oc =
  Serve.Daemon.serve
    ?max_in_flight
    ?default_solver
    ?telemetry
    cache
    ~next_line:(fun () -> In_channel.input_line ic)
    ~emit:(fun line ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n';
      Out_channel.flush oc)
    ()

let add_stats (a : Serve.Daemon.stats) (b : Serve.Daemon.stats) =
  { Serve.Daemon.jobs = a.Serve.Daemon.jobs + b.Serve.Daemon.jobs;
    ok = a.ok + b.ok;
    errors = a.errors + b.errors }

(* The admin accept loop, run on its own Exec.Bg domain. Blocking
   points poll [should_stop] through short select timeouts: closing a
   listening descriptor from another domain does not reliably wake a
   blocked accept, so the loop must never block without a timeout. *)
let admin_loop telemetry path ~should_stop =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     Printf.eprintf "vm1d: cannot bind admin socket %s: %s\n%!" path
       (Unix.error_message err);
     exit 1);
  Unix.listen sock 16;
  Printf.eprintf "vm1d: admin plane on %s\n%!" path;
  let readable fd =
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let serve_conn conn =
    let oc = Unix.out_channel_of_descr conn in
    (* hand-rolled line reader: In_channel would buffer past the first
       line, and select cannot see a stdlib buffer — pipelined verbs
       would stall until the client hangs up *)
    let pending = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let rec next_verb () =
      let s = Buffer.contents pending in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear pending;
        Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
      | None ->
        if should_stop () then None
        else if readable conn then
          match Unix.read conn chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes pending chunk 0 n;
            next_verb ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
            next_verb ()
        else next_verb ()
    in
    let rec go () =
      match next_verb () with
      | None -> ()
      | Some verb ->
        Out_channel.output_string oc
          (Obs.Json.to_string (Serve.Telemetry.handle telemetry verb));
        Out_channel.output_char oc '\n';
        Out_channel.flush oc;
        go ()
    in
    go ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      while not (should_stop ()) do
        if readable sock then
          match Unix.accept sock with
          | conn, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close conn with Unix.Unix_error _ -> ())
              (fun () -> try serve_conn conn with End_of_file -> ())
          | exception Unix.Unix_error _ -> ()
      done)

let serve_socket cache ~max_in_flight ~default_solver ~telemetry ~accept_limit
    path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     Printf.eprintf "vm1d: cannot bind %s: %s\n%!" path
       (Unix.error_message err);
     exit 1);
  Unix.listen sock 16;
  Printf.eprintf "vm1d: listening on %s\n%!" path;
  let totals = ref { Serve.Daemon.jobs = 0; ok = 0; errors = 0 } in
  let served = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      while accept_limit = 0 || !served < accept_limit do
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        let stats =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close conn with Unix.Unix_error _ -> ())
            (fun () ->
              serve_channel cache ~max_in_flight ~default_solver ~telemetry ic
                oc)
        in
        totals := add_stats !totals stats;
        incr served
      done;
      !totals)

let run socket_path accept_limit jobs max_in_flight solver trace metrics
    admin_socket job_log =
  if trace <> None || metrics || admin_socket <> None || job_log <> None then
    Obs.set_enabled true;
  (* windows feed the admin plane's "last 10s / 60s" views; without an
     admin endpoint nothing reads them, so leave them off *)
  if admin_socket <> None then Obs.Window.set_enabled true;
  if jobs > 0 then Exec.set_jobs jobs;
  let max_in_flight = if max_in_flight > 0 then Some max_in_flight else None in
  let cache = Serve.Cache.create () in
  let telemetry =
    if admin_socket = None && job_log = None then None
    else begin
      let log_oc =
        Option.map
          (fun path ->
            try open_out path
            with Sys_error msg ->
              Printf.eprintf "vm1d: cannot open job log: %s\n%!" msg;
              exit 1)
          job_log
      in
      Some (Serve.Telemetry.create ?job_log:log_oc ())
    end
  in
  let admin =
    match (admin_socket, telemetry) with
    | Some path, Some tel -> Some (Exec.Bg.spawn (admin_loop tel path))
    | _ -> None
  in
  let stats =
    match socket_path with
    | None ->
      serve_channel cache ~max_in_flight ~default_solver:solver ~telemetry
        stdin stdout
    | Some path ->
      serve_socket cache ~max_in_flight ~default_solver:solver ~telemetry
        ~accept_limit path
  in
  Option.iter Exec.Bg.join admin;
  Option.iter Serve.Telemetry.close telemetry;
  Printf.eprintf "vm1d: served %d jobs (%d ok, %d errors)\n%!"
    stats.Serve.Daemon.jobs stats.Serve.Daemon.ok stats.Serve.Daemon.errors;
  (match trace with
   | Some path ->
     (try
        Obs.write_trace path;
        Printf.eprintf "(wrote %s)\n%!" path
      with Sys_error msg ->
        Printf.eprintf "vm1d: cannot write trace: %s\n%!" msg;
        exit 1)
   | None -> ());
  (* stdout is the protocol channel — the summary goes to stderr *)
  if metrics then
    Printf.eprintf "%s%!" (Report.Obs_report.summary (Obs.snapshot ()))

let cmd =
  let doc = "batch-optimization daemon: the vm1dp flow as a service" in
  Cmd.v (Cmd.info "vm1d" ~doc)
    Term.(const run $ socket_path $ accept_limit $ jobs $ max_in_flight
          $ solver $ trace $ metrics $ admin_socket $ job_log)

let () = exit (Cmd.eval cmd)
