(* vm1d: the batch-optimization daemon. Serves a stream of vm1dp-jobs/1
   request lines — from stdin (default) or a Unix socket — scheduling
   jobs onto the shared domain pool and streaming replies back in
   request order. Immutable artifacts (cell libraries, netlists, input
   placements, grid skeletons) are cached across jobs for the lifetime
   of the process; see PROTOCOL.md for the wire format and README
   "Running the batch service" for usage. *)

open Cmdliner

let socket_path =
  Arg.(value & opt (some string) None & info [ "socket"; "s" ]
         ~doc:"Listen on a Unix-domain socket at $(docv) instead of serving \
               stdin. Connections are served one at a time, each to EOF; \
               every connection shares the process-wide artifact cache. \
               The socket file is removed on clean shutdown." ~docv:"PATH")

let accept_limit =
  Arg.(value & opt int 0 & info [ "accept-limit" ]
         ~doc:"With --socket: exit after serving $(docv) connections \
               (0 = serve forever). Lets tests and scripts run a bounded \
               daemon." ~docv:"N")

let jobs =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ]
         ~doc:"Size of the shared domain pool (caller + workers) jobs are \
               scheduled onto. 0 picks the recommended domain count. \
               Results are byte-identical for every value." ~docv:"N")

let max_in_flight =
  Arg.(value & opt int 0 & info [ "max-in-flight" ]
         ~doc:"Maximum jobs running or queued at once; the reader blocks \
               on the oldest job beyond this (backpressure). 0 picks \
               2 * jobs." ~docv:"N")

let solver_conv =
  let parse s =
    match Vm1.Scp_solver.mode_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown solver %S (greedy|exact|anneal|auto|portfolio)"
             s))
  in
  let print ppf m =
    Format.pp_print_string ppf (Vm1.Scp_solver.mode_to_string m)
  in
  Arg.conv (parse, print)

let solver =
  Arg.(value & opt (some solver_conv) None & info [ "solver" ]
         ~doc:"Default window solver for requests that omit the \"solver\" \
               field: greedy, exact, anneal, auto, or portfolio. A \
               request's own field always wins." ~docv:"MODE")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Write a JSON trace of the daemon's whole service period to \
               $(docv) on exit (enables observability for the run)."
         ~docv:"FILE")

let metrics =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the observability summary tables (serve.* counters, \
               queue-depth gauge, latency histogram) to stderr on exit.")

let serve_channel cache ~max_in_flight ~default_solver ic oc =
  Serve.Daemon.serve
    ?max_in_flight
    ?default_solver
    cache
    ~next_line:(fun () -> In_channel.input_line ic)
    ~emit:(fun line ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n';
      Out_channel.flush oc)
    ()

let add_stats (a : Serve.Daemon.stats) (b : Serve.Daemon.stats) =
  { Serve.Daemon.jobs = a.Serve.Daemon.jobs + b.Serve.Daemon.jobs;
    ok = a.ok + b.ok;
    errors = a.errors + b.errors }

let serve_socket cache ~max_in_flight ~default_solver ~accept_limit path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (err, _, _) ->
     Printf.eprintf "vm1d: cannot bind %s: %s\n%!" path
       (Unix.error_message err);
     exit 1);
  Unix.listen sock 16;
  Printf.eprintf "vm1d: listening on %s\n%!" path;
  let totals = ref { Serve.Daemon.jobs = 0; ok = 0; errors = 0 } in
  let served = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      while accept_limit = 0 || !served < accept_limit do
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        let stats =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close conn with Unix.Unix_error _ -> ())
            (fun () -> serve_channel cache ~max_in_flight ~default_solver ic oc)
        in
        totals := add_stats !totals stats;
        incr served
      done;
      !totals)

let run socket_path accept_limit jobs max_in_flight solver trace metrics =
  if trace <> None || metrics then Obs.set_enabled true;
  if jobs > 0 then Exec.set_jobs jobs;
  let max_in_flight = if max_in_flight > 0 then Some max_in_flight else None in
  let cache = Serve.Cache.create () in
  let stats =
    match socket_path with
    | None -> serve_channel cache ~max_in_flight ~default_solver:solver stdin stdout
    | Some path ->
      serve_socket cache ~max_in_flight ~default_solver:solver ~accept_limit
        path
  in
  Printf.eprintf "vm1d: served %d jobs (%d ok, %d errors)\n%!"
    stats.Serve.Daemon.jobs stats.Serve.Daemon.ok stats.Serve.Daemon.errors;
  (match trace with
   | Some path ->
     (try
        Obs.write_trace path;
        Printf.eprintf "(wrote %s)\n%!" path
      with Sys_error msg ->
        Printf.eprintf "vm1d: cannot write trace: %s\n%!" msg;
        exit 1)
   | None -> ());
  (* stdout is the protocol channel — the summary goes to stderr *)
  if metrics then
    Printf.eprintf "%s%!" (Report.Obs_report.summary (Obs.snapshot ()))

let cmd =
  let doc = "batch-optimization daemon: the vm1dp flow as a service" in
  Cmd.v (Cmd.info "vm1d" ~doc)
    Term.(const run $ socket_path $ accept_limit $ jobs $ max_in_flight
          $ solver $ trace $ metrics)

let () = exit (Cmd.eval cmd)
