(* vm1lint: determinism / allocation analyzer over this repo's OCaml
   sources. See lib/lint/lint.mli and README "Static analysis". *)

let default_paths = [ "lib"; "bin"; "bench"; "test"; "examples" ]

let run paths json rules_only baseline_file update_baseline explain
    fail_stale =
  if rules_only then begin
    List.iter
      (fun (r : Lint.rule) -> Printf.printf "%-18s %s\n" r.name r.summary)
      Lint.rules;
    print_newline ();
    print_endline "Vetted allowlist:";
    List.iter
      (fun (v : Lint.vetted_site) ->
        Printf.printf "%-18s %s %s\n  %s\n" v.v_rule v.path_suffix
          v.ident_prefix v.justification)
      Lint.vetted;
    0
  end
  else begin
    let paths = if paths = [] then default_paths else paths in
    let paths = List.filter Sys.file_exists paths in
    match
      match baseline_file with
      | None -> Ok Lint.empty_baseline
      | Some f when update_baseline && not (Sys.file_exists f) ->
        (* bootstrap: --update-baseline may create the file *)
        Ok Lint.empty_baseline
      | Some f -> Lint.load_baseline f
    with
    | Error msg ->
      prerr_endline ("vm1lint: cannot load baseline: " ^ msg);
      2
    | Ok baseline ->
      let run = Lint.run_paths ~baseline paths in
      if update_baseline then begin
        match baseline_file with
        | None ->
          prerr_endline "vm1lint: --update-baseline requires --baseline";
          2
        | Some f ->
          Lint.save_baseline f run;
          Printf.printf
            "vm1lint: baseline %s updated (%d entries, %d were new, %d \
             stale removed)\n"
            f
            (List.length (Lint.baseline_entries run))
            (Lint.count run Lint.Active)
            (List.length run.Lint.stale);
          0
      end
      else begin
        if json then print_endline (Obs.Json.to_string (Lint.to_json run))
        else Lint.pp_human ~explain Format.std_formatter run;
        if Lint.active run > 0 then 1
        else if fail_stale && run.Lint.stale <> [] then 1
        else 0
      end
  end

open Cmdliner

let paths_arg =
  let doc =
    "Files or directories to lint. Defaults to lib bin bench test \
     examples."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit the machine-readable report (schema vm1dp-lint/2)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc = "Print the rule list and the vetted allowlist, then exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let baseline_arg =
  let doc =
    "Ratchet baseline file (vm1dp-lint-baseline/1): findings whose \
     fingerprint it lists are reported as baselined debt and do not \
     fail the lint; anything new still does."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_arg =
  let doc =
    "Rewrite the --baseline file from this run's findings (current debt \
     becomes the new baseline; stale entries are dropped)."
  in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let explain_arg =
  let doc =
    "With the human report, print each finding's fingerprint and \
     taint-chain witness (the call path from the flagged function to \
     the offending primitive)."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let fail_stale_arg =
  let doc =
    "Also exit nonzero when the baseline contains entries that no \
     longer fire — fixed debt must be removed from the baseline (the \
     @lint-ratchet gate)."
  in
  Arg.(value & flag & info [ "fail-stale" ] ~doc)

let cmd =
  let doc =
    "determinism and allocation analyzer for the vm1dp sources"
  in
  Cmd.v
    (Cmd.info "vm1lint" ~doc)
    Term.(
      const run $ paths_arg $ json_arg $ rules_arg $ baseline_arg
      $ update_arg $ explain_arg $ fail_stale_arg)

let () = exit (Cmd.eval' cmd)
