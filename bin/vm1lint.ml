(* vm1lint: determinism / parallel-safety linter over this repo's OCaml
   sources. See lib/lint/lint.mli and README "Static analysis". *)

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]

let run paths json rules_only =
  if rules_only then begin
    List.iter
      (fun (r : Lint.rule) -> Printf.printf "%-18s %s\n" r.name r.summary)
      Lint.rules;
    print_newline ();
    print_endline "Vetted allowlist:";
    List.iter
      (fun (v : Lint.vetted_site) ->
        Printf.printf "%-18s %s %s\n  %s\n" v.v_rule v.path_suffix
          v.ident_prefix v.justification)
      Lint.vetted;
    0
  end
  else begin
    let paths = if paths = [] then default_paths else paths in
    let paths = List.filter Sys.file_exists paths in
    let run = Lint.run_paths paths in
    if json then print_endline (Obs.Json.to_string (Lint.to_json run))
    else Lint.pp_human Format.std_formatter run;
    if Lint.active run = 0 then 0 else 1
  end

open Cmdliner

let paths_arg =
  let doc =
    "Files or directories to lint. Defaults to lib bin bench examples."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit the machine-readable report (schema vm1dp-lint/1)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let rules_arg =
  let doc = "Print the rule list and the vetted allowlist, then exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let cmd =
  let doc = "determinism and parallel-safety linter for the vm1dp sources" in
  Cmd.v
    (Cmd.info "vm1lint" ~doc)
    Term.(const run $ paths_arg $ json_arg $ rules_arg)

let () = exit (Cmd.eval' cmd)
