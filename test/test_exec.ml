(* lib/exec: the work-stealing domain pool. Concurrency is stressed
   directly (deque owner vs thieves), and the scheduler's two contracts
   are checked end to end: results are bit-identical across pool sizes,
   and after warm-up the pool never spawns another domain. *)

let sorted_range n = List.init n Fun.id

(* One owner pushing/popping at the bottom, N thief domains stealing at
   the top: every pushed value must come out exactly once, across any
   interleaving. *)
let prop_deque_stress =
  QCheck2.Test.make ~name:"deque: owner + thieves, nothing lost or duplicated"
    ~count:8
    QCheck2.Gen.(pair (int_range 100 2000) (int_range 1 3))
    (fun (n, thieves) ->
      let d = Exec.Deque.create () in
      let stop = Atomic.make false in
      let doms =
        Array.init thieves (fun _ ->
            Domain.spawn (fun () ->
                let acc = ref [] in
                while not (Atomic.get stop) do
                  (match Exec.Deque.steal d with
                  | Some v -> acc := v :: !acc
                  | None -> Domain.cpu_relax ())
                done;
                let rec drain () =
                  match Exec.Deque.steal d with
                  | Some v ->
                    acc := v :: !acc;
                    drain ()
                  | None -> ()
                in
                drain ();
                !acc))
      in
      let popped = ref [] in
      for i = 0 to n - 1 do
        Exec.Deque.push d i;
        if i land 3 = 0 then
          match Exec.Deque.pop d with
          | Some v -> popped := v :: !popped
          | None -> ()
      done;
      let rec drain () =
        match Exec.Deque.pop d with
        | Some v ->
          popped := v :: !popped;
          drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      let stolen = Array.map Domain.join doms in
      let all =
        List.concat (!popped :: Array.to_list stolen) |> List.sort Int.compare
      in
      List.length all = n && all = sorted_range n)

(* The determinism contract of the data-parallel loops: same bytes for
   every pool size and chunking. *)
let prop_parallel_map_identical =
  QCheck2.Test.make ~name:"parallel_map/for = sequential across jobs 1/2/4"
    ~count:10
    QCheck2.Gen.(
      pair (list_size (int_range 0 200) (int_range (-1000) 1000)) (int_range 1 8))
    (fun (l, chunk) ->
      let xs = Array.of_list l in
      let f x = (x * 31) lxor (x asr 2) in
      let expect = Array.map f xs in
      List.for_all
        (fun j ->
          Exec.set_jobs j;
          let mapped = Exec.parallel_map ~chunk f xs in
          let out = Array.make (Array.length xs) 0 in
          Exec.parallel_for ~chunk (Array.length xs) (fun i ->
              out.(i) <- f xs.(i));
          mapped = expect && out = expect)
        [ 1; 2; 4 ])

let fixture =
  lazy (Report.Flow.prepare ~scale:64 Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1)

let distopt_cfg parallel =
  {
    Vm1.Dist_opt.tx = 0;
    ty = 0;
    bw = 40;
    bh = 6;
    lx = 3;
    ly = 1;
    allow_flip = false;
    allow_move = true;
    mode = `Greedy;
    parallel;
    candidate_cost = None;
    wcache = None;
  }

let test_distopt_identity () =
  let p = Lazy.force fixture in
  let params = Vm1.Params.default p.Place.Placement.tech in
  let a = Place.Placement.copy p in
  Exec.set_jobs 1;
  ignore (Vm1.Dist_opt.run a params (distopt_cfg false));
  let b = Place.Placement.copy p in
  Exec.set_jobs 4;
  ignore (Vm1.Dist_opt.run b params (distopt_cfg true));
  Alcotest.(check (array int)) "xs" a.Place.Placement.xs b.Place.Placement.xs;
  Alcotest.(check (array int)) "ys" a.Place.Placement.ys b.Place.Placement.ys;
  Alcotest.(check bool) "orients" true
    (a.Place.Placement.orients = b.Place.Placement.orients)

let test_route_identity () =
  let p = Lazy.force fixture in
  (* small tiles force a multi-tile sharded pass even on this small die *)
  let config = { Route.Router.default_config with shard_tracks = 16 } in
  let digest (r : Route.Router.result) =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string
            (r.Route.Router.routes, r.Route.Router.failed_subnets)
            []))
  in
  Exec.set_jobs 1;
  let r1 = Route.Router.route ~config p in
  Exec.set_jobs 4;
  let r4 = Route.Router.route ~config p in
  Alcotest.(check string) "routes identical" (digest r1) (digest r4);
  Alcotest.(check bool) "usage identical" true
    (r1.Route.Router.grid.Route.Grid.wire_usage
       = r4.Route.Router.grid.Route.Grid.wire_usage
    && r1.Route.Router.grid.Route.Grid.via_usage
         = r4.Route.Router.grid.Route.Grid.via_usage)

let test_fallback () =
  Exec.set_jobs 4;
  (* expired deadline: the awaiter re-runs the thunk sequentially *)
  let f =
    Exec.submit
      ~deadline_ns:(Int64.sub (Obs.now_ns ()) 1_000_000L)
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "deadline fallback" 42 (Exec.Future.await f);
  (* a raising task propagates to the awaiter without hurting the pool *)
  let g = Exec.submit (fun () -> raise Exit) in
  (match Exec.Future.await g with
  | _ -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  let h = Exec.parallel_map (fun x -> x + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "pool alive after exception" [| 2; 3; 4 |] h

let test_future_combinators () =
  Exec.set_jobs 2;
  let f = Exec.Future.map (fun x -> x * 2) (Exec.submit (fun () -> 21)) in
  Alcotest.(check int) "map" 42 (Exec.Future.await f);
  let l = Exec.Future.all (List.init 10 (fun i -> Exec.submit (fun () -> i))) in
  Alcotest.(check (list int)) "all" (sorted_range 10) (Exec.Future.await l);
  let c = Exec.submit (fun () -> 7) in
  ignore (Exec.Future.cancel c);
  Alcotest.(check int) "cancelled still awaits" 7 (Exec.Future.await c)

(* The warm-up spawns exactly jobs-1 domains; no parallel call after
   that may spawn another (the satellite fix for spawn-per-batch). *)
let test_no_mid_run_spawn () =
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled false)
    (fun () ->
      Exec.shutdown ();
      Exec.set_jobs 3;
      let c = Obs.counter "exec.domain_spawns" in
      let v0 = Obs.Counter.value c in
      ignore (Exec.parallel_map Fun.id (Array.init 100 Fun.id));
      let warm = Obs.Counter.value c in
      Alcotest.(check int) "warm-up spawns jobs-1 domains" (v0 + 2) warm;
      let p = Lazy.force fixture in
      let params = Vm1.Params.default p.Place.Placement.tech in
      let q = Place.Placement.copy p in
      ignore (Vm1.Dist_opt.run q params (distopt_cfg true));
      for _ = 1 to 5 do
        ignore (Exec.parallel_map (fun x -> x * 2) (Array.init 64 Fun.id));
        Exec.parallel_for 32 (fun _ -> ())
      done;
      Alcotest.(check int) "zero mid-run spawns" warm (Obs.Counter.value c))

let () =
  Alcotest.run "exec"
    [
      ( "deque",
        List.map QCheck_alcotest.to_alcotest [ prop_deque_stress ] );
      ( "loops",
        List.map QCheck_alcotest.to_alcotest [ prop_parallel_map_identical ] );
      ( "determinism",
        [
          Alcotest.test_case "distopt pool = sequential" `Quick
            test_distopt_identity;
          Alcotest.test_case "routing identical across jobs" `Quick
            test_route_identity;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "deadline and exception fallback" `Quick
            test_fallback;
          Alcotest.test_case "future combinators" `Quick
            test_future_combinators;
          Alcotest.test_case "no mid-run domain spawns" `Quick
            test_no_mid_run_spawn;
        ] );
    ]
