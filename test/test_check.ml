(* Flow-sanitizer tests: every lib/check oracle passes on a freshly
   prepared flow and rejects a seeded corruption — overlapping and
   off-grid placements, a dangling net pin, a tampered routing result, an
   infeasible MILP assignment, a corrupted DEF dump, and a deliberately
   out-of-tile grid write that the shard-write monitor must capture. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let prepare arch = Report.Flow.prepare ~scale:32 Netlist.Designs.M0 arch

(* One placement per architecture, built once; tests that mutate take a
   [Place.Placement.copy]. *)
let prepared =
  lazy
    (List.map
       (fun a -> (a, prepare a))
       [
         Pdk.Cell_arch.Closed_m1;
         Pdk.Cell_arch.Open_m1;
         Pdk.Cell_arch.Conventional12;
       ])

let closedm1 () = List.assoc Pdk.Cell_arch.Closed_m1 (Lazy.force prepared)

let params_of (p : Place.Placement.t) = Vm1.Params.default p.tech

(* --- the whole sanitizer passes on every architecture --- *)

let test_flow_passes (arch, p) () =
  let findings = Check.flow (params_of p) p in
  check_int "seven oracles ran" 7 (List.length findings);
  List.iter
    (fun (f : Check.finding) ->
      check_bool
        (Printf.sprintf "%s oracle clean (%s)" f.oracle
           (Pdk.Cell_arch.to_string arch))
        true (f.problems = []))
    findings

(* --- corrupted DEF dumps are rejected on read --- *)

let test_corrupted_def () =
  let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1) in
  (match Io.Def.read lib "THIS IS NOT A PLACEMENT DUMP\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage DEF accepted");
  let p = closedm1 () in
  let good = Io.Def.write p.design (Place.Placement.to_def p) in
  (* truncating mid-dump must not silently yield a partial design *)
  match Io.Def.read lib (String.sub good 0 (String.length good / 2)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated DEF accepted"

(* --- illegal placements are rejected by both checkers --- *)

let test_overlap_rejected () =
  let p = Place.Placement.copy (closedm1 ()) in
  check_int "fixture is legal" 0 (List.length (Check.placement p));
  Place.Placement.move p 1
    ~site:(Place.Placement.site_of_inst p 0)
    ~row:(Place.Placement.row_of_inst p 0)
    ~orient:p.orients.(1);
  check_bool "Check.placement rejects overlap" true (Check.placement p <> []);
  check_bool "Legalize.check rejects overlap" true
    (Place.Legalize.check p <> [])

let test_off_grid_rejected () =
  let p = Place.Placement.copy (closedm1 ()) in
  p.xs.(0) <- p.xs.(0) + 1;
  check_bool "Check.placement rejects off-site x" true
    (Check.placement p <> []);
  check_bool "Legalize.check rejects off-site x" true
    (Place.Legalize.check p <> [])

let test_outside_die_rejected () =
  let p = Place.Placement.copy (closedm1 ()) in
  p.ys.(0) <- p.ys.(0) - (2 * p.tech.Pdk.Tech.row_height);
  check_bool "Check.placement rejects out-of-die" true
    (Check.placement p <> [])

(* --- referential corruption is rejected by the design oracle --- *)

let test_dangling_pin_rejected () =
  let d = (closedm1 ()).design in
  check_int "fixture validates" 0 (List.length (Check.design d));
  let nets = Array.copy d.nets in
  nets.(0) <-
    {
      (nets.(0)) with
      Netlist.Design.pins =
        Array.append nets.(0).Netlist.Design.pins
          [| { Netlist.Design.inst = 999_999; pin = 0 } |];
    };
  let bad = { d with Netlist.Design.nets } in
  check_bool "Check.design rejects dangling pin" true (Check.design bad <> []);
  check_bool "Design.validate rejects dangling pin" true
    (Netlist.Design.validate bad <> [])

(* --- the sanitizer stays clean after a portfolio + window-cache flow:
   the racing solver and the memo-cache replay path both feed the same
   oracles (placement legality, window independence, objective recount,
   shard monitor, MILP re-verification) as the plain greedy flow --- *)

let test_portfolio_cache_flow_clean () =
  let p = Place.Placement.copy (closedm1 ()) in
  let params = params_of p in
  let config =
    { Vm1.Vm1_opt.default_config with
      Vm1.Vm1_opt.mode = `Portfolio;
      wcache = Vm1.Vm1_opt.Fresh_wcache }
  in
  ignore (Vm1.Vm1_opt.run ~config params p);
  let findings = Check.flow params p in
  check_int "seven oracles ran" 7 (List.length findings);
  List.iter
    (fun (f : Check.finding) ->
      check_bool
        (Printf.sprintf "%s oracle clean after portfolio+cache" f.oracle)
        true (f.problems = []))
    findings

(* --- objective recount disagrees with tampered counts --- *)

let test_objective_tamper () =
  let p = closedm1 () in
  let params = params_of p in
  let c = Vm1.Objective.counts params p in
  check_int "honest counts verify" 0
    (List.length (Check.objective_counts params p c));
  let tampered = { c with Vm1.Objective.alignments = c.alignments + 1 } in
  check_bool "inflated alignment count caught" true
    (Check.objective_counts params p tampered <> [])

(* --- routing result tampering --- *)

let find_free_wire_edge (g : Route.Grid.t) =
  let rec go n =
    if n >= Route.Grid.node_count g then
      Alcotest.fail "no free wire edge in grid"
    else if
      Route.Grid.has_wire_edge g n
      && g.wire_usage.(n) = 0
      && g.wire_owner.(n) = Route.Grid.free
    then n
    else go (n + 1)
  in
  go 0

let test_route_tamper () =
  let p = closedm1 () in
  let r = Route.Router.route p in
  check_int "honest result verifies" 0 (List.length (Check.route_result r));
  let n = find_free_wire_edge r.grid in
  Route.Grid.commit_wire r.grid ~net:0 n;
  check_bool "phantom committed edge caught" true (Check.route_result r <> []);
  Route.Grid.uncommit_wire r.grid ~net:0 n;
  check_int "restored result verifies" 0 (List.length (Check.route_result r));
  r.failed_subnets <- r.failed_subnets + 1;
  check_bool "failed-subnet miscount caught" true (Check.route_result r <> []);
  r.failed_subnets <- r.failed_subnets - 1

(* --- shard-write monitor --- *)

let test_out_of_tile_write_caught () =
  let p = closedm1 () in
  let g = Route.Grid.of_placement p in
  let n = find_free_wire_edge g in
  Obs.Scopemon.arm ();
  Obs.Scopemon.set_scope ~label:"tile(0,0)" (Some (fun _ -> false));
  Route.Grid.commit_wire g ~net:0 n;
  Obs.Scopemon.clear_scope ();
  Obs.Scopemon.disarm ();
  (match Obs.Scopemon.violations () with
  | [ v ] ->
    check_string "offending scope label" "tile(0,0)" v.Obs.Scopemon.label;
    check_int "offending write" n v.Obs.Scopemon.value
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  check_bool "Check.shard_violations reports it" true
    (Check.shard_violations () <> [])

let test_in_scope_write_silent () =
  let p = closedm1 () in
  let g = Route.Grid.of_placement p in
  let n = find_free_wire_edge g in
  Obs.Scopemon.arm ();
  Obs.Scopemon.set_scope ~label:"tile(0,0)" (Some (fun _ -> true));
  Route.Grid.commit_wire g ~net:0 n;
  Route.Grid.uncommit_wire g ~net:0 n;
  Obs.Scopemon.clear_scope ();
  Obs.Scopemon.disarm ();
  check_int "no violations" 0 (List.length (Obs.Scopemon.violations ()))

let test_disarmed_is_noop () =
  let p = closedm1 () in
  let g = Route.Grid.of_placement p in
  let n = find_free_wire_edge g in
  Obs.Scopemon.arm ();
  Obs.Scopemon.disarm ();
  Obs.Scopemon.set_scope ~label:"tile(0,0)" (Some (fun _ -> false));
  Route.Grid.commit_wire g ~net:0 n;
  Obs.Scopemon.clear_scope ();
  check_int "disarmed monitor records nothing" 0
    (List.length (Obs.Scopemon.violations ()))

(* --- MILP assignment re-verification --- *)

let test_model_check () =
  let open Milp.Model in
  let m = create () in
  let x = continuous m ~ub:1.0 "x" in
  let _b = binary m "b" in
  add_le m (v x) (const 0.5);
  check_int "feasible assignment verifies" 0
    (List.length (check m [| 0.25; 1.0 |]));
  let problems = check m [| 2.0; 0.5 |] in
  (* x above its upper bound and over the constraint, b fractional *)
  check_bool "infeasible assignment caught" true (List.length problems >= 3);
  check_bool "wrong-arity assignment caught" true (check m [| 0.0 |] <> [])

let () =
  let flow_cases =
    List.map
      (fun ((arch, _) as ap) ->
        Alcotest.test_case (Pdk.Cell_arch.to_string arch) `Quick
          (test_flow_passes ap))
      (Lazy.force prepared)
  in
  Alcotest.run "check"
    [
      ( "flow",
        flow_cases
        @ [
            Alcotest.test_case "portfolio+cache clean" `Quick
              test_portfolio_cache_flow_clean;
          ] );
      ( "negative-def",
        [
          Alcotest.test_case "corrupted dump rejected" `Quick
            test_corrupted_def;
        ] );
      ( "negative-placement",
        [
          Alcotest.test_case "overlap rejected" `Quick test_overlap_rejected;
          Alcotest.test_case "off-grid rejected" `Quick test_off_grid_rejected;
          Alcotest.test_case "outside die rejected" `Quick
            test_outside_die_rejected;
        ] );
      ( "negative-design",
        [
          Alcotest.test_case "dangling pin rejected" `Quick
            test_dangling_pin_rejected;
        ] );
      ( "negative-objective",
        [ Alcotest.test_case "tampered counts caught" `Quick
            test_objective_tamper ] );
      ( "negative-route",
        [ Alcotest.test_case "tampered result caught" `Quick
            test_route_tamper ] );
      ( "shard-monitor",
        [
          Alcotest.test_case "out-of-tile write caught" `Quick
            test_out_of_tile_write_caught;
          Alcotest.test_case "in-scope write silent" `Quick
            test_in_scope_write_silent;
          Alcotest.test_case "disarmed is a no-op" `Quick
            test_disarmed_is_noop;
        ] );
      ( "milp",
        [ Alcotest.test_case "assignment re-verified" `Quick
            test_model_check ] );
    ]
