(* The interchange subsystem: DEF/LEF codec round-trips (including the
   emit -> parse -> emit fixed point on the committed examples), exact
   parse-error positions, benchmark-manifest JSON, and the end-to-end
   guarantee the codec exists for: a flow result emitted as DEF,
   re-ingested and re-evaluated, produces byte-identical QoR metrics. *)

let check = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkb = Alcotest.(check bool)

let closed_lib =
  lazy (Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1))

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let ok_or_fail_lex what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Io.Lex.error_to_string e)

(* --- DEF: generated designs ------------------------------------------ *)

let placed ?(scale = 64) ?(utilization = 0.7) arch =
  let d = Netlist.Designs.make ~scale Netlist.Designs.M0 arch in
  let p = Place.Placement.create d ~utilization in
  Place.Global.place p;
  (d, p)

let test_def_emit_parse_emit_fixed_point () =
  List.iter
    (fun arch ->
      let d, p = placed arch in
      let text = Io.Def.write d (Place.Placement.to_def p) in
      let doc = ok_or_fail_lex "parse" (Io.Def.parse text) in
      checks
        (Printf.sprintf "fixed point (%s)" (Pdk.Cell_arch.to_string arch))
        text (Io.Def.emit doc))
    [ Pdk.Cell_arch.Closed_m1; Pdk.Cell_arch.Open_m1;
      Pdk.Cell_arch.Conventional12 ]

let test_def_to_design_round_trip () =
  let d, p = placed Pdk.Cell_arch.Closed_m1 in
  let def = Place.Placement.to_def p in
  let text = Io.Def.write d def in
  let d2, def2 =
    ok_or_fail "read" (Io.Def.read d.Netlist.Design.lib text)
  in
  Alcotest.(check (list string)) "valid" [] (Netlist.Design.validate d2);
  check "instances" (Netlist.Design.num_instances d)
    (Netlist.Design.num_instances d2);
  check "nets" (Netlist.Design.num_nets d) (Netlist.Design.num_nets d2);
  checkb "die" true (Geom.Rect.equal def.Netlist.Def_io.die def2.Netlist.Def_io.die);
  Alcotest.(check (array int)) "xs" def.Netlist.Def_io.xs def2.Netlist.Def_io.xs;
  Alcotest.(check (array int)) "ys" def.Netlist.Def_io.ys def2.Netlist.Def_io.ys;
  Array.iteri
    (fun i o ->
      checkb "orient" true (Geom.Orient.equal o def2.Netlist.Def_io.orients.(i)))
    def.Netlist.Def_io.orients

let test_def_rows_and_tracks () =
  let d, p = placed Pdk.Cell_arch.Closed_m1 in
  let text = Io.Def.write d (Place.Placement.to_def p) in
  let doc = ok_or_fail_lex "parse" (Io.Def.parse text) in
  let tech = d.Netlist.Design.lib.Pdk.Libgen.tech in
  let die = doc.Io.Def.die in
  check "row count"
    (Geom.Rect.height die / tech.Pdk.Tech.row_height)
    (List.length doc.Io.Def.rows);
  List.iter
    (fun (r : Io.Def.row) ->
      check "row step = site width" tech.Pdk.Tech.site_width r.Io.Def.r_step)
    doc.Io.Def.rows;
  check "three track grids" 3 (List.length doc.Io.Def.tracks);
  let m1 =
    List.find (fun t -> String.equal t.Io.Def.t_layer "M1") doc.Io.Def.tracks
  in
  checkb "M1 tracks vertical" true (m1.Io.Def.t_axis = Io.Def.X);
  check "M1 pitch = site width" tech.Pdk.Tech.site_width m1.Io.Def.t_step

(* the QCheck sweep: the fixed point holds for arbitrary arch/scale/util *)
let prop_def_fixed_point =
  QCheck2.Test.make ~name:"emit->parse->emit fixed point" ~count:12
    QCheck2.Gen.(
      triple (int_range 0 2) (int_range 48 128) (int_range 60 85))
    (fun (archi, scale, util) ->
      let arch =
        match archi with
        | 0 -> Pdk.Cell_arch.Closed_m1
        | 1 -> Pdk.Cell_arch.Open_m1
        | _ -> Pdk.Cell_arch.Conventional12
      in
      let d, p = placed ~scale ~utilization:(float_of_int util /. 100.) arch in
      let text = Io.Def.write d (Place.Placement.to_def p) in
      match Io.Def.parse text with
      | Error _ -> false
      | Ok doc -> String.equal text (Io.Def.emit doc))

(* --- DEF: the committed examples ------------------------------------- *)

(* paths relative to test/ (the runtest cwd); fall back to the source
   tree layout so [dune exec test/test_io.exe] from the root also works *)
let committed_defs =
  List.map
    (fun p -> if Sys.file_exists p then p else Filename.concat "test" p)
    [ "a.init.def"; "a.opt.def"; "b.init.def"; "b.opt.def";
      "m0_smoke.def" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_committed_defs_fixed_point () =
  List.iter
    (fun path ->
      let text = read_file path in
      let doc = ok_or_fail_lex path (Io.Def.parse text) in
      checks (Printf.sprintf "%s unchanged by round-trip" path) text
        (Io.Def.emit doc);
      let d, _ =
        ok_or_fail path (Io.Def.to_design (Lazy.force closed_lib) doc)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%s valid" path)
        [] (Netlist.Design.validate d))
    committed_defs

(* --- DEF: exact error positions -------------------------------------- *)

let def_err src =
  match Io.Def.parse src with
  | Ok _ -> Alcotest.failf "accepted malformed DEF:\n%s" src
  | Error e -> e

let check_err ~line ~col ~expected ~got (e : Io.Lex.error) =
  check "line" line e.Io.Lex.e_line;
  check "col" col e.Io.Lex.e_col;
  checks "expected" expected e.Io.Lex.expected;
  checks "got" got e.Io.Lex.got

let minimal_def =
  "VERSION 5.8 ;\n\
   DESIGN t ;\n\
   UNITS DISTANCE MICRONS 1000 ;\n\
   DIEAREA ( 0 0 ) ( 72 270 ) ;\n\
   COMPONENTS 1 ;\n\
   - u0 INV_X1 + PLACED ( 0 0 ) N ;\n\
   END COMPONENTS\n\
   NETS 0 ;\n\
   END NETS\n\
   END DESIGN\n"

let test_def_minimal_parses () =
  let doc = ok_or_fail_lex "minimal" (Io.Def.parse minimal_def) in
  let d, p = ok_or_fail "bind" (Io.Def.to_design (Lazy.force closed_lib) doc) in
  check "one instance" 1 (Netlist.Design.num_instances d);
  check "x" 0 p.Netlist.Def_io.xs.(0)

let test_def_garbage_position () =
  check_err ~line:1 ~col:1 ~expected:"\"VERSION\"" ~got:"\"WHAT\""
    (def_err "WHAT 3\n")

let test_def_truncated_position () =
  (* cut the minimal DEF right after "NETS 0 ;" (end of line 8) *)
  let cut =
    let idx = ref 0 and seen = ref 0 in
    String.iteri
      (fun i c ->
        if c = '\n' then begin
          incr seen;
          if !seen = 8 then idx := i
        end)
      minimal_def;
    String.sub minimal_def 0 !idx
  in
  check_err ~line:8 ~col:9 ~expected:"\"-\" or \"END NETS\"" ~got:"end of input"
    (def_err cut)

let test_def_bad_orient_position () =
  let src =
    Str.global_replace (Str.regexp_string "( 0 0 ) N ;") "( 0 0 ) Q ;"
      minimal_def
  in
  check_err ~line:6 ~col:30 ~expected:"an orientation (N|FN|S|FS)" ~got:"\"Q\""
    (def_err src)

let test_def_count_mismatch_position () =
  let src =
    Str.global_replace (Str.regexp_string "COMPONENTS 1 ;") "COMPONENTS 2 ;"
      minimal_def
  in
  check_err ~line:5 ~col:12 ~expected:"2 components entries (found 1)"
    ~got:"\"2\"" (def_err src)

let test_def_bad_dbu_rejected () =
  let src =
    Str.global_replace (Str.regexp_string "MICRONS 1000") "MICRONS 2000"
      minimal_def
  in
  let doc = ok_or_fail_lex "parse" (Io.Def.parse src) in
  match Io.Def.to_design (Lazy.force closed_lib) doc with
  | Ok _ -> Alcotest.fail "wrong DBU accepted"
  | Error msg -> checkb "mentions UNITS" true (String.length msg > 0)

let test_def_unknown_master () =
  let src =
    Str.global_replace (Str.regexp_string "INV_X1") "NAND9_X9" minimal_def
  in
  let doc = ok_or_fail_lex "parse" (Io.Def.parse src) in
  match Io.Def.to_design (Lazy.force closed_lib) doc with
  | Ok _ -> Alcotest.fail "unknown master accepted"
  | Error msg ->
    checks "message" "unknown master \"NAND9_X9\" (component \"u0\")" msg

let test_def_trailing_garbage () =
  check_err ~line:11 ~col:1 ~expected:"end of input" ~got:"\"third\""
    (def_err (minimal_def ^ "third section\n"))

(* --- LEF -------------------------------------------------------------- *)

let test_lef_emit_parse_emit_fixed_point () =
  List.iter
    (fun arch ->
      let lib = Pdk.Libgen.generate (Pdk.Tech.default arch) in
      let text = Io.Lef.emit lib in
      let lib2 = ok_or_fail_lex "parse" (Io.Lef.parse text) in
      checks
        (Printf.sprintf "fixed point (%s)" (Pdk.Cell_arch.to_string arch))
        text (Io.Lef.emit lib2))
    [ Pdk.Cell_arch.Closed_m1; Pdk.Cell_arch.Open_m1;
      Pdk.Cell_arch.Conventional12 ]

let test_lef_reconstructs_library () =
  let lib = Lazy.force closed_lib in
  let lib2 = ok_or_fail_lex "parse" (Io.Lef.parse (Io.Lef.emit lib)) in
  checkb "tech equal" true (lib.Pdk.Libgen.tech = lib2.Pdk.Libgen.tech);
  check "cell count" (List.length lib.cells) (List.length lib2.cells);
  List.iter2
    (fun (a : Pdk.Stdcell.t) (b : Pdk.Stdcell.t) ->
      checks "name" a.name b.name;
      checkb "identical master" true (a = b))
    lib.cells lib2.cells

let lef_err src =
  match Io.Lef.parse src with
  | Ok _ -> Alcotest.failf "accepted malformed LEF:\n%s" src
  | Error e -> e

let test_lef_bad_arch_position () =
  check_err ~line:2 ~col:6 ~expected:"an architecture (closedm1|openm1|conv12)"
    ~got:"\"pdk15\""
    (lef_err "VERSION 5.8 ;\nARCH pdk15 ;\n")

let test_lef_bad_kind_position () =
  let text = Io.Lef.emit (Lazy.force closed_lib) in
  let src = Str.replace_first (Str.regexp_string "KIND INV") "KIND LATCH" text in
  let e = lef_err src in
  checks "expected" "a cell kind (INV|BUF|NAND2|...)" e.Io.Lex.expected;
  checks "got" "\"LATCH\"" e.Io.Lex.got

let test_lef_truncated () =
  let text = Io.Lef.emit (Lazy.force closed_lib) in
  let e = lef_err (String.sub text 0 (String.length text / 2)) in
  checks "got" "end of input" e.Io.Lex.got

(* --- manifests -------------------------------------------------------- *)

let mini_manifest_json =
  {|{ "schema": "vm1dp-bench-manifest/1",
      "name": "mini",
      "designs": [
        { "id": "m0", "generate": "m0" },
        { "id": "smoke", "def": "m0_smoke.def", "arch": "closedm1" } ],
      "archs": ["closedm1", "openm1"],
      "utils": [0.7, 0.8],
      "scales": [48] }|}

let test_manifest_parse_and_roundtrip () =
  let m = ok_or_fail "parse" (Io.Manifest.parse mini_manifest_json) in
  checks "name" "mini" m.Io.Manifest.m_name;
  check "entries" 2 (List.length m.Io.Manifest.entries);
  check "archs" 2 (List.length m.Io.Manifest.archs);
  (match (List.nth m.Io.Manifest.entries 1).Io.Manifest.source with
  | Io.Manifest.External { def_path; lef_path; arch } ->
    checks "def path" "m0_smoke.def" def_path;
    checkb "no lef" true (lef_path = None);
    checkb "arch" true (arch = Pdk.Cell_arch.Closed_m1)
  | Io.Manifest.Generate _ -> Alcotest.fail "entry 1 should be external");
  let m2 =
    ok_or_fail "reparse" (Io.Manifest.of_json (Io.Manifest.to_json m))
  in
  checkb "round-trip" true (m = m2)

let manifest_err json =
  match Io.Manifest.parse json with
  | Ok _ -> Alcotest.failf "accepted bad manifest: %s" json
  | Error msg -> msg

let test_manifest_errors () =
  checks "wrong schema"
    "manifest: schema \"nope/9\", expected \"vm1dp-bench-manifest/1\""
    (manifest_err
       {|{"schema":"nope/9","name":"x","designs":[],"archs":[],"utils":[],"scales":[]}|});
  checks "empty designs" "manifest: no designs"
    (manifest_err
       {|{"schema":"vm1dp-bench-manifest/1","name":"x","designs":[],"archs":[],"utils":[],"scales":[]}|});
  checks "duplicate id" "manifest: duplicate design id \"a\""
    (manifest_err
       {|{"schema":"vm1dp-bench-manifest/1","name":"x","designs":[{"id":"a","generate":"m0"},{"id":"a","generate":"aes"}],"archs":[],"utils":[],"scales":[]}|});
  checks "both sources" "design \"a\": has both \"generate\" and \"def\""
    (manifest_err
       {|{"schema":"vm1dp-bench-manifest/1","name":"x","designs":[{"id":"a","generate":"m0","def":"x.def"}],"archs":[],"utils":[],"scales":[]}|});
  checks "unknown generator" "design \"a\": unknown generator design \"zz\""
    (manifest_err
       {|{"schema":"vm1dp-bench-manifest/1","name":"x","designs":[{"id":"a","generate":"zz"}],"archs":[],"utils":[],"scales":[]}|})

(* --- the reason the codec exists: QoR survives the round-trip --------- *)

let fstr f = Printf.sprintf "%.17g" f

let eval_to_string (e : Report.Flow.eval) =
  Printf.sprintf "dm1=%d m1wl=%s via12=%d hpwl=%s rwl=%s wns=%s power=%s drvs=%d align=%d"
    e.Report.Flow.dm1 (fstr e.m1_wl_um) e.via12 (fstr e.hpwl_um)
    (fstr e.rwl_um) (fstr e.wns_ns) (fstr e.power_mw) e.drvs e.alignments

let test_qor_identical_after_reingest () =
  (* optimise a placement, emit it as DEF, re-ingest through the codec
     against a freshly generated library, re-evaluate: every metric must
     be byte-identical *)
  let p =
    Report.Flow.prepare ~scale:48 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1
  in
  let params = Vm1.Params.default p.Place.Placement.tech in
  ignore (Vm1.Vm1_opt.run params p);
  let text = Io.Def.write p.Place.Placement.design (Place.Placement.to_def p) in
  let e1, _ = Report.Flow.evaluate params p in
  let fresh_lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1) in
  let d2, def2 = ok_or_fail "re-ingest" (Io.Def.read fresh_lib text) in
  let p2 = Place.Placement.of_def d2 def2 in
  let e2, _ = Report.Flow.evaluate (Vm1.Params.default p2.Place.Placement.tech) p2 in
  checks "QoR byte-identical" (eval_to_string e1) (eval_to_string e2)

let () =
  Alcotest.run "io"
    [
      ( "def",
        [
          Alcotest.test_case "emit-parse-emit fixed point" `Quick
            test_def_emit_parse_emit_fixed_point;
          Alcotest.test_case "to_design round-trip" `Quick
            test_def_to_design_round_trip;
          Alcotest.test_case "rows and tracks" `Quick test_def_rows_and_tracks;
          Alcotest.test_case "minimal document" `Quick test_def_minimal_parses;
          QCheck_alcotest.to_alcotest prop_def_fixed_point;
        ] );
      ( "def committed",
        [
          Alcotest.test_case "committed defs are fixed points" `Quick
            test_committed_defs_fixed_point;
        ] );
      ( "def errors",
        [
          Alcotest.test_case "garbage" `Quick test_def_garbage_position;
          Alcotest.test_case "truncated" `Quick test_def_truncated_position;
          Alcotest.test_case "bad orient" `Quick test_def_bad_orient_position;
          Alcotest.test_case "count mismatch" `Quick
            test_def_count_mismatch_position;
          Alcotest.test_case "bad dbu" `Quick test_def_bad_dbu_rejected;
          Alcotest.test_case "unknown master" `Quick test_def_unknown_master;
          Alcotest.test_case "trailing garbage" `Quick test_def_trailing_garbage;
        ] );
      ( "lef",
        [
          Alcotest.test_case "emit-parse-emit fixed point" `Quick
            test_lef_emit_parse_emit_fixed_point;
          Alcotest.test_case "reconstructs library" `Quick
            test_lef_reconstructs_library;
          Alcotest.test_case "bad arch" `Quick test_lef_bad_arch_position;
          Alcotest.test_case "bad kind" `Quick test_lef_bad_kind_position;
          Alcotest.test_case "truncated" `Quick test_lef_truncated;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "parse and round-trip" `Quick
            test_manifest_parse_and_roundtrip;
          Alcotest.test_case "errors" `Quick test_manifest_errors;
        ] );
      ( "qor",
        [
          Alcotest.test_case "identical after re-ingest" `Quick
            test_qor_identical_after_reingest;
        ] );
    ]
