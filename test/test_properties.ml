(* Cross-module property-based tests: randomised designs and placements
   exercised through the full substrate stack. *)

let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1)

let design_of_seed ?(n = 120) seed =
  Netlist.Generator.generate lib
    (Netlist.Generator.default_config ~n_instances:n ~seed)
    ~name:(Printf.sprintf "prop%d" seed)

(* every generated netlist is referentially valid *)
let prop_generator_always_valid =
  QCheck2.Test.make ~name:"generator always valid" ~count:30
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed -> Netlist.Design.validate (design_of_seed seed) = [])

(* the legaliser produces a legal placement from arbitrary targets *)
let prop_legalizer_always_legal =
  QCheck2.Test.make ~name:"legaliser always legal" ~count:25
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 50 95) (int_range 0 3))
    (fun (seed, util_pct, pattern) ->
      let d = design_of_seed seed in
      let p =
        Place.Placement.create d ~utilization:(float_of_int util_pct /. 100.0)
      in
      let rng = Random.State.make [| seed; pattern |] in
      let w = Geom.Rect.width p.die and h = Geom.Rect.height p.die in
      Array.iteri
        (fun i _ ->
          let x, y =
            match pattern with
            | 0 -> (0, 0)
            | 1 -> (w, h)
            | 2 -> (w / 2, h / 2)
            | _ -> (Random.State.int rng (w + 1), Random.State.int rng (h + 1))
          in
          p.xs.(i) <- x;
          p.ys.(i) <- y)
        p.xs;
      Place.Legalize.legalize p;
      Place.Legalize.check p = [])

(* global placement never loses legality, for any seed *)
let prop_global_place_legal =
  QCheck2.Test.make ~name:"global placement always legal" ~count:15
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.72 in
      Place.Global.place p;
      Place.Legalize.check p = [])

(* routed paths are structurally connected: consecutive edges share a
   node, and endpoints land on src/dst access points or tree nodes *)
let path_is_connected g (path : int array) =
  let endpoints c =
    match Route.Router.edge_of_code c with
    | Route.Router.Wire n -> (n, Route.Grid.wire_dest g n)
    | Route.Router.Via n -> (n, Route.Grid.via_dest g n)
  in
  let ok = ref true in
  for k = 0 to Array.length path - 2 do
    let a1, a2 = endpoints path.(k) and b1, b2 = endpoints path.(k + 1) in
    if not (a1 = b1 || a1 = b2 || a2 = b1 || a2 = b2) then ok := false
  done;
  !ok

let prop_routed_paths_connected =
  QCheck2.Test.make ~name:"routed paths are connected edge chains" ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.7 in
      Place.Global.place p;
      let r = Route.Router.route p in
      Array.for_all
        (fun (nr : Route.Router.net_route) ->
          Array.for_all
            (fun (sn : Route.Router.subnet) ->
              (not sn.routed) || path_is_connected r.grid sn.path)
            nr.subnets)
        r.routes)

(* grid usage equals the sum over stored paths (no leaks, no double
   counting), even after rip-up-and-reroute *)
let prop_usage_consistent =
  QCheck2.Test.make ~name:"router usage bookkeeping consistent" ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.8 in
      Place.Global.place p;
      let r = Route.Router.route p in
      let g = r.grid in
      let size = Route.Grid.node_count g in
      let wire = Array.make size 0 and via = Array.make size 0 in
      Array.iter
        (fun (nr : Route.Router.net_route) ->
          Array.iter
            (fun (sn : Route.Router.subnet) ->
              Array.iter
                (fun c ->
                  match Route.Router.edge_of_code c with
                  | Route.Router.Wire n -> wire.(n) <- wire.(n) + 1
                  | Route.Router.Via n -> via.(n) <- via.(n) + 1)
                sn.path)
            nr.subnets)
        r.routes;
      let ok = ref true in
      for n = 0 to size - 1 do
        if wire.(n) <> g.Route.Grid.wire_usage.(n) then ok := false;
        if via.(n) <> g.Route.Grid.via_usage.(n) then ok := false
      done;
      !ok)

(* the track-range pin-access index built at grid construction agrees
   with the original full-grid scan, for every pin of every cell
   architecture, and never reports a node twice *)
let prop_pin_access_index_matches_scan =
  QCheck2.Test.make ~name:"pin-access index = full scan (all archs)" ~count:9
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 2))
    (fun (seed, archno) ->
      let arch =
        match archno with
        | 0 -> Pdk.Cell_arch.Conventional12
        | 1 -> Pdk.Cell_arch.Closed_m1
        | _ -> Pdk.Cell_arch.Open_m1
      in
      let archlib = Pdk.Libgen.generate (Pdk.Tech.default arch) in
      let d =
        Netlist.Generator.generate archlib
          (Netlist.Generator.default_config ~n_instances:80 ~seed)
          ~name:"pa"
      in
      let p = Place.Placement.create d ~utilization:0.7 in
      Place.Global.place p;
      let g = Route.Grid.of_placement p in
      let ok = ref true in
      Array.iteri
        (fun i (inst : Netlist.Design.instance) ->
          List.iteri
            (fun k _ ->
              let pr = { Netlist.Design.inst = i; pin = k } in
              let idx = Route.Grid.pin_access g pr in
              let scan = Route.Grid.pin_access_scan g pr in
              if List.sort_uniq Int.compare idx <> List.sort Int.compare idx
              then ok := false;
              if List.sort Int.compare idx <> List.sort Int.compare scan then
                ok := false)
            inst.master.Pdk.Stdcell.pins)
        p.design.Netlist.Design.instances;
      !ok)

(* window move_delta always matches a full objective recompute *)
let prop_move_delta_exact =
  QCheck2.Test.make ~name:"move_delta equals objective recompute" ~count:12
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 1000))
    (fun (seed, pick) ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.72 in
      Place.Global.place p;
      let params = Vm1.Params.default p.Place.Placement.tech in
      let movable = List.init (Place.Placement.num_instances p) (fun i -> i) in
      let t =
        Vm1.Wproblem.extract p params ~site_lo:0 ~row_lo:0
          ~bw:p.Place.Placement.sites_per_row ~bh:p.Place.Placement.num_rows
          ~movable ~lx:3 ~ly:1 ~allow_flip:true ~allow_move:true
      in
      let n = Array.length t.Vm1.Wproblem.cells in
      let cell = pick mod n in
      let c = t.Vm1.Wproblem.cells.(cell) in
      let k = Array.length c.Vm1.Wproblem.cands in
      let cand = (pick * 7) mod k in
      if cand = c.Vm1.Wproblem.cur
         || not (Vm1.Wproblem.candidate_free t ~cell ~cand)
      then true
      else begin
        let before = Vm1.Wproblem.objective t in
        let delta = Vm1.Wproblem.move_delta t ~cell ~cand in
        Vm1.Wproblem.apply t ~cell ~cand;
        let after = Vm1.Wproblem.objective t in
        abs_float (after -. before -. delta) < 0.01
      end)

(* the greedy window solver never worsens the objective and never breaks
   legality, for any seed and perturbation range *)
let prop_greedy_monotone_legal =
  QCheck2.Test.make ~name:"greedy solver monotone and legal" ~count:10
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 1 5) (int_range 0 1))
    (fun (seed, lx, ly) ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.75 in
      Place.Global.place p;
      let params = Vm1.Params.default p.Place.Placement.tech in
      let movable = List.init (Place.Placement.num_instances p) (fun i -> i) in
      let t =
        Vm1.Wproblem.extract p params ~site_lo:0 ~row_lo:0
          ~bw:p.Place.Placement.sites_per_row ~bh:p.Place.Placement.num_rows
          ~movable ~lx ~ly ~allow_flip:false ~allow_move:true
      in
      let stats = Vm1.Scp_solver.solve ~mode:`Greedy t in
      Vm1.Wproblem.commit t;
      stats.Vm1.Scp_solver.objective_after
      <= stats.Vm1.Scp_solver.objective_before +. 1e-6
      && Place.Legalize.check p = [])

(* DEF round-trips for arbitrary generated designs and placements *)
let prop_def_roundtrip =
  QCheck2.Test.make ~name:"DEF round-trip" ~count:15
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let d = design_of_seed ~n:60 seed in
      let p = Place.Placement.create d ~utilization:0.7 in
      Place.Global.place p;
      let text = Io.Def.write d (Place.Placement.to_def p) in
      match Io.Def.read lib text with
      | Error _ -> false
      | Ok (d2, def2) ->
        let p2 = Place.Placement.of_def d2 def2 in
        Netlist.Design.validate d2 = []
        && Place.Hpwl.total p = Place.Hpwl.total p2)

(* the row DP never worsens total HPWL *)
let prop_row_dp_monotone =
  QCheck2.Test.make ~name:"row DP monotone in HPWL" ~count:10
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.75 in
      Place.Global.place p;
      let before = Place.Hpwl.total p in
      ignore (Place.Row_opt.optimize ~passes:1 p);
      Place.Hpwl.total p <= before && Place.Legalize.check p = [])

(* the exact MILP (constraints (1)-(14)) agrees with exhaustive search on
   random small windows, both architectures *)
let prop_milp_equals_exhaustive =
  QCheck2.Test.make ~name:"MILP = exhaustive on random windows" ~count:6
    QCheck2.Gen.(pair (int_range 1 500) bool)
    (fun (seed, open_m1) ->
      let arch = if open_m1 then Pdk.Cell_arch.Open_m1 else Pdk.Cell_arch.Closed_m1 in
      let archlib = Pdk.Libgen.generate (Pdk.Tech.default arch) in
      let d =
        Netlist.Generator.generate archlib
          (Netlist.Generator.default_config ~n_instances:120 ~seed)
          ~name:"w"
      in
      let p = Place.Placement.create d ~utilization:0.7 in
      Place.Global.place p;
      let params = Vm1.Params.default p.Place.Placement.tech in
      let pick () =
        let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
        Array.to_list ws
        |> List.filter (fun (w : Vm1.Window.t) ->
               let k = List.length w.movable in
               k >= 2 && k <= 4)
      in
      match pick () with
      | [] -> true (* no suitable window for this seed *)
      | w :: _ ->
        let extract () =
          Vm1.Wproblem.extract p params ~site_lo:w.site_lo ~row_lo:w.row_lo
            ~bw:w.bw ~bh:w.bh ~movable:w.movable ~lx:2 ~ly:1
            ~allow_flip:false ~allow_move:true
        in
        let te = extract () in
        let saved = Array.map (fun (c : Vm1.Wproblem.cell) -> c.cur) te.cells in
        ignore (Vm1.Scp_solver.solve ~mode:`Exact te);
        let exact_obj = Vm1.Wproblem.objective te in
        (* fresh problem, same initial state *)
        let tm = extract () in
        Array.iteri (fun i cand -> Vm1.Wproblem.apply tm ~cell:i ~cand) saved;
        ignore (Vm1.Formulate.solve ~node_limit:30_000 tm);
        abs_float (Vm1.Wproblem.objective tm -. exact_obj) < 0.5)

(* diagonal batches always have pairwise-disjoint projections and cover
   every window, for arbitrary grid offsets *)
let prop_diagonal_batches =
  QCheck2.Test.make ~name:"diagonal batches disjoint and covering" ~count:25
    QCheck2.Gen.(quad (int_range 1 500) (int_range 0 30) (int_range 0 5)
                   (pair (int_range 8 60) (int_range 2 10)))
    (fun (seed, tx, ty, (bw, bh)) ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.72 in
      Place.Global.place p;
      let ws = Vm1.Window.partition p ~tx ~ty ~bw ~bh in
      let batches = Vm1.Window.diagonal_batches ws in
      let total = List.fold_left (fun acc b -> acc + Array.length b) 0 batches in
      total = Array.length ws
      && List.for_all
           (fun batch ->
             let ok = ref true in
             Array.iteri
               (fun i (a : Vm1.Window.t) ->
                 Array.iteri
                   (fun j (b : Vm1.Window.t) ->
                     if i < j && (a.ix = b.ix || a.iy = b.iy) then ok := false)
                   batch)
               batch;
             !ok)
           batches)

(* instrumentation is observation-only: with tracing enabled the
   optimiser produces the exact same placement as with it disabled,
   sequentially and under domain-parallel batch solving *)
let prop_instrumented_run_identical =
  QCheck2.Test.make ~name:"instrumented run = uninstrumented run" ~count:6
    QCheck2.Gen.(pair (int_range 1 1000) bool)
    (fun (seed, parallel) ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.72 in
      Place.Global.place p;
      let q = Place.Placement.copy p in
      let params = Vm1.Params.default p.Place.Placement.tech in
      let cfg =
        {
          Vm1.Dist_opt.tx = 0;
          ty = 0;
          bw = 40;
          bh = 6;
          lx = 3;
          ly = 1;
          allow_flip = true;
          allow_move = true;
          mode = `Greedy;
          parallel;
          candidate_cost = None;
          wcache = None;
        }
      in
      Obs.set_enabled false;
      let s1 = Vm1.Dist_opt.run p params cfg in
      Obs.set_enabled true;
      let s2 =
        Fun.protect
          ~finally:(fun () -> Obs.set_enabled false)
          (fun () -> Vm1.Dist_opt.run q params cfg)
      in
      s1.Vm1.Dist_opt.total_moves = s2.Vm1.Dist_opt.total_moves
      && p.Place.Placement.xs = q.Place.Placement.xs
      && p.Place.Placement.ys = q.Place.Placement.ys
      && p.Place.Placement.orients = q.Place.Placement.orients)

(* the window cache's canonical form is translation-invariant: a window
   and its (dx, dy)-shifted copy produce the same key, and replaying the
   original's memoised assignment into the shifted window lands every
   cell exactly where a fresh solve of the shifted window would *)
let prop_wcache_translation_invariant =
  QCheck2.Test.make ~name:"window cache key translation-invariant" ~count:10
    QCheck2.Gen.(triple (int_range 1 1000) (int_range 0 4) (int_range 0 2))
    (fun (seed, dxr, dyr) ->
      let p = Place.Placement.create (design_of_seed seed) ~utilization:0.70 in
      Place.Global.place p;
      let params = Vm1.Params.default p.Place.Placement.tech in
      let ws = Vm1.Window.partition p ~tx:0 ~ty:0 ~bw:14 ~bh:2 in
      match
        Array.to_list ws
        |> List.find_opt (fun (w : Vm1.Window.t) -> w.movable <> [])
      with
      | None -> true
      | Some w ->
        let tech = p.Place.Placement.tech in
        let sw = tech.Pdk.Tech.site_width
        and rh = tech.Pdk.Tech.row_height in
        (* clamp the shift so the moved window stays inside the die:
           die-boundary clipping of the candidate lattice is part of the
           canonical form, so a window pushed into the edge is a
           different problem, not a translated copy *)
        let max_dx = p.Place.Placement.sites_per_row - (w.site_lo + w.bw) in
        let max_dy = p.Place.Placement.num_rows - (w.row_lo + w.bh) in
        let dx = min dxr (max 0 max_dx) and dy = min dyr (max 0 max_dy) in
        let extract_at pl ~site_lo ~row_lo =
          Vm1.Wproblem.extract pl params ~site_lo ~row_lo ~bw:w.bw ~bh:w.bh
            ~movable:w.movable ~lx:2 ~ly:1 ~allow_flip:true ~allow_move:true
        in
        let t1 = extract_at p ~site_lo:w.site_lo ~row_lo:w.row_lo in
        let q = Place.Placement.copy p in
        Array.iteri
          (fun i x -> q.Place.Placement.xs.(i) <- x + (dx * sw))
          p.Place.Placement.xs;
        Array.iteri
          (fun i y -> q.Place.Placement.ys.(i) <- y + (dy * rh))
          p.Place.Placement.ys;
        let site_lo = w.site_lo + dx and row_lo = w.row_lo + dy in
        let t2 = extract_at q ~site_lo ~row_lo in
        let key1 = Vm1.Wcache.key ~mode:`Greedy t1 in
        let key2 = Vm1.Wcache.key ~mode:`Greedy t2 in
        let t2_fresh = extract_at q ~site_lo ~row_lo in
        let s_fresh = Vm1.Scp_solver.solve ~mode:`Greedy t2_fresh in
        let cache = Vm1.Wcache.create () in
        let s1 = Vm1.Scp_solver.solve ~mode:`Greedy t1 in
        Vm1.Wcache.add cache key1
          { Vm1.Wcache.assignment = Vm1.Wproblem.assignment t1; stats = s1 };
        (match Vm1.Wcache.find cache key2 with
        | None -> false
        | Some entry ->
          Vm1.Wproblem.set_assignment t2 entry.Vm1.Wcache.assignment;
          String.equal key1 key2
          && Vm1.Wproblem.assignment t2 = Vm1.Wproblem.assignment t2_fresh
          && s1.Vm1.Scp_solver.objective_after
             = s_fresh.Vm1.Scp_solver.objective_after))

(* STA: lengthening any single net never shortens the critical path *)
let prop_sta_monotone =
  QCheck2.Test.make ~name:"STA monotone in net length" ~count:20
    QCheck2.Gen.(pair (int_range 1 500) (int_range 0 10_000))
    (fun (seed, pick) ->
      let d = design_of_seed ~n:150 seed in
      let nn = Netlist.Design.num_nets d in
      let lengths = Array.make nn 500 in
      let base = Sta.Timing.analyze d ~net_lengths:lengths in
      let target = pick mod nn in
      lengths.(target) <- lengths.(target) + 100_000;
      let bumped = Sta.Timing.analyze d ~net_lengths:lengths in
      bumped.Sta.Timing.critical_ps >= base.Sta.Timing.critical_ps -. 1e-9)

let () =
  Alcotest.run "properties"
    [
      ( "substrates",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generator_always_valid;
            prop_legalizer_always_legal;
            prop_global_place_legal;
            prop_def_roundtrip;
            prop_row_dp_monotone;
          ] );
      ( "router",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_routed_paths_connected; prop_usage_consistent;
            prop_pin_access_index_matches_scan;
          ] );
      ( "optimizer",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_move_delta_exact; prop_greedy_monotone_legal;
            prop_milp_equals_exhaustive; prop_diagonal_batches;
            prop_instrumented_run_identical;
            prop_wcache_translation_invariant;
          ] );
      ( "sta",
        List.map QCheck_alcotest.to_alcotest [ prop_sta_monotone ] );
    ]
