(* Cross-jobs determinism of trace analytics (acceptance criterion of
   the trace-analytics PR): traces of the same design recorded at
   --jobs 1/2/4 must agree on every deterministic field once the
   nondeterministically-nested exec.* scheduling spans are pruned —
   identical span-name/edge multisets and counters (checked via
   Trace.Diff with zero-width time bands disabled), and an identical
   root-level critical-path chain: worker-domain spans always end before
   the main-thread span that awaits them, so the depth-0 path must be
   the same main-thread phase sequence whatever the pool size.

   Usage: test_cp_jobs.exe TRACE TRACE [TRACE...]; exits 1 on the first
   disagreement. *)

let prefixes = [ "exec." ]

let load path =
  match Trace.Model.load path with
  | Ok t -> Trace.Model.prune ~prefixes t
  | Error m ->
    Printf.eprintf "test_cp_jobs: %s\n" m;
    exit 1

let root_chain t =
  List.filter_map
    (fun (s : Trace.Critical_path.step) ->
      if s.depth = 0 then Some s.name else None)
    (Trace.Critical_path.compute t)

let () =
  let paths =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ :: _ as paths) -> paths
    | _ ->
      prerr_endline "usage: test_cp_jobs TRACE TRACE [TRACE...]";
      exit 1
  in
  let traces = List.map (fun p -> (p, load p)) paths in
  let ref_path, ref_trace = List.hd traces in
  let diff_config =
    (* times are noise across pool sizes; everything else is strict *)
    { Trace.Diff.default with time_rel = 1e9; time_abs_ns = max_int / 2 }
  in
  let bad = ref false in
  List.iter
    (fun (path, t) ->
      let v = Trace.Diff.run diff_config ~baseline:ref_trace ~current:t in
      if not v.pass then begin
        bad := true;
        Printf.eprintf "%s vs %s: deterministic fields differ\n" ref_path path;
        List.iter
          (fun (i : Trace.Diff.issue) -> Printf.eprintf "  %s\n" i.what)
          v.issues
      end;
      let a = root_chain ref_trace and b = root_chain t in
      if not (List.equal String.equal a b) then begin
        bad := true;
        Printf.eprintf
          "%s vs %s: root-level critical path differs:\n  [%s]\n  [%s]\n"
          ref_path path (String.concat "; " a) (String.concat "; " b)
      end;
      (* and the path is a pure function of the trace *)
      let c1 = Trace.Critical_path.compute t in
      let c2 = Trace.Critical_path.compute t in
      if
        not
          (List.equal
             (fun (x : Trace.Critical_path.step) y ->
               String.equal x.name y.name
               && x.depth = y.depth && x.start_ns = y.start_ns
               && x.end_ns = y.end_ns && x.self_ns = y.self_ns)
             c1 c2)
      then begin
        bad := true;
        Printf.eprintf "%s: critical path not reproducible\n" path
      end;
      Printf.printf "%s: %d roots, path %d steps, %d ns of %d ns wall\n" path
        (List.length t.Trace.Model.spans)
        (List.length (Trace.Critical_path.compute t))
        (Trace.Critical_path.total_ns (Trace.Critical_path.compute t))
        (Trace.Model.wall_ns t))
    (List.tl traces);
  if !bad then exit 1
