(* Tests for the design database, the synthetic generator and text IO. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let lib = Pdk.Libgen.generate (Pdk.Tech.default Pdk.Cell_arch.Closed_m1)

let small ?(n = 300) ?(seed = 7) () =
  Netlist.Generator.generate lib
    (Netlist.Generator.default_config ~n_instances:n ~seed)
    ~name:"t"

(* --- Design --- *)

let test_generator_valid () =
  let d = small () in
  Alcotest.(check (list string)) "validate" [] (Netlist.Design.validate d);
  check "instances" 300 (Netlist.Design.num_instances d)

let test_generator_deterministic () =
  let d1 = small () and d2 = small () in
  check "same nets" (Netlist.Design.num_nets d1) (Netlist.Design.num_nets d2);
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      checks "same master" inst.master.Pdk.Stdcell.name
        d2.instances.(i).master.Pdk.Stdcell.name)
    d1.instances

let test_generator_seeds_differ () =
  let d1 = small ~seed:1 () and d2 = small ~seed:2 () in
  let masters d =
    Array.to_list
      (Array.map
         (fun (i : Netlist.Design.instance) -> i.master.Pdk.Stdcell.name)
         d.Netlist.Design.instances)
  in
  checkb "different mixes" true (masters d1 <> masters d2)

let test_dff_fraction () =
  let d =
    Netlist.Generator.generate lib
      { (Netlist.Generator.default_config ~n_instances:2000 ~seed:3) with
        dff_fraction = 0.2 }
      ~name:"t"
  in
  let dffs =
    Array.fold_left
      (fun acc (i : Netlist.Design.instance) ->
        if Pdk.Stdcell.is_sequential i.master then acc + 1 else acc)
      0 d.instances
  in
  let frac = float_of_int dffs /. 2000.0 in
  checkb "dff fraction near 0.2" true (frac > 0.15 && frac < 0.25)

let test_comb_edges_acyclic () =
  (* generator invariant: combinational edges go from lower id to higher *)
  let d = small ~n:800 () in
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      List.iteri
        (fun k (pin : Pdk.Stdcell.pin) ->
          if pin.Pdk.Stdcell.dir = Pdk.Stdcell.Input then begin
            let n = inst.pin_nets.(k) in
            if n >= 0 && Array.length d.nets.(n).pins > 0 then begin
              let drv = d.nets.(n).pins.(0) in
              let m = Netlist.Design.instance_master d drv.inst in
              let is_output =
                (List.nth m.Pdk.Stdcell.pins drv.pin).Pdk.Stdcell.dir
                = Pdk.Stdcell.Output
              in
              if is_output && not (Pdk.Stdcell.is_sequential m) then
                checkb
                  (Printf.sprintf "edge %d <- %d forward" i drv.inst)
                  true (drv.inst < i)
            end
          end)
        inst.master.Pdk.Stdcell.pins)
    d.instances

let test_clock_net () =
  let d = small () in
  let clocks =
    Array.to_list d.nets |> List.filter (fun (n : Netlist.Design.net) -> n.is_clock)
  in
  check "exactly one clock" 1 (List.length clocks);
  let clk = List.hd clocks in
  (* every flip-flop CK pin is on the clock net *)
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      if Pdk.Stdcell.is_sequential inst.master then begin
        let found =
          Array.exists (fun (pr : Netlist.Design.pin_ref) -> pr.inst = i) clk.pins
        in
        checkb "dff on clock" true found
      end)
    d.instances

let test_signal_nets_exclude_clock () =
  let d = small () in
  let signal = Netlist.Design.signal_nets d in
  List.iter (fun n -> checkb "not clock" false d.nets.(n).is_clock) signal;
  List.iter (fun n -> checkb "degree >= 2" true (Netlist.Design.net_degree d n >= 2)) signal

let test_nets_of_instance () =
  let d = small () in
  let nets = Netlist.Design.nets_of_instance d 10 in
  checkb "no duplicates" true
    (List.length nets = List.length (List.sort_uniq Int.compare nets));
  List.iter
    (fun n ->
      let net = d.nets.(n) in
      checkb "net points back" true
        (Array.exists (fun (pr : Netlist.Design.pin_ref) -> pr.inst = 10) net.pins))
    nets

let test_stats_string () =
  let d = small () in
  let s = Netlist.Design.stats d in
  checkb "mentions name" true
    (String.length s > 0 && String.sub s 0 1 = "t")

(* --- stats --- *)

let test_stats_fanout () =
  let d = small ~n:600 () in
  let hist = Netlist.Stats.fanout_histogram d in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  check "histogram covers all signal nets" (List.length (Netlist.Design.signal_nets d)) total;
  List.iter (fun (fanout, _) -> checkb "fanout >= 1" true (fanout >= 1)) hist;
  checkb "avg fanout sane" true
    (let a = Netlist.Stats.average_fanout d in
     a >= 1.0 && a < 6.0)

let test_stats_logic_depth () =
  let d = small ~n:600 () in
  let depth = Netlist.Stats.logic_depth d in
  checkb "positive depth" true (depth > 0);
  checkb "bounded by instance count" true (depth < 600);
  (* a bigger locality window cannot reduce information: just smoke the
     report string *)
  checkb "report mentions depth" true
    (String.length (Netlist.Stats.report d) > 20)

(* --- named designs --- *)

let test_designs_scaling () =
  let d = Netlist.Designs.make ~scale:32 Netlist.Designs.M0 Pdk.Cell_arch.Closed_m1 in
  check "scaled size" (9922 / 32) (Netlist.Design.num_instances d);
  Alcotest.(check (list string)) "valid" [] (Netlist.Design.validate d)

let test_designs_names () =
  List.iter
    (fun n ->
      checkb "roundtrip" true
        (Netlist.Designs.of_string (Netlist.Designs.to_string n) = Some n))
    Netlist.Designs.all;
  check "paper count aes" 12345 (Netlist.Designs.paper_instances Netlist.Designs.Aes);
  check "paper count vga" 68606 (Netlist.Designs.paper_instances Netlist.Designs.Vga)

let test_designs_arch_consistency () =
  (* the same design name/scale produces identical connectivity on both
     architectures (only pin geometry differs) *)
  let dc = Netlist.Designs.make ~scale:32 Netlist.Designs.Aes Pdk.Cell_arch.Closed_m1 in
  let dop = Netlist.Designs.make ~scale:32 Netlist.Designs.Aes Pdk.Cell_arch.Open_m1 in
  check "same instances" (Netlist.Design.num_instances dc)
    (Netlist.Design.num_instances dop);
  check "same nets" (Netlist.Design.num_nets dc) (Netlist.Design.num_nets dop);
  Array.iteri
    (fun i (inst : Netlist.Design.instance) ->
      checks "same master" inst.master.Pdk.Stdcell.name
        dop.instances.(i).master.Pdk.Stdcell.name)
    dc.instances

let () =
  Alcotest.run "netlist"
    [
      ( "generator",
        [
          Alcotest.test_case "valid" `Quick test_generator_valid;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_generator_seeds_differ;
          Alcotest.test_case "dff fraction" `Quick test_dff_fraction;
          Alcotest.test_case "comb edges acyclic" `Quick test_comb_edges_acyclic;
          Alcotest.test_case "clock net" `Quick test_clock_net;
        ] );
      ( "design",
        [
          Alcotest.test_case "signal nets" `Quick test_signal_nets_exclude_clock;
          Alcotest.test_case "nets_of_instance" `Quick test_nets_of_instance;
          Alcotest.test_case "stats" `Quick test_stats_string;
        ] );
      ( "stats",
        [
          Alcotest.test_case "fanout histogram" `Quick test_stats_fanout;
          Alcotest.test_case "logic depth" `Quick test_stats_logic_depth;
        ] );
      ( "designs",
        [
          Alcotest.test_case "scaling" `Quick test_designs_scaling;
          Alcotest.test_case "names" `Quick test_designs_names;
          Alcotest.test_case "arch consistency" `Quick test_designs_arch_consistency;
        ] );
    ]
